// Query-vector construction (paper Section 3.2): the user's keywords are
// treated as a pseudo-document whose topic distribution, inferred from the
// model, becomes the sparse query vector x. The query-by-document paradigm
// is supported by inferring directly from a full document.
#ifndef KSIR_TOPIC_QUERY_INFERENCE_H_
#define KSIR_TOPIC_QUERY_INFERENCE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/sparse_vector.h"
#include "common/status.h"
#include "text/document.h"
#include "text/vocabulary.h"
#include "topic/inference.h"

namespace ksir {

/// Builds normalized sparse query vectors from keywords or documents.
class QueryVectorBuilder {
 public:
  /// `inferencer` and `vocab` must outlive the builder.
  QueryVectorBuilder(const TopicInferencer* inferencer,
                     const Vocabulary* vocab);

  /// Query-by-keyword: unknown keywords are ignored; fails when no keyword
  /// is in the vocabulary.
  StatusOr<SparseVector> FromKeywords(
      const std::vector<std::string>& keywords, std::uint64_t salt = 0) const;

  /// Query-by-document (e.g., "find elements representative of this post").
  StatusOr<SparseVector> FromDocument(const Document& doc,
                                      std::uint64_t salt = 0) const;

 private:
  const TopicInferencer* inferencer_;
  const Vocabulary* vocab_;
};

}  // namespace ksir

#endif  // KSIR_TOPIC_QUERY_INFERENCE_H_
