file(REMOVE_RECURSE
  "CMakeFiles/ksir_bench_util.dir/bench/bench_util.cpp.o"
  "CMakeFiles/ksir_bench_util.dir/bench/bench_util.cpp.o.d"
  "libksir_bench_util.a"
  "libksir_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksir_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
