#include "search/rel.h"

#include <algorithm>
#include <utility>

namespace ksir {

std::vector<ElementId> RelevanceTopK(const ActiveWindow& window,
                                     const SparseVector& x, std::size_t k) {
  using Scored = std::pair<double, ElementId>;
  std::vector<Scored> scored;
  scored.reserve(window.num_active());
  window.ForEachActive([&](const SocialElement& e) {
    const double sim = SparseVector::Cosine(e.topics, x);
    if (sim > 0.0) scored.emplace_back(sim, e.id);
  });
  const std::size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(), [](const Scored& a, const Scored& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<ElementId> result;
  result.reserve(take);
  for (std::size_t i = 0; i < take; ++i) result.push_back(scored[i].second);
  return result;
}

}  // namespace ksir
