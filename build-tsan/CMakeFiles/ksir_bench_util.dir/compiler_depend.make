# Empty compiler generated dependencies file for ksir_bench_util.
# This may be replaced when dependencies are built.
