file(REMOVE_RECURSE
  "CMakeFiles/ksir_service.dir/src/service/query_planner.cpp.o"
  "CMakeFiles/ksir_service.dir/src/service/query_planner.cpp.o.d"
  "CMakeFiles/ksir_service.dir/src/service/result_cache.cpp.o"
  "CMakeFiles/ksir_service.dir/src/service/result_cache.cpp.o.d"
  "CMakeFiles/ksir_service.dir/src/service/service.cpp.o"
  "CMakeFiles/ksir_service.dir/src/service/service.cpp.o.d"
  "CMakeFiles/ksir_service.dir/src/service/shard_router.cpp.o"
  "CMakeFiles/ksir_service.dir/src/service/shard_router.cpp.o.d"
  "CMakeFiles/ksir_service.dir/src/service/sharded_ingestor.cpp.o"
  "CMakeFiles/ksir_service.dir/src/service/sharded_ingestor.cpp.o.d"
  "CMakeFiles/ksir_service.dir/src/service/worker_pool.cpp.o"
  "CMakeFiles/ksir_service.dir/src/service/worker_pool.cpp.o.d"
  "libksir_service.a"
  "libksir_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksir_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
