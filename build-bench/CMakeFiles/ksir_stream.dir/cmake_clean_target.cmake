file(REMOVE_RECURSE
  "libksir_stream.a"
)
