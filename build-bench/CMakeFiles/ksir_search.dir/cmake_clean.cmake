file(REMOVE_RECURSE
  "CMakeFiles/ksir_search.dir/src/search/div.cpp.o"
  "CMakeFiles/ksir_search.dir/src/search/div.cpp.o.d"
  "CMakeFiles/ksir_search.dir/src/search/lexrank.cpp.o"
  "CMakeFiles/ksir_search.dir/src/search/lexrank.cpp.o.d"
  "CMakeFiles/ksir_search.dir/src/search/pagerank.cpp.o"
  "CMakeFiles/ksir_search.dir/src/search/pagerank.cpp.o.d"
  "CMakeFiles/ksir_search.dir/src/search/rel.cpp.o"
  "CMakeFiles/ksir_search.dir/src/search/rel.cpp.o.d"
  "CMakeFiles/ksir_search.dir/src/search/sumblr.cpp.o"
  "CMakeFiles/ksir_search.dir/src/search/sumblr.cpp.o.d"
  "CMakeFiles/ksir_search.dir/src/search/tfidf.cpp.o"
  "CMakeFiles/ksir_search.dir/src/search/tfidf.cpp.o.d"
  "libksir_search.a"
  "libksir_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksir_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
