file(REMOVE_RECURSE
  "CMakeFiles/topic_test.dir/tests/topic_test.cpp.o"
  "CMakeFiles/topic_test.dir/tests/topic_test.cpp.o.d"
  "topic_test"
  "topic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
