file(REMOVE_RECURSE
  "libksir_common.a"
)
