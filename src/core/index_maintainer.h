// Algorithm 1: keeps the per-topic ranked lists consistent with the active
// window as buckets arrive and expire.
#ifndef KSIR_CORE_INDEX_MAINTAINER_H_
#define KSIR_CORE_INDEX_MAINTAINER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "core/ranked_list.h"
#include "core/score_cache.h"
#include "core/scoring.h"
#include "window/active_window.h"

namespace ksir {

/// How ranked-list scores react to referrer expiry (DESIGN.md §5).
enum class RefreshMode {
  /// Reposition elements whose referrers expired: list scores are always
  /// exactly delta_i(e). Default.
  kExact,
  /// Literal Algorithm 1: scores are only refreshed when an element gains a
  /// referrer. A score may stay stale-high after referrer expiry, which
  /// keeps upper-bound pruning sound but less tight.
  kPaper,
};

/// How reposition scores are produced.
enum class ScoreMaintenance {
  /// ScoreCache decomposition: the semantic half is computed once per
  /// element lifetime and the influence half updated per edge, making a
  /// reposition O(|shared topics|). Default.
  kIncremental,
  /// Recompute delta_i(e) from scratch (full word scan per topic plus a
  /// referrer-set scan) on every reposition. The pre-decomposition
  /// behavior; kept as the reference baseline for equivalence tests and the
  /// hot-path benchmark.
  kRecompute,
};

/// Default IndexMaintainer batching threshold: lists with at least this
/// many pending repositions in a bucket are updated by one ApplyBatch merge
/// sweep; sparser lists keep the single-reposition fast path. Chosen from
/// the hotpath bench's batch-size sweep (see BENCH_hotpath.json).
inline constexpr std::size_t kDefaultRepositionBatchMin = 2;

/// Applies window updates to the ranked lists (Algorithm 1 lines 4-13).
///
/// Under kIncremental maintenance the repositions of a bucket are batched:
/// the (topic, score) pairs of every repositioned element are collected
/// into per-topic runs (arena-backed, reset each bucket) and each touched
/// list is updated in one pass, instead of element-by-element across all of
/// its lists. All batching state is owned by this maintainer — one engine's
/// maintainer never shares mutable state with another's, which is what lets
/// the sharded service advance shards in parallel.
class IndexMaintainer {
 public:
  /// `ctx` and `index` must outlive the maintainer; `ctx`'s window must be
  /// the window whose updates are applied. `reposition_batch_min` is the
  /// per-list batching threshold; 0 disables batching entirely (the
  /// single-reposition reference path).
  IndexMaintainer(const ScoringContext* ctx, RankedListIndex* index,
                  RefreshMode mode = RefreshMode::kExact,
                  ScoreMaintenance maintenance = ScoreMaintenance::kIncremental,
                  std::size_t reposition_batch_min = kDefaultRepositionBatchMin);

  /// Applies one Advance() result. Must be called after every window
  /// advance, with no interleaved advances.
  void Apply(const ActiveWindow::UpdateResult& update);

  RefreshMode mode() const { return mode_; }
  ScoreMaintenance maintenance() const { return maintenance_; }
  std::size_t reposition_batch_min() const { return batch_min_; }

  /// The cache backing kIncremental maintenance (exposed for tests).
  const ScoreCache& score_cache() const { return cache_; }

 private:
  void ApplyIncremental(const ActiveWindow::UpdateResult& update);
  void ApplyRecompute(const ActiveWindow::UpdateResult& update);

  /// Inserts `id` into the lists (and the cache under kIncremental).
  void InsertFresh(ElementId id);

  /// kRecompute reposition: full rescore.
  void RepositionRecompute(ElementId id);

  /// kIncremental reposition: compose from the cached halves.
  void RepositionFromCache(ElementId id);

  /// Batched kIncremental reposition: queues (topic, score) pairs into the
  /// per-topic pending runs instead of updating the lists immediately.
  /// When `te_changed` is false (referrer loss — t_e is a running max),
  /// tuples whose composed score equals the listed score are elided.
  void QueueReposition(ElementId id, bool te_changed);

  /// Scatters the queued repositions into arena-backed per-topic runs and
  /// applies each touched list's run in one BatchReposition call.
  void FlushRepositions();

  const ScoringContext* ctx_;
  RankedListIndex* index_;
  RefreshMode mode_;
  ScoreMaintenance maintenance_;
  std::size_t batch_min_;
  ScoreCache cache_;
  /// Reused (topic, score) buffer; repositions are too frequent to allocate.
  std::vector<std::pair<TopicId, double>> scratch_scores_;

  /// ---- per-bucket batching state (live only within one Apply call) ----
  /// One (topic, tuple) pair per ranked-list reposition, in queue order.
  struct PendingReposition {
    TopicId topic;
    RankedList::Tuple tuple;
  };
  std::vector<PendingReposition> pending_;
  /// Pending tuples per topic this bucket; zeroed lazily via `touched_`.
  std::vector<std::uint32_t> topic_counts_;
  std::vector<TopicId> touched_;
  /// Backs the scattered per-topic runs; reset every flush.
  Arena run_arena_;
  RankedList::BatchScratch batch_scratch_;
};

}  // namespace ksir

#endif  // KSIR_CORE_INDEX_MAINTAINER_H_
