// Unified telemetry facade: one MetricRegistry + one Tracer per deployment
// unit (a KsirService shares one across its shards, pool, planner and
// cache; a standalone KsirEngine owns its own), plus the RAII StageScope
// timer that feeds both.
//
// Cost model (what TelemetryLevel actually gates):
//   * Registry COUNTERS are always live, at every level — they are the
//     storage behind the pre-existing stats structs (PlannerStats,
//     IngestionStats, ResultCacheStats), whose accessors must keep working
//     whether or not telemetry is enabled. A counter add is one relaxed
//     fetch_add on a thread-sharded cache line: cost parity with the plain
//     struct fields they replaced.
//   * kOff disables everything with a clock on it: StageScope reads no
//     clock and records no histogram (two predictable branches per scope —
//     the near-zero path the engine config defaults to).
//   * kCounters additionally runs the stage timers: clock reads + sharded
//     histogram records. This is the "counters on" mode the bench bounds
//     at <= 2% p50 overhead.
//   * kTracing additionally emits chrome://tracing span events for sampled
//     units (see trace.h for the sampling model).
#ifndef KSIR_TELEMETRY_TELEMETRY_H_
#define KSIR_TELEMETRY_TELEMETRY_H_

#include <chrono>
#include <cstddef>

#include "common/status.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ksir {

enum class TelemetryLevel {
  /// Counters only (always live); no clock reads, no histograms, no traces.
  kOff,
  /// Counters + stage-timing histograms.
  kCounters,
  /// Counters + histograms + sampled chrome-trace span events.
  kTracing,
};

struct TelemetryConfig {
  TelemetryLevel level = TelemetryLevel::kOff;
  /// Every Nth top-level unit (bucket apply / query plan) is traced when
  /// level == kTracing. 1 traces everything.
  std::size_t trace_sample_period = 16;
  /// Trace-buffer capacity in events; once full, further events are
  /// counted as dropped.
  std::size_t trace_capacity = 1 << 16;
};

/// Validates a TelemetryConfig (positive sample period and capacity).
Status ValidateTelemetryConfig(const TelemetryConfig& config);

/// One registry + tracer pair. Thread-safe throughout; construct once per
/// deployment unit and share the pointer (components registering the same
/// metric names through one Telemetry aggregate into one series, which is
/// how N shard engines produce one process view).
class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {});

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricRegistry& registry() { return registry_; }
  const MetricRegistry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  TelemetryLevel level() const { return config_.level; }
  const TelemetryConfig& config() const { return config_; }

  /// True when stage timers should read clocks (level >= kCounters).
  bool timing_enabled() const { return timing_enabled_; }

 private:
  TelemetryConfig config_;
  bool timing_enabled_;
  MetricRegistry registry_;
  Tracer tracer_;
};

/// RAII stage timer: records the scope's wall time into `histogram` and,
/// when the tracer is armed for this unit, emits a chrome-trace span named
/// `name` (a string literal — it must outlive the tracer). With telemetry
/// null or at kOff the constructor takes one branch and the destructor
/// another; no clock is read.
class StageScope {
 public:
  StageScope(Telemetry* telemetry, Histogram* histogram, const char* name) {
    if (telemetry == nullptr || !telemetry->timing_enabled()) return;
    telemetry_ = telemetry;
    histogram_ = histogram;
    name_ = name;
    start_ = std::chrono::steady_clock::now();
  }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

  ~StageScope() {
    if (telemetry_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    if (histogram_ != nullptr) {
      histogram_->Record(
          std::chrono::duration<double>(end - start_).count());
    }
    telemetry_->tracer().Emit(name_, start_, end);
  }

 private:
  Telemetry* telemetry_ = nullptr;
  Histogram* histogram_ = nullptr;
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ksir

#endif  // KSIR_TELEMETRY_TELEMETRY_H_
