#include "topic/lda.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace ksir {

LdaTrainer::LdaTrainer(LdaOptions options) : options_(options) {}

StatusOr<LdaResult> LdaTrainer::Train(const Corpus& corpus) const {
  const auto z = static_cast<std::size_t>(options_.num_topics);
  if (options_.num_topics <= 0) {
    return Status::InvalidArgument("num_topics must be positive");
  }
  if (corpus.size() == 0) {
    return Status::InvalidArgument("cannot train LDA on an empty corpus");
  }
  if (options_.iterations <= 0 || options_.burn_in < 0 ||
      options_.burn_in >= options_.iterations) {
    return Status::InvalidArgument("need 0 <= burn_in < iterations");
  }
  const std::size_t m = corpus.vocabulary().size();
  if (m == 0) return Status::InvalidArgument("empty vocabulary");

  const double alpha = options_.alpha > 0.0
                           ? options_.alpha
                           : 50.0 / static_cast<double>(z);
  const double beta = options_.beta;
  if (beta <= 0.0) return Status::InvalidArgument("beta must be positive");

  // Flatten documents into token arrays.
  const std::size_t num_docs = corpus.size();
  std::vector<std::vector<WordId>> tokens(num_docs);
  for (std::size_t d = 0; d < num_docs; ++d) {
    tokens[d] = corpus.documents()[d].ToTokenList();
  }

  // Count matrices of the collapsed sampler.
  std::vector<std::vector<std::int32_t>> doc_topic_count(
      num_docs, std::vector<std::int32_t>(z, 0));
  std::vector<std::int64_t> topic_word_count(z * m, 0);
  std::vector<std::int64_t> topic_total(z, 0);
  std::vector<std::vector<std::int32_t>> assignment(num_docs);

  Rng rng(options_.seed);
  for (std::size_t d = 0; d < num_docs; ++d) {
    assignment[d].resize(tokens[d].size());
    for (std::size_t j = 0; j < tokens[d].size(); ++j) {
      const auto topic = static_cast<std::int32_t>(rng.NextUint64(z));
      assignment[d][j] = topic;
      ++doc_topic_count[d][static_cast<std::size_t>(topic)];
      ++topic_word_count[static_cast<std::size_t>(topic) * m +
                         static_cast<std::size_t>(tokens[d][j])];
      ++topic_total[static_cast<std::size_t>(topic)];
    }
  }

  // Accumulators for the post-burn-in phi / theta estimates.
  std::vector<double> phi_sum(z * m, 0.0);
  std::vector<std::vector<double>> theta_sum(num_docs,
                                             std::vector<double>(z, 0.0));
  std::int32_t samples = 0;

  std::vector<double> weights(z);
  const double v_beta = static_cast<double>(m) * beta;
  for (std::int32_t iter = 0; iter < options_.iterations; ++iter) {
    for (std::size_t d = 0; d < num_docs; ++d) {
      auto& dt = doc_topic_count[d];
      for (std::size_t j = 0; j < tokens[d].size(); ++j) {
        const auto w = static_cast<std::size_t>(tokens[d][j]);
        const auto old_topic = static_cast<std::size_t>(assignment[d][j]);
        --dt[old_topic];
        --topic_word_count[old_topic * m + w];
        --topic_total[old_topic];

        for (std::size_t i = 0; i < z; ++i) {
          weights[i] =
              (static_cast<double>(dt[i]) + alpha) *
              (static_cast<double>(topic_word_count[i * m + w]) + beta) /
              (static_cast<double>(topic_total[i]) + v_beta);
        }
        const std::size_t new_topic = rng.NextCategorical(weights);
        assignment[d][j] = static_cast<std::int32_t>(new_topic);
        ++dt[new_topic];
        ++topic_word_count[new_topic * m + w];
        ++topic_total[new_topic];
      }
    }
    if (iter >= options_.burn_in) {
      ++samples;
      for (std::size_t i = 0; i < z; ++i) {
        const double denom = static_cast<double>(topic_total[i]) + v_beta;
        for (std::size_t w = 0; w < m; ++w) {
          phi_sum[i * m + w] +=
              (static_cast<double>(topic_word_count[i * m + w]) + beta) /
              denom;
        }
      }
      for (std::size_t d = 0; d < num_docs; ++d) {
        const double len = static_cast<double>(tokens[d].size());
        const double denom = len + static_cast<double>(z) * alpha;
        for (std::size_t i = 0; i < z; ++i) {
          theta_sum[d][i] +=
              (static_cast<double>(doc_topic_count[d][i]) + alpha) / denom;
        }
      }
    }
  }
  KSIR_CHECK(samples > 0);

  std::vector<std::vector<double>> phi(z, std::vector<double>(m));
  for (std::size_t i = 0; i < z; ++i) {
    for (std::size_t w = 0; w < m; ++w) {
      phi[i][w] = phi_sum[i * m + w] / static_cast<double>(samples);
    }
  }
  // Corpus-level topic prior from aggregate assignments.
  std::vector<double> prior(z, 0.0);
  std::int64_t grand_total = 0;
  for (std::size_t i = 0; i < z; ++i) grand_total += topic_total[i];
  for (std::size_t i = 0; i < z; ++i) {
    prior[i] = grand_total > 0 ? static_cast<double>(topic_total[i]) /
                                     static_cast<double>(grand_total)
                               : 1.0 / static_cast<double>(z);
  }

  KSIR_ASSIGN_OR_RETURN(
      TopicModel model, TopicModel::FromMatrix(std::move(phi), std::move(prior)));
  LdaResult result{std::move(model), {}};
  result.doc_topic.resize(num_docs);
  for (std::size_t d = 0; d < num_docs; ++d) {
    result.doc_topic[d].resize(z);
    for (std::size_t i = 0; i < z; ++i) {
      result.doc_topic[d][i] = theta_sum[d][i] / static_cast<double>(samples);
    }
  }
  return result;
}

}  // namespace ksir
