#include "topic/query_inference.h"

#include "common/check.h"

namespace ksir {

QueryVectorBuilder::QueryVectorBuilder(const TopicInferencer* inferencer,
                                       const Vocabulary* vocab)
    : inferencer_(inferencer), vocab_(vocab) {
  KSIR_CHECK(inferencer != nullptr);
  KSIR_CHECK(vocab != nullptr);
}

StatusOr<SparseVector> QueryVectorBuilder::FromKeywords(
    const std::vector<std::string>& keywords, std::uint64_t salt) const {
  if (keywords.empty()) {
    return Status::InvalidArgument("query needs at least one keyword");
  }
  std::vector<WordId> ids;
  for (const std::string& kw : keywords) {
    const WordId id = vocab_->Lookup(kw);
    if (id != kInvalidWordId) ids.push_back(id);
  }
  if (ids.empty()) {
    return Status::NotFound("no query keyword is in the vocabulary");
  }
  return FromDocument(Document::FromWordIds(ids), salt);
}

StatusOr<SparseVector> QueryVectorBuilder::FromDocument(
    const Document& doc, std::uint64_t salt) const {
  if (doc.empty()) {
    return Status::InvalidArgument("query document is empty");
  }
  SparseVector x = inferencer_->InferSparse(doc, salt);
  if (x.empty()) {
    return Status::Internal("query inference produced an empty vector");
  }
  x.NormalizeL1();
  return x;
}

}  // namespace ksir
