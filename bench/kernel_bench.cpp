// Standalone runner for the vectorized-kernel microbenchmarks: prints a
// scalar-vs-dispatched table for every kernel plus the detected CPU
// features. The same measurements feed hotpath_bench's JSON "kernels"
// section; this binary exists for quick iteration on the kernel arms.
#include <cstdio>

#include "common/kernels/kernels.h"
#include "kernel_microbench.h"

int main() {
  const ksir::bench::KernelBenchReport report =
      ksir::bench::RunKernelMicrobench();
  std::printf("kernel dispatch: isa=%s simd_compiled_in=%d cpu=[%s]\n\n",
              report.isa.c_str(), ksir::kernels::SimdCompiledIn() ? 1 : 0,
              ksir::kernels::CpuFeatureString().c_str());
  std::printf("%-22s %14s %14s %9s\n", "kernel", "scalar_ns/op",
              "dispatch_ns/op", "speedup");
  for (const auto& k : report.kernels) {
    std::printf("%-22s %14.1f %14.1f %8.2fx\n", k.name.c_str(), k.scalar_ns,
                k.dispatched_ns, k.speedup);
  }
  return 0;
}
