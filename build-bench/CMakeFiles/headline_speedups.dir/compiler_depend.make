# Empty compiler generated dependencies file for headline_speedups.
# This may be replaced when dependencies are built.
