# Empty dependencies file for ksir_service.
# This may be replaced when dependencies are built.
