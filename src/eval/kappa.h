// Cohen's weighted kappa (Cohen 1968) with linear disagreement weights, as
// the paper uses to report inter-rater agreement in the user study.
#ifndef KSIR_EVAL_KAPPA_H_
#define KSIR_EVAL_KAPPA_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace ksir {

/// Computes linearly weighted kappa between two raters. `a` and `b` are
/// parallel rating sequences with values in [1, num_categories]. Returns 1
/// for perfect agreement, 0 for chance-level agreement. Fails on empty or
/// mismatched input, or out-of-range ratings.
StatusOr<double> CohenLinearWeightedKappa(const std::vector<std::int32_t>& a,
                                          const std::vector<std::int32_t>& b,
                                          std::int32_t num_categories);

}  // namespace ksir

#endif  // KSIR_EVAL_KAPPA_H_
