#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace ksir {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextUint64(std::uint64_t bound) {
  KSIR_CHECK(bound >= 1);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  KSIR_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextUint64(span));
}

double Rng::NextGaussian() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::NextGamma(double shape) {
  KSIR_CHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia-Tsang trick).
    const double u = NextDouble();
    return NextGamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x;
    double v;
    do {
      x = NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::int64_t Rng::NextPoisson(double mean) {
  KSIR_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = NextDouble();
    std::int64_t count = 0;
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  // Split recursively: Poisson(a + b) = Poisson(a) + Poisson(b).
  const double half = std::floor(mean / 2.0);
  return NextPoisson(half) + NextPoisson(mean - half);
}

std::size_t Rng::NextCategorical(const std::vector<double>& weights) {
  KSIR_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  KSIR_CHECK(total > 0.0);
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<double> Rng::NextDirichlet(double alpha, std::size_t dim) {
  return NextDirichlet(std::vector<double>(dim, alpha));
}

std::vector<double> Rng::NextDirichlet(const std::vector<double>& alpha) {
  KSIR_CHECK(!alpha.empty());
  std::vector<double> out(alpha.size());
  double total = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    out[i] = NextGamma(alpha[i]);
    total += out[i];
  }
  if (total <= 0.0) {
    // Degenerate draw (all gammas underflowed); fall back to uniform.
    const double u = 1.0 / static_cast<double>(alpha.size());
    for (auto& v : out) v = u;
    return out;
  }
  for (auto& v : out) v /= total;
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

ZipfSampler::ZipfSampler(std::size_t n, double s) : n_(n), s_(s) {
  KSIR_CHECK(n >= 1);
  KSIR_CHECK(s > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

double ZipfSampler::H(double x) const {
  // Integral of r^{-s}: (x^{1-s} - 1)/(1-s), with the s == 1 limit ln(x).
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::size_t ZipfSampler::Sample(Rng* rng) const {
  if (n_ == 1) return 1;
  while (true) {
    const double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    const auto k = static_cast<std::size_t>(x + 0.5);
    if (k < 1) return 1;
    if (k > n_) continue;
    if (static_cast<double>(k) - x <= threshold_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s_)) {
      return k;
    }
  }
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  KSIR_CHECK(!weights.empty());
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    KSIR_CHECK(w >= 0.0);
    total += w;
  }
  KSIR_CHECK(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasTable::Sample(Rng* rng) const {
  const std::size_t column = rng->NextUint64(prob_.size());
  return rng->NextDouble() < prob_[column] ? column : alias_[column];
}

}  // namespace ksir
