#include "telemetry/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace ksir {

double HistogramSnapshot::Percentile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto c = static_cast<double>(counts[i]);
    if (c <= 0.0) continue;
    if (cumulative + c >= target) {
      const double lower = i == 0 ? 0.0 : kLatencyBoundsSeconds[i - 1];
      const double upper = i < kNumLatencyBounds
                               ? kLatencyBoundsSeconds[i]
                               : kLatencyBoundsSeconds[kNumLatencyBounds - 1];
      const double frac =
          std::clamp((target - cumulative) / c, 0.0, 1.0);
      return lower + (upper - lower) * frac;
    }
    cumulative += c;
  }
  return kLatencyBoundsSeconds[kNumLatencyBounds - 1];
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.counts.assign(kNumHistogramBuckets, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < kNumHistogramBuckets; ++b) {
      snapshot.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snapshot.sum += std::bit_cast<double>(
        shard.sum_bits.load(std::memory_order_relaxed));
  }
  for (const std::int64_t c : snapshot.counts) snapshot.count += c;
  return snapshot;
}

const MetricSnapshot* RegistrySnapshot::Find(std::string_view name) const {
  for (const MetricSnapshot& metric : metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

MetricRegistry::Entry* MetricRegistry::GetOrCreate(std::string_view name,
                                                   std::string_view help,
                                                   MetricType type) {
  std::lock_guard lock(mutex_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    // Same name must mean same metric: a type clash is a naming bug, and
    // silently handing back the wrong type would corrupt both series.
    KSIR_CHECK(it->second->type == type);
    return it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->type = type;
  switch (type) {
    case MetricType::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  // Keyed by the entry-owned string: stable because entries are
  // pointer-stable unique_ptrs and never removed.
  by_name_.emplace(std::string_view(raw->name), raw);
  return raw;
}

Counter* MetricRegistry::GetCounter(std::string_view name,
                                    std::string_view help) {
  return GetOrCreate(name, help, MetricType::kCounter)->counter.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name,
                                std::string_view help) {
  return GetOrCreate(name, help, MetricType::kGauge)->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name,
                                        std::string_view help) {
  return GetOrCreate(name, help, MetricType::kHistogram)->histogram.get();
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot snapshot;
  {
    std::lock_guard lock(mutex_);
    snapshot.metrics.reserve(entries_.size());
    for (const auto& entry : entries_) {
      MetricSnapshot metric;
      metric.name = entry->name;
      metric.help = entry->help;
      metric.type = entry->type;
      switch (entry->type) {
        case MetricType::kCounter:
          metric.value = entry->counter->Value();
          break;
        case MetricType::kGauge:
          metric.value = entry->gauge->Value();
          break;
        case MetricType::kHistogram:
          metric.histogram = entry->histogram->Snapshot();
          break;
      }
      snapshot.metrics.push_back(std::move(metric));
    }
  }
  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return snapshot;
}

}  // namespace ksir
