file(REMOVE_RECURSE
  "CMakeFiles/score_cache_test.dir/tests/score_cache_test.cpp.o"
  "CMakeFiles/score_cache_test.dir/tests/score_cache_test.cpp.o.d"
  "score_cache_test"
  "score_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/score_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
