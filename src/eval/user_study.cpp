#include "eval/user_study.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "eval/kappa.h"
#include "eval/metrics.h"

namespace ksir {

namespace {

// Mean topic-space relevance of the result set's members to the query.
double MeanRelevance(const ActiveWindow& window,
                     const std::vector<ElementId>& result_set,
                     const SparseVector& x) {
  if (result_set.empty()) return 0.0;
  double total = 0.0;
  std::size_t found = 0;
  for (ElementId id : result_set) {
    const SocialElement* e = window.Find(id);
    if (e == nullptr) continue;
    total += SparseVector::Cosine(e->topics, x);
    ++found;
  }
  return found == 0 ? 0.0 : total / static_cast<double>(found);
}

// Ranks `raw` descending and maps ranks onto 1..5 (5 = best), matching the
// paper's "least ... to most ..." five-point scale.
std::vector<std::int32_t> RanksToRatings(const std::vector<double>& raw) {
  const std::size_t m = raw.size();
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (raw[a] != raw[b]) return raw[a] > raw[b];
    return a < b;
  });
  std::vector<std::int32_t> ratings(m);
  for (std::size_t rank = 0; rank < m; ++rank) {
    const double frac =
        m == 1 ? 1.0
               : static_cast<double>(m - 1 - rank) / static_cast<double>(m - 1);
    ratings[order[rank]] = 1 + static_cast<std::int32_t>(std::lround(4.0 * frac));
  }
  return ratings;
}

}  // namespace

StatusOr<UserStudyResult> RunProxyUserStudy(
    const ActiveWindow& window,
    const std::vector<std::vector<StudyEntry>>& queries,
    const std::vector<SparseVector>& query_vectors, UserStudyOptions options) {
  if (queries.empty()) {
    return Status::InvalidArgument("study needs at least one query");
  }
  if (queries.size() != query_vectors.size()) {
    return Status::InvalidArgument("queries / query_vectors size mismatch");
  }
  if (options.raters_per_query < 2) {
    return Status::InvalidArgument("need at least two raters for kappa");
  }
  const std::size_t num_methods = queries.front().size();
  if (num_methods < 2) {
    return Status::InvalidArgument("study needs at least two methods");
  }
  for (const auto& entries : queries) {
    if (entries.size() != num_methods) {
      return Status::InvalidArgument("every query must rate the same methods");
    }
    for (std::size_t m = 0; m < num_methods; ++m) {
      if (entries[m].method != queries.front()[m].method) {
        return Status::InvalidArgument("method order differs across queries");
      }
    }
  }

  const auto raters = static_cast<std::size_t>(options.raters_per_query);
  // ratings[aspect][rater] is the flat sequence over (query, method).
  std::vector<std::vector<std::int32_t>> rep_ratings(raters);
  std::vector<std::vector<std::int32_t>> impact_ratings(raters);
  std::vector<double> rep_sum(num_methods, 0.0);
  std::vector<double> impact_sum(num_methods, 0.0);

  Rng rng(options.seed);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto& entries = queries[q];
    const SparseVector& x = query_vectors[q];

    // Raw aspect scores per method.
    std::vector<double> rep_raw(num_methods);
    std::vector<double> impact_raw(num_methods);
    double max_cov = 0.0;
    double max_rel = 0.0;
    std::vector<double> cov(num_methods);
    std::vector<double> rel(num_methods);
    for (std::size_t m = 0; m < num_methods; ++m) {
      cov[m] = CoverageScore(window, entries[m].result_set, x);
      rel[m] = MeanRelevance(window, entries[m].result_set, x);
      max_cov = std::max(max_cov, cov[m]);
      max_rel = std::max(max_rel, rel[m]);
    }
    for (std::size_t m = 0; m < num_methods; ++m) {
      const double cov_n = max_cov > 0.0 ? cov[m] / max_cov : 0.0;
      const double rel_n = max_rel > 0.0 ? rel[m] / max_rel : 0.0;
      rep_raw[m] = 0.5 * cov_n + 0.5 * rel_n;
      impact_raw[m] =
          static_cast<double>(InfluenceCount(window, entries[m].result_set));
    }

    // Rater noise is additive and scaled to the spread of the raw scores
    // across methods: raters disagree about close calls, not about clear
    // winners, which yields the partial (0.5-0.9) kappa the paper reports.
    auto spread = [](const std::vector<double>& values) {
      double mean = 0.0;
      for (double v : values) mean += v;
      mean /= static_cast<double>(values.size());
      double var = 0.0;
      for (double v : values) var += (v - mean) * (v - mean);
      const double sd = std::sqrt(var / static_cast<double>(values.size()));
      return sd > 0.0 ? sd : 1.0;
    };
    const double rep_spread = spread(rep_raw);
    const double impact_spread = spread(impact_raw);
    for (std::size_t r = 0; r < raters; ++r) {
      std::vector<double> rep_noisy(num_methods);
      std::vector<double> impact_noisy(num_methods);
      for (std::size_t m = 0; m < num_methods; ++m) {
        rep_noisy[m] = rep_raw[m] + options.rater_noise * rep_spread *
                                        rng.NextGaussian();
        impact_noisy[m] = impact_raw[m] + options.rater_noise *
                                              impact_spread *
                                              rng.NextGaussian();
      }
      const auto rep = RanksToRatings(rep_noisy);
      const auto imp = RanksToRatings(impact_noisy);
      for (std::size_t m = 0; m < num_methods; ++m) {
        rep_ratings[r].push_back(rep[m]);
        impact_ratings[r].push_back(imp[m]);
        rep_sum[m] += rep[m];
        impact_sum[m] += imp[m];
      }
    }
  }

  UserStudyResult result;
  const double denom =
      static_cast<double>(queries.size()) * static_cast<double>(raters);
  for (std::size_t m = 0; m < num_methods; ++m) {
    result.ratings.push_back(MethodRating{queries.front()[m].method,
                                          rep_sum[m] / denom,
                                          impact_sum[m] / denom});
  }

  // Mean pairwise weighted kappa across raters.
  double rep_kappa_sum = 0.0;
  double impact_kappa_sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < raters; ++a) {
    for (std::size_t b = a + 1; b < raters; ++b) {
      KSIR_ASSIGN_OR_RETURN(
          double rk, CohenLinearWeightedKappa(rep_ratings[a], rep_ratings[b], 5));
      KSIR_ASSIGN_OR_RETURN(
          double ik,
          CohenLinearWeightedKappa(impact_ratings[a], impact_ratings[b], 5));
      rep_kappa_sum += rk;
      impact_kappa_sum += ik;
      ++pairs;
    }
  }
  result.kappa_representativeness = rep_kappa_sum / static_cast<double>(pairs);
  result.kappa_impact = impact_kappa_sum / static_cast<double>(pairs);
  return result;
}

}  // namespace ksir
