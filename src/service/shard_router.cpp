#include "service/shard_router.h"

#include "common/check.h"

namespace ksir {

ShardRouter::ShardRouter(std::size_t num_shards) : num_shards_(num_shards) {
  KSIR_CHECK(num_shards >= 1);
}

std::size_t ShardRouter::HashShard(ElementId id) const {
  // splitmix64 finalizer: cheap, well-mixed, deterministic across platforms.
  auto x = static_cast<std::uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x = x ^ (x >> 31);
  return static_cast<std::size_t>(x % num_shards_);
}

std::size_t ShardRouter::Route(const SocialElement& e) {
  std::size_t shard = num_shards_;  // sentinel: undecided
  for (const ElementId target : e.refs) {
    const auto it = assignment_.find(target);
    if (it == assignment_.end()) continue;
    // The referral keeps the target routable, exactly like it keeps the
    // target active in the shard's window.
    if (e.ts > it->second.last_touch) {
      it->second.last_touch = e.ts;
      touch_queue_.emplace_back(target, e.ts);
    }
    if (shard == num_shards_) {
      shard = it->second.shard;
    } else if (it->second.shard != shard) {
      ++cross_shard_refs_;
    }
  }
  if (shard == num_shards_) shard = HashShard(e.id);
  assignment_[e.id] =
      Assignment{static_cast<std::uint32_t>(shard), e.ts};
  touch_queue_.emplace_back(e.id, e.ts);
  return shard;
}

bool ShardRouter::Knows(ElementId id) const {
  return assignment_.contains(id);
}

void ShardRouter::Forget(const std::vector<ElementId>& ids) {
  for (const ElementId id : ids) assignment_.erase(id);
  // Their touch_queue_ entries become stale and are skipped by the prune.
}

void ShardRouter::PruneOlderThan(Timestamp cutoff) {
  while (!touch_queue_.empty() && touch_queue_.front().second <= cutoff) {
    const auto [id, touch] = touch_queue_.front();
    touch_queue_.pop_front();
    const auto it = assignment_.find(id);
    if (it == assignment_.end() || it->second.last_touch != touch) {
      continue;  // forgotten, or touched again by a later referral
    }
    assignment_.erase(it);
  }
}

}  // namespace ksir
