// Top-k Representative baseline (paper Section 5.1): the k active elements
// with the highest singleton scores delta(e, x), retrieved from the ranked
// lists with upper-bound early termination. Ignores word and influence
// overlap, hence only 1/k-approximate for k-SIR.
#ifndef KSIR_CORE_TOPK_REPRESENTATIVE_H_
#define KSIR_CORE_TOPK_REPRESENTATIVE_H_

#include "core/query.h"
#include "core/ranked_list.h"
#include "core/scoring.h"

namespace ksir {

/// Runs the top-k representative baseline. The reported score is f(S, x) of
/// the returned set (comparable with the submodular algorithms).
QueryResult RunTopkRepresentative(const ScoringContext& ctx,
                                  const RankedListIndex& index,
                                  const KsirQuery& query);

}  // namespace ksir

#endif  // KSIR_CORE_TOPK_REPRESENTATIVE_H_
