# Empty dependencies file for table03_dataset_stats.
# This may be replaced when dependencies are built.
