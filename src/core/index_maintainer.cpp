#include "core/index_maintainer.h"

#include <algorithm>

#include "common/check.h"

namespace ksir {

IndexMaintainer::IndexMaintainer(const ScoringContext* ctx,
                                 RankedListIndex* index, RefreshMode mode,
                                 ScoreMaintenance maintenance,
                                 std::size_t reposition_batch_min)
    : ctx_(ctx),
      index_(index),
      mode_(mode),
      maintenance_(maintenance),
      batch_min_(reposition_batch_min),
      cache_(ctx) {
  KSIR_CHECK(ctx != nullptr);
  KSIR_CHECK(index != nullptr);
  topic_counts_.resize(index->num_topics(), 0);
}

void IndexMaintainer::Apply(const ActiveWindow::UpdateResult& update) {
  if (maintenance_ == ScoreMaintenance::kIncremental) {
    ApplyIncremental(update);
  } else {
    ApplyRecompute(update);
  }
}

void IndexMaintainer::ApplyIncremental(
    const ActiveWindow::UpdateResult& update) {
  const ActiveWindow& window = ctx_->window();
  // Expiry first: expired ids are no longer in the window store.
  for (ElementId id : update.expired) {
    index_->Erase(id);
    cache_.Erase(id);
  }
  // Inserted and resurrected elements get the one full scan of their
  // lifetime; the window's referrer sets already reflect this bucket, so
  // their edge deltas are folded in here (and omitted from the edge lists).
  for (ElementId id : update.inserted) InsertFresh(id);
  for (ElementId id : update.resurrected) InsertFresh(id);
  // Edge deltas keep the cached influence halves exact — in *both* refresh
  // modes. Under kPaper the lists may stay stale-high, but the cache always
  // holds the true I_{i,t}(e), so the next reposition lands exactly where a
  // full recompute would. gained_edges arrive grouped by referrer (phase-1
  // order of Advance), so the referrer lookup is memoized across each run;
  // lost_edges interleave referrers (they are grouped by target), so for
  // them the memo is merely opportunistic.
  const SocialElement* referrer = nullptr;
  ElementId referrer_id = kInvalidElementId;
  for (const ActiveWindow::EdgeDelta& edge : update.gained_edges) {
    if (edge.referrer != referrer_id) {
      referrer = window.Find(edge.referrer);
      referrer_id = edge.referrer;
      KSIR_CHECK(referrer != nullptr);
    }
    cache_.AddEdge(edge.target, referrer->topics);
  }
  referrer = nullptr;
  referrer_id = kInvalidElementId;
  for (const ActiveWindow::EdgeDelta& edge : update.lost_edges) {
    if (edge.referrer != referrer_id) {
      // The expired referrer already left A_t; its element (and topic
      // vector) is still retained in the archive for this very lookup.
      referrer = window.FindIncludingArchived(edge.referrer);
      referrer_id = edge.referrer;
      KSIR_CHECK(referrer != nullptr);
    }
    cache_.RemoveEdge(edge.target, referrer->topics);
  }
  // All edge deltas are applied before any reposition, so the cached
  // influence halves are final for this bucket — queue order does not
  // affect the composed scores, and the batched and single-reposition
  // paths land every element on the identical tuple.
  if (batch_min_ == 0) {
    for (ElementId id : update.gained_referrer) {
      RepositionFromCache(id);
    }
    if (mode_ == RefreshMode::kExact) {
      for (ElementId id : update.lost_referrer) {
        RepositionFromCache(id);
      }
    }
    return;
  }
  for (ElementId id : update.gained_referrer) {
    QueueReposition(id, /*te_changed=*/true);
  }
  if (mode_ == RefreshMode::kExact) {
    // A lost referral never moves t_e (it is a running max), so lists whose
    // composed score is unchanged — the expired referrer shared none of
    // those topics — need no touch at all.
    for (ElementId id : update.lost_referrer) {
      QueueReposition(id, /*te_changed=*/false);
    }
  }
  FlushRepositions();
}

void IndexMaintainer::ApplyRecompute(
    const ActiveWindow::UpdateResult& update) {
  const ActiveWindow& window = ctx_->window();
  for (ElementId id : update.expired) {
    index_->Erase(id);
  }
  for (ElementId id : update.inserted) {
    const SocialElement* e = window.Find(id);
    KSIR_CHECK(e != nullptr);
    index_->Insert(id, ctx_->AllTopicScores(*e), window.LastReferredAt(id));
  }
  // Resurrected elements were erased from the lists when they deactivated;
  // they re-enter with freshly computed scores.
  for (ElementId id : update.resurrected) {
    const SocialElement* e = window.Find(id);
    KSIR_CHECK(e != nullptr);
    index_->Insert(id, ctx_->AllTopicScores(*e), window.LastReferredAt(id));
  }
  for (ElementId id : update.gained_referrer) {
    RepositionRecompute(id);
  }
  if (mode_ == RefreshMode::kExact) {
    for (ElementId id : update.lost_referrer) {
      RepositionRecompute(id);
    }
  }
}

void IndexMaintainer::InsertFresh(ElementId id) {
  const SocialElement* e = ctx_->window().Find(id);
  KSIR_CHECK(e != nullptr);
  cache_.Insert(*e);
  cache_.ComposeScores(id, &scratch_scores_);
  index_->Insert(id, scratch_scores_, ctx_->window().LastReferredAt(id));
}

void IndexMaintainer::RepositionRecompute(ElementId id) {
  const SocialElement* e = ctx_->window().Find(id);
  KSIR_CHECK(e != nullptr);
  index_->Update(id, ctx_->AllTopicScores(*e),
                 ctx_->window().LastReferredAt(id));
}

void IndexMaintainer::RepositionFromCache(ElementId id) {
  cache_.ComposeScores(id, &scratch_scores_);
  index_->UpdateTrusted(id, scratch_scores_,
                        ctx_->window().LastReferredAt(id));
}

void IndexMaintainer::QueueReposition(ElementId id, bool te_changed) {
  // Compose straight into the pending runs — no intermediate score vector.
  ScoreCache::TopicList& halves = cache_.MutableHalves(id);
  const double lambda = ctx_->params().lambda;
  const double influence_factor = ctx_->influence_factor();
  Timestamp te = kMinTimestamp;
  bool te_loaded = false;
  for (ScoreCache::TopicHalves& half : halves) {
    const double score =
        lambda * half.semantic + influence_factor * half.influence;
    // Elide tuples the batch would not move: same listed score, same t_e.
    if (!te_changed && score == half.listed) continue;
    half.listed = score;
    if (!te_loaded) {
      te = ctx_->window().LastReferredAt(id);
      te_loaded = true;
    }
    const auto t = static_cast<std::size_t>(half.topic);
    if (topic_counts_[t]++ == 0) touched_.push_back(half.topic);
    pending_.push_back({half.topic, RankedList::Tuple{id, score, te}});
  }
}

void IndexMaintainer::FlushRepositions() {
  if (pending_.empty()) return;
  // Scatter the queued (topic, tuple) pairs into contiguous per-topic runs.
  // Processing list by list (instead of element by element across all of
  // its lists) keeps each chunk directory hot, and lists with enough
  // pending work take the one-pass merge sweep. Topic order is sorted only
  // for determinism of the arena layout; the runs are independent.
  run_arena_.Reset();
  auto* runs = run_arena_.AllocateArray<RankedList::Tuple>(pending_.size());
  std::sort(touched_.begin(), touched_.end());
  // offsets[t] = start of topic t's run; reuses topic_counts_ as cursor.
  auto* offsets = run_arena_.AllocateArray<std::uint32_t>(touched_.size());
  std::uint32_t offset = 0;
  for (std::size_t i = 0; i < touched_.size(); ++i) {
    offsets[i] = offset;
    const auto t = static_cast<std::size_t>(touched_[i]);
    const std::uint32_t count = topic_counts_[t];
    // Repurpose topic_counts_ as the scatter cursor (start index).
    topic_counts_[t] = offset;
    offset += count;
  }
  for (const PendingReposition& pending : pending_) {
    runs[topic_counts_[static_cast<std::size_t>(pending.topic)]++] =
        pending.tuple;
  }
  for (std::size_t i = 0; i < touched_.size(); ++i) {
    const TopicId topic = touched_[i];
    const std::uint32_t begin = offsets[i];
    const std::uint32_t end = topic_counts_[static_cast<std::size_t>(topic)];
    const std::size_t count = end - begin;
    index_->BatchReposition(topic, runs + begin, count,
                            /*merge=*/count >= batch_min_, &batch_scratch_);
    topic_counts_[static_cast<std::size_t>(topic)] = 0;
  }
  touched_.clear();
  pending_.clear();
}

}  // namespace ksir
