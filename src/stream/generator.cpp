#include "stream/generator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "common/rng.h"

namespace ksir {

StreamProfile AMinerSimProfile(double scale) {
  StreamProfile p;
  p.name = "AMinerSim";
  p.num_elements = static_cast<std::size_t>(16000 * scale);
  p.vocab_size = 12000;
  p.num_topics = 50;
  p.avg_length = 49.2;       // Table 3: post-preprocessing average length
  p.avg_references = 3.68;   // Table 3: average references (citations)
  p.duration = 4 * 24 * 3600;
  p.doc_topic_concentration = 0.4;  // papers are topically focused
  p.ref_horizon = 30 * 3600; // citations reach further back
  p.ref_recency_tau = 12 * 3600.0;
  p.ref_popularity_weight = 0.8;  // citation counts are heavy-tailed
  p.seed = 1001;
  return p;
}

StreamProfile RedditSimProfile(double scale) {
  StreamProfile p;
  p.name = "RedditSim";
  p.num_elements = static_cast<std::size_t>(24000 * scale);
  p.vocab_size = 16000;
  p.num_topics = 50;
  p.avg_length = 8.6;       // Table 3
  p.avg_references = 0.85;  // Table 3 (comment edges)
  p.duration = 4 * 24 * 3600;
  p.doc_topic_concentration = 0.55;
  p.ref_horizon = 12 * 3600;  // comments answer fresh submissions
  p.ref_recency_tau = 2 * 3600.0;
  p.ref_popularity_weight = 0.4;
  p.seed = 1002;
  return p;
}

StreamProfile TwitterSimProfile(double scale) {
  StreamProfile p;
  p.name = "TwitterSim";
  p.num_elements = static_cast<std::size_t>(24000 * scale);
  p.vocab_size = 14000;
  p.num_topics = 50;
  p.avg_length = 5.1;       // Table 3
  p.avg_references = 0.62;  // Table 3 (hashtag/retweet propagation)
  p.duration = 4 * 24 * 3600;
  p.doc_topic_concentration = 0.45;
  p.ref_horizon = 8 * 3600;  // retweets die quickly
  p.ref_recency_tau = 1.5 * 3600.0;
  p.ref_popularity_weight = 0.6;  // viral cascades
  p.seed = 1003;
  return p;
}

namespace {

// Builds the ground-truth topic-word matrix: each topic owns a Zipf-weighted
// core block of the vocabulary plus `background_mass` spread Zipf-wise over
// the whole vocabulary (shared words across topics).
std::vector<std::vector<double>> BuildTopicWordMatrix(
    const StreamProfile& p, Rng* rng) {
  const auto z = static_cast<std::size_t>(p.num_topics);
  const std::size_t m = p.vocab_size;
  const std::size_t block =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   p.core_block_factor *
                                   static_cast<double>(m) /
                                   static_cast<double>(z)));

  // Background Zipf weights over a random permutation of the vocabulary so
  // that frequent background words are not correlated with word ids.
  std::vector<std::size_t> perm(m);
  for (std::size_t i = 0; i < m; ++i) perm[i] = i;
  for (std::size_t i = m - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng->NextUint64(i + 1)]);
  }
  std::vector<double> background(m, 0.0);
  double bg_total = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    const double w = 1.0 / std::pow(static_cast<double>(r + 1), p.word_zipf_s);
    background[perm[r]] = w;
    bg_total += w;
  }
  for (auto& w : background) w /= bg_total;

  std::vector<std::vector<double>> matrix(z, std::vector<double>(m, 0.0));
  for (std::size_t i = 0; i < z; ++i) {
    auto& row = matrix[i];
    // Core block: contiguous in permuted space so blocks of different topics
    // share little support (words are topic-specific, as in real corpora).
    const std::size_t start = (i * block) % m;
    double core_total = 0.0;
    std::vector<double> core(block);
    for (std::size_t r = 0; r < block; ++r) {
      core[r] = 1.0 / std::pow(static_cast<double>(r + 1), p.word_zipf_s);
      core_total += core[r];
    }
    for (std::size_t r = 0; r < block; ++r) {
      row[perm[(start + r) % m]] +=
          (1.0 - p.background_mass) * core[r] / core_total;
    }
    for (std::size_t w = 0; w < m; ++w) {
      row[w] += p.background_mass * background[w];
    }
  }
  return matrix;
}

// Candidate reference target tracked during generation.
struct RefCandidate {
  ElementId id;
  Timestamp ts;
  SparseVector topics;
  std::int32_t in_degree = 0;
};

}  // namespace

StatusOr<GeneratedStream> GenerateStream(const StreamProfile& profile) {
  if (profile.num_elements == 0) {
    return Status::InvalidArgument("num_elements must be positive");
  }
  if (profile.vocab_size == 0) {
    return Status::InvalidArgument("vocab_size must be positive");
  }
  if (profile.num_topics <= 0) {
    return Status::InvalidArgument("num_topics must be positive");
  }
  if (profile.duration <= 0) {
    return Status::InvalidArgument("duration must be positive");
  }
  if (profile.avg_length <= 0.0) {
    return Status::InvalidArgument("avg_length must be positive");
  }
  if (profile.avg_references < 0.0) {
    return Status::InvalidArgument("avg_references must be nonnegative");
  }
  if (profile.doc_topic_concentration <= 0.0) {
    return Status::InvalidArgument("doc_topic_concentration must be positive");
  }

  Rng rng(profile.seed);
  const auto z = static_cast<std::size_t>(profile.num_topics);

  // --- Ground-truth model -------------------------------------------------
  auto matrix = BuildTopicWordMatrix(profile, &rng);
  // Zipfian topic popularity (a few trending topics dominate).
  std::vector<double> topic_prior(z);
  for (std::size_t i = 0; i < z; ++i) {
    topic_prior[i] =
        1.0 / std::pow(static_cast<double>(i + 1), profile.topic_zipf_s);
  }
  KSIR_ASSIGN_OR_RETURN(
      TopicModel model,
      TopicModel::FromMatrix(std::move(matrix), topic_prior));

  // Per-topic word samplers.
  std::vector<std::unique_ptr<AliasTable>> word_samplers;
  word_samplers.reserve(z);
  for (std::size_t i = 0; i < z; ++i) {
    word_samplers.push_back(
        std::make_unique<AliasTable>(model.TopicRow(static_cast<TopicId>(i))));
  }

  GeneratedStream out{profile, Vocabulary(), std::move(model), {}};
  for (std::size_t w = 0; w < profile.vocab_size; ++w) {
    out.vocab.GetOrAdd("w" + std::to_string(w));
  }

  // Asymmetric Dirichlet: alpha_i proportional to topic popularity, with
  // sum(alpha) = doc_topic_concentration so mixtures stay sparse.
  std::vector<double> alpha(z);
  {
    double prior_total = 0.0;
    for (double v : topic_prior) prior_total += v;
    for (std::size_t i = 0; i < z; ++i) {
      alpha[i] =
          profile.doc_topic_concentration * topic_prior[i] / prior_total;
    }
  }

  // --- Arrivals: exponential inter-arrival gaps, rescaled to `duration` ---
  std::vector<double> raw_arrivals(profile.num_elements);
  double clock = 0.0;
  for (auto& t : raw_arrivals) {
    double u = rng.NextDouble();
    while (u <= 1e-15) u = rng.NextDouble();
    clock += -std::log(u);
    t = clock;
  }
  const double time_scale =
      static_cast<double>(profile.duration) / raw_arrivals.back();

  // --- Elements ------------------------------------------------------------
  std::deque<RefCandidate> recent;  // reference candidates within horizon
  out.elements.reserve(profile.num_elements);

  std::vector<double> ref_weights;
  std::vector<std::size_t> ref_pool;
  for (std::size_t n = 0; n < profile.num_elements; ++n) {
    SocialElement e;
    e.id = static_cast<ElementId>(n);
    e.ts = std::max<Timestamp>(
        1, static_cast<Timestamp>(std::llround(raw_arrivals[n] * time_scale)));

    // Topic mixture (sparse Dirichlet) and the sparse ground-truth vector.
    const std::vector<double> theta = rng.NextDirichlet(alpha);
    e.topics = SparseVector::TruncateAndNormalize(theta, 0.05);

    // Words: token topic ~ theta, word ~ phi_topic.
    const auto len = static_cast<std::size_t>(
        std::max<std::int64_t>(1, rng.NextPoisson(profile.avg_length)));
    std::vector<WordId> word_ids;
    word_ids.reserve(len);
    for (std::size_t j = 0; j < len; ++j) {
      const std::size_t topic = rng.NextCategorical(theta);
      const auto word =
          static_cast<WordId>(word_samplers[topic]->Sample(&rng));
      word_ids.push_back(word);
      out.vocab.AddOccurrences(word);
    }
    e.doc = Document::FromWordIds(word_ids);

    // References: drop expired candidates, then sample targets by
    // topic affinity x recency x popularity.
    while (!recent.empty() && recent.front().ts < e.ts - profile.ref_horizon) {
      recent.pop_front();
    }
    const auto want = static_cast<std::size_t>(std::min<std::int64_t>(
        profile.max_references, rng.NextPoisson(profile.avg_references)));
    if (want > 0 && !recent.empty()) {
      // Bounded candidate pool: the most recent `ref_candidate_pool`
      // elements (older targets are reachable through the recency decay of
      // earlier draws, and real reference locality is strongly recent).
      const std::size_t pool_size =
          std::min(recent.size(), profile.ref_candidate_pool);
      ref_weights.clear();
      ref_pool.clear();
      for (std::size_t r = recent.size() - pool_size; r < recent.size(); ++r) {
        const RefCandidate& cand = recent[r];
        if (cand.ts >= e.ts) continue;  // refs must point strictly earlier
        const double affinity = SparseVector::Dot(e.topics, cand.topics);
        const double recency = std::exp(
            -static_cast<double>(e.ts - cand.ts) / profile.ref_recency_tau);
        const double popularity =
            1.0 + profile.ref_popularity_weight *
                      static_cast<double>(cand.in_degree);
        const double weight = (0.05 + affinity) * recency * popularity;
        if (weight <= 0.0) continue;
        ref_weights.push_back(weight);
        ref_pool.push_back(r);
      }
      std::size_t drawn = 0;
      while (drawn < want && !ref_weights.empty()) {
        const std::size_t pick = rng.NextCategorical(ref_weights);
        const std::size_t r = ref_pool[pick];
        e.refs.push_back(recent[r].id);
        ++recent[r].in_degree;
        // Remove to avoid duplicate targets.
        ref_weights[pick] = ref_weights.back();
        ref_weights.pop_back();
        ref_pool[pick] = ref_pool.back();
        ref_pool.pop_back();
        ++drawn;
      }
      std::sort(e.refs.begin(), e.refs.end());
    }

    recent.push_back(RefCandidate{e.id, e.ts, e.topics, 0});
    out.elements.push_back(std::move(e));
  }
  return out;
}

}  // namespace ksir
