// Figure 7: average k-SIR query time of MTTS and MTTD with varying epsilon
// (0.1 .. 0.5), defaults k = 10, z = 50, T = 24 h, on all three datasets.
//
// Expected shape (paper): MTTS time drops sharply as epsilon grows (fewer
// candidates); MTTD is insensitive, rising slightly (lower termination
// threshold -> more retrievals).
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ksir;
  using namespace ksir::bench;
  PrintBanner("Figure 7 - query time vs epsilon (MTTS, MTTD)",
              "EDBT'19 Fig. 7(a)-(c)");

  const std::size_t num_queries = NumQueries(GetScale());
  for (int which = 0; which < 3; ++which) {
    const Dataset dataset = MakeDataset(which);
    const auto engine = BuildAndFeed(dataset, MakeConfig(dataset));
    const auto workload = MakeWorkload(dataset, num_queries);
    std::printf("\n[%s]  active elements at query time: %zu\n",
                dataset.name.c_str(), engine->window().num_active());
    PrintHeaderRow("eps", {"MTTS (ms)", "MTTD (ms)"});
    for (const double eps : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      const CellStats mtts =
          RunWorkload(*engine, workload, Algorithm::kMtts, 10, eps);
      const CellStats mttd =
          RunWorkload(*engine, workload, Algorithm::kMttd, 10, eps);
      char axis[16];
      std::snprintf(axis, sizeof(axis), "%.1f", eps);
      PrintRow(axis, {mtts.mean_time_ms, mttd.mean_time_ms});
    }
  }
  return 0;
}
