// Algorithm 1: keeps the per-topic ranked lists consistent with the active
// window as buckets arrive and expire.
#ifndef KSIR_CORE_INDEX_MAINTAINER_H_
#define KSIR_CORE_INDEX_MAINTAINER_H_

#include <utility>
#include <vector>

#include "core/ranked_list.h"
#include "core/score_cache.h"
#include "core/scoring.h"
#include "window/active_window.h"

namespace ksir {

/// How ranked-list scores react to referrer expiry (DESIGN.md §5).
enum class RefreshMode {
  /// Reposition elements whose referrers expired: list scores are always
  /// exactly delta_i(e). Default.
  kExact,
  /// Literal Algorithm 1: scores are only refreshed when an element gains a
  /// referrer. A score may stay stale-high after referrer expiry, which
  /// keeps upper-bound pruning sound but less tight.
  kPaper,
};

/// How reposition scores are produced.
enum class ScoreMaintenance {
  /// ScoreCache decomposition: the semantic half is computed once per
  /// element lifetime and the influence half updated per edge, making a
  /// reposition O(|shared topics|). Default.
  kIncremental,
  /// Recompute delta_i(e) from scratch (full word scan per topic plus a
  /// referrer-set scan) on every reposition. The pre-decomposition
  /// behavior; kept as the reference baseline for equivalence tests and the
  /// hot-path benchmark.
  kRecompute,
};

/// Applies window updates to the ranked lists (Algorithm 1 lines 4-13).
class IndexMaintainer {
 public:
  /// `ctx` and `index` must outlive the maintainer; `ctx`'s window must be
  /// the window whose updates are applied.
  IndexMaintainer(const ScoringContext* ctx, RankedListIndex* index,
                  RefreshMode mode = RefreshMode::kExact,
                  ScoreMaintenance maintenance = ScoreMaintenance::kIncremental);

  /// Applies one Advance() result. Must be called after every window
  /// advance, with no interleaved advances.
  void Apply(const ActiveWindow::UpdateResult& update);

  RefreshMode mode() const { return mode_; }
  ScoreMaintenance maintenance() const { return maintenance_; }

  /// The cache backing kIncremental maintenance (exposed for tests).
  const ScoreCache& score_cache() const { return cache_; }

 private:
  void ApplyIncremental(const ActiveWindow::UpdateResult& update);
  void ApplyRecompute(const ActiveWindow::UpdateResult& update);

  /// Inserts `id` into the lists (and the cache under kIncremental).
  void InsertFresh(ElementId id);

  /// kRecompute reposition: full rescore.
  void RepositionRecompute(ElementId id);

  /// kIncremental reposition: compose from the cached halves.
  void RepositionFromCache(ElementId id);

  const ScoringContext* ctx_;
  RankedListIndex* index_;
  RefreshMode mode_;
  ScoreMaintenance maintenance_;
  ScoreCache cache_;
  /// Reused (topic, score) buffer; repositions are too frequent to allocate.
  std::vector<std::pair<TopicId, double>> scratch_scores_;
};

}  // namespace ksir

#endif  // KSIR_CORE_INDEX_MAINTAINER_H_
