#include "search/pagerank.h"

#include <vector>

#include "common/check.h"

namespace ksir {

std::unordered_map<ElementId, double> ComputePageRank(
    const ActiveWindow& window, PageRankOptions options) {
  KSIR_CHECK(options.damping >= 0.0 && options.damping < 1.0);
  // Dense local ids for the active set.
  std::vector<ElementId> ids = window.ActiveIds();
  const std::size_t n = ids.size();
  std::unordered_map<ElementId, double> result;
  if (n == 0) return result;
  std::unordered_map<ElementId, std::size_t> local;
  local.reserve(n);
  for (std::size_t i = 0; i < n; ++i) local[ids[i]] = i;

  // Edges: referrer -> referenced element (influence flows to the cited).
  // ReferrersOf(e) holds the in-window elements referring to e, so each
  // (r, e) pair is an edge r -> e.
  std::vector<std::vector<std::size_t>> in_edges(n);   // e <- r
  std::vector<std::size_t> out_degree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const Referrer& r : window.ReferrersOf(ids[i])) {
      const auto it = local.find(r.id);
      if (it == local.end()) continue;
      in_edges[i].push_back(it->second);
      ++out_degree[it->second];
    }
  }

  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, uniform);
  std::vector<double> next(n, 0.0);
  for (std::int32_t iter = 0; iter < options.iterations; ++iter) {
    double dangling = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (out_degree[i] == 0) dangling += rank[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      double incoming = 0.0;
      for (std::size_t r : in_edges[i]) {
        incoming += rank[r] / static_cast<double>(out_degree[r]);
      }
      next[i] = (1.0 - options.damping) * uniform +
                options.damping * (incoming + dangling * uniform);
    }
    rank.swap(next);
  }
  result.reserve(n);
  for (std::size_t i = 0; i < n; ++i) result[ids[i]] = rank[i];
  return result;
}

}  // namespace ksir
