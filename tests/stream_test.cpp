// Unit tests for the stream substrate: element serialization and the
// synthetic generator's statistical targets (Table 3 calibration).
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "stream/generator.h"
#include "stream/stream_io.h"

namespace ksir {
namespace {

SocialElement MakeElement(ElementId id, Timestamp ts,
                          std::vector<WordId> words,
                          std::vector<ElementId> refs) {
  SocialElement e;
  e.id = id;
  e.ts = ts;
  e.doc = Document::FromWordIds(words);
  e.refs = std::move(refs);
  e.topics = SparseVector::FromEntries({{0, 0.4}, {1, 0.6}});
  return e;
}

// ---------------------------------------------------------------- TSV I/O --

TEST(StreamIoTest, RoundTrip) {
  std::vector<SocialElement> elements;
  elements.push_back(MakeElement(1, 10, {0, 0, 3}, {}));
  elements.push_back(MakeElement(2, 20, {1}, {1}));
  elements.push_back(MakeElement(3, 20, {}, {1, 2}));

  std::stringstream buffer;
  ASSERT_TRUE(WriteStreamTsv(elements, &buffer).ok());
  auto loaded = ReadStreamTsv(&buffer);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[0].id, 1);
  EXPECT_EQ((*loaded)[0].ts, 10);
  EXPECT_EQ((*loaded)[0].doc.FrequencyOf(0), 2);
  EXPECT_EQ((*loaded)[0].doc.FrequencyOf(3), 1);
  EXPECT_TRUE((*loaded)[0].refs.empty());
  EXPECT_EQ((*loaded)[1].refs, (std::vector<ElementId>{1}));
  EXPECT_EQ((*loaded)[2].refs, (std::vector<ElementId>{1, 2}));
  EXPECT_NEAR((*loaded)[1].topics.Get(1), 0.6, 1e-12);
}

TEST(StreamIoTest, EmptyDocAndTopicsSerialized) {
  SocialElement e = MakeElement(5, 7, {}, {});
  e.topics = SparseVector();
  std::stringstream buffer;
  ASSERT_TRUE(WriteStreamTsv({e}, &buffer).ok());
  auto loaded = ReadStreamTsv(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE((*loaded)[0].doc.empty());
  EXPECT_TRUE((*loaded)[0].topics.empty());
}

TEST(StreamIoTest, RejectsDuplicateIds) {
  std::stringstream buffer;
  ASSERT_TRUE(WriteStreamTsv({MakeElement(1, 1, {0}, {}),
                              MakeElement(1, 2, {0}, {})},
                             &buffer)
                  .ok());
  EXPECT_FALSE(ReadStreamTsv(&buffer).ok());
}

TEST(StreamIoTest, RejectsDecreasingTimestamps) {
  std::stringstream buffer("1\t5\t-\t-\t-\n2\t4\t-\t-\t-\n");
  EXPECT_FALSE(ReadStreamTsv(&buffer).ok());
}

TEST(StreamIoTest, RejectsMalformedLines) {
  {
    std::stringstream buffer("1\t5\t-\t-\n");  // 4 fields
    EXPECT_FALSE(ReadStreamTsv(&buffer).ok());
  }
  {
    std::stringstream buffer("x\t5\t-\t-\t-\n");  // bad id
    EXPECT_FALSE(ReadStreamTsv(&buffer).ok());
  }
  {
    std::stringstream buffer("1\t5\t3:0\t-\t-\n");  // zero count
    EXPECT_FALSE(ReadStreamTsv(&buffer).ok());
  }
  {
    std::stringstream buffer("1\t5\t-\t-\t0:-1\n");  // negative prob
    EXPECT_FALSE(ReadStreamTsv(&buffer).ok());
  }
}

TEST(StreamIoTest, SkipsBlankLines) {
  std::stringstream buffer("\n1\t5\t0:1\t-\t-\n\n");
  auto loaded = ReadStreamTsv(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
}

// -------------------------------------------------------------- Generator --

TEST(GeneratorTest, RejectsInvalidProfiles) {
  StreamProfile p;
  p.num_elements = 0;
  EXPECT_FALSE(GenerateStream(p).ok());
  p = StreamProfile{};
  p.vocab_size = 0;
  EXPECT_FALSE(GenerateStream(p).ok());
  p = StreamProfile{};
  p.num_topics = 0;
  EXPECT_FALSE(GenerateStream(p).ok());
  p = StreamProfile{};
  p.duration = 0;
  EXPECT_FALSE(GenerateStream(p).ok());
}

class GeneratorStatsTest : public ::testing::TestWithParam<StreamProfile> {};

TEST_P(GeneratorStatsTest, MatchesProfileTargets) {
  StreamProfile profile = GetParam();
  profile.num_elements = 6000;  // enough for tight statistics, still fast
  auto stream = GenerateStream(profile);
  ASSERT_TRUE(stream.ok());
  ASSERT_EQ(stream->elements.size(), profile.num_elements);

  // Timestamps are positive, sorted, and span the requested duration.
  Timestamp last = 0;
  double total_len = 0.0;
  double total_refs = 0.0;
  for (const SocialElement& e : stream->elements) {
    EXPECT_GE(e.ts, 1);
    EXPECT_GE(e.ts, last);
    last = e.ts;
    total_len += static_cast<double>(e.doc.num_tokens());
    total_refs += static_cast<double>(e.refs.size());
    EXPECT_NEAR(e.topics.Sum(), 1.0, 1e-9);
    EXPECT_GE(e.topics.nnz(), 1u);
  }
  EXPECT_NEAR(static_cast<double>(last),
              static_cast<double>(profile.duration),
              static_cast<double>(profile.duration) * 0.01);

  const double n = static_cast<double>(profile.num_elements);
  EXPECT_NEAR(total_len / n, profile.avg_length, profile.avg_length * 0.1)
      << profile.name << " average length off target";
  EXPECT_NEAR(total_refs / n, profile.avg_references,
              profile.avg_references * 0.15 + 0.02)
      << profile.name << " average references off target";
}

TEST_P(GeneratorStatsTest, ReferencesPointBackwardWithinHorizon) {
  StreamProfile profile = GetParam();
  profile.num_elements = 3000;
  auto stream = GenerateStream(profile);
  ASSERT_TRUE(stream.ok());
  std::unordered_map<ElementId, Timestamp> ts_of;
  for (const SocialElement& e : stream->elements) ts_of[e.id] = e.ts;
  for (const SocialElement& e : stream->elements) {
    std::unordered_set<ElementId> seen;
    for (ElementId ref : e.refs) {
      ASSERT_TRUE(ts_of.contains(ref));
      EXPECT_LT(ts_of[ref], e.ts) << "references must point strictly back";
      EXPECT_GE(ts_of[ref], e.ts - profile.ref_horizon);
      EXPECT_TRUE(seen.insert(ref).second) << "duplicate reference target";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, GeneratorStatsTest,
    ::testing::Values(AMinerSimProfile(), RedditSimProfile(),
                      TwitterSimProfile()),
    [](const ::testing::TestParamInfo<StreamProfile>& param_info) {
      return param_info.param.name;
    });

TEST(GeneratorTest, DeterministicForSeed) {
  StreamProfile p = TwitterSimProfile();
  p.num_elements = 500;
  auto a = GenerateStream(p);
  auto b = GenerateStream(p);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a->elements.size(); ++i) {
    EXPECT_EQ(a->elements[i].ts, b->elements[i].ts);
    EXPECT_EQ(a->elements[i].doc, b->elements[i].doc);
    EXPECT_EQ(a->elements[i].refs, b->elements[i].refs);
    EXPECT_EQ(a->elements[i].topics, b->elements[i].topics);
  }
}

TEST(GeneratorTest, TopicVectorsAreSparse) {
  StreamProfile p = RedditSimProfile();
  p.num_elements = 2000;
  auto stream = GenerateStream(p);
  ASSERT_TRUE(stream.ok());
  double total_nnz = 0.0;
  for (const SocialElement& e : stream->elements) {
    total_nnz += static_cast<double>(e.topics.nnz());
  }
  // Matches the paper's observation: fewer than ~2 topics per element.
  EXPECT_LT(total_nnz / static_cast<double>(stream->elements.size()), 2.5);
}

TEST(GeneratorTest, GroundTruthModelIsValid) {
  StreamProfile p = AMinerSimProfile();
  p.num_elements = 100;
  auto stream = GenerateStream(p);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->model.num_topics(),
            static_cast<std::size_t>(p.num_topics));
  EXPECT_EQ(stream->model.vocab_size(), p.vocab_size);
  EXPECT_EQ(stream->vocab.size(), p.vocab_size);
  for (TopicId t = 0; t < p.num_topics; ++t) {
    const auto& row = stream->model.TopicRow(t);
    double sum = 0.0;
    for (double v : row) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(GeneratorTest, ReferencesFavorTopicalAffinity) {
  StreamProfile p = TwitterSimProfile();
  p.num_elements = 4000;
  auto stream = GenerateStream(p);
  ASSERT_TRUE(stream.ok());
  std::unordered_map<ElementId, const SocialElement*> by_id;
  for (const SocialElement& e : stream->elements) by_id[e.id] = &e;

  // Mean topical similarity of actual reference pairs should clearly exceed
  // the similarity of random pairs.
  double ref_sim = 0.0;
  std::size_t ref_count = 0;
  for (const SocialElement& e : stream->elements) {
    for (ElementId ref : e.refs) {
      ref_sim += SparseVector::Dot(e.topics, by_id[ref]->topics);
      ++ref_count;
    }
  }
  ASSERT_GT(ref_count, 100u);
  ref_sim /= static_cast<double>(ref_count);

  double random_sim = 0.0;
  std::size_t random_count = 0;
  for (std::size_t i = 0; i + 1 < stream->elements.size();
       i += 7, ++random_count) {
    random_sim += SparseVector::Dot(stream->elements[i].topics,
                                    stream->elements[i + 1].topics);
  }
  random_sim /= static_cast<double>(random_count);
  EXPECT_GT(ref_sim, random_sim * 1.5);
}

}  // namespace
}  // namespace ksir
