// Synthetic social stream generator.
//
// The paper evaluates on AMiner (papers + citations), Reddit (submissions +
// comments) and Twitter (tweets + hashtag propagation); the raw dumps are not
// redistributable, so the benchmarks generate streams that match the
// *post-preprocessing* statistics of Table 3 (average length, average
// references) and — more importantly — the structural properties the
// algorithms exploit (DESIGN.md §3):
//   1. skewed element scores: Zipfian topic popularity and word frequencies;
//   2. sparse topic vectors: sparse Dirichlet document-topic mixtures
//      (< 2 topics per element on average);
//   3. recency/popularity-driven references: preferential attachment with
//      exponential recency decay and topic affinity.
//
// Text is sampled from the LDA generative process against a synthetic
// ground-truth topic model, so the generator also serves as the topic-model
// oracle (the paper's "topic vectors given in advance" setting) and as
// labeled data for testing topic-model recovery.
#ifndef KSIR_STREAM_GENERATOR_H_
#define KSIR_STREAM_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "stream/element.h"
#include "text/vocabulary.h"
#include "topic/topic_model.h"

namespace ksir {

/// Tunable description of a synthetic stream.
struct StreamProfile {
  std::string name = "custom";
  /// Number of elements to generate.
  std::size_t num_elements = 20000;
  /// Vocabulary size m (post stop-wording).
  std::size_t vocab_size = 20000;
  /// Number of ground-truth topics z.
  std::int32_t num_topics = 50;
  /// Mean document length in tokens (Poisson, min 1).
  double avg_length = 8.0;
  /// Mean number of outgoing references per element (Poisson, capped).
  double avg_references = 0.8;
  /// Stream duration in time units (timestamps span [1, duration]).
  Timestamp duration = 4 * 24 * 3600;
  /// Total Dirichlet concentration (sum of the per-topic alphas) of
  /// document-topic mixtures. Values well below 1 yield sparse mixtures
  /// (the paper observes < 2 topics per element on average).
  double doc_topic_concentration = 0.5;
  /// Zipf exponent of within-topic word ranks.
  double word_zipf_s = 1.05;
  /// Zipf exponent of topic popularity.
  double topic_zipf_s = 0.8;
  /// Fraction of each topic's word distribution spread over the shared
  /// background vocabulary (word overlap across topics).
  double background_mass = 0.15;
  /// Size of each topic's dedicated core-word block as a multiple of
  /// vocab_size / num_topics (>= 1 blocks may overlap when > 1).
  double core_block_factor = 1.0;
  /// References may only target elements at most this much older; keep
  /// <= the engine's window length T so the active-set semantics of
  /// Section 3.1 hold exactly (see DESIGN.md).
  Timestamp ref_horizon = 24 * 3600;
  /// Exponential recency decay (time units) of reference target choice.
  double ref_recency_tau = 6 * 3600;
  /// Weight of current in-degree in reference target choice (preferential
  /// attachment strength).
  double ref_popularity_weight = 0.3;
  /// Maximum candidates considered per reference draw (bounds cost).
  std::size_t ref_candidate_pool = 512;
  /// Maximum outgoing references per element.
  std::int32_t max_references = 16;
  /// RNG seed; identical profiles generate identical streams.
  std::uint64_t seed = 42;
};

/// Profiles calibrated to Table 3 of the paper (post-preprocessing stats),
/// scaled down by default so the full benchmark suite runs on one machine.
/// `scale` multiplies the element count (1.0 = the scaled-down default).
StreamProfile AMinerSimProfile(double scale = 1.0);
StreamProfile RedditSimProfile(double scale = 1.0);
StreamProfile TwitterSimProfile(double scale = 1.0);

/// A generated stream plus its ground truth.
struct GeneratedStream {
  StreamProfile profile;
  /// Synthetic vocabulary ("w0", "w1", ...), WordId == index.
  Vocabulary vocab;
  /// Ground-truth topic model (the oracle handed to the engine).
  TopicModel model;
  /// Elements sorted by ts, each carrying its ground-truth sparse topic
  /// vector; ids are dense 0-based.
  std::vector<SocialElement> elements;
};

/// Generates a stream; fails on inconsistent profiles (zero sizes, etc.).
StatusOr<GeneratedStream> GenerateStream(const StreamProfile& profile);

}  // namespace ksir

#endif  // KSIR_STREAM_GENERATOR_H_
