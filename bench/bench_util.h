// Shared infrastructure of the experiment harness: dataset construction
// (three Table 3 profiles), keyword-query workload generation (Section 5.1),
// engine feeding, per-algorithm measurement, and table printing.
//
// Every per-figure/table binary in this directory builds on these helpers;
// the sizes are controlled by KSIR_BENCH_SCALE = smoke | small | paper
// (default small; paper multiplies the stream sizes by ~8 and the query
// counts accordingly).
#ifndef KSIR_BENCH_BENCH_UTIL_H_
#define KSIR_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "stream/generator.h"
#include "topic/inference.h"

namespace ksir::bench {

/// Benchmark size preset.
enum class Scale { kSmoke, kSmall, kPaper };

/// Reads KSIR_BENCH_SCALE (defaults to kSmall).
Scale GetScale();

/// Multiplier applied to the profile element counts.
double ElementFactor(Scale scale);

/// Number of queries measured per configuration point.
std::size_t NumQueries(Scale scale);

/// One benchmark dataset: a generated stream plus a calibrated eta.
///
/// The paper fixes eta = 20 (AMiner/Reddit) and 200 (Twitter) because eta
/// "adjusts the ranges of R and I to the same scale" *on those corpora*,
/// where popular elements gather thousands of in-window references. The
/// synthetic streams have far smaller in-degrees, so the same role is
/// played by calibrating eta = mean singleton influence / mean singleton
/// semantic score over the stream (see CalibrateEta; DESIGN.md §3).
struct Dataset {
  std::string name;
  GeneratedStream stream;
  double eta = 20.0;
};

/// eta such that, at lambda = 0.5, the average singleton influence term
/// matches the average singleton semantic term on a T-window of the stream.
double CalibrateEta(const GeneratedStream& stream,
                    Timestamp window_length = 24 * 3600);

/// Builds dataset `which` (0 = AMinerSim, 1 = RedditSim, 2 = TwitterSim)
/// with `num_topics` topics at the current scale.
Dataset MakeDataset(int which, int num_topics = 50);

/// All three datasets.
std::vector<Dataset> MakeAllDatasets(int num_topics = 50);

/// A generated k-SIR query: 1-5 frequency-weighted random keywords plus the
/// topic vector inferred from them (Section 5.1's workload).
struct QuerySpec {
  std::vector<WordId> keywords;
  SparseVector x;
};

/// Deterministic workload of `count` queries over the dataset vocabulary.
std::vector<QuerySpec> MakeWorkload(const Dataset& dataset, std::size_t count,
                                    std::uint64_t seed = 77);

/// Engine config with the paper defaults (lambda = 0.5, L = 15 min,
/// T = 24 h) and the dataset's eta.
EngineConfig MakeConfig(const Dataset& dataset,
                        Timestamp window_length = 24 * 3600,
                        RefreshMode mode = RefreshMode::kExact);

/// Builds an engine and feeds the dataset's whole stream.
std::unique_ptr<KsirEngine> BuildAndFeed(const Dataset& dataset,
                                         const EngineConfig& config);

/// Aggregated measurements of one (algorithm, configuration) cell.
struct CellStats {
  double mean_time_ms = 0.0;
  double mean_score = 0.0;
  /// Evaluated elements / active elements, averaged over queries.
  double mean_eval_ratio = 0.0;
  std::size_t queries = 0;
};

/// Runs the workload with one algorithm and aggregates.
CellStats RunWorkload(const KsirEngine& engine,
                      const std::vector<QuerySpec>& workload,
                      Algorithm algorithm, std::int32_t k, double epsilon);

/// ---- table printing -------------------------------------------------------

/// Prints the experiment banner with the current scale.
void PrintBanner(const std::string& title, const std::string& paper_ref);

/// Prints a header row: first column `axis`, then one column per label.
void PrintHeaderRow(const std::string& axis,
                    const std::vector<std::string>& labels);

/// Prints a data row: axis value then one numeric cell per value.
void PrintRow(const std::string& axis_value,
              const std::vector<double>& values, int precision = 3);

}  // namespace ksir::bench

#endif  // KSIR_BENCH_BENCH_UTIL_H_
