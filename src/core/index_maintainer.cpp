#include "core/index_maintainer.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/check.h"
#include "runtime/worker_pool.h"

namespace ksir {

IndexMaintainer::IndexMaintainer(const ScoringContext* ctx,
                                 RankedListIndex* index, RefreshMode mode,
                                 ScoreMaintenance maintenance,
                                 std::size_t reposition_batch_min,
                                 bool carry_handles, WorkerPool* pool,
                                 std::size_t parallel_workers,
                                 Telemetry* telemetry)
    : ctx_(ctx),
      index_(index),
      mode_(mode),
      maintenance_(maintenance),
      batch_min_(reposition_batch_min),
      use_handles_(carry_handles &&
                   maintenance == ScoreMaintenance::kIncremental &&
                   reposition_batch_min > 0),
      owned_telemetry_(telemetry == nullptr ? std::make_unique<Telemetry>()
                                            : nullptr),
      telemetry_(telemetry != nullptr ? telemetry : owned_telemetry_.get()),
      cache_(ctx) {
  KSIR_CHECK(ctx != nullptr);
  KSIR_CHECK(index != nullptr);
  MetricRegistry& reg = telemetry_->registry();
  stage_expiry_hist_ = reg.GetHistogram(
      "ksir_maintainer_stage_expiry_seconds",
      "Bucket-apply stage: expiry erases plus fresh-element layout");
  stage_score_hist_ = reg.GetHistogram(
      "ksir_maintainer_stage_score_seconds",
      "Bucket-apply stage: fresh scoring, edge folding, score composition");
  stage_gather_hist_ = reg.GetHistogram(
      "ksir_maintainer_stage_gather_seconds",
      "Bucket-apply stage: deterministic gather into per-topic runs");
  stage_list_apply_hist_ = reg.GetHistogram(
      "ksir_maintainer_stage_list_apply_seconds",
      "Bucket-apply stage: ranked-list inserts and reposition runs");
  bucket_apply_hist_ = reg.GetHistogram(
      "ksir_maintainer_bucket_apply_seconds",
      "Whole IndexMaintainer::Apply of one bucket");
  expired_counter_ = reg.GetCounter("ksir_maintainer_expired_total",
                                    "Elements erased on expiry");
  fresh_counter_ = reg.GetCounter(
      "ksir_maintainer_fresh_total",
      "Elements inserted fresh or resurrected into the ranked lists");
  touched_counter_ = reg.GetCounter(
      "ksir_maintainer_elements_touched_total",
      "Elements that gained or lost a referrer within a bucket");
  repositions_counter_ = reg.GetCounter(
      "ksir_maintainer_repositions_total",
      "Ranked-list reposition tuples actually applied");
  elisions_counter_ = reg.GetCounter(
      "ksir_maintainer_elisions_total",
      "Reposition tuples elided because the composed score equals the "
      "listed score");
  topic_counts_.resize(index->num_topics(), 0);
  summary_movement_.resize(index->num_topics(), 0.0);
  summary_seen_.resize(index->num_topics(), 0);
  edge_acc_.Resize(index->num_topics());
  // Only the handle pipeline parallelizes: its per-topic runs carry every
  // position and listed key, so the topic stage needs no shared lookups at
  // all. Other flavors fall back to their serial reference paths.
  parallel_ = pool != nullptr && parallel_workers >= 2 && use_handles_;
  if (parallel_) {
    pool_ = pool;
    workers_ = parallel_workers;
    insert_counts_.resize(index->num_topics(), 0);
    erase_seen_.resize(index->num_topics(), 0);
    topic_shard_.resize(index->num_topics(), 0);
    worker_acc_.resize(workers_);
    for (StampedAccumulator& acc : worker_acc_) {
      acc.Resize(index->num_topics());
    }
    worker_scratch_.resize(workers_);
  }
}

void IndexMaintainer::Apply(const ActiveWindow::UpdateResult& update) {
  // One bucket apply is one trace unit: every sample_period-th bucket gets
  // its stage spans recorded.
  telemetry_->tracer().SampleUnit();
  bucket_repositions_ = 0;
  bucket_elisions_ = 0;
  {
    StageScope scope(telemetry_, bucket_apply_hist_, "maint.bucket_apply");
    if (maintenance_ == ScoreMaintenance::kIncremental) {
      ApplyIncremental(update);
    } else {
      ApplyRecompute(update);
    }
  }
  MaterializeSummary();
  // Counter flush: the hot loops above accumulate into plain members; one
  // sharded fetch_add per series per bucket lands them in the registry.
  if (!update.expired.empty()) {
    expired_counter_->Add(static_cast<std::int64_t>(update.expired.size()));
  }
  const std::size_t fresh = update.inserted.size() + update.resurrected.size();
  if (fresh > 0) fresh_counter_->Add(static_cast<std::int64_t>(fresh));
  const std::size_t touched =
      update.gained_referrer.size() + update.lost_referrer.size();
  if (touched > 0) touched_counter_->Add(static_cast<std::int64_t>(touched));
  if (bucket_repositions_ > 0) {
    repositions_counter_->Add(static_cast<std::int64_t>(bucket_repositions_));
  }
  if (bucket_elisions_ > 0) {
    elisions_counter_->Add(static_cast<std::int64_t>(bucket_elisions_));
  }
}

void IndexMaintainer::TouchSummary(TopicId topic, double movement) {
  const auto slot = static_cast<std::size_t>(topic);
  if (summary_seen_[slot] == 0) {
    summary_seen_[slot] = 1;
    summary_topics_.push_back(topic);
  }
  if (movement > summary_movement_[slot]) summary_movement_[slot] = movement;
}

void IndexMaintainer::TouchElidedLoss(const ScoreCache::TopicList& halves,
                                      const StampedAccumulator& acc) {
  const double factor = ctx_->influence_factor();
  for (const ScoreCache::TopicHalves& half : halves) {
    const auto slot = static_cast<std::size_t>(half.topic);
    if (acc.Touched(slot)) {
      TouchSummary(half.topic,
                   std::abs(factor * half.topic_prob * acc.Get(slot)));
    }
  }
}

void IndexMaintainer::MaterializeSummary() {
  summary_.topics.clear();
  std::sort(summary_topics_.begin(), summary_topics_.end());
  summary_.topics.reserve(summary_topics_.size());
  for (const TopicId topic : summary_topics_) {
    const auto slot = static_cast<std::size_t>(topic);
    summary_.topics.push_back(AdvanceSummary::TopicTouch{
        topic, summary_movement_[slot]});
    summary_movement_[slot] = 0.0;
    summary_seen_[slot] = 0;
  }
  summary_topics_.clear();
}

void IndexMaintainer::EraseExpired(const ActiveWindow::Touched& t) {
  // Expired ids are no longer in the window store. With handle carrying
  // on, the cache entry (reached through the carried user slot) already
  // knows every list position and listed key of the dying element, so the
  // erases resolve through the carried hints instead of per-list id
  // probes.
  if (use_handles_) {
    // Under the handle pipeline every indexed element owns a cache entry
    // for its whole lifetime, and the id-keyed Erase below would abort on
    // the untracked lists anyway — so a missing entry here is a pipeline
    // bug, not a recoverable state.
    const ScoreCache::TopicList* halves = ScoreCache::FromSlot(*t.user_slot);
    KSIR_CHECK(halves != nullptr);
    KSIR_DCHECK(halves == cache_.Find(t.id));
    hint_scratch_.clear();
    for (const ScoreCache::TopicHalves& half : *halves) {
      hint_scratch_.push_back(
          RankedList::ErasureHint{half.topic, half.listed, half.handle});
      TouchSummary(half.topic, std::abs(half.listed));
    }
    index_->EraseWithHints(t.id, hint_scratch_.data(), hint_scratch_.size());
    cache_.Erase(t.id);
    return;
  }
  if (const ScoreCache::TopicList* halves = cache_.Find(t.id)) {
    for (const ScoreCache::TopicHalves& half : *halves) {
      TouchSummary(half.topic, std::abs(half.listed));
    }
  }
  index_->Erase(t.id);
  cache_.Erase(t.id);
}

void IndexMaintainer::ApplyIncremental(
    const ActiveWindow::UpdateResult& update) {
  if (parallel_) {
    ApplyIncrementalParallel(update);
    return;
  }
  {
    // Expiry first; fresh-element insertion shares the stage (it is the
    // serial path's window/membership layout work, matching the parallel
    // apply's stage 1+2 boundary).
    StageScope scope(telemetry_, stage_expiry_hist_, "maint.expiry");
    for (const ActiveWindow::Touched& t : update.expired) EraseExpired(t);
    // Inserted and resurrected elements get the one full scan of their
    // lifetime; the window's referrer sets already reflect this bucket, so
    // their edge spans are empty by contract.
    for (const ActiveWindow::Touched& t : update.inserted) InsertFresh(t);
    for (const ActiveWindow::Touched& t : update.resurrected) InsertFresh(t);
  }
  {
    StageScope scope(telemetry_, stage_score_hist_, "maint.score");
    // Each touched element applies its own carried edge spans right before
    // it is queued — the cached influence halves stay exact in *both*
    // refresh modes (under kPaper the lists may stay stale-high, but the
    // cache always holds the true I_{i,t}(e), so the next reposition lands
    // exactly where a full recompute would). Within one element the gained
    // terms are applied before the lost terms, and elements do not
    // interact, so the composed doubles are bitwise identical across the
    // handle, batched and single-reposition paths.
    for (const ActiveWindow::Touched& t : update.gained_referrer) {
      ProcessTouched(t, /*reposition=*/true, /*te_changed=*/true);
    }
    // A lost referral never moves t_e (it is a running max). Under kExact
    // the element is repositioned (topics the expired referrer did not
    // share are elided); under kPaper only the cache absorbs the loss.
    const bool reposition_losses = mode_ == RefreshMode::kExact;
    for (const ActiveWindow::Touched& t : update.lost_referrer) {
      ProcessTouched(t, reposition_losses, /*te_changed=*/false);
    }
  }
  // FlushRepositions times its own gather and list-apply stages (the
  // serial path's run gather was invisible in the stage breakdown when the
  // whole flush was lumped under list_apply).
  FlushRepositions();
}

void IndexMaintainer::ApplyRecompute(
    const ActiveWindow::UpdateResult& update) {
  // Summary movements on this baseline are best-effort (score magnitudes;
  // 0 for erases) — the topic SETS are exact, which is all activation
  // needs. See advance_summary.h.
  const auto touch_all =
      [this](const std::vector<std::pair<TopicId, double>>& scores) {
        for (const auto& [topic, score] : scores) {
          TouchSummary(topic, std::abs(score));
        }
      };
  {
    StageScope scope(telemetry_, stage_expiry_hist_, "maint.expiry");
    for (const ActiveWindow::Touched& t : update.expired) {
      for (const auto& [topic, prob] : t.element->topics.entries()) {
        TouchSummary(topic, 0.0);
      }
      index_->Erase(t.id);
    }
  }
  // The recompute baseline has no decomposed score stage: every insert /
  // update below recomputes delta_i(e) inline with the list write, so the
  // whole remainder is the list-apply stage.
  StageScope scope(telemetry_, stage_list_apply_hist_, "maint.list_apply");
  for (const ActiveWindow::Touched& t : update.inserted) {
    const auto scores = ctx_->AllTopicScores(*t.element);
    touch_all(scores);
    index_->Insert(t.id, scores, t.te);
  }
  // Resurrected elements were erased from the lists when they deactivated;
  // they re-enter with freshly computed scores.
  for (const ActiveWindow::Touched& t : update.resurrected) {
    const auto scores = ctx_->AllTopicScores(*t.element);
    touch_all(scores);
    index_->Insert(t.id, scores, t.te);
  }
  for (const ActiveWindow::Touched& t : update.gained_referrer) {
    const auto scores = ctx_->AllTopicScores(*t.element);
    touch_all(scores);
    index_->Update(t.id, scores, t.te);
  }
  for (const ActiveWindow::Touched& t : update.lost_referrer) {
    const auto scores = ctx_->AllTopicScores(*t.element);
    // Losses move true scores in both refresh modes; only kExact writes
    // them back into the lists.
    touch_all(scores);
    if (mode_ == RefreshMode::kExact) index_->Update(t.id, scores, t.te);
  }
}

void IndexMaintainer::InsertFresh(const ActiveWindow::Touched& t) {
  ScoreCache::TopicList& halves = cache_.Insert(*t.element);
  if (use_handles_) *t.user_slot = &halves;  // carried to every later touch
  scratch_scores_.clear();
  scratch_scores_.reserve(halves.size());
  for (const ScoreCache::TopicHalves& half : halves) {
    scratch_scores_.emplace_back(half.topic, half.listed);
    TouchSummary(half.topic, std::abs(half.listed));
  }
  if (use_handles_) {
    handle_scratch_.resize(halves.size());
    index_->Insert(t.id, scratch_scores_, t.te, handle_scratch_.data());
    for (std::size_t i = 0; i < halves.size(); ++i) {
      halves[i].handle = handle_scratch_[i];
    }
  } else {
    index_->Insert(t.id, scratch_scores_, t.te);
  }
}

void IndexMaintainer::ProcessTouched(const ActiveWindow::Touched& t,
                                     bool reposition, bool te_changed) {
  // Everything this element's bucket work needs — edge topic vectors, t_e,
  // and (through the carried user slot) the cache entry with its listed
  // scores and list positions — arrived in the Touched record; the
  // id-keyed reference path re-derives the entry by hashing instead.
  ScoreCache::TopicList& halves =
      use_handles_ ? *ScoreCache::FromSlot(*t.user_slot)
                   : cache_.MutableHalves(t.id);
  KSIR_DCHECK(&halves == &cache_.MutableHalves(t.id));
  if (t.num_gained + t.num_lost > 0) FoldEdges(t, &halves, &edge_acc_);
  if (!reposition) {
    // kPaper referrer loss: the lists keep the stale-high tuples, but the
    // true scores moved wherever the lost referrers' supports overlapped
    // this element's — surface those topics so indexed subscription
    // activation stays exact against the naive baseline.
    if (t.num_gained + t.num_lost > 0) TouchElidedLoss(halves, edge_acc_);
    return;
  }
  const double lambda = ctx_->params().lambda;
  const double influence_factor = ctx_->influence_factor();
  if (batch_min_ == 0) {
    // Single-reposition reference path (the PR 2 baseline).
    scratch_scores_.clear();
    scratch_scores_.reserve(halves.size());
    for (ScoreCache::TopicHalves& half : halves) {
      const double score =
          lambda * half.semantic + influence_factor * half.influence;
      if (score != half.listed) {
        TouchSummary(half.topic, std::abs(score - half.listed));
      }
      half.listed = score;
      scratch_scores_.emplace_back(half.topic, score);
    }
    index_->UpdateTrusted(t.id, scratch_scores_, t.te);
    bucket_repositions_ += halves.size();  // this path never elides
    return;
  }
  // t_e is per element, written once; the per-topic runs carry only score
  // changes, so a gained referrer sharing none of a topic's support leaves
  // that topic's list untouched.
  if (te_changed) index_->TouchTime(t.id, t.te);
  for (ScoreCache::TopicHalves& half : halves) {
    const double score =
        lambda * half.semantic + influence_factor * half.influence;
    if (use_handles_) {
      // Handle path: queue only tuples whose KEY moves.
      if (score == half.listed) {
        ++bucket_elisions_;
        continue;
      }
      pending_handles_.push_back(
          {half.topic, RankedList::HandleUpdate{t.id, half.listed, score,
                                                &half.handle}});
      TouchSummary(half.topic, std::abs(score - half.listed));
    } else {
      // Id-keyed batched baseline (PR 3 tuple volume): a gained referral
      // queues every topic — the per-tuple id resolution then discovers
      // the unchanged keys, exactly as the PR 3 ApplyBatch did.
      if (!te_changed && score == half.listed) {
        ++bucket_elisions_;
        continue;
      }
      if (score != half.listed) {
        TouchSummary(half.topic, std::abs(score - half.listed));
      }
      pending_tuples_.push_back(
          {half.topic, RankedList::Tuple{t.id, score}});
    }
    ++bucket_repositions_;
    half.listed = score;
    const auto topic = static_cast<std::size_t>(half.topic);
    if (topic_counts_[topic]++ == 0) touched_.push_back(half.topic);
  }
}

void IndexMaintainer::FoldEdges(const ActiveWindow::Touched& t,
                                ScoreCache::TopicList* halves,
                                StampedAccumulator* acc) {
  // Scatter all of this element's edge deltas into a dense per-topic
  // accumulator (epoch-stamped, never cleared), then fold them into the
  // cached influence halves in one pass over the element's support —
  // O(sum of referrer supports + own support) instead of one sorted
  // merge per edge.
  acc->Begin();
  for (std::uint32_t i = 0; i < t.num_gained; ++i) {
    const auto& entries = t.gained_topics[i]->entries();
    acc->AddEntries(entries.data(), entries.size());
  }
  for (std::uint32_t i = 0; i < t.num_lost; ++i) {
    // Lost edges subtract; the bulk scatter adds entry values as-is, so
    // the negated fold stays on the per-entry path.
    for (const auto& [topic, prob] : t.lost_topics[i]->entries()) {
      acc->Add(static_cast<std::size_t>(topic), -prob);
    }
  }
  for (ScoreCache::TopicHalves& half : *halves) {
    const auto slot = static_cast<std::size_t>(half.topic);
    if (acc->Touched(slot)) {
      half.influence += half.topic_prob * acc->Get(slot);
    }
  }
}

template <typename PendingT, typename ApplyFn>
void IndexMaintainer::FlushRuns(std::vector<PendingT>* pending,
                                ApplyFn apply) {
  // Scatter the queued (topic, payload) pairs into contiguous per-topic
  // runs. Processing list by list (instead of element by element across
  // all of its lists) keeps each chunk directory hot, and lists with
  // enough pending work take the one-pass merge sweep. Topic order is
  // sorted only for determinism of the arena layout; the runs are
  // independent.
  using Payload = decltype(PendingT::payload);
  Payload* runs = nullptr;
  std::uint32_t* offsets = nullptr;
  {
    // Stage accounting mirrors the parallel apply: the sort + run scatter
    // is the gather stage, the per-list sweeps below are list_apply. Both
    // record on every bucket (including empty ones) so the serial and
    // parallel stage breakdowns stay comparable.
    StageScope scope(telemetry_, stage_gather_hist_, "maint.gather");
    run_arena_.Reset();
    runs = run_arena_.AllocateArray<Payload>(pending->size());
    std::sort(touched_.begin(), touched_.end());
    // offsets[t] = start of topic t's run; reuses topic_counts_ as cursor.
    offsets = run_arena_.AllocateArray<std::uint32_t>(touched_.size());
    std::uint32_t offset = 0;
    for (std::size_t i = 0; i < touched_.size(); ++i) {
      offsets[i] = offset;
      const auto t = static_cast<std::size_t>(touched_[i]);
      const std::uint32_t count = topic_counts_[t];
      // Repurpose topic_counts_ as the scatter cursor (start index).
      topic_counts_[t] = offset;
      offset += count;
    }
    for (const PendingT& item : *pending) {
      runs[topic_counts_[static_cast<std::size_t>(item.topic)]++] =
          item.payload;
    }
  }
  StageScope scope(telemetry_, stage_list_apply_hist_, "maint.list_apply");
  for (std::size_t i = 0; i < touched_.size(); ++i) {
    const TopicId topic = touched_[i];
    const std::uint32_t begin = offsets[i];
    const std::uint32_t end = topic_counts_[static_cast<std::size_t>(topic)];
    const std::size_t count = end - begin;
    apply(topic, runs + begin, count, /*merge=*/count >= batch_min_);
    topic_counts_[static_cast<std::size_t>(topic)] = 0;
  }
  touched_.clear();
  pending->clear();
}

void IndexMaintainer::ProcessTouchedParallel(TouchedItem* item,
                                             StampedAccumulator* acc) {
  // The element stage's kernel: identical arithmetic, in identical
  // per-element operand order, to the serial ProcessTouched — the changed
  // tuples just land in the item's private buffer instead of the shared
  // queue (the gather re-serializes them in queue order).
  const ActiveWindow::Touched& t = *item->touched;
  ScoreCache::TopicList& halves = *item->halves;
  if (t.num_gained + t.num_lost > 0) FoldEdges(t, &halves, acc);
  if (!item->reposition) {
    // kPaper referrer loss: no list writes, but the true scores moved
    // wherever the lost referrers' supports overlapped. The summary
    // touches are parked in the item's update buffer (topic + movement in
    // `score`; no handle) for the serial gather to fold — TouchSummary
    // state is single-threaded.
    std::uint32_t n = 0;
    if (t.num_gained + t.num_lost > 0) {
      const double factor = ctx_->influence_factor();
      for (const ScoreCache::TopicHalves& half : halves) {
        const auto slot = static_cast<std::size_t>(half.topic);
        if (acc->Touched(slot)) {
          item->updates[n++] = PendingHandle{
              half.topic,
              RankedList::HandleUpdate{
                  t.id, 0.0,
                  std::abs(factor * half.topic_prob * acc->Get(slot)),
                  nullptr}};
        }
      }
    }
    item->num_updates = n;
    return;
  }
  const double lambda = ctx_->params().lambda;
  const double influence_factor = ctx_->influence_factor();
  std::uint32_t n = 0;
  for (ScoreCache::TopicHalves& half : halves) {
    const double score =
        lambda * half.semantic + influence_factor * half.influence;
    if (score == half.listed) continue;
    item->updates[n++] = PendingHandle{
        half.topic,
        RankedList::HandleUpdate{t.id, half.listed, score, &half.handle}};
    half.listed = score;
  }
  item->num_updates = n;
}

void IndexMaintainer::ApplyIncrementalParallel(
    const ActiveWindow::UpdateResult& update) {
  PendingInsert* insert_runs = nullptr;
  RankedList::HandleUpdate* update_runs = nullptr;
  std::uint32_t* insert_off = nullptr;
  std::uint32_t* update_off = nullptr;
  {
    StageScope scope(telemetry_, stage_expiry_hist_, "maint.expiry");
    // Stage 1: topic-sharded expiry. A serial prologue walks the expired
    // elements in order — summary touches, membership and cache erases are
    // single-threaded state — copying each carried hint OUT of the dying
    // cache entry (cache_.Erase frees the pool row the halves live in).
    // The per-list erases then fan out, each touched topic owned by one
    // shard; a shard replays its lists' erases in element order, so every
    // list sees exactly the serial erase sequence.
    erase_items_.clear();
    erase_topics_.clear();
    for (const ActiveWindow::Touched& t : update.expired) {
      const ScoreCache::TopicList* halves = ScoreCache::FromSlot(*t.user_slot);
      KSIR_CHECK(halves != nullptr);
      KSIR_DCHECK(halves == cache_.Find(t.id));
      topic_id_scratch_.clear();
      for (const ScoreCache::TopicHalves& half : *halves) {
        TouchSummary(half.topic, std::abs(half.listed));
        erase_items_.push_back(
            PendingErase{half.topic, t.id, half.listed, half.handle});
        topic_id_scratch_.push_back(half.topic);
        const auto slot = static_cast<std::size_t>(half.topic);
        if (erase_seen_[slot] == 0) {
          erase_seen_[slot] = 1;
          erase_topics_.push_back(half.topic);
        }
      }
      index_->EraseMembership(t.id, topic_id_scratch_.data(),
                              topic_id_scratch_.size());
      cache_.Erase(t.id);
    }
    if (!erase_topics_.empty()) {
      // Canonical topic order keeps the topic -> shard assignment (and so
      // the worker each list lands on) stable across buckets and runs.
      std::sort(erase_topics_.begin(), erase_topics_.end());
      const std::size_t shards = std::min(workers_, erase_topics_.size());
      for (std::size_t i = 0; i < erase_topics_.size(); ++i) {
        const auto slot = static_cast<std::size_t>(erase_topics_[i]);
        erase_seen_[slot] = 0;  // restored for the next bucket
        topic_shard_[slot] = static_cast<std::uint32_t>(i % shards);
      }
      ParallelRunAffine(
          pool_, shards, shards, [&](std::size_t, std::size_t shard) {
            // Each shard scans the full item sequence and executes only its
            // topics' erases: per-list element order is preserved by
            // construction, and the shards-many passes over the packed item
            // vector are cheap next to the chunk memmoves they feed.
            for (const PendingErase& e : erase_items_) {
              if (topic_shard_[static_cast<std::size_t>(e.topic)] != shard) {
                continue;
              }
              index_->EraseListEntry(e.topic, e.id, e.score, e.handle);
            }
          });
    }

    // Stage 2 (serial): lay out the bucket's work. Fresh elements get
    // their cache entry rows and membership record (hash maps and pools
    // are single-threaded state); gained/lost elements get an arena buffer
    // sized for their full support. No scores are computed yet.
    run_arena_.Reset();
    fresh_items_.clear();
    touched_items_.clear();
    for (const std::vector<ActiveWindow::Touched>* list :
         {&update.inserted, &update.resurrected}) {
      for (const ActiveWindow::Touched& t : *list) {
        ScoreCache::TopicList& halves = cache_.AllocateEntry(*t.element);
        *t.user_slot = &halves;  // carried to every later touch
        topic_id_scratch_.clear();
        for (const ScoreCache::TopicHalves& half : halves) {
          topic_id_scratch_.push_back(half.topic);
        }
        index_->InsertMembership(t.id, topic_id_scratch_.data(),
                                 topic_id_scratch_.size(), t.te);
        fresh_items_.push_back(FreshItem{t.element, &halves});
      }
    }
    const bool reposition_losses = mode_ == RefreshMode::kExact;
    const auto add_touched = [this](const ActiveWindow::Touched& t,
                                    bool reposition, bool te_changed) {
      ScoreCache::TopicList* halves = ScoreCache::FromSlot(*t.user_slot);
      KSIR_DCHECK(halves == &cache_.MutableHalves(t.id));
      TouchedItem item;
      item.touched = &t;
      item.halves = halves;
      // Reposition items buffer their changed tuples here; kPaper loss
      // items (reposition off) reuse the buffer for their summary touches.
      item.updates = run_arena_.AllocateArray<PendingHandle>(halves->size());
      item.num_updates = 0;
      item.reposition = reposition;
      item.te_changed = te_changed;
      touched_items_.push_back(item);
    };
    for (const ActiveWindow::Touched& t : update.gained_referrer) {
      add_touched(t, /*reposition=*/true, /*te_changed=*/true);
    }
    for (const ActiveWindow::Touched& t : update.lost_referrer) {
      add_touched(t, reposition_losses, /*te_changed=*/false);
    }
  }

  const std::size_t num_fresh = fresh_items_.size();
  {
    StageScope scope(telemetry_, stage_score_hist_, "maint.score");
    // Stage 3 (parallel, element-sharded): fresh-element scoring (the one
    // full word scan of the element's lifetime), edge folding and score
    // composition. Elements are disjoint — each one owns its cache rows —
    // and each participant folds through its own dense accumulator, so the
    // stage shares nothing mutable and allocates nothing.
    const std::size_t total = num_fresh + touched_items_.size();
    if (total > 0) {
      std::atomic<std::size_t> cursor{0};
      ParallelRun(pool_, std::min(workers_, total), [&](std::size_t p) {
        StampedAccumulator& acc = worker_acc_[p];
        for (;;) {
          const std::size_t i =
              cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= total) return;
          if (i < num_fresh) {
            cache_.ComputeHalves(*fresh_items_[i].element,
                                 fresh_items_[i].halves, &acc);
          } else {
            ProcessTouchedParallel(&touched_items_[i - num_fresh], &acc);
          }
        }
      });
    }
  }

  {
    StageScope scope(telemetry_, stage_gather_hist_, "maint.gather");
    // Stage 4 (serial): deterministic gather. t_e lands first (one
    // membership write per gained element, as in the serial path), then
    // the per-element outputs are scattered into per-topic runs in EXACTLY
    // the serial queue order — fresh inserts in element order, repositions
    // in (element, support) order — so every list sees the identical
    // operation sequence the serial path would have produced.
    std::size_t total_inserts = 0;
    std::size_t total_updates = 0;
    for (const FreshItem& item : fresh_items_) {
      for (const ScoreCache::TopicHalves& half : *item.halves) {
        const auto topic = static_cast<std::size_t>(half.topic);
        if (insert_counts_[topic]++ == 0 && topic_counts_[topic] == 0) {
          touched_.push_back(half.topic);
        }
        TouchSummary(half.topic, std::abs(half.listed));
        ++total_inserts;
      }
    }
    for (const TouchedItem& item : touched_items_) {
      if (!item.reposition) {
        // kPaper loss items carry summary touches, not repositions; fold
        // them here and keep them out of the per-topic runs.
        for (std::uint32_t i = 0; i < item.num_updates; ++i) {
          TouchSummary(item.updates[i].topic, item.updates[i].payload.score);
        }
        continue;
      }
      if (item.te_changed) {
        index_->TouchTime(item.touched->id, item.touched->te);
      }
      // Mirror the serial ProcessTouched accounting: num_updates tuples
      // moved, the rest of the support was elided.
      bucket_repositions_ += item.num_updates;
      bucket_elisions_ += item.halves->size() - item.num_updates;
      for (std::uint32_t i = 0; i < item.num_updates; ++i) {
        const auto topic = static_cast<std::size_t>(item.updates[i].topic);
        if (topic_counts_[topic]++ == 0 && insert_counts_[topic] == 0) {
          touched_.push_back(item.updates[i].topic);
        }
        TouchSummary(item.updates[i].topic,
                     std::abs(item.updates[i].payload.score -
                              item.updates[i].payload.old_score));
        ++total_updates;
      }
    }
    if (touched_.empty()) return;
    std::sort(touched_.begin(), touched_.end());
    insert_runs = run_arena_.AllocateArray<PendingInsert>(total_inserts);
    update_runs =
        run_arena_.AllocateArray<RankedList::HandleUpdate>(total_updates);
    insert_off =
        run_arena_.AllocateArray<std::uint32_t>(touched_.size() + 1);
    update_off =
        run_arena_.AllocateArray<std::uint32_t>(touched_.size() + 1);
    std::uint32_t ins = 0;
    std::uint32_t upd = 0;
    for (std::size_t i = 0; i < touched_.size(); ++i) {
      const auto t = static_cast<std::size_t>(touched_[i]);
      insert_off[i] = ins;
      update_off[i] = upd;
      const std::uint32_t insert_count = insert_counts_[t];
      const std::uint32_t update_count = topic_counts_[t];
      insert_counts_[t] = ins;  // repurposed as the scatter cursors
      topic_counts_[t] = upd;
      ins += insert_count;
      upd += update_count;
    }
    insert_off[touched_.size()] = ins;
    update_off[touched_.size()] = upd;
    // Stage 4b (parallel, topic-sharded): the scatter itself. Each shard
    // owns a disjoint topic subset — the same i % shards residue stage 5
    // prefers through ParallelRunAffine, so the worker that writes a
    // topic's runs is the one that applies them next. A shard scans the
    // element-ordered item lists and advances only its topics' cursors, so
    // the runs land byte-identically to a serial scatter.
    const std::size_t shards = std::min(workers_, touched_.size());
    for (std::size_t i = 0; i < touched_.size(); ++i) {
      topic_shard_[static_cast<std::size_t>(touched_[i])] =
          static_cast<std::uint32_t>(i % shards);
    }
    ParallelRunAffine(
        pool_, shards, shards, [&](std::size_t, std::size_t shard) {
          for (const FreshItem& item : fresh_items_) {
            const ElementId id = item.element->id;
            for (ScoreCache::TopicHalves& half : *item.halves) {
              const auto topic = static_cast<std::size_t>(half.topic);
              if (topic_shard_[topic] != shard) continue;
              insert_runs[insert_counts_[topic]++] =
                  PendingInsert{id, half.listed, &half.handle};
            }
          }
          for (const TouchedItem& item : touched_items_) {
            if (!item.reposition) continue;  // summary-only, folded above
            for (std::uint32_t i = 0; i < item.num_updates; ++i) {
              const auto topic =
                  static_cast<std::size_t>(item.updates[i].topic);
              if (topic_shard_[topic] != shard) continue;
              update_runs[topic_counts_[topic]++] = item.updates[i].payload;
            }
          }
        });
  }

  StageScope list_scope(telemetry_, stage_list_apply_hist_,
                        "maint.list_apply");
  // Stage 5 (parallel, topic-sharded): apply each touched topic's fresh
  // inserts, then its reposition run. A topic is executed by exactly one
  // participant and no list state is shared across topics, so there is no
  // list-level locking; handle minting and the ScoreCache handle
  // write-backs land identically to the serial order because each list
  // executes its serial operation sequence. ParallelRunAffine gives unit i
  // the i % P residue that scattered its runs in stage 4b — warm caches —
  // while the steal sweep keeps the stage work-conserving; per-participant
  // BatchScratch keeps the merge sweeps allocation- and contention-free.
  ParallelRunAffine(
      pool_, workers_, touched_.size(), [&](std::size_t p, std::size_t i) {
        RankedList::BatchScratch& scratch = worker_scratch_[p];
        const TopicId topic = touched_[i];
        for (std::uint32_t k = insert_off[i]; k < insert_off[i + 1]; ++k) {
          *insert_runs[k].handle = index_->InsertListEntry(
              topic, insert_runs[k].id, insert_runs[k].score);
        }
        const std::uint32_t begin = update_off[i];
        const std::uint32_t n = update_off[i + 1] - begin;
        if (n > 0) {
          index_->BatchRepositionHandles(topic, update_runs + begin, n,
                                         /*merge=*/n >= batch_min_, &scratch);
        }
      });

  // Restore the lazily-zeroed counters for the next bucket.
  for (const TopicId topic : touched_) {
    insert_counts_[static_cast<std::size_t>(topic)] = 0;
    topic_counts_[static_cast<std::size_t>(topic)] = 0;
  }
  touched_.clear();
}

void IndexMaintainer::FlushRepositions() {
  // No early-out on empty queues: FlushRuns degenerates to two cheap
  // stage-scope records, keeping the per-bucket histogram counts exact.
  if (use_handles_) {
    FlushRuns(&pending_handles_,
              [this](TopicId topic, const RankedList::HandleUpdate* runs,
                     std::size_t n, bool merge) {
                index_->BatchRepositionHandles(topic, runs, n, merge,
                                               &batch_scratch_);
              });
  } else {
    FlushRuns(&pending_tuples_,
              [this](TopicId topic, const RankedList::Tuple* runs,
                     std::size_t n, bool merge) {
                index_->BatchReposition(topic, runs, n, merge,
                                        &batch_scratch_);
              });
  }
}

}  // namespace ksir
