#!/usr/bin/env python3
"""Bench-regression gate for the hot-path benchmark.

Compares the freshly produced BENCH_hotpath.json against the committed
baseline and fails (exit 1) when the production engine's p50 bucket-update
latency regressed by more than the threshold. Comparisons only make sense
at matching scale; a scale mismatch is reported and skipped (exit 0) so the
gate never silently compares apples to oranges.

Usage: check_bench_regression.py BASELINE.json FRESH.json [THRESHOLD]
  THRESHOLD is the allowed relative regression, default 0.15 (= +15%).
"""

import json
import sys

# The production engine key, newest first: older baselines predate the
# handle path and archive the batched engine instead.
ENGINE_KEYS = ("handle", "batched")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def p50_of(doc, path):
    engines = doc.get("engines", {})
    for key in ENGINE_KEYS:
        if key in engines:
            return key, engines[key]["bucket_update"]["p50_ms"]
    raise KeyError(f"{path}: no known engine key in {sorted(engines)}")


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, fresh_path = argv[1], argv[2]
    threshold = float(argv[3]) if len(argv) > 3 else 0.15

    baseline = load(baseline_path)
    fresh = load(fresh_path)

    base_scale = baseline.get("scale")
    fresh_scale = fresh.get("scale")
    if base_scale != fresh_scale:
        print(f"SKIP: scale mismatch (baseline={base_scale}, "
              f"fresh={fresh_scale}); nothing comparable")
        return 0

    base_key, base_p50 = p50_of(baseline, baseline_path)
    fresh_key, fresh_p50 = p50_of(fresh, fresh_path)
    if base_p50 <= 0.0:
        print(f"SKIP: baseline p50 is {base_p50}")
        return 0

    ratio = fresh_p50 / base_p50
    print(f"baseline[{base_key}] p50 = {base_p50:.6f} ms, "
          f"fresh[{fresh_key}] p50 = {fresh_p50:.6f} ms, "
          f"ratio = {ratio:.3f} (limit {1.0 + threshold:.2f})")
    if ratio > 1.0 + threshold:
        print(f"FAIL: p50 bucket-update regressed by "
              f"{(ratio - 1.0) * 100.0:.1f}% (> {threshold * 100.0:.0f}%)")
        return 1
    print("OK: within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
