#include "kernel_microbench.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "common/kernels/kernels.h"

namespace ksir::bench {
namespace {

using kernels::Key16;
using Clock = std::chrono::steady_clock;

// Volatile sinks keep the measured calls observable without fencing the
// loop body itself.
volatile double g_sink_double = 0.0;
volatile std::size_t g_sink_size = 0;

template <typename Op>
double TimeSegmentNs(Op&& op, std::size_t reps) {
  const auto start = Clock::now();
  for (std::size_t i = 0; i < reps; ++i) op();
  const auto stop = Clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(reps);
}

template <typename Op>
KernelBenchResult Measure(const char* name, Op&& op, std::size_t reps) {
  KernelBenchResult r;
  r.name = name;
  // Interleave the arms round by round (scalar segment, then dispatched
  // segment) and keep the best of each: on a shared core, slow drift
  // (scheduling, frequency) then hits both arms alike instead of biasing
  // whichever arm ran last.
  const bool prev = kernels::SetForceScalar(true);
  double scalar_best = 1e300;
  double dispatched_best = 1e300;
  for (int round = 0; round < 7; ++round) {
    kernels::SetForceScalar(true);
    if (round == 0) {
      for (std::size_t i = 0; i < reps / 8 + 1; ++i) op();  // warmup
    }
    scalar_best = std::min(scalar_best, TimeSegmentNs(op, reps));
    kernels::SetForceScalar(false);
    if (round == 0) {
      for (std::size_t i = 0; i < reps / 8 + 1; ++i) op();  // warmup
    }
    dispatched_best = std::min(dispatched_best, TimeSegmentNs(op, reps));
  }
  kernels::SetForceScalar(prev);
  r.scalar_ns = scalar_best;
  r.dispatched_ns = dispatched_best;
  r.speedup = r.dispatched_ns > 0.0 ? r.scalar_ns / r.dispatched_ns : 0.0;
  return r;
}

/// `n` distinct keys in ranked order (score descending, id ascending).
std::vector<Key16> MakeSortedKeys(std::size_t n, std::mt19937_64* rng) {
  std::uniform_real_distribution<double> score(0.0, 100.0);
  std::uniform_int_distribution<std::int64_t> id(0, 1 << 20);
  std::vector<Key16> keys(n);
  for (Key16& k : keys) k = Key16{score(*rng), id(*rng)};
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  while (keys.size() < n) {
    Key16 k{score(*rng), id(*rng)};
    const auto it = std::lower_bound(keys.begin(), keys.end(), k);
    if (it == keys.end() || !(*it == k)) keys.insert(it, k);
  }
  return keys;
}

}  // namespace

KernelBenchReport RunKernelMicrobench() {
  KernelBenchReport report;
  const bool prev = kernels::SetForceScalar(false);
  report.isa = kernels::ActiveTable().isa;
  kernels::SetForceScalar(prev);

  std::mt19937_64 rng(20190326);  // fixed seed: deterministic inputs

  // --- chunk-shaped data: one full RankedList chunk plus probe/insert sets.
  constexpr std::size_t kChunk = 64;
  const std::vector<Key16> chunk = MakeSortedKeys(kChunk, &rng);
  // Probe keys stay in generation (random) order: in the engine the probed
  // keys are data-dependent, so a binary search's branches are coin flips —
  // a sorted probe sequence would let the predictor learn the walk and
  // flatter the scalar arm.
  std::vector<Key16> probes(256);
  {
    std::uniform_real_distribution<double> score(0.0, 100.0);
    std::uniform_int_distribution<std::int64_t> id(0, 1 << 20);
    for (Key16& p : probes) p = Key16{score(rng), id(rng)};
  }
  // Insertion runs for the span rewrite: 64 distinct runs of 3 keys each,
  // clustered in a narrow score band like a per-chunk reposition batch
  // (a bucket moves a few keys per touched chunk; the batch's span in any
  // one chunk is a small neighborhood, not the whole chunk).
  constexpr std::size_t kNumRuns = 64;
  constexpr std::size_t kRunLen = 3;
  std::vector<std::array<Key16, kRunLen>> ins_runs(kNumRuns);
  {
    std::uniform_real_distribution<double> center(5.0, 95.0);
    std::uniform_real_distribution<double> jitter(-2.0, 2.0);
    std::uniform_int_distribution<std::int64_t> id(0, 1 << 20);
    for (auto& run : ins_runs) {
      const double c = center(rng);
      for (Key16& k : run) k = Key16{c + jitter(rng), id(rng)};
      std::sort(run.begin(), run.end());
    }
  }
  std::vector<Key16> out(kChunk + kRunLen);
  std::vector<Key16> copy_dst(kChunk);

  // --- dense/strided data for the scoring reductions.
  constexpr std::size_t kDim = 1024;
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<double> dense_a(kDim);
  std::vector<double> dense_b(kDim);
  for (std::size_t i = 0; i < kDim; ++i) {
    dense_a[i] = val(rng);
    dense_b[i] = val(rng);
  }
  std::vector<std::pair<std::int32_t, double>> entries(kDim);
  for (std::size_t i = 0; i < kDim; ++i) {
    entries[i] = {static_cast<std::int32_t>(i), val(rng)};
  }
  std::vector<double> head_vals(kChunk);
  for (double& v : head_vals) v = 100.0 * (val(rng) + 1.0);

  // The MergeBatch span rewrite on one chunk: bound the affected span with
  // the two sorted probes, copy the untouched prefix, merge the span with
  // the insertion run, and write the suffix at its shifted position. All
  // pieces are kernel calls; this is the list-apply inner loop's shape.
  report.kernels.push_back(Measure(
      "chunk_merge",
      [&, iter = std::size_t{0}]() mutable {
        const auto& run = ins_runs[iter++ % kNumRuns];
        const std::size_t s =
            kernels::LowerBoundKeys(chunk.data(), kChunk, run.front());
        const std::size_t e =
            kernels::UpperBoundKeys(chunk.data(), kChunk, run.back());
        kernels::CopyKeys(out.data(), chunk.data(), s);
        kernels::MergeKeys(out.data() + s, chunk.data() + s, e - s,
                           run.data(), kRunLen);
        kernels::CopyKeys(out.data() + e + kRunLen, chunk.data() + e,
                          kChunk - e);
        g_sink_size = out[s].id >= 0 ? s : e;
      },
      20000));

  report.kernels.push_back(Measure(
      "lower_bound_keys",
      [&] {
        std::size_t acc = 0;
        for (const Key16& p : probes) {
          acc += kernels::LowerBoundKeys(chunk.data(), kChunk, p);
        }
        g_sink_size = acc;
      },
      2000));

  report.kernels.push_back(Measure(
      "copy_keys",
      [&] {
        kernels::CopyKeys(copy_dst.data(), chunk.data(), kChunk);
        g_sink_size = static_cast<std::size_t>(copy_dst[0].id);
      },
      100000));

  report.kernels.push_back(Measure(
      "find_id64",
      [&] {
        std::size_t acc = 0;
        for (std::size_t i = 0; i < kChunk; i += 4) {
          acc += kernels::FindId64(&chunk[0].id, kChunk, 2, chunk[i].id);
        }
        g_sink_size = acc;
      },
      10000));

  report.kernels.push_back(Measure(
      "dense_dot",
      [&] {
        g_sink_double =
            kernels::DenseDot(dense_a.data(), dense_b.data(), kDim);
      },
      20000));

  report.kernels.push_back(Measure(
      "sum_squares_s2",
      [&] {
        g_sink_double =
            kernels::SumSquares(&entries[0].second, entries.size(), 2);
      },
      20000));

  report.kernels.push_back(Measure(
      "weighted_sum_argmax",
      [&] {
        std::size_t argmax = 0;
        g_sink_double = kernels::WeightedSumArgmax(
            head_vals.data(), head_vals.data(), head_vals.size(), &argmax);
        g_sink_size = argmax;
      },
      50000));

  return report;
}

}  // namespace ksir::bench
