#include "subscribe/standing_query.h"

#include <utility>

#include "common/check.h"

namespace ksir {

StandingQueryManager::StandingQueryManager(Evaluator evaluator,
                                           SubscriptionMode mode,
                                           Telemetry* telemetry)
    : subscriptions_(std::move(evaluator), mode, telemetry) {}

StandingQueryManager::StandingQueryManager(const KsirEngine* engine,
                                           SubscriptionMode mode,
                                           Telemetry* telemetry)
    : engine_(engine),
      subscriptions_(
          [engine](const KsirQuery& query) { return engine->Query(query); },
          mode, telemetry) {
  KSIR_CHECK(engine != nullptr);
}

Status StandingQueryManager::EvaluateAll() {
  if (subscriptions_.mode() == SubscriptionMode::kIndexed &&
      engine_ != nullptr) {
    AdvanceSummary summary = engine_->last_advance_summary();
    if (summary.epoch == last_epoch_seen_) {
      // No bucket since the previous round: no topic moved, so only fresh
      // registrations (and always-active groups) need a pass.
      summary.topics.clear();
    }
    last_epoch_seen_ = summary.epoch;
    return subscriptions_.EvaluateAffected(summary);
  }
  return subscriptions_.EvaluateAll(
      engine_ != nullptr ? engine_->bucket_epoch() : last_epoch_seen_);
}

}  // namespace ksir
