# Empty dependencies file for ksir_window.
# This may be replaced when dependencies are built.
