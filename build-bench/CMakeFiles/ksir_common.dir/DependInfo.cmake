
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/rng.cpp" "CMakeFiles/ksir_common.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/ksir_common.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/sparse_vector.cpp" "CMakeFiles/ksir_common.dir/src/common/sparse_vector.cpp.o" "gcc" "CMakeFiles/ksir_common.dir/src/common/sparse_vector.cpp.o.d"
  "/root/repo/src/common/status.cpp" "CMakeFiles/ksir_common.dir/src/common/status.cpp.o" "gcc" "CMakeFiles/ksir_common.dir/src/common/status.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
