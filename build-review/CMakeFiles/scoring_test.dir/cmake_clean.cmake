file(REMOVE_RECURSE
  "CMakeFiles/scoring_test.dir/tests/scoring_test.cpp.o"
  "CMakeFiles/scoring_test.dir/tests/scoring_test.cpp.o.d"
  "scoring_test"
  "scoring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
