// Unit tests for the topic substrate: TopicModel container, LDA and BTM
// training (topic recovery on a separable synthetic corpus), inference and
// query-vector construction.
#include <cmath>
#include <numeric>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "text/corpus.h"
#include "topic/btm.h"
#include "topic/drift.h"
#include "topic/user_profile.h"
#include "topic/inference.h"
#include "topic/lda.h"
#include "topic/query_inference.h"
#include "topic/topic_model.h"

namespace ksir {
namespace {

// Builds a corpus of `docs_per_topic` documents per topic where topic i owns
// the word block [i * block, (i+1) * block). Documents draw `doc_len` words
// from their topic's block (plus light noise), giving a cleanly separable
// corpus for recovery tests.
struct SyntheticCorpus {
  Vocabulary vocab;
  std::unique_ptr<Corpus> corpus;
  std::vector<int> doc_topic;  // ground-truth topic per document
  int num_topics;
  int block;
};

SyntheticCorpus MakeSeparableCorpus(int num_topics, int block,
                                    int docs_per_topic, int doc_len,
                                    double noise, std::uint64_t seed) {
  SyntheticCorpus out;
  out.num_topics = num_topics;
  out.block = block;
  for (int w = 0; w < num_topics * block; ++w) {
    out.vocab.GetOrAdd("w" + std::to_string(w));
  }
  out.corpus = std::make_unique<Corpus>(&out.vocab);
  Rng rng(seed);
  for (int t = 0; t < num_topics; ++t) {
    for (int d = 0; d < docs_per_topic; ++d) {
      std::vector<WordId> words;
      for (int j = 0; j < doc_len; ++j) {
        int topic = t;
        if (rng.NextDouble() < noise) {
          topic = static_cast<int>(rng.NextUint64(num_topics));
        }
        const auto word = static_cast<WordId>(
            topic * block + static_cast<int>(rng.NextUint64(block)));
        words.push_back(word);
      }
      out.corpus->Add(Document::FromWordIds(words));
      out.doc_topic.push_back(t);
    }
  }
  return out;
}

// ------------------------------------------------------------- TopicModel --

TEST(TopicModelTest, FromMatrixNormalizesRows) {
  auto model = TopicModel::FromMatrix({{2.0, 2.0}, {1.0, 3.0}});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->WordProb(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(model->WordProb(1, 1), 0.75, 1e-12);
}

TEST(TopicModelTest, RowsSumToOne) {
  auto model = TopicModel::FromMatrix({{0.3, 0.2, 0.5}, {0.9, 0.05, 0.05}});
  ASSERT_TRUE(model.ok());
  for (TopicId t = 0; t < 2; ++t) {
    const auto& row = model->TopicRow(t);
    EXPECT_NEAR(std::accumulate(row.begin(), row.end(), 0.0), 1.0, 1e-12);
  }
}

TEST(TopicModelTest, RejectsEmptyAndRaggedAndNegative) {
  EXPECT_FALSE(TopicModel::FromMatrix({}).ok());
  EXPECT_FALSE(TopicModel::FromMatrix({{}}).ok());
  EXPECT_FALSE(TopicModel::FromMatrix({{0.5, 0.5}, {1.0}}).ok());
  EXPECT_FALSE(TopicModel::FromMatrix({{0.5, -0.5}}).ok());
}

TEST(TopicModelTest, UniformPriorByDefault) {
  auto model = TopicModel::FromMatrix({{1.0, 0.0}, {0.0, 1.0}});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->topic_prior()[0], 0.5, 1e-12);
  EXPECT_NEAR(model->topic_prior()[1], 0.5, 1e-12);
}

TEST(TopicModelTest, CustomPriorIsNormalized) {
  auto model = TopicModel::FromMatrix({{1.0, 0.0}, {0.0, 1.0}}, {3.0, 1.0});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->topic_prior()[0], 0.75, 1e-12);
}

TEST(TopicModelTest, WordProbOutOfVocabularyIsZero) {
  auto model = TopicModel::FromMatrix({{0.4, 0.6}});
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->WordProb(0, 17), 0.0);
  EXPECT_DOUBLE_EQ(model->WordProb(0, kInvalidWordId), 0.0);
}

TEST(TopicModelTest, TopWordsSortedByProbability) {
  auto model = TopicModel::FromMatrix({{0.1, 0.5, 0.15, 0.25}});
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->TopWords(0, 2), (std::vector<WordId>{1, 3}));
  EXPECT_EQ(model->TopWords(0, 10).size(), 4u);
}

TEST(TopicModelTest, SaveLoadRoundTrip) {
  auto model = TopicModel::FromMatrix({{0.25, 0.75}, {0.6, 0.4}}, {0.3, 0.7});
  ASSERT_TRUE(model.ok());
  std::stringstream buffer;
  ASSERT_TRUE(model->Save(&buffer).ok());
  auto loaded = TopicModel::Load(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_topics(), 2u);
  EXPECT_EQ(loaded->vocab_size(), 2u);
  EXPECT_NEAR(loaded->WordProb(0, 1), 0.75, 1e-12);
  EXPECT_NEAR(loaded->topic_prior()[1], 0.7, 1e-12);
}

TEST(TopicModelTest, LoadRejectsGarbage) {
  std::stringstream buffer("not-a-model 1\n");
  EXPECT_FALSE(TopicModel::Load(&buffer).ok());
}

// -------------------------------------------------------------------- LDA --

TEST(LdaTest, RejectsBadOptions) {
  Vocabulary vocab;
  vocab.GetOrAdd("x");
  Corpus corpus(&vocab);
  corpus.Add(Document::FromWordIds({0}));
  EXPECT_FALSE(LdaTrainer(LdaOptions{.num_topics = 0}).Train(corpus).ok());
  EXPECT_FALSE(
      LdaTrainer(LdaOptions{.iterations = 10, .burn_in = 10}).Train(corpus).ok());
  EXPECT_FALSE(LdaTrainer(LdaOptions{.beta = 0.0}).Train(corpus).ok());
}

TEST(LdaTest, RejectsEmptyCorpus) {
  Vocabulary vocab;
  vocab.GetOrAdd("x");
  Corpus corpus(&vocab);
  EXPECT_FALSE(LdaTrainer().Train(corpus).ok());
}

TEST(LdaTest, RecoversSeparableTopics) {
  auto data = MakeSeparableCorpus(/*num_topics=*/4, /*block=*/20,
                                  /*docs_per_topic=*/60, /*doc_len=*/25,
                                  /*noise=*/0.05, /*seed=*/5);
  LdaOptions options;
  options.num_topics = 4;
  options.iterations = 80;
  options.burn_in = 40;
  options.seed = 5;
  auto result = LdaTrainer(options).Train(*data.corpus);
  ASSERT_TRUE(result.ok());

  // Every learned topic should concentrate most of its mass on one
  // ground-truth block.
  int matched = 0;
  std::vector<bool> block_used(4, false);
  for (TopicId t = 0; t < 4; ++t) {
    const auto& row = result->model.TopicRow(t);
    std::vector<double> block_mass(4, 0.0);
    for (std::size_t w = 0; w < row.size(); ++w) {
      block_mass[w / 20] += row[w];
    }
    const auto best =
        std::max_element(block_mass.begin(), block_mass.end()) -
        block_mass.begin();
    if (block_mass[best] > 0.7 && !block_used[best]) {
      block_used[best] = true;
      ++matched;
    }
  }
  EXPECT_EQ(matched, 4) << "each learned topic should own one word block";
}

TEST(LdaTest, DocTopicMixturesMatchGroundTruth) {
  auto data = MakeSeparableCorpus(3, 15, 50, 20, 0.05, 7);
  LdaOptions options;
  options.num_topics = 3;
  options.iterations = 60;
  options.burn_in = 30;
  options.seed = 7;
  auto result = LdaTrainer(options).Train(*data.corpus);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->doc_topic.size(), data.corpus->size());

  // Documents with the same ground-truth topic should share their argmax
  // learned topic far more often than not.
  int agree = 0;
  int total = 0;
  for (std::size_t d = 0; d < result->doc_topic.size(); ++d) {
    const auto& theta = result->doc_topic[d];
    EXPECT_NEAR(std::accumulate(theta.begin(), theta.end(), 0.0), 1.0, 1e-6);
    for (std::size_t d2 = d + 1; d2 < result->doc_topic.size(); ++d2) {
      const bool same_truth = data.doc_topic[d] == data.doc_topic[d2];
      const auto am1 = std::max_element(theta.begin(), theta.end()) -
                       theta.begin();
      const auto& theta2 = result->doc_topic[d2];
      const auto am2 = std::max_element(theta2.begin(), theta2.end()) -
                       theta2.begin();
      if (same_truth == (am1 == am2)) ++agree;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.9);
}

TEST(LdaTest, DeterministicForSeed) {
  auto data = MakeSeparableCorpus(2, 10, 20, 15, 0.1, 11);
  LdaOptions options;
  options.num_topics = 2;
  options.iterations = 20;
  options.burn_in = 10;
  options.seed = 99;
  auto a = LdaTrainer(options).Train(*data.corpus);
  auto b = LdaTrainer(options).Train(*data.corpus);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (TopicId t = 0; t < 2; ++t) {
    EXPECT_EQ(a->model.TopicRow(t), b->model.TopicRow(t));
  }
}

// -------------------------------------------------------------------- BTM --

TEST(BtmTest, ExtractBitermsAllPairsWithinWindow) {
  const auto biterms = ExtractBiterms({1, 2, 3}, 15);
  ASSERT_EQ(biterms.size(), 3u);
  EXPECT_EQ(biterms[0], std::make_pair(WordId{1}, WordId{2}));
  EXPECT_EQ(biterms[1], std::make_pair(WordId{1}, WordId{3}));
  EXPECT_EQ(biterms[2], std::make_pair(WordId{2}, WordId{3}));
}

TEST(BtmTest, ExtractBitermsRespectsWindow) {
  const auto biterms = ExtractBiterms({1, 2, 3, 4}, 1);
  ASSERT_EQ(biterms.size(), 3u);  // only adjacent pairs
}

TEST(BtmTest, ExtractBitermsNormalizesOrderAndSkipsSelfPairs) {
  const auto biterms = ExtractBiterms({5, 2, 5}, 15);
  // Pairs: (5,2)->(2,5), (5,5) skipped, (2,5).
  ASSERT_EQ(biterms.size(), 2u);
  EXPECT_EQ(biterms[0], std::make_pair(WordId{2}, WordId{5}));
  EXPECT_EQ(biterms[1], std::make_pair(WordId{2}, WordId{5}));
}

TEST(BtmTest, SingleWordDocsYieldNoBiterms) {
  EXPECT_TRUE(ExtractBiterms({3}, 15).empty());
  EXPECT_TRUE(ExtractBiterms({}, 15).empty());
}

TEST(BtmTest, RecoversSeparableTopicsOnShortTexts) {
  auto data = MakeSeparableCorpus(/*num_topics=*/3, /*block=*/12,
                                  /*docs_per_topic=*/80, /*doc_len=*/5,
                                  /*noise=*/0.05, /*seed=*/13);
  BtmOptions options;
  options.num_topics = 3;
  options.iterations = 60;
  options.burn_in = 30;
  options.seed = 13;
  auto model = BtmTrainer(options).Train(*data.corpus);
  ASSERT_TRUE(model.ok());
  int matched = 0;
  std::vector<bool> used(3, false);
  for (TopicId t = 0; t < 3; ++t) {
    const auto& row = model->TopicRow(t);
    std::vector<double> block_mass(3, 0.0);
    for (std::size_t w = 0; w < row.size(); ++w) block_mass[w / 12] += row[w];
    const auto best = std::max_element(block_mass.begin(), block_mass.end()) -
                      block_mass.begin();
    if (block_mass[best] > 0.7 && !used[best]) {
      used[best] = true;
      ++matched;
    }
  }
  EXPECT_EQ(matched, 3);
}

TEST(BtmTest, FailsOnCorpusWithoutBiterms) {
  Vocabulary vocab;
  vocab.GetOrAdd("solo");
  Corpus corpus(&vocab);
  corpus.Add(Document::FromWordIds({0}));  // one word -> no biterms
  EXPECT_FALSE(BtmTrainer().Train(corpus).ok());
}

// -------------------------------------------------------------- Inference --

class InferenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two fully separated topics over 6 words.
    auto model = TopicModel::FromMatrix({
        {0.5, 0.3, 0.2, 0.0, 0.0, 0.0},
        {0.0, 0.0, 0.0, 0.2, 0.3, 0.5},
    });
    ASSERT_TRUE(model.ok());
    model_ = std::make_unique<TopicModel>(std::move(model).value());
  }
  std::unique_ptr<TopicModel> model_;
};

TEST_F(InferenceTest, GibbsAssignsDominantTopic) {
  TopicInferencer inferencer(model_.get());
  const auto theta = inferencer.InferDense(Document::FromWordIds({0, 1, 2, 0}));
  ASSERT_EQ(theta.size(), 2u);
  EXPECT_GT(theta[0], 0.85);
}

TEST_F(InferenceTest, GibbsSplitsMixedDocument) {
  TopicInferencer inferencer(model_.get());
  const auto theta =
      inferencer.InferDense(Document::FromWordIds({0, 1, 4, 5}));
  EXPECT_GT(theta[0], 0.25);
  EXPECT_GT(theta[1], 0.25);
}

TEST_F(InferenceTest, EmptyDocumentFallsBackToPrior) {
  TopicInferencer inferencer(model_.get());
  const auto theta = inferencer.InferDense(Document());
  EXPECT_EQ(theta, model_->topic_prior());
}

TEST_F(InferenceTest, OutOfVocabularyDocumentFallsBackToPrior) {
  TopicInferencer inferencer(model_.get());
  const auto theta = inferencer.InferDense(Document::FromWordIds({42, 99}));
  EXPECT_EQ(theta, model_->topic_prior());
}

TEST_F(InferenceTest, SparseInferenceTruncatesAndNormalizes) {
  InferenceOptions options;
  options.sparsity_threshold = 0.2;
  TopicInferencer inferencer(model_.get(), options);
  const auto sparse =
      inferencer.InferSparse(Document::FromWordIds({0, 0, 0, 0}));
  EXPECT_GE(sparse.nnz(), 1u);
  EXPECT_NEAR(sparse.Sum(), 1.0, 1e-9);
  EXPECT_GT(sparse.Get(0), 0.8);
}

TEST_F(InferenceTest, BitermInferenceMatchesDominantTopic) {
  InferenceOptions options;
  options.method = InferenceMethod::kBiterm;
  TopicInferencer inferencer(model_.get(), options);
  const auto theta =
      inferencer.InferDense(Document::FromWordIds({3, 4, 5}));
  EXPECT_GT(theta[1], 0.9);
}

TEST_F(InferenceTest, BitermFallsBackToGibbsOnSingleWord) {
  InferenceOptions options;
  options.method = InferenceMethod::kBiterm;
  TopicInferencer inferencer(model_.get(), options);
  const auto theta = inferencer.InferDense(Document::FromWordIds({5}));
  EXPECT_GT(theta[1], 0.6);  // still informative via the Gibbs fallback
}

TEST_F(InferenceTest, DeterministicForSameSalt) {
  TopicInferencer inferencer(model_.get());
  const Document doc = Document::FromWordIds({0, 1, 3, 5});
  EXPECT_EQ(inferencer.InferDense(doc, 3), inferencer.InferDense(doc, 3));
}

// ------------------------------------------------------------ Drift ------

TEST(DriftTest, NoDriftWhenUsageMatchesPrior) {
  auto model = TopicModel::FromMatrix({{1.0, 0.0}, {0.0, 1.0}}, {0.7, 0.3});
  ASSERT_TRUE(model.ok());
  ConceptDriftMonitor::Options options;
  options.min_observations = 10;
  ConceptDriftMonitor monitor(&*model, options);
  // Observations distributed exactly like the prior.
  for (int i = 0; i < 100; ++i) {
    monitor.Observe(SparseVector::FromEntries({{0, 0.7}, {1, 0.3}}));
  }
  EXPECT_LT(monitor.CurrentDrift(), 0.01);
  EXPECT_FALSE(monitor.RetrainRecommended());
}

TEST(DriftTest, DetectsShiftedTopicUsage) {
  auto model = TopicModel::FromMatrix({{1.0, 0.0}, {0.0, 1.0}}, {0.9, 0.1});
  ASSERT_TRUE(model.ok());
  ConceptDriftMonitor::Options options;
  options.min_observations = 10;
  options.drift_threshold = 0.2;
  ConceptDriftMonitor monitor(&*model, options);
  // The stream has moved entirely to the minority topic.
  for (int i = 0; i < 100; ++i) {
    monitor.Observe(SparseVector::FromEntries({{1, 1.0}}));
  }
  EXPECT_GT(monitor.CurrentDrift(), 0.5);
  EXPECT_TRUE(monitor.RetrainRecommended());
}

TEST(DriftTest, WarmupSuppressesRecommendation) {
  auto model = TopicModel::FromMatrix({{1.0, 0.0}, {0.0, 1.0}}, {0.9, 0.1});
  ASSERT_TRUE(model.ok());
  ConceptDriftMonitor::Options options;
  options.min_observations = 50;
  ConceptDriftMonitor monitor(&*model, options);
  for (int i = 0; i < 49; ++i) {
    monitor.Observe(SparseVector::FromEntries({{1, 1.0}}));
  }
  EXPECT_FALSE(monitor.RetrainRecommended());  // drift high but warming up
  monitor.Observe(SparseVector::FromEntries({{1, 1.0}}));
  EXPECT_TRUE(monitor.RetrainRecommended());
}

TEST(DriftTest, SlidingWindowForgetsOldRegime) {
  auto model = TopicModel::FromMatrix({{1.0, 0.0}, {0.0, 1.0}}, {0.5, 0.5});
  ASSERT_TRUE(model.ok());
  ConceptDriftMonitor::Options options;
  options.window_size = 50;
  options.min_observations = 10;
  ConceptDriftMonitor monitor(&*model, options);
  // Old drifted regime fully displaced by on-prior traffic.
  for (int i = 0; i < 50; ++i) {
    monitor.Observe(SparseVector::FromEntries({{0, 1.0}}));
  }
  const double drifted = monitor.CurrentDrift();
  for (int i = 0; i < 50; ++i) {
    monitor.Observe(SparseVector::FromEntries({{0, 0.5}, {1, 0.5}}));
  }
  EXPECT_GT(drifted, 0.2);
  EXPECT_LT(monitor.CurrentDrift(), 0.01);
  EXPECT_EQ(monitor.num_observations(), 100u);
}

TEST(DriftTest, EmptyMonitorReportsZero) {
  auto model = TopicModel::FromMatrix({{1.0}});
  ASSERT_TRUE(model.ok());
  ConceptDriftMonitor monitor(&*model);
  EXPECT_DOUBLE_EQ(monitor.CurrentDrift(), 0.0);
  EXPECT_FALSE(monitor.RetrainRecommended());
}

// -------------------------------------------------------- QueryInference --

TEST_F(InferenceTest, QueryFromKeywords) {
  Vocabulary vocab;
  for (const char* w : {"goal", "match", "league", "court", "dunk", "nba"}) {
    vocab.GetOrAdd(w);
  }
  TopicInferencer inferencer(model_.get());
  QueryVectorBuilder builder(&inferencer, &vocab);
  const auto x = builder.FromKeywords({"goal", "match"});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x->Sum(), 1.0, 1e-9);
  EXPECT_GT(x->Get(0), 0.5);
}

TEST_F(InferenceTest, QueryIgnoresUnknownKeywords) {
  Vocabulary vocab;
  vocab.GetOrAdd("goal");
  TopicInferencer inferencer(model_.get());
  QueryVectorBuilder builder(&inferencer, &vocab);
  const auto x = builder.FromKeywords({"goal", "zzz-unknown"});
  ASSERT_TRUE(x.ok());
  EXPECT_GT(x->Get(0), 0.5);
}

TEST_F(InferenceTest, QueryFailsWhenNoKeywordKnown) {
  Vocabulary vocab;
  vocab.GetOrAdd("goal");
  TopicInferencer inferencer(model_.get());
  QueryVectorBuilder builder(&inferencer, &vocab);
  EXPECT_FALSE(builder.FromKeywords({"zzz"}).ok());
  EXPECT_FALSE(builder.FromKeywords({}).ok());
}

TEST_F(InferenceTest, QueryByDocument) {
  Vocabulary vocab;
  TopicInferencer inferencer(model_.get());
  QueryVectorBuilder builder(&inferencer, &vocab);
  const auto x = builder.FromDocument(Document::FromWordIds({3, 4, 5}));
  ASSERT_TRUE(x.ok());
  EXPECT_GT(x->Get(1), 0.5);
  EXPECT_FALSE(builder.FromDocument(Document()).ok());
}

// ------------------------------------------------------------ UserProfile --

TEST_F(InferenceTest, UserProfileBlendsRecentPosts) {
  TopicInferencer inferencer(model_.get());
  UserProfile profile(&inferencer);
  // Posts on topic 0 only.
  ASSERT_TRUE(profile.AddPost(Document::FromWordIds({0, 1, 2}), 100).ok());
  ASSERT_TRUE(profile.AddPost(Document::FromWordIds({0, 0, 1}), 200).ok());
  auto interest = profile.InterestVector(300);
  ASSERT_TRUE(interest.ok());
  EXPECT_GT(interest->Get(0), 0.8);
  EXPECT_NEAR(interest->Sum(), 1.0, 1e-9);
}

TEST_F(InferenceTest, UserProfileDecayShiftsInterest) {
  UserProfileOptions options;
  options.decay_half_life = 10;
  TopicInferencer inferencer(model_.get());
  UserProfile profile(&inferencer, options);
  // Old topic-0 post, fresh topic-1 post.
  ASSERT_TRUE(profile.AddPost(Document::FromWordIds({0, 1, 2, 0}), 0).ok());
  ASSERT_TRUE(
      profile.AddPost(Document::FromWordIds({3, 4, 5, 5}), 100).ok());
  auto interest = profile.InterestVector(100);
  ASSERT_TRUE(interest.ok());
  // The 100-unit-old post decayed through 10 half-lives: ~1/1024 weight.
  EXPECT_GT(interest->Get(1), 0.95);
}

TEST_F(InferenceTest, UserProfileValidation) {
  TopicInferencer inferencer(model_.get());
  UserProfile profile(&inferencer);
  EXPECT_FALSE(profile.InterestVector(0).ok());  // no posts yet
  EXPECT_FALSE(profile.AddPost(Document(), 1).ok());
  ASSERT_TRUE(profile.AddPost(Document::FromWordIds({0}), 10).ok());
  EXPECT_FALSE(profile.AddPost(Document::FromWordIds({1}), 5).ok());  // back in time
}

TEST_F(InferenceTest, UserProfileCapsPostCount) {
  UserProfileOptions options;
  options.max_posts = 3;
  TopicInferencer inferencer(model_.get());
  UserProfile profile(&inferencer, options);
  for (Timestamp t = 1; t <= 10; ++t) {
    ASSERT_TRUE(profile.AddPost(Document::FromWordIds({0, 1}), t).ok());
  }
  EXPECT_EQ(profile.num_posts(), 3u);
}

}  // namespace
}  // namespace ksir
