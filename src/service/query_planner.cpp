#include "service/query_planner.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "core/celf.h"
#include "core/scoring.h"
#include "window/active_window.h"

namespace ksir {

namespace {

/// One shard's contribution to a plan.
struct ShardAnswer {
  Status status;
  QueryResult result;
  std::vector<ElementSnapshot> snapshots;
};

/// Runs the Query + ExportSnapshots pair against `shard`, retrying when a
/// bucket advance tears the pair apart (detected via the bucket epoch).
ShardAnswer AskShard(const KsirEngine& shard, const KsirQuery& query,
                     std::int64_t* retries) {
  static constexpr int kMaxAttempts = 3;
  ShardAnswer answer;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const std::uint64_t epoch_before = shard.bucket_epoch();
    auto result = shard.Query(query);
    if (!result.ok()) {
      answer.status = result.status();
      return answer;
    }
    answer.result = *std::move(result);
    answer.snapshots = shard.ExportSnapshots(answer.result.element_ids);
    const bool torn =
        shard.bucket_epoch() != epoch_before ||
        answer.snapshots.size() != answer.result.element_ids.size();
    if (!torn) break;
    if (attempt + 1 < kMaxAttempts) ++*retries;
    // After the last attempt the (possibly partial) snapshots are used as
    // is: a missing candidate just expired, so dropping it is consistent
    // with the state the merge window represents.
  }
  answer.status = Status::OK();
  return answer;
}

}  // namespace

QueryPlanner::QueryPlanner(std::vector<KsirEngine*> shards,
                           const TopicModel* model, WorkerPool* pool,
                           Telemetry* telemetry)
    : shards_(std::move(shards)),
      model_(model),
      pool_(pool),
      owned_telemetry_(telemetry == nullptr ? std::make_unique<Telemetry>()
                                            : nullptr),
      telemetry_(telemetry != nullptr ? telemetry : owned_telemetry_.get()) {
  KSIR_CHECK(!shards_.empty());
  KSIR_CHECK(model_ != nullptr && pool_ != nullptr);
  MetricRegistry& reg = telemetry_->registry();
  plans_counter_ = reg.GetCounter("ksir_planner_plans_total",
                                  "Fan-out/merge plans executed");
  epoch_retries_counter_ = reg.GetCounter(
      "ksir_planner_epoch_retries_total",
      "Per-shard query/export pairs re-run because a bucket landed between");
  merge_wins_counter_ = reg.GetCounter(
      "ksir_planner_merge_wins_total",
      "Plans where the merged set beat every single-shard result");
  best_shard_wins_counter_ = reg.GetCounter(
      "ksir_planner_best_shard_wins_total",
      "Plans resolved by the best-shard guard");
  plan_hist_ = reg.GetHistogram("ksir_planner_plan_seconds",
                                "One whole QueryPlanner::Plan");
  merge_hist_ = reg.GetHistogram(
      "ksir_planner_merge_seconds",
      "Merge step: snapshot replay window + CELF over candidates");
  shard_fanout_hists_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard_fanout_hists_.push_back(reg.GetHistogram(
        "ksir_planner_shard_fanout_seconds_" + std::to_string(i),
        "Query + snapshot export latency of shard " + std::to_string(i)));
  }
}

StatusOr<QueryResult> QueryPlanner::Plan(const KsirQuery& query) const {
  // One plan is one trace unit (matching the maintainer's bucket applies):
  // every sample_period-th plan gets its fan-out/merge spans recorded.
  telemetry_->tracer().SampleUnit();
  StageScope plan_scope(telemetry_, plan_hist_, "planner.plan");
  WallTimer timer;
  plans_counter_->Add(1);

  // --- Step 1: fan the query out to every shard in parallel. ---
  std::vector<ShardAnswer> answers(shards_.size());
  std::vector<std::int64_t> retries(shards_.size(), 0);
  {
    TaskGroup group(pool_);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      group.Submit([this, i, &query, &answers, &retries]() {
        StageScope scope(telemetry_, shard_fanout_hists_[i],
                         "planner.fanout");
        answers[i] = AskShard(*shards_[i], query, &retries[i]);
      });
    }
    group.Wait();
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    KSIR_RETURN_NOT_OK(answers[i].status);
    if (retries[i] > 0) epoch_retries_counter_->Add(retries[i]);
  }

  // Best single-shard answer: the guard result the merge has to beat.
  std::size_t best_shard = 0;
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    if (answers[i].result.score > answers[best_shard].result.score) {
      best_shard = i;
    }
  }

  // --- Step 2: replay the candidate snapshots into a merge window. ---
  // Every candidate element is inserted with a rebuilt reference list that
  // contains exactly the edges referrer -> candidate of its exported
  // influence set, so the merge window reproduces each shard's I_t(e)
  // precisely (re-ingesting the raw refs would instead re-register edges
  // whose referrers already slid out of the shard windows).
  std::unordered_map<ElementId, SocialElement> merge_elements;
  std::vector<ElementId> candidate_ids;
  for (const ShardAnswer& answer : answers) {
    for (const ElementSnapshot& snapshot : answer.snapshots) {
      candidate_ids.push_back(snapshot.element.id);
      auto [it, inserted] =
          merge_elements.try_emplace(snapshot.element.id, snapshot.element);
      if (inserted) it->second.refs.clear();
      for (const SocialElement& referrer : snapshot.referrers) {
        auto [rit, r_inserted] =
            merge_elements.try_emplace(referrer.id, referrer);
        if (r_inserted) rit->second.refs.clear();
        rit->second.refs.push_back(snapshot.element.id);
      }
    }
  }

  QueryResult merged;
  if (!merge_elements.empty()) {
    StageScope merge_scope(telemetry_, merge_hist_, "planner.merge");
    std::vector<SocialElement> replay;
    replay.reserve(merge_elements.size());
    Timestamp max_ts = 0;
    for (auto& [id, element] : merge_elements) {
      max_ts = std::max(max_ts, element.ts);
      replay.push_back(std::move(element));
    }
    std::sort(replay.begin(), replay.end(),
              [](const SocialElement& a, const SocialElement& b) {
                return a.ts != b.ts ? a.ts < b.ts : a.id < b.id;
              });
    // A window as long as the whole replayed history: nothing expires, so
    // every candidate keeps its full exported influence set.
    ActiveWindow merge_window(max_ts);
    auto update = merge_window.Advance(max_ts, std::move(replay));
    KSIR_RETURN_NOT_OK(update.status());
    const ScoringContext merge_ctx(model_, &merge_window,
                                   shards_.front()->config().scoring);
    std::sort(candidate_ids.begin(), candidate_ids.end());
    merged =
        RunCelfOverCandidates(merge_ctx, merge_window, query, candidate_ids);
  }

  // --- Step 3: never return less than the best single shard. ---
  QueryResult final_result;
  if (merged.score > answers[best_shard].result.score + 1e-12) {
    merge_wins_counter_->Add(1);
    final_result = std::move(merged);
  } else {
    best_shard_wins_counter_->Add(1);
    final_result = std::move(answers[best_shard].result);
    final_result.stats.num_evaluated += merged.stats.num_evaluated;
    final_result.stats.num_gain_evaluations +=
        merged.stats.num_gain_evaluations;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i == best_shard && merged.score <= answers[best_shard].result.score +
                                              1e-12) {
      continue;  // already counted via final_result
    }
    final_result.stats.num_evaluated += answers[i].result.stats.num_evaluated;
    final_result.stats.num_retrieved +=
        answers[i].result.stats.num_retrieved;
    final_result.stats.num_gain_evaluations +=
        answers[i].result.stats.num_gain_evaluations;
  }
  final_result.stats.elapsed_ms = timer.ElapsedMillis();
  return final_result;
}

PlannerStats QueryPlanner::stats() const {
  PlannerStats stats;
  stats.plans = plans_counter_->Value();
  stats.epoch_retries = epoch_retries_counter_->Value();
  stats.merge_wins = merge_wins_counter_->Value();
  stats.best_shard_wins = best_shard_wins_counter_->Value();
  return stats;
}

}  // namespace ksir
