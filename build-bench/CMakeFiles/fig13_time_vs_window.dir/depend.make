# Empty dependencies file for fig13_time_vs_window.
# This may be replaced when dependencies are built.
