// Status / StatusOr error handling (the library does not use exceptions,
// following the Google C++ style guide; fallible APIs return Status or
// StatusOr<T> like Arrow / RocksDB).
#ifndef KSIR_COMMON_STATUS_H_
#define KSIR_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace ksir {

/// Machine-readable error category.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode ("OK", "IOError"...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
/// Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored StatusOr aborts (programming error).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (OK).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    KSIR_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    KSIR_CHECK(ok());
    return *value_;
  }
  T& value() & {
    KSIR_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    KSIR_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define KSIR_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::ksir::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (false)

/// Assigns the value of a StatusOr expression to `lhs` or propagates error.
#define KSIR_ASSIGN_OR_RETURN(lhs, expr)         \
  auto KSIR_CONCAT_(_sor_, __LINE__) = (expr);   \
  if (!KSIR_CONCAT_(_sor_, __LINE__).ok())       \
    return KSIR_CONCAT_(_sor_, __LINE__).status(); \
  lhs = std::move(KSIR_CONCAT_(_sor_, __LINE__)).value()

#define KSIR_CONCAT_IMPL_(a, b) a##b
#define KSIR_CONCAT_(a, b) KSIR_CONCAT_IMPL_(a, b)

}  // namespace ksir

#endif  // KSIR_COMMON_STATUS_H_
