// Element-to-shard routing for the sharded service.
//
// Influence scores (Eq. 4) are computed from reference edges, and every
// shard engine only sees its own partition, so an edge whose endpoints land
// on different shards is lost (it shows up as a dangling reference on the
// referrer's shard). The router therefore keeps reference chains together:
// an element that refers to an already-routed element follows it onto the
// same shard; root elements (no known reference target) are spread by an
// id hash. Retweet/comment/citation cascades are trees rooted at an
// original post, so this keeps most edges intra-shard while the hash keeps
// the shards balanced at the root level.
//
// Pure chain affinity collapses a single-component cascade stream onto one
// shard (every element transitively follows the first root). The optional
// balance cap (`max_imbalance`, EngineConfig::max_shard_imbalance) bounds
// that: a placement that would leave the chosen shard's load above
// `max_imbalance * (least-loaded + 1)` is redirected to the least-loaded
// shard instead, trading that element's chain edges (counted in
// cross_shard_refs) for bounded skew. The load the cap acts on is the
// RECENT load — elements routed within the trailing `balance_horizon`
// stream-time units (the service passes the window length) — because that
// tracks each shard's active set; total tracked assignments span the whole
// resurrectability horizon and go stale long before they are pruned. The
// cap is enforced with 10% headroom and steers placements: it bounds the
// load at every admission, so the observed spread tracks the configured
// bound even as older placements decay. With horizon 0 the cap falls back
// to total tracked loads.
//
// Assignments are kept as long as the element can still be referenced:
// every incoming reference "touches" the target, extending its routing
// lifetime — mirroring the active window, where referrals keep an element
// active indefinitely. PruneOlderThan drops assignments untouched for a
// full window + retention horizon.
#ifndef KSIR_SERVICE_SHARD_ROUTER_H_
#define KSIR_SERVICE_SHARD_ROUTER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/small_vector.h"
#include "common/types.h"
#include "stream/element.h"

namespace ksir {

/// Stateful partitioner. Thread-compatible: all mutations happen on the
/// single ingestion thread.
class ShardRouter {
 public:
  /// `max_imbalance` 0 disables the balance cap; values >= 1 bound the
  /// load ratio between the most and least loaded shard. `balance_horizon`
  /// is the trailing stream-time span whose placements count as a shard's
  /// load for the cap (typically the window length); 0 means total tracked
  /// assignments.
  explicit ShardRouter(std::size_t num_shards, double max_imbalance = 0.0,
                       Timestamp balance_horizon = 0);

  /// Chooses and records the shard of `e`: the shard of the first reference
  /// target with a known assignment (possibly overridden by the balance
  /// cap), else a hash of the element id. Known reference targets are
  /// touched (their routing lifetime restarts). References to targets
  /// assigned to a *different* shard than the chosen one are counted in
  /// cross_shard_refs() (they will be dangling there).
  std::size_t Route(const SocialElement& e);

  /// True when `id` has a recorded assignment.
  bool Knows(ElementId id) const;

  /// Removes the assignments of `ids` (rollback of a failed bucket's
  /// Route calls; touches of older targets are left in place).
  void Forget(const std::vector<ElementId>& ids);

  /// Drops assignments last touched at or before `cutoff`: they are past
  /// resurrectability (references point backward in time and anything
  /// still referring to them would have touched them).
  void PruneOlderThan(Timestamp cutoff);

  std::size_t num_shards() const { return num_shards_; }

  double max_imbalance() const { return max_imbalance_; }

  /// Reference edges whose target was known to live on another shard.
  std::int64_t cross_shard_refs() const { return cross_shard_refs_; }

  /// Chain-affinity placements overridden by the balance cap.
  std::int64_t rebalanced() const { return rebalanced_; }

  /// Currently tracked assignments (memory bound check).
  std::size_t tracked() const { return assignment_.size(); }

  /// Tracked assignments per shard.
  const std::vector<std::size_t>& shard_loads() const { return load_; }

  /// Placements per shard within the trailing balance horizon (the load
  /// the cap acts on when a horizon is configured). Rollbacks (Forget) are
  /// not deducted — they decay out with the horizon — so this can briefly
  /// overcount after failed buckets, which only makes the cap stricter.
  const std::vector<std::size_t>& recent_loads() const { return recent_; }

 private:
  struct Assignment {
    std::uint32_t shard;
    /// Element ts at creation, then the ts of the latest referrer.
    Timestamp last_touch;
  };

  std::size_t HashShard(ElementId id) const;

  /// Applies the balance cap to a candidate shard choice.
  std::size_t CapShard(std::size_t shard);

  /// Decays recent-load contributions older than `now - balance_horizon_`.
  void ExpireRecent(Timestamp now);

  void DropAssignment(ElementId id);

  std::size_t num_shards_;
  double max_imbalance_;
  Timestamp balance_horizon_;
  std::int64_t cross_shard_refs_ = 0;
  std::int64_t rebalanced_ = 0;
  std::unordered_map<ElementId, Assignment> assignment_;
  std::vector<std::size_t> load_;
  std::vector<std::size_t> recent_;
  /// (route ts, shard) of every placement, for recent-load decay.
  std::deque<std::pair<Timestamp, std::uint32_t>> recent_queue_;
  /// (id, touch ts) in ts order for pruning; entries whose ts no longer
  /// matches the assignment's last_touch are stale and skipped (same idiom
  /// as ActiveWindow's archive queue).
  std::deque<std::pair<ElementId, Timestamp>> touch_queue_;
};

}  // namespace ksir

#endif  // KSIR_SERVICE_SHARD_ROUTER_H_
