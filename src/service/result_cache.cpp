#include "service/result_cache.h"

#include <cmath>

#include "common/check.h"

namespace ksir {

namespace {

inline std::uint64_t MixHash(std::uint64_t h, std::uint64_t v) {
  // 64-bit FNV-1a style combine with a splitmix64 finisher per step.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

std::size_t ResultCache::KeyHash::operator()(
    const ResultCacheKey& key) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = MixHash(h, key.epoch);
  h = MixHash(h, static_cast<std::uint64_t>(key.k));
  h = MixHash(h, static_cast<std::uint64_t>(key.algorithm));
  h = MixHash(h, static_cast<std::uint64_t>(key.epsilon_q));
  for (const auto& [topic, weight] : key.x_q) {
    h = MixHash(h, static_cast<std::uint64_t>(topic));
    h = MixHash(h, static_cast<std::uint64_t>(weight));
  }
  return static_cast<std::size_t>(h);
}

ResultCache::ResultCache(std::size_t capacity, double quantum)
    : capacity_(capacity), quantum_(quantum) {
  KSIR_CHECK(capacity >= 1);
  KSIR_CHECK(quantum > 0.0);
}

ResultCacheKey ResultCache::MakeKey(const KsirQuery& query,
                                    std::uint64_t epoch) const {
  ResultCacheKey key;
  key.epoch = epoch;
  key.k = query.k;
  key.algorithm = query.algorithm;
  key.epsilon_q = std::llround(query.epsilon / quantum_);
  key.x_q.reserve(query.x.nnz());
  for (const auto& [topic, weight] : query.x.entries()) {
    key.x_q.emplace_back(topic, std::llround(weight / quantum_));
  }
  return key;
}

std::optional<QueryResult> ResultCache::Lookup(const ResultCacheKey& key) {
  std::lock_guard lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void ResultCache::Insert(const ResultCacheKey& key,
                         const QueryResult& result) {
  std::lock_guard lock(mutex_);
  if (key.epoch < floor_epoch_.load(std::memory_order_relaxed)) {
    // A concurrent InvalidateBefore already swept this epoch; the entry
    // could never match a current-epoch lookup and would only occupy LRU
    // capacity until eviction.
    stats_.stale_inserts.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, result);
  map_.emplace(key, lru_.begin());
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::InvalidateBefore(std::uint64_t epoch) {
  std::lock_guard lock(mutex_);
  if (epoch > floor_epoch_.load(std::memory_order_relaxed)) {
    floor_epoch_.store(epoch, std::memory_order_release);
  }
  std::int64_t invalidated = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.epoch < epoch) {
      map_.erase(it->first);
      it = lru_.erase(it);
      ++invalidated;
    } else {
      ++it;
    }
  }
  if (invalidated > 0) {
    stats_.invalidated.fetch_add(invalidated, std::memory_order_relaxed);
  }
}

void ResultCache::Clear() {
  std::lock_guard lock(mutex_);
  stats_.invalidated.fetch_add(static_cast<std::int64_t>(map_.size()),
                               std::memory_order_relaxed);
  map_.clear();
  lru_.clear();
}

ResultCacheStats ResultCache::stats() const {
  // Deliberately lock-free: monitoring must not contend with the query hot
  // path, and the old locked copy still left the floor counter unreadable
  // without the mutex.
  ResultCacheStats snapshot;
  snapshot.hits = stats_.hits.load(std::memory_order_relaxed);
  snapshot.misses = stats_.misses.load(std::memory_order_relaxed);
  snapshot.evictions = stats_.evictions.load(std::memory_order_relaxed);
  snapshot.invalidated = stats_.invalidated.load(std::memory_order_relaxed);
  snapshot.stale_inserts =
      stats_.stale_inserts.load(std::memory_order_relaxed);
  return snapshot;
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return map_.size();
}

}  // namespace ksir
