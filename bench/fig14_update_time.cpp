// Figure 14: ranked-list maintenance time per arriving element, with
// varying z (left plot) and varying T (right plot).
//
// Expected shape (paper): update time grows with z (more lists per element)
// and with T (more active elements per list), staying well under a
// millisecond per element.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ksir;
  using namespace ksir::bench;
  PrintBanner("Figure 14 - update time per element vs z and vs T",
              "EDBT'19 Fig. 14 (left/right)");

  std::printf("\n-- update time (ms/element) vs number of topics z "
              "(T = 24 h) --\n");
  PrintHeaderRow("z", {"AMinerSim", "RedditSim", "TwitterSim"});
  for (const int z : {50, 100, 150, 200, 250}) {
    std::vector<double> cells;
    for (int which = 0; which < 3; ++which) {
      const Dataset dataset = MakeDataset(which, z);
      const auto engine = BuildAndFeed(dataset, MakeConfig(dataset));
      const auto stats = engine->maintenance_stats();
      cells.push_back(stats.total_update_ms /
                      static_cast<double>(stats.elements_ingested));
    }
    PrintRow(std::to_string(z), cells, 4);
  }

  std::printf("\n-- update time (ms/element) vs window length T (z = 50) --\n");
  PrintHeaderRow("T (hours)", {"AMinerSim", "RedditSim", "TwitterSim"});
  for (const int hours : {6, 12, 18, 24, 30}) {
    std::vector<double> cells;
    for (int which = 0; which < 3; ++which) {
      const Dataset dataset = MakeDataset(which);
      const auto engine = BuildAndFeed(
          dataset, MakeConfig(dataset, static_cast<Timestamp>(hours) * 3600));
      const auto stats = engine->maintenance_stats();
      cells.push_back(stats.total_update_ms /
                      static_cast<double>(stats.elements_ingested));
    }
    PrintRow(std::to_string(hours), cells, 4);
  }
  return 0;
}
