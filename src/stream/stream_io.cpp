#include "stream/stream_io.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_set>

namespace ksir {

namespace {

// Splits `s` by `delim` (keeps empty fields).
std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

template <typename T>
bool ParseInt(std::string_view s, T* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

Status WriteStreamTsv(const std::vector<SocialElement>& elements,
                      std::ostream* out) {
  KSIR_CHECK(out != nullptr);
  out->precision(17);
  for (const SocialElement& e : elements) {
    (*out) << e.id << '\t' << e.ts << '\t';
    if (e.doc.empty()) {
      (*out) << '-';
    } else {
      bool first = true;
      for (const auto& [word, count] : e.doc.word_counts()) {
        if (!first) (*out) << ',';
        (*out) << word << ':' << count;
        first = false;
      }
    }
    (*out) << '\t';
    if (e.refs.empty()) {
      (*out) << '-';
    } else {
      for (std::size_t i = 0; i < e.refs.size(); ++i) {
        if (i > 0) (*out) << ',';
        (*out) << e.refs[i];
      }
    }
    (*out) << '\t';
    if (e.topics.empty()) {
      (*out) << '-';
    } else {
      bool first = true;
      for (const auto& [topic, prob] : e.topics.entries()) {
        if (!first) (*out) << ',';
        (*out) << topic << ':' << prob;
        first = false;
      }
    }
    (*out) << '\n';
  }
  if (!out->good()) return Status::IOError("failed writing stream");
  return Status::OK();
}

StatusOr<std::vector<SocialElement>> ReadStreamTsv(std::istream* in) {
  KSIR_CHECK(in != nullptr);
  std::vector<SocialElement> elements;
  std::unordered_set<ElementId> seen_ids;
  std::string line;
  std::size_t line_no = 0;
  Timestamp last_ts = kMinTimestamp;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 5) {
      return Status::IOError("line " + std::to_string(line_no) +
                             ": expected 5 tab-separated fields");
    }
    SocialElement e;
    if (!ParseInt(fields[0], &e.id)) {
      return Status::IOError("line " + std::to_string(line_no) + ": bad id");
    }
    if (!seen_ids.insert(e.id).second) {
      return Status::IOError("line " + std::to_string(line_no) +
                             ": duplicate id");
    }
    if (!ParseInt(fields[1], &e.ts)) {
      return Status::IOError("line " + std::to_string(line_no) + ": bad ts");
    }
    if (e.ts < last_ts) {
      return Status::IOError("line " + std::to_string(line_no) +
                             ": timestamps must be non-decreasing");
    }
    last_ts = e.ts;

    if (fields[2] != "-") {
      std::vector<WordId> word_ids;
      for (std::string_view part : Split(fields[2], ',')) {
        const std::size_t colon = part.find(':');
        WordId word = kInvalidWordId;
        std::int32_t count = 0;
        if (colon == std::string_view::npos ||
            !ParseInt(part.substr(0, colon), &word) ||
            !ParseInt(part.substr(colon + 1), &count) || word < 0 ||
            count <= 0) {
          return Status::IOError("line " + std::to_string(line_no) +
                                 ": bad word:count token");
        }
        for (std::int32_t c = 0; c < count; ++c) word_ids.push_back(word);
      }
      e.doc = Document::FromWordIds(word_ids);
    }
    if (fields[3] != "-") {
      for (std::string_view part : Split(fields[3], ',')) {
        ElementId ref = kInvalidElementId;
        if (!ParseInt(part, &ref)) {
          return Status::IOError("line " + std::to_string(line_no) +
                                 ": bad ref id");
        }
        e.refs.push_back(ref);
      }
    }
    if (fields[4] != "-") {
      std::vector<SparseVector::Entry> entries;
      for (std::string_view part : Split(fields[4], ',')) {
        const std::size_t colon = part.find(':');
        std::int32_t topic = -1;
        double prob = 0.0;
        if (colon == std::string_view::npos ||
            !ParseInt(part.substr(0, colon), &topic) ||
            !ParseDouble(part.substr(colon + 1), &prob) || topic < 0 ||
            prob <= 0.0) {
          return Status::IOError("line " + std::to_string(line_no) +
                                 ": bad topic:prob token");
        }
        entries.emplace_back(topic, prob);
      }
      e.topics = SparseVector::FromEntries(std::move(entries));
    }
    elements.push_back(std::move(e));
  }
  return elements;
}

}  // namespace ksir
