// Algorithm 1: keeps the per-topic ranked lists consistent with the active
// window as buckets arrive and expire.
#ifndef KSIR_CORE_INDEX_MAINTAINER_H_
#define KSIR_CORE_INDEX_MAINTAINER_H_

#include "core/ranked_list.h"
#include "core/scoring.h"
#include "window/active_window.h"

namespace ksir {

/// How ranked-list scores react to referrer expiry (DESIGN.md §5).
enum class RefreshMode {
  /// Reposition elements whose referrers expired: list scores are always
  /// exactly delta_i(e). Default.
  kExact,
  /// Literal Algorithm 1: scores are only refreshed when an element gains a
  /// referrer. A score may stay stale-high after referrer expiry, which
  /// keeps upper-bound pruning sound but less tight.
  kPaper,
};

/// Applies window updates to the ranked lists (Algorithm 1 lines 4-13).
class IndexMaintainer {
 public:
  /// `ctx` and `index` must outlive the maintainer; `ctx`'s window must be
  /// the window whose updates are applied.
  IndexMaintainer(const ScoringContext* ctx, RankedListIndex* index,
                  RefreshMode mode = RefreshMode::kExact);

  /// Applies one Advance() result. Must be called after every window
  /// advance, with no interleaved advances.
  void Apply(const ActiveWindow::UpdateResult& update);

  RefreshMode mode() const { return mode_; }

 private:
  void Reposition(ElementId id);

  const ScoringContext* ctx_;
  RankedListIndex* index_;
  RefreshMode mode_;
};

}  // namespace ksir

#endif  // KSIR_CORE_INDEX_MAINTAINER_H_
