#include "service/result_cache.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ksir {

namespace {

inline std::uint64_t MixHash(std::uint64_t h, std::uint64_t v) {
  // 64-bit FNV-1a style combine with a splitmix64 finisher per step.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Segment count: enough to kill lock contention at service capacities,
/// but never so many that a small cache's per-segment slice distorts LRU
/// behavior (capacities under 2 * kMinPerSegment stay on one segment and
/// keep exact global LRU semantics).
std::size_t NumSegmentsFor(std::size_t capacity) {
  constexpr std::size_t kMaxSegments = 8;
  constexpr std::size_t kMinPerSegment = 64;
  return std::clamp<std::size_t>(capacity / kMinPerSegment, 1, kMaxSegments);
}

std::size_t ComputeKeyHash(const ResultCacheKey& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = MixHash(h, key.epoch);
  h = MixHash(h, static_cast<std::uint64_t>(key.k));
  h = MixHash(h, static_cast<std::uint64_t>(key.algorithm));
  h = MixHash(h, static_cast<std::uint64_t>(key.epsilon_q));
  for (const auto& [topic, weight] : key.x_q) {
    h = MixHash(h, static_cast<std::uint64_t>(topic));
    h = MixHash(h, static_cast<std::uint64_t>(weight));
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

std::size_t ResultCache::KeyHash::operator()(
    const ResultCacheKey& key) const {
  return key.hash != 0 ? key.hash : ComputeKeyHash(key);
}

ResultCache::ResultCache(std::size_t capacity, double quantum,
                         Telemetry* telemetry)
    : capacity_(capacity),
      quantum_(quantum),
      segment_capacity_((capacity + NumSegmentsFor(capacity) - 1) /
                        NumSegmentsFor(capacity)),
      segments_(NumSegmentsFor(capacity)),
      owned_telemetry_(telemetry == nullptr ? std::make_unique<Telemetry>()
                                            : nullptr),
      telemetry_(telemetry != nullptr ? telemetry : owned_telemetry_.get()) {
  KSIR_CHECK(capacity >= 1);
  KSIR_CHECK(quantum > 0.0);
  MetricRegistry& reg = telemetry_->registry();
  hits_ = reg.GetCounter("ksir_cache_hits_total", "Result-cache hits");
  misses_ = reg.GetCounter("ksir_cache_misses_total", "Result-cache misses");
  evictions_ =
      reg.GetCounter("ksir_cache_evictions_total", "LRU evictions");
  invalidated_ = reg.GetCounter(
      "ksir_cache_invalidated_total",
      "Entries dropped by epoch invalidation sweeps and Clear()");
  stale_inserts_ = reg.GetCounter(
      "ksir_cache_stale_inserts_total",
      "Inserts rejected below the epoch invalidation floor");
}

ResultCache::Segment& ResultCache::SegmentFor(
    const ResultCacheKey& key) const {
  if (segments_.size() == 1) return segments_[0];
  return segments_[KeyHash{}(key) % segments_.size()];
}

ResultCacheKey ResultCache::MakeKey(const KsirQuery& query,
                                    std::uint64_t epoch) const {
  ResultCacheKey key;
  key.epoch = epoch;
  key.k = query.k;
  key.algorithm = query.algorithm;
  key.epsilon_q = std::llround(query.epsilon / quantum_);
  key.x_q.reserve(query.x.nnz());
  for (const auto& [topic, weight] : query.x.entries()) {
    key.x_q.emplace_back(topic, std::llround(weight / quantum_));
  }
  key.hash = ComputeKeyHash(key);
  return key;
}

std::optional<QueryResult> ResultCache::Lookup(const ResultCacheKey& key) {
  Segment& segment = SegmentFor(key);
  std::lock_guard lock(segment.mutex);
  const auto it = segment.map.find(key);
  if (it == segment.map.end()) {
    misses_->Add(1);
    return std::nullopt;
  }
  segment.lru.splice(segment.lru.begin(), segment.lru, it->second);
  hits_->Add(1);
  return it->second->second;
}

void ResultCache::Insert(const ResultCacheKey& key,
                         const QueryResult& result) {
  Segment& segment = SegmentFor(key);
  std::lock_guard lock(segment.mutex);
  if (key.epoch < floor_epoch_.load(std::memory_order_relaxed)) {
    // A concurrent InvalidateBefore already swept this epoch; the entry
    // could never match a current-epoch lookup and would only occupy LRU
    // capacity until eviction.
    stale_inserts_->Add(1);
    return;
  }
  const auto it = segment.map.find(key);
  if (it != segment.map.end()) {
    it->second->second = result;
    segment.lru.splice(segment.lru.begin(), segment.lru, it->second);
    return;
  }
  segment.lru.emplace_front(key, result);
  segment.map.emplace(key, segment.lru.begin());
  while (segment.map.size() > segment_capacity_) {
    segment.map.erase(segment.lru.back().first);
    segment.lru.pop_back();
    evictions_->Add(1);
  }
}

void ResultCache::InvalidateBefore(std::uint64_t epoch) {
  // Raise the admission floor FIRST (monotone CAS loop — sweeps from
  // different threads must never lower it), so an Insert racing the sweep
  // of its segment is rejected no matter which lock it wins.
  std::uint64_t floor = floor_epoch_.load(std::memory_order_relaxed);
  while (epoch > floor &&
         !floor_epoch_.compare_exchange_weak(floor, epoch,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
  }
  std::int64_t invalidated = 0;
  for (Segment& segment : segments_) {
    std::lock_guard lock(segment.mutex);
    for (auto it = segment.lru.begin(); it != segment.lru.end();) {
      if (it->first.epoch < epoch) {
        segment.map.erase(it->first);
        it = segment.lru.erase(it);
        ++invalidated;
      } else {
        ++it;
      }
    }
  }
  if (invalidated > 0) {
    invalidated_->Add(invalidated);
  }
}

void ResultCache::Clear() {
  std::int64_t dropped = 0;
  for (Segment& segment : segments_) {
    std::lock_guard lock(segment.mutex);
    dropped += static_cast<std::int64_t>(segment.map.size());
    segment.map.clear();
    segment.lru.clear();
  }
  if (dropped > 0) {
    invalidated_->Add(dropped);
  }
}

ResultCacheStats ResultCache::stats() const {
  // Deliberately lock-free: monitoring must not contend with the query hot
  // path. A thin view over the registry counters, which are the storage.
  ResultCacheStats snapshot;
  snapshot.hits = hits_->Value();
  snapshot.misses = misses_->Value();
  snapshot.evictions = evictions_->Value();
  snapshot.invalidated = invalidated_->Value();
  snapshot.stale_inserts = stale_inserts_->Value();
  return snapshot;
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (Segment& segment : segments_) {
    std::lock_guard lock(segment.mutex);
    total += segment.map.size();
  }
  return total;
}

}  // namespace ksir
