#include "core/score_cache.h"

#include "common/check.h"

namespace ksir {

ScoreCache::ScoreCache(const ScoringContext* ctx) : ctx_(ctx) {
  KSIR_CHECK(ctx != nullptr);
}

void ScoreCache::Insert(const SocialElement& e) {
  const double lambda = ctx_->params().lambda;
  const double influence_factor = ctx_->influence_factor();
  TopicList& topics = entries_[e.id];
  topics.clear();
  topics.reserve(e.topics.nnz());
  for (const auto& [topic, prob] : e.topics.entries()) {
    const double semantic = ctx_->SemanticScore(topic, e, prob);
    const double influence = ctx_->InfluenceScore(topic, e, prob);
    topics.emplace_back(TopicHalves{
        topic, prob, semantic, influence,
        lambda * semantic + influence_factor * influence});
  }
}

void ScoreCache::Erase(ElementId id) { entries_.erase(id); }

void ScoreCache::AddEdge(ElementId target,
                         const SparseVector& referrer_topics) {
  ApplyEdge(target, referrer_topics, 1.0);
}

void ScoreCache::RemoveEdge(ElementId target,
                            const SparseVector& referrer_topics) {
  ApplyEdge(target, referrer_topics, -1.0);
}

void ScoreCache::ApplyEdge(ElementId target,
                           const SparseVector& referrer_topics, double sign) {
  const auto it = entries_.find(target);
  KSIR_CHECK(it != entries_.end());
  TopicList& topics = it->second;
  const auto& ref_topics = referrer_topics.entries();
  // Both sides are sorted by topic; one merge pass over the shared support.
  std::size_t ti = 0;
  std::size_t ri = 0;
  while (ti < topics.size() && ri < ref_topics.size()) {
    if (topics[ti].topic < ref_topics[ri].first) {
      ++ti;
    } else if (ref_topics[ri].first < topics[ti].topic) {
      ++ri;
    } else {
      topics[ti].influence +=
          sign * topics[ti].topic_prob * ref_topics[ri].second;
      ++ti;
      ++ri;
    }
  }
}

ScoreCache::TopicList& ScoreCache::MutableHalves(ElementId id) {
  const auto it = entries_.find(id);
  KSIR_CHECK(it != entries_.end());
  return it->second;
}

void ScoreCache::ComposeScores(
    ElementId id, std::vector<std::pair<TopicId, double>>* out) const {
  const auto it = entries_.find(id);
  KSIR_CHECK(it != entries_.end());
  const double lambda = ctx_->params().lambda;
  const double influence_factor = ctx_->influence_factor();
  out->clear();
  out->reserve(it->second.size());
  for (const TopicHalves& halves : it->second) {
    out->emplace_back(halves.topic, lambda * halves.semantic +
                                        influence_factor * halves.influence);
  }
}

}  // namespace ksir
