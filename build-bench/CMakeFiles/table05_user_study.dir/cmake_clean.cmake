file(REMOVE_RECURSE
  "CMakeFiles/table05_user_study.dir/bench/table05_user_study.cpp.o"
  "CMakeFiles/table05_user_study.dir/bench/table05_user_study.cpp.o.d"
  "table05_user_study"
  "table05_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
