// Small numeric helpers shared by scoring and topic modeling.
#ifndef KSIR_COMMON_MATH_H_
#define KSIR_COMMON_MATH_H_

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/kernels/kernels.h"

namespace ksir {

/// -p * ln(p) with the limit value 0 at p == 0; requires p in [0, 1].
/// This is the information-entropy word weight kernel of Eq. (3):
/// sigma_i(w, e) = freq * EntropyWeight(p_i(w) * p_i(e)).
inline double EntropyWeight(double p) {
  KSIR_DCHECK(p >= 0.0 && p <= 1.0 + 1e-12);
  if (p <= 0.0) return 0.0;
  return -p * std::log(p);
}

/// Normalizes `v` in place to sum to 1; leaves a uniform vector when the
/// input sums to zero. Returns the pre-normalization sum.
inline double NormalizeInPlace(std::vector<double>* v) {
  KSIR_DCHECK(v != nullptr && !v->empty());
  double total = 0.0;
  for (double x : *v) total += x;
  if (total <= 0.0) {
    const double u = 1.0 / static_cast<double>(v->size());
    for (auto& x : *v) x = u;
    return total;
  }
  for (auto& x : *v) x /= total;
  return total;
}

/// Cosine similarity of two equal-length dense vectors (0 when either is 0).
/// Dot and norms run on the dispatched dense kernels (canonical lane
/// order, bitwise identical across ISA arms).
inline double CosineSimilarity(const std::vector<double>& a,
                               const std::vector<double>& b) {
  KSIR_DCHECK(a.size() == b.size());
  const double dot = kernels::DenseDot(a.data(), b.data(), a.size());
  const double na = kernels::SumSquares(a.data(), a.size(), 1);
  const double nb = kernels::SumSquares(b.data(), b.size(), 1);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

/// True when |a - b| <= tol (absolute tolerance).
inline bool NearlyEqual(double a, double b, double tol = 1e-9) {
  return std::abs(a - b) <= tol;
}

}  // namespace ksir

#endif  // KSIR_COMMON_MATH_H_
