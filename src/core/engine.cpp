#include "core/engine.h"

#include <algorithm>
#include <mutex>
#include <string>

#include "common/timer.h"
#include "runtime/worker_pool.h"
#include "core/brute_force.h"
#include "core/celf.h"
#include "core/mttd.h"
#include "core/mtts.h"
#include "core/sieve_streaming.h"
#include "core/topk_representative.h"

namespace ksir {

std::string_view AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMtts:
      return "MTTS";
    case Algorithm::kMttd:
      return "MTTD";
    case Algorithm::kCelf:
      return "CELF";
    case Algorithm::kGreedy:
      return "Greedy";
    case Algorithm::kSieveStreaming:
      return "SieveStreaming";
    case Algorithm::kTopkRepresentative:
      return "Top-k Representative";
    case Algorithm::kBruteForce:
      return "BruteForce";
  }
  return "Unknown";
}

Status ValidateEngineConfig(const EngineConfig& config) {
  if (config.bucket_length <= 0) {
    return Status::InvalidArgument("bucket_length must be positive");
  }
  if (config.window_length < config.bucket_length) {
    return Status::InvalidArgument(
        "window_length must cover at least one bucket");
  }
  if (config.scoring.eta <= 0.0) {
    return Status::InvalidArgument("scoring.eta must be positive");
  }
  if (config.scoring.lambda < 0.0 || config.scoring.lambda > 1.0) {
    return Status::InvalidArgument("scoring.lambda must be in [0, 1]");
  }
  // Written so NaN fails both arms and is rejected here instead of dying
  // on the router's CHECK.
  if (!(config.max_shard_imbalance == 0.0 ||
        config.max_shard_imbalance >= 1.0)) {
    return Status::InvalidArgument(
        "max_shard_imbalance must be 0 (off) or >= 1");
  }
  // The engine spawns maintenance_threads - 1 OS threads when it owns the
  // pool; an absurd value from an untrusted config must fail validation
  // here, not exhaust the process inside the constructor. 256 is far past
  // any useful participant count (the stages shard by element and topic,
  // both bounded per bucket).
  if (config.maintenance_threads > 256) {
    return Status::InvalidArgument(
        "maintenance_threads must be <= 256");
  }
  KSIR_RETURN_NOT_OK(ValidateTelemetryConfig(config.telemetry));
  return Status::OK();
}

bool UsesHandlePipeline(const EngineConfig& config) {
  return config.carry_handles &&
         config.score_maintenance == ScoreMaintenance::kIncremental &&
         config.reposition_batch_min > 0;
}

bool UsesParallelMaintenance(const EngineConfig& config) {
  return UsesHandlePipeline(config) && config.maintenance_threads >= 2;
}

KsirEngine::KsirEngine(EngineConfig config, const TopicModel* model,
                       WorkerPool* maintenance_pool, Telemetry* telemetry)
    : config_(config),
      window_(config.window_length, config.archive_retention),
      index_(model != nullptr ? model->num_topics() : 1,
             /*track_ids=*/!UsesHandlePipeline(config)),
      scoring_(model, &window_, config.scoring),
      owned_telemetry_(telemetry == nullptr
                           ? std::make_unique<Telemetry>(config.telemetry)
                           : nullptr),
      telemetry_(telemetry != nullptr ? telemetry : owned_telemetry_.get()),
      advance_hist_(telemetry_->registry().GetHistogram(
          "ksir_engine_advance_seconds",
          "One KsirEngine::AdvanceTo (window advance + bucket apply)")),
      // The advancing thread is one participant, so an engine-owned pool
      // only needs the helpers. A shared pool is used as passed — the
      // sharded service hands every shard the same process-wide pool.
      owned_pool_(maintenance_pool == nullptr && UsesParallelMaintenance(config)
                      ? MakeWorkerPool(config.maintenance_threads - 1,
                                       /*fallback=*/1, telemetry_)
                      : nullptr),
      maintainer_(&scoring_, &index_, config.refresh_mode,
                  config.score_maintenance, config.reposition_batch_min,
                  config.carry_handles,
                  maintenance_pool != nullptr ? maintenance_pool
                                              : owned_pool_.get(),
                  config.maintenance_threads, telemetry_) {
  KSIR_CHECK(config.bucket_length > 0);
  KSIR_CHECK(config.window_length >= config.bucket_length);
}

KsirEngine::~KsirEngine() = default;

StatusOr<std::unique_ptr<KsirEngine>> KsirEngine::Create(
    EngineConfig config, const TopicModel* model,
    WorkerPool* maintenance_pool, Telemetry* telemetry) {
  KSIR_RETURN_NOT_OK(ValidateEngineConfig(config));
  if (model == nullptr) {
    return Status::InvalidArgument("topic model must not be null");
  }
  return std::make_unique<KsirEngine>(config, model, maintenance_pool,
                                      telemetry);
}

Status KsirEngine::AdvanceTo(Timestamp bucket_end,
                             std::vector<SocialElement> bucket) {
  std::unique_lock lock(mutex_);
  if (bucket_end < window_.now()) {
    return Status::InvalidArgument(
        "out-of-order bucket: bucket_end " + std::to_string(bucket_end) +
        " precedes engine time " + std::to_string(window_.now()));
  }
  if (bucket_end == window_.now() && bucket.empty()) {
    return Status::FailedPrecondition(
        "no-op bucket: empty bucket at the current engine time " +
        std::to_string(bucket_end));
  }
  WallTimer timer;
  const std::size_t n = bucket.size();
  KSIR_ASSIGN_OR_RETURN(ActiveWindow::UpdateResult update,
                        window_.Advance(bucket_end, std::move(bucket)));
  maintainer_.Apply(update);
  stats_.elements_ingested += static_cast<std::int64_t>(n);
  ++stats_.buckets_processed;
  stats_.elements_expired +=
      static_cast<std::int64_t>(update.expired.size());
  stats_.dangling_refs += update.dangling_refs;
  const double elapsed_ms = timer.ElapsedMillis();
  stats_.total_update_ms += elapsed_ms;
  // The clock reads above pre-date telemetry (they feed MaintenanceStats),
  // so only the histogram record itself is gated on the level.
  if (telemetry_->timing_enabled()) {
    advance_hist_->Record(elapsed_ms / 1e3);
  }
  ++bucket_epoch_;
  last_summary_ = maintainer_.last_summary();
  last_summary_.epoch = bucket_epoch_;
  return Status::OK();
}

Status AppendInBuckets(
    std::vector<SocialElement> elements, Timestamp bucket_length,
    const std::function<Timestamp()>& now,
    const std::function<Status(Timestamp, std::vector<SocialElement>)>&
        advance) {
  if (elements.empty()) return Status::OK();
  const Timestamp l = bucket_length;
  std::size_t begin = 0;
  while (begin < elements.size()) {
    // Bucket end: the smallest multiple of L at/after the first element
    // (strictly after the current clock).
    const Timestamp first_ts = elements[begin].ts;
    if (first_ts <= now()) {
      return Status::InvalidArgument(
          "element ts " + std::to_string(first_ts) +
          " not newer than stream time " + std::to_string(now()));
    }
    Timestamp bucket_end = ((first_ts + l - 1) / l) * l;
    if (bucket_end <= now()) bucket_end += l;
    std::size_t end = begin;
    while (end < elements.size() && elements[end].ts <= bucket_end) ++end;
    // Final chunk: advance only to the last element's timestamp so that a
    // subsequent Append may deliver elements of the same (open) bucket.
    if (end == elements.size()) bucket_end = elements[end - 1].ts;
    std::vector<SocialElement> bucket(
        std::make_move_iterator(elements.begin() +
                                static_cast<std::ptrdiff_t>(begin)),
        std::make_move_iterator(elements.begin() +
                                static_cast<std::ptrdiff_t>(end)));
    KSIR_RETURN_NOT_OK(advance(bucket_end, std::move(bucket)));
    begin = end;
  }
  return Status::OK();
}

Status KsirEngine::Append(std::vector<SocialElement> elements) {
  return AppendInBuckets(
      std::move(elements), config_.bucket_length, [this]() { return now(); },
      [this](Timestamp bucket_end, std::vector<SocialElement> bucket) {
        return AdvanceTo(bucket_end, std::move(bucket));
      });
}

StatusOr<QueryResult> KsirEngine::Query(const KsirQuery& query) const {
  if (query.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (query.x.empty()) {
    return Status::InvalidArgument("query vector is empty");
  }
  const bool needs_epsilon = query.algorithm == Algorithm::kMtts ||
                             query.algorithm == Algorithm::kMttd ||
                             query.algorithm == Algorithm::kSieveStreaming;
  if (needs_epsilon && (query.epsilon <= 0.0 || query.epsilon >= 1.0)) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  std::shared_lock lock(mutex_);
  switch (query.algorithm) {
    case Algorithm::kMtts:
      return RunMtts(scoring_, index_, query);
    case Algorithm::kMttd:
      return RunMttd(scoring_, index_, query);
    case Algorithm::kCelf:
      return RunCelf(scoring_, window_, query);
    case Algorithm::kGreedy:
      return RunGreedy(scoring_, window_, query);
    case Algorithm::kSieveStreaming:
      return RunSieveStreaming(scoring_, window_, query);
    case Algorithm::kTopkRepresentative:
      return RunTopkRepresentative(scoring_, index_, query);
    case Algorithm::kBruteForce:
      return RunBruteForce(scoring_, window_, query);
  }
  return Status::InvalidArgument("unknown algorithm");
}

Timestamp KsirEngine::now() const {
  std::shared_lock lock(mutex_);
  return window_.now();
}

std::uint64_t KsirEngine::bucket_epoch() const {
  std::shared_lock lock(mutex_);
  return bucket_epoch_;
}

AdvanceSummary KsirEngine::last_advance_summary() const {
  std::shared_lock lock(mutex_);
  return last_summary_;
}

std::size_t KsirEngine::num_active() const {
  std::shared_lock lock(mutex_);
  return window_.num_active();
}

std::vector<ElementSnapshot> KsirEngine::ExportSnapshots(
    const std::vector<ElementId>& ids) const {
  std::shared_lock lock(mutex_);
  std::vector<ElementSnapshot> snapshots;
  snapshots.reserve(ids.size());
  for (const ElementId id : ids) {
    const SocialElement* element = window_.Find(id);
    if (element == nullptr) continue;
    ElementSnapshot snapshot;
    snapshot.element = *element;
    for (const Referrer& referrer : window_.ReferrersOf(id)) {
      const SocialElement* r = window_.Find(referrer.id);
      if (r != nullptr) snapshot.referrers.push_back(*r);
    }
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

MaintenanceStats KsirEngine::maintenance_stats() const {
  std::shared_lock lock(mutex_);
  return stats_;
}

}  // namespace ksir
