# Empty compiler generated dependencies file for fig07_time_vs_eps.
# This may be replaced when dependencies are built.
