// LexRank (Erkan & Radev 2004): eigenvector centrality over a sentence /
// element similarity graph. Used by the Sumblr-style summarizer to pick the
// most central element of each cluster.
#ifndef KSIR_SEARCH_LEXRANK_H_
#define KSIR_SEARCH_LEXRANK_H_

#include <cstdint>
#include <vector>

namespace ksir {

/// LexRank parameters.
struct LexRankOptions {
  /// Similarities below this threshold are treated as no edge.
  double threshold = 0.1;
  /// PageRank-style damping factor.
  double damping = 0.85;
  std::int32_t iterations = 50;
};

/// Computes LexRank scores from a symmetric similarity matrix
/// (`similarity[i][j]` in [0, 1]). Returns a distribution summing to 1;
/// isolated nodes receive the uniform teleport mass.
std::vector<double> LexRank(const std::vector<std::vector<double>>& similarity,
                            LexRankOptions options = {});

}  // namespace ksir

#endif  // KSIR_SEARCH_LEXRANK_H_
