// Bump-pointer arena and a free-list object pool built on it.
//
// The ingestion hot path creates and destroys two kinds of objects at bucket
// rate: per-bucket scratch (the batched-reposition runs IndexMaintainer
// scatters per ranked list — all dead at the end of the bucket) and
// per-element window entries (ActiveWindow::Entry — long-lived but churned
// continuously by insert/expiry/GC). Arena serves the first: allocations are
// a pointer bump, and Reset() reclaims everything at once while keeping the
// blocks for the next bucket, so steady state does no heap traffic at all.
// ObjectPool serves the second: slots come from an arena and destroyed
// objects go onto a free list, so an element insert after a GC reuses a
// still-warm slot instead of hitting the allocator.
//
// Neither is thread-safe; each owner (one engine's maintainer, one engine's
// window) confines its arena/pool to the thread advancing that engine. That
// confinement is what lets the sharded service run per-shard maintenance in
// parallel with no shared mutable allocator state.
#ifndef KSIR_COMMON_ARENA_H_
#define KSIR_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ksir {

/// Monotonic bump allocator. Allocate() never frees; Reset() rewinds every
/// block at once (blocks are retained and reused, so a steady-state caller
/// stops allocating after warmup).
class Arena {
 public:
  /// `block_bytes` is the granularity new blocks are requested at;
  /// allocations larger than a block get a dedicated block of their size.
  explicit Arena(std::size_t block_bytes = 4096)
      : block_bytes_(block_bytes) {
    KSIR_CHECK(block_bytes > 0);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two no
  /// larger than alignof(std::max_align_t); block bases are new[]-aligned,
  /// so offset alignment within a block suffices).
  void* Allocate(std::size_t bytes, std::size_t align) {
    KSIR_CHECK(align > 0 && (align & (align - 1)) == 0 &&
               align <= alignof(std::max_align_t));
    if (bytes == 0) bytes = 1;
    while (active_ < blocks_.size()) {
      Block& block = blocks_[active_];
      const std::size_t aligned = AlignUp(block.used, align);
      if (aligned + bytes <= block.size) {
        block.used = aligned + bytes;
        return block.data.get() + aligned;
      }
      ++active_;
    }
    // No retained block fits: start a fresh one (oversized requests get an
    // exactly-sized block so they don't poison the reuse pattern).
    Block block;
    block.size = bytes > block_bytes_ ? bytes : block_bytes_;
    block.data = std::make_unique<unsigned char[]>(block.size);
    block.used = bytes;
    blocks_.push_back(std::move(block));
    active_ = blocks_.size() - 1;
    return blocks_.back().data.get();
  }

  /// Uninitialized storage for `n` objects of trivially destructible T (the
  /// arena never runs destructors).
  template <typename T>
  T* AllocateArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is reclaimed without running destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds every block; retained storage is reused by later Allocates.
  void Reset() {
    for (Block& block : blocks_) block.used = 0;
    active_ = 0;
  }

  /// Total bytes of retained block storage (capacity, not live bytes).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static std::size_t AlignUp(std::size_t value, std::size_t align) {
    return (value + align - 1) & ~(align - 1);
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t active_ = 0;
};

/// Fixed-type object pool: slots are arena-backed, destroyed objects feed a
/// free list. Create/Destroy pairs must balance per object; the pool's
/// destructor releases the slot storage but does NOT run destructors of
/// still-live objects — the owner must Destroy everything it created.
template <typename T>
class ObjectPool {
 public:
  explicit ObjectPool(std::size_t block_bytes = 4096)
      : arena_(block_bytes) {}

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  template <typename... Args>
  T* Create(Args&&... args) {
    Slot* slot = free_;
    if (slot != nullptr) {
      free_ = slot->next;
    } else {
      slot = static_cast<Slot*>(arena_.Allocate(sizeof(Slot), alignof(Slot)));
    }
    T* object;
    try {
      object = ::new (static_cast<void*>(slot->storage))
          T(std::forward<Args>(args)...);
    } catch (...) {
      // Keep the slot and the live count consistent when T's constructor
      // throws: nothing was created.
      slot->next = free_;
      free_ = slot;
      throw;
    }
    ++live_;
    return object;
  }

  void Destroy(T* object) {
    KSIR_CHECK(object != nullptr && live_ > 0);
    object->~T();
    Slot* slot = reinterpret_cast<Slot*>(object);
    slot->next = free_;
    free_ = slot;
    --live_;
  }

  /// Objects currently alive (Created and not yet Destroyed).
  std::size_t live() const { return live_; }

 private:
  union Slot {
    Slot* next;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  Arena arena_;
  Slot* free_ = nullptr;
  std::size_t live_ = 0;
};

}  // namespace ksir

#endif  // KSIR_COMMON_ARENA_H_
