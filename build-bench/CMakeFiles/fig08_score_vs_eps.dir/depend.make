# Empty dependencies file for fig08_score_vs_eps.
# This may be replaced when dependencies are built.
