// Figure 8: average representativeness score of MTTS and MTTD with varying
// epsilon; CELF's score is printed as the quality reference.
//
// Expected shape (paper): both decrease mildly with epsilon; even at
// eps = 0.5 the loss vs CELF stays within ~5%.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ksir;
  using namespace ksir::bench;
  PrintBanner("Figure 8 - result score vs epsilon (MTTS, MTTD; CELF ref)",
              "EDBT'19 Fig. 8(a)-(c)");

  const std::size_t num_queries = NumQueries(GetScale());
  for (int which = 0; which < 3; ++which) {
    const Dataset dataset = MakeDataset(which);
    const auto engine = BuildAndFeed(dataset, MakeConfig(dataset));
    const auto workload = MakeWorkload(dataset, num_queries);
    const CellStats celf =
        RunWorkload(*engine, workload, Algorithm::kCelf, 10, 0.1);
    std::printf("\n[%s]  CELF reference score: %.4f\n", dataset.name.c_str(),
                celf.mean_score);
    PrintHeaderRow("eps",
                   {"MTTS score", "MTTD score", "MTTS/CELF", "MTTD/CELF"});
    for (const double eps : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      const CellStats mtts =
          RunWorkload(*engine, workload, Algorithm::kMtts, 10, eps);
      const CellStats mttd =
          RunWorkload(*engine, workload, Algorithm::kMttd, 10, eps);
      char axis[16];
      std::snprintf(axis, sizeof(axis), "%.1f", eps);
      PrintRow(axis,
               {mtts.mean_score, mttd.mean_score,
                celf.mean_score > 0 ? mtts.mean_score / celf.mean_score : 0,
                celf.mean_score > 0 ? mttd.mean_score / celf.mean_score : 0},
               4);
    }
  }
  return 0;
}
