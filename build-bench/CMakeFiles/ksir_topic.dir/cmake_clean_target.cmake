file(REMOVE_RECURSE
  "libksir_topic.a"
)
