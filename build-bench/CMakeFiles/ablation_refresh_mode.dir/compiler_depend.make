# Empty compiler generated dependencies file for ablation_refresh_mode.
# This may be replaced when dependencies are built.
