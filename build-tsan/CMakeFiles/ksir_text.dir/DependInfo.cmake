
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/corpus.cpp" "CMakeFiles/ksir_text.dir/src/text/corpus.cpp.o" "gcc" "CMakeFiles/ksir_text.dir/src/text/corpus.cpp.o.d"
  "/root/repo/src/text/document.cpp" "CMakeFiles/ksir_text.dir/src/text/document.cpp.o" "gcc" "CMakeFiles/ksir_text.dir/src/text/document.cpp.o.d"
  "/root/repo/src/text/stopwords.cpp" "CMakeFiles/ksir_text.dir/src/text/stopwords.cpp.o" "gcc" "CMakeFiles/ksir_text.dir/src/text/stopwords.cpp.o.d"
  "/root/repo/src/text/tokenizer.cpp" "CMakeFiles/ksir_text.dir/src/text/tokenizer.cpp.o" "gcc" "CMakeFiles/ksir_text.dir/src/text/tokenizer.cpp.o.d"
  "/root/repo/src/text/vocabulary.cpp" "CMakeFiles/ksir_text.dir/src/text/vocabulary.cpp.o" "gcc" "CMakeFiles/ksir_text.dir/src/text/vocabulary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/CMakeFiles/ksir_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
