#include "core/index_maintainer.h"

#include "common/check.h"

namespace ksir {

IndexMaintainer::IndexMaintainer(const ScoringContext* ctx,
                                 RankedListIndex* index, RefreshMode mode)
    : ctx_(ctx), index_(index), mode_(mode) {
  KSIR_CHECK(ctx != nullptr);
  KSIR_CHECK(index != nullptr);
}

void IndexMaintainer::Apply(const ActiveWindow::UpdateResult& update) {
  const ActiveWindow& window = ctx_->window();
  // Expiry first: expired ids are no longer in the window store.
  for (ElementId id : update.expired) {
    index_->Erase(id);
  }
  for (ElementId id : update.inserted) {
    const SocialElement* e = window.Find(id);
    KSIR_CHECK(e != nullptr);
    index_->Insert(id, ctx_->AllTopicScores(*e), window.LastReferredAt(id));
  }
  // Resurrected elements were erased from the lists when they deactivated;
  // they re-enter with freshly computed scores.
  for (ElementId id : update.resurrected) {
    const SocialElement* e = window.Find(id);
    KSIR_CHECK(e != nullptr);
    index_->Insert(id, ctx_->AllTopicScores(*e), window.LastReferredAt(id));
  }
  for (ElementId id : update.gained_referrer) {
    Reposition(id);
  }
  if (mode_ == RefreshMode::kExact) {
    for (ElementId id : update.lost_referrer) {
      Reposition(id);
    }
  }
}

void IndexMaintainer::Reposition(ElementId id) {
  const SocialElement* e = ctx_->window().Find(id);
  KSIR_CHECK(e != nullptr);
  index_->Update(id, ctx_->AllTopicScores(*e),
                 ctx_->window().LastReferredAt(id));
}

}  // namespace ksir
