file(REMOVE_RECURSE
  "CMakeFiles/ksir_window.dir/src/window/active_window.cpp.o"
  "CMakeFiles/ksir_window.dir/src/window/active_window.cpp.o.d"
  "libksir_window.a"
  "libksir_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksir_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
