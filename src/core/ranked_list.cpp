#include "core/ranked_list.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ksir {

std::size_t RankedList::FindChunk(const Key& key) const {
  // First chunk whose last (greatest in comparator order, i.e. lowest-score)
  // key is not ordered before `key`; keys beyond every chunk map to the
  // final chunk.
  const auto it = std::partition_point(
      chunk_last_.begin(), chunk_last_.end(),
      [&key](const Key& last) { return last < key; });
  const std::size_t idx = static_cast<std::size_t>(it - chunk_last_.begin());
  return idx == chunks_.size() ? idx - 1 : idx;
}

void RankedList::InsertKey(const Key& key) {
  if (chunks_.empty()) {
    chunks_.push_back(std::make_unique<Chunk>());
    chunks_[0]->keys[0] = key;
    chunks_[0]->size = 1;
    chunk_last_.push_back(key);
    ++size_;
    return;
  }
  std::size_t idx = FindChunk(key);
  Chunk* chunk = chunks_[idx].get();
  if (chunk->size == kChunkCapacity) {
    // Split into two halves, then re-aim at the half that owns `key`.
    auto upper = std::make_unique<Chunk>();
    constexpr std::uint32_t kHalf = kChunkCapacity / 2;
    std::copy(chunk->keys.begin() + kHalf, chunk->keys.end(),
              upper->keys.begin());
    upper->size = kChunkCapacity - kHalf;
    chunk->size = kHalf;
    const auto offset = static_cast<std::ptrdiff_t>(idx);
    chunks_.insert(chunks_.begin() + offset + 1, std::move(upper));
    chunk_last_.insert(chunk_last_.begin() + offset,
                       chunks_[idx]->keys[kHalf - 1]);
    if (chunks_[idx + 1]->keys[0] < key) {
      ++idx;
    }
    chunk = chunks_[idx].get();
  }
  Key* const first = chunk->keys.data();
  Key* const last = first + chunk->size;
  Key* const pos = std::lower_bound(first, last, key);
  std::copy_backward(pos, last, last + 1);
  *pos = key;
  ++chunk->size;
  chunk_last_[idx] = chunk->keys[chunk->size - 1];
  ++size_;
}

void RankedList::EraseKey(const Key& key) {
  KSIR_CHECK(!chunks_.empty());
  const std::size_t idx = FindChunk(key);
  Chunk* chunk = chunks_[idx].get();
  Key* const first = chunk->keys.data();
  Key* const last = first + chunk->size;
  Key* const pos = std::lower_bound(first, last, key);
  KSIR_CHECK(pos != last && *pos == key);
  std::copy(pos + 1, last, pos);
  --chunk->size;
  --size_;
  if (chunk->size == 0) {
    const auto offset = static_cast<std::ptrdiff_t>(idx);
    chunks_.erase(chunks_.begin() + offset);
    chunk_last_.erase(chunk_last_.begin() + offset);
  } else {
    chunk_last_[idx] = chunk->keys[chunk->size - 1];
    if (chunk->size < kChunkCapacity / 4) MaybeMerge(idx);
  }
}

void RankedList::MoveKey(const Key& old_key, const Key& new_key) {
  const std::size_t old_idx = FindChunk(old_key);
  Chunk* chunk = chunks_[old_idx].get();
  Key* const first = chunk->keys.data();
  Key* const last = first + chunk->size;
  Key* const old_pos = std::lower_bound(first, last, old_key);
  KSIR_CHECK(old_pos != last && *old_pos == old_key);
  // The new key stays in this chunk iff it sorts at or before the chunk's
  // last key and at or after the previous chunk's last key (with the old
  // key still counted as present, which only widens the chunk's span).
  const bool within =
      !(chunk->keys[chunk->size - 1] < new_key) &&
      (old_idx == 0 || chunk_last_[old_idx - 1] < new_key);
  if (!within) {
    EraseKey(old_key);
    InsertKey(new_key);
    return;
  }
  Key* const new_pos = std::lower_bound(first, last, new_key);
  if (new_pos == old_pos || new_pos == old_pos + 1) {
    *old_pos = new_key;  // neighbors unchanged: overwrite in place
  } else if (new_pos < old_pos) {
    std::copy_backward(new_pos, old_pos, old_pos + 1);
    *new_pos = new_key;
  } else {
    std::copy(old_pos + 1, new_pos, old_pos);
    *(new_pos - 1) = new_key;
  }
  chunk_last_[old_idx] = chunk->keys[chunk->size - 1];
}

void RankedList::MaybeMerge(std::size_t idx) {
  // Fold the sparse chunk into a neighbor when the pair stays under
  // capacity, bounding the chunk count under sustained churn.
  const auto merge_into = [this](std::size_t dst, std::size_t src) {
    Chunk* a = chunks_[dst].get();
    Chunk* b = chunks_[src].get();
    std::copy(b->keys.begin(), b->keys.begin() + b->size,
              a->keys.begin() + a->size);
    a->size += b->size;
    chunk_last_[dst] = a->keys[a->size - 1];
    const auto offset = static_cast<std::ptrdiff_t>(src);
    chunks_.erase(chunks_.begin() + offset);
    chunk_last_.erase(chunk_last_.begin() + offset);
  };
  const std::uint32_t self = chunks_[idx]->size;
  if (idx + 1 < chunks_.size() &&
      self + chunks_[idx + 1]->size <= kChunkCapacity) {
    merge_into(idx, idx + 1);
  } else if (idx > 0 && chunks_[idx - 1]->size + self <= kChunkCapacity) {
    merge_into(idx - 1, idx);
  }
}

void RankedList::Insert(ElementId id, double score, Timestamp te) {
  // A NaN key would violate Key's strict weak ordering and silently corrupt
  // chunk order; reject it at the boundary instead.
  KSIR_CHECK(!std::isnan(score));
  const auto [it, inserted] = by_id_.emplace(id, std::make_pair(score, te));
  KSIR_CHECK(inserted);
  InsertKey(Key{score, id});
}

void RankedList::Update(ElementId id, double score, Timestamp te) {
  KSIR_CHECK(!std::isnan(score));
  const auto it = by_id_.find(id);
  KSIR_CHECK(it != by_id_.end());
  const double old_score = it->second.first;
  it->second = {score, te};
  if (old_score == score) return;  // key unchanged; only t_e moved
  MoveKey(Key{old_score, id}, Key{score, id});
}

void RankedList::ApplyBatch(const Tuple* updates, std::size_t n,
                            BatchScratch* scratch) {
  auto& removals = scratch->removals;
  auto& insertions = scratch->insertions;
  auto& deferred_removals = scratch->deferred_removals;
  auto& deferred_insertions = scratch->deferred_insertions;
  removals.clear();
  insertions.clear();
  deferred_removals.clear();
  deferred_insertions.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const Tuple& update = updates[i];
    KSIR_CHECK(!std::isnan(update.score));
    const auto it = by_id_.find(update.id);
    KSIR_CHECK(it != by_id_.end());
    const double old_score = it->second.first;
    it->second = {update.score, update.te};
    if (old_score == update.score) continue;  // key unchanged; only t_e moved
    removals.push_back(Key{old_score, update.id});
    insertions.push_back(Key{update.score, update.id});
  }
  if (removals.empty()) return;
  std::sort(removals.begin(), removals.end());
  std::sort(insertions.begin(), insertions.end());

  // One sweep over the chunk directory: the sorted removal/insertion runs
  // are partitioned by the (original) chunk boundaries and each touched
  // chunk is rewritten by ONE in-place three-way merge — no allocation, no
  // directory search per key, untouched chunks never inspected. Keys are
  // unique across all three streams (ids are unique per list; a
  // repositioned id's old and new key differ), so the merge needs no
  // tie-breaking. A chunk the batch would grow past capacity defers its
  // ops to the per-element path below (rare: needs >capacity keys landing
  // in one chunk's span).
  std::size_t ri = 0;
  std::size_t ii = 0;
  bool any_small = false;
  for (std::size_t c = 0;
       c < chunks_.size() && (ri < removals.size() || ii < insertions.size());
       ++c) {
    Chunk* chunk = chunks_[c].get();
    const Key last = chunk_last_[c];
    const bool last_chunk = c + 1 == chunks_.size();
    std::size_t r_end = ri;
    std::size_t i_end = ii;
    if (last_chunk) {
      r_end = removals.size();  // removals are always present keys
      i_end = insertions.size();
    } else {
      while (r_end < removals.size() && !(last < removals[r_end])) ++r_end;
      while (i_end < insertions.size() && !(last < insertions[i_end])) {
        ++i_end;
      }
    }
    if (r_end == ri && i_end == ii) continue;
    const std::size_t new_size = chunk->size - (r_end - ri) + (i_end - ii);
    if (new_size > kChunkCapacity) {
      deferred_removals.insert(deferred_removals.end(),
                               removals.begin() + static_cast<std::ptrdiff_t>(ri),
                               removals.begin() + static_cast<std::ptrdiff_t>(r_end));
      deferred_insertions.insert(
          deferred_insertions.end(),
          insertions.begin() + static_cast<std::ptrdiff_t>(ii),
          insertions.begin() + static_cast<std::ptrdiff_t>(i_end));
      ri = r_end;
      ii = i_end;
      continue;
    }
    // Merge only the affected span [s, e): from the first event key to one
    // past the last. Repositions are typically small nudges clustered near
    // the top of the list, so the span is a fraction of the chunk.
    Key* const keys = chunk->keys.data();
    const std::uint32_t old_size = chunk->size;
    const Key lo = ri < r_end && (ii == i_end || removals[ri] < insertions[ii])
                       ? removals[ri]
                       : insertions[ii];
    const Key hi =
        r_end > ri &&
                (i_end == ii || insertions[i_end - 1] < removals[r_end - 1])
            ? removals[r_end - 1]
            : insertions[i_end - 1];
    const auto s = static_cast<std::uint32_t>(
        std::lower_bound(keys, keys + old_size, lo) - keys);
    const auto e = static_cast<std::uint32_t>(
        std::upper_bound(keys, keys + old_size, hi) - keys);
    const std::uint32_t old_span = e - s;
    const auto new_span = static_cast<std::uint32_t>(
        old_span - (r_end - ri) + (i_end - ii));
    std::array<Key, kChunkCapacity> tmp;
    std::copy(keys + s, keys + e, tmp.begin());
    if (new_span != old_span) {  // shift the untouched suffix once
      if (new_span < old_span) {
        std::copy(keys + e, keys + old_size, keys + s + new_span);
      } else {
        std::copy_backward(keys + e, keys + old_size,
                           keys + old_size + (new_span - old_span));
      }
    }
    std::uint32_t src = 0;
    std::uint32_t dst = s;
    const std::uint32_t dst_end = s + new_span;
    while (src < old_span || ii < i_end) {
      if (src < old_span && ri < r_end && removals[ri] == tmp[src]) {
        ++ri;
        ++src;
        continue;
      }
      if (ii < i_end && (src >= old_span || insertions[ii] < tmp[src])) {
        keys[dst++] = insertions[ii++];
      } else {
        keys[dst++] = tmp[src++];
      }
    }
    KSIR_CHECK(ri == r_end && dst == dst_end);
    chunk->size = static_cast<std::uint32_t>(new_size);
    if (new_size > 0) chunk_last_[c] = keys[new_size - 1];
    if (new_size < kChunkCapacity / 4) any_small = true;
  }
  KSIR_CHECK(ri == removals.size() && ii == insertions.size());

  if (any_small) {
    // Compaction pass mirroring the erase-path merge policy: drop emptied
    // chunks and fold runs of sparse neighbors together, bounding the
    // chunk count under sustained batched churn.
    std::size_t write = 0;
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
      if (chunks_[c]->size == 0) continue;
      if (write > 0 &&
          chunks_[write - 1]->size < kChunkCapacity / 4 &&
          chunks_[write - 1]->size + chunks_[c]->size <= kChunkCapacity) {
        Chunk* dst = chunks_[write - 1].get();
        Chunk* src = chunks_[c].get();
        std::copy(src->keys.begin(), src->keys.begin() + src->size,
                  dst->keys.begin() + dst->size);
        dst->size += src->size;
        chunk_last_[write - 1] = dst->keys[dst->size - 1];
        continue;
      }
      if (write != c) {
        chunks_[write] = std::move(chunks_[c]);
        chunk_last_[write] = chunk_last_[c];
      }
      ++write;
    }
    chunks_.resize(write);
    chunk_last_.resize(write);
  }
  // A reposition batch never changes the element count, but the deferred
  // per-element ops below bump size_ (+1 per InsertKey, -1 per EraseKey)
  // while their in-place counterparts did not; pre-compensate so the two
  // halves cancel.
  size_ += deferred_removals.size();
  size_ -= deferred_insertions.size();
  for (const Key& key : deferred_removals) EraseKey(key);
  for (const Key& key : deferred_insertions) InsertKey(key);
}

void RankedList::Erase(ElementId id) {
  const auto it = by_id_.find(id);
  KSIR_CHECK(it != by_id_.end());
  EraseKey(Key{it->second.first, id});
  by_id_.erase(it);
}

RankedList::Tuple RankedList::Get(ElementId id) const {
  const auto it = by_id_.find(id);
  KSIR_CHECK(it != by_id_.end());
  return Tuple{id, it->second.first, it->second.second};
}

Timestamp RankedList::TimeOf(ElementId id) const {
  const auto it = by_id_.find(id);
  KSIR_CHECK(it != by_id_.end());
  return it->second.second;
}

RankedListIndex::RankedListIndex(std::size_t num_topics)
    : lists_(num_topics) {
  KSIR_CHECK(num_topics > 0);
}

void RankedListIndex::Insert(
    ElementId id, const std::vector<std::pair<TopicId, double>>& topic_scores,
    Timestamp te) {
  const auto [it, inserted] = membership_.try_emplace(id);
  KSIR_CHECK(inserted);
  auto& topics = it->second;
  topics.reserve(topic_scores.size());
  for (const auto& [topic, score] : topic_scores) {
    KSIR_CHECK(topic >= 0 && static_cast<std::size_t>(topic) < lists_.size());
    lists_[static_cast<std::size_t>(topic)].Insert(id, score, te);
    topics.push_back(topic);
    ++total_entries_;
  }
}

void RankedListIndex::Update(
    ElementId id, const std::vector<std::pair<TopicId, double>>& topic_scores,
    Timestamp te) {
  const auto it = membership_.find(id);
  KSIR_CHECK(it != membership_.end());
  KSIR_CHECK(it->second.size() == topic_scores.size());
  for (const auto& [topic, score] : topic_scores) {
    lists_[static_cast<std::size_t>(topic)].Update(id, score, te);
  }
}

void RankedListIndex::UpdateTrusted(
    ElementId id, const std::vector<std::pair<TopicId, double>>& topic_scores,
    Timestamp te) {
  KSIR_DCHECK(membership_.contains(id));
  KSIR_DCHECK(membership_.find(id)->second.size() == topic_scores.size());
  for (const auto& [topic, score] : topic_scores) {
    lists_[static_cast<std::size_t>(topic)].Update(id, score, te);
  }
}

void RankedListIndex::BatchReposition(TopicId topic,
                                      const RankedList::Tuple* updates,
                                      std::size_t n, bool merge,
                                      RankedList::BatchScratch* scratch) {
  KSIR_CHECK(topic >= 0 && static_cast<std::size_t>(topic) < lists_.size());
  RankedList& list = lists_[static_cast<std::size_t>(topic)];
#ifndef NDEBUG
  for (std::size_t i = 0; i < n; ++i) {
    KSIR_DCHECK(membership_.contains(updates[i].id));
  }
#endif
  if (merge) {
    list.ApplyBatch(updates, n, scratch);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      list.Update(updates[i].id, updates[i].score, updates[i].te);
    }
  }
}

void RankedListIndex::Erase(ElementId id) {
  const auto it = membership_.find(id);
  KSIR_CHECK(it != membership_.end());
  for (TopicId topic : it->second) {
    lists_[static_cast<std::size_t>(topic)].Erase(id);
    --total_entries_;
  }
  membership_.erase(it);
}

const RankedList& RankedListIndex::list(TopicId topic) const {
  KSIR_CHECK(topic >= 0 && static_cast<std::size_t>(topic) < lists_.size());
  return lists_[static_cast<std::size_t>(topic)];
}

}  // namespace ksir
