// Shared golden fixture: the worked example of the paper (Table 1,
// Examples 3.1-4.3, Figures 5-6). Sixteen words, two topics, eight tweets,
// lambda = 0.5, eta = 2, window length T = 4, bucket length L = 1.
#ifndef KSIR_TESTS_PAPER_FIXTURE_H_
#define KSIR_TESTS_PAPER_FIXTURE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/sparse_vector.h"
#include "core/engine.h"
#include "stream/element.h"
#include "text/vocabulary.h"
#include "topic/topic_model.h"

namespace ksir::testing {

/// Word ids follow Table 1: w1 -> id 0, ..., w16 -> id 15.
inline const std::vector<std::string>& PaperWords() {
  static const std::vector<std::string>* const kWords =
      new std::vector<std::string>{
          "asroma", "assist", "cavs",   "champion",    "defeat",   "final",
          "lebron", "lfc",    "manutd", "nbaplayoffs", "pl",       "point",
          "raptors", "realmadrid", "schedule", "ucl"};
  return *kWords;
}

/// Topic-word matrix of Tables 1(b) and 1(c); rows sum to 1.
inline TopicModel PaperTopicModel() {
  const std::vector<std::vector<double>> matrix = {
      // theta_1
      {0.00, 0.06, 0.09, 0.10, 0.05, 0.11, 0.12, 0.00, 0.00, 0.11, 0.00,
       0.15, 0.08, 0.00, 0.13, 0.00},
      // theta_2
      {0.03, 0.04, 0.00, 0.09, 0.04, 0.12, 0.00, 0.06, 0.07, 0.00, 0.11,
       0.14, 0.00, 0.07, 0.12, 0.11},
  };
  auto model = TopicModel::FromMatrix(matrix);
  return std::move(model).value();
}

/// The eight elements of Table 1(a); ids are 1-based to match the paper
/// (element e1 has id 1).
inline std::vector<SocialElement> PaperElements() {
  struct Spec {
    Timestamp ts;
    std::vector<WordId> words;  // 0-based ids
    double p1;
    double p2;
    std::vector<ElementId> refs;
  };
  const std::vector<Spec> specs = {
      {1, {0, 5, 7, 13, 15}, 0.20, 0.80, {}},        // e1
      {2, {3, 8, 10}, 0.26, 0.74, {}},               // e2
      {3, {2, 4, 9, 12}, 0.89, 0.11, {}},            // e3
      {4, {6, 9}, 1.00, 0.00, {3}},                  // e4 -> e3
      {5, {5, 7, 15}, 0.29, 0.71, {1}},              // e5 -> e1
      {6, {1, 6, 9, 11}, 0.70, 0.30, {3}},           // e6 -> e3
      {7, {3, 10}, 0.33, 0.67, {2}},                 // e7 -> e2
      {8, {9, 10, 14}, 0.51, 0.49, {2, 3, 6}},       // e8 -> e2, e3, e6
  };
  std::vector<SocialElement> elements;
  ElementId id = 1;
  for (const Spec& spec : specs) {
    SocialElement e;
    e.id = id++;
    e.ts = spec.ts;
    e.doc = Document::FromWordIds(spec.words);
    e.refs = spec.refs;
    std::vector<SparseVector::Entry> entries;
    if (spec.p1 > 0.0) entries.emplace_back(0, spec.p1);
    if (spec.p2 > 0.0) entries.emplace_back(1, spec.p2);
    e.topics = SparseVector::FromEntries(std::move(entries));
    elements.push_back(std::move(e));
  }
  return elements;
}

/// Engine config of the worked example: lambda = 0.5, eta = 2, T = 4, L = 1.
inline EngineConfig PaperEngineConfig(
    RefreshMode mode = RefreshMode::kExact) {
  EngineConfig config;
  config.scoring.lambda = 0.5;
  config.scoring.eta = 2.0;
  config.window_length = 4;
  config.bucket_length = 1;
  config.refresh_mode = mode;
  return config;
}

/// Engine owning its model, fed with the eight elements up to t = 8.
struct PaperEngine {
  std::unique_ptr<TopicModel> model;
  std::unique_ptr<KsirEngine> engine;
};

inline PaperEngine MakePaperEngineAtT8(
    RefreshMode mode = RefreshMode::kExact) {
  PaperEngine out;
  out.model = std::make_unique<TopicModel>(PaperTopicModel());
  out.engine =
      std::make_unique<KsirEngine>(PaperEngineConfig(mode), out.model.get());
  auto status = out.engine->Append(PaperElements());
  KSIR_CHECK(status.ok());
  return out;
}

/// x = (0.5, 0.5) of Example 3.4 / 4.1 / 4.3.
inline SparseVector BalancedQueryVector() {
  return SparseVector::FromEntries({{0, 0.5}, {1, 0.5}});
}

/// x = (0.1, 0.9) of Example 3.4.
inline SparseVector SkewedQueryVector() {
  return SparseVector::FromEntries({{0, 0.1}, {1, 0.9}});
}

}  // namespace ksir::testing

#endif  // KSIR_TESTS_PAPER_FIXTURE_H_
