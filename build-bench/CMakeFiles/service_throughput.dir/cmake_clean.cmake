file(REMOVE_RECURSE
  "CMakeFiles/service_throughput.dir/bench/service_throughput.cpp.o"
  "CMakeFiles/service_throughput.dir/bench/service_throughput.cpp.o.d"
  "service_throughput"
  "service_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
