// Line-oriented TSV serialization of social streams so that users can feed
// real exported data (e.g., tweet dumps) into the engine.
//
// Format (one element per line, '\t'-separated fields):
//   id <TAB> ts <TAB> w:c[,w:c...] <TAB> ref[,ref...] <TAB> t:p[,t:p...]
// Empty ref / topic fields are written as "-". The raw text is not
// serialized (it is display-only).
#ifndef KSIR_STREAM_STREAM_IO_H_
#define KSIR_STREAM_STREAM_IO_H_

#include <iosfwd>
#include <vector>

#include "common/status.h"
#include "stream/element.h"

namespace ksir {

/// Writes `elements` to `out`, one line each.
Status WriteStreamTsv(const std::vector<SocialElement>& elements,
                      std::ostream* out);

/// Reads a stream previously written by WriteStreamTsv. Validates that ids
/// are unique and timestamps non-decreasing.
StatusOr<std::vector<SocialElement>> ReadStreamTsv(std::istream* in);

}  // namespace ksir

#endif  // KSIR_STREAM_STREAM_IO_H_
