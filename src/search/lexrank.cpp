#include "search/lexrank.h"

#include <cstddef>

#include "common/check.h"

namespace ksir {

std::vector<double> LexRank(const std::vector<std::vector<double>>& similarity,
                            LexRankOptions options) {
  const std::size_t n = similarity.size();
  if (n == 0) return {};
  for (const auto& row : similarity) KSIR_CHECK(row.size() == n);

  // Row-normalized adjacency after thresholding.
  std::vector<std::vector<double>> transition(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (similarity[i][j] >= options.threshold) {
        transition[i][j] = similarity[i][j];
        row_sum += similarity[i][j];
      }
    }
    if (row_sum > 0.0) {
      for (std::size_t j = 0; j < n; ++j) transition[i][j] /= row_sum;
    }
  }

  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, uniform);
  std::vector<double> next(n, 0.0);
  for (std::int32_t iter = 0; iter < options.iterations; ++iter) {
    for (std::size_t j = 0; j < n; ++j) {
      next[j] = (1.0 - options.damping) * uniform;
    }
    double dangling = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      bool has_out = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (transition[i][j] > 0.0) {
          next[j] += options.damping * rank[i] * transition[i][j];
          has_out = true;
        }
      }
      if (!has_out) dangling += rank[i];
    }
    // Dangling mass is redistributed uniformly (standard PageRank fix).
    for (std::size_t j = 0; j < n; ++j) {
      next[j] += options.damping * dangling * uniform;
    }
    rank.swap(next);
  }
  return rank;
}

}  // namespace ksir
