#include "telemetry/exposition.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace ksir {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) out->append(buffer, std::min<std::size_t>(n, sizeof(buffer) - 1));
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string PrometheusText(const MetricRegistry& registry) {
  const RegistrySnapshot snapshot = registry.Snapshot();
  std::string out;
  out.reserve(snapshot.metrics.size() * 256);
  for (const MetricSnapshot& metric : snapshot.metrics) {
    if (!metric.help.empty()) {
      Appendf(&out, "# HELP %s %s\n", metric.name.c_str(),
              metric.help.c_str());
    }
    Appendf(&out, "# TYPE %s %s\n", metric.name.c_str(),
            TypeName(metric.type));
    if (metric.type != MetricType::kHistogram) {
      Appendf(&out, "%s %" PRId64 "\n", metric.name.c_str(), metric.value);
      continue;
    }
    const HistogramSnapshot& hist = metric.histogram;
    std::int64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.counts.size(); ++b) {
      cumulative += hist.counts[b];
      if (b < kNumLatencyBounds) {
        // %.9g keeps every bound exact (they have up to 7 significant
        // digits); %g would round 8.388608 to 8.38861 and aliased le
        // labels break downstream histogram_quantile math.
        Appendf(&out, "%s_bucket{le=\"%.9g\"} %" PRId64 "\n",
                metric.name.c_str(), kLatencyBoundsSeconds[b], cumulative);
      } else {
        Appendf(&out, "%s_bucket{le=\"+Inf\"} %" PRId64 "\n",
                metric.name.c_str(), cumulative);
      }
    }
    Appendf(&out, "%s_sum %.9g\n", metric.name.c_str(), hist.sum);
    Appendf(&out, "%s_count %" PRId64 "\n", metric.name.c_str(), hist.count);
  }
  return out;
}

std::string MetricsJson(const MetricRegistry& registry) {
  const RegistrySnapshot snapshot = registry.Snapshot();
  std::string out = "{\n";
  for (const MetricType type :
       {MetricType::kCounter, MetricType::kGauge, MetricType::kHistogram}) {
    const char* section = type == MetricType::kCounter    ? "counters"
                          : type == MetricType::kGauge    ? "gauges"
                                                          : "histograms";
    Appendf(&out, "  \"%s\": {", section);
    bool first = true;
    for (const MetricSnapshot& metric : snapshot.metrics) {
      if (metric.type != type) continue;
      Appendf(&out, "%s\n    \"%s\": ", first ? "" : ",",
              metric.name.c_str());
      first = false;
      if (type != MetricType::kHistogram) {
        Appendf(&out, "%" PRId64, metric.value);
        continue;
      }
      const HistogramSnapshot& hist = metric.histogram;
      Appendf(&out,
              "{\"count\": %" PRId64
              ", \"sum\": %.9g, \"p50\": %.9g, \"p95\": %.9g, "
              "\"p99\": %.9g, \"buckets\": [",
              hist.count, hist.sum, hist.Percentile(0.50),
              hist.Percentile(0.95), hist.Percentile(0.99));
      std::int64_t cumulative = 0;
      for (std::size_t b = 0; b < hist.counts.size(); ++b) {
        cumulative += hist.counts[b];
        const double le = b < kNumLatencyBounds
                              ? kLatencyBoundsSeconds[b]
                              : -1.0;  // -1 encodes +Inf
        Appendf(&out, "%s[%.9g, %" PRId64 "]", b == 0 ? "" : ", ", le,
                cumulative);
      }
      out += "]}";
    }
    Appendf(&out, "\n  }%s\n",
            type == MetricType::kHistogram ? "" : ",");
  }
  out += "}\n";
  return out;
}

std::string ChromeTraceJson(const Tracer& tracer) {
  const std::vector<TraceEvent> events = tracer.Events();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    Appendf(&out,
            "%s\n  {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, "
            "\"dur\": %.3f, \"pid\": 1, \"tid\": %u}",
            i == 0 ? "" : ",", e.name != nullptr ? e.name : "", e.ts_us,
            e.dur_us, e.tid);
  }
  out += "\n]}\n";
  return out;
}

}  // namespace ksir
