// Figure 12: query time with varying number of topics z (50 .. 250).
//
// Expected shape (paper): MTTS/MTTD get faster as z grows (per-topic lists
// get shorter and sparser), with a possible uptick at large z when query
// vectors gain non-zero entries; batch baselines change little.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ksir;
  using namespace ksir::bench;
  PrintBanner("Figure 12 - query time vs number of topics z",
              "EDBT'19 Fig. 12(a)-(c)");

  const std::size_t num_queries = NumQueries(GetScale());
  for (int which = 0; which < 3; ++which) {
    std::printf("\n[%s]\n", MakeDataset(which, 50).name.c_str());
    PrintHeaderRow("z", {"CELF (ms)", "Sieve (ms)", "Top-k (ms)", "MTTS (ms)",
                         "MTTD (ms)"});
    for (const int z : {50, 100, 150, 200, 250}) {
      const Dataset dataset = MakeDataset(which, z);
      const auto engine = BuildAndFeed(dataset, MakeConfig(dataset));
      const auto workload = MakeWorkload(dataset, num_queries);
      const CellStats celf =
          RunWorkload(*engine, workload, Algorithm::kCelf, 10, 0.1);
      const CellStats sieve =
          RunWorkload(*engine, workload, Algorithm::kSieveStreaming, 10, 0.1);
      const CellStats topk = RunWorkload(
          *engine, workload, Algorithm::kTopkRepresentative, 10, 0.1);
      const CellStats mtts =
          RunWorkload(*engine, workload, Algorithm::kMtts, 10, 0.1);
      const CellStats mttd =
          RunWorkload(*engine, workload, Algorithm::kMttd, 10, 0.1);
      PrintRow(std::to_string(z),
               {celf.mean_time_ms, sieve.mean_time_ms, topk.mean_time_ms,
                mtts.mean_time_ms, mttd.mean_time_ms});
    }
  }
  return 0;
}
