// Ablation (DESIGN.md §5): RefreshMode::kExact (reposition elements whose
// referrers expired; exact list scores) vs RefreshMode::kPaper (literal
// Algorithm 1; stale-high scores that stay sound upper bounds).
//
// Measures both sides of the trade: maintenance cost per element (kPaper
// saves repositions) and query cost/quality (kPaper's looser bounds retrieve
// and evaluate more elements; result quality is unaffected because the
// candidates always evaluate the true f).
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ksir;
  using namespace ksir::bench;
  PrintBanner("Ablation - ranked-list refresh on referrer expiry",
              "DESIGN.md §5 (not in the paper)");

  const std::size_t num_queries = NumQueries(GetScale());
  for (int which = 0; which < 3; ++which) {
    const Dataset dataset = MakeDataset(which);
    const auto workload = MakeWorkload(dataset, num_queries);
    std::printf("\n[%s]\n", dataset.name.c_str());
    PrintHeaderRow("mode", {"update ms/el", "MTTS ms", "MTTS eval%",
                            "MTTD ms", "MTTD eval%", "MTTD score"});
    for (const RefreshMode mode : {RefreshMode::kExact, RefreshMode::kPaper}) {
      const auto engine =
          BuildAndFeed(dataset, MakeConfig(dataset, 24 * 3600, mode));
      const auto stats = engine->maintenance_stats();
      const CellStats mtts =
          RunWorkload(*engine, workload, Algorithm::kMtts, 10, 0.1);
      const CellStats mttd =
          RunWorkload(*engine, workload, Algorithm::kMttd, 10, 0.1);
      PrintRow(mode == RefreshMode::kExact ? "exact" : "paper",
               {stats.total_update_ms /
                    static_cast<double>(stats.elements_ingested),
                mtts.mean_time_ms, 100.0 * mtts.mean_eval_ratio,
                mttd.mean_time_ms, 100.0 * mttd.mean_eval_ratio,
                mttd.mean_score},
               4);
    }
  }
  return 0;
}
