// Wall-clock stopwatch used by the experiment harness.
#ifndef KSIR_COMMON_TIMER_H_
#define KSIR_COMMON_TIMER_H_

#include <chrono>

namespace ksir {

/// Monotonic stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction / last Restart().
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ksir

#endif  // KSIR_COMMON_TIMER_H_
