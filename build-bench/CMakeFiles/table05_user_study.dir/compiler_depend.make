# Empty compiler generated dependencies file for table05_user_study.
# This may be replaced when dependencies are built.
