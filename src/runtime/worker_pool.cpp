#include "runtime/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace ksir {

WorkerPool::WorkerPool(std::size_t num_threads, Telemetry* telemetry)
    : owned_telemetry_(telemetry == nullptr ? std::make_unique<Telemetry>()
                                            : nullptr),
      telemetry_(telemetry != nullptr ? telemetry : owned_telemetry_.get()) {
  MetricRegistry& reg = telemetry_->registry();
  queue_depth_gauge_ = reg.GetGauge("ksir_pool_queue_depth",
                                    "Tasks waiting in the pool queue");
  tasks_counter_ =
      reg.GetCounter("ksir_pool_tasks_total", "Tasks submitted to the pool");
  task_hist_ = reg.GetHistogram("ksir_pool_task_seconds",
                                "Execution time of one pool task");
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

std::unique_ptr<WorkerPool> MakeWorkerPool(std::size_t requested,
                                           std::size_t fallback,
                                           Telemetry* telemetry) {
  return std::make_unique<WorkerPool>(requested > 0 ? requested : fallback,
                                      telemetry);
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    queue_.push_back(std::move(task));
    queue_depth_gauge_->Set(static_cast<std::int64_t>(queue_.size()));
  }
  tasks_counter_->Add(1);
  work_available_.notify_one();
}

void WorkerPool::WaitIdle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this]() { return queue_.empty() && in_flight_ == 0; });
  if (first_exception_) {
    std::rethrow_exception(std::exchange(first_exception_, nullptr));
  }
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)]() {
    // The pending count must come back down on every exit path, or Wait()
    // deadlocks forever; the group's first exception travels to its waiter.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    std::unique_lock lock(mutex_);
    if (error && !first_exception_) first_exception_ = std::move(error);
    if (--pending_ == 0) done_.notify_all();
  });
}

void TaskGroup::WaitDrained() {
  std::unique_lock lock(mutex_);
  done_.wait(lock, [this]() { return pending_ == 0; });
}

void TaskGroup::Wait() {
  WaitDrained();
  std::unique_lock lock(mutex_);
  if (first_exception_) {
    std::rethrow_exception(std::exchange(first_exception_, nullptr));
  }
}

TaskGroup::~TaskGroup() { WaitDrained(); }

void ParallelRun(WorkerPool* pool, std::size_t n,
                 std::function<void(std::size_t)> fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Shared by the caller and the helper tasks. Helpers may still be queued
  // when the call returns (every index already claimed elsewhere); they
  // find the cursor exhausted, touch nothing but the state block, and
  // return — hence the shared_ptr and the fn copy inside it.
  struct State {
    std::function<void(std::size_t)> fn;
    std::size_t n;
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable all_done;
    std::size_t finished = 0;
    std::exception_ptr first_exception;
  };
  auto state = std::make_shared<State>();
  state->fn = std::move(fn);
  state->n = n;
  const auto run_claimed = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->n) return;
      std::exception_ptr error;
      try {
        s->fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::unique_lock lock(s->mutex);
      if (error && !s->first_exception) s->first_exception = std::move(error);
      if (++s->finished == s->n) s->all_done.notify_all();
    }
  };
  const std::size_t helpers =
      std::min<std::size_t>(n - 1, pool->num_threads());
  for (std::size_t i = 0; i < helpers; ++i) {
    pool->Submit([state, run_claimed]() { run_claimed(state); });
  }
  run_claimed(state);
  std::unique_lock lock(state->mutex);
  state->all_done.wait(lock, [&]() { return state->finished == state->n; });
  if (state->first_exception) {
    std::rethrow_exception(
        std::exchange(state->first_exception, nullptr));
  }
}

void WorkerPool::WorkerLoop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_available_.wait(lock,
                         [this]() { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    queue_depth_gauge_->Set(static_cast<std::int64_t>(queue_.size()));
    ++in_flight_;
    lock.unlock();
    // in_flight_ must come back down whether the task returns or throws;
    // TaskGroup tasks never leak exceptions here (their wrapper captures
    // into the group), so first_exception_ is the direct-Submit channel.
    std::exception_ptr error;
    try {
      StageScope scope(telemetry_, task_hist_, "pool.task");
      task();
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !first_exception_) first_exception_ = std::move(error);
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

}  // namespace ksir
