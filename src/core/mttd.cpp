#include "core/mttd.h"

#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/flat_hash_map.h"
#include "common/timer.h"
#include "core/candidate_state.h"
#include "core/traversal.h"

namespace ksir {

namespace {

// Max-heap entry of the element buffer E' with a cached gain upper bound.
struct BufferEntry {
  double cached_gain;
  ElementId id;

  bool operator<(const BufferEntry& other) const {
    if (cached_gain != other.cached_gain) {
      return cached_gain < other.cached_gain;
    }
    return id > other.id;  // deterministic tie-break: smaller id on top
  }
};

}  // namespace

QueryResult RunMttd(const ScoringContext& ctx, const RankedListIndex& index,
                    const KsirQuery& query) {
  KSIR_CHECK(query.k >= 1);
  KSIR_CHECK(query.epsilon > 0.0 && query.epsilon < 1.0);
  WallTimer timer;
  QueryResult result;

  const double eps = query.epsilon;
  RankedListCursor cursor(&index, &query.x);
  CandidateState candidate(&ctx, &query.x);

  // Buffer E': lazy max-heap plus the authoritative cached gains. Stale heap
  // entries (cached value changed or element added to S) are skipped on pop.
  std::priority_queue<BufferEntry> heap;
  FlatHashMap<ElementId, double> cached;

  // Line 3: tau starts at the upper bound over all active elements.
  double tau = cursor.UpperBound();
  double tau_terminate = 0.0;
  std::size_t rounds = 0;

  auto finish = [&](QueryResult&& r) {
    r.element_ids = candidate.members();
    r.score = candidate.score();
    r.stats.num_retrieved = cursor.num_retrieved();
    r.stats.num_candidates_or_rounds = rounds;
    r.stats.elapsed_ms = timer.ElapsedMillis();
    return std::move(r);
  };

  if (tau <= 0.0) return finish(std::move(result));

  std::vector<ElementId> pulled;
  while (tau >= tau_terminate && tau > 1e-12) {
    ++rounds;
    // Lines 13-19: retrieve every element whose score may reach tau — one
    // bulk cursor pull per round instead of a pop-and-recheck loop.
    pulled.clear();
    cursor.PopWhileAtLeast(tau, &pulled);
    for (const ElementId id : pulled) {
      const SocialElement* e = ctx.window().Find(id);
      KSIR_CHECK(e != nullptr);
      const double score = ctx.ElementScore(*e, query.x);
      ++result.stats.num_evaluated;
      cached.emplace(id, score);
      heap.push(BufferEntry{score, id});
    }

    // Lines 6-10: add elements whose true marginal gain reaches tau.
    while (!heap.empty()) {
      const BufferEntry top = heap.top();
      const auto it = cached.find(top.id);
      if (it == cached.end() || it->second != top.cached_gain) {
        heap.pop();  // stale entry
        continue;
      }
      if (top.cached_gain < tau) break;  // no buffered element can qualify
      heap.pop();
      const SocialElement* e = ctx.window().Find(top.id);
      KSIR_CHECK(e != nullptr);
      const double gain = candidate.MarginalGain(*e);
      ++result.stats.num_gain_evaluations;
      if (gain >= tau) {
        candidate.Add(*e);
        cached.erase(it);
        if (candidate.size() == static_cast<std::size_t>(query.k)) {
          return finish(std::move(result));
        }
      } else {
        it->second = gain;
        heap.push(BufferEntry{gain, top.id});
      }
    }

    // Line 11: descend.
    tau_terminate = candidate.score() * eps / static_cast<double>(query.k);
    tau *= (1.0 - eps);
  }
  return finish(std::move(result));
}

}  // namespace ksir
