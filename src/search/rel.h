// Top-k relevance query in topic space (Zhang et al., TOIS 2017; the REL
// baseline of Section 5.1): the k active elements whose topic vectors have
// the highest cosine similarity to the query vector.
#ifndef KSIR_SEARCH_REL_H_
#define KSIR_SEARCH_REL_H_

#include <vector>

#include "common/sparse_vector.h"
#include "common/types.h"
#include "window/active_window.h"

namespace ksir {

/// Scans the active elements and returns the k most topically relevant.
std::vector<ElementId> RelevanceTopK(const ActiveWindow& window,
                                     const SparseVector& x, std::size_t k);

}  // namespace ksir

#endif  // KSIR_SEARCH_REL_H_
