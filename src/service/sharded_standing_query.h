// Standing k-SIR subscriptions over the sharded service: the same
// manager/diff semantics as the single-engine deployment, but every
// evaluation is routed through the service's planner (and hence the result
// cache — after a bucket, the subscriptions re-prime the cache for the
// ad-hoc queries that follow). The service constructs it with an evaluator
// bound to KsirService::Query.
#ifndef KSIR_SERVICE_SHARDED_STANDING_QUERY_H_
#define KSIR_SERVICE_SHARDED_STANDING_QUERY_H_

#include "core/standing_query.h"

namespace ksir {

using ShardedStandingQueryManager = StandingQueryManager;

}  // namespace ksir

#endif  // KSIR_SERVICE_SHARDED_STANDING_QUERY_H_
