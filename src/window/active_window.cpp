#include "window/active_window.h"

#include <algorithm>
#include <cstddef>
#include <string>

#include "common/check.h"
#include "common/flat_hash_map.h"
#include "common/kernels/kernels.h"

namespace ksir {

const ReferrerList ActiveWindow::kNoReferrers = {};

ActiveWindow::ActiveWindow(Timestamp window_length,
                           Timestamp archive_retention)
    : window_length_(window_length),
      archive_retention_(archive_retention > 0 ? archive_retention
                                               : window_length) {
  KSIR_CHECK(window_length > 0);
}

ActiveWindow::~ActiveWindow() {
  for (auto& [id, entry] : entries_) pool_.Destroy(entry);
}

void ActiveWindow::TouchStash(Entry* entry) {
  if (entry->stash_stamp != advance_epoch_) {
    entry->stash_stamp = advance_epoch_;
    entry->gained_stash.clear();
    entry->lost_stash.clear();
  }
}

ActiveWindow::Touched ActiveWindow::MakeTouched(ElementId id, Entry* entry,
                                                bool with_edges) const {
  Touched touched;
  touched.id = id;
  touched.element = &entry->element;
  touched.te = std::max(entry->element.ts, entry->last_ref_time);
  if (with_edges && entry->stash_stamp == advance_epoch_) {
    touched.gained_topics = entry->gained_stash.begin();
    touched.num_gained =
        static_cast<std::uint32_t>(entry->gained_stash.size());
    touched.lost_topics = entry->lost_stash.begin();
    touched.num_lost = static_cast<std::uint32_t>(entry->lost_stash.size());
  }
  touched.user_slot = &entry->user_data;
  return touched;
}

StatusOr<ActiveWindow::UpdateResult> ActiveWindow::Advance(
    Timestamp now, std::vector<SocialElement> bucket) {
  if (now < now_) {
    return Status::InvalidArgument("time must not move backwards");
  }
  UpdateResult result;
  ++advance_epoch_;
  // Deduplicated via the Entry stamps; may still contain ids that are later
  // reclassified (inserted / resurrected / expired), filtered at the end.
  // All scratch lives in members (capacity retained across buckets). The
  // scratch lists carry the entry pointer alongside the id so the report
  // can be assembled without re-probing the id table.
  std::vector<std::pair<ElementId, Entry*>>& inserted_list = inserted_scratch_;
  std::vector<std::pair<ElementId, Entry*>>& gained_list = gained_scratch_;
  std::vector<std::pair<ElementId, Entry*>>& lost_list = lost_scratch_;
  FlatHashSet<ElementId>& resurrected = resurrected_scratch_;
  inserted_list.clear();
  gained_list.clear();
  lost_list.clear();
  resurrected.clear();

  // --- Phase 1: insert the bucket and register its references. ---
  Timestamp prev_ts = now_;
  for (SocialElement& e : bucket) {
    if (e.ts <= now_) {
      return Status::InvalidArgument(
          "element ts " + std::to_string(e.ts) +
          " is not newer than the previous window time " +
          std::to_string(now_));
    }
    if (e.ts > now) {
      return Status::InvalidArgument("element ts beyond bucket end time");
    }
    if (e.ts < prev_ts) {
      return Status::InvalidArgument("bucket must be sorted by ts");
    }
    prev_ts = e.ts;
    if (entries_.contains(e.id)) {
      return Status::AlreadyExists("duplicate element id " +
                                   std::to_string(e.id));
    }
    const ElementId id = e.id;
    const Timestamp ts = e.ts;
    // Normalize the reference list: duplicate targets would double-count
    // influence edges (Eq. 4 is defined over the *set* e.ref), and a
    // self-reference is meaningless.
    std::sort(e.refs.begin(), e.refs.end());
    e.refs.erase(std::unique(e.refs.begin(), e.refs.end()), e.refs.end());
    std::erase(e.refs, id);
    // The entry is created BEFORE its references are registered so each
    // gained edge can stash a pointer to the (pool-stable) stored topic
    // vector of its referrer.
    Entry* entry =
        pool_.Create(Entry{std::move(e), {}, ts, true, kMinTimestamp});
    entries_.emplace(id, entry);
    ++num_active_;
    window_order_.push_back(id);
    inserted_list.emplace_back(id, entry);
    // Register references; archived targets are resurrected.
    for (ElementId target : entry->element.refs) {
      auto it = entries_.find(target);
      if (it == entries_.end()) {
        ++result.dangling_refs;
        continue;
      }
      Entry& target_entry = *it->second;
      target_entry.referrers.push_back(Referrer{id, ts});
      target_entry.last_ref_time = ts;
      entry->ref_targets.push_back(&target_entry);
      if (target_entry.active) {
        TouchStash(&target_entry);
        target_entry.gained_stash.push_back(&entry->element.topics);
        if (target_entry.gained_stamp != advance_epoch_) {
          target_entry.gained_stamp = advance_epoch_;
          gained_list.emplace_back(target, &target_entry);
        }
      } else {
        target_entry.active = true;
        target_entry.deactivated_at = kMinTimestamp;
        ++num_active_;
        resurrected.insert(target);
      }
    }
  }
  now_ = now;

  // --- Phase 2: expiry. Elements whose ts left W_t stop being referrers;
  // then every element that is out of window and referrer-free leaves A_t.
  // Lost edges are registered from the LEAVER side — the leaver's entry
  // (and topic vector) is already in hand, so the edge stash costs no
  // extra lookup, and each leaver removes exactly its OWN record from the
  // target's expired prefix (one erase per lost edge; a mass expiry of k
  // referrers of one hub costs k prefix erases rather than one wholesale
  // drop — the price of attributing every lost edge to its topic vector).
  const Timestamp cutoff = now_ - window_length_;  // in window iff ts > cutoff
  std::vector<std::pair<ElementId, Entry*>>& leavers = leavers_;
  leavers.clear();
  while (!window_order_.empty()) {
    const ElementId id = window_order_.front();
    const auto it = entries_.find(id);
    KSIR_CHECK(it != entries_.end());
    if (it->second->element.ts > cutoff) break;
    window_order_.pop_front();
    leavers.emplace_back(id, it->second);
  }
  for (const auto& [id, leaver] : leavers) {
    // The leaver no longer influences its reference targets, whose entries
    // were resolved once at insertion (dangling references left neither a
    // pointer nor a record). The leaver's record is guaranteed present —
    // its existence is what kept the target active — and sits in the
    // target's expired prefix (records are ts-ordered and the leaver's ts
    // is <= cutoff). Each expired record is removed by exactly the leaver
    // that owns it, so the prefix drains completely by the end of the
    // loop.
    for (Entry* target_entry : leaver->ref_targets) {
      KSIR_DCHECK(target_entry->active);
      auto& referrers = target_entry->referrers;
      // The leaver's record sits in the ts-expired prefix; the id scan over
      // the 16-byte (id, ts) records is the dispatched strided kernel.
      static_assert(sizeof(Referrer) == 2 * sizeof(std::int64_t) &&
                        offsetof(Referrer, id) == 0,
                    "Referrer must be a 16-byte record led by its id");
      const std::size_t pos =
          kernels::FindId64(&referrers[0].id, referrers.size(), 2, id);
      KSIR_DCHECK(pos < referrers.size() && referrers[pos].ts <= cutoff);
      referrers.erase(referrers.begin() + static_cast<std::ptrdiff_t>(pos),
                      referrers.begin() +
                          static_cast<std::ptrdiff_t>(pos + 1));
      TouchStash(target_entry);
      target_entry->lost_stash.push_back(&leaver->element.topics);
      if (target_entry->lost_stamp != advance_epoch_) {
        target_entry->lost_stamp = advance_epoch_;
        lost_list.emplace_back(target_entry->element.id, target_entry);
      }
    }
  }
  for (const auto& [id, entry] : leavers) {
    MaybeDeactivate(id, entry, &result);
  }
  for (const auto& [id, entry] : lost_list) {
    MaybeDeactivate(id, entry, &result);
  }

  // --- Phase 3: garbage-collect the archive. Entries touched by THIS call
  // deactivated at `now_`, so none of the stashed or reported pointers can
  // be collected here (retention is always positive).
  while (!archive_queue_.empty() &&
         archive_queue_.front().second + archive_retention_ <= now_) {
    const auto [id, deactivated_at] = archive_queue_.front();
    archive_queue_.pop_front();
    const auto it = entries_.find(id);
    if (it == entries_.end()) continue;
    // Skip stale queue entries of elements that were resurrected (and
    // possibly re-deactivated, which re-enqueued them).
    if (it->second->active || it->second->deactivated_at != deactivated_at) {
      continue;
    }
    pool_.Destroy(it->second);
    entries_.erase(it);
  }

  FlatHashSet<ElementId>& inserted_set = inserted_set_;
  inserted_set.clear();
  inserted_set.reserve(inserted_list.size());
  for (const auto& [id, entry] : inserted_list) inserted_set.insert(id);
  FlatHashSet<ElementId>& expired_set = expired_set_;
  expired_set.clear();
  expired_set.reserve(result.expired.size());
  for (const Touched& t : result.expired) expired_set.insert(t.id);
  // Keep the report lists disjoint. An element that entered (or re-entered)
  // A_t and left it within this same call was never visible to the index
  // maintainer, so it must appear in NEITHER inserted/resurrected NOR
  // expired — a far time jump can expire a bucket's own elements.
  FlatHashSet<ElementId>& drop_from_expired = drop_from_expired_;
  drop_from_expired.clear();
  for (const Touched& t : result.expired) {
    if (resurrected.erase(t.id) > 0 || inserted_set.contains(t.id)) {
      drop_from_expired.insert(t.id);
    }
  }
  if (!drop_from_expired.empty()) {
    std::erase_if(result.expired, [&](const Touched& t) {
      return drop_from_expired.contains(t.id);
    });
  }
  for (const auto& [id, entry] : inserted_list) {
    if (expired_set.contains(id)) continue;  // same-call insert + expire
    result.inserted.push_back(MakeTouched(id, entry, /*with_edges=*/false));
  }
  for (ElementId id : resurrected) {
    const auto it = entries_.find(id);
    KSIR_CHECK(it != entries_.end());
    result.resurrected.push_back(
        MakeTouched(id, it->second, /*with_edges=*/false));
  }
  for (const auto& [id, entry] : gained_list) {
    if (inserted_set.contains(id) || resurrected.contains(id) ||
        expired_set.contains(id)) {
      continue;
    }
    result.gained_referrer.push_back(MakeTouched(id, entry,
                                                 /*with_edges=*/true));
  }
  for (const auto& [id, entry] : lost_list) {
    if (inserted_set.contains(id) || resurrected.contains(id) ||
        expired_set.contains(id)) {
      continue;
    }
    if (entry->gained_stamp == advance_epoch_) {
      continue;  // a net gain already triggers a reposition
    }
    result.lost_referrer.push_back(MakeTouched(id, entry,
                                               /*with_edges=*/true));
  }
  const auto by_id = [](const Touched& a, const Touched& b) {
    return a.id < b.id;
  };
  std::sort(result.resurrected.begin(), result.resurrected.end(), by_id);
  std::sort(result.gained_referrer.begin(), result.gained_referrer.end(),
            by_id);
  std::sort(result.lost_referrer.begin(), result.lost_referrer.end(), by_id);
  std::sort(result.expired.begin(), result.expired.end(), by_id);
  return result;
}

void ActiveWindow::MaybeDeactivate(ElementId id, Entry* entry_ptr,
                                   UpdateResult* result) {
  Entry& entry = *entry_ptr;
  if (!entry.active) return;
  if (entry.element.ts > now_ - window_length_) return;  // still in W_t
  if (!entry.referrers.empty()) return;                  // still referenced
  entry.active = false;
  entry.deactivated_at = now_;
  --num_active_;
  archive_queue_.emplace_back(id, now_);
  result->expired.push_back(MakeTouched(id, entry_ptr, /*with_edges=*/false));
}

const SocialElement* ActiveWindow::Find(ElementId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end() || !it->second->active) return nullptr;
  return &it->second->element;
}

bool ActiveWindow::IsActive(ElementId id) const {
  const auto it = entries_.find(id);
  return it != entries_.end() && it->second->active;
}

bool ActiveWindow::IsInWindow(ElementId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end() || !it->second->active) return false;
  return it->second->element.ts > now_ - window_length_;
}

bool ActiveWindow::IsArchived(ElementId id) const {
  const auto it = entries_.find(id);
  return it != entries_.end() && !it->second->active;
}

const ReferrerList& ActiveWindow::ReferrersOf(ElementId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end() || !it->second->active) return kNoReferrers;
  return it->second->referrers;
}

Timestamp ActiveWindow::LastReferredAt(ElementId id) const {
  const auto it = entries_.find(id);
  KSIR_CHECK(it != entries_.end() && it->second->active);
  return std::max(it->second->element.ts, it->second->last_ref_time);
}

void ActiveWindow::ForEachActive(
    const std::function<void(const SocialElement&)>& fn) const {
  for (const auto& [id, entry] : entries_) {
    if (entry->active) fn(entry->element);
  }
}

std::vector<ElementId> ActiveWindow::ActiveIds() const {
  std::vector<ElementId> ids;
  ids.reserve(num_active_);
  for (const auto& [id, entry] : entries_) {
    if (entry->active) ids.push_back(id);
  }
  return ids;
}

}  // namespace ksir
