# Empty dependencies file for ksir_core.
# This may be replaced when dependencies are built.
