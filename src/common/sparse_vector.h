// Sparse nonnegative vector over a small dense index space (topic vectors of
// elements and k-SIR query vectors). Entries are kept sorted by index for
// O(nnz) merges; nnz is tiny in practice (the paper observes < 2 topics per
// element on average), which is what makes per-topic ranked lists effective.
#ifndef KSIR_COMMON_SPARSE_VECTOR_H_
#define KSIR_COMMON_SPARSE_VECTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace ksir {

/// Immutable-after-build sparse vector with sorted (index, value) entries.
class SparseVector {
 public:
  using Entry = std::pair<std::int32_t, double>;

  SparseVector() = default;

  /// Builds from unsorted entries; merges duplicate indices by summation and
  /// drops non-positive values.
  static SparseVector FromEntries(std::vector<Entry> entries);

  /// Builds from a dense vector keeping entries with value > threshold.
  static SparseVector FromDense(const std::vector<double>& dense,
                                double threshold = 0.0);

  /// Builds from a dense vector keeping entries with value >= `threshold`,
  /// then renormalizing survivors to sum to 1. When no entry passes the
  /// threshold the single largest entry is kept. Used for topic-vector
  /// truncation (DESIGN.md §5).
  static SparseVector TruncateAndNormalize(const std::vector<double>& dense,
                                           double threshold);

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t nnz() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Value at `index` (0 when absent). O(log nnz).
  double Get(std::int32_t index) const;

  /// Sum of all values.
  double Sum() const;

  /// Largest index + 1, or 0 when empty.
  std::int32_t DimensionBound() const;

  /// Scales values so that Sum() == 1 (no-op on empty/zero vectors).
  void NormalizeL1();

  /// Sparse-sparse dot product, O(nnz_a + nnz_b).
  static double Dot(const SparseVector& a, const SparseVector& b);

  /// Cosine similarity (0 when either vector is empty/zero).
  static double Cosine(const SparseVector& a, const SparseVector& b);

  /// Dense expansion of length `dim` (dim must cover all indices).
  std::vector<double> ToDense(std::size_t dim) const;

  bool operator==(const SparseVector& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace ksir

#endif  // KSIR_COMMON_SPARSE_VECTOR_H_
