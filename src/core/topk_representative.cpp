#include "core/topk_representative.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "core/candidate_state.h"
#include "core/traversal.h"

namespace ksir {

QueryResult RunTopkRepresentative(const ScoringContext& ctx,
                                  const RankedListIndex& index,
                                  const KsirQuery& query) {
  KSIR_CHECK(query.k >= 1);
  WallTimer timer;
  QueryResult result;

  RankedListCursor cursor(&index, &query.x);
  // Min-heap of the current best k singleton scores.
  using Scored = std::pair<double, ElementId>;
  std::priority_queue<Scored, std::vector<Scored>, std::greater<>> top;

  while (!cursor.Exhausted()) {
    // Early termination: no unevaluated element can beat the k-th best.
    if (top.size() == static_cast<std::size_t>(query.k) &&
        cursor.UpperBound() < top.top().first) {
      break;
    }
    const auto popped = cursor.PopNext();
    if (!popped.has_value()) break;
    const SocialElement* e = ctx.window().Find(*popped);
    KSIR_CHECK(e != nullptr);
    const double score = ctx.ElementScore(*e, query.x);
    ++result.stats.num_evaluated;
    if (top.size() < static_cast<std::size_t>(query.k)) {
      top.emplace(score, *popped);
    } else if (score > top.top().first) {
      top.pop();
      top.emplace(score, *popped);
    }
  }

  std::vector<Scored> selected;
  selected.reserve(top.size());
  while (!top.empty()) {
    selected.push_back(top.top());
    top.pop();
  }
  std::sort(selected.begin(), selected.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  // Report f(S, x) of the set so quality is comparable across methods.
  CandidateState set_score(&ctx, &query.x);
  for (const auto& [score, id] : selected) {
    const SocialElement* e = ctx.window().Find(id);
    KSIR_CHECK(e != nullptr);
    set_score.Add(*e);
    result.element_ids.push_back(id);
  }
  result.score = set_score.score();
  result.stats.num_retrieved = cursor.num_retrieved();
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace ksir
