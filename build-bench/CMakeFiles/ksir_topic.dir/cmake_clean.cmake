file(REMOVE_RECURSE
  "CMakeFiles/ksir_topic.dir/src/topic/btm.cpp.o"
  "CMakeFiles/ksir_topic.dir/src/topic/btm.cpp.o.d"
  "CMakeFiles/ksir_topic.dir/src/topic/drift.cpp.o"
  "CMakeFiles/ksir_topic.dir/src/topic/drift.cpp.o.d"
  "CMakeFiles/ksir_topic.dir/src/topic/inference.cpp.o"
  "CMakeFiles/ksir_topic.dir/src/topic/inference.cpp.o.d"
  "CMakeFiles/ksir_topic.dir/src/topic/lda.cpp.o"
  "CMakeFiles/ksir_topic.dir/src/topic/lda.cpp.o.d"
  "CMakeFiles/ksir_topic.dir/src/topic/query_inference.cpp.o"
  "CMakeFiles/ksir_topic.dir/src/topic/query_inference.cpp.o.d"
  "CMakeFiles/ksir_topic.dir/src/topic/topic_model.cpp.o"
  "CMakeFiles/ksir_topic.dir/src/topic/topic_model.cpp.o.d"
  "CMakeFiles/ksir_topic.dir/src/topic/user_profile.cpp.o"
  "CMakeFiles/ksir_topic.dir/src/topic/user_profile.cpp.o.d"
  "libksir_topic.a"
  "libksir_topic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksir_topic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
