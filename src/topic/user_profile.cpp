#include "topic/user_profile.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace ksir {

UserProfile::UserProfile(const TopicInferencer* inferencer,
                         UserProfileOptions options)
    : inferencer_(inferencer), options_(options) {
  KSIR_CHECK(inferencer != nullptr);
  KSIR_CHECK(options_.decay_half_life > 0);
  KSIR_CHECK(options_.max_posts > 0);
}

Status UserProfile::AddPost(const Document& doc, Timestamp ts) {
  if (ts < last_ts_) {
    return Status::InvalidArgument("post timestamps must be non-decreasing");
  }
  if (doc.empty()) {
    return Status::InvalidArgument("post document is empty");
  }
  last_ts_ = ts;
  posts_.push_back(Post{
      inferencer_->InferSparse(doc, static_cast<std::uint64_t>(ts)), ts});
  if (posts_.size() > options_.max_posts) posts_.pop_front();
  return Status::OK();
}

StatusOr<SparseVector> UserProfile::InterestVector(Timestamp now) const {
  if (posts_.empty()) {
    return Status::FailedPrecondition("profile has no posts");
  }
  const double ln2 = std::log(2.0);
  std::vector<SparseVector::Entry> entries;
  for (const Post& post : posts_) {
    const double age = static_cast<double>(
        now > post.ts ? now - post.ts : 0);
    const double weight = std::exp(
        -ln2 * age / static_cast<double>(options_.decay_half_life));
    for (const auto& [topic, prob] : post.topics.entries()) {
      entries.emplace_back(topic, weight * prob);
    }
  }
  SparseVector blended = SparseVector::FromEntries(std::move(entries));
  if (blended.empty()) {
    return Status::Internal("interest blend collapsed to zero");
  }
  blended.NormalizeL1();
  // Truncate like element/query vectors so downstream list traversal stays
  // narrow, then renormalize.
  std::vector<SparseVector::Entry> kept;
  for (const auto& [topic, prob] : blended.entries()) {
    if (prob >= options_.sparsity_threshold) kept.emplace_back(topic, prob);
  }
  if (kept.empty()) return blended;  // everything below threshold: keep all
  SparseVector out = SparseVector::FromEntries(std::move(kept));
  out.NormalizeL1();
  return out;
}

}  // namespace ksir
