// Standing (continuous) k-SIR queries: the deployment pattern of the
// paper's introduction — users keep an interest registered and the system
// refreshes their representative set as the window slides. The manager
// re-evaluates registered queries on demand (typically once per bucket),
// diffs each result against the previous one and reports whether it
// changed.
//
// The manager is evaluator-agnostic: evaluation runs through a
// caller-supplied function — a single engine's Query (the convenience
// constructor) or the sharded service's planner + cache path (see
// service/sharded_standing_query.h).
#ifndef KSIR_CORE_STANDING_QUERY_H_
#define KSIR_CORE_STANDING_QUERY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/status.h"
#include "core/engine.h"

namespace ksir {

/// Registry of standing queries over one evaluation backend.
/// Thread-compatible; call EvaluateAll from the ingestion thread after
/// AdvanceTo (the evaluator is responsible for its own locking).
class StandingQueryManager {
 public:
  /// Invoked per standing query per evaluation. `changed` is true when the
  /// result's element set differs from the previous evaluation.
  using Callback = std::function<void(std::int64_t standing_id,
                                      const QueryResult& result,
                                      bool changed)>;

  /// Answers one k-SIR query against the current stream state.
  using Evaluator = std::function<StatusOr<QueryResult>(const KsirQuery&)>;

  /// Evaluates through `evaluator` (must be non-null).
  explicit StandingQueryManager(Evaluator evaluator);

  /// Convenience: evaluates through `engine->Query`. `engine` must outlive
  /// the manager.
  explicit StandingQueryManager(const KsirEngine* engine);

  /// Registers a query; returns its standing id.
  std::int64_t Register(KsirQuery query, Callback callback);

  /// Removes a standing query; false when the id is unknown.
  bool Unregister(std::int64_t standing_id);

  /// Re-evaluates every standing query against the current stream state.
  /// Returns the first query error encountered (remaining queries still
  /// run).
  Status EvaluateAll();

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    KsirQuery query;
    Callback callback;
    std::vector<ElementId> last_result;  // sorted
    bool evaluated_once = false;
  };

  Evaluator evaluator_;
  std::map<std::int64_t, Entry> entries_;
  std::int64_t next_id_ = 1;
};

}  // namespace ksir

#endif  // KSIR_CORE_STANDING_QUERY_H_
