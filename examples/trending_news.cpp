// Trending-news feed: continuous k-SIR queries over a live Twitter-like
// stream (the paper's motivating scenario).
//
// Generates a TwitterSim stream, feeds it to the engine bucket by bucket,
// and every 6 simulated hours re-issues the same standing query ("what is
// representative for my topics right now?"), showing how the result set
// drifts as content trends and decays inside the 24-hour sliding window.
//
//   $ ./trending_news
#include <cstdio>
#include <string>

#include "core/engine.h"
#include "subscribe/standing_query.h"
#include "stream/generator.h"
#include "topic/inference.h"
#include "topic/query_inference.h"

namespace {

using namespace ksir;  // NOLINT(build/namespaces) - example brevity

std::string DescribeElement(const GeneratedStream& stream,
                            const SocialElement& e) {
  // Synthetic streams have no raw text; show the dominant words instead.
  std::string out = "[";
  std::size_t shown = 0;
  for (const auto& [word, count] : e.doc.word_counts()) {
    if (shown++ == 4) break;
    if (shown > 1) out += " ";
    out += stream.vocab.WordOf(word);
  }
  out += "]";
  return out;
}

}  // namespace

int main() {
  std::printf("Trending-news example: standing k-SIR query over a live "
              "stream\n");
  std::printf("=============================================================="
              "\n");

  StreamProfile profile = TwitterSimProfile();
  profile.num_elements = 12000;
  profile.duration = 3 * 24 * 3600;  // three simulated days
  auto generated = GenerateStream(profile);
  KSIR_CHECK(generated.ok());
  const GeneratedStream& stream = *generated;

  EngineConfig config;
  config.scoring.lambda = 0.5;
  config.scoring.eta = 200.0;  // paper's Twitter setting
  config.window_length = 24 * 3600;
  config.bucket_length = 15 * 60;
  KsirEngine engine(config, &stream.model);

  // The standing query: a user interested in the two hottest synthetic
  // topics, expressed as keywords and inferred through the topic model
  // (query-by-keyword, Section 3.2).
  TopicInferencer inferencer(&stream.model);
  QueryVectorBuilder builder(&inferencer, &stream.vocab);
  // Top words of the two most popular topics serve as "keywords".
  std::vector<std::string> keywords;
  for (TopicId t : {0, 1}) {
    for (WordId w : stream.model.TopWords(t, 2)) {
      keywords.push_back(stream.vocab.WordOf(w));
    }
  }
  auto x = builder.FromKeywords(keywords);
  KSIR_CHECK(x.ok());
  std::printf("\nStanding query keywords:");
  for (const auto& kw : keywords) std::printf(" %s", kw.c_str());
  std::printf("\n");

  // Register the standing query with the continuous-query manager; its
  // callback renders each refresh and flags result drift.
  StandingQueryManager manager(&engine);
  Timestamp current_time = 0;
  KsirQuery query;
  query.k = 5;
  query.x = *x;
  query.algorithm = Algorithm::kMttd;
  query.epsilon = 0.1;
  manager.Register(query, [&](std::int64_t, const QueryResult& result,
                              bool changed) {
    std::printf(
        "\n-- t = %2lldh | window holds %5zu active elements | "
        "f(S,x) = %.3f | %.2f ms, %zu of %zu evaluated%s --\n",
        static_cast<long long>(current_time / 3600),
        engine.window().num_active(), result.score,
        result.stats.elapsed_ms, result.stats.num_evaluated,
        engine.window().num_active(),
        changed ? " | RESULT CHANGED" : "");
    for (ElementId id : result.element_ids) {
      const SocialElement* e = engine.window().Find(id);
      KSIR_CHECK(e != nullptr);
      std::printf("   e%-6lld age %5lldmin  refs-in %2zu  %s\n",
                  static_cast<long long>(id),
                  static_cast<long long>((current_time - e->ts) / 60),
                  engine.window().ReferrersOf(id).size(),
                  DescribeElement(stream, *e).c_str());
    }
  });

  // Feed the stream; refresh every 6 simulated hours once the window warmed
  // up.
  const Timestamp checkpoint_every = 6 * 3600;
  Timestamp next_checkpoint = config.window_length;
  std::size_t begin = 0;
  Timestamp bucket_end = 0;
  while (begin < stream.elements.size()) {
    bucket_end += config.bucket_length;
    std::vector<SocialElement> bucket;
    while (begin < stream.elements.size() &&
           stream.elements[begin].ts <= bucket_end) {
      bucket.push_back(stream.elements[begin]);
      ++begin;
    }
    KSIR_CHECK(engine.AdvanceTo(bucket_end, std::move(bucket)).ok());

    if (bucket_end >= next_checkpoint) {
      next_checkpoint += checkpoint_every;
      current_time = bucket_end;
      KSIR_CHECK(manager.EvaluateAll().ok());
    }
  }

  const auto stats = engine.maintenance_stats();
  std::printf("\nIngestion: %lld elements in %lld buckets, %.3f ms/element "
              "maintenance.\n",
              static_cast<long long>(stats.elements_ingested),
              static_cast<long long>(stats.buckets_processed),
              stats.total_update_ms /
                  static_cast<double>(stats.elements_ingested));
  return 0;
}
