#include "core/ranked_list.h"

#include <algorithm>

#include "common/check.h"

namespace ksir {

std::size_t RankedList::FindChunk(const Key& key) const {
  // First chunk whose last (greatest in comparator order, i.e. lowest-score)
  // key is not ordered before `key`; keys beyond every chunk map to the
  // final chunk.
  const auto it = std::partition_point(
      chunk_last_.begin(), chunk_last_.end(),
      [&key](const Key& last) { return last < key; });
  const std::size_t idx = static_cast<std::size_t>(it - chunk_last_.begin());
  return idx == chunks_.size() ? idx - 1 : idx;
}

void RankedList::InsertKey(const Key& key) {
  if (chunks_.empty()) {
    chunks_.push_back(std::make_unique<Chunk>());
    chunks_[0]->keys[0] = key;
    chunks_[0]->size = 1;
    chunk_last_.push_back(key);
    ++size_;
    return;
  }
  std::size_t idx = FindChunk(key);
  Chunk* chunk = chunks_[idx].get();
  if (chunk->size == kChunkCapacity) {
    // Split into two halves, then re-aim at the half that owns `key`.
    auto upper = std::make_unique<Chunk>();
    constexpr std::uint32_t kHalf = kChunkCapacity / 2;
    std::copy(chunk->keys.begin() + kHalf, chunk->keys.end(),
              upper->keys.begin());
    upper->size = kChunkCapacity - kHalf;
    chunk->size = kHalf;
    const auto offset = static_cast<std::ptrdiff_t>(idx);
    chunks_.insert(chunks_.begin() + offset + 1, std::move(upper));
    chunk_last_.insert(chunk_last_.begin() + offset,
                       chunks_[idx]->keys[kHalf - 1]);
    if (chunks_[idx + 1]->keys[0] < key) {
      ++idx;
    }
    chunk = chunks_[idx].get();
  }
  Key* const first = chunk->keys.data();
  Key* const last = first + chunk->size;
  Key* const pos = std::lower_bound(first, last, key);
  std::copy_backward(pos, last, last + 1);
  *pos = key;
  ++chunk->size;
  chunk_last_[idx] = chunk->keys[chunk->size - 1];
  ++size_;
}

void RankedList::EraseKey(const Key& key) {
  KSIR_CHECK(!chunks_.empty());
  const std::size_t idx = FindChunk(key);
  Chunk* chunk = chunks_[idx].get();
  Key* const first = chunk->keys.data();
  Key* const last = first + chunk->size;
  Key* const pos = std::lower_bound(first, last, key);
  KSIR_CHECK(pos != last && *pos == key);
  std::copy(pos + 1, last, pos);
  --chunk->size;
  --size_;
  if (chunk->size == 0) {
    const auto offset = static_cast<std::ptrdiff_t>(idx);
    chunks_.erase(chunks_.begin() + offset);
    chunk_last_.erase(chunk_last_.begin() + offset);
  } else {
    chunk_last_[idx] = chunk->keys[chunk->size - 1];
    if (chunk->size < kChunkCapacity / 4) MaybeMerge(idx);
  }
}

void RankedList::MoveKey(const Key& old_key, const Key& new_key) {
  const std::size_t old_idx = FindChunk(old_key);
  Chunk* chunk = chunks_[old_idx].get();
  Key* const first = chunk->keys.data();
  Key* const last = first + chunk->size;
  Key* const old_pos = std::lower_bound(first, last, old_key);
  KSIR_CHECK(old_pos != last && *old_pos == old_key);
  // The new key stays in this chunk iff it sorts at or before the chunk's
  // last key and at or after the previous chunk's last key (with the old
  // key still counted as present, which only widens the chunk's span).
  const bool within =
      !(chunk->keys[chunk->size - 1] < new_key) &&
      (old_idx == 0 || chunk_last_[old_idx - 1] < new_key);
  if (!within) {
    EraseKey(old_key);
    InsertKey(new_key);
    return;
  }
  Key* const new_pos = std::lower_bound(first, last, new_key);
  if (new_pos == old_pos || new_pos == old_pos + 1) {
    *old_pos = new_key;  // neighbors unchanged: overwrite in place
  } else if (new_pos < old_pos) {
    std::copy_backward(new_pos, old_pos, old_pos + 1);
    *new_pos = new_key;
  } else {
    std::copy(old_pos + 1, new_pos, old_pos);
    *(new_pos - 1) = new_key;
  }
  chunk_last_[old_idx] = chunk->keys[chunk->size - 1];
}

void RankedList::MaybeMerge(std::size_t idx) {
  // Fold the sparse chunk into a neighbor when the pair stays under
  // capacity, bounding the chunk count under sustained churn.
  const auto merge_into = [this](std::size_t dst, std::size_t src) {
    Chunk* a = chunks_[dst].get();
    Chunk* b = chunks_[src].get();
    std::copy(b->keys.begin(), b->keys.begin() + b->size,
              a->keys.begin() + a->size);
    a->size += b->size;
    chunk_last_[dst] = a->keys[a->size - 1];
    const auto offset = static_cast<std::ptrdiff_t>(src);
    chunks_.erase(chunks_.begin() + offset);
    chunk_last_.erase(chunk_last_.begin() + offset);
  };
  const std::uint32_t self = chunks_[idx]->size;
  if (idx + 1 < chunks_.size() &&
      self + chunks_[idx + 1]->size <= kChunkCapacity) {
    merge_into(idx, idx + 1);
  } else if (idx > 0 && chunks_[idx - 1]->size + self <= kChunkCapacity) {
    merge_into(idx - 1, idx);
  }
}

void RankedList::Insert(ElementId id, double score, Timestamp te) {
  const auto [it, inserted] = by_id_.emplace(id, std::make_pair(score, te));
  KSIR_CHECK(inserted);
  InsertKey(Key{score, id});
}

void RankedList::Update(ElementId id, double score, Timestamp te) {
  const auto it = by_id_.find(id);
  KSIR_CHECK(it != by_id_.end());
  const double old_score = it->second.first;
  it->second = {score, te};
  if (old_score == score) return;  // key unchanged; only t_e moved
  MoveKey(Key{old_score, id}, Key{score, id});
}

void RankedList::Erase(ElementId id) {
  const auto it = by_id_.find(id);
  KSIR_CHECK(it != by_id_.end());
  EraseKey(Key{it->second.first, id});
  by_id_.erase(it);
}

RankedList::Tuple RankedList::Get(ElementId id) const {
  const auto it = by_id_.find(id);
  KSIR_CHECK(it != by_id_.end());
  return Tuple{id, it->second.first, it->second.second};
}

Timestamp RankedList::TimeOf(ElementId id) const {
  const auto it = by_id_.find(id);
  KSIR_CHECK(it != by_id_.end());
  return it->second.second;
}

RankedListIndex::RankedListIndex(std::size_t num_topics)
    : lists_(num_topics) {
  KSIR_CHECK(num_topics > 0);
}

void RankedListIndex::Insert(
    ElementId id, const std::vector<std::pair<TopicId, double>>& topic_scores,
    Timestamp te) {
  const auto [it, inserted] = membership_.try_emplace(id);
  KSIR_CHECK(inserted);
  auto& topics = it->second;
  topics.reserve(topic_scores.size());
  for (const auto& [topic, score] : topic_scores) {
    KSIR_CHECK(topic >= 0 && static_cast<std::size_t>(topic) < lists_.size());
    lists_[static_cast<std::size_t>(topic)].Insert(id, score, te);
    topics.push_back(topic);
    ++total_entries_;
  }
}

void RankedListIndex::Update(
    ElementId id, const std::vector<std::pair<TopicId, double>>& topic_scores,
    Timestamp te) {
  const auto it = membership_.find(id);
  KSIR_CHECK(it != membership_.end());
  KSIR_CHECK(it->second.size() == topic_scores.size());
  for (const auto& [topic, score] : topic_scores) {
    lists_[static_cast<std::size_t>(topic)].Update(id, score, te);
  }
}

void RankedListIndex::UpdateTrusted(
    ElementId id, const std::vector<std::pair<TopicId, double>>& topic_scores,
    Timestamp te) {
  KSIR_DCHECK(membership_.contains(id));
  KSIR_DCHECK(membership_.find(id)->second.size() == topic_scores.size());
  for (const auto& [topic, score] : topic_scores) {
    lists_[static_cast<std::size_t>(topic)].Update(id, score, te);
  }
}

void RankedListIndex::Erase(ElementId id) {
  const auto it = membership_.find(id);
  KSIR_CHECK(it != membership_.end());
  for (TopicId topic : it->second) {
    lists_[static_cast<std::size_t>(topic)].Erase(id);
    --total_entries_;
  }
  membership_.erase(it);
}

const RankedList& RankedListIndex::list(TopicId topic) const {
  KSIR_CHECK(topic >= 0 && static_cast<std::size_t>(topic) < lists_.size());
  return lists_[static_cast<std::size_t>(topic)];
}

}  // namespace ksir
