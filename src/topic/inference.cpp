#include "topic/inference.h"

#include <algorithm>

#include "common/check.h"
#include "common/math.h"
#include "topic/btm.h"

namespace ksir {

TopicInferencer::TopicInferencer(const TopicModel* model,
                                 InferenceOptions options)
    : model_(model), options_(options) {
  KSIR_CHECK(model != nullptr);
  KSIR_CHECK(options_.iterations > 0);
  KSIR_CHECK(options_.burn_in >= 0 && options_.burn_in < options_.iterations);
}

std::vector<double> TopicInferencer::InferDense(const Document& doc,
                                                std::uint64_t salt) const {
  // Degenerate documents fall back to the corpus prior.
  bool any_known_word = false;
  for (const auto& [word, count] : doc.word_counts()) {
    if (static_cast<std::size_t>(word) < model_->vocab_size()) {
      any_known_word = true;
      break;
    }
  }
  if (doc.empty() || !any_known_word) return model_->topic_prior();

  std::vector<double> theta;
  if (options_.method == InferenceMethod::kBiterm) {
    theta = InferBiterm(doc);
    // Single-word documents yield no biterms; fall through to Gibbs.
    if (theta.empty()) {
      Rng rng(options_.seed ^ (salt * 0x9e3779b97f4a7c15ULL + 1));
      theta = InferGibbs(doc, &rng);
    }
  } else {
    Rng rng(options_.seed ^ (salt * 0x9e3779b97f4a7c15ULL + 1));
    theta = InferGibbs(doc, &rng);
  }
  KSIR_DCHECK(theta.size() == model_->num_topics());
  NormalizeInPlace(&theta);
  return theta;
}

SparseVector TopicInferencer::InferSparse(const Document& doc,
                                          std::uint64_t salt) const {
  return SparseVector::TruncateAndNormalize(InferDense(doc, salt),
                                            options_.sparsity_threshold);
}

std::vector<double> TopicInferencer::InferGibbs(const Document& doc,
                                                Rng* rng) const {
  const std::size_t z = model_->num_topics();
  const double alpha = options_.alpha > 0.0 ? options_.alpha : 0.1;

  // Tokens restricted to the model vocabulary.
  std::vector<WordId> tokens;
  for (const auto& [word, count] : doc.word_counts()) {
    if (static_cast<std::size_t>(word) >= model_->vocab_size()) continue;
    for (std::int32_t i = 0; i < count; ++i) tokens.push_back(word);
  }
  KSIR_CHECK(!tokens.empty());

  std::vector<std::int32_t> topic_count(z, 0);
  std::vector<std::int32_t> assignment(tokens.size());
  std::vector<double> weights(z);

  // Initialize assignments proportional to phi * prior.
  for (std::size_t j = 0; j < tokens.size(); ++j) {
    for (std::size_t i = 0; i < z; ++i) {
      weights[i] = model_->WordProb(static_cast<TopicId>(i), tokens[j]) *
                       model_->topic_prior()[i] +
                   1e-12;
    }
    const std::size_t topic = rng->NextCategorical(weights);
    assignment[j] = static_cast<std::int32_t>(topic);
    ++topic_count[topic];
  }

  std::vector<double> theta_sum(z, 0.0);
  std::int32_t samples = 0;
  for (std::int32_t iter = 0; iter < options_.iterations; ++iter) {
    for (std::size_t j = 0; j < tokens.size(); ++j) {
      const auto old_topic = static_cast<std::size_t>(assignment[j]);
      --topic_count[old_topic];
      for (std::size_t i = 0; i < z; ++i) {
        weights[i] =
            (static_cast<double>(topic_count[i]) + alpha) *
                model_->WordProb(static_cast<TopicId>(i), tokens[j]) +
            1e-15;
      }
      const std::size_t new_topic = rng->NextCategorical(weights);
      assignment[j] = static_cast<std::int32_t>(new_topic);
      ++topic_count[new_topic];
    }
    if (iter >= options_.burn_in) {
      ++samples;
      const double denom = static_cast<double>(tokens.size()) +
                           static_cast<double>(z) * alpha;
      for (std::size_t i = 0; i < z; ++i) {
        theta_sum[i] += (static_cast<double>(topic_count[i]) + alpha) / denom;
      }
    }
  }
  KSIR_CHECK(samples > 0);
  for (auto& v : theta_sum) v /= static_cast<double>(samples);
  return theta_sum;
}

std::vector<double> TopicInferencer::InferBiterm(const Document& doc) const {
  const std::size_t z = model_->num_topics();
  std::vector<WordId> tokens;
  for (const auto& [word, count] : doc.word_counts()) {
    if (static_cast<std::size_t>(word) >= model_->vocab_size()) continue;
    for (std::int32_t i = 0; i < count; ++i) tokens.push_back(word);
  }
  const auto biterms = ExtractBiterms(tokens, options_.biterm_window);
  if (biterms.empty()) return {};

  // p(z|d) = sum_b p(b|d) p(z|b), p(z|b) ∝ p(z) p(w1|z) p(w2|z).
  std::vector<double> theta(z, 0.0);
  std::vector<double> pzb(z);
  const double pbd = 1.0 / static_cast<double>(biterms.size());
  for (const auto& [w1, w2] : biterms) {
    double total = 0.0;
    for (std::size_t i = 0; i < z; ++i) {
      pzb[i] = model_->topic_prior()[i] *
               model_->WordProb(static_cast<TopicId>(i), w1) *
               model_->WordProb(static_cast<TopicId>(i), w2);
      total += pzb[i];
    }
    if (total <= 0.0) continue;
    for (std::size_t i = 0; i < z; ++i) theta[i] += pbd * pzb[i] / total;
  }
  return theta;
}

}  // namespace ksir
