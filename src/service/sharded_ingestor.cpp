#include "service/sharded_ingestor.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/timer.h"

namespace ksir {

ShardedIngestor::ShardedIngestor(std::vector<KsirEngine*> shards,
                                 ShardRouter* router, WorkerPool* pool)
    : shards_(std::move(shards)), router_(router), pool_(pool) {
  KSIR_CHECK(!shards_.empty());
  KSIR_CHECK(router_ != nullptr && pool_ != nullptr);
  KSIR_CHECK(router_->num_shards() == shards_.size());
  const EngineConfig& config = shards_.front()->config();
  bucket_length_ = config.bucket_length;
  const Timestamp retention = config.archive_retention > 0
                                  ? config.archive_retention
                                  : config.window_length;
  prune_horizon_ = config.window_length + retention;
  for (const KsirEngine* shard : shards_) {
    KSIR_CHECK(shard->config().bucket_length == bucket_length_);
    KSIR_CHECK(shard->config().window_length == config.window_length);
  }
}

Status ShardedIngestor::AdvanceTo(Timestamp bucket_end,
                                  std::vector<SocialElement> bucket) {
  const Timestamp previous = now();
  if (bucket_end < previous) {
    return Status::InvalidArgument(
        "out-of-order bucket: bucket_end " + std::to_string(bucket_end) +
        " precedes service time " + std::to_string(previous));
  }
  if (bucket_end == previous && bucket.empty()) {
    return Status::FailedPrecondition(
        "no-op bucket: empty bucket at the current service time " +
        std::to_string(bucket_end));
  }

  // Validate the whole bucket before routing anything, so a rejected call
  // leaves the router untouched. The router tracks every id inside the
  // resurrectability horizon, which also catches cross-bucket duplicates.
  Timestamp prev_ts = previous;
  std::unordered_set<ElementId> bucket_ids;
  bucket_ids.reserve(bucket.size());
  for (const SocialElement& e : bucket) {
    if (e.ts <= previous || e.ts > bucket_end) {
      return Status::InvalidArgument(
          "element ts " + std::to_string(e.ts) + " outside bucket (" +
          std::to_string(previous) + ", " + std::to_string(bucket_end) + "]");
    }
    if (e.ts < prev_ts) {
      return Status::InvalidArgument("bucket must be sorted by ts");
    }
    prev_ts = e.ts;
    if (!bucket_ids.insert(e.id).second || router_->Knows(e.id)) {
      return Status::AlreadyExists("duplicate element id " +
                                   std::to_string(e.id));
    }
  }

  // Route (in ts order, so reference targets are routed before referrers)
  // and partition. Per-shard sub-buckets stay ts-sorted.
  const std::int64_t cross_before = router_->cross_shard_refs();
  const std::size_t ingested = bucket.size();
  std::vector<ElementId> routed_ids;
  routed_ids.reserve(bucket.size());
  std::vector<std::vector<SocialElement>> parts(shards_.size());
  for (SocialElement& e : bucket) {
    routed_ids.push_back(e.id);
    const std::size_t shard = router_->Route(e);
    parts[shard].push_back(std::move(e));
  }

  // Advance all shards in parallel; empty sub-buckets still advance the
  // shard clock (expiry must happen everywhere).
  WallTimer timer;
  std::vector<Status> statuses(shards_.size());
  TaskGroup group(pool_);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    group.Submit([this, i, bucket_end, &parts, &statuses]() {
      statuses[i] = shards_[i]->AdvanceTo(bucket_end, std::move(parts[i]));
    });
  }
  group.Wait();
  for (const Status& status : statuses) {
    if (!status.ok()) {
      // Roll the routing table back so the bucket's ids are not recorded
      // as placed (shards that accepted their sub-bucket keep it, though —
      // see the header contract).
      router_->Forget(routed_ids);
      return status;
    }
  }

  stats_.total_update_ms += timer.ElapsedMillis();
  ++stats_.buckets_processed;
  stats_.elements_ingested += static_cast<std::int64_t>(ingested);
  stats_.cross_shard_refs += router_->cross_shard_refs() - cross_before;
  router_->PruneOlderThan(bucket_end - prune_horizon_);
  return Status::OK();
}

Timestamp ShardedIngestor::now() const { return shards_.front()->now(); }

}  // namespace ksir
