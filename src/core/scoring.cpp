#include "core/scoring.h"

#include "common/check.h"
#include "common/math.h"

namespace ksir {

ScoringContext::ScoringContext(const TopicModel* model,
                               const ActiveWindow* window,
                               ScoringParams params)
    : model_(model), window_(window), params_(params) {
  KSIR_CHECK(model != nullptr);
  KSIR_CHECK(window != nullptr);
  KSIR_CHECK(params.lambda >= 0.0 && params.lambda <= 1.0);
  KSIR_CHECK(params.eta > 0.0);
  influence_factor_ = (1.0 - params_.lambda) / params_.eta;
}

double ScoringContext::Sigma(TopicId topic, WordId word,
                             std::int32_t frequency,
                             double topic_prob_e) const {
  if (topic_prob_e <= 0.0) return 0.0;
  const double p = model_->WordProb(topic, word) * topic_prob_e;
  return static_cast<double>(frequency) * EntropyWeight(p);
}

double ScoringContext::SemanticScore(TopicId topic,
                                     const SocialElement& e) const {
  return SemanticScore(topic, e, e.topics.Get(topic));
}

double ScoringContext::SemanticScore(TopicId topic, const SocialElement& e,
                                     double topic_prob_e) const {
  if (topic_prob_e <= 0.0) return 0.0;
  // sigma factors as -f·pw·pe·ln(pw·pe) = f·pe·(-pw·ln pw) - f·pw·pe·ln pe,
  // so summing over words needs two dot products against per-(topic, word)
  // tables (the -pw·ln pw half is precomputed in the model) and a single
  // log of pe — instead of one log per word. Words with pw = 0 contribute
  // zero to both accumulators, preserving Sigma's semantics.
  double entropy_sum = 0.0;
  double prob_sum = 0.0;
  for (const auto& [word, count] : e.doc.word_counts()) {
    entropy_sum += count * model_->WordEntropy(topic, word);
    prob_sum += count * model_->WordProb(topic, word);
  }
  return topic_prob_e * entropy_sum -
         topic_prob_e * std::log(topic_prob_e) * prob_sum;
}

double ScoringContext::InfluenceScore(TopicId topic,
                                      const SocialElement& e) const {
  return InfluenceScore(topic, e, e.topics.Get(topic));
}

double ScoringContext::InfluenceScore(TopicId topic, const SocialElement& e,
                                      double topic_prob_e) const {
  if (topic_prob_e <= 0.0) return 0.0;
  double score = 0.0;
  for (const Referrer& r : window_->ReferrersOf(e.id)) {
    const SocialElement* referrer = window_->Find(r.id);
    KSIR_DCHECK(referrer != nullptr);
    if (referrer == nullptr) continue;
    score += topic_prob_e * referrer->topics.Get(topic);
  }
  return score;
}

double ScoringContext::TopicScore(TopicId topic, const SocialElement& e) const {
  return TopicScore(topic, e, e.topics.Get(topic));
}

double ScoringContext::TopicScore(TopicId topic, const SocialElement& e,
                                  double topic_prob_e) const {
  if (topic_prob_e <= 0.0) return 0.0;
  return params_.lambda * SemanticScore(topic, e, topic_prob_e) +
         influence_factor_ * InfluenceScore(topic, e, topic_prob_e);
}

double ScoringContext::ElementScore(const SocialElement& e,
                                    const SparseVector& x) const {
  // Sparse-sparse merge over the query's and the element's supports: one
  // pass, no per-topic Get probes.
  double score = 0.0;
  const auto& qs = x.entries();
  const auto& es = e.topics.entries();
  std::size_t qi = 0;
  std::size_t ei = 0;
  while (qi < qs.size() && ei < es.size()) {
    if (qs[qi].first < es[ei].first) {
      ++qi;
    } else if (es[ei].first < qs[qi].first) {
      ++ei;
    } else {
      if (es[ei].second > 0.0) {
        score += qs[qi].second * TopicScore(qs[qi].first, e, es[ei].second);
      }
      ++qi;
      ++ei;
    }
  }
  return score;
}

std::vector<std::pair<TopicId, double>> ScoringContext::AllTopicScores(
    const SocialElement& e) const {
  std::vector<std::pair<TopicId, double>> scores;
  scores.reserve(e.topics.nnz());
  for (const auto& [topic, prob] : e.topics.entries()) {
    scores.emplace_back(topic, TopicScore(topic, e, prob));
  }
  return scores;
}

}  // namespace ksir
