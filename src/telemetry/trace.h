// Lightweight span tracing: a bounded buffer of (name, start, duration)
// events emitted by the RAII stage timers (telemetry.h) and exportable as
// chrome://tracing / Perfetto-compatible JSON.
//
// Sampling model: tracing every bucket/query would make the trace buffer
// the hot path, so the tracer records whole UNITS (one bucket apply, one
// query plan). SampleUnit() is called at each unit boundary and arms the
// tracer for every sample_period-th unit; stage scopes emit only while
// armed. The armed flag is process-wide and relaxed: concurrent units
// (queries racing an ingest) may ride along inside a sampled window, which
// is harmless — a trace is a sampled illustration, not an exact ledger.
// When the buffer fills, further events are counted as dropped rather than
// evicting older ones (the first trace of a run is usually the one that
// matters).
#ifndef KSIR_TELEMETRY_TRACE_H_
#define KSIR_TELEMETRY_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ksir {

/// One complete span ("ph":"X" in the chrome trace format). `name` must
/// point to static storage (stage names are string literals).
struct TraceEvent {
  const char* name = nullptr;
  /// Microseconds since the tracer's epoch (its construction).
  double ts_us = 0.0;
  double dur_us = 0.0;
  /// Folded thread id, stable per thread within a run.
  std::uint32_t tid = 0;
};

/// Bounded trace-event sink. Thread-safe; Emit is mutex-protected but only
/// runs on sampled units, so it never sits on the steady-state hot path.
class Tracer {
 public:
  /// A disabled tracer (enabled = false) ignores every call at one branch
  /// of cost. `sample_period` >= 1: every Nth unit is traced;
  /// `capacity` bounds the buffered events.
  Tracer(bool enabled, std::size_t sample_period, std::size_t capacity);

  bool enabled() const { return enabled_; }

  /// Marks a top-level unit boundary (bucket apply, query plan): arms the
  /// tracer for every sample_period-th unit.
  void SampleUnit() {
    if (!enabled_) return;
    const std::uint64_t unit =
        units_.fetch_add(1, std::memory_order_relaxed);
    armed_.store(unit % sample_period_ == 0, std::memory_order_relaxed);
  }

  /// True while the current sampled unit is being traced.
  bool armed() const {
    return enabled_ && armed_.load(std::memory_order_relaxed);
  }

  /// Records one complete span. No-op unless armed.
  void Emit(const char* name, std::chrono::steady_clock::time_point begin,
            std::chrono::steady_clock::time_point end);

  /// Copy of the buffered events (ts-ordered by emission).
  std::vector<TraceEvent> Events() const;

  std::int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  void Clear();

 private:
  const bool enabled_;
  const std::size_t sample_period_;
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> units_{0};
  std::atomic<bool> armed_{false};
  std::atomic<std::int64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace ksir

#endif  // KSIR_TELEMETRY_TRACE_H_
