file(REMOVE_RECURSE
  "CMakeFiles/ksir_stream.dir/src/stream/generator.cpp.o"
  "CMakeFiles/ksir_stream.dir/src/stream/generator.cpp.o.d"
  "CMakeFiles/ksir_stream.dir/src/stream/stream_io.cpp.o"
  "CMakeFiles/ksir_stream.dir/src/stream/stream_io.cpp.o.d"
  "libksir_stream.a"
  "libksir_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksir_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
