// Personalized query vectors (paper Section 3.2: "the personalized search
// [19] where the query vector is inferred from a user's recent posts").
//
// A UserProfile accumulates a user's posts and produces an interest vector:
// the exponentially time-decayed blend of the posts' topic distributions,
// truncated and renormalized like any other query vector.
#ifndef KSIR_TOPIC_USER_PROFILE_H_
#define KSIR_TOPIC_USER_PROFILE_H_

#include <cstdint>
#include <deque>

#include "common/sparse_vector.h"
#include "common/status.h"
#include "common/types.h"
#include "text/document.h"
#include "topic/inference.h"

namespace ksir {

/// Profile configuration.
struct UserProfileOptions {
  /// Half-life of a post's contribution, in stream time units.
  Timestamp decay_half_life = 24 * 3600;
  /// Oldest posts beyond this cap are dropped.
  std::size_t max_posts = 128;
  /// Interest-vector truncation threshold (as for element topic vectors).
  double sparsity_threshold = 0.05;
};

/// Per-user rolling interest model. Thread-compatible.
class UserProfile {
 public:
  /// `inferencer` must outlive the profile.
  explicit UserProfile(const TopicInferencer* inferencer,
                       UserProfileOptions options = {});

  /// Records a post; timestamps must be non-decreasing.
  Status AddPost(const Document& doc, Timestamp ts);

  /// The decay-weighted interest vector at time `now` (normalized).
  /// Fails when the profile has no usable posts yet.
  StatusOr<SparseVector> InterestVector(Timestamp now) const;

  std::size_t num_posts() const { return posts_.size(); }

 private:
  struct Post {
    SparseVector topics;
    Timestamp ts;
  };

  const TopicInferencer* inferencer_;
  UserProfileOptions options_;
  std::deque<Post> posts_;
  Timestamp last_ts_ = kMinTimestamp;
};

}  // namespace ksir

#endif  // KSIR_TOPIC_USER_PROFILE_H_
