// Figure 10: fraction of active elements evaluated by MTTS / MTTD with
// varying k.
//
// Expected shape (paper): both evaluate only a small percentage of the
// active elements (>= 98% pruned), growing roughly linearly with k; MTTD's
// ratio is higher than MTTS's (it retrieves more but re-evaluates less).
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ksir;
  using namespace ksir::bench;
  PrintBanner("Figure 10 - evaluated-element ratio vs k (MTTS, MTTD)",
              "EDBT'19 Fig. 10(a)-(c)");

  const std::size_t num_queries = NumQueries(GetScale());
  for (int which = 0; which < 3; ++which) {
    const Dataset dataset = MakeDataset(which);
    const auto engine = BuildAndFeed(dataset, MakeConfig(dataset));
    const auto workload = MakeWorkload(dataset, num_queries);
    std::printf("\n[%s]  active elements at query time: %zu\n",
                dataset.name.c_str(), engine->window().num_active());
    PrintHeaderRow("k", {"MTTS ratio %", "MTTD ratio %"});
    for (const int k : {5, 10, 15, 20, 25}) {
      const CellStats mtts =
          RunWorkload(*engine, workload, Algorithm::kMtts, k, 0.1);
      const CellStats mttd =
          RunWorkload(*engine, workload, Algorithm::kMttd, k, 0.1);
      PrintRow(std::to_string(k),
               {100.0 * mtts.mean_eval_ratio, 100.0 * mttd.mean_eval_ratio});
    }
  }
  return 0;
}
