// Table 6: quantitative effectiveness — information coverage and normalized
// influence of the five methods over a sample of keyword queries.
//
// Expected shape (paper): k-SIR best coverage everywhere; k-SIR and Sumblr
// dominate influence (only they model it), with k-SIR ahead.
#include <cstdio>

#include "bench_util.h"
#include "eval/metrics.h"
#include "search/div.h"
#include "search/rel.h"
#include "search/sumblr.h"
#include "search/tfidf.h"

int main() {
  using namespace ksir;
  using namespace ksir::bench;
  PrintBanner("Table 6 - quantitative coverage / influence",
              "EDBT'19 Table 6");

  constexpr int kResultSize = 10;
  const std::size_t num_queries = NumQueries(GetScale());
  for (int which = 0; which < 3; ++which) {
    const Dataset dataset = MakeDataset(which);
    const auto engine = BuildAndFeed(dataset, MakeConfig(dataset));
    const auto& window = engine->window();
    const TfIdfIndex tfidf = TfIdfIndex::Build(window);
    const auto workload = MakeWorkload(dataset, num_queries);

    struct Row {
      const char* name;
      double coverage = 0.0;
      double influence = 0.0;
    };
    Row rows[5] = {{"TF-IDF"}, {"DIV"}, {"Sumblr"}, {"REL"}, {"k-SIR"}};

    std::size_t counted = 0;
    for (const QuerySpec& spec : workload) {
      std::vector<std::vector<ElementId>> result_sets;
      result_sets.push_back(tfidf.TopK(spec.keywords, kResultSize));
      result_sets.push_back(DivTopK(tfidf, spec.keywords, kResultSize));
      result_sets.push_back(SumblrSummarize(
          window, tfidf, spec.keywords, kResultSize,
          dataset.stream.model.num_topics()));
      result_sets.push_back(RelevanceTopK(window, spec.x, kResultSize));
      KsirQuery query;
      query.k = kResultSize;
      query.x = spec.x;
      query.algorithm = Algorithm::kMttd;
      query.epsilon = 0.1;
      const auto ksir_result = engine->Query(query);
      KSIR_CHECK(ksir_result.ok());
      result_sets.push_back(ksir_result->element_ids);

      for (int m = 0; m < 5; ++m) {
        rows[m].coverage += CoverageScore(window, result_sets[m], spec.x);
        rows[m].influence +=
            NormalizedInfluence(window, result_sets[m], kResultSize);
      }
      ++counted;
    }

    // The paper scales coverage per query set; we report the mean raw
    // coverage normalized by the per-dataset maximum for comparability.
    double max_cov = 0.0;
    for (const Row& row : rows) max_cov = std::max(max_cov, row.coverage);
    std::printf("\n[%s]  (%zu queries, k = %d)\n", dataset.name.c_str(),
                counted, kResultSize);
    std::printf("%-10s %14s %14s\n", "method", "coverage", "influence");
    std::printf("------------------------------------------\n");
    for (const Row& row : rows) {
      std::printf("%-10s %14.4f %14.4f\n", row.name,
                  max_cov > 0 ? row.coverage / max_cov : 0.0,
                  row.influence / static_cast<double>(counted));
    }
  }
  return 0;
}
