#!/usr/bin/env python3
"""Bench-regression gate for the hot-path benchmark.

Compares the freshly produced BENCH_hotpath.json against the committed
baseline and fails (exit 1) when a production engine's p50 bucket-update
latency regressed by more than the threshold. Two paths are gated:

  * the serial production engine ("handle"; older baselines archive
    "batched" instead), always, and
  * the parallel staged engine ("parallel"), when both documents carry it
    AND report the same available_cores — the parallel path is
    bitwise-identical to the serial one by contract, so its wall-clock is
    a function of the core count and cross-hardware comparisons would
    gate on the machine, not the code. At mismatched core counts the gate
    falls back to an IN-RUN overhead bound instead of going dark: the
    fresh run's parallel p50 may not exceed the fresh run's serial p50 by
    more than the threshold (a lock slipped into the topic stage or an
    accidentally serialized stage trips this on any hardware).

Additionally, when the fresh document carries a "telemetry" section, its
IN-RUN counters-on overhead is gated: the fresh run measures the same
serial engine with telemetry off and at kCounters back to back, and the
overhead may not exceed TELEMETRY_OVERHEAD_LIMIT (2%) on BOTH the p50
and the total-time estimator — a real per-bucket cost shifts median and
mean together, while a single estimator above the bound is run-to-run
drift. On a single available core the bound is not resolvable at all
(background tasks serialize with the measured feed; observed +-8%
scatter between runs with bit-identical work counters), so such runs
report the ratios without gating. This is the telemetry layer's core
cost contract, checked on the run's own hardware so it never depends on
a baseline.

When the fresh document carries a "subscriptions" section, the standing-
query sweep is gated in-run as well: every paper-scale sweep row with
>= 10k registered subscriptions must show the indexed path evaluating at
least SUBSCRIPTION_MIN_REDUCTION (10x) fewer queries than the naive
registered-times-rounds count, and the measured naive reference must
equal that analytic count exactly (it is exact by construction; a
mismatch means the naive baseline silently stopped being naive).

When the fresh document carries a "kernels" section, the vectorized
kernel layer is gated in-run: the chunk-merge composite and the dense-dot
reduction must run at least KERNEL_MIN_SPEEDUP (1.2x) faster on the
runtime-dispatched arm than on the forced-scalar reference measured in
the same process. The chunk-merge bound is only enforced on the AVX2 arm
(the SSE2 arm vectorizes the copies but not the searches, so its
composite win is real but below the bound); dense_dot is gated on every
non-scalar arm. On AVX2 the standalone hybrid bound search
(lower_bound_keys) is additionally floored at 0.85x: the cutover sweep
(see kernels_avx2.cpp) showed the vector tail trades ~0.1x on this
synthetic random-probe row for +0.25x on the chunk_merge composite —
the shape the list apply actually runs — so the composite's 1.2x gate
is the binding contract for the bounds and the standalone floor exists
only to catch a catastrophic tail regression (e.g. a cutover pushed past
the 0.44x-at-64 cliff). A document whose active
ISA is "scalar" (KSIR_SIMD=OFF, or a CPU with no compiled arm) skips the
section cleanly.

When the fresh document carries a "thread_sweep" section, the parallel-
maintenance SCALING floor is evaluated: 4-thread p50 must be at least
PARALLEL_MIN_SCALING (1.25x) faster than the same run's 1-thread p50.
The floor only FAILS the gate when --require-scaling is passed (the
multi-core CI job) AND the run saw >= PARALLEL_SCALING_MIN_CORES (4)
available cores — a single-core runner cannot exercise the parallel
stages at all, so it reports the ratio and skips cleanly.

Comparisons only make sense at matching scale; a scale mismatch is
reported and skipped (exit 0) so the gate never silently compares apples
to oranges.

Usage: check_bench_regression.py BASELINE.json FRESH.json [THRESHOLD]
           [--require-scaling]
  THRESHOLD is the allowed relative regression, default 0.15 (= +15%).
  --require-scaling turns the thread-sweep scaling floor into a hard
  failure (given enough cores) instead of a report.
"""

import json
import sys

# Allowed counters-on p50 overhead vs. telemetry off, measured in-run.
TELEMETRY_OVERHEAD_LIMIT = 0.02

# Minimum indexed-vs-naive evaluation reduction for standing-query sweep
# rows with at least SUBSCRIPTION_GATE_MIN_REGISTERED subscriptions. Only
# enforced at paper scale: smaller scales shrink the stream, not the topic
# space, so their rows are smoke coverage, not the claimed regime.
SUBSCRIPTION_MIN_REDUCTION = 10.0
SUBSCRIPTION_GATE_MIN_REGISTERED = 10000

# Minimum in-run dispatched-vs-scalar speedup for the gated kernels.
KERNEL_MIN_SPEEDUP = 1.2
# chunk_merge is gated on these ISAs only (see module docstring);
# dense_dot is gated on every non-scalar ISA.
KERNEL_CHUNK_MERGE_ISAS = ("avx2",)
# Floor for the STANDALONE hybrid bound search row on AVX2. This row is
# deliberately not held to parity: the default cutover keeps the vector
# counting tail because it wins ~0.25x on the chunk_merge composite (the
# real list-apply shape, gated at 1.2x above) at the cost of ~0.1x on
# this synthetic tight-loop row (cutover sweep; see kernels_avx2.cpp).
# The floor only catches a catastrophically losing tail.
KERNEL_BOUND_MIN_PARITY = 0.85
KERNEL_BOUND_ISAS = ("avx2",)

# Parallel-maintenance scaling floor: 4-thread p50 vs. the same run's
# 1-thread p50, enforced only under --require-scaling on runners with at
# least PARALLEL_SCALING_MIN_CORES available cores.
PARALLEL_MIN_SCALING = 1.25
PARALLEL_SCALING_MIN_CORES = 4

# The serial production engine key, newest first: older baselines predate
# the handle path and archive the batched engine instead.
SERIAL_ENGINE_KEYS = ("handle", "batched")
PARALLEL_ENGINE_KEY = "parallel"


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def serial_p50_of(doc, path):
    engines = doc.get("engines", {})
    for key in SERIAL_ENGINE_KEYS:
        if key in engines:
            return key, engines[key]["bucket_update"]["p50_ms"]
    raise KeyError(f"{path}: no known engine key in {sorted(engines)}")


def check_pair(label, base_p50, fresh_p50, threshold):
    """Returns False when this engine's p50 regressed past the threshold."""
    if base_p50 <= 0.0:
        print(f"SKIP [{label}]: baseline p50 is {base_p50}")
        return True
    ratio = fresh_p50 / base_p50
    print(f"[{label}] baseline p50 = {base_p50:.6f} ms, "
          f"fresh p50 = {fresh_p50:.6f} ms, "
          f"ratio = {ratio:.3f} (limit {1.0 + threshold:.2f})")
    if ratio > 1.0 + threshold:
        print(f"FAIL [{label}]: p50 bucket-update regressed by "
              f"{(ratio - 1.0) * 100.0:.1f}% (> {threshold * 100.0:.0f}%)")
        return False
    return True


def main(argv):
    require_scaling = "--require-scaling" in argv[1:]
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, fresh_path = args[0], args[1]
    threshold = float(args[2]) if len(args) > 2 else 0.15

    baseline = load(baseline_path)
    fresh = load(fresh_path)

    base_scale = baseline.get("scale")
    fresh_scale = fresh.get("scale")
    if base_scale != fresh_scale:
        print(f"SKIP: scale mismatch (baseline={base_scale}, "
              f"fresh={fresh_scale}); nothing comparable")
        return 0

    base_key, base_p50 = serial_p50_of(baseline, baseline_path)
    fresh_key, fresh_p50 = serial_p50_of(fresh, fresh_path)
    ok = check_pair(f"serial {base_key}/{fresh_key}", base_p50, fresh_p50,
                    threshold)

    base_parallel = baseline.get("engines", {}).get(PARALLEL_ENGINE_KEY)
    fresh_parallel = fresh.get("engines", {}).get(PARALLEL_ENGINE_KEY)
    if base_parallel is None or fresh_parallel is None:
        print("NOTE: parallel engine absent from one document; "
              "serial gate only")
    else:
        base_cores = baseline.get("available_cores")
        fresh_cores = fresh.get("available_cores")
        if base_cores != fresh_cores:
            print(f"NOTE: core-count mismatch (baseline={base_cores}, "
                  f"fresh={fresh_cores}); gating in-run parallel overhead "
                  f"instead of cross-run p50")
            ok = check_pair(
                "parallel-vs-serial in-run overhead", fresh_p50,
                fresh_parallel["bucket_update"]["p50_ms"], threshold) and ok
        else:
            ok = check_pair(
                "parallel", base_parallel["bucket_update"]["p50_ms"],
                fresh_parallel["bucket_update"]["p50_ms"], threshold) and ok

    sweep = {row.get("maintenance_threads"): row.get("p50_ms", 0.0)
             for row in fresh.get("thread_sweep", [])}
    if 1 in sweep and 4 in sweep and sweep[4] > 0.0:
        scaling = sweep[1] / sweep[4]
        cores = fresh.get("available_cores")
        print(f"[thread sweep] 1-thread p50 = {sweep[1]:.6f} ms, "
              f"4-thread p50 = {sweep[4]:.6f} ms: {scaling:.2f}x scaling "
              f"(floor {PARALLEL_MIN_SCALING:.2f}x on >= "
              f"{PARALLEL_SCALING_MIN_CORES} cores)")
        if not require_scaling:
            print("NOTE [thread sweep]: scaling floor reported only "
                  "(pass --require-scaling to enforce)")
        elif cores is None or cores < PARALLEL_SCALING_MIN_CORES:
            print(f"SKIP [thread sweep]: {cores} available core(s) cannot "
                  f"exercise 4-way parallel maintenance; floor not gated")
        elif scaling < PARALLEL_MIN_SCALING:
            print(f"FAIL [thread sweep]: 4-thread p50 only {scaling:.2f}x "
                  f"over 1-thread (< {PARALLEL_MIN_SCALING:.2f}x) on "
                  f"{cores} cores")
            ok = False
    elif require_scaling:
        print("FAIL [thread sweep]: --require-scaling passed but the "
              "fresh document lacks usable 1- and 4-thread sweep rows")
        ok = False
    else:
        print("NOTE: no usable thread_sweep in the fresh document; "
              "scaling not reported")

    telemetry = fresh.get("telemetry")
    if telemetry is None:
        print("NOTE: no telemetry section in the fresh document; "
              "overhead gate skipped")
    else:
        ratio = telemetry.get("overhead_p50_ratio", 0.0)
        total_ratio = telemetry.get("overhead_total_ratio", 0.0)
        off_p50 = telemetry.get("off", {}).get("p50_ms", 0.0)
        print(f"[telemetry overhead] counters-on/off p50 ratio = "
              f"{ratio:.4f}, total ratio = {total_ratio:.4f} "
              f"(limit {1.0 + TELEMETRY_OVERHEAD_LIMIT:.2f}, "
              f"off p50 = {off_p50:.6f} ms)")
        if off_p50 < 0.005:
            # Below ~5us the per-bucket timer resolution dominates the
            # ratio; a smoke-scale run cannot resolve a 2% bound.
            print("SKIP [telemetry overhead]: off p50 too small to "
                  "resolve the bound")
        elif fresh.get("available_cores") == 1:
            # On a single hardware thread every background task (kernel
            # housekeeping included) serializes with the measured feed:
            # observed best-of p50 ratios scatter +-8% between runs whose
            # work counters are bit-identical, so a 2% bound is not
            # resolvable. Reported, not gated (same hardware-awareness as
            # the parallel gate's core-count check above).
            print("SKIP [telemetry overhead]: 1 available core cannot "
                  "resolve a 2% bound (single-run drift >> limit)")
        elif (ratio > 1.0 + TELEMETRY_OVERHEAD_LIMIT and
              total_ratio > 1.0 + TELEMETRY_OVERHEAD_LIMIT):
            # A real per-bucket telemetry cost shifts the median AND the
            # mean together; when only one estimator exceeds the bound the
            # excursion is drift (on a shared single-core box the best-of
            # p50 ratio scatters +-8% between runs whose work counters are
            # bit-identical), so both must agree to fail.
            print(f"FAIL [telemetry overhead]: counters-on overhead "
                  f"p50 {(ratio - 1.0) * 100.0:.2f}% / total "
                  f"{(total_ratio - 1.0) * 100.0:.2f}% both exceed "
                  f"{TELEMETRY_OVERHEAD_LIMIT * 100.0:.0f}%")
            ok = False
        elif ratio > 1.0 + TELEMETRY_OVERHEAD_LIMIT or \
                total_ratio > 1.0 + TELEMETRY_OVERHEAD_LIMIT:
            print("NOTE [telemetry overhead]: one estimator above the "
                  "bound, the other within it — measurement drift, not "
                  "gated")

    kernels = fresh.get("kernels")
    if kernels is None:
        print("NOTE: no kernels section in the fresh document; "
              "kernel speedup gate skipped")
    else:
        isa = kernels.get("isa", "scalar")
        results = kernels.get("results", {})
        if isa == "scalar":
            print("SKIP [kernels]: scalar dispatch only (KSIR_SIMD off or "
                  "no SIMD arm for this CPU); nothing to gate")
        else:
            print(f"[kernels] active ISA = {isa} "
                  f"(cpu: {fresh.get('cpu_features', '?')})")
            gated = {"dense_dot": KERNEL_MIN_SPEEDUP}
            if isa in KERNEL_CHUNK_MERGE_ISAS:
                gated["chunk_merge"] = KERNEL_MIN_SPEEDUP
            else:
                print(f"NOTE [kernels]: chunk_merge bound not enforced on "
                      f"the {isa} arm")
            if isa in KERNEL_BOUND_ISAS:
                gated["lower_bound_keys"] = KERNEL_BOUND_MIN_PARITY
            for name, row in results.items():
                speedup = row.get("speedup", 0.0)
                gate = name in gated
                print(f"[kernels] {name}: scalar {row.get('scalar_ns')} ns, "
                      f"dispatched {row.get('dispatched_ns')} ns, "
                      f"{speedup:.2f}x"
                      f"{f' (gated >= {gated[name]:.2f}x)' if gate else ''}")
            for name, floor in gated.items():
                row = results.get(name)
                if row is None:
                    print(f"FAIL [kernels]: gated kernel '{name}' missing "
                          f"from the results")
                    ok = False
                    continue
                if row.get("speedup", 0.0) < floor:
                    print(f"FAIL [kernels]: {name} dispatched arm only "
                          f"{row.get('speedup', 0.0):.2f}x over scalar "
                          f"(< {floor:.2f}x)")
                    ok = False

    subscriptions = fresh.get("subscriptions")
    if subscriptions is None:
        print("NOTE: no subscriptions section in the fresh document; "
              "standing-query gate skipped")
    else:
        naive = subscriptions.get("naive_reference", {})
        measured = naive.get("evaluations")
        expected = naive.get("expected_evaluations")
        if measured != expected:
            print(f"FAIL [subscriptions]: naive reference measured "
                  f"{measured} evaluations, expected registered x rounds "
                  f"= {expected}")
            ok = False
        gated_rows = 0
        for row in subscriptions.get("sweep", []):
            registered = row.get("registered", 0)
            reduction = row.get("eval_reduction", 0.0)
            gate = (fresh_scale == "paper" and
                    registered >= SUBSCRIPTION_GATE_MIN_REGISTERED)
            print(f"[subscriptions] {registered} registered: "
                  f"{row.get('evaluations')} evaluations vs "
                  f"{row.get('naive_evaluations')} naive "
                  f"({reduction:.1f}x fewer"
                  f"{', gated' if gate else ''})")
            if not gate:
                continue
            gated_rows += 1
            if reduction < SUBSCRIPTION_MIN_REDUCTION:
                print(f"FAIL [subscriptions]: {registered} registered "
                      f"reduced evaluations only {reduction:.1f}x "
                      f"(< {SUBSCRIPTION_MIN_REDUCTION:.0f}x)")
                ok = False
        if fresh_scale == "paper" and gated_rows == 0:
            print(f"FAIL [subscriptions]: paper-scale document has no "
                  f"sweep row with >= {SUBSCRIPTION_GATE_MIN_REGISTERED} "
                  f"registered subscriptions")
            ok = False

    if not ok:
        return 1
    print("OK: within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
