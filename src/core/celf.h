// Batch submodular-maximization baselines over the full active set:
// CELF (lazy greedy, Leskovec et al. 2007) and the plain greedy of
// Nemhauser et al. 1978. Both are (1 - 1/e)-approximate; CELF is the
// paper's strongest-quality baseline.
#ifndef KSIR_CORE_CELF_H_
#define KSIR_CORE_CELF_H_

#include <vector>

#include "core/query.h"
#include "core/scoring.h"
#include "window/active_window.h"

namespace ksir {

/// Lazy greedy: evaluates every active element once up front, then uses
/// cached gains as upper bounds.
QueryResult RunCelf(const ScoringContext& ctx, const ActiveWindow& window,
                    const KsirQuery& query);

/// RunCelf restricted to `candidate_ids` (ids not active in `window` are
/// skipped). Used by the sharded service's merge step over the union of
/// per-shard candidates.
QueryResult RunCelfOverCandidates(const ScoringContext& ctx,
                                  const ActiveWindow& window,
                                  const KsirQuery& query,
                                  const std::vector<ElementId>& candidate_ids);

/// Plain greedy: k passes of full marginal-gain recomputation. O(k * n)
/// evaluations; used as a test oracle for CELF equivalence.
QueryResult RunGreedy(const ScoringContext& ctx, const ActiveWindow& window,
                      const KsirQuery& query);

}  // namespace ksir

#endif  // KSIR_CORE_CELF_H_
