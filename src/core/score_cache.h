// Per-element decomposition of delta_i(e) into its immutable and mutable
// halves (Eq. 2):
//
//   delta_i(e) = lambda * R_i(e) + ((1 - lambda) / eta) * I_{i,t}(e)
//
// R_i(e) depends only on the element's own words and topic vector, both
// frozen at ingestion, so it is computed exactly once per (element, topic)
// when the element enters A_t (or re-enters it by resurrection). I_{i,t}(e)
// changes only by whole influence edges: when referrer r arrives,
// I_{i,t}(e) += p_i(e) * p_i(r) on every shared topic; when r expires the
// same term is subtracted. The cache therefore turns Algorithm 1's
// reposition step from a full O(|words| * |topics|) rescore plus an
// O(|I_t(e)|) referrer scan into an O(|shared topics|) update.
//
// Each TopicHalves row additionally carries the pipeline's position state:
// `listed`, the exact score currently sitting in the topic's ranked list
// (the old key of the next reposition), and `handle`, the RankedList
// position hint minted at insertion and refreshed by every reposition. The
// cache entry is thus the single per-(element, topic) record the whole
// window -> cache -> maintainer -> ranked-list data flow reads and writes —
// no layer re-derives position or listed score by hashing.
//
// The cache is an implementation detail of IndexMaintainer; it trusts the
// maintainer to feed it every window change exactly once and in order
// (erase expired, insert inserted/resurrected, then apply the edge spans
// carried by the window report).
#ifndef KSIR_CORE_SCORE_CACHE_H_
#define KSIR_CORE_SCORE_CACHE_H_

#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/flat_hash_map.h"
#include "common/small_vector.h"
#include "common/stamped_accumulator.h"
#include "common/types.h"
#include "core/ranked_list.h"
#include "core/scoring.h"
#include "stream/element.h"

namespace ksir {

/// Cached score halves of every indexed element.
class ScoreCache {
 public:
  /// One support topic of one element. `semantic` is immutable after
  /// Insert; `influence` tracks I_{i,t}(e) incrementally. Field order keeps
  /// the edge-application working set (topic, p_i(e), influence) in one
  /// contiguous span — the maintainer folds every bucket's edge deltas
  /// into these rows.
  struct TopicHalves {
    TopicId topic;
    double topic_prob;  // p_i(e), kept to avoid re-probing the element
    double influence;   // I_{i,t}(e)
    double semantic;    // R_i(e)
    /// The composed score currently sitting in this topic's ranked list:
    /// the exact old key of the next reposition, and the basis for eliding
    /// repositions whose tuple would not change (an expired referrer
    /// sharing no topics with the element moves nothing).
    double listed;
    /// Position hint into the topic's ranked list; minted at insertion,
    /// refreshed by every reposition that moves the element.
    RankedList::Handle handle;
  };
  using TopicList = SmallVector<TopicHalves, 4>;

  static TopicList* FromSlot(void* slot) {
    return static_cast<TopicList*>(slot);
  }

  /// `ctx` must outlive the cache.
  explicit ScoreCache(const ScoringContext* ctx);

  /// Entries are pool-allocated; live ones are destroyed here.
  ~ScoreCache();

  ScoreCache(const ScoreCache&) = delete;
  ScoreCache& operator=(const ScoreCache&) = delete;

  /// (Re)computes both halves for every topic in e's support: R_i(e) by the
  /// one-and-only full word scan, I_{i,t}(e) from the window's current
  /// referrer set. Replaces any previous entry (resurrection). Returns the
  /// fresh entry so the caller can seed the handles without a second probe;
  /// entries are pool-allocated, so the reference stays stable for the
  /// element's whole indexed lifetime (the maintainer parks it in the
  /// window's user slot and never probes for it again).
  /// Equivalent to AllocateEntry + ComputeHalves with the cache's own
  /// accumulator — the split the parallel maintenance pipeline uses.
  TopicList& Insert(const SocialElement& e);

  /// Serial half of the parallel insert path: creates (or replaces, on
  /// resurrection) the entry and lays out one row per support topic with
  /// `topic` and `topic_prob` filled and the score halves zeroed. Touches
  /// the id table and the pool — the single-threaded part.
  TopicList& AllocateEntry(const SocialElement& e);

  /// Pure compute half: fills semantic / influence / listed of every row
  /// laid out by AllocateEntry, reading only state that is immutable during
  /// index maintenance (the element, the model, the window's referrer
  /// sets). `acc` is the caller's dense scratch — the parallel stage runs
  /// this concurrently for DISJOINT elements, one accumulator per worker.
  /// Composes bitwise the same doubles as Insert.
  void ComputeHalves(const SocialElement& e, TopicList* topics,
                     StampedAccumulator* acc) const;

  /// Drops an expired element. Missing ids are ignored (an element may
  /// expire and be garbage-collected across refresh modes).
  void Erase(ElementId id);

  bool Contains(ElementId id) const { return entries_.contains(id); }

  /// Entry of a present element, or nullptr.
  const TopicList* Find(ElementId id) const;

  /// The cached halves of a present element, for the maintainer: it applies
  /// the window report's edge spans, composes scores straight into its
  /// per-topic pending runs and refreshes `listed` / `handle` as it queues.
  TopicList& MutableHalves(ElementId id);

  std::size_t size() const { return entries_.size(); }

 private:
  const ScoringContext* ctx_;
  /// id -> pool-stable entry. The map is consulted once per element
  /// lifetime on each end (insert / erase) plus by the id-keyed reference
  /// paths; the handle pipeline reaches entries through the carried slot.
  FlatHashMap<ElementId, TopicList*> entries_;
  ObjectPool<TopicList> pool_;
  /// Dense per-topic accumulator of Insert's one-pass influence
  /// computation (stamp-cleared per element, sized lazily).
  StampedAccumulator acc_;
};

}  // namespace ksir

#endif  // KSIR_CORE_SCORE_CACHE_H_
