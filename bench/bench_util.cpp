#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/math.h"
#include "common/rng.h"

namespace ksir::bench {

Scale GetScale() {
  const char* env = std::getenv("KSIR_BENCH_SCALE");
  if (env == nullptr) return Scale::kSmall;
  if (std::strcmp(env, "smoke") == 0) return Scale::kSmoke;
  if (std::strcmp(env, "paper") == 0) return Scale::kPaper;
  return Scale::kSmall;
}

double ElementFactor(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return 0.15;
    case Scale::kSmall:
      return 1.0;
    case Scale::kPaper:
      return 8.0;
  }
  return 1.0;
}

std::size_t NumQueries(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return 5;
    case Scale::kSmall:
      return 30;
    case Scale::kPaper:
      return 100;
  }
  return 30;
}

double CalibrateEta(const GeneratedStream& stream, Timestamp window_length) {
  // Mean singleton semantic score: sum over the element's topic support of
  // R_i(e), which only needs the model (no window).
  const TopicModel& model = stream.model;
  double semantic_sum = 0.0;
  for (const SocialElement& e : stream.elements) {
    for (const auto& [topic, p_e] : e.topics.entries()) {
      for (const auto& [word, count] : e.doc.word_counts()) {
        const double p = model.WordProb(topic, word) * p_e;
        semantic_sum += static_cast<double>(count) * EntropyWeight(p);
      }
    }
  }

  // Mean singleton influence: one backward pass over references restricted
  // to the window length.
  std::unordered_map<ElementId, const SocialElement*> by_id;
  by_id.reserve(stream.elements.size());
  for (const SocialElement& e : stream.elements) by_id[e.id] = &e;
  double influence_sum = 0.0;
  for (const SocialElement& e : stream.elements) {
    for (ElementId ref : e.refs) {
      const auto it = by_id.find(ref);
      if (it == by_id.end()) continue;
      const SocialElement& target = *it->second;
      if (e.ts - target.ts >= window_length) continue;
      influence_sum += SparseVector::Dot(e.topics, target.topics);
    }
  }
  if (semantic_sum <= 0.0) return 1.0;
  const double eta = influence_sum / semantic_sum;
  return std::max(eta, 1e-4);
}

Dataset MakeDataset(int which, int num_topics) {
  const double factor = ElementFactor(GetScale());
  StreamProfile profile;
  switch (which) {
    case 0:
      profile = AMinerSimProfile(factor);
      break;
    case 1:
      profile = RedditSimProfile(factor);
      break;
    default:
      profile = TwitterSimProfile(factor);
      break;
  }
  profile.num_topics = num_topics;
  auto stream = GenerateStream(profile);
  KSIR_CHECK(stream.ok());
  Dataset dataset{profile.name, std::move(stream).value(), 1.0};
  dataset.eta = CalibrateEta(dataset.stream);
  return dataset;
}

std::vector<Dataset> MakeAllDatasets(int num_topics) {
  std::vector<Dataset> datasets;
  for (int which = 0; which < 3; ++which) {
    datasets.push_back(MakeDataset(which, num_topics));
  }
  return datasets;
}

std::vector<QuerySpec> MakeWorkload(const Dataset& dataset, std::size_t count,
                                    std::uint64_t seed) {
  // The paper draws 1-5 keywords "randomly from the vocabulary" (uniform).
  // Most of the vocabulary is topic-core tail words, so uniform draws yield
  // topically focused queries; a light sqrt-frequency weight keeps a dash
  // of realism (users type words that exist in the stream) without letting
  // ubiquitous background words dominate.
  const Vocabulary& vocab = dataset.stream.vocab;
  std::vector<double> weights(vocab.size());
  for (std::size_t w = 0; w < vocab.size(); ++w) {
    weights[w] = std::sqrt(static_cast<double>(
        vocab.OccurrenceCount(static_cast<WordId>(w)) + 1));
  }
  AliasTable sampler(weights);
  Rng rng(seed);
  InferenceOptions options;
  options.iterations = 20;
  options.burn_in = 8;
  TopicInferencer inferencer(&dataset.stream.model, options);

  std::vector<QuerySpec> workload;
  workload.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    QuerySpec spec;
    const std::size_t num_keywords = 1 + rng.NextUint64(5);
    for (std::size_t j = 0; j < num_keywords; ++j) {
      spec.keywords.push_back(static_cast<WordId>(sampler.Sample(&rng)));
    }
    spec.x = inferencer.InferSparse(Document::FromWordIds(spec.keywords), i);
    spec.x.NormalizeL1();
    workload.push_back(std::move(spec));
  }
  return workload;
}

EngineConfig MakeConfig(const Dataset& dataset, Timestamp window_length,
                        RefreshMode mode) {
  EngineConfig config;
  config.scoring.lambda = 0.5;
  config.scoring.eta = dataset.eta;
  config.window_length = window_length;
  config.bucket_length = 15 * 60;
  config.refresh_mode = mode;
  return config;
}

std::unique_ptr<KsirEngine> BuildAndFeed(const Dataset& dataset,
                                         const EngineConfig& config) {
  auto engine = std::make_unique<KsirEngine>(config, &dataset.stream.model);
  KSIR_CHECK(engine->Append(dataset.stream.elements).ok());
  return engine;
}

CellStats RunWorkload(const KsirEngine& engine,
                      const std::vector<QuerySpec>& workload,
                      Algorithm algorithm, std::int32_t k, double epsilon) {
  CellStats stats;
  const double active = static_cast<double>(engine.window().num_active());
  for (const QuerySpec& spec : workload) {
    KsirQuery query;
    query.k = k;
    query.x = spec.x;
    query.algorithm = algorithm;
    query.epsilon = epsilon;
    const auto result = engine.Query(query);
    KSIR_CHECK(result.ok());
    stats.mean_time_ms += result->stats.elapsed_ms;
    stats.mean_score += result->score;
    if (active > 0) {
      stats.mean_eval_ratio +=
          static_cast<double>(result->stats.num_evaluated) / active;
    }
    ++stats.queries;
  }
  if (stats.queries > 0) {
    const double n = static_cast<double>(stats.queries);
    stats.mean_time_ms /= n;
    stats.mean_score /= n;
    stats.mean_eval_ratio /= n;
  }
  return stats;
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  const char* scale = "small";
  switch (GetScale()) {
    case Scale::kSmoke:
      scale = "smoke";
      break;
    case Scale::kSmall:
      scale = "small";
      break;
    case Scale::kPaper:
      scale = "paper";
      break;
  }
  std::printf("================================================================"
              "===============\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s   (KSIR_BENCH_SCALE=%s)\n", paper_ref.c_str(),
              scale);
  std::printf("================================================================"
              "===============\n");
}

void PrintHeaderRow(const std::string& axis,
                    const std::vector<std::string>& labels) {
  std::printf("%-14s", axis.c_str());
  for (const auto& label : labels) std::printf(" %16s", label.c_str());
  std::printf("\n");
  std::printf("--------------");
  for (std::size_t i = 0; i < labels.size(); ++i) std::printf("-----------------");
  std::printf("\n");
}

void PrintRow(const std::string& axis_value, const std::vector<double>& values,
              int precision) {
  std::printf("%-14s", axis_value.c_str());
  for (double v : values) std::printf(" %16.*f", precision, v);
  std::printf("\n");
}

}  // namespace ksir::bench
