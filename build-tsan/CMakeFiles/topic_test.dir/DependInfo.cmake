
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/topic_test.cpp" "CMakeFiles/topic_test.dir/tests/topic_test.cpp.o" "gcc" "CMakeFiles/topic_test.dir/tests/topic_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/CMakeFiles/ksir_service.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/ksir_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/ksir_search.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/ksir_eval.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/ksir_window.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/ksir_stream.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/ksir_topic.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/ksir_text.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/ksir_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
