// Vector with inline storage for the first N elements.
//
// The window keeps one referrer list per active element and the score cache
// one topic-entry list per element; both are tiny in the common case (< 2
// topics per element, small in-degrees) but numerous, so per-list heap nodes
// and the extra indirection dominate. SmallVector stores up to N elements
// inside the object and falls back to the heap beyond that, like
// absl::InlinedVector / llvm::SmallVector in spirit.
#ifndef KSIR_COMMON_SMALL_VECTOR_H_
#define KSIR_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ksir {

template <typename T, std::size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) {
    reserve(other.size_);
    std::uninitialized_copy(other.begin(), other.end(), data_);
    size_ = other.size_;
  }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      std::uninitialized_copy(other.begin(), other.end(), data_);
      size_ = other.size_;
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      DestroyAll();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { DestroyAll(); }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T* data() { return data_; }
  const T* data() const { return data_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }
  bool is_inline() const { return data_ == InlineData(); }

  void reserve(std::size_t n) {
    if (n > capacity_) Grow(n);
  }

  void clear() {
    std::destroy(begin(), end());
    size_ = 0;
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      // Construct into the new buffer BEFORE releasing the old one so that
      // arguments referencing this vector's own elements (v.push_back(
      // v.front())) stay valid, matching std::vector's guarantee.
      const std::size_t new_capacity = capacity_ * 2;
      T* new_data = static_cast<T*>(::operator new(new_capacity * sizeof(T)));
      T* slot = new_data + size_;
      new (slot) T(std::forward<Args>(args)...);
      std::uninitialized_move(begin(), end(), new_data);
      std::destroy(begin(), end());
      if (!is_inline()) ::operator delete(data_);
      data_ = new_data;
      capacity_ = new_capacity;
      ++size_;
      return *slot;
    }
    T* slot = data_ + size_;
    new (slot) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    data_[--size_].~T();
  }

  /// Erases [first, last), shifting the tail left.
  iterator erase(const_iterator first, const_iterator last) {
    T* f = data_ + (first - data_);
    T* l = data_ + (last - data_);
    T* new_end = std::move(l, end(), f);
    std::destroy(new_end, end());
    size_ = static_cast<std::size_t>(new_end - data_);
    return f;
  }

  iterator erase(const_iterator pos) { return erase(pos, pos + 1); }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_storage_); }
  const T* InlineData() const {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  void Grow(std::size_t min_capacity) {
    const std::size_t new_capacity = std::max(min_capacity, capacity_ * 2);
    T* new_data = static_cast<T*>(::operator new(new_capacity * sizeof(T)));
    std::uninitialized_move(begin(), end(), new_data);
    std::destroy(begin(), end());
    if (!is_inline()) ::operator delete(data_);
    data_ = new_data;
    capacity_ = new_capacity;
  }

  void DestroyAll() {
    std::destroy(begin(), end());
    if (!is_inline()) ::operator delete(data_);
    data_ = InlineData();
    capacity_ = N;
    size_ = 0;
  }

  void MoveFrom(SmallVector&& other) noexcept {
    if (!other.is_inline()) {
      // Steal the heap buffer.
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.InlineData();
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      data_ = InlineData();
      capacity_ = N;
      std::uninitialized_move(other.begin(), other.end(), data_);
      size_ = other.size_;
      other.clear();
    }
  }

  alignas(T) std::byte inline_storage_[N * sizeof(T)];
  T* data_ = InlineData();
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace ksir

#endif  // KSIR_COMMON_SMALL_VECTOR_H_
