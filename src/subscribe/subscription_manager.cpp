#include "subscribe/subscription_manager.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace ksir {

namespace {

/// Rank of `id` in `result` (selection order), or -1. Linear: |result| <= k
/// and k is small.
std::int32_t RankOf(const std::vector<ElementId>& result, ElementId id) {
  for (std::size_t i = 0; i < result.size(); ++i) {
    if (result[i] == id) return static_cast<std::int32_t>(i);
  }
  return -1;
}

std::uint64_t MixBits(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return FlatHash::Mix(bits);
}

}  // namespace

SubscriptionManager::SubscriptionManager(Evaluator evaluator,
                                         SubscriptionMode mode,
                                         Telemetry* telemetry)
    : evaluator_(std::move(evaluator)),
      mode_(mode),
      owned_telemetry_(telemetry == nullptr ? std::make_unique<Telemetry>()
                                            : nullptr),
      telemetry_(telemetry != nullptr ? telemetry : owned_telemetry_.get()) {
  KSIR_CHECK(evaluator_ != nullptr);
  MetricRegistry& reg = telemetry_->registry();
  registered_counter_ = reg.GetCounter("ksir_sub_registered_total",
                                       "Standing subscriptions registered");
  activated_counter_ = reg.GetCounter(
      "ksir_sub_activated_total",
      "Subscription evaluations delivered (woken by touched topics, fresh "
      "registration, or the naive baseline)");
  skipped_counter_ = reg.GetCounter(
      "ksir_sub_skipped_total",
      "Subscriptions skipped by the inverted topic index (no touched topic "
      "in the query support)");
  evaluations_counter_ = reg.GetCounter(
      "ksir_sub_evaluations_total",
      "Standing-query evaluator invocations (a shared group counts once)");
  shared_counter_ = reg.GetCounter(
      "ksir_sub_shared_hits_total",
      "Subscription results served from another identical subscription's "
      "evaluation in the same group");
  deltas_counter_ = reg.GetCounter(
      "ksir_sub_deltas_total",
      "Delta events (enter/leave/reorder) emitted to subscription callbacks");
  evaluate_hist_ = reg.GetHistogram(
      "ksir_sub_evaluate_seconds",
      "One standing-query evaluation round (all activated groups)");
}

SubscriptionManager::~SubscriptionManager() {
  KSIR_CHECK(!evaluating_);
  for (Subscription* sub : order_) sub_pool_.Destroy(sub);
  for (Group* group : groups_) group_pool_.Destroy(group);
}

bool SubscriptionManager::AlwaysActive(const KsirQuery& query) {
  // SieveStreaming admits zero-gain elements once a candidate set passes
  // phi/2 (needed <= 0), and BruteForce breaks score ties by enumeration
  // order — for both, a result can change without any supported topic
  // moving, so topic-indexed skipping would diverge from the naive
  // baseline. Empty supports post nowhere and must still surface their
  // validation error every round.
  return query.x.empty() || query.algorithm == Algorithm::kSieveStreaming ||
         query.algorithm == Algorithm::kBruteForce;
}

bool SubscriptionManager::SameQuery(const KsirQuery& a, const KsirQuery& b) {
  return a.k == b.k && a.algorithm == b.algorithm && a.epsilon == b.epsilon &&
         a.x == b.x;
}

std::uint64_t SubscriptionManager::HashQuery(const KsirQuery& query) {
  std::uint64_t h = FlatHash::Mix(
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(query.k)) << 8) ^
      static_cast<std::uint64_t>(query.algorithm));
  h ^= MixBits(query.epsilon);
  for (const auto& [index, value] : query.x.entries()) {
    h = FlatHash::Mix(
        h ^ FlatHash::Mix(static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(index)) ^
                          MixBits(value)));
  }
  return h;
}

std::int64_t SubscriptionManager::Subscribe(KsirQuery query,
                                            SubscriptionCallback callback) {
  KSIR_CHECK(callback != nullptr);
  Subscription* sub = sub_pool_.Create();
  sub->id = next_id_++;
  sub->callback = std::move(callback);
  subs_.emplace(sub->id, sub);
  registered_counter_->Add(1);
  ++totals_.registered;
  if (evaluating_) {
    // Deferred attach: the new subscription is first evaluated next round
    // (attaching now could wake it mid-round, before its group's turn).
    pending_adds_.push_back(PendingAdd{sub, std::move(query)});
  } else {
    Attach(sub, std::move(query));
  }
  return sub->id;
}

std::int64_t SubscriptionManager::Register(KsirQuery query,
                                           LegacyCallback callback) {
  KSIR_CHECK(callback != nullptr);
  return Subscribe(
      std::move(query),
      [callback = std::move(callback)](const SubscriptionUpdate& update) {
        callback(update.subscription_id, *update.result,
                 update.first || update.set_changed);
      });
}

bool SubscriptionManager::Unsubscribe(std::int64_t id) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return false;
  Subscription* sub = it->second;
  subs_.erase(id);
  sub->alive = false;  // stops callbacks immediately, even mid-round
  if (evaluating_) {
    pending_removes_.push_back(sub);
  } else {
    Detach(sub);
  }
  return true;
}

void SubscriptionManager::Attach(Subscription* sub, KsirQuery query) {
  sub->order_slot = static_cast<std::uint32_t>(order_.size());
  order_.push_back(sub);
  Group* group = FindOrCreateGroup(std::move(query));
  sub->member_slot = static_cast<std::uint32_t>(group->members.size());
  group->members.push_back(sub);
  sub->group = group;
  if (!group->has_fresh) {
    group->has_fresh = true;
    fresh_groups_.push_back(group);
  }
}

SubscriptionManager::Group* SubscriptionManager::FindOrCreateGroup(
    KsirQuery query) {
  const std::uint64_t hash = HashQuery(query);
  std::vector<Group*>& bucket = groups_by_hash_[hash];
  for (Group* group : bucket) {
    if (SameQuery(group->query, query)) return group;
  }
  Group* group = group_pool_.Create();
  group->query = std::move(query);
  group->always_active = AlwaysActive(group->query);
  group->group_slot = static_cast<std::uint32_t>(groups_.size());
  groups_.push_back(group);
  bucket.push_back(group);
  if (group->always_active) {
    group->always_slot = static_cast<std::int32_t>(always_active_groups_.size());
    always_active_groups_.push_back(group);
  } else {
    index_.Add(group);
  }
  return group;
}

void SubscriptionManager::Detach(Subscription* sub) {
  KSIR_CHECK(!evaluating_);
  if (sub->group == nullptr) {
    // A deferred add that was unsubscribed before it ever attached.
    sub_pool_.Destroy(sub);
    return;
  }
  Subscription* moved_order = order_.back();
  order_[sub->order_slot] = moved_order;
  moved_order->order_slot = sub->order_slot;
  order_.pop_back();
  Group* group = sub->group;
  Subscription* moved_member = group->members.back();
  group->members[sub->member_slot] = moved_member;
  moved_member->member_slot = sub->member_slot;
  group->members.pop_back();
  if (group->members.empty()) DestroyGroup(group);
  sub_pool_.Destroy(sub);
}

void SubscriptionManager::DestroyGroup(Group* group) {
  const std::uint64_t hash = HashQuery(group->query);
  const auto it = groups_by_hash_.find(hash);
  KSIR_CHECK(it != groups_by_hash_.end());
  std::vector<Group*>& bucket = it->second;
  const auto pos = std::find(bucket.begin(), bucket.end(), group);
  KSIR_CHECK(pos != bucket.end());
  *pos = bucket.back();
  bucket.pop_back();
  if (bucket.empty()) groups_by_hash_.erase(hash);
  if (group->always_active) {
    Group* moved = always_active_groups_.back();
    always_active_groups_[static_cast<std::size_t>(group->always_slot)] =
        moved;
    moved->always_slot = group->always_slot;
    always_active_groups_.pop_back();
  } else {
    index_.Remove(group);
  }
  Group* moved_group = groups_.back();
  groups_[group->group_slot] = moved_group;
  moved_group->group_slot = group->group_slot;
  groups_.pop_back();
  if (group->has_fresh) {
    const auto fresh = std::find(fresh_groups_.begin(), fresh_groups_.end(),
                                 group);
    KSIR_CHECK(fresh != fresh_groups_.end());
    *fresh = fresh_groups_.back();
    fresh_groups_.pop_back();
  }
  group_pool_.Destroy(group);
}

void SubscriptionManager::ApplyDeferred() {
  // Adds first (a dead pending add is destroyed by its queued remove; the
  // remove list is processed after, so the order of a subscribe +
  // unsubscribe pair within one round never resurrects the entry).
  for (PendingAdd& add : pending_adds_) {
    if (!add.sub->alive) continue;
    Attach(add.sub, std::move(add.query));
  }
  pending_adds_.clear();
  for (Subscription* sub : pending_removes_) Detach(sub);
  pending_removes_.clear();
}

Status SubscriptionManager::EvaluateAll(std::uint64_t epoch) {
  return RunRound(nullptr, epoch);
}

Status SubscriptionManager::EvaluateAffected(const AdvanceSummary& summary) {
  if (mode_ == SubscriptionMode::kNaive) return EvaluateAll(summary.epoch);
  return RunRound(&summary, summary.epoch);
}

std::size_t SubscriptionManager::EmitUpdate(Subscription* sub,
                                            const QueryResult& result,
                                            std::uint64_t epoch) {
  const std::vector<ElementId>& next = result.element_ids;
  const std::vector<ElementId>& prev = sub->last_result;
  const bool first = !sub->evaluated_once;
  delta_scratch_.clear();
  reorder_scratch_.clear();
  bool set_changed = false;
  if (first) {
    set_changed = !next.empty();
    for (std::size_t j = 0; j < next.size(); ++j) {
      delta_scratch_.push_back(
          SubscriptionDelta{SubscriptionDelta::Kind::kEnter, next[j], -1,
                            static_cast<std::int32_t>(j)});
    }
  } else {
    for (std::size_t i = 0; i < prev.size(); ++i) {
      if (RankOf(next, prev[i]) < 0) {
        delta_scratch_.push_back(
            SubscriptionDelta{SubscriptionDelta::Kind::kLeave, prev[i],
                              static_cast<std::int32_t>(i), -1});
        set_changed = true;
      }
    }
    for (std::size_t j = 0; j < next.size(); ++j) {
      const std::int32_t old_rank = RankOf(prev, next[j]);
      const auto new_rank = static_cast<std::int32_t>(j);
      if (old_rank < 0) {
        delta_scratch_.push_back(SubscriptionDelta{
            SubscriptionDelta::Kind::kEnter, next[j], -1, new_rank});
        set_changed = true;
      } else if (old_rank != new_rank) {
        reorder_scratch_.push_back(SubscriptionDelta{
            SubscriptionDelta::Kind::kReorder, next[j], old_rank, new_rank});
      }
    }
    delta_scratch_.insert(delta_scratch_.end(), reorder_scratch_.begin(),
                          reorder_scratch_.end());
  }
  sub->last_result.assign(next.begin(), next.end());
  sub->evaluated_once = true;
  const std::size_t num_deltas = delta_scratch_.size();
  SubscriptionUpdate update;
  update.subscription_id = sub->id;
  update.epoch = epoch;
  update.first = first;
  update.set_changed = set_changed;
  update.result = &result;
  update.deltas = delta_scratch_.data();
  update.num_deltas = num_deltas;
  sub->callback(update);
  return num_deltas;
}

Status SubscriptionManager::RunRound(const AdvanceSummary* summary,
                                     std::uint64_t epoch) {
  // No nested rounds: a callback may mutate the registry, not evaluate.
  KSIR_CHECK(!evaluating_);
  evaluating_ = true;
  StageScope scope(telemetry_, evaluate_hist_, "sub.evaluate");
  Status first_error = Status::OK();
  const auto eligible = static_cast<std::int64_t>(order_.size());
  std::int64_t activated = 0;
  std::int64_t evaluations = 0;
  std::int64_t shared = 0;
  std::int64_t deltas = 0;

  // One evaluator call serves every (eligible) member of the group — the
  // shared ranked-list pass. `fresh_only` restricts the fan-out to
  // never-evaluated members (a group woken only because of a fresh
  // registration must not re-notify its settled members).
  const auto evaluate_group = [&](Group* group, bool fresh_only) {
    std::int64_t fanned = 0;
    for (Subscription* sub : group->members) {
      if (sub->alive && (!fresh_only || !sub->evaluated_once)) ++fanned;
    }
    if (fanned == 0) return;
    activated += fanned;
    StatusOr<QueryResult> result = evaluator_(group->query);
    ++evaluations;
    if (!result.ok()) {
      if (first_error.ok()) first_error = result.status();
      return;
    }
    if (fanned > 1) shared += fanned - 1;
    // Index-based fan-out: a callback's Subscribe may grow the pending
    // list but never group->members mid-round.
    for (std::size_t m = 0; m < group->members.size(); ++m) {
      Subscription* sub = group->members[m];
      if (!sub->alive || (fresh_only && sub->evaluated_once)) continue;
      deltas += static_cast<std::int64_t>(
          EmitUpdate(sub, result.value(), epoch));
    }
  };

  fresh_scratch_.clear();
  fresh_scratch_.swap(fresh_groups_);

  if (summary == nullptr) {
    // Naive reference round: one evaluation per subscription, no sharing,
    // no skipping (the legacy EvaluateAll semantics, and the baseline the
    // differential tests compare the indexed path against).
    for (std::size_t i = 0; i < static_cast<std::size_t>(eligible); ++i) {
      Subscription* sub = order_[i];
      if (!sub->alive) continue;
      ++activated;
      StatusOr<QueryResult> result = evaluator_(sub->group->query);
      ++evaluations;
      if (!result.ok()) {
        if (first_error.ok()) first_error = result.status();
        continue;
      }
      deltas +=
          static_cast<std::int64_t>(EmitUpdate(sub, result.value(), epoch));
    }
  } else {
    ++round_;
    activated_scratch_.clear();
    for (const AdvanceSummary::TopicTouch& touch : summary->topics) {
      index_.ForEachPosted(touch.topic, [&](Group* group) {
        if (group->round_stamp == round_) return;
        group->round_stamp = round_;
        activated_scratch_.push_back(group);
      });
    }
    for (Group* group : always_active_groups_) {
      if (group->round_stamp == round_) continue;
      group->round_stamp = round_;
      activated_scratch_.push_back(group);
    }
    for (Group* group : activated_scratch_) {
      evaluate_group(group, /*fresh_only=*/false);
    }
    // Fresh registrations fire their first event this round even when
    // their topics were untouched.
    for (Group* group : fresh_scratch_) {
      if (group->round_stamp == round_) continue;  // already ran above
      evaluate_group(group, /*fresh_only=*/true);
    }
  }

  // Rebuild the fresh list: only groups whose first evaluation failed (or
  // never ran) keep their members pending.
  for (Group* group : fresh_scratch_) {
    group->has_fresh = false;
    for (Subscription* sub : group->members) {
      if (sub->alive && !sub->evaluated_once) {
        group->has_fresh = true;
        break;
      }
    }
    if (group->has_fresh) fresh_groups_.push_back(group);
  }
  fresh_scratch_.clear();

  evaluating_ = false;
  ApplyDeferred();

  const std::int64_t skipped =
      summary == nullptr ? 0 : std::max<std::int64_t>(0, eligible - activated);
  if (activated > 0) activated_counter_->Add(activated);
  if (skipped > 0) skipped_counter_->Add(skipped);
  if (evaluations > 0) evaluations_counter_->Add(evaluations);
  if (shared > 0) shared_counter_->Add(shared);
  if (deltas > 0) deltas_counter_->Add(deltas);
  totals_.activated += activated;
  totals_.skipped += skipped;
  totals_.evaluations += evaluations;
  totals_.shared_hits += shared;
  totals_.deltas += deltas;
  return first_error;
}

}  // namespace ksir
