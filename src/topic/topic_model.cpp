#include "topic/topic_model.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

#include "common/math.h"

namespace ksir {

StatusOr<TopicModel> TopicModel::FromMatrix(
    std::vector<std::vector<double>> topic_word,
    std::vector<double> topic_prior) {
  if (topic_word.empty()) {
    return Status::InvalidArgument("topic model needs at least one topic");
  }
  const std::size_t m = topic_word.front().size();
  if (m == 0) {
    return Status::InvalidArgument("topic model needs a nonempty vocabulary");
  }
  for (auto& row : topic_word) {
    if (row.size() != m) {
      return Status::InvalidArgument("ragged topic-word matrix");
    }
    for (double p : row) {
      if (p < 0.0 || std::isnan(p)) {
        return Status::InvalidArgument("negative or NaN word probability");
      }
    }
    NormalizeInPlace(&row);
  }
  if (topic_prior.empty()) {
    topic_prior.assign(topic_word.size(),
                       1.0 / static_cast<double>(topic_word.size()));
  } else if (topic_prior.size() != topic_word.size()) {
    return Status::InvalidArgument("topic prior size mismatch");
  } else {
    NormalizeInPlace(&topic_prior);
  }

  TopicModel model;
  model.topic_word_ = std::move(topic_word);
  model.topic_prior_ = std::move(topic_prior);
  model.vocab_size_ = m;
  model.word_entropy_.reserve(model.topic_word_.size());
  for (const auto& row : model.topic_word_) {
    std::vector<double> entropy(row.size());
    for (std::size_t w = 0; w < row.size(); ++w) {
      entropy[w] = row[w] > 0.0 ? -row[w] * std::log(row[w]) : 0.0;
    }
    model.word_entropy_.push_back(std::move(entropy));
  }
  return model;
}

std::vector<WordId> TopicModel::TopWords(TopicId topic, std::size_t n) const {
  const auto& row = TopicRow(topic);
  std::vector<WordId> ids(row.size());
  std::iota(ids.begin(), ids.end(), 0);
  const std::size_t take = std::min(n, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(take),
                    ids.end(), [&row](WordId a, WordId b) {
                      const double pa = row[static_cast<std::size_t>(a)];
                      const double pb = row[static_cast<std::size_t>(b)];
                      if (pa != pb) return pa > pb;
                      return a < b;
                    });
  ids.resize(take);
  return ids;
}

Status TopicModel::Save(std::ostream* out) const {
  KSIR_CHECK(out != nullptr);
  (*out) << "ksir-topic-model 1\n"
         << num_topics() << ' ' << vocab_size_ << '\n';
  out->precision(17);
  for (double p : topic_prior_) (*out) << p << ' ';
  (*out) << '\n';
  for (const auto& row : topic_word_) {
    for (double p : row) (*out) << p << ' ';
    (*out) << '\n';
  }
  if (!out->good()) return Status::IOError("failed writing topic model");
  return Status::OK();
}

StatusOr<TopicModel> TopicModel::Load(std::istream* in) {
  KSIR_CHECK(in != nullptr);
  std::string magic;
  int version = 0;
  if (!((*in) >> magic >> version) || magic != "ksir-topic-model" ||
      version != 1) {
    return Status::IOError("bad topic model header");
  }
  std::size_t z = 0;
  std::size_t m = 0;
  if (!((*in) >> z >> m) || z == 0 || m == 0) {
    return Status::IOError("bad topic model dimensions");
  }
  std::vector<double> prior(z);
  for (auto& p : prior) {
    if (!((*in) >> p)) return Status::IOError("truncated topic prior");
  }
  std::vector<std::vector<double>> matrix(z, std::vector<double>(m));
  for (auto& row : matrix) {
    for (auto& p : row) {
      if (!((*in) >> p)) return Status::IOError("truncated topic matrix");
    }
  }
  return FromMatrix(std::move(matrix), std::move(prior));
}

}  // namespace ksir
