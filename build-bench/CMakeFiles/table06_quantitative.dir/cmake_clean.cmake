file(REMOVE_RECURSE
  "CMakeFiles/table06_quantitative.dir/bench/table06_quantitative.cpp.o"
  "CMakeFiles/table06_quantitative.dir/bench/table06_quantitative.cpp.o.d"
  "table06_quantitative"
  "table06_quantitative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_quantitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
