// Tests of the telemetry layer: sharded counters/gauges/histograms and
// their cross-shard merge, percentile extraction, registry get-or-create
// semantics, snapshot consistency under concurrent recording (the TSan
// target), the sampling tracer, the exposition formats, and an end-to-end
// check that a live service run populates the metric catalogue with
// plausible values.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "paper_fixture.h"
#include "service/service.h"
#include "telemetry/exposition.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace ksir {
namespace {

using ::ksir::testing::BalancedQueryVector;
using ::ksir::testing::PaperElements;
using ::ksir::testing::PaperEngineConfig;
using ::ksir::testing::PaperTopicModel;

// ---- counters and gauges ---------------------------------------------------

TEST(CounterTest, SumsAcrossThreadsAndShards) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter]() {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kAddsPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(42);
  EXPECT_EQ(gauge.Value(), 42);
  gauge.Add(-2);
  EXPECT_EQ(gauge.Value(), 40);
}

// ---- histograms ------------------------------------------------------------

TEST(HistogramTest, BucketOfMapsBoundariesInclusively) {
  // counts[i] covers (bounds[i-1], bounds[i]]: an exact bound lands in its
  // own bucket, just past it lands in the next.
  for (std::size_t i = 0; i < kNumLatencyBounds; ++i) {
    EXPECT_EQ(Histogram::BucketOf(kLatencyBoundsSeconds[i]), i);
  }
  EXPECT_EQ(Histogram::BucketOf(0.0), 0u);
  EXPECT_EQ(Histogram::BucketOf(kLatencyBoundsSeconds[0] * 1.01), 1u);
  // Past the top bound -> overflow bucket.
  EXPECT_EQ(Histogram::BucketOf(100.0), kNumLatencyBounds);
}

TEST(HistogramTest, SnapshotMergesShardsRecordedByManyThreads) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 1000;
  const double value = 1e-3;  // bucket index BucketOf(1e-3)
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, value]() {
      for (int i = 0; i < kRecordsPerThread; ++i) hist.Record(value);
    });
  }
  for (auto& thread : threads) thread.join();
  const HistogramSnapshot snapshot = hist.Snapshot();
  EXPECT_EQ(snapshot.count, kThreads * kRecordsPerThread);
  EXPECT_EQ(snapshot.counts[Histogram::BucketOf(value)], snapshot.count);
  EXPECT_NEAR(snapshot.sum, kThreads * kRecordsPerThread * value,
              1e-9 * kThreads * kRecordsPerThread);
}

TEST(HistogramTest, PercentileInterpolatesInsideCoveringBucket) {
  Histogram hist;
  // 100 samples in the (2.56e-4, 5.12e-4] bucket and 100 in
  // (1.024e-3, 2.048e-3]: p25 must fall in the first bucket's range, p75
  // in the second's, and both inside the global recorded range.
  for (int i = 0; i < 100; ++i) hist.Record(4e-4);
  for (int i = 0; i < 100; ++i) hist.Record(1.5e-3);
  const HistogramSnapshot snapshot = hist.Snapshot();
  const double p25 = snapshot.Percentile(0.25);
  const double p75 = snapshot.Percentile(0.75);
  EXPECT_GT(p25, 2.56e-4);
  EXPECT_LE(p25, 5.12e-4);
  EXPECT_GT(p75, 1.024e-3);
  EXPECT_LE(p75, 2.048e-3);
  EXPECT_LT(p25, p75);
}

TEST(HistogramTest, PercentileEdgeCases) {
  Histogram empty;
  EXPECT_EQ(empty.Snapshot().Percentile(0.5), 0.0);

  Histogram overflow;
  overflow.Record(50.0);  // above the top bound
  // Overflow-bucket quantiles clamp to the top finite bound.
  EXPECT_DOUBLE_EQ(overflow.Snapshot().Percentile(0.5),
                   kLatencyBoundsSeconds[kNumLatencyBounds - 1]);
}

// ---- registry --------------------------------------------------------------

TEST(MetricRegistryTest, GetOrCreateReturnsSameObjectForSameName) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("ksir_test_total", "help");
  Counter* b = registry.GetCounter("ksir_test_total");
  EXPECT_EQ(a, b);
  a->Add(3);
  b->Add(4);
  EXPECT_EQ(a->Value(), 7);
  // Distinct names are distinct objects.
  EXPECT_NE(registry.GetCounter("ksir_other_total"), a);
}

TEST(MetricRegistryTest, SnapshotIsSortedAndFindable) {
  MetricRegistry registry;
  registry.GetCounter("zeta_total")->Add(1);
  registry.GetGauge("alpha_depth")->Set(5);
  registry.GetHistogram("mid_seconds")->Record(1e-3);
  const RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 3u);
  EXPECT_TRUE(std::is_sorted(snapshot.metrics.begin(), snapshot.metrics.end(),
                             [](const MetricSnapshot& a,
                                const MetricSnapshot& b) {
                               return a.name < b.name;
                             }));
  const MetricSnapshot* gauge = snapshot.Find("alpha_depth");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->type, MetricType::kGauge);
  EXPECT_EQ(gauge->value, 5);
  const MetricSnapshot* hist = snapshot.Find("mid_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->type, MetricType::kHistogram);
  EXPECT_EQ(hist->histogram.count, 1);
  EXPECT_EQ(snapshot.Find("absent"), nullptr);
}

// The TSan target: snapshots taken while every metric type is being
// hammered must be race-free and observe internally consistent cells.
TEST(MetricRegistryTest, SnapshotDuringConcurrentRecordingChurn) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("churn_total");
  Gauge* gauge = registry.GetGauge("churn_depth");
  Histogram* hist = registry.GetHistogram("churn_seconds");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Add(1);
        gauge->Add(1);
        hist->Record(1e-4);
      }
    });
  }
  std::int64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    const RegistrySnapshot snapshot = registry.Snapshot();
    const MetricSnapshot* h = snapshot.Find("churn_seconds");
    ASSERT_NE(h, nullptr);
    // Monotone across snapshots, and bucket counts always sum to count.
    EXPECT_GE(h->histogram.count, last_count);
    last_count = h->histogram.count;
    std::int64_t bucket_sum = 0;
    for (const std::int64_t c : h->histogram.counts) bucket_sum += c;
    EXPECT_EQ(bucket_sum, h->histogram.count);
  }
  stop.store(true);
  for (auto& writer : writers) writer.join();
  const RegistrySnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.Find("churn_total")->value, counter->Value());
}

// ---- tracer and stage scopes -----------------------------------------------

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer(/*enabled=*/false, /*sample_period=*/1, /*capacity=*/16);
  tracer.SampleUnit();
  EXPECT_FALSE(tracer.armed());
  const auto now = std::chrono::steady_clock::now();
  tracer.Emit("stage", now, now);
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(TracerTest, SamplePeriodArmsEveryNthUnit) {
  Tracer tracer(/*enabled=*/true, /*sample_period=*/3, /*capacity=*/16);
  std::vector<bool> armed;
  for (int i = 0; i < 6; ++i) {
    tracer.SampleUnit();
    armed.push_back(tracer.armed());
  }
  EXPECT_EQ(armed, (std::vector<bool>{true, false, false, true, false,
                                      false}));
}

TEST(TracerTest, BufferBoundsAndCountsDrops) {
  Tracer tracer(/*enabled=*/true, /*sample_period=*/1, /*capacity=*/2);
  tracer.SampleUnit();
  const auto now = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) tracer.Emit("stage", now, now);
  EXPECT_EQ(tracer.Events().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3);
  tracer.Clear();
  EXPECT_TRUE(tracer.Events().empty());
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(StageScopeTest, RecordsOnlyWhenTimingEnabled) {
  Telemetry off;  // default config: kOff
  Histogram* off_hist = off.registry().GetHistogram("off_seconds");
  { StageScope scope(&off, off_hist, "stage"); }
  EXPECT_EQ(off_hist->Snapshot().count, 0);
  { StageScope scope(nullptr, nullptr, "stage"); }  // must be a safe no-op

  TelemetryConfig config;
  config.level = TelemetryLevel::kCounters;
  Telemetry on(config);
  Histogram* on_hist = on.registry().GetHistogram("on_seconds");
  { StageScope scope(&on, on_hist, "stage"); }
  const HistogramSnapshot snapshot = on_hist->Snapshot();
  EXPECT_EQ(snapshot.count, 1);
  EXPECT_GE(snapshot.sum, 0.0);
  // kCounters still emits no trace events.
  EXPECT_TRUE(on.tracer().Events().empty());
}

TEST(StageScopeTest, TracingLevelEmitsSpansForSampledUnits) {
  TelemetryConfig config;
  config.level = TelemetryLevel::kTracing;
  config.trace_sample_period = 1;
  Telemetry telemetry(config);
  Histogram* hist = telemetry.registry().GetHistogram("traced_seconds");
  telemetry.tracer().SampleUnit();
  { StageScope scope(&telemetry, hist, "traced.stage"); }
  const std::vector<TraceEvent> events = telemetry.tracer().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "traced.stage");
  EXPECT_GE(events[0].dur_us, 0.0);
}

// ---- exposition ------------------------------------------------------------

TEST(ExpositionTest, PrometheusTextShape) {
  MetricRegistry registry;
  registry.GetCounter("ksir_demo_total", "A demo counter")->Add(7);
  registry.GetGauge("ksir_demo_depth")->Set(3);
  Histogram* hist = registry.GetHistogram("ksir_demo_seconds", "A demo hist");
  hist->Record(1e-3);
  hist->Record(100.0);  // overflow bucket
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# HELP ksir_demo_total A demo counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ksir_demo_total counter"), std::string::npos);
  EXPECT_NE(text.find("ksir_demo_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ksir_demo_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ksir_demo_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ksir_demo_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ksir_demo_seconds_count 2"), std::string::npos);
  // Cumulative buckets: the finite top bound has seen only the 1e-3 sample.
  EXPECT_NE(text.find("ksir_demo_seconds_bucket{le=\"8.388608\"} 1"),
            std::string::npos);
}

TEST(ExpositionTest, MetricsJsonShape) {
  MetricRegistry registry;
  registry.GetCounter("ksir_demo_total")->Add(7);
  registry.GetHistogram("ksir_demo_seconds")->Record(1e-3);
  const std::string json = MetricsJson(registry);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"ksir_demo_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(ExpositionTest, ChromeTraceJsonShape) {
  Tracer tracer(/*enabled=*/true, /*sample_period=*/1, /*capacity=*/16);
  tracer.SampleUnit();
  const auto begin = std::chrono::steady_clock::now();
  tracer.Emit("demo.stage", begin, begin + std::chrono::microseconds(5));
  const std::string json = ChromeTraceJson(tracer);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"demo.stage\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

// ---- end-to-end: a live service populates the catalogue --------------------

class TelemetryIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServiceConfig config;
    config.engine = PaperEngineConfig();
    config.num_shards = 2;
    config.telemetry.level = TelemetryLevel::kCounters;
    auto service = KsirService::Create(config, &model_);
    ASSERT_TRUE(service.ok()) << service.status().message();
    service_ = std::move(service).value();
    ASSERT_TRUE(service_->Append(PaperElements()).ok());
    KsirQuery query;
    query.k = 2;
    query.x = BalancedQueryVector();
    ASSERT_TRUE(service_->Query(query).ok());
    ASSERT_TRUE(service_->Query(query).ok());  // second hits the cache
  }

  TopicModel model_ = PaperTopicModel();
  std::unique_ptr<KsirService> service_;
};

TEST_F(TelemetryIntegrationTest, IngestAndQueryPopulateExpectedMetrics) {
  const RegistrySnapshot snapshot =
      service_->telemetry().registry().Snapshot();
  const auto counter = [&](const char* name) {
    const MetricSnapshot* m = snapshot.Find(name);
    EXPECT_NE(m, nullptr) << name;
    return m != nullptr ? m->value : -1;
  };
  const auto hist_count = [&](const char* name) {
    const MetricSnapshot* m = snapshot.Find(name);
    EXPECT_NE(m, nullptr) << name;
    return m != nullptr ? m->histogram.count : -1;
  };

  // Ingestion: 8 paper elements over 8 buckets, every element fresh once.
  EXPECT_EQ(counter("ksir_ingest_elements_total"), 8);
  EXPECT_EQ(counter("ksir_ingest_buckets_total"), 8);
  // >= 8: every element is fresh once, plus any archive resurrections
  // (e.g. a late reference re-activating an expired element).
  EXPECT_GE(counter("ksir_maintainer_fresh_total"), 8);
  EXPECT_GT(counter("ksir_maintainer_repositions_total"), 0);
  EXPECT_GT(counter("ksir_ingest_update_nanos_total"), 0);

  // Query path: two queries, one planner miss + one cache hit.
  EXPECT_EQ(counter("ksir_service_queries_total"), 2);
  EXPECT_EQ(counter("ksir_planner_plans_total"), 1);
  EXPECT_EQ(counter("ksir_cache_hits_total"), 1);
  EXPECT_EQ(counter("ksir_cache_misses_total"), 1);
  EXPECT_EQ(counter("ksir_planner_merge_wins_total") +
                counter("ksir_planner_best_shard_wins_total"),
            1);

  // Stage timing histograms: every bucket apply times its stages; with 2
  // shards and 8 buckets there are 16 applies.
  EXPECT_EQ(hist_count("ksir_maintainer_bucket_apply_seconds"), 16);
  EXPECT_EQ(hist_count("ksir_maintainer_stage_expiry_seconds"), 16);
  // Regression check: the serial apply path must time its run gather too
  // (it used to report a permanent 0.000 gather stage because only the
  // parallel path owned a gather scope).
  EXPECT_EQ(hist_count("ksir_maintainer_stage_gather_seconds"), 16);
  EXPECT_EQ(hist_count("ksir_maintainer_stage_list_apply_seconds"), 16);
  EXPECT_EQ(hist_count("ksir_engine_advance_seconds"), 16);
  EXPECT_EQ(hist_count("ksir_ingest_bucket_seconds"), 8);
  EXPECT_EQ(hist_count("ksir_planner_plan_seconds"), 1);
  EXPECT_EQ(hist_count("ksir_planner_shard_fanout_seconds_0"), 1);
  EXPECT_EQ(hist_count("ksir_planner_shard_fanout_seconds_1"), 1);
  EXPECT_EQ(hist_count("ksir_service_query_seconds"), 2);
  EXPECT_EQ(hist_count("ksir_service_cache_lookup_seconds"), 2);

  // The decomposed stages must sum to (at most) the whole bucket apply:
  // the stage scopes nest inside the bucket-apply scope, so their total
  // can never exceed it (plus timer-resolution noise).
  const auto hist_sum = [&](const char* name) {
    const MetricSnapshot* m = snapshot.Find(name);
    return m != nullptr ? m->histogram.sum : 0.0;
  };
  const double stage_sum = hist_sum("ksir_maintainer_stage_expiry_seconds") +
                           hist_sum("ksir_maintainer_stage_score_seconds") +
                           hist_sum("ksir_maintainer_stage_gather_seconds") +
                           hist_sum("ksir_maintainer_stage_list_apply_seconds");
  const double apply_sum = hist_sum("ksir_maintainer_bucket_apply_seconds");
  EXPECT_GT(apply_sum, 0.0);
  EXPECT_GT(stage_sum, 0.0);
  EXPECT_LE(stage_sum, apply_sum * 1.05 + 1e-6);
}

TEST_F(TelemetryIntegrationTest, StatsViewsMatchRegistryCounters) {
  // The legacy stats structs are thin views over the same registry
  // counters — they must agree exactly.
  const ServiceStats stats = service_->stats();
  const RegistrySnapshot snapshot =
      service_->telemetry().registry().Snapshot();
  EXPECT_EQ(stats.cache.hits, snapshot.Find("ksir_cache_hits_total")->value);
  EXPECT_EQ(stats.cache.misses,
            snapshot.Find("ksir_cache_misses_total")->value);
  EXPECT_EQ(stats.planner.plans,
            snapshot.Find("ksir_planner_plans_total")->value);
  EXPECT_EQ(stats.ingestion.elements_ingested,
            snapshot.Find("ksir_ingest_elements_total")->value);
  EXPECT_EQ(stats.ingestion.buckets_processed,
            snapshot.Find("ksir_ingest_buckets_total")->value);
}

TEST_F(TelemetryIntegrationTest, ExpositionsRenderLiveMetrics) {
  const std::string text = service_->MetricsText();
  EXPECT_NE(text.find("ksir_maintainer_bucket_apply_seconds_count"),
            std::string::npos);
  EXPECT_NE(text.find("ksir_service_queries_total 2"), std::string::npos);
  const std::string json = service_->MetricsJsonDump();
  EXPECT_NE(json.find("ksir_planner_plan_seconds"), std::string::npos);
}

TEST(TelemetryTracingTest, ServiceTracingProducesSpans) {
  TopicModel model = PaperTopicModel();
  ServiceConfig config;
  config.engine = PaperEngineConfig();
  config.num_shards = 2;
  config.telemetry.level = TelemetryLevel::kTracing;
  config.telemetry.trace_sample_period = 1;  // trace every unit
  auto service = KsirService::Create(config, &model);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->Append(PaperElements()).ok());
  KsirQuery query;
  query.k = 2;
  query.x = BalancedQueryVector();
  ASSERT_TRUE((*service)->Query(query).ok());
  const std::vector<TraceEvent> events =
      (*service)->telemetry().tracer().Events();
  ASSERT_FALSE(events.empty());
  const auto has = [&](const std::string& name) {
    return std::any_of(events.begin(), events.end(),
                       [&](const TraceEvent& e) { return name == e.name; });
  };
  EXPECT_TRUE(has("maint.bucket_apply"));
  EXPECT_TRUE(has("planner.plan"));
  EXPECT_TRUE(has("planner.fanout"));
  const std::string json = (*service)->TraceJson();
  EXPECT_NE(json.find("maint.bucket_apply"), std::string::npos);
}

// Telemetry off (the default) must keep every histogram silent while the
// stats counters still work — the cost-parity contract of kOff.
TEST(TelemetryOffTest, DefaultLevelRecordsCountersButNoTimings) {
  TopicModel model = PaperTopicModel();
  ServiceConfig config;
  config.engine = PaperEngineConfig();
  config.num_shards = 2;
  auto service = KsirService::Create(config, &model);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->Append(PaperElements()).ok());
  KsirQuery query;
  query.k = 2;
  query.x = BalancedQueryVector();
  ASSERT_TRUE((*service)->Query(query).ok());
  const RegistrySnapshot snapshot =
      (*service)->telemetry().registry().Snapshot();
  EXPECT_EQ(snapshot.Find("ksir_ingest_elements_total")->value, 8);
  EXPECT_EQ(
      snapshot.Find("ksir_maintainer_bucket_apply_seconds")->histogram.count,
      0);
  EXPECT_EQ(snapshot.Find("ksir_service_query_seconds")->histogram.count, 0);
  // Stats (and their total_update_ms) keep working without timing.
  EXPECT_GT((*service)->stats().ingestion.total_update_ms, 0.0);
}

}  // namespace
}  // namespace ksir
