// k-SIR query and result types (paper Definition 3.3).
#ifndef KSIR_CORE_QUERY_H_
#define KSIR_CORE_QUERY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/sparse_vector.h"
#include "common/types.h"

namespace ksir {

/// Query-processing algorithm selector.
enum class Algorithm {
  /// Multi-Topic ThresholdStream (Algorithm 2); (1/2 - eps)-approximate.
  kMtts,
  /// Multi-Topic ThresholdDescend (Algorithm 3); (1 - 1/e - eps)-approximate.
  kMttd,
  /// Lazy greedy over all active elements; (1 - 1/e)-approximate baseline.
  kCelf,
  /// Plain greedy (no lazy evaluation); used as a test oracle.
  kGreedy,
  /// Streaming sieve over all active elements; (1/2 - eps)-approximate.
  kSieveStreaming,
  /// k elements with the highest singleton scores; 1/k-approximate.
  kTopkRepresentative,
  /// Exhaustive search; exact but exponential (tests only).
  kBruteForce,
};

/// Stable display name ("MTTS", "CELF", ...).
std::string_view AlgorithmName(Algorithm algorithm);

/// An ad-hoc k-SIR query q_t(k, x) issued against the engine's current time.
struct KsirQuery {
  /// Maximum result size k (>= 1).
  std::int32_t k = 10;
  /// Sparse query vector x (nonnegative; normalized to sum to 1 by
  /// convention, though the algorithms only require nonnegativity).
  SparseVector x;
  Algorithm algorithm = Algorithm::kMttd;
  /// Approximation parameter of MTTS / MTTD / SieveStreaming.
  double epsilon = 0.1;
};

/// Work counters of one query execution.
struct QueryStats {
  /// Distinct elements whose score delta(e, x) was computed.
  std::size_t num_evaluated = 0;
  /// Tuples popped from the ranked lists (MTTS/MTTD/Top-k only).
  std::size_t num_retrieved = 0;
  /// Marginal-gain evaluations Delta(e | S).
  std::size_t num_gain_evaluations = 0;
  /// MTTS: candidates maintained; MTTD: threshold rounds executed.
  std::size_t num_candidates_or_rounds = 0;
  /// Wall-clock duration of the query.
  double elapsed_ms = 0.0;
};

/// Result set of a k-SIR query.
struct QueryResult {
  /// Selected element ids in selection order (|ids| <= k).
  std::vector<ElementId> element_ids;
  /// f(S, x) of the returned set.
  double score = 0.0;
  QueryStats stats;
};

}  // namespace ksir

#endif  // KSIR_CORE_QUERY_H_
