// Embedded English stop-word list (the paper removes stop words and noise
// words in preprocessing; Table 3 reports vocabulary size before/after).
#ifndef KSIR_TEXT_STOPWORDS_H_
#define KSIR_TEXT_STOPWORDS_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_set>

namespace ksir {

/// Immutable set of English stop words (SMART-style list, lowercased).
class StopWordSet {
 public:
  /// Returns the process-wide default English list.
  static const StopWordSet& English();

  /// Builds an empty set (useful for tests / non-English corpora).
  StopWordSet() = default;

  /// Adds a word (expects lowercase).
  void Add(std::string_view word);

  bool Contains(std::string_view word) const;
  std::size_t size() const { return words_.size(); }

 private:
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view sv) const {
      return std::hash<std::string_view>{}(sv);
    }
  };
  std::unordered_set<std::string, SvHash, std::equal_to<>> words_;
};

}  // namespace ksir

#endif  // KSIR_TEXT_STOPWORDS_H_
