file(REMOVE_RECURSE
  "CMakeFiles/fig10_eval_ratio_vs_k.dir/bench/fig10_eval_ratio_vs_k.cpp.o"
  "CMakeFiles/fig10_eval_ratio_vs_k.dir/bench/fig10_eval_ratio_vs_k.cpp.o.d"
  "fig10_eval_ratio_vs_k"
  "fig10_eval_ratio_vs_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_eval_ratio_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
