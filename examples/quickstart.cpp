// Quickstart: the paper's running example end to end.
//
// Builds the eight tweets of Table 1 with the two-topic model of
// Tables 1(b)/1(c), feeds them through the streaming engine (T = 4, L = 1,
// lambda = 0.5, eta = 2), and answers the two k-SIR queries of Example 3.4.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "stream/element.h"
#include "topic/topic_model.h"

namespace {

using namespace ksir;  // NOLINT(build/namespaces) - example brevity

struct Tweet {
  ElementId id;
  Timestamp ts;
  const char* text;
  std::vector<WordId> words;
  double p1, p2;
  std::vector<ElementId> refs;
};

const std::vector<Tweet>& PaperTweets() {
  static const auto* const kTweets = new std::vector<Tweet>{
      {1, 1, "@asroma win but it's @LFC joining @realmadrid in the #UCL final",
       {0, 5, 7, 13, 15}, 0.20, 0.80, {}},
      {2, 2, "#OnThisDay in 1993, @ManUtd were crowned the first #PL champion",
       {3, 8, 10}, 0.26, 0.74, {}},
      {3, 3, "@Cavs defeats @Raptors 128-110 and leads the series 2-0",
       {2, 4, 9, 12}, 0.89, 0.11, {}},
      {4, 4, "LeBron is great! #NBAPlayoffs", {6, 9}, 1.00, 0.00, {3}},
      {5, 5, "Congratulations to @LFC reaching #UCL Final!! #YNWA",
       {5, 7, 15}, 0.29, 0.71, {1}},
      {6, 6, "LeBron is the 1st player with 40+ points 14+ assists",
       {1, 6, 9, 11}, 0.70, 0.30, {3}},
      {7, 7, "Hope this post inspires us to win #PL champions again",
       {3, 10}, 0.33, 0.67, {2}},
      {8, 8, "Schedule for #PL and #NBAPlayoffs tonight", {9, 10, 14}, 0.51,
       0.49, {2, 3, 6}},
  };
  return *kTweets;
}

TopicModel MakeModel() {
  // Tables 1(b) and 1(c): theta_1 = basketball, theta_2 = soccer.
  auto model = TopicModel::FromMatrix({
      {0.00, 0.06, 0.09, 0.10, 0.05, 0.11, 0.12, 0.00, 0.00, 0.11, 0.00,
       0.15, 0.08, 0.00, 0.13, 0.00},
      {0.03, 0.04, 0.00, 0.09, 0.04, 0.12, 0.00, 0.06, 0.07, 0.00, 0.11,
       0.14, 0.00, 0.07, 0.12, 0.11},
  });
  KSIR_CHECK(model.ok());
  return std::move(model).value();
}

void RunQuery(const KsirEngine& engine, const char* label,
              const SparseVector& x) {
  KsirQuery query;
  query.k = 2;
  query.x = x;
  query.epsilon = 0.3;

  std::printf("\nQuery %s\n", label);
  for (const Algorithm algorithm :
       {Algorithm::kMttd, Algorithm::kMtts, Algorithm::kCelf,
        Algorithm::kBruteForce}) {
    query.algorithm = algorithm;
    const auto result = engine.Query(query);
    KSIR_CHECK(result.ok());
    std::printf("  %-21s f(S,x) = %.4f   S = {",
                std::string(AlgorithmName(algorithm)).c_str(),
                result->score);
    for (std::size_t i = 0; i < result->element_ids.size(); ++i) {
      std::printf("%se%lld", i ? ", " : "",
                  static_cast<long long>(result->element_ids[i]));
    }
    std::printf("}  (evaluated %zu of %zu active)\n",
                result->stats.num_evaluated, engine.window().num_active());
  }
}

}  // namespace

int main() {
  std::printf("k-SIR quickstart: the worked example of the EDBT'19 paper\n");
  std::printf("==========================================================\n");

  const TopicModel model = MakeModel();

  EngineConfig config;
  config.scoring.lambda = 0.5;
  config.scoring.eta = 2.0;
  config.window_length = 4;  // T = 4 time units
  config.bucket_length = 1;  // L = 1
  KsirEngine engine(config, &model);

  // Stream the tweets in timestamp order.
  std::vector<SocialElement> elements;
  for (const Tweet& tweet : PaperTweets()) {
    SocialElement e;
    e.id = tweet.id;
    e.ts = tweet.ts;
    e.raw_text = tweet.text;
    e.doc = Document::FromWordIds(tweet.words);
    e.refs = tweet.refs;
    std::vector<SparseVector::Entry> entries;
    if (tweet.p1 > 0) entries.emplace_back(0, tweet.p1);
    if (tweet.p2 > 0) entries.emplace_back(1, tweet.p2);
    e.topics = SparseVector::FromEntries(std::move(entries));
    elements.push_back(std::move(e));
  }
  KSIR_CHECK(engine.Append(std::move(elements)).ok());

  std::printf("\nAt t = 8 the active window holds %zu elements "
              "(e4 expired: T = 4 and nobody in-window refers to it).\n",
              engine.window().num_active());

  // Example 3.4, query 1: equal interest in both topics -> {e1, e3}.
  RunQuery(engine, "x = (0.5, 0.5)  [balanced interest]",
           SparseVector::FromEntries({{0, 0.5}, {1, 0.5}}));
  // Example 3.4, query 2: strong soccer preference -> {e1, e2}.
  RunQuery(engine, "x = (0.1, 0.9)  [soccer fan]",
           SparseVector::FromEntries({{0, 0.1}, {1, 0.9}}));

  std::printf(
      "\nBoth match the paper: q8(2, (0.5,0.5)) -> {e1, e3} with OPT = 0.65;"
      "\nq8(2, (0.1,0.9)) -> {e1, e2} (e3 excluded: it is mostly theta_1).\n");
  return 0;
}
