// Unit tests for the per-topic ranked lists, Algorithm 1 maintenance
// (including the Figure 5 golden state) and the traversal cursor. The t_e
// half of the paper's tuple lives once per element in RankedListIndex
// (TimeOf); the lists themselves store only the ordering keys.
#include <limits>
#include <map>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/ranked_list.h"
#include "core/traversal.h"
#include "paper_fixture.h"

namespace ksir {
namespace {

using ::ksir::testing::BalancedQueryVector;
using ::ksir::testing::MakePaperEngineAtT8;

// ------------------------------------------------------------ RankedList --

TEST(RankedListTest, InsertKeepsDescendingOrder) {
  RankedList list;
  list.Insert(1, 0.3);
  list.Insert(2, 0.9);
  list.Insert(3, 0.5);
  std::vector<ElementId> order;
  for (const auto& key : list) order.push_back(key.id);
  EXPECT_EQ(order, (std::vector<ElementId>{2, 3, 1}));
}

TEST(RankedListTest, TiesBreakById) {
  RankedList list;
  list.Insert(7, 0.5);
  list.Insert(3, 0.5);
  std::vector<ElementId> order;
  for (const auto& key : list) order.push_back(key.id);
  EXPECT_EQ(order, (std::vector<ElementId>{3, 7}));
}

TEST(RankedListTest, UpdateRepositions) {
  RankedList list;
  list.Insert(1, 0.3);
  list.Insert(2, 0.9);
  list.Update(1, 1.5);
  EXPECT_EQ(list.begin()->id, 1);
  EXPECT_DOUBLE_EQ(list.Get(1), 1.5);
}

TEST(RankedListTest, EraseRemoves) {
  RankedList list;
  list.Insert(1, 0.3);
  list.Insert(2, 0.9);
  list.Erase(2);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_FALSE(list.Contains(2));
  EXPECT_TRUE(list.Contains(1));
}

TEST(RankedListTest, EqualScoresDistinctElementsCoexist) {
  RankedList list;
  list.Insert(1, 0.5);
  list.Insert(2, 0.5);
  list.Erase(1);
  EXPECT_TRUE(list.Contains(2));
  EXPECT_DOUBLE_EQ(list.Get(2), 0.5);
}

// ------------------------------------------------------- RankedListIndex --

TEST(RankedListIndexTest, InsertSpansTopics) {
  RankedListIndex index(3);
  index.Insert(1, {{0, 0.9}, {2, 0.1}}, 5);
  EXPECT_TRUE(index.Contains(1));
  EXPECT_TRUE(index.list(0).Contains(1));
  EXPECT_FALSE(index.list(1).Contains(1));
  EXPECT_TRUE(index.list(2).Contains(1));
  EXPECT_EQ(index.total_entries(), 2u);
  EXPECT_EQ(index.num_elements(), 1u);
  EXPECT_EQ(index.TimeOf(1), 5);
}

TEST(RankedListIndexTest, EraseClearsAllLists) {
  RankedListIndex index(3);
  index.Insert(1, {{0, 0.9}, {1, 0.5}}, 5);
  index.Erase(1);
  EXPECT_FALSE(index.Contains(1));
  EXPECT_EQ(index.total_entries(), 0u);
  EXPECT_TRUE(index.list(0).empty());
}

TEST(RankedListIndexTest, UpdateRepositionsAcrossListsAndMovesTime) {
  RankedListIndex index(2);
  index.Insert(1, {{0, 0.9}, {1, 0.1}}, 5);
  index.Insert(2, {{0, 0.5}, {1, 0.5}}, 6);
  index.Update(1, {{0, 0.2}, {1, 0.8}}, 7);
  EXPECT_EQ(index.list(0).begin()->id, 2);
  EXPECT_EQ(index.list(1).begin()->id, 1);
  EXPECT_EQ(index.TimeOf(1), 7);
  EXPECT_EQ(index.TimeOf(2), 6);
}

TEST(RankedListIndexTest, TouchTimeUpdatesWithoutListWork) {
  RankedListIndex index(2);
  index.Insert(1, {{0, 0.9}}, 5);
  const std::uint64_t probes = index.id_table_probes();
  index.TouchTime(1, 9);
  EXPECT_EQ(index.TimeOf(1), 9);
  EXPECT_DOUBLE_EQ(index.list(0).Get(1), 0.9);
  EXPECT_EQ(index.id_table_probes(), probes + 1);  // only the Get probed
}

// --------------------------------------------- Figure 5 golden list state --

class Figure5Test : public ::testing::Test {
 protected:
  void SetUp() override { fixture_ = MakePaperEngineAtT8(); }
  ksir::testing::PaperEngine fixture_;
};

TEST_F(Figure5Test, RankedList1MatchesPaper) {
  // Figure 5 RL_1 (score, t_e); e1/e7 are a near-tie at 0.0565 vs 0.0563 —
  // exact arithmetic orders e1 first, and the figure's tuple *values*
  // <0.06,5>, <0.06,7> match (e1: t_e=5, e7: t_e=7); only the paper's row
  // labels are swapped. t_e is per element (identical across lists) and
  // read from the index.
  const RankedList& list = fixture_.engine->index().list(0);
  struct Row {
    ElementId id;
    double score;
    Timestamp te;
  };
  const std::vector<Row> expected = {
      {3, 0.65, 8}, {6, 0.48, 8}, {8, 0.17, 8}, {2, 0.10, 8},
      {1, 0.06, 5}, {7, 0.06, 7}, {5, 0.05, 5},
  };
  ASSERT_EQ(list.size(), expected.size());
  std::size_t i = 0;
  for (const auto& key : list) {
    EXPECT_EQ(key.id, expected[i].id) << "position " << i;
    EXPECT_NEAR(key.score, expected[i].score, 0.005) << "position " << i;
    EXPECT_EQ(fixture_.engine->index().TimeOf(key.id), expected[i].te)
        << "position " << i;
    ++i;
  }
}

TEST_F(Figure5Test, RankedList2MatchesPaper) {
  const RankedList& list = fixture_.engine->index().list(1);
  struct Row {
    ElementId id;
    double score;
    Timestamp te;
  };
  const std::vector<Row> expected = {
      {1, 0.56, 5}, {2, 0.48, 8}, {5, 0.27, 5}, {7, 0.18, 7},
      {8, 0.16, 8}, {6, 0.13, 8}, {3, 0.03, 8},
  };
  ASSERT_EQ(list.size(), expected.size());
  std::size_t i = 0;
  for (const auto& key : list) {
    EXPECT_EQ(key.id, expected[i].id) << "position " << i;
    EXPECT_NEAR(key.score, expected[i].score, 0.005) << "position " << i;
    EXPECT_EQ(fixture_.engine->index().TimeOf(key.id), expected[i].te)
        << "position " << i;
    ++i;
  }
}

TEST_F(Figure5Test, ExpiredElementAbsentFromLists) {
  EXPECT_FALSE(fixture_.engine->index().Contains(4));
  EXPECT_EQ(fixture_.engine->index().num_elements(), 7u);
}

TEST_F(Figure5Test, ScoresNonIncreasingInEveryList) {
  for (TopicId t = 0; t < 2; ++t) {
    const RankedList& list = fixture_.engine->index().list(t);
    double prev = std::numeric_limits<double>::infinity();
    for (const auto& key : list) {
      EXPECT_LE(key.score, prev);
      prev = key.score;
    }
  }
}

// ------------------------------------------------------ RankedListCursor --

TEST_F(Figure5Test, CursorPopsInWeightedScoreOrder) {
  const SparseVector x = BalancedQueryVector();
  RankedListCursor cursor(&fixture_.engine->index(), &x);
  // Initial UB(x) = 0.5 * 0.647 + 0.5 * 0.560 = 0.604 (paper: 0.61).
  EXPECT_NEAR(cursor.UpperBound(), 0.604, 0.005);
  // Pop order: e3 (0.324), e1 (0.280), e2 (0.240), e6 (0.239), ...
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(3));
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(1));
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(2));
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(6));
  EXPECT_EQ(cursor.num_retrieved(), 4u);
  // After popping the strong elements the bound collapses to ~0.22.
  EXPECT_NEAR(cursor.UpperBound(), 0.221, 0.005);
}

TEST_F(Figure5Test, CursorVisitsEachElementOnce) {
  const SparseVector x = BalancedQueryVector();
  RankedListCursor cursor(&fixture_.engine->index(), &x);
  std::vector<ElementId> popped;
  while (auto id = cursor.PopNext()) popped.push_back(*id);
  std::vector<ElementId> sorted = popped;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<ElementId>{1, 2, 3, 5, 6, 7, 8}));
  EXPECT_TRUE(cursor.Exhausted());
  EXPECT_DOUBLE_EQ(cursor.UpperBound(), 0.0);
  EXPECT_EQ(cursor.PopNext(), std::nullopt);
}

TEST_F(Figure5Test, CursorUpperBoundMonotoneNonIncreasing) {
  const SparseVector x = BalancedQueryVector();
  RankedListCursor cursor(&fixture_.engine->index(), &x);
  double prev = cursor.UpperBound();
  while (auto id = cursor.PopNext()) {
    const double ub = cursor.UpperBound();
    EXPECT_LE(ub, prev + 1e-12);
    prev = ub;
  }
}

TEST_F(Figure5Test, CursorUpperBoundDominatesUnpopped) {
  // Soundness: UB(x) >= delta(e, x) for every not-yet-popped element.
  const SparseVector x = BalancedQueryVector();
  RankedListCursor cursor(&fixture_.engine->index(), &x);
  std::vector<ElementId> remaining = {1, 2, 3, 5, 6, 7, 8};
  while (!remaining.empty()) {
    const double ub = cursor.UpperBound();
    for (ElementId id : remaining) {
      const SocialElement* e = fixture_.engine->window().Find(id);
      ASSERT_NE(e, nullptr);
      EXPECT_GE(ub + 1e-12, fixture_.engine->scoring().ElementScore(*e, x));
    }
    const auto popped = cursor.PopNext();
    ASSERT_TRUE(popped.has_value());
    std::erase(remaining, *popped);
  }
}

TEST_F(Figure5Test, SingleTopicQueryWalksOneList) {
  const SparseVector x = SparseVector::FromEntries({{0, 1.0}});
  RankedListCursor cursor(&fixture_.engine->index(), &x);
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(3));
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(6));
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(8));
}

TEST_F(Figure5Test, PopWhileAtLeastMatchesSinglePops) {
  const SparseVector x = BalancedQueryVector();
  RankedListCursor bulk(&fixture_.engine->index(), &x);
  RankedListCursor single(&fixture_.engine->index(), &x);
  // Threshold rounds mirroring MTTD's retrieve loop.
  for (const double tau : {0.3, 0.2, 0.1, 0.0}) {
    std::vector<ElementId> bulk_ids;
    bulk.PopWhileAtLeast(tau, &bulk_ids);
    std::vector<ElementId> single_ids;
    while (!single.Exhausted() && single.UpperBound() >= tau) {
      const auto popped = single.PopNext();
      ASSERT_TRUE(popped.has_value());
      single_ids.push_back(*popped);
    }
    EXPECT_EQ(bulk_ids, single_ids) << "tau=" << tau;
    EXPECT_DOUBLE_EQ(bulk.UpperBound(), single.UpperBound());
  }
  EXPECT_TRUE(bulk.Exhausted());
}

TEST(CursorEdgeTest, EmptyIndexIsExhausted) {
  RankedListIndex index(2);
  const SparseVector x = SparseVector::FromEntries({{0, 0.7}, {1, 0.3}});
  RankedListCursor cursor(&index, &x);
  EXPECT_TRUE(cursor.Exhausted());
  EXPECT_DOUBLE_EQ(cursor.UpperBound(), 0.0);
  EXPECT_EQ(cursor.PopNext(), std::nullopt);
}

TEST(CursorEdgeTest, QueryTopicBeyondIndexIsIgnored) {
  RankedListIndex index(2);
  index.Insert(1, {{0, 0.5}}, 1);
  const SparseVector x = SparseVector::FromEntries({{0, 0.5}, {9, 0.5}});
  RankedListCursor cursor(&index, &x);
  EXPECT_EQ(cursor.PopNext(), std::optional<ElementId>(1));
  EXPECT_TRUE(cursor.Exhausted());
}

// ------------------------------------------- Chunked storage under churn --

TEST(RankedListChurnTest, MatchesOrderedReferenceAcrossSplitsAndMerges) {
  // Drive the chunked backing store through thousands of inserts, updates
  // and erases (far beyond one chunk's capacity) and require iteration to
  // match an std::set reference at every checkpoint.
  RankedList list;
  std::set<RankedList::Key> reference;
  std::map<ElementId, double> score_of;
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> score_dist(0.0, 1.0);

  const auto verify = [&]() {
    ASSERT_EQ(list.size(), reference.size());
    auto ref_it = reference.begin();
    for (const auto& key : list) {
      ASSERT_NE(ref_it, reference.end());
      EXPECT_EQ(key.id, ref_it->id);
      EXPECT_DOUBLE_EQ(key.score, ref_it->score);
      ++ref_it;
    }
    EXPECT_EQ(ref_it, reference.end());
  };

  ElementId next_id = 0;
  for (int round = 0; round < 6000; ++round) {
    const double action = score_dist(rng);
    if (action < 0.5 || score_of.empty()) {
      const ElementId id = next_id++;
      const double score = score_dist(rng);
      list.Insert(id, score);
      reference.insert(RankedList::Key{score, id});
      score_of[id] = score;
    } else if (action < 0.8) {
      auto it = score_of.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng() % score_of.size()));
      const double score = score_dist(rng);
      reference.erase(RankedList::Key{it->second, it->first});
      reference.insert(RankedList::Key{score, it->first});
      list.Update(it->first, score);
      it->second = score;
    } else {
      auto it = score_of.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng() % score_of.size()));
      list.Erase(it->first);
      reference.erase(RankedList::Key{it->second, it->first});
      score_of.erase(it);
    }
    if (round % 500 == 499) verify();
  }
  verify();
  // Drain to empty through the erase/merge path.
  while (!score_of.empty()) {
    const auto it = score_of.begin();
    list.Erase(it->first);
    reference.erase(RankedList::Key{it->second, it->first});
    score_of.erase(it);
  }
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.begin(), list.end());
}

TEST(RankedListChurnTest, GetSurvivesRepositioning) {
  RankedList list;
  for (ElementId id = 0; id < 300; ++id) {
    list.Insert(id, static_cast<double>(id % 7));
  }
  for (ElementId id = 0; id < 300; id += 3) {
    list.Update(id, static_cast<double>(id % 11) + 0.5);
  }
  for (ElementId id = 0; id < 300; ++id) {
    if (id % 3 == 0) {
      EXPECT_DOUBLE_EQ(list.Get(id), static_cast<double>(id % 11) + 0.5);
    } else {
      EXPECT_DOUBLE_EQ(list.Get(id), static_cast<double>(id % 7));
    }
  }
}

// ----------------------------------------------------------- ApplyBatch --

/// Applies `updates` to `batched` via one ApplyBatch call and to `single`
/// via per-element Update calls, then requires identical key sequences.
void CheckBatchMatchesSingle(RankedList* batched, RankedList* single,
                             const std::vector<RankedList::Tuple>& updates) {
  RankedList::BatchScratch scratch;
  batched->ApplyBatch(updates.data(), updates.size(), &scratch);
  for (const auto& update : updates) {
    single->Update(update.id, update.score);
  }
  ASSERT_EQ(batched->size(), single->size());
  auto single_it = single->begin();
  for (const auto& key : *batched) {
    EXPECT_EQ(key.id, single_it->id);
    EXPECT_EQ(key.score, single_it->score);  // bitwise-identical doubles
    ++single_it;
  }
  EXPECT_EQ(single_it, single->end());
  for (const auto& update : updates) {
    EXPECT_EQ(batched->Get(update.id), single->Get(update.id));
  }
}

TEST(RankedListBatchTest, BatchEqualsSingleOnSmallList) {
  RankedList batched;
  RankedList single;
  for (ElementId id = 0; id < 10; ++id) {
    batched.Insert(id, static_cast<double>(id));
    single.Insert(id, static_cast<double>(id));
  }
  // Mix of upward moves, downward moves, a no-op score and a tie with an
  // untouched element.
  CheckBatchMatchesSingle(&batched, &single,
                          {{3, 12.0},
                           {7, 0.5},
                           {5, 5.0},
                           {1, 6.0}});
}

TEST(RankedListBatchTest, BatchAcrossManyChunksMatchesReference) {
  // Enough keys for dozens of chunks; batches repeatedly reposition random
  // subsets and the result must match a per-element Update twin and an
  // std::set reference at every step.
  RankedList batched;
  RankedList single;
  std::set<RankedList::Key> reference;
  std::map<ElementId, double> score_of;
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> score_dist(0.0, 1.0);
  for (ElementId id = 0; id < 2000; ++id) {
    const double score = score_dist(rng);
    batched.Insert(id, score);
    single.Insert(id, score);
    reference.insert(RankedList::Key{score, id});
    score_of[id] = score;
  }
  for (int round = 0; round < 40; ++round) {
    // Batch sizes sweep from a couple of keys to a large fraction of the
    // list (collisions with chunk boundaries, emptied chunks, clustered
    // and spread targets all occur across rounds).
    const std::size_t batch_size = 2 + (rng() % 400);
    std::vector<RankedList::Tuple> updates;
    std::set<ElementId> used;
    for (std::size_t i = 0; i < batch_size; ++i) {
      const ElementId id = static_cast<ElementId>(rng() % 2000);
      if (!used.insert(id).second) continue;
      // Occasionally cluster scores to exercise near-equal keys.
      const double score = (rng() % 4 == 0)
                               ? 0.5
                               : score_dist(rng);
      updates.push_back({id, score});
      reference.erase(RankedList::Key{score_of[id], id});
      reference.insert(RankedList::Key{score, id});
      score_of[id] = score;
    }
    ASSERT_NO_FATAL_FAILURE(
        CheckBatchMatchesSingle(&batched, &single, updates));
    ASSERT_EQ(batched.size(), reference.size());
    auto ref_it = reference.begin();
    for (const auto& key : batched) {
      ASSERT_EQ(key.id, ref_it->id);
      ASSERT_EQ(key.score, ref_it->score);
      ++ref_it;
    }
  }
}

TEST(RankedListBatchTest, WholeListRepositionedInOneBatch) {
  RankedList batched;
  RankedList single;
  std::vector<RankedList::Tuple> updates;
  for (ElementId id = 0; id < 500; ++id) {
    batched.Insert(id, static_cast<double>(id));
    single.Insert(id, static_cast<double>(id));
    // Reverse the entire order in one sweep.
    updates.push_back({id, static_cast<double>(500 - id)});
  }
  CheckBatchMatchesSingle(&batched, &single, updates);
}

TEST(RankedListBatchTest, NoOpScoresLeaveOrderUntouched) {
  RankedList list;
  for (ElementId id = 0; id < 100; ++id) {
    list.Insert(id, static_cast<double>(id));
  }
  std::vector<RankedList::Tuple> updates;
  for (ElementId id = 0; id < 100; id += 7) {
    updates.push_back({id, static_cast<double>(id)});
  }
  RankedList::BatchScratch scratch;
  list.ApplyBatch(updates.data(), updates.size(), &scratch);
  ElementId expected = 99;
  for (const auto& key : list) {
    EXPECT_EQ(key.id, expected--);
  }
}

// ---------------------------------------------------- Handles & DrainTop --

TEST(RankedListHandleTest, InsertMintsResolvingHandle) {
  RankedList list;
  const auto h = list.Insert(7, 0.5);
  EXPECT_EQ(list.ProbeHandle(h, 7, 0.5), RankedList::HandleState::kValid);
  // A default handle and a wrong key both miss.
  EXPECT_EQ(list.ProbeHandle(RankedList::Handle{}, 7, 0.5),
            RankedList::HandleState::kStale);
  EXPECT_EQ(list.ProbeHandle(h, 7, 0.6), RankedList::HandleState::kStale);
}

TEST(RankedListHandleTest, NoSplitFastPathPerformsZeroIdTableProbes) {
  // The acceptance contract of the handle pipeline: a reposition whose new
  // key stays in the handle's chunk touches the id side table ZERO times.
  RankedList list;
  RankedList::Handle h1 = list.Insert(1, 0.10);
  RankedList::Handle h2 = list.Insert(2, 0.20);
  RankedList::Handle h3 = list.Insert(3, 0.30);
  const std::uint64_t probes_before = list.id_table_probes();

  // Single-update flavor: moves within the only chunk. Batched flavor:
  // one move plus a no-op score.
  list.UpdateHandle({1, 0.10, 0.25, &h1});
  RankedList::HandleUpdate updates[] = {
      {2, 0.20, 0.05, &h2},
      {3, 0.30, 0.30, &h3},
  };
  RankedList::BatchScratch scratch;
  list.ApplyBatchHandles(updates, 2, &scratch);

  // The counter is checked FIRST: Get below is id-keyed and probes.
  EXPECT_EQ(list.id_table_probes(), probes_before);

  EXPECT_EQ(list.ProbeHandle(h1, 1, 0.25), RankedList::HandleState::kValid);
  EXPECT_EQ(list.ProbeHandle(h2, 2, 0.05), RankedList::HandleState::kValid);
  EXPECT_EQ(list.ProbeHandle(h3, 3, 0.30), RankedList::HandleState::kValid);
  EXPECT_EQ(list.Get(1), 0.25);
  EXPECT_EQ(list.Get(2), 0.05);
  EXPECT_EQ(list.Get(3), 0.30);
}

TEST(RankedListHandleTest, StaleHandleFallsBackThroughSideTable) {
  // Force chunk splits so early handles go stale, then reposition through
  // them: the operation must still land exactly, only via the side table.
  RankedList list;
  std::vector<RankedList::Handle> handles(300);
  std::vector<double> scores(300);
  for (ElementId id = 0; id < 300; ++id) {
    scores[id] = static_cast<double>(id) / 300.0;
    handles[id] = list.Insert(id, scores[id]);
  }
  const std::uint64_t probes_before = list.id_table_probes();
  std::size_t stale = 0;
  for (ElementId id = 0; id < 300; ++id) {
    if (list.ProbeHandle(handles[id], id, scores[id]) ==
        RankedList::HandleState::kStale) {
      ++stale;
    }
    list.UpdateHandle({id, scores[id], scores[id] + 2.0, &handles[id]});
    // The refreshed handle must resolve.
    EXPECT_EQ(list.ProbeHandle(handles[id], id, scores[id] + 2.0),
              RankedList::HandleState::kValid);
  }
  EXPECT_GT(stale, 0u);  // splits actually invalidated some handles
  EXPECT_GT(list.id_table_probes(), probes_before);  // fallback was taken
  for (ElementId id = 0; id < 300; ++id) {
    EXPECT_DOUBLE_EQ(list.Get(id), scores[id] + 2.0);
  }
}

TEST(RankedListHandleTest, ChurnPropertyEveryLiveHandleResolvesOrFallsBack) {
  // Random churn across every mutation flavor (insert / handle update /
  // id update / handle erase / id erase / batched handle repositions,
  // with splits and merges throughout). Invariants after every step:
  //  - each live element's stored handle either resolves exactly or
  //    reports a miss AND the next operation through it lands correctly;
  //  - Get always matches the shadow model;
  //  - the full key sequence matches an std::set reference.
  struct Shadow {
    double score;
    RankedList::Handle handle;
  };
  RankedList list;
  std::map<ElementId, Shadow> shadow;
  std::set<RankedList::Key> reference;
  std::mt19937_64 rng(777);
  std::uniform_real_distribution<double> score_dist(0.0, 1.0);

  const auto pick = [&](std::mt19937_64& r) {
    auto it = shadow.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(r() % shadow.size()));
    return it;
  };

  ElementId next_id = 0;
  RankedList::BatchScratch scratch;
  for (int round = 0; round < 4000; ++round) {
    const double action = score_dist(rng);
    if (action < 0.35 || shadow.size() < 4) {
      const ElementId id = next_id++;
      const double score = score_dist(rng);
      const auto handle = list.Insert(id, score);
      shadow[id] = Shadow{score, handle};
      reference.insert(RankedList::Key{score, id});
    } else if (action < 0.55) {
      auto it = pick(rng);
      Shadow& s = it->second;
      const double score = score_dist(rng);
      reference.erase(RankedList::Key{s.score, it->first});
      reference.insert(RankedList::Key{score, it->first});
      list.UpdateHandle({it->first, s.score, score, &s.handle});
      s.score = score;
      // A just-refreshed handle must resolve exactly.
      ASSERT_EQ(list.ProbeHandle(s.handle, it->first, s.score),
                RankedList::HandleState::kValid);
    } else if (action < 0.65) {
      // Id-keyed update: the stored handle is NOT refreshed and may go
      // stale; later handle ops must fall back.
      auto it = pick(rng);
      Shadow& s = it->second;
      const double score = score_dist(rng);
      reference.erase(RankedList::Key{s.score, it->first});
      reference.insert(RankedList::Key{score, it->first});
      list.Update(it->first, score);
      s.score = score;
    } else if (action < 0.80) {
      // Batched handle repositions over a random subset.
      std::vector<RankedList::HandleUpdate> updates;
      std::set<ElementId> used;
      const std::size_t batch = 1 + rng() % 24;
      for (std::size_t i = 0; i < batch && !shadow.empty(); ++i) {
        auto it = pick(rng);
        if (!used.insert(it->first).second) continue;
        Shadow& s = it->second;
        const double score = rng() % 5 == 0 ? s.score : score_dist(rng);
        reference.erase(RankedList::Key{s.score, it->first});
        reference.insert(RankedList::Key{score, it->first});
        updates.push_back({it->first, s.score, score, &s.handle});
        s.score = score;
      }
      list.ApplyBatchHandles(updates.data(), updates.size(), &scratch);
    } else if (action < 0.90) {
      auto it = pick(rng);
      list.EraseHandle(it->first, it->second.score, it->second.handle);
      reference.erase(RankedList::Key{it->second.score, it->first});
      shadow.erase(it);
    } else {
      auto it = pick(rng);
      list.Erase(it->first);
      reference.erase(RankedList::Key{it->second.score, it->first});
      shadow.erase(it);
    }

    if (round % 200 == 199) {
      ASSERT_EQ(list.size(), reference.size());
      auto ref_it = reference.begin();
      for (const auto& key : list) {
        ASSERT_EQ(key.id, ref_it->id);
        ASSERT_EQ(key.score, ref_it->score);
        ++ref_it;
      }
      for (const auto& [id, s] : shadow) {
        ASSERT_EQ(list.Get(id), s.score) << "id=" << id;
        // The stored handle is a hint: valid or stale, never wrong.
        const auto state = list.ProbeHandle(s.handle, id, s.score);
        ASSERT_TRUE(state == RankedList::HandleState::kValid ||
                    state == RankedList::HandleState::kStale);
      }
    }
  }
}

TEST(RankedListBatchTest, HandleBatchMatchesIdBatchBitwise) {
  RankedList by_handle;
  RankedList by_id;
  std::vector<RankedList::Handle> handles(2000);
  std::vector<double> scores(2000);
  std::mt19937_64 rng(123);
  std::uniform_real_distribution<double> score_dist(0.0, 1.0);
  for (ElementId id = 0; id < 2000; ++id) {
    scores[id] = score_dist(rng);
    handles[id] = by_handle.Insert(id, scores[id]);
    by_id.Insert(id, scores[id]);
  }
  RankedList::BatchScratch scratch_h;
  RankedList::BatchScratch scratch_i;
  for (int round = 0; round < 30; ++round) {
    std::vector<RankedList::HandleUpdate> handle_updates;
    std::vector<RankedList::Tuple> tuples;
    std::set<ElementId> used;
    const std::size_t batch = 2 + rng() % 300;
    for (std::size_t i = 0; i < batch; ++i) {
      const ElementId id = static_cast<ElementId>(rng() % 2000);
      if (!used.insert(id).second) continue;
      const double score = rng() % 4 == 0 ? 0.5 : score_dist(rng);
      handle_updates.push_back({id, scores[id], score, &handles[id]});
      tuples.push_back({id, score});
      scores[id] = score;
    }
    by_handle.ApplyBatchHandles(handle_updates.data(), handle_updates.size(),
                                &scratch_h);
    by_id.ApplyBatch(tuples.data(), tuples.size(), &scratch_i);
    ASSERT_EQ(by_handle.size(), by_id.size());
    auto id_it = by_id.begin();
    for (const auto& key : by_handle) {
      ASSERT_EQ(key.id, id_it->id);
      ASSERT_EQ(key.score, id_it->score);  // bitwise-identical doubles
      ++id_it;
    }
  }
}

TEST(RankedListHandleTest, UntrackedListNeverTouchesAnIdTable) {
  // A handle-carrying engine's list runs with track_ids = false: every
  // operation resolves through the carried handle or the self-locating
  // carried key, so the probe counter stays at zero FOREVER — including
  // across splits and merges, whose side-table rewrites are gone entirely.
  RankedList list(/*track_ids=*/false);
  std::vector<RankedList::Handle> handles(500);
  std::vector<double> scores(500);
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> score_dist(0.0, 1.0);
  for (ElementId id = 0; id < 500; ++id) {
    scores[id] = score_dist(rng);
    handles[id] = list.Insert(id, scores[id]);
  }
  RankedList::BatchScratch scratch;
  for (int round = 0; round < 20; ++round) {
    std::vector<RankedList::HandleUpdate> updates;
    for (ElementId id = round % 3; id < 500; id += 3) {
      const double score = score_dist(rng);
      updates.push_back({id, scores[id], score, &handles[id]});
      scores[id] = score;
    }
    list.ApplyBatchHandles(updates.data(), updates.size(), &scratch);
  }
  for (ElementId id = 0; id < 500; id += 50) {
    list.UpdateHandle({id, scores[id], scores[id] * 0.5, &handles[id]});
    scores[id] *= 0.5;
  }
  for (ElementId id = 0; id < 500; id += 7) {
    list.EraseHandle(id, scores[id], handles[id]);
  }
  EXPECT_EQ(list.id_table_probes(), 0u);
  // Diagnostic lookups still work (by scan) and see the final state.
  EXPECT_FALSE(list.Contains(0));
  EXPECT_TRUE(list.Contains(1));
  EXPECT_DOUBLE_EQ(list.Get(1), scores[1]);
  // Ordering stayed intact throughout.
  double prev = std::numeric_limits<double>::infinity();
  for (const auto& key : list) {
    EXPECT_LE(key.score, prev);
    prev = key.score;
  }
}

TEST(RankedListDrainTest, DrainTopEqualsRepeatedSinglePops) {
  // DrainTop(n) must yield exactly the keys of n iterator increments, for
  // every block size, across chunk boundaries.
  RankedList list;
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> score_dist(0.0, 1.0);
  for (ElementId id = 0; id < 500; ++id) {
    list.Insert(id, score_dist(rng));
  }
  for (const std::size_t block : {1u, 3u, 32u, 64u, 100u, 1000u}) {
    std::vector<RankedList::Key> drained;
    auto pos = list.begin();
    std::vector<RankedList::Key> buffer(block);
    while (true) {
      const std::size_t n = list.DrainTop(&pos, buffer.data(), block);
      if (n == 0) break;
      drained.insert(drained.end(), buffer.begin(),
                     buffer.begin() + static_cast<std::ptrdiff_t>(n));
    }
    ASSERT_EQ(pos, list.end());
    std::vector<RankedList::Key> singles;
    for (auto it = list.begin(); it != list.end(); ++it) {
      singles.push_back(*it);
    }
    ASSERT_EQ(drained.size(), singles.size()) << "block=" << block;
    for (std::size_t i = 0; i < singles.size(); ++i) {
      EXPECT_EQ(drained[i].id, singles[i].id) << "block=" << block;
      EXPECT_EQ(drained[i].score, singles[i].score);
    }
  }
  // Empty list: zero keys, iterator stays at end.
  RankedList empty;
  auto pos = empty.begin();
  RankedList::Key out;
  EXPECT_EQ(empty.DrainTop(&pos, &out, 1), 0u);
  EXPECT_EQ(pos, empty.end());
}

// ------------------------------------------------------------- NaN guard --

TEST(RankedListDeathTest, InsertRejectsNaNScore) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  RankedList list;
  EXPECT_DEATH(list.Insert(1, nan), "isnan");
}

TEST(RankedListDeathTest, UpdateRejectsNaNScore) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  RankedList list;
  list.Insert(1, 0.5);
  EXPECT_DEATH(list.Update(1, nan), "isnan");
}

TEST(RankedListDeathTest, ApplyBatchRejectsNaNScore) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  RankedList list;
  list.Insert(1, 0.5);
  RankedList::Tuple update;
  update.id = 1;
  update.score = nan;
  RankedList::BatchScratch scratch;
  EXPECT_DEATH(list.ApplyBatch(&update, 1, &scratch), "isnan");
}

// --------------------------------------------------- Refresh mode (paper) --

TEST(RankedListIndexTest, SplitInsertMatchesCombinedInsert) {
  // The parallel maintenance pipeline inserts fresh elements in two
  // halves: InsertMembership (serial) then one InsertListEntry per support
  // topic (topic-sharded). The result — membership, t_e, entry counts,
  // list keys AND minted handles — must be exactly what the combined
  // Insert produces.
  RankedListIndex combined(3, /*track_ids=*/false);
  RankedListIndex split(3, /*track_ids=*/false);
  const std::vector<std::pair<TopicId, double>> support = {
      {0, 0.9}, {2, 0.4}};
  std::vector<RankedList::Handle> combined_handles(support.size());
  combined.Insert(7, support, /*te=*/42, combined_handles.data());

  const TopicId topics[] = {0, 2};
  split.InsertMembership(7, topics, 2, /*te=*/42);
  std::vector<RankedList::Handle> split_handles;
  for (const auto& [topic, score] : support) {
    split_handles.push_back(split.InsertListEntry(topic, 7, score));
  }

  EXPECT_EQ(split.num_elements(), combined.num_elements());
  EXPECT_EQ(split.total_entries(), combined.total_entries());
  EXPECT_EQ(split.TimeOf(7), combined.TimeOf(7));
  for (std::size_t i = 0; i < support.size(); ++i) {
    EXPECT_EQ(split_handles[i], combined_handles[i]) << "entry " << i;
    const TopicId topic = support[i].first;
    ASSERT_EQ(split.list(topic).size(), combined.list(topic).size());
    EXPECT_EQ(split.list(topic).Get(7), combined.list(topic).Get(7));
    EXPECT_EQ(split.list(topic).ProbeHandle(split_handles[i], 7,
                                            support[i].second),
              RankedList::HandleState::kValid);
  }
  EXPECT_TRUE(split.list(1).empty());
}

TEST(RefreshModeTest, PaperModeKeepsStaleUpperBound) {
  // Build a stream where an element loses a referrer with no gain in the
  // same bucket: with kPaper the list score stays stale-high; with kExact
  // it drops to the true value.
  auto model = TopicModel::FromMatrix({{0.5, 0.5}});
  ASSERT_TRUE(model.ok());
  for (const RefreshMode mode : {RefreshMode::kExact, RefreshMode::kPaper}) {
    EngineConfig config;
    config.scoring.lambda = 0.5;
    config.scoring.eta = 2.0;
    config.window_length = 4;
    config.bucket_length = 1;
    config.refresh_mode = mode;
    KsirEngine engine(config, &*model);

    auto mk = [](ElementId id, Timestamp ts, std::vector<ElementId> refs) {
      SocialElement e;
      e.id = id;
      e.ts = ts;
      e.doc = Document::FromWordIds({0});
      e.refs = std::move(refs);
      e.topics = SparseVector::FromEntries({{0, 1.0}});
      return e;
    };
    ASSERT_TRUE(engine.AdvanceTo(1, {mk(1, 1, {})}).ok());
    ASSERT_TRUE(engine.AdvanceTo(2, {mk(2, 2, {1})}).ok());
    ASSERT_TRUE(engine.AdvanceTo(5, {mk(3, 5, {1})}).ok());
    // t=6: e2 (ts 2) leaves the window; e1 loses its referral, e3 remains.
    ASSERT_TRUE(engine.AdvanceTo(6, {}).ok());
    const double listed = engine.index().list(0).Get(1);
    const SocialElement* e1 = engine.window().Find(1);
    ASSERT_NE(e1, nullptr);
    const double exact = engine.scoring().TopicScore(0, *e1);
    if (mode == RefreshMode::kExact) {
      EXPECT_NEAR(listed, exact, 1e-12);
    } else {
      EXPECT_GT(listed, exact);  // stale but still a sound upper bound
    }
  }
}

}  // namespace
}  // namespace ksir
