#include "core/mtts.h"

#include <cmath>
#include <limits>
#include <map>
#include <memory>

#include "common/check.h"
#include "common/timer.h"
#include "core/candidate_state.h"
#include "core/traversal.h"

namespace ksir {

namespace {

// phi = (1 + eps)^j.
double PhiOf(int j, double eps) { return std::pow(1.0 + eps, j); }

}  // namespace

QueryResult RunMtts(const ScoringContext& ctx, const RankedListIndex& index,
                    const KsirQuery& query) {
  KSIR_CHECK(query.k >= 1);
  KSIR_CHECK(query.epsilon > 0.0 && query.epsilon < 1.0);
  WallTimer timer;
  QueryResult result;

  const double eps = query.epsilon;
  const double k = static_cast<double>(query.k);
  const double log1e = std::log1p(eps);

  RankedListCursor cursor(&index, &query.x);
  // Candidates S_phi keyed by the exponent j of phi = (1+eps)^j.
  std::map<int, std::unique_ptr<CandidateState>> candidates;
  double delta_max = 0.0;
  double threshold = 0.0;  // TH: min phi/2k over unfilled candidates

  std::size_t peak_candidates = 0;
  while (!cursor.Exhausted() && cursor.UpperBound() >= threshold) {
    const auto popped = cursor.PopNext();
    if (!popped.has_value()) break;
    const SocialElement* e = ctx.window().Find(*popped);
    KSIR_CHECK(e != nullptr);

    // Line 6: evaluate delta(e, x).
    const double score = ctx.ElementScore(*e, query.x);
    ++result.stats.num_evaluated;

    // Lines 7-9: track delta_max and adjust the candidate range
    // [delta_max, 2 k delta_max].
    if (score > delta_max) {
      delta_max = score;
      const int j_lo =
          static_cast<int>(std::ceil(std::log(delta_max) / log1e - 1e-9));
      const int j_hi = static_cast<int>(
          std::floor(std::log(2.0 * k * delta_max) / log1e + 1e-9));
      // Drop candidates that fell out of range; create missing ones. Newly
      // created candidates only see elements from this point on, exactly as
      // in SieveStreaming.
      std::erase_if(candidates, [&](const auto& kv) {
        return kv.first < j_lo || kv.first > j_hi;
      });
      for (int j = j_lo; j <= j_hi; ++j) {
        if (!candidates.contains(j)) {
          candidates.emplace(
              j, std::make_unique<CandidateState>(&ctx, &query.x));
        }
      }
      peak_candidates = std::max(peak_candidates, candidates.size());
    }

    // Lines 10-12: each candidate decides independently.
    for (auto& [j, candidate] : candidates) {
      const double add_threshold = PhiOf(j, eps) / (2.0 * k);
      if (candidate->size() >= static_cast<std::size_t>(query.k)) continue;
      if (score < add_threshold) continue;
      ++result.stats.num_gain_evaluations;
      if (candidate->MarginalGain(*e) >= add_threshold) {
        candidate->Add(*e);
      }
    }

    // Line 14: recompute TH.
    threshold = std::numeric_limits<double>::infinity();
    for (const auto& [j, candidate] : candidates) {
      if (candidate->size() < static_cast<std::size_t>(query.k)) {
        threshold = PhiOf(j, eps) / (2.0 * k);
        break;  // candidates are ordered by j, so the first unfilled is min
      }
    }
    if (candidates.empty()) threshold = 0.0;
  }

  // Line 15: return the best candidate.
  const CandidateState* best = nullptr;
  for (const auto& [j, candidate] : candidates) {
    if (best == nullptr || candidate->score() > best->score()) {
      best = candidate.get();
    }
  }
  if (best != nullptr) {
    result.element_ids = best->members();
    result.score = best->score();
  }
  result.stats.num_retrieved = cursor.num_retrieved();
  result.stats.num_candidates_or_rounds = peak_candidates;
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace ksir
