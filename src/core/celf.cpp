#include "core/celf.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/kernels/kernels.h"
#include "common/timer.h"
#include "core/candidate_state.h"

namespace ksir {

namespace {

struct HeapEntry {
  double cached_gain;
  ElementId id;
  /// |S| at the time the gain was computed; a gain is current iff it was
  /// computed against the present S.
  std::size_t stamp;

  bool operator<(const HeapEntry& other) const {
    if (cached_gain != other.cached_gain) {
      return cached_gain < other.cached_gain;
    }
    return id > other.id;
  }
};

/// Shared lazy-greedy body; `candidates` restricts the ground set when
/// non-null, otherwise every active element competes.
QueryResult RunCelfImpl(const ScoringContext& ctx, const ActiveWindow& window,
                        const KsirQuery& query,
                        const std::vector<ElementId>* candidates) {
  KSIR_CHECK(query.k >= 1);
  WallTimer timer;
  QueryResult result;
  CandidateState candidate(&ctx, &query.x);

  // First pass: singleton scores of the ground set.
  std::priority_queue<HeapEntry> heap;
  const auto seed = [&](const SocialElement& e) {
    const double score = ctx.ElementScore(e, query.x);
    ++result.stats.num_evaluated;
    if (score > 0.0) heap.push(HeapEntry{score, e.id, 0});
  };
  if (candidates == nullptr) {
    window.ForEachActive(seed);
  } else {
    for (const ElementId id : *candidates) {
      const SocialElement* e = window.Find(id);
      if (e != nullptr) seed(*e);
    }
  }

  while (!heap.empty() &&
         candidate.size() < static_cast<std::size_t>(query.k)) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.cached_gain <= 0.0) break;
    if (top.stamp == candidate.size()) {
      const SocialElement* e = window.Find(top.id);
      KSIR_CHECK(e != nullptr);
      candidate.Add(*e);
    } else {
      const SocialElement* e = window.Find(top.id);
      KSIR_CHECK(e != nullptr);
      const double gain = candidate.MarginalGain(*e);
      ++result.stats.num_gain_evaluations;
      if (gain > 0.0) heap.push(HeapEntry{gain, top.id, candidate.size()});
    }
  }

  result.element_ids = candidate.members();
  result.score = candidate.score();
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace

QueryResult RunCelf(const ScoringContext& ctx, const ActiveWindow& window,
                    const KsirQuery& query) {
  return RunCelfImpl(ctx, window, query, nullptr);
}

QueryResult RunCelfOverCandidates(
    const ScoringContext& ctx, const ActiveWindow& window,
    const KsirQuery& query, const std::vector<ElementId>& candidate_ids) {
  return RunCelfImpl(ctx, window, query, &candidate_ids);
}

QueryResult RunGreedy(const ScoringContext& ctx, const ActiveWindow& window,
                      const KsirQuery& query) {
  KSIR_CHECK(query.k >= 1);
  WallTimer timer;
  QueryResult result;
  CandidateState candidate(&ctx, &query.x);

  std::vector<ElementId> ids = window.ActiveIds();
  std::sort(ids.begin(), ids.end());  // deterministic tie-breaking

  // Per-round gain buffer: evaluate every marginal gain into a contiguous
  // array, then take the round winner with the vectorized argmax kernel
  // (smallest index on ties == the sequential scan's first-max-wins).
  // Members hold the sentinel -1.0, below the 0.0 acceptance floor.
  std::vector<double> gains(ids.size(), -1.0);
  for (std::int32_t round = 0; round < query.k && !ids.empty(); ++round) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (candidate.Contains(ids[i])) {
        gains[i] = -1.0;
        continue;
      }
      const SocialElement* e = window.Find(ids[i]);
      KSIR_CHECK(e != nullptr);
      gains[i] = candidate.MarginalGain(*e);
      ++result.stats.num_gain_evaluations;
    }
    std::size_t best_i = 0;
    kernels::WeightedSumArgmax(gains.data(), gains.data(), ids.size(),
                               &best_i);
    if (!(gains[best_i] > 0.0)) break;  // no positive gain remains
    const SocialElement* best = window.Find(ids[best_i]);
    KSIR_CHECK(best != nullptr);
    candidate.Add(*best);
  }

  result.stats.num_evaluated = ids.size();
  result.element_ids = candidate.members();
  result.score = candidate.score();
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace ksir
