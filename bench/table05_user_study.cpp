// Table 5: the user study, reproduced with proxy raters (DESIGN.md §3).
//
// 20 trending-topic queries per dataset; five methods (TF-IDF, DIV, Sumblr,
// REL, k-SIR) each return five elements; three simulated raters rank the
// result sets on representativeness and impact (1..5); mean ratings and the
// mean pairwise linearly weighted kappa are reported.
//
// Expected shape (paper): k-SIR highest on both aspects in all datasets;
// Sumblr second on impact; TF-IDF/REL suffer on coverage, DIV on relevance.
#include <cstdio>

#include "bench_util.h"
#include "eval/user_study.h"
#include "search/div.h"
#include "search/rel.h"
#include "search/sumblr.h"
#include "search/tfidf.h"
#include "topic/inference.h"

namespace {

using namespace ksir;
using namespace ksir::bench;

// Trending-topic queries: the topical words of the most popular synthetic
// topics (the generator's topic prior is Zipfian, so low topic ids trend).
std::vector<QuerySpec> TrendingQueries(const Dataset& dataset,
                                       std::size_t count) {
  InferenceOptions options;
  options.iterations = 20;
  options.burn_in = 8;
  TopicInferencer inferencer(&dataset.stream.model, options);
  std::vector<QuerySpec> queries;
  for (std::size_t q = 0; q < count; ++q) {
    QuerySpec spec;
    const auto topic = static_cast<TopicId>(
        q % std::min<std::size_t>(dataset.stream.model.num_topics(), 10));
    // 3 topical words of a trending topic, offset per query for variety.
    const auto top_words = dataset.stream.model.TopWords(topic, 3 + q / 10);
    for (std::size_t i = (q / 10) * 1; i < top_words.size(); ++i) {
      spec.keywords.push_back(top_words[i]);
    }
    spec.x = inferencer.InferSparse(Document::FromWordIds(spec.keywords), q);
    spec.x.NormalizeL1();
    queries.push_back(std::move(spec));
  }
  return queries;
}

}  // namespace

int main() {
  PrintBanner("Table 5 - user study with proxy raters",
              "EDBT'19 Table 5 (simulated; see DESIGN.md §3)");

  constexpr int kResultSize = 5;  // the paper returns sets of five elements
  for (int which = 0; which < 3; ++which) {
    const Dataset dataset = MakeDataset(which);
    const auto engine = BuildAndFeed(dataset, MakeConfig(dataset));
    const auto& window = engine->window();
    const TfIdfIndex tfidf = TfIdfIndex::Build(window);
    const auto queries = TrendingQueries(dataset, 20);

    std::vector<std::vector<StudyEntry>> study_queries;
    std::vector<SparseVector> vectors;
    for (const QuerySpec& spec : queries) {
      std::vector<StudyEntry> entries;
      entries.push_back(
          StudyEntry{"TF-IDF", tfidf.TopK(spec.keywords, kResultSize)});
      entries.push_back(
          StudyEntry{"DIV", DivTopK(tfidf, spec.keywords, kResultSize)});
      entries.push_back(StudyEntry{
          "Sumblr", SumblrSummarize(window, tfidf, spec.keywords, kResultSize,
                                    dataset.stream.model.num_topics())});
      entries.push_back(
          StudyEntry{"REL", RelevanceTopK(window, spec.x, kResultSize)});
      KsirQuery query;
      query.k = kResultSize;
      query.x = spec.x;
      query.algorithm = Algorithm::kMttd;
      query.epsilon = 0.1;
      const auto ksir_result = engine->Query(query);
      KSIR_CHECK(ksir_result.ok());
      entries.push_back(StudyEntry{"k-SIR", ksir_result->element_ids});
      study_queries.push_back(std::move(entries));
      vectors.push_back(spec.x);
    }

    const auto study = RunProxyUserStudy(window, study_queries, vectors);
    KSIR_CHECK(study.ok());
    std::printf("\n[%s]  (kappa: represent. %.2f, impact %.2f)\n",
                dataset.name.c_str(), study->kappa_representativeness,
                study->kappa_impact);
    std::printf("%-10s %-18s %-10s\n", "method", "representativeness",
                "impact");
    std::printf("----------------------------------------\n");
    for (const MethodRating& rating : study->ratings) {
      std::printf("%-10s %-18.2f %-10.2f\n", rating.method.c_str(),
                  rating.representativeness, rating.impact);
    }
  }
  return 0;
}
