// Incremental state of one candidate result set S for a fixed query vector.
//
// Supports O(l * d) marginal-gain queries Delta(e | S) and additions by
// maintaining, per query topic i:
//  * best_sigma_i[w] = max_{e in S} sigma_i(w, e)   (word coverage, Eq. 3)
//  * survive_i[r]    = prod_{e in S ∩ r.ref} (1 - p_i(e -> r))
//                    = 1 - p_i(S -> r)              (probabilistic coverage,
//                                                    Eq. 4)
// so that
//  gain_i(e) = sum_w max(0, sigma_i(w, e) - best_sigma_i[w])
//            + (1-lambda)/eta scaled sum_{r in I_t(e)} p_i(e -> r) survive_i[r]
//
// Every submodular-maximization algorithm in this repository (MTTS, MTTD,
// CELF, SieveStreaming, brute force) builds on this class, which keeps the
// scoring semantics in exactly one place.
#ifndef KSIR_CORE_CANDIDATE_STATE_H_
#define KSIR_CORE_CANDIDATE_STATE_H_

#include <vector>

#include "common/flat_hash_map.h"
#include "common/sparse_vector.h"
#include "common/types.h"
#include "core/scoring.h"
#include "stream/element.h"

namespace ksir {

/// Mutable candidate set with incremental f(S, x) bookkeeping.
class CandidateState {
 public:
  /// `ctx` and `query` must outlive the state.
  CandidateState(const ScoringContext* ctx, const SparseVector* query);

  /// Delta(e | S) = f(S ∪ {e}, x) - f(S, x). Zero for members of S.
  double MarginalGain(const SocialElement& e) const;

  /// Adds `e` to S and returns its realized marginal gain. `e` must not be
  /// a member yet.
  double Add(const SocialElement& e);

  /// f(S, x).
  double score() const { return score_; }

  std::size_t size() const { return members_.size(); }
  bool Contains(ElementId id) const { return member_ids_.contains(id); }

  /// Members in insertion order.
  const std::vector<ElementId>& members() const { return members_; }

 private:
  struct TopicState {
    TopicId topic;
    double query_weight;  // x_i
    /// Current max sigma_i(w, e) over S per covered word.
    FlatHashMap<WordId, double> best_sigma;
    /// Remaining non-coverage probability per influenced element.
    FlatHashMap<ElementId, double> survive;
  };

  const ScoringContext* ctx_;
  std::vector<TopicState> topics_;
  std::vector<ElementId> members_;
  FlatHashSet<ElementId> member_ids_;
  double score_ = 0.0;
};

}  // namespace ksir

#endif  // KSIR_CORE_CANDIDATE_STATE_H_
