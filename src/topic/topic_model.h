// Probabilistic topic model Theta = {theta_1, ..., theta_z}: each topic is a
// multinomial over the vocabulary (sum_w p_i(w) = 1). The paper treats the
// model as a black-box oracle providing p_i(w) and p_i(e); this class is that
// oracle. Models are produced by LdaTrainer / BtmTrainer, loaded from disk,
// or built directly from a matrix (synthetic ground truth).
#ifndef KSIR_TOPIC_TOPIC_MODEL_H_
#define KSIR_TOPIC_TOPIC_MODEL_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace ksir {

/// Immutable topic-word distribution matrix plus a corpus-level topic prior.
class TopicModel {
 public:
  /// Builds from a topic-major matrix `topic_word[z][m]`; every row must be
  /// a distribution (nonnegative, summing to 1 within tolerance — rows are
  /// renormalized defensively). `topic_prior` (p(z), used by BTM inference
  /// and as the Dirichlet mean for Gibbs inference) defaults to uniform.
  static StatusOr<TopicModel> FromMatrix(
      std::vector<std::vector<double>> topic_word,
      std::vector<double> topic_prior = {});

  std::size_t num_topics() const { return topic_word_.size(); }
  std::size_t vocab_size() const { return vocab_size_; }

  /// p_i(w): probability of word `w` under topic `i`. Words outside the
  /// training vocabulary have probability 0.
  double WordProb(TopicId topic, WordId word) const {
    KSIR_DCHECK(topic >= 0 &&
                static_cast<std::size_t>(topic) < topic_word_.size());
    const auto& row = topic_word_[static_cast<std::size_t>(topic)];
    if (word < 0 || static_cast<std::size_t>(word) >= row.size()) return 0.0;
    return row[static_cast<std::size_t>(word)];
  }

  /// Full distribution of topic `i` over words.
  const std::vector<double>& TopicRow(TopicId topic) const {
    KSIR_DCHECK(topic >= 0 &&
                static_cast<std::size_t>(topic) < topic_word_.size());
    return topic_word_[static_cast<std::size_t>(topic)];
  }

  /// -p_i(w) * ln p_i(w), precomputed at construction. Semantic scoring
  /// (Eq. 1) factors sigma over this table so an element's R_i(e) costs one
  /// log per (element, topic) instead of one per (word, topic) — see
  /// ScoringContext::SemanticScore.
  double WordEntropy(TopicId topic, WordId word) const {
    KSIR_DCHECK(topic >= 0 &&
                static_cast<std::size_t>(topic) < word_entropy_.size());
    const auto& row = word_entropy_[static_cast<std::size_t>(topic)];
    if (word < 0 || static_cast<std::size_t>(word) >= row.size()) return 0.0;
    return row[static_cast<std::size_t>(word)];
  }

  /// Corpus-level topic prior p(z) (sums to 1).
  const std::vector<double>& topic_prior() const { return topic_prior_; }

  /// Top `n` most probable words of a topic (ids, descending probability).
  std::vector<WordId> TopWords(TopicId topic, std::size_t n) const;

  /// Serializes to a stream in a stable text format.
  Status Save(std::ostream* out) const;
  /// Deserializes a model previously written by Save().
  static StatusOr<TopicModel> Load(std::istream* in);

 private:
  TopicModel() = default;

  std::vector<std::vector<double>> topic_word_;
  /// word_entropy_[i][w] = -p_i(w) * ln p_i(w) (0 where p_i(w) = 0).
  std::vector<std::vector<double>> word_entropy_;
  std::vector<double> topic_prior_;
  std::size_t vocab_size_ = 0;
};

}  // namespace ksir

#endif  // KSIR_TOPIC_TOPIC_MODEL_H_
