# Empty dependencies file for ksir_search.
# This may be replaced when dependencies are built.
