#include "service/service.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "telemetry/exposition.h"

namespace ksir {

Status ValidateServiceConfig(const ServiceConfig& config) {
  KSIR_RETURN_NOT_OK(ValidateEngineConfig(config.engine));
  KSIR_RETURN_NOT_OK(ValidateTelemetryConfig(config.telemetry));
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (config.cache_capacity < 1) {
    return Status::InvalidArgument("cache_capacity must be >= 1");
  }
  if (config.cache_quantum <= 0.0) {
    return Status::InvalidArgument("cache_quantum must be positive");
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<KsirService>> KsirService::Create(
    ServiceConfig config, const TopicModel* model) {
  KSIR_RETURN_NOT_OK(ValidateServiceConfig(config));
  if (model == nullptr) {
    return Status::InvalidArgument("topic model must not be null");
  }
  return std::unique_ptr<KsirService>(new KsirService(config, model));
}

KsirService::KsirService(ServiceConfig config, const TopicModel* model)
    : config_(config),
      telemetry_(std::make_unique<Telemetry>(config.telemetry)),
      cache_(config.cache_capacity, config.cache_quantum, telemetry_.get()) {
  // One pool for everything: shard advances, query fan-out, and — when
  // parallel maintenance is configured — every shard engine's staged
  // bucket apply (passed into the engines below instead of letting each
  // spawn its own).
  const std::size_t default_workers = std::max(
      config_.num_shards, UsesParallelMaintenance(config_.engine)
                              ? config_.engine.maintenance_threads
                              : std::size_t{1});
  if (config_.shared_pool != nullptr) {
    pool_ = config_.shared_pool;
  } else {
    owned_pool_ =
        MakeWorkerPool(config_.num_workers, default_workers, telemetry_.get(),
                       PoolOptions{config_.pin_workers});
    pool_ = owned_pool_.get();
  }
  WorkerPool* maintenance_pool =
      UsesParallelMaintenance(config_.engine) ? pool_ : nullptr;
  shards_.reserve(config_.num_shards);
  std::vector<KsirEngine*> shard_ptrs;
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<KsirEngine>(
        config_.engine, model, maintenance_pool, telemetry_.get()));
    shard_ptrs.push_back(shards_.back().get());
  }
  router_ = std::make_unique<ShardRouter>(
      config_.num_shards, config_.engine.max_shard_imbalance,
      config_.engine.window_length);
  ingestor_ = std::make_unique<ShardedIngestor>(shard_ptrs, router_.get(),
                                                pool_, telemetry_.get());
  planner_ = std::make_unique<QueryPlanner>(shard_ptrs, model, pool_,
                                            telemetry_.get());
  standing_ = std::make_unique<ShardedStandingQueryManager>(
      [this](const KsirQuery& query) { return Query(query); },
      config_.subscription_mode, telemetry_.get());
  summaries_scratch_.resize(config_.num_shards);
  MetricRegistry& reg = telemetry_->registry();
  queries_counter_ = reg.GetCounter("ksir_service_queries_total",
                                    "Ad-hoc queries answered (any path)");
  query_hist_ = reg.GetHistogram(
      "ksir_service_query_seconds",
      "Whole Query(): cache lookup, plan (on miss), cache insert");
  cache_lookup_hist_ = reg.GetHistogram(
      "ksir_service_cache_lookup_seconds",
      "Cache key build + lookup at the head of Query()");
}

Status KsirService::AdvanceTo(Timestamp bucket_end,
                              std::vector<SocialElement> bucket) {
  // Seqlock write side: generation is odd while shard states are mixed.
  write_generation_.fetch_add(1, std::memory_order_acq_rel);
  const Status ingested = ingestor_->AdvanceTo(bucket_end, std::move(bucket));
  if (ingested.ok()) {
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  write_generation_.fetch_add(1, std::memory_order_acq_rel);
  if (!ingested.ok()) {
    // A partial failure may have advanced some shards without bumping the
    // epoch; drop everything rather than serve results of the old state.
    cache_.Clear();
    return ingested;
  }
  cache_.InvalidateBefore(epoch_.load(std::memory_order_acquire));
  if (config_.evaluate_standing_after_advance && standing_->size() > 0) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      summaries_scratch_[i] = shards_[i]->last_advance_summary();
    }
    const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
    if (!standing_->AfterAdvance(summaries_scratch_, epoch).ok()) {
      standing_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

Status KsirService::Append(std::vector<SocialElement> elements) {
  // Bucket-step through our own AdvanceTo so every bucket invalidates the
  // cache and refreshes the standing queries exactly once.
  return AppendInBuckets(
      std::move(elements), config_.engine.bucket_length,
      [this]() { return now(); },
      [this](Timestamp bucket_end, std::vector<SocialElement> bucket) {
        return AdvanceTo(bucket_end, std::move(bucket));
      });
}

StatusOr<QueryResult> KsirService::Query(const KsirQuery& query) const {
  // No SampleUnit here: the planner's Plan is the trace unit of the query
  // path, so these spans ride along whenever the tracer is already armed
  // (the cache-lookup span of a sampled plan's query, approximately).
  queries_counter_->Add(1);
  StageScope query_scope(telemetry_.get(), query_hist_, "service.query");
  const std::uint64_t generation =
      write_generation_.load(std::memory_order_acquire);
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  ResultCacheKey key;
  {
    StageScope lookup_scope(telemetry_.get(), cache_lookup_hist_,
                            "service.cache_lookup");
    key = cache_.MakeKey(query, epoch);
    if (auto cached = cache_.Lookup(key); cached.has_value()) {
      return *std::move(cached);
    }
  }
  KSIR_ASSIGN_OR_RETURN(QueryResult result, planner_->Plan(query));
  // Seqlock read side: only cache when the whole fan-out ran inside one
  // even (quiescent) generation — otherwise the result may mix pre- and
  // post-bucket shard states and must not be served to later readers.
  if (generation % 2 == 0 &&
      write_generation_.load(std::memory_order_acquire) == generation) {
    cache_.Insert(key, result);
  }
  return result;
}

ServiceStats KsirService::stats() const {
  ServiceStats stats;
  stats.epoch = epoch();
  stats.ingestion = ingestor_->stats();
  stats.cache = cache_.stats();
  stats.planner = planner_->stats();
  stats.standing_errors = standing_errors_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    stats.num_active_total += shard->num_active();
  }
  return stats;
}

std::string KsirService::MetricsText() const {
  return PrometheusText(telemetry_->registry());
}

std::string KsirService::MetricsJsonDump() const {
  return MetricsJson(telemetry_->registry());
}

std::string KsirService::TraceJson() const {
  return ChromeTraceJson(telemetry_->tracer());
}

}  // namespace ksir
