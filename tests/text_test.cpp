// Unit tests for the text substrate: tokenizer, stop words, vocabulary,
// documents, corpus.
#include <gtest/gtest.h>

#include "text/corpus.h"
#include "text/document.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace ksir {
namespace {

// -------------------------------------------------------------- Tokenizer --

TEST(TokenizerTest, LowercasesAndSplitsOnPunctuation) {
  Tokenizer tok;
  const auto tokens = tok.Tokenize("LeBron is GREAT! #NBAPlayoffs");
  EXPECT_EQ(tokens, (std::vector<std::string>{"lebron", "is", "great",
                                              "nbaplayoffs"}));
}

TEST(TokenizerTest, HashtagsAndMentionsSurvive) {
  Tokenizer tok;
  const auto tokens =
      tok.Tokenize("@asroma win but it's @LFC joining @realmadrid in #UCL");
  EXPECT_EQ(tokens, (std::vector<std::string>{"asroma", "win", "but", "it's",
                                              "lfc", "joining", "realmadrid",
                                              "in", "ucl"}));
}

TEST(TokenizerTest, KeepSigilsOptionPreservesMarkers) {
  TokenizerOptions options;
  options.keep_sigils = true;
  Tokenizer tok(options);
  const auto tokens = tok.Tokenize("@LFC wins #UCL");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"@lfc", "wins", "#ucl"}));
}

TEST(TokenizerTest, StripsUrls) {
  Tokenizer tok;
  const auto tokens =
      tok.Tokenize("read this https://t.co/abc123 now www.example.com");
  EXPECT_EQ(tokens, (std::vector<std::string>{"read", "this", "now"}));
}

TEST(TokenizerTest, DropsPureNumbersButKeepsAlphanumerics) {
  Tokenizer tok;
  const auto tokens = tok.Tokenize("Cavs defeat Raptors 128-110 in game7");
  EXPECT_EQ(tokens, (std::vector<std::string>{"cavs", "defeat", "raptors",
                                              "in", "game7"}));
}

TEST(TokenizerTest, MinLengthFiltersShortTokens) {
  Tokenizer tok;  // min length 2
  const auto tokens = tok.Tokenize("a b cd");
  EXPECT_EQ(tokens, (std::vector<std::string>{"cd"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnlyInput) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("  ... !!! @ #").empty());
}

TEST(TokenizerTest, HyphenatedAndUnderscoreTokens) {
  Tokenizer tok;
  const auto tokens = tok.Tokenize("semi-final kian_lee -edge-");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"semi-final", "kian_lee", "edge"}));
}

// -------------------------------------------------------------- StopWords --

TEST(StopWordsTest, EnglishListContainsCommonWords) {
  const StopWordSet& sw = StopWordSet::English();
  EXPECT_TRUE(sw.Contains("the"));
  EXPECT_TRUE(sw.Contains("is"));
  EXPECT_TRUE(sw.Contains("and"));
  EXPECT_TRUE(sw.Contains("rt"));
  EXPECT_FALSE(sw.Contains("lebron"));
  EXPECT_FALSE(sw.Contains("champion"));
}

TEST(StopWordsTest, CustomSet) {
  StopWordSet sw;
  EXPECT_EQ(sw.size(), 0u);
  sw.Add("foo");
  EXPECT_TRUE(sw.Contains("foo"));
  EXPECT_FALSE(sw.Contains("bar"));
}

// ------------------------------------------------------------- Vocabulary --

TEST(VocabularyTest, InterningAssignsDenseIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.GetOrAdd("alpha"), 0);
  EXPECT_EQ(vocab.GetOrAdd("beta"), 1);
  EXPECT_EQ(vocab.GetOrAdd("alpha"), 0);
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.WordOf(0), "alpha");
  EXPECT_EQ(vocab.WordOf(1), "beta");
}

TEST(VocabularyTest, LookupMissingReturnsInvalid) {
  Vocabulary vocab;
  vocab.GetOrAdd("alpha");
  EXPECT_EQ(vocab.Lookup("alpha"), 0);
  EXPECT_EQ(vocab.Lookup("gamma"), kInvalidWordId);
}

TEST(VocabularyTest, OccurrenceCounting) {
  Vocabulary vocab;
  const WordId id = vocab.GetOrAdd("alpha");
  EXPECT_EQ(vocab.OccurrenceCount(id), 0);
  vocab.AddOccurrences(id);
  vocab.AddOccurrences(id, 4);
  EXPECT_EQ(vocab.OccurrenceCount(id), 5);
}

// --------------------------------------------------------------- Document --

TEST(DocumentTest, FromWordIdsCountsFrequencies) {
  const Document doc = Document::FromWordIds({3, 1, 3, 3, 2});
  EXPECT_EQ(doc.num_tokens(), 5);
  EXPECT_EQ(doc.num_distinct_words(), 3u);
  EXPECT_EQ(doc.FrequencyOf(3), 3);
  EXPECT_EQ(doc.FrequencyOf(1), 1);
  EXPECT_EQ(doc.FrequencyOf(2), 1);
  EXPECT_EQ(doc.FrequencyOf(9), 0);
}

TEST(DocumentTest, WordCountsSortedByWordId) {
  const Document doc = Document::FromWordIds({5, 0, 2});
  ASSERT_EQ(doc.word_counts().size(), 3u);
  EXPECT_EQ(doc.word_counts()[0].first, 0);
  EXPECT_EQ(doc.word_counts()[1].first, 2);
  EXPECT_EQ(doc.word_counts()[2].first, 5);
}

TEST(DocumentTest, EmptyDocument) {
  const Document doc = Document::FromWordIds({});
  EXPECT_TRUE(doc.empty());
  EXPECT_EQ(doc.num_tokens(), 0);
}

TEST(DocumentTest, ToTokenListExpandsFrequencies) {
  const Document doc = Document::FromWordIds({2, 2, 7});
  EXPECT_EQ(doc.ToTokenList(), (std::vector<WordId>{2, 2, 7}));
}

TEST(DocumentTest, FromTextRemovesStopWordsAndInterns) {
  Vocabulary vocab;
  Tokenizer tok;
  const Document doc = Document::FromText(
      "LeBron is the 1st player with 40+ points", tok,
      StopWordSet::English(), &vocab);
  // "is", "the", "with" are stop words; "1st" keeps (alphanumeric);
  // "40" is a pure number and dropped.
  EXPECT_NE(vocab.Lookup("lebron"), kInvalidWordId);
  EXPECT_EQ(vocab.Lookup("the"), kInvalidWordId);
  EXPECT_NE(vocab.Lookup("player"), kInvalidWordId);
  EXPECT_NE(vocab.Lookup("points"), kInvalidWordId);
  EXPECT_EQ(doc.FrequencyOf(vocab.Lookup("lebron")), 1);
  EXPECT_GT(vocab.OccurrenceCount(vocab.Lookup("lebron")), 0);
}

TEST(DocumentTest, FromTextCountsRepeats) {
  Vocabulary vocab;
  Tokenizer tok;
  const Document doc = Document::FromText("goal goal goal", tok,
                                          StopWordSet::English(), &vocab);
  EXPECT_EQ(doc.FrequencyOf(vocab.Lookup("goal")), 3);
  EXPECT_EQ(doc.num_tokens(), 3);
}

// ----------------------------------------------------------------- Corpus --

TEST(CorpusTest, TracksDocumentFrequency) {
  Vocabulary vocab;
  Corpus corpus(&vocab);
  corpus.Add(Document::FromWordIds({0, 1, 1}));
  corpus.Add(Document::FromWordIds({1, 2}));
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus.DocumentFrequency(0), 1);
  EXPECT_EQ(corpus.DocumentFrequency(1), 2);  // df counts documents, not tokens
  EXPECT_EQ(corpus.DocumentFrequency(2), 1);
  EXPECT_EQ(corpus.DocumentFrequency(7), 0);
}

TEST(CorpusTest, AverageLength) {
  Vocabulary vocab;
  Corpus corpus(&vocab);
  EXPECT_DOUBLE_EQ(corpus.AverageLength(), 0.0);
  corpus.Add(Document::FromWordIds({0, 1}));
  corpus.Add(Document::FromWordIds({0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(corpus.AverageLength(), 3.0);
  EXPECT_EQ(corpus.total_tokens(), 6);
}

}  // namespace
}  // namespace ksir
