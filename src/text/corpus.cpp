#include "text/corpus.h"

#include "common/check.h"

namespace ksir {

Corpus::Corpus(const Vocabulary* vocab) : vocab_(vocab) {
  KSIR_CHECK(vocab != nullptr);
}

void Corpus::Add(Document doc) {
  for (const auto& [word, count] : doc.word_counts()) {
    const auto idx = static_cast<std::size_t>(word);
    if (idx >= doc_freq_.size()) doc_freq_.resize(idx + 1, 0);
    ++doc_freq_[idx];
  }
  total_tokens_ += doc.num_tokens();
  documents_.push_back(std::move(doc));
}

std::int64_t Corpus::DocumentFrequency(WordId word) const {
  KSIR_CHECK(word >= 0);
  const auto idx = static_cast<std::size_t>(word);
  return idx < doc_freq_.size() ? doc_freq_[idx] : 0;
}

double Corpus::AverageLength() const {
  if (documents_.empty()) return 0.0;
  return static_cast<double>(total_tokens_) /
         static_cast<double>(documents_.size());
}

}  // namespace ksir
