#include "core/ranked_list.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ksir {

std::size_t RankedList::FindChunk(const Key& key) const {
  // First chunk whose last (greatest in comparator order, i.e. lowest-score)
  // key is not ordered before `key`; keys beyond every chunk map to the
  // final chunk. The dispatched kernel narrows branchily, then counts the
  // final span branchlessly — the probe keys are effectively random, so a
  // pure binary search mispredicts half its steps.
  const std::size_t idx =
      kernels::LowerBoundKeys(chunk_last_.data(), chunk_last_.size(), key);
  return idx == chunks_.size() ? idx - 1 : idx;
}

std::unique_ptr<RankedList::Chunk> RankedList::NewChunk() {
  auto chunk = std::make_unique<Chunk>();
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(nullptr);
  }
  chunk->slot = slot;
  chunk->gen = ++next_gen_;
  slots_[slot] = chunk.get();
  return chunk;
}

void RankedList::FreeChunk(Chunk* chunk) {
  KSIR_DCHECK(slots_[chunk->slot] == chunk);
  slots_[chunk->slot] = nullptr;
  free_slots_.push_back(chunk->slot);
}

void RankedList::Renumber(std::size_t from) {
  for (std::size_t i = from; i < chunks_.size(); ++i) {
    chunks_[i]->pos = static_cast<std::uint32_t>(i);
  }
}

RankedList::Chunk* RankedList::ResolveHandle(Handle h) const {
  if (h.slot >= slots_.size()) return nullptr;
  Chunk* chunk = slots_[h.slot];
  if (chunk == nullptr || chunk->gen != h.gen) return nullptr;
  return chunk;
}

RankedList::Chunk* RankedList::ChunkForId(ElementId id) const {
  KSIR_CHECK(track_ids_);
  ++probes_;
  const auto it = chunk_of_.find(id);
  KSIR_CHECK(it != chunk_of_.end());
  Chunk* chunk = slots_[it->second];
  KSIR_CHECK(chunk != nullptr);
  return chunk;
}

std::uint32_t RankedList::OffsetOfId(const Chunk* chunk, ElementId id) {
  // Strided id scan over <= 64 contiguous keys (ids interleave with the
  // scores, stride 2 in 8-byte words).
  const std::size_t offset =
      kernels::FindId64(&chunk->keys[0].id, chunk->size, 2, id);
  KSIR_CHECK(offset < chunk->size &&
             "element missing from its side-table chunk");
  return static_cast<std::uint32_t>(offset);
}

RankedList::Chunk* RankedList::Locate(ElementId id, double old_score,
                                      const Handle* handle,
                                      std::uint32_t* offset) const {
  if (handle != nullptr) {
    Chunk* chunk = ResolveHandle(*handle);
    if (chunk != nullptr) {
      const Key key{old_score, id};
      const Key* const first = chunk->keys.data();
      const std::size_t pos = kernels::LowerBoundKeys(first, chunk->size, key);
      if (pos < chunk->size && first[pos] == key) {
        *offset = static_cast<std::uint32_t>(pos);
        return chunk;
      }
    }
  }
  if (!track_ids_) {
    // Handle miss without a side table: the carried key is self-locating —
    // one binary search of the chunk directory, then of the chunk.
    KSIR_CHECK(handle != nullptr && !chunks_.empty());
    const Key key{old_score, id};
    Chunk* chunk = chunks_[FindChunk(key)].get();
    const Key* const first = chunk->keys.data();
    const std::size_t pos = kernels::LowerBoundKeys(first, chunk->size, key);
    KSIR_CHECK(pos < chunk->size && first[pos] == key);
    *offset = static_cast<std::uint32_t>(pos);
    return chunk;
  }
  // Handle miss (or id-keyed caller): the side table still knows the chunk;
  // within it the id is found by one scan of <= 64 contiguous keys.
  Chunk* chunk = ChunkForId(id);
  *offset = OffsetOfId(chunk, id);
  KSIR_DCHECK(handle == nullptr || chunk->keys[*offset].score == old_score);
  return chunk;
}

RankedList::Chunk* RankedList::InsertKey(const Key& key) {
  if (chunks_.empty()) {
    chunks_.push_back(NewChunk());
    Chunk* chunk = chunks_[0].get();
    chunk->keys[0] = key;
    chunk->size = 1;
    chunk->pos = 0;
    chunk_last_.push_back(key);
    ++size_;
    return chunk;
  }
  std::size_t idx = FindChunk(key);
  Chunk* chunk = chunks_[idx].get();
  if (chunk->size == kChunkCapacity) {
    // Split into two halves, then re-aim at the half that owns `key`. The
    // lower half keeps its slot/generation (its elements' handles stay
    // valid); the upper half's elements change chunks, so their side-table
    // rows are rewritten here and their old handles miss harmlessly.
    auto upper_owned = NewChunk();
    Chunk* upper = upper_owned.get();
    constexpr std::uint32_t kHalf = kChunkCapacity / 2;
    kernels::CopyKeys(upper->keys.data(), chunk->keys.data() + kHalf,
                      kChunkCapacity - kHalf);
    upper->size = kChunkCapacity - kHalf;
    chunk->size = kHalf;
    if (track_ids_) {
      for (std::uint32_t i = 0; i < upper->size; ++i) {
        ++probes_;
        chunk_of_[upper->keys[i].id] = upper->slot;
      }
    }
    const auto offset = static_cast<std::ptrdiff_t>(idx);
    chunks_.insert(chunks_.begin() + offset + 1, std::move(upper_owned));
    chunk_last_.insert(chunk_last_.begin() + offset,
                       chunks_[idx]->keys[kHalf - 1]);
    Renumber(idx + 1);
    if (chunks_[idx + 1]->keys[0] < key) {
      ++idx;
    }
    chunk = chunks_[idx].get();
  }
  Key* const first = chunk->keys.data();
  const std::size_t pos = kernels::LowerBoundKeys(first, chunk->size, key);
  kernels::CopyKeysBackward(first + pos + 1, first + pos, chunk->size - pos);
  first[pos] = key;
  ++chunk->size;
  chunk_last_[idx] = chunk->keys[chunk->size - 1];
  ++size_;
  return chunk;
}

void RankedList::EraseKeyAt(Chunk* chunk, std::uint32_t offset) {
  const std::size_t idx = chunk->pos;
  KSIR_DCHECK(chunks_[idx].get() == chunk);
  Key* const first = chunk->keys.data();
  kernels::CopyKeys(first + offset, first + offset + 1,
                    chunk->size - offset - 1);
  --chunk->size;
  --size_;
  if (chunk->size == 0) {
    FreeChunk(chunk);
    const auto pos = static_cast<std::ptrdiff_t>(idx);
    chunks_.erase(chunks_.begin() + pos);
    chunk_last_.erase(chunk_last_.begin() + pos);
    Renumber(idx);
  } else {
    chunk_last_[idx] = chunk->keys[chunk->size - 1];
    if (chunk->size < kChunkCapacity / 4) MaybeMerge(idx);
  }
}

void RankedList::EraseKey(const Key& key) {
  KSIR_CHECK(!chunks_.empty());
  const std::size_t idx = FindChunk(key);
  Chunk* chunk = chunks_[idx].get();
  Key* const first = chunk->keys.data();
  const std::size_t pos = kernels::LowerBoundKeys(first, chunk->size, key);
  KSIR_CHECK(pos < chunk->size && first[pos] == key);
  EraseKeyAt(chunk, static_cast<std::uint32_t>(pos));
}

void RankedList::MaybeMerge(std::size_t idx) {
  // Fold the sparse chunk into a neighbor when the pair stays under
  // capacity, bounding the chunk count under sustained churn. The moved
  // elements' side-table rows follow; their handles go stale and miss.
  const auto merge_into = [this](std::size_t dst, std::size_t src) {
    Chunk* a = chunks_[dst].get();
    Chunk* b = chunks_[src].get();
    kernels::CopyKeys(a->keys.data() + a->size, b->keys.data(), b->size);
    if (track_ids_) {
      for (std::uint32_t i = 0; i < b->size; ++i) {
        ++probes_;
        chunk_of_[b->keys[i].id] = a->slot;
      }
    }
    a->size += b->size;
    chunk_last_[dst] = a->keys[a->size - 1];
    FreeChunk(b);
    const auto offset = static_cast<std::ptrdiff_t>(src);
    chunks_.erase(chunks_.begin() + offset);
    chunk_last_.erase(chunk_last_.begin() + offset);
    Renumber(src);
  };
  const std::uint32_t self = chunks_[idx]->size;
  if (idx + 1 < chunks_.size() &&
      self + chunks_[idx + 1]->size <= kChunkCapacity) {
    merge_into(idx, idx + 1);
  } else if (idx > 0 && chunks_[idx - 1]->size + self <= kChunkCapacity) {
    merge_into(idx - 1, idx);
  }
}

RankedList::Handle RankedList::Insert(ElementId id, double score) {
  // A NaN key would violate Key's strict weak ordering and silently corrupt
  // chunk order; reject it at the boundary instead.
  KSIR_CHECK(!std::isnan(score));
  Chunk* chunk = InsertKey(Key{score, id});
  if (track_ids_) {
    ++probes_;
    const auto [it, inserted] = chunk_of_.emplace(id, chunk->slot);
    KSIR_CHECK(inserted);
  }
  return Handle{chunk->slot, chunk->gen};
}

RankedList::Chunk* RankedList::MoveAt(Chunk* chunk, std::uint32_t offset,
                                      const Key& new_key) {
  const std::size_t idx = chunk->pos;
  // The new key stays in this chunk iff it sorts at or before the chunk's
  // last key and at or after the previous chunk's last key (with the old
  // key still counted as present, which only widens the chunk's span).
  const bool within =
      !(chunk->keys[chunk->size - 1] < new_key) &&
      (idx == 0 || chunk_last_[idx - 1] < new_key);
  if (!within) {
    const std::uint32_t old_slot = chunk->slot;
    EraseKeyAt(chunk, offset);
    Chunk* dest = InsertKey(new_key);
    if (track_ids_ && dest->slot != old_slot) {
      ++probes_;
      chunk_of_[new_key.id] = dest->slot;
    }
    return dest;
  }
  Key* const first = chunk->keys.data();
  Key* const old_pos = first + offset;
  Key* const new_pos =
      first + kernels::LowerBoundKeys(first, chunk->size, new_key);
  if (new_pos == old_pos || new_pos == old_pos + 1) {
    *old_pos = new_key;  // neighbors unchanged: overwrite in place
  } else if (new_pos < old_pos) {
    kernels::CopyKeysBackward(new_pos + 1, new_pos,
                              static_cast<std::size_t>(old_pos - new_pos));
    *new_pos = new_key;
  } else {
    kernels::CopyKeys(old_pos, old_pos + 1,
                      static_cast<std::size_t>(new_pos - old_pos) - 1);
    *(new_pos - 1) = new_key;
  }
  chunk_last_[idx] = chunk->keys[chunk->size - 1];
  return chunk;
}

void RankedList::Update(ElementId id, double score) {
  KSIR_CHECK(!std::isnan(score));
  Chunk* chunk = ChunkForId(id);
  const std::uint32_t offset = OffsetOfId(chunk, id);
  if (chunk->keys[offset].score == score) return;  // key unchanged
  MoveAt(chunk, offset, Key{score, id});
}

void RankedList::UpdateHandle(const HandleUpdate& u) {
  KSIR_CHECK(!std::isnan(u.score));
  std::uint32_t offset = 0;
  Chunk* chunk = Locate(u.id, u.old_score, u.handle, &offset);
  if (chunk->keys[offset].score == u.score) {
    *u.handle = Handle{chunk->slot, chunk->gen};
    return;
  }
  Chunk* dest = MoveAt(chunk, offset, Key{u.score, u.id});
  *u.handle = Handle{dest->slot, dest->gen};
}

void RankedList::ApplyBatch(const Tuple* updates, std::size_t n,
                            BatchScratch* scratch) {
  scratch->removals.clear();
  scratch->insertions.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const Tuple& update = updates[i];
    KSIR_CHECK(!std::isnan(update.score));
    std::uint32_t offset = 0;
    Chunk* chunk = Locate(update.id, 0.0, nullptr, &offset);
    const Key old_key = chunk->keys[offset];
    if (old_key.score == update.score) continue;  // key unchanged
    scratch->removals.push_back(old_key);
    scratch->insertions.push_back(BatchScratch::PendingInsert{
        Key{update.score, update.id}, nullptr, chunk->slot});
  }
  MergeBatch(scratch);
}

void RankedList::ApplyBatchHandles(const HandleUpdate* updates, std::size_t n,
                                   BatchScratch* scratch) {
  scratch->removals.clear();
  scratch->insertions.clear();
  if (!track_ids_) {
    // The carried listed scores ARE the old keys, so the batch needs no
    // per-tuple resolution at all: the merge sweep removes the carried
    // keys (its own consistency checks verify every one was present),
    // inserts the new ones and mints the refreshed handles where they
    // land. Score-unchanged tuples were already elided upstream.
    for (std::size_t i = 0; i < n; ++i) {
      const HandleUpdate& u = updates[i];
      KSIR_CHECK(!std::isnan(u.score));
      scratch->removals.push_back(Key{u.old_score, u.id});
      scratch->insertions.push_back(BatchScratch::PendingInsert{
          Key{u.score, u.id}, u.handle, Handle::kInvalidSlot});
    }
    MergeBatch(scratch);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const HandleUpdate& u = updates[i];
    KSIR_CHECK(!std::isnan(u.score));
    std::uint32_t offset = 0;
    Chunk* chunk = Locate(u.id, u.old_score, u.handle, &offset);
    if (chunk->keys[offset].score == u.score) {
      *u.handle = Handle{chunk->slot, chunk->gen};
      continue;
    }
    scratch->removals.push_back(chunk->keys[offset]);
    scratch->insertions.push_back(BatchScratch::PendingInsert{
        Key{u.score, u.id}, u.handle, chunk->slot});
  }
  MergeBatch(scratch);
}

void RankedList::MergeBatch(BatchScratch* scratch) {
  auto& removals = scratch->removals;
  auto& insertions = scratch->insertions;
  auto& deferred_removals = scratch->deferred_removals;
  auto& deferred_insertions = scratch->deferred_insertions;
  deferred_removals.clear();
  deferred_insertions.clear();
  if (removals.empty()) return;
  std::sort(removals.begin(), removals.end());
  std::sort(insertions.begin(), insertions.end(),
            [](const BatchScratch::PendingInsert& a,
               const BatchScratch::PendingInsert& b) { return a.key < b.key; });

  // One sweep over the chunk directory: the sorted removal/insertion runs
  // are partitioned by the (original) chunk boundaries and each touched
  // chunk is rewritten by ONE in-place three-way merge — no allocation, no
  // directory search per key, untouched chunks never inspected. Keys are
  // unique across all three streams (ids are unique per list; a
  // repositioned id's old and new key differ), so the merge needs no
  // tie-breaking. A chunk the batch would grow past capacity defers its
  // ops to the per-element path below (rare: needs >capacity keys landing
  // in one chunk's span). Landed insertions mint their handle on the spot
  // and rewrite the side table only when the element changed chunks.
  std::size_t ri = 0;
  std::size_t ii = 0;
  bool any_small = false;
  for (std::size_t c = 0;
       c < chunks_.size() && (ri < removals.size() || ii < insertions.size());
       ++c) {
    Chunk* chunk = chunks_[c].get();
    const Key last = chunk_last_[c];
    const bool last_chunk = c + 1 == chunks_.size();
    std::size_t r_end = ri;
    std::size_t i_end = ii;
    if (last_chunk) {
      r_end = removals.size();  // removals are always present keys
      i_end = insertions.size();
    } else {
      while (r_end < removals.size() && !(last < removals[r_end])) ++r_end;
      while (i_end < insertions.size() && !(last < insertions[i_end].key)) {
        ++i_end;
      }
    }
    if (r_end == ri && i_end == ii) continue;
    const std::size_t new_size = chunk->size - (r_end - ri) + (i_end - ii);
    if (new_size > kChunkCapacity) {
      deferred_removals.insert(
          deferred_removals.end(),
          removals.begin() + static_cast<std::ptrdiff_t>(ri),
          removals.begin() + static_cast<std::ptrdiff_t>(r_end));
      deferred_insertions.insert(
          deferred_insertions.end(),
          insertions.begin() + static_cast<std::ptrdiff_t>(ii),
          insertions.begin() + static_cast<std::ptrdiff_t>(i_end));
      ri = r_end;
      ii = i_end;
      continue;
    }
    // Merge only the affected span [s, e): from the first event key to one
    // past the last. Repositions are typically small nudges clustered near
    // the top of the list, so the span is a fraction of the chunk.
    Key* const keys = chunk->keys.data();
    const std::uint32_t old_size = chunk->size;
    const Key lo =
        ri < r_end && (ii == i_end || removals[ri] < insertions[ii].key)
            ? removals[ri]
            : insertions[ii].key;
    const Key hi =
        r_end > ri && (i_end == ii ||
                       insertions[i_end - 1].key < removals[r_end - 1])
            ? removals[r_end - 1]
            : insertions[i_end - 1].key;
    const auto s = static_cast<std::uint32_t>(
        kernels::LowerBoundKeys(keys, old_size, lo));
    const auto e = static_cast<std::uint32_t>(
        kernels::UpperBoundKeys(keys, old_size, hi));
    const std::uint32_t old_span = e - s;
    const auto new_span = static_cast<std::uint32_t>(
        old_span - (r_end - ri) + (i_end - ii));
    std::array<Key, kChunkCapacity> tmp;
    // Three steps, each a kernel: (1) copy the span aside compacting the
    // removal run out of it, (2) shift the untouched suffix once, (3)
    // two-way merge of the kept keys with the insertion run back into
    // place. Handle minting needs only the destination chunk's slot/gen,
    // so it runs after the merge, off the hot key-move path.
    std::uint32_t kept = 0;
    for (std::uint32_t src = s; src < e; ++src) {
      if (ri < r_end && removals[ri] == keys[src]) {
        ++ri;
        continue;
      }
      tmp[kept++] = keys[src];
    }
    KSIR_CHECK(ri == r_end);
    if (new_span != old_span) {  // shift the untouched suffix once
      if (new_span < old_span) {
        kernels::CopyKeys(keys + s + new_span, keys + e, old_size - e);
      } else {
        kernels::CopyKeysBackward(keys + e + (new_span - old_span), keys + e,
                                  old_size - e);
      }
    }
    const auto ins_count = static_cast<std::uint32_t>(i_end - ii);
    KSIR_CHECK(kept + ins_count == new_span);
    std::array<Key, kChunkCapacity> ins_keys;
    for (std::uint32_t k = 0; k < ins_count; ++k) {
      ins_keys[k] = insertions[ii + k].key;
    }
    kernels::MergeKeys(keys + s, tmp.data(), kept, ins_keys.data(),
                       ins_count);
    for (; ii < i_end; ++ii) {
      const BatchScratch::PendingInsert& ins = insertions[ii];
      if (ins.handle != nullptr) {
        *ins.handle = Handle{chunk->slot, chunk->gen};
      }
      if (track_ids_ && ins.old_slot != chunk->slot) {
        ++probes_;
        chunk_of_[ins.key.id] = chunk->slot;
      }
    }
    chunk->size = static_cast<std::uint32_t>(new_size);
    if (new_size > 0) chunk_last_[c] = keys[new_size - 1];
    if (new_size < kChunkCapacity / 4) any_small = true;
  }
  KSIR_CHECK(ri == removals.size() && ii == insertions.size());

  if (any_small) {
    // Compaction pass mirroring the erase-path merge policy: drop emptied
    // chunks and fold runs of sparse neighbors together, bounding the
    // chunk count under sustained batched churn.
    std::size_t write = 0;
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
      if (chunks_[c]->size == 0) {
        FreeChunk(chunks_[c].get());
        continue;
      }
      if (write > 0 &&
          chunks_[write - 1]->size < kChunkCapacity / 4 &&
          chunks_[write - 1]->size + chunks_[c]->size <= kChunkCapacity) {
        Chunk* dst = chunks_[write - 1].get();
        Chunk* src = chunks_[c].get();
        kernels::CopyKeys(dst->keys.data() + dst->size, src->keys.data(),
                          src->size);
        if (track_ids_) {
          for (std::uint32_t i = 0; i < src->size; ++i) {
            ++probes_;
            chunk_of_[src->keys[i].id] = dst->slot;
          }
        }
        dst->size += src->size;
        chunk_last_[write - 1] = dst->keys[dst->size - 1];
        FreeChunk(src);
        continue;
      }
      if (write != c) {
        chunks_[write] = std::move(chunks_[c]);
        chunk_last_[write] = chunk_last_[c];
      }
      ++write;
    }
    chunks_.resize(write);
    chunk_last_.resize(write);
    Renumber(0);
  }
  // A reposition batch never changes the element count, but the deferred
  // per-element ops below bump size_ (+1 per InsertKey, -1 per EraseKeyAt)
  // while their in-place counterparts did not; pre-compensate so the two
  // halves cancel.
  size_ += deferred_removals.size();
  size_ -= deferred_insertions.size();
  for (const Key& key : deferred_removals) EraseKey(key);
  for (const BatchScratch::PendingInsert& ins : deferred_insertions) {
    Chunk* dest = InsertKey(ins.key);
    if (ins.handle != nullptr) *ins.handle = Handle{dest->slot, dest->gen};
    if (track_ids_ && ins.old_slot != dest->slot) {
      ++probes_;
      chunk_of_[ins.key.id] = dest->slot;
    }
  }
}

void RankedList::Erase(ElementId id) {
  Chunk* chunk = ChunkForId(id);
  EraseKeyAt(chunk, OffsetOfId(chunk, id));
  ++probes_;
  chunk_of_.erase(id);
}

void RankedList::EraseHandle(ElementId id, double score, Handle handle) {
  std::uint32_t offset = 0;
  Chunk* chunk = Locate(id, score, &handle, &offset);
  EraseKeyAt(chunk, offset);
  if (track_ids_) {
    ++probes_;
    chunk_of_.erase(id);
  }
}

const RankedList::Chunk* RankedList::FindChunkOfId(ElementId id) const {
  if (track_ids_) return ChunkForId(id);
  // Untracked diagnostic path: full scan (tests and debugging only).
  for (const auto& chunk : chunks_) {
    for (std::uint32_t i = 0; i < chunk->size; ++i) {
      if (chunk->keys[i].id == id) return chunk.get();
    }
  }
  return nullptr;
}

bool RankedList::Contains(ElementId id) const {
  if (track_ids_) return chunk_of_.contains(id);
  return FindChunkOfId(id) != nullptr;
}

double RankedList::Get(ElementId id) const {
  const Chunk* chunk = FindChunkOfId(id);
  KSIR_CHECK(chunk != nullptr);
  return chunk->keys[OffsetOfId(chunk, id)].score;
}

std::size_t RankedList::DrainTop(const_iterator* pos, Key* out,
                                 std::size_t n) const {
  KSIR_DCHECK(pos->chunks_ == &chunks_);
  std::size_t copied = 0;
  while (copied < n && pos->chunk_ < chunks_.size()) {
    const Chunk* chunk = chunks_[pos->chunk_].get();
    const auto avail = static_cast<std::size_t>(chunk->size - pos->offset_);
    const std::size_t take = std::min(avail, n - copied);
    kernels::CopyKeys(out + copied, chunk->keys.data() + pos->offset_, take);
    copied += take;
    pos->offset_ += static_cast<std::uint32_t>(take);
    if (pos->offset_ == chunk->size) {
      ++pos->chunk_;
      pos->offset_ = 0;
    }
  }
  return copied;
}

RankedList::HandleState RankedList::ProbeHandle(Handle handle, ElementId id,
                                                double score) const {
  const Chunk* chunk = ResolveHandle(handle);
  if (chunk == nullptr) return HandleState::kStale;
  const Key key{score, id};
  const Key* const first = chunk->keys.data();
  const std::size_t pos = kernels::LowerBoundKeys(first, chunk->size, key);
  return pos < chunk->size && first[pos] == key ? HandleState::kValid
                                                : HandleState::kStale;
}

RankedListIndex::RankedListIndex(std::size_t num_topics, bool track_ids) {
  KSIR_CHECK(num_topics > 0);
  lists_.reserve(num_topics);
  for (std::size_t i = 0; i < num_topics; ++i) {
    lists_.emplace_back(track_ids);
  }
}

void RankedListIndex::Insert(
    ElementId id, const std::vector<std::pair<TopicId, double>>& topic_scores,
    Timestamp te, RankedList::Handle* handles_out) {
  const auto [it, inserted] = membership_.try_emplace(id);
  KSIR_CHECK(inserted);
  Membership& member = it->second;
  member.te = te;
  member.topics.reserve(topic_scores.size());
  std::size_t i = 0;
  for (const auto& [topic, score] : topic_scores) {
    KSIR_CHECK(topic >= 0 && static_cast<std::size_t>(topic) < lists_.size());
    const RankedList::Handle handle =
        lists_[static_cast<std::size_t>(topic)].Insert(id, score);
    if (handles_out != nullptr) handles_out[i] = handle;
    member.topics.push_back(topic);
    ++total_entries_;
    ++i;
  }
}

void RankedListIndex::InsertMembership(ElementId id, const TopicId* topics,
                                       std::size_t n, Timestamp te) {
  const auto [it, inserted] = membership_.try_emplace(id);
  KSIR_CHECK(inserted);
  Membership& member = it->second;
  member.te = te;
  member.topics.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TopicId topic = topics[i];
    KSIR_CHECK(topic >= 0 && static_cast<std::size_t>(topic) < lists_.size());
    member.topics.push_back(topic);
  }
  total_entries_ += n;
}

RankedList::Handle RankedListIndex::InsertListEntry(TopicId topic,
                                                    ElementId id,
                                                    double score) {
  KSIR_DCHECK(topic >= 0 && static_cast<std::size_t>(topic) < lists_.size());
  return lists_[static_cast<std::size_t>(topic)].Insert(id, score);
}

void RankedListIndex::Update(
    ElementId id, const std::vector<std::pair<TopicId, double>>& topic_scores,
    Timestamp te) {
  const auto it = membership_.find(id);
  KSIR_CHECK(it != membership_.end());
  KSIR_CHECK(it->second.topics.size() == topic_scores.size());
  it->second.te = te;
  for (const auto& [topic, score] : topic_scores) {
    lists_[static_cast<std::size_t>(topic)].Update(id, score);
  }
}

void RankedListIndex::UpdateTrusted(
    ElementId id, const std::vector<std::pair<TopicId, double>>& topic_scores,
    Timestamp te) {
  const auto it = membership_.find(id);
  KSIR_DCHECK(it != membership_.end());
  KSIR_DCHECK(it->second.topics.size() == topic_scores.size());
  it->second.te = te;
  for (const auto& [topic, score] : topic_scores) {
    lists_[static_cast<std::size_t>(topic)].Update(id, score);
  }
}

void RankedListIndex::TouchTime(ElementId id, Timestamp te) {
  const auto it = membership_.find(id);
  KSIR_CHECK(it != membership_.end());
  it->second.te = te;
}

Timestamp RankedListIndex::TimeOf(ElementId id) const {
  const auto it = membership_.find(id);
  KSIR_CHECK(it != membership_.end());
  return it->second.te;
}

void RankedListIndex::BatchReposition(TopicId topic,
                                      const RankedList::Tuple* updates,
                                      std::size_t n, bool merge,
                                      RankedList::BatchScratch* scratch) {
  KSIR_CHECK(topic >= 0 && static_cast<std::size_t>(topic) < lists_.size());
  RankedList& list = lists_[static_cast<std::size_t>(topic)];
#ifndef NDEBUG
  for (std::size_t i = 0; i < n; ++i) {
    KSIR_DCHECK(membership_.contains(updates[i].id));
  }
#endif
  if (merge) {
    list.ApplyBatch(updates, n, scratch);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      list.Update(updates[i].id, updates[i].score);
    }
  }
}

void RankedListIndex::BatchRepositionHandles(
    TopicId topic, const RankedList::HandleUpdate* updates, std::size_t n,
    bool merge, RankedList::BatchScratch* scratch) {
  KSIR_CHECK(topic >= 0 && static_cast<std::size_t>(topic) < lists_.size());
  RankedList& list = lists_[static_cast<std::size_t>(topic)];
#ifndef NDEBUG
  for (std::size_t i = 0; i < n; ++i) {
    KSIR_DCHECK(membership_.contains(updates[i].id));
  }
#endif
  if (merge) {
    list.ApplyBatchHandles(updates, n, scratch);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      list.UpdateHandle(updates[i]);
    }
  }
}

void RankedListIndex::Erase(ElementId id) {
  const auto it = membership_.find(id);
  KSIR_CHECK(it != membership_.end());
  for (TopicId topic : it->second.topics) {
    lists_[static_cast<std::size_t>(topic)].Erase(id);
    --total_entries_;
  }
  membership_.erase(it);
}

void RankedListIndex::EraseWithHints(ElementId id,
                                     const RankedList::ErasureHint* hints,
                                     std::size_t n) {
  const auto it = membership_.find(id);
  KSIR_CHECK(it != membership_.end());
  KSIR_CHECK(it->second.topics.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    KSIR_DCHECK(it->second.topics[i] == hints[i].topic);
    lists_[static_cast<std::size_t>(hints[i].topic)].EraseHandle(
        id, hints[i].score, hints[i].handle);
    --total_entries_;
  }
  membership_.erase(it);
}

void RankedListIndex::EraseMembership(ElementId id, const TopicId* topics,
                                      std::size_t n) {
  const auto it = membership_.find(id);
  KSIR_CHECK(it != membership_.end());
  KSIR_CHECK(it->second.topics.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    KSIR_DCHECK(it->second.topics[i] == topics[i]);
  }
  total_entries_ -= n;
  membership_.erase(it);
}

void RankedListIndex::EraseListEntry(TopicId topic, ElementId id,
                                     double score,
                                     RankedList::Handle handle) {
  KSIR_DCHECK(topic >= 0 && static_cast<std::size_t>(topic) < lists_.size());
  lists_[static_cast<std::size_t>(topic)].EraseHandle(id, score, handle);
}

const RankedList& RankedListIndex::list(TopicId topic) const {
  KSIR_CHECK(topic >= 0 && static_cast<std::size_t>(topic) < lists_.size());
  return lists_[static_cast<std::size_t>(topic)];
}

std::uint64_t RankedListIndex::id_table_probes() const {
  std::uint64_t total = 0;
  for (const RankedList& list : lists_) total += list.id_table_probes();
  return total;
}

}  // namespace ksir
