#include "service/shard_router.h"

#include <algorithm>

#include "common/check.h"

namespace ksir {

ShardRouter::ShardRouter(std::size_t num_shards, double max_imbalance,
                         Timestamp balance_horizon)
    : num_shards_(num_shards),
      max_imbalance_(max_imbalance),
      balance_horizon_(balance_horizon),
      load_(num_shards, 0),
      recent_(num_shards, 0) {
  KSIR_CHECK(num_shards >= 1);
  KSIR_CHECK(max_imbalance == 0.0 || max_imbalance >= 1.0);
  KSIR_CHECK(balance_horizon >= 0);
}

void ShardRouter::ExpireRecent(Timestamp now) {
  const Timestamp cutoff = now - balance_horizon_;
  while (!recent_queue_.empty() && recent_queue_.front().first <= cutoff) {
    --recent_[recent_queue_.front().second];
    recent_queue_.pop_front();
  }
}

std::size_t ShardRouter::HashShard(ElementId id) const {
  // splitmix64 finalizer: cheap, well-mixed, deterministic across platforms.
  auto x = static_cast<std::uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x = x ^ (x >> 31);
  return static_cast<std::size_t>(x % num_shards_);
}

std::size_t ShardRouter::CapShard(std::size_t shard) {
  if (max_imbalance_ == 0.0 || num_shards_ == 1) return shard;
  const std::vector<std::size_t>& load =
      balance_horizon_ > 0 ? recent_ : load_;
  std::size_t least = 0;
  std::size_t most = 0;
  for (std::size_t s = 1; s < num_shards_; ++s) {
    if (load[s] < load[least]) least = s;
    if (load[s] > load[most]) most = s;
  }
  // Admitting onto `shard` must keep its load within the cap of the least
  // loaded shard (both +1 so an empty fleet is never divided by zero and
  // the very first placements are unconstrained). The cap is enforced with
  // 10% headroom: the recent-load proxy trails the true active sets by a
  // couple of percent (clock skew of one bucket, dangling references), and
  // the configured bound is a guarantee on the OBSERVED active spread, not
  // on the proxy.
  double admission_cap = std::max(1.0, 0.9 * max_imbalance_);
  // Decay-aware pressure: bounding admissions alone lets the CURRENT
  // spread drift past the bound without any single placement breaking the
  // rule — old placement runs decay unevenly, so a roaming cascade used to
  // end ~30% past the cap. Once the observed spread exceeds the configured
  // bound, tighten the admission cap in proportion to the excess
  // (cap * bound / spread), steering placements near the drift edge to the
  // least-loaded shard so routing actively closes the gap instead of
  // freezing it. Inside the bound the fixed headroom alone applies —
  // chain affinity (and with it merge quality) is only taxed while the
  // guarantee is actually violated.
  const double spread = (static_cast<double>(load[most]) + 1.0) /
                        (static_cast<double>(load[least]) + 1.0);
  if (spread > max_imbalance_) {
    admission_cap = std::max(1.0, admission_cap * max_imbalance_ / spread);
  }
  const double limit =
      admission_cap * (static_cast<double>(load[least]) + 1.0);
  if (static_cast<double>(load[shard]) + 1.0 <= limit) return shard;
  ++rebalanced_;
  return least;
}

std::size_t ShardRouter::Route(const SocialElement& e) {
  if (balance_horizon_ > 0) ExpireRecent(e.ts);
  // Pass 1: touch the known targets and remember their shards; the chain
  // shard is the first known target's.
  SmallVector<std::uint32_t, 8> target_shards;
  std::size_t chain = num_shards_;  // sentinel: undecided
  for (const ElementId target : e.refs) {
    const auto it = assignment_.find(target);
    if (it == assignment_.end()) continue;
    // The referral keeps the target routable, exactly like it keeps the
    // target active in the shard's window.
    if (e.ts > it->second.last_touch) {
      it->second.last_touch = e.ts;
      touch_queue_.emplace_back(target, e.ts);
    }
    target_shards.push_back(it->second.shard);
    if (chain == num_shards_) chain = it->second.shard;
  }
  std::size_t shard = chain != num_shards_ ? chain : HashShard(e.id);
  shard = CapShard(shard);
  // Pass 2: every known target on another shard than the final choice is a
  // reference edge the partitioning loses.
  for (const std::uint32_t target_shard : target_shards) {
    if (target_shard != shard) ++cross_shard_refs_;
  }
  const auto [it, inserted] = assignment_.try_emplace(
      e.id, Assignment{static_cast<std::uint32_t>(shard), e.ts});
  if (!inserted) {
    --load_[it->second.shard];
    it->second = Assignment{static_cast<std::uint32_t>(shard), e.ts};
  }
  ++load_[shard];
  if (balance_horizon_ > 0) {
    ++recent_[shard];
    recent_queue_.emplace_back(e.ts, static_cast<std::uint32_t>(shard));
  }
  touch_queue_.emplace_back(e.id, e.ts);
  return shard;
}

bool ShardRouter::Knows(ElementId id) const {
  return assignment_.contains(id);
}

void ShardRouter::DropAssignment(ElementId id) {
  const auto it = assignment_.find(id);
  if (it == assignment_.end()) return;
  --load_[it->second.shard];
  assignment_.erase(it);
}

void ShardRouter::Forget(const std::vector<ElementId>& ids) {
  for (const ElementId id : ids) DropAssignment(id);
  // Their touch_queue_ entries become stale and are skipped by the prune.
}

void ShardRouter::PruneOlderThan(Timestamp cutoff) {
  while (!touch_queue_.empty() && touch_queue_.front().second <= cutoff) {
    const auto [id, touch] = touch_queue_.front();
    touch_queue_.pop_front();
    const auto it = assignment_.find(id);
    if (it == assignment_.end() || it->second.last_touch != touch) {
      continue;  // forgotten, or touched again by a later referral
    }
    --load_[it->second.shard];
    assignment_.erase(it);
  }
}

}  // namespace ksir
