// Algorithm 1: keeps the per-topic ranked lists consistent with the active
// window as buckets arrive and expire.
#ifndef KSIR_CORE_INDEX_MAINTAINER_H_
#define KSIR_CORE_INDEX_MAINTAINER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include <memory>

#include "common/arena.h"
#include "common/stamped_accumulator.h"
#include "core/advance_summary.h"
#include "core/ranked_list.h"
#include "core/score_cache.h"
#include "core/scoring.h"
#include "telemetry/telemetry.h"
#include "window/active_window.h"

namespace ksir {

class WorkerPool;

/// How ranked-list scores react to referrer expiry (DESIGN.md §5).
enum class RefreshMode {
  /// Reposition elements whose referrers expired: list scores are always
  /// exactly delta_i(e). Default.
  kExact,
  /// Literal Algorithm 1: scores are only refreshed when an element gains a
  /// referrer. A score may stay stale-high after referrer expiry, which
  /// keeps upper-bound pruning sound but less tight.
  kPaper,
};

/// How reposition scores are produced.
enum class ScoreMaintenance {
  /// ScoreCache decomposition: the semantic half is computed once per
  /// element lifetime and the influence half updated per edge, making a
  /// reposition O(|shared topics|). Default.
  kIncremental,
  /// Recompute delta_i(e) from scratch (full word scan per topic plus a
  /// referrer-set scan) on every reposition. The pre-decomposition
  /// behavior; kept as the reference baseline for equivalence tests and the
  /// hot-path benchmark.
  kRecompute,
};

/// Default IndexMaintainer batching threshold: lists with at least this
/// many pending repositions in a bucket are updated by one ApplyBatch merge
/// sweep; sparser lists keep the single-reposition fast path. Chosen from
/// the hotpath bench's batch-size sweep (see BENCH_hotpath.json).
inline constexpr std::size_t kDefaultRepositionBatchMin = 2;

/// Applies window updates to the ranked lists (Algorithm 1 lines 4-13).
///
/// Under kIncremental maintenance the repositions of a bucket are batched:
/// the per-topic pending runs are built entirely from state already carried
/// by the pipeline — the window report's Touched records (element pointer,
/// final t_e, gained/lost referrer topic spans) and the ScoreCache entry
/// (score halves, listed score, ranked-list handle). With handle carrying
/// on (the default) a bucket's reposition work performs ONE cache probe per
/// touched element and zero ranked-list id-table probes on the no-split
/// fast path; `carry_handles = false` preserves the id-keyed batched
/// baseline for equivalence testing and benchmarking. All batching state is
/// owned by this maintainer — one engine's maintainer never shares mutable
/// state with another's, which is what lets the sharded service advance
/// shards in parallel.
///
/// With a runtime WorkerPool and `parallel_workers >= 2` the handle
/// pipeline's bucket apply runs STAGED (see ApplyIncrementalParallel),
/// and every stage that touches list memory fans out:
///   1. expiry — a serial prologue walks the expired elements (summary
///      touches, membership + cache erases: hash maps and pools are
///      single-threaded state) copying each carried per-topic hint out of
///      the dying cache entry, then the per-list erases run TOPIC-SHARDED
///      (each touched topic is owned by one worker, which replays that
///      list's erases in element order);
///   2. layout (serial) — cache entry rows, membership records and arena
///      buffers for the bucket's touched elements;
///   3. scoring (parallel, element-sharded) — fresh-element scoring, edge
///      folding, score composition; each participant folds through its own
///      dense accumulator;
///   4. gather — a serial counting pass fixes the per-topic run layout,
///      summary touches and t_e writes, then the scatter into per-topic
///      runs is TOPIC-SHARDED: each worker owns a disjoint topic subset
///      and writes exactly its topics' runs, in element order, so the
///      concatenated runs equal the serial queue order by construction;
///   5. list apply (parallel, topic-sharded) — each touched topic's
///      RankedList (fresh inserts then the reposition run) is claimed by
///      exactly one worker, so no list-level locking; per-worker
///      BatchScratch keeps the merge sweeps allocation-free.
/// The topic-keyed stages run through ParallelRunAffine, so the same
/// topic shard lands on the same pool worker bucket after bucket (cache
/// affinity; see runtime/worker_pool.h). Because every list sees the
/// identical operation sequence the serial path would produce, the
/// resulting lists, handles and ScoreCache state are BITWISE identical to
/// the serial handle path.
class IndexMaintainer {
 public:
  /// `ctx` and `index` must outlive the maintainer; `ctx`'s window must be
  /// the window whose updates are applied. `reposition_batch_min` is the
  /// per-list batching threshold; 0 disables batching entirely (the
  /// single-reposition reference path, which also disables handle
  /// carrying). `pool` + `parallel_workers >= 2` enable the staged
  /// parallel apply (handle pipeline only; `pool` must outlive the
  /// maintainer and may be shared — the stages fan out through
  /// ParallelRun, whose caller participation tolerates a busy pool).
  /// `telemetry` (optional, must outlive the maintainer) receives the
  /// per-stage bucket-apply histograms (`ksir_maintainer_stage_*_seconds`)
  /// and touched/reposition/elision counters; null gives the maintainer a
  /// private kOff Telemetry so counters keep working in isolation.
  IndexMaintainer(const ScoringContext* ctx, RankedListIndex* index,
                  RefreshMode mode = RefreshMode::kExact,
                  ScoreMaintenance maintenance = ScoreMaintenance::kIncremental,
                  std::size_t reposition_batch_min = kDefaultRepositionBatchMin,
                  bool carry_handles = true, WorkerPool* pool = nullptr,
                  std::size_t parallel_workers = 0,
                  Telemetry* telemetry = nullptr);

  /// Applies one Advance() result. Must be called after every window
  /// advance, with no interleaved advances.
  void Apply(const ActiveWindow::UpdateResult& update);

  RefreshMode mode() const { return mode_; }
  ScoreMaintenance maintenance() const { return maintenance_; }
  std::size_t reposition_batch_min() const { return batch_min_; }
  bool carries_handles() const { return use_handles_; }
  /// True when buckets run the staged parallel apply.
  bool parallel() const { return parallel_; }

  /// The cache backing kIncremental maintenance (exposed for tests).
  const ScoreCache& score_cache() const { return cache_; }

  /// Touched-topic summary of the most recent Apply() (epoch unset; the
  /// engine stamps it). Valid until the next Apply.
  const AdvanceSummary& last_summary() const { return summary_; }

 private:
  void ApplyIncremental(const ActiveWindow::UpdateResult& update);
  void ApplyIncrementalParallel(const ActiveWindow::UpdateResult& update);
  void ApplyRecompute(const ActiveWindow::UpdateResult& update);

  /// Erases one expired element from the lists and the cache (the serial
  /// apply path; the parallel apply shards the list erases by topic — see
  /// ApplyIncrementalParallel stage 1).
  void EraseExpired(const ActiveWindow::Touched& t);

  /// Inserts a fresh / resurrected element into the cache and the lists,
  /// seeding the cache entry's handles when handle carrying is on.
  void InsertFresh(const ActiveWindow::Touched& t);

  /// One touched element of a bucket: applies its carried edge spans to the
  /// cached influence halves, then (when `reposition` is set) repositions
  /// it — queueing per-topic pending runs, or updating the lists directly
  /// on the single-reposition reference path. When `te_changed` is false
  /// (referrer loss — t_e is a running max), tuples whose composed score
  /// equals the listed score are elided.
  void ProcessTouched(const ActiveWindow::Touched& t, bool reposition,
                      bool te_changed);

  /// Scatters the queued repositions into arena-backed per-topic runs and
  /// applies each touched list's run in one BatchReposition call.
  void FlushRepositions();

  template <typename PendingT, typename ApplyFn>
  void FlushRuns(std::vector<PendingT>* pending, ApplyFn apply);

  /// Scatters one element's carried edge spans into `acc` and folds them
  /// into the cached influence halves (the shared edge-folding kernel of
  /// the serial and parallel applies).
  static void FoldEdges(const ActiveWindow::Touched& t,
                        ScoreCache::TopicList* halves,
                        StampedAccumulator* acc);

  /// Records one score movement on `topic` into the bucket's summary
  /// accumulator (dense max, lazily cleared at materialization).
  void TouchSummary(TopicId topic, double movement);

  /// Records the kPaper-elided score movements of one referrer-loss
  /// element: the lists stay stale-high, but the true delta_i(e) moved on
  /// every support topic the lost referrers overlapped, and subscriptions
  /// keyed on those topics must see the touch. Reads the fold residue
  /// still stamped in `acc` right after FoldEdges(t, halves, acc).
  void TouchElidedLoss(const ScoreCache::TopicList& halves,
                       const StampedAccumulator& acc);

  /// Sorts and publishes the bucket's summary accumulator into summary_,
  /// restoring the dense arrays for the next bucket.
  void MaterializeSummary();

  const ScoringContext* ctx_;
  RankedListIndex* index_;
  RefreshMode mode_;
  ScoreMaintenance maintenance_;
  std::size_t batch_min_;
  bool use_handles_;
  /// Staged parallel apply: pool + participant count (the advancing thread
  /// is participant 0; the pool supplies helpers).
  WorkerPool* pool_ = nullptr;
  std::size_t workers_ = 1;
  bool parallel_ = false;
  /// Fallback Telemetry (kOff) owned when no shared one was passed, so the
  /// metric pointers below are always valid and the hot path never
  /// null-checks them.
  std::unique_ptr<Telemetry> owned_telemetry_;
  Telemetry* telemetry_;
  /// Stage histograms (recorded only when timing is enabled; see
  /// telemetry.h for the stage -> code mapping in each apply flavor).
  Histogram* stage_expiry_hist_;
  Histogram* stage_score_hist_;
  Histogram* stage_gather_hist_;
  Histogram* stage_list_apply_hist_;
  Histogram* bucket_apply_hist_;
  /// Always-live counters, flushed once per Apply from the plain per-bucket
  /// accumulators below (the hot loops never touch an atomic).
  Counter* expired_counter_;
  Counter* fresh_counter_;
  Counter* touched_counter_;
  Counter* repositions_counter_;
  Counter* elisions_counter_;
  std::size_t bucket_repositions_ = 0;
  std::size_t bucket_elisions_ = 0;
  /// Published touched-topic summary of the last Apply, and its dense
  /// per-bucket accumulator (max movement + seen flag per topic, cleared
  /// lazily through summary_topics_ at materialization).
  AdvanceSummary summary_;
  std::vector<double> summary_movement_;
  std::vector<std::uint8_t> summary_seen_;
  std::vector<TopicId> summary_topics_;
  ScoreCache cache_;
  /// Reused (topic, score) buffer; repositions are too frequent to allocate.
  std::vector<std::pair<TopicId, double>> scratch_scores_;
  std::vector<RankedList::Handle> handle_scratch_;
  SmallVector<RankedList::ErasureHint, 8> hint_scratch_;

  /// ---- per-bucket batching state (live only within one Apply call) ----
  /// One pending ranked-list reposition per (topic, element), in queue
  /// order; the handle flavor points back into the ScoreCache entry so the
  /// list writes the refreshed position hint straight through.
  struct PendingHandle {
    TopicId topic;
    RankedList::HandleUpdate payload;
  };
  struct PendingTuple {
    TopicId topic;
    RankedList::Tuple payload;
  };
  std::vector<PendingHandle> pending_handles_;
  std::vector<PendingTuple> pending_tuples_;
  /// Pending tuples per topic this bucket; zeroed lazily via `touched_`.
  std::vector<std::uint32_t> topic_counts_;
  std::vector<TopicId> touched_;
  /// Dense per-topic edge accumulator (stamp-cleared per element): one
  /// scatter per edge entry, one gather over the element's support.
  StampedAccumulator edge_acc_;
  /// Backs the scattered per-topic runs; reset every flush.
  Arena run_arena_;
  RankedList::BatchScratch batch_scratch_;

  /// ---- staged parallel apply state (parallel_ engines only) ----
  /// One fresh (inserted / resurrected) element of the bucket: entry rows
  /// laid out serially, score halves computed by the element stage.
  struct FreshItem {
    const SocialElement* element;
    ScoreCache::TopicList* halves;
  };
  /// One gained-/lost-referrer element: the element stage folds its edge
  /// spans, composes scores and writes the changed tuples into `updates`
  /// (arena storage sized to the full support; `num_updates` filled by the
  /// one worker that claims the element).
  struct TouchedItem {
    const ActiveWindow::Touched* touched;
    ScoreCache::TopicList* halves;
    PendingHandle* updates;
    std::uint32_t num_updates;
    bool reposition;
    bool te_changed;
  };
  /// One fresh list insert of the topic stage (scattered per topic by the
  /// gather, applied by the topic's worker, handle written through).
  struct PendingInsert {
    ElementId id;
    double score;
    RankedList::Handle* handle;
  };
  /// One per-list erase of the topic-sharded expiry stage, in element
  /// order. The hint fields are copied OUT of the dying cache entry by the
  /// serial prologue: cache_.Erase frees the pool row the halves live in,
  /// so the fan-out must not read through the entry.
  struct PendingErase {
    TopicId topic;
    ElementId id;
    double score;
    RankedList::Handle handle;
  };
  void ProcessTouchedParallel(TouchedItem* item, StampedAccumulator* acc);

  std::vector<PendingErase> erase_items_;
  /// Distinct topics with erases this bucket (deduped through erase_seen_,
  /// which is restored to zero during shard assignment).
  std::vector<TopicId> erase_topics_;
  std::vector<std::uint8_t> erase_seen_;
  /// Dense topic -> owning shard map for the bucket's topic-sharded stages
  /// (expiry erases; gather scatter + list apply). Never reset: a bucket
  /// only reads the topics it wrote first.
  std::vector<std::uint32_t> topic_shard_;
  std::vector<FreshItem> fresh_items_;
  std::vector<TouchedItem> touched_items_;
  std::vector<TopicId> topic_id_scratch_;
  /// Pending fresh list inserts per topic (the reposition counts reuse
  /// topic_counts_); zeroed lazily via touched_.
  std::vector<std::uint32_t> insert_counts_;
  /// Per-worker scratch: dense accumulators for the element stage, batch
  /// scratch for the topic stage — indexed by ParallelRun participant, so
  /// the stages allocate nothing and contend on nothing.
  std::vector<StampedAccumulator> worker_acc_;
  std::vector<RankedList::BatchScratch> worker_scratch_;
};

}  // namespace ksir

#endif  // KSIR_CORE_INDEX_MAINTAINER_H_
