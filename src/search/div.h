// Diversity-aware top-k keyword query (Chen & Cong, SIGMOD 2015; the DIV
// baseline of Section 5.1):
//   score(q, S) = lambda * sum_{e in S} rel(q, e) + (1 - lambda) * div(S)
// where rel is TF-IDF cosine relevance and div is the average pairwise
// dissimilarity in S. Maximized greedily over a relevance-pruned candidate
// pool (the objective is not submodular; greedy is the standard heuristic).
#ifndef KSIR_SEARCH_DIV_H_
#define KSIR_SEARCH_DIV_H_

#include <vector>

#include "common/types.h"
#include "search/tfidf.h"

namespace ksir {

/// DIV configuration; the paper sets lambda = 0.3 following [9].
struct DivOptions {
  double lambda = 0.3;
  /// Greedy works over the `candidate_pool` most relevant elements.
  std::size_t candidate_pool = 100;
};

/// Runs the DIV baseline against a TF-IDF snapshot.
std::vector<ElementId> DivTopK(const TfIdfIndex& index,
                               const std::vector<WordId>& keywords,
                               std::size_t k, DivOptions options = {});

}  // namespace ksir

#endif  // KSIR_SEARCH_DIV_H_
