// PageRank over the in-window reference graph. The paper's related work
// (Section 1) notes that existing social search scores influence by author
// PageRank; Sumblr [27] uses it for ranking. This implementation provides
// that comparator component: ranks elements by reference-graph centrality,
// an alternative influence weight for the Sumblr-style summarizer.
#ifndef KSIR_SEARCH_PAGERANK_H_
#define KSIR_SEARCH_PAGERANK_H_

#include <cstdint>
#include <unordered_map>

#include "common/types.h"
#include "window/active_window.h"

namespace ksir {

/// PageRank parameters.
struct PageRankOptions {
  double damping = 0.85;
  std::int32_t iterations = 30;
};

/// PageRank scores of all active elements over the edge set
/// { referrer -> referenced : both active, referral in-window }.
/// Scores sum to 1; isolated elements receive the teleport mass.
std::unordered_map<ElementId, double> ComputePageRank(
    const ActiveWindow& window, PageRankOptions options = {});

}  // namespace ksir

#endif  // KSIR_SEARCH_PAGERANK_H_
