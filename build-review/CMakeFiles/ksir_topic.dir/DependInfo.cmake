
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topic/btm.cpp" "CMakeFiles/ksir_topic.dir/src/topic/btm.cpp.o" "gcc" "CMakeFiles/ksir_topic.dir/src/topic/btm.cpp.o.d"
  "/root/repo/src/topic/drift.cpp" "CMakeFiles/ksir_topic.dir/src/topic/drift.cpp.o" "gcc" "CMakeFiles/ksir_topic.dir/src/topic/drift.cpp.o.d"
  "/root/repo/src/topic/inference.cpp" "CMakeFiles/ksir_topic.dir/src/topic/inference.cpp.o" "gcc" "CMakeFiles/ksir_topic.dir/src/topic/inference.cpp.o.d"
  "/root/repo/src/topic/lda.cpp" "CMakeFiles/ksir_topic.dir/src/topic/lda.cpp.o" "gcc" "CMakeFiles/ksir_topic.dir/src/topic/lda.cpp.o.d"
  "/root/repo/src/topic/query_inference.cpp" "CMakeFiles/ksir_topic.dir/src/topic/query_inference.cpp.o" "gcc" "CMakeFiles/ksir_topic.dir/src/topic/query_inference.cpp.o.d"
  "/root/repo/src/topic/topic_model.cpp" "CMakeFiles/ksir_topic.dir/src/topic/topic_model.cpp.o" "gcc" "CMakeFiles/ksir_topic.dir/src/topic/topic_model.cpp.o.d"
  "/root/repo/src/topic/user_profile.cpp" "CMakeFiles/ksir_topic.dir/src/topic/user_profile.cpp.o" "gcc" "CMakeFiles/ksir_topic.dir/src/topic/user_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/ksir_text.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/ksir_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
