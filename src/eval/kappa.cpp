#include "eval/kappa.h"

#include <cmath>

namespace ksir {

StatusOr<double> CohenLinearWeightedKappa(const std::vector<std::int32_t>& a,
                                          const std::vector<std::int32_t>& b,
                                          std::int32_t num_categories) {
  if (a.empty() || a.size() != b.size()) {
    return Status::InvalidArgument("rating sequences must match and be nonempty");
  }
  if (num_categories < 2) {
    return Status::InvalidArgument("need at least two rating categories");
  }
  const auto c = static_cast<std::size_t>(num_categories);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < 1 || a[i] > num_categories || b[i] < 1 ||
        b[i] > num_categories) {
      return Status::OutOfRange("rating outside [1, num_categories]");
    }
  }

  // Observed matrix and marginals.
  std::vector<std::vector<double>> observed(c, std::vector<double>(c, 0.0));
  std::vector<double> marginal_a(c, 0.0);
  std::vector<double> marginal_b(c, 0.0);
  const double n = static_cast<double>(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ra = static_cast<std::size_t>(a[i] - 1);
    const auto rb = static_cast<std::size_t>(b[i] - 1);
    observed[ra][rb] += 1.0 / n;
    marginal_a[ra] += 1.0 / n;
    marginal_b[rb] += 1.0 / n;
  }

  // Linear weights: w_ij = 1 - |i - j| / (c - 1); kappa = 1 - D_o / D_e with
  // disagreement D = sum (1 - w_ij) p_ij.
  double observed_disagreement = 0.0;
  double expected_disagreement = 0.0;
  const double denom = static_cast<double>(c - 1);
  for (std::size_t i = 0; i < c; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const double penalty =
          std::abs(static_cast<double>(i) - static_cast<double>(j)) / denom;
      observed_disagreement += penalty * observed[i][j];
      expected_disagreement += penalty * marginal_a[i] * marginal_b[j];
    }
  }
  if (expected_disagreement <= 0.0) {
    // Both raters used a single identical category: perfect agreement.
    return 1.0;
  }
  return 1.0 - observed_disagreement / expected_disagreement;
}

}  // namespace ksir
