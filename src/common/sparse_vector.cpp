#include "common/sparse_vector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/kernels/kernels.h"

namespace ksir {

SparseVector SparseVector::FromEntries(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end());
  SparseVector out;
  out.entries_.reserve(entries.size());
  for (const auto& [index, value] : entries) {
    KSIR_DCHECK(index >= 0);
    if (!out.entries_.empty() && out.entries_.back().first == index) {
      out.entries_.back().second += value;
    } else {
      out.entries_.emplace_back(index, value);
    }
  }
  std::erase_if(out.entries_, [](const Entry& e) { return e.second <= 0.0; });
  return out;
}

SparseVector SparseVector::FromDense(const std::vector<double>& dense,
                                     double threshold) {
  SparseVector out;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] > threshold) {
      out.entries_.emplace_back(static_cast<std::int32_t>(i), dense[i]);
    }
  }
  return out;
}

SparseVector SparseVector::TruncateAndNormalize(
    const std::vector<double>& dense, double threshold) {
  KSIR_CHECK(!dense.empty());
  SparseVector out;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] >= threshold && dense[i] > 0.0) {
      out.entries_.emplace_back(static_cast<std::int32_t>(i), dense[i]);
    }
  }
  if (out.entries_.empty()) {
    const auto it = std::max_element(dense.begin(), dense.end());
    if (*it > 0.0) {
      out.entries_.emplace_back(
          static_cast<std::int32_t>(it - dense.begin()), *it);
    }
  }
  out.NormalizeL1();
  return out;
}

double SparseVector::Get(std::int32_t index) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), index,
      [](const Entry& e, std::int32_t i) { return e.first < i; });
  if (it != entries_.end() && it->first == index) return it->second;
  return 0.0;
}

double SparseVector::Sum() const {
  double total = 0.0;
  for (const auto& [index, value] : entries_) total += value;
  return total;
}

std::int32_t SparseVector::DimensionBound() const {
  return entries_.empty() ? 0 : entries_.back().first + 1;
}

void SparseVector::NormalizeL1() {
  const double total = Sum();
  if (total <= 0.0) return;
  for (auto& [index, value] : entries_) value /= total;
}

double SparseVector::Dot(const SparseVector& a, const SparseVector& b) {
  // Sparse-sparse merge join: the index comparison chain is inherently
  // sequential (each step's advance depends on the previous compare), so
  // this stays scalar by design — the kernel layer accelerates the dense
  // and strided reductions around it instead.
  double dot = 0.0;
  auto ia = a.entries_.begin();
  auto ib = b.entries_.begin();
  while (ia != a.entries_.end() && ib != b.entries_.end()) {
    if (ia->first < ib->first) {
      ++ia;
    } else if (ib->first < ia->first) {
      ++ib;
    } else {
      dot += ia->second * ib->second;
      ++ia;
      ++ib;
    }
  }
  return dot;
}

double SparseVector::Cosine(const SparseVector& a, const SparseVector& b) {
  // The norms walk the value halves of the (index, value) entries: a
  // stride-2 strided square sum in the canonical kernel lane order.
  static_assert(sizeof(Entry) == 2 * sizeof(double),
                "Entry must be a 16-byte (int32, double) record");
  const double na = a.entries_.empty()
                        ? 0.0
                        : kernels::SumSquares(&a.entries_[0].second,
                                              a.entries_.size(), 2);
  const double nb = b.entries_.empty()
                        ? 0.0
                        : kernels::SumSquares(&b.entries_[0].second,
                                              b.entries_.size(), 2);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return Dot(a, b) / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<double> SparseVector::ToDense(std::size_t dim) const {
  KSIR_CHECK(static_cast<std::size_t>(DimensionBound()) <= dim);
  std::vector<double> dense(dim, 0.0);
  for (const auto& [index, value] : entries_) {
    dense[static_cast<std::size_t>(index)] = value;
  }
  return dense;
}

}  // namespace ksir
