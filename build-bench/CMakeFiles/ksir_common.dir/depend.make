# Empty dependencies file for ksir_common.
# This may be replaced when dependencies are built.
