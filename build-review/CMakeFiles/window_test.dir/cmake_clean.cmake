file(REMOVE_RECURSE
  "CMakeFiles/window_test.dir/tests/window_test.cpp.o"
  "CMakeFiles/window_test.dir/tests/window_test.cpp.o.d"
  "window_test"
  "window_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
