#include "core/brute_force.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "core/candidate_state.h"

namespace ksir {

namespace {

constexpr std::size_t kMaxBruteForceElements = 40;

}  // namespace

QueryResult RunBruteForce(const ScoringContext& ctx,
                          const ActiveWindow& window, const KsirQuery& query) {
  KSIR_CHECK(query.k >= 1);
  WallTimer timer;
  QueryResult result;

  std::vector<ElementId> ids = window.ActiveIds();
  std::sort(ids.begin(), ids.end());
  KSIR_CHECK(ids.size() <= kMaxBruteForceElements);

  const std::size_t n = ids.size();
  const std::size_t k = std::min<std::size_t>(
      static_cast<std::size_t>(query.k), n);
  if (k == 0) {
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }

  // Enumerate combinations of exactly k ids (monotonicity makes a full-size
  // set optimal).
  std::vector<std::size_t> combo(k);
  for (std::size_t i = 0; i < k; ++i) combo[i] = i;

  std::vector<ElementId> best_set;
  double best_score = -1.0;
  while (true) {
    CandidateState candidate(&ctx, &query.x);
    for (std::size_t idx : combo) {
      const SocialElement* e = window.Find(ids[idx]);
      KSIR_CHECK(e != nullptr);
      candidate.Add(*e);
      ++result.stats.num_gain_evaluations;
    }
    if (candidate.score() > best_score) {
      best_score = candidate.score();
      best_set = candidate.members();
    }
    // Next combination (lexicographic).
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (combo[i] != i + n - k) {
        ++combo[i];
        for (std::size_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
        break;
      }
      if (i == 0) {
        result.element_ids = best_set;
        result.score = best_score;
        result.stats.num_evaluated = n;
        result.stats.elapsed_ms = timer.ElapsedMillis();
        return result;
      }
    }
  }
}

}  // namespace ksir
