# Empty compiler generated dependencies file for fig10_eval_ratio_vs_k.
# This may be replaced when dependencies are built.
