#include "eval/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace ksir {

double CoverageScore(const ActiveWindow& window,
                     const std::vector<ElementId>& result_set,
                     const SparseVector& x) {
  if (result_set.empty()) return 0.0;
  std::vector<const SocialElement*> members;
  members.reserve(result_set.size());
  std::unordered_set<ElementId> member_ids;
  for (ElementId id : result_set) {
    const SocialElement* e = window.Find(id);
    if (e == nullptr) continue;
    members.push_back(e);
    member_ids.insert(id);
  }
  if (members.empty()) return 0.0;

  double total = 0.0;
  window.ForEachActive([&](const SocialElement& e) {
    if (member_ids.contains(e.id)) return;
    const double rel = SparseVector::Cosine(e.topics, x);
    if (rel <= 0.0) return;
    double best_sim = 0.0;
    for (const SocialElement* m : members) {
      best_sim = std::max(best_sim, SparseVector::Cosine(e.topics, m->topics));
    }
    total += rel * best_sim;
  });
  return total;
}

std::int64_t InfluenceCount(const ActiveWindow& window,
                            const std::vector<ElementId>& result_set) {
  std::unordered_set<ElementId> influenced;
  for (ElementId id : result_set) {
    for (const Referrer& r : window.ReferrersOf(id)) {
      influenced.insert(r.id);
    }
  }
  return static_cast<std::int64_t>(influenced.size());
}

std::int64_t TopkInfluentialCount(const ActiveWindow& window, std::size_t k) {
  std::vector<std::int64_t> degrees;
  degrees.reserve(window.num_active());
  window.ForEachActive([&](const SocialElement& e) {
    degrees.push_back(
        static_cast<std::int64_t>(window.ReferrersOf(e.id).size()));
  });
  const std::size_t take = std::min(k, degrees.size());
  std::partial_sort(degrees.begin(),
                    degrees.begin() + static_cast<std::ptrdiff_t>(take),
                    degrees.end(), std::greater<>());
  std::int64_t total = 0;
  for (std::size_t i = 0; i < take; ++i) total += degrees[i];
  return total;
}

double NormalizedInfluence(const ActiveWindow& window,
                           const std::vector<ElementId>& result_set,
                           std::size_t k) {
  const std::int64_t normalizer = TopkInfluentialCount(window, k);
  if (normalizer <= 0) return 0.0;
  const double ratio = static_cast<double>(InfluenceCount(window, result_set)) /
                       static_cast<double>(normalizer);
  return std::clamp(ratio, 0.0, 1.0);
}

}  // namespace ksir
