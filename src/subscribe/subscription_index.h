// Inverted topic index over standing-query groups.
//
// Posting key: the sparse query vector's support set — a group posting
// appears under every topic id its query weights. Activation for a bucket
// is the union of the postings of the bucket's touched topics (see
// advance_summary.h), so work scales with touched topics, not with the
// registered population.
//
// The index is a header-only template so it can be unit-tested with a toy
// item type. An item T must expose:
//   const SparseVector& support() const;            // sorted, immutable
//   SmallVector<std::uint32_t, 2>& posting_slots(); // owned by the index
// posting_slots() is back-patched storage parallel to support().entries()
// — it makes Remove O(support) with swap-remove semantics instead of a
// linear posting scan.
#ifndef KSIR_SUBSCRIBE_SUBSCRIPTION_INDEX_H_
#define KSIR_SUBSCRIBE_SUBSCRIPTION_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/flat_hash_map.h"
#include "common/sparse_vector.h"
#include "common/types.h"

namespace ksir {

template <typename T>
class InvertedTopicIndex {
 public:
  /// Posts `item` under every topic of its support. The item's
  /// posting_slots() is filled parallel to support().entries().
  void Add(T* item) {
    auto& slots = item->posting_slots();
    slots.clear();
    for (const auto& [topic, weight] : item->support().entries()) {
      std::vector<T*>& posting = postings_[topic];
      slots.push_back(static_cast<std::uint32_t>(posting.size()));
      posting.push_back(item);
      ++num_postings_;
    }
  }

  /// Removes `item` from every posting it appears in: swap-remove, with
  /// the displaced item's slot back-patched (O(log nnz) to locate the
  /// displaced item's slot for this topic).
  void Remove(T* item) {
    const auto& entries = item->support().entries();
    auto& slots = item->posting_slots();
    KSIR_CHECK(slots.size() == entries.size());
    for (std::size_t k = 0; k < entries.size(); ++k) {
      const TopicId topic = entries[k].first;
      auto it = postings_.find(topic);
      KSIR_CHECK(it != postings_.end());
      std::vector<T*>& posting = it->second;
      const std::uint32_t pos = slots[k];
      KSIR_CHECK(pos < posting.size() && posting[pos] == item);
      T* moved = posting.back();
      posting[pos] = moved;
      posting.pop_back();
      --num_postings_;
      if (moved != item) {
        moved->posting_slots()[SlotOf(*moved, topic)] = pos;
      }
    }
    slots.clear();
  }

  /// Invokes `fn(T*)` for every item posted under `topic`. Items spanning
  /// several touched topics are visited once per topic — the caller
  /// deduplicates (a round stamp is cheaper there than a set here).
  template <typename Fn>
  void ForEachPosted(TopicId topic, Fn&& fn) const {
    const auto it = postings_.find(topic);
    if (it == postings_.end()) return;
    for (T* item : it->second) fn(item);
  }

  /// Total live (item, topic) postings.
  std::size_t num_postings() const { return num_postings_; }

  /// Topics with at least one historic posting (empty postings linger).
  std::size_t num_topics() const { return postings_.size(); }

 private:
  /// Index of `topic` within the item's sorted support.
  static std::size_t SlotOf(T& item, TopicId topic) {
    const auto& entries = item.support().entries();
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), topic,
        [](const SparseVector::Entry& e, TopicId t) { return e.first < t; });
    KSIR_CHECK(it != entries.end() && it->first == topic);
    return static_cast<std::size_t>(it - entries.begin());
  }

  FlatHashMap<TopicId, std::vector<T*>> postings_;
  std::size_t num_postings_ = 0;
};

}  // namespace ksir

#endif  // KSIR_SUBSCRIBE_SUBSCRIPTION_INDEX_H_
