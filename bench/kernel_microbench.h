// In-process microbenchmarks of the vectorized kernel layer
// (src/common/kernels): each kernel is timed twice on identical inputs —
// once with the dispatch forced to the scalar reference arm, once with
// the runtime-selected arm — so the reported speedup is an in-run,
// same-binary comparison (no cross-build noise). Used by the standalone
// kernel_bench binary and by hotpath_bench's JSON emission.
#ifndef KSIR_BENCH_KERNEL_MICROBENCH_H_
#define KSIR_BENCH_KERNEL_MICROBENCH_H_

#include <string>
#include <vector>

namespace ksir::bench {

/// One kernel's timing under both dispatch arms. The op granularity is
/// workload-shaped (a whole chunk-span rewrite, a 1024-dim dot, a block
/// of probes); only the scalar/dispatched ratio is comparable across
/// kernels.
struct KernelBenchResult {
  std::string name;
  double scalar_ns = 0.0;      // ns per op on the forced-scalar table
  double dispatched_ns = 0.0;  // ns per op on the runtime-selected table
  double speedup = 0.0;        // scalar_ns / dispatched_ns
};

struct KernelBenchReport {
  std::string isa;  // runtime-selected arm ("scalar" when SIMD is off)
  std::vector<KernelBenchResult> kernels;
};

/// Runs every kernel microbenchmark (deterministic inputs, best-of-3
/// timing per arm). Restores the dispatch state on return.
KernelBenchReport RunKernelMicrobench();

}  // namespace ksir::bench

#endif  // KSIR_BENCH_KERNEL_MICROBENCH_H_
