// Top-k keyword query with log-normalized TF-IDF weighting and cosine
// similarity (the TF-IDF baseline of Section 5.1), plus Okapi BM25 scoring
// (the other textual-relevance metric the paper's related work names).
#ifndef KSIR_SEARCH_TFIDF_H_
#define KSIR_SEARCH_TFIDF_H_

#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "window/active_window.h"

namespace ksir {

/// Immutable TF-IDF snapshot of the active elements at build time. Rebuild
/// after the window advances.
class TfIdfIndex {
 public:
  /// Builds document frequencies and element norms over A_t.
  static TfIdfIndex Build(const ActiveWindow& window);

  /// k most similar active elements to the keyword query (elements with
  /// zero similarity are never returned). Keywords are word ids; callers
  /// translate strings through their Vocabulary.
  std::vector<ElementId> TopK(const std::vector<WordId>& keywords,
                              std::size_t k) const;

  /// Cosine similarity between an indexed element and the keyword query.
  double Similarity(ElementId id, const std::vector<WordId>& keywords) const;

  /// Cosine similarity between two indexed elements (TF-IDF space).
  double ElementSimilarity(ElementId a, ElementId b) const;

  /// idf(w) = ln(N / (1 + df(w))) clamped at 0.
  double Idf(WordId word) const;

  /// Okapi BM25 score of an indexed element against the keyword query.
  /// Standard parameters k1 (term-frequency saturation) and b (length
  /// normalization).
  double Bm25Score(ElementId id, const std::vector<WordId>& keywords,
                   double k1 = 1.2, double b = 0.75) const;

  /// k active elements with the highest BM25 scores (> 0).
  std::vector<ElementId> TopKBm25(const std::vector<WordId>& keywords,
                                  std::size_t k, double k1 = 1.2,
                                  double b = 0.75) const;

  std::size_t num_elements() const { return vectors_.size(); }

  /// Mean post-preprocessing document length of the indexed elements.
  double average_length() const { return average_length_; }

 private:
  /// Sorted (word, weight) sparse TF-IDF vector with cached norm and raw
  /// term frequencies (BM25 needs unweighted counts).
  struct ElementVector {
    std::vector<std::pair<WordId, double>> weights;
    std::vector<std::pair<WordId, std::int32_t>> counts;
    double norm = 0.0;
    std::int64_t length = 0;
  };

  std::unordered_map<WordId, std::int64_t> doc_freq_;
  std::unordered_map<ElementId, ElementVector> vectors_;
  /// Inverted index: word -> elements containing it.
  std::unordered_map<WordId, std::vector<ElementId>> postings_;
  std::int64_t num_docs_ = 0;
  double average_length_ = 0.0;
};

}  // namespace ksir

#endif  // KSIR_SEARCH_TFIDF_H_
