file(REMOVE_RECURSE
  "libksir_eval.a"
)
