#include "core/score_cache.h"

#include "common/check.h"

namespace ksir {

ScoreCache::ScoreCache(const ScoringContext* ctx) : ctx_(ctx) {
  KSIR_CHECK(ctx != nullptr);
}

ScoreCache::~ScoreCache() {
  for (auto& [id, entry] : entries_) pool_.Destroy(entry);
}

ScoreCache::TopicList& ScoreCache::Insert(const SocialElement& e) {
  TopicList& topics = AllocateEntry(e);
  ComputeHalves(e, &topics, &acc_);
  return topics;
}

ScoreCache::TopicList& ScoreCache::AllocateEntry(const SocialElement& e) {
  TopicList*& slot = entries_[e.id];
  if (slot == nullptr) slot = pool_.Create();
  TopicList& topics = *slot;
  topics.clear();
  topics.reserve(e.topics.nnz());
  for (const auto& [topic, prob] : e.topics.entries()) {
    topics.emplace_back(
        TopicHalves{topic, prob, 0.0, 0.0, 0.0, RankedList::Handle{}});
  }
  return topics;
}

void ScoreCache::ComputeHalves(const SocialElement& e, TopicList* topics,
                               StampedAccumulator* acc) const {
  const double lambda = ctx_->params().lambda;
  const double influence_factor = ctx_->influence_factor();
  // I_{i,t}(e) for ALL support topics in one pass over the referrer set
  // (one window probe per referrer, not per (referrer, topic)): scatter
  // each referrer's topic vector into the dense accumulator, then
  // influence_i = p_i(e) * acc[i].
  const ActiveWindow& window = ctx_->window();
  const ReferrerList& referrers = window.ReferrersOf(e.id);
  const bool has_referrers = !referrers.empty();
  if (has_referrers) {
    if (acc->empty()) acc->Resize(ctx_->model().num_topics());
    acc->Begin();
    for (const Referrer& r : referrers) {
      const SocialElement* referrer = window.Find(r.id);
      KSIR_DCHECK(referrer != nullptr);
      if (referrer == nullptr) continue;
      const auto& entries = referrer->topics.entries();
      acc->AddEntries(entries.data(), entries.size());
    }
  }
  for (TopicHalves& half : *topics) {
    const double semantic = ctx_->SemanticScore(half.topic, e, half.topic_prob);
    const auto t = static_cast<std::size_t>(half.topic);
    half.semantic = semantic;
    half.influence = has_referrers && acc->Touched(t)
                         ? half.topic_prob * acc->Get(t)
                         : 0.0;
    half.listed = lambda * semantic + influence_factor * half.influence;
  }
}

void ScoreCache::Erase(ElementId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  pool_.Destroy(it->second);
  entries_.erase(it);
}

const ScoreCache::TopicList* ScoreCache::Find(ElementId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second;
}

ScoreCache::TopicList& ScoreCache::MutableHalves(ElementId id) {
  const auto it = entries_.find(id);
  KSIR_CHECK(it != entries_.end());
  return *it->second;
}

}  // namespace ksir
