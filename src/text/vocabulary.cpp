#include "text/vocabulary.h"

#include "common/check.h"

namespace ksir {

WordId Vocabulary::GetOrAdd(std::string_view word) {
  const auto it = index_.find(word);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<WordId>(words_.size());
  words_.emplace_back(word);
  counts_.push_back(0);
  index_.emplace(words_.back(), id);
  return id;
}

WordId Vocabulary::Lookup(std::string_view word) const {
  const auto it = index_.find(word);
  return it == index_.end() ? kInvalidWordId : it->second;
}

const std::string& Vocabulary::WordOf(WordId id) const {
  KSIR_CHECK(id >= 0 && static_cast<std::size_t>(id) < words_.size());
  return words_[static_cast<std::size_t>(id)];
}

void Vocabulary::AddOccurrences(WordId id, std::int64_t delta) {
  KSIR_CHECK(id >= 0 && static_cast<std::size_t>(id) < counts_.size());
  counts_[static_cast<std::size_t>(id)] += delta;
}

std::int64_t Vocabulary::OccurrenceCount(WordId id) const {
  KSIR_CHECK(id >= 0 && static_cast<std::size_t>(id) < counts_.size());
  return counts_[static_cast<std::size_t>(id)];
}

}  // namespace ksir
