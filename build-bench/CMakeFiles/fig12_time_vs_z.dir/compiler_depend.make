# Empty compiler generated dependencies file for fig12_time_vs_z.
# This may be replaced when dependencies are built.
