# Empty dependencies file for hotpath_bench.
# This may be replaced when dependencies are built.
