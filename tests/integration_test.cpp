// End-to-end integration tests: generated streams through the full engine,
// cross-algorithm quality/efficiency relationships (the paper's headline
// claims, scaled down), and the raw-text -> topic-model -> query pipeline.
#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "eval/metrics.h"
#include "stream/generator.h"
#include "stream/stream_io.h"
#include "text/corpus.h"
#include "topic/inference.h"
#include "topic/lda.h"
#include "topic/query_inference.h"

namespace ksir {
namespace {

// A moderately sized generated stream fed fully into an engine.
struct EngineOverStream {
  GeneratedStream stream;
  std::unique_ptr<KsirEngine> engine;
};

EngineOverStream MakeEngineOverStream(std::size_t num_elements = 4000,
                                      std::int32_t num_topics = 10) {
  StreamProfile profile = TwitterSimProfile();
  profile.num_elements = num_elements;
  profile.num_topics = num_topics;
  profile.vocab_size = 2000;
  profile.duration = 2 * 24 * 3600;
  auto stream = GenerateStream(profile);
  KSIR_CHECK(stream.ok());
  EngineOverStream out{std::move(stream).value(), nullptr};
  EngineConfig config;
  config.scoring.lambda = 0.5;
  config.scoring.eta = 20.0;
  config.window_length = 24 * 3600;
  config.bucket_length = 15 * 60;
  out.engine = std::make_unique<KsirEngine>(config, &out.stream.model);
  KSIR_CHECK(out.engine->Append(out.stream.elements).ok());
  return out;
}

SparseVector TopicQuery(int a, int b) {
  return SparseVector::FromEntries({{a, 0.5}, {b, 0.5}});
}

TEST(IntegrationTest, EngineIngestsGeneratedStream) {
  auto setup = MakeEngineOverStream();
  EXPECT_GT(setup.engine->window().num_active(), 100u);
  EXPECT_EQ(setup.engine->index().num_elements(),
            setup.engine->window().num_active());
  EXPECT_EQ(setup.engine->maintenance_stats().elements_ingested, 4000);
}

TEST(IntegrationTest, AllAlgorithmsAgreeOnQuality) {
  auto setup = MakeEngineOverStream();
  KsirQuery query;
  query.k = 10;
  query.epsilon = 0.1;
  for (int trial = 0; trial < 3; ++trial) {
    query.x = TopicQuery(trial, trial + 3);

    query.algorithm = Algorithm::kCelf;
    const QueryResult celf = *setup.engine->Query(query);
    if (celf.score <= 1e-9) continue;

    query.algorithm = Algorithm::kMttd;
    const QueryResult mttd = *setup.engine->Query(query);
    query.algorithm = Algorithm::kMtts;
    const QueryResult mtts = *setup.engine->Query(query);
    query.algorithm = Algorithm::kSieveStreaming;
    const QueryResult sieve = *setup.engine->Query(query);
    query.algorithm = Algorithm::kTopkRepresentative;
    const QueryResult topk = *setup.engine->Query(query);

    // Paper Fig. 8/11: MTTD > 99% of CELF, MTTS > 95%, both beat Top-k.
    EXPECT_GE(mttd.score, 0.95 * celf.score) << "trial " << trial;
    EXPECT_GE(mtts.score, 0.90 * celf.score) << "trial " << trial;
    EXPECT_GE(sieve.score, 0.45 * celf.score) << "trial " << trial;
    EXPECT_LE(topk.score, celf.score + 1e-9) << "trial " << trial;
    EXPECT_GE(topk.score, celf.score / query.k) << "trial " << trial;
  }
}

TEST(IntegrationTest, RankedListAlgorithmsPruneMostEvaluations) {
  auto setup = MakeEngineOverStream();
  const std::size_t active = setup.engine->window().num_active();
  KsirQuery query;
  query.k = 10;
  query.epsilon = 0.1;
  query.x = TopicQuery(0, 4);

  query.algorithm = Algorithm::kMtts;
  const QueryResult mtts = *setup.engine->Query(query);
  query.algorithm = Algorithm::kMttd;
  const QueryResult mttd = *setup.engine->Query(query);
  query.algorithm = Algorithm::kCelf;
  const QueryResult celf = *setup.engine->Query(query);

  EXPECT_EQ(celf.stats.num_evaluated, active);
  // The pruning claim (Fig. 10): a small fraction of active elements.
  EXPECT_LT(mtts.stats.num_evaluated, active / 2);
  EXPECT_LT(mttd.stats.num_evaluated, active / 2);
  EXPECT_GT(mtts.stats.num_evaluated, 0u);
}

TEST(IntegrationTest, QueriesAtDifferentTimesSeeDifferentWindows) {
  StreamProfile profile = RedditSimProfile();
  profile.num_elements = 3000;
  profile.num_topics = 8;
  profile.vocab_size = 1500;
  auto stream = GenerateStream(profile);
  ASSERT_TRUE(stream.ok());

  EngineConfig config;
  config.scoring.eta = 20.0;
  config.window_length = 12 * 3600;
  config.bucket_length = 15 * 60;
  KsirEngine engine(config, &stream->model);

  KsirQuery query;
  query.k = 5;
  query.x = TopicQuery(0, 1);
  query.algorithm = Algorithm::kMttd;

  // Feed halves; the same query must not return an expired element later.
  const std::size_t half = stream->elements.size() / 2;
  std::vector<SocialElement> first(stream->elements.begin(),
                                   stream->elements.begin() + half);
  std::vector<SocialElement> second(stream->elements.begin() + half,
                                    stream->elements.end());
  ASSERT_TRUE(engine.Append(std::move(first)).ok());
  const QueryResult early = *engine.Query(query);
  ASSERT_TRUE(engine.Append(std::move(second)).ok());
  const QueryResult late = *engine.Query(query);

  for (ElementId id : late.element_ids) {
    EXPECT_TRUE(engine.window().IsActive(id));
  }
  EXPECT_NE(early.element_ids, late.element_ids);
}

TEST(IntegrationTest, ResultsImproveCoverageOverTopK) {
  // The k-SIR result should cover at least as much as the plain top-k
  // representative set on the same query (Table 6's coverage claim).
  auto setup = MakeEngineOverStream(6000);
  KsirQuery query;
  query.k = 10;
  query.epsilon = 0.1;
  double ksir_cov = 0.0;
  double topk_cov = 0.0;
  for (int trial = 0; trial < 4; ++trial) {
    query.x = TopicQuery(trial, trial + 2);
    query.algorithm = Algorithm::kMttd;
    const QueryResult ksir = *setup.engine->Query(query);
    query.algorithm = Algorithm::kTopkRepresentative;
    const QueryResult topk = *setup.engine->Query(query);
    ksir_cov += CoverageScore(setup.engine->window(), ksir.element_ids,
                              query.x);
    topk_cov += CoverageScore(setup.engine->window(), topk.element_ids,
                              query.x);
  }
  EXPECT_GT(ksir_cov, 0.0);
  EXPECT_GE(ksir_cov, 0.95 * topk_cov);
}

TEST(IntegrationTest, StreamSerializationRoundTripsThroughEngine) {
  StreamProfile profile = TwitterSimProfile();
  profile.num_elements = 800;
  profile.num_topics = 6;
  profile.vocab_size = 500;
  auto stream = GenerateStream(profile);
  ASSERT_TRUE(stream.ok());

  std::stringstream buffer;
  ASSERT_TRUE(WriteStreamTsv(stream->elements, &buffer).ok());
  auto loaded = ReadStreamTsv(&buffer);
  ASSERT_TRUE(loaded.ok());

  EngineConfig config;
  config.window_length = 24 * 3600;
  config.bucket_length = 15 * 60;
  KsirEngine a(config, &stream->model);
  KsirEngine b(config, &stream->model);
  ASSERT_TRUE(a.Append(stream->elements).ok());
  ASSERT_TRUE(b.Append(std::move(loaded).value()).ok());

  KsirQuery query;
  query.k = 5;
  query.x = TopicQuery(0, 1);
  query.algorithm = Algorithm::kMttd;
  EXPECT_EQ(a.Query(query)->element_ids, b.Query(query)->element_ids);
}

TEST(IntegrationTest, RawTextPipelineEndToEnd) {
  // Sports vs. cooking micro-corpus -> LDA -> engine -> keyword query.
  const std::vector<std::string> sports = {
      "the striker scored a goal in the final match",
      "midfield pass assisted another goal for the team",
      "goalkeeper saved the penalty during the match",
      "the coach praised the striker after the match",
      "fans cheered the team winning the league final",
      "a late goal decided the championship match",
  };
  const std::vector<std::string> cooking = {
      "simmer the sauce and season the pasta with basil",
      "bake the bread until the crust turns golden",
      "chop the onions and saute them in butter",
      "the recipe calls for fresh basil and olive oil",
      "knead the dough and let the bread rise slowly",
      "season the roasted vegetables with garlic and oil",
  };
  Vocabulary vocab;
  Tokenizer tokenizer;
  Corpus corpus(&vocab);
  std::vector<Document> docs;
  for (const auto& text : sports) {
    docs.push_back(Document::FromText(text, tokenizer,
                                      StopWordSet::English(), &vocab));
    corpus.Add(docs.back());
  }
  for (const auto& text : cooking) {
    docs.push_back(Document::FromText(text, tokenizer,
                                      StopWordSet::English(), &vocab));
    corpus.Add(docs.back());
  }

  LdaOptions lda_options;
  lda_options.num_topics = 2;
  // The paper's 50/z prior suits corpora of millions of documents; a
  // 12-document micro-corpus needs a weak prior to separate at all.
  lda_options.alpha = 0.1;
  lda_options.iterations = 120;
  lda_options.burn_in = 60;
  lda_options.seed = 3;
  auto trained = LdaTrainer(lda_options).Train(corpus);
  ASSERT_TRUE(trained.ok());

  TopicInferencer inferencer(&trained->model);
  EngineConfig config;
  config.window_length = 100;
  config.bucket_length = 10;
  config.scoring.eta = 2.0;
  KsirEngine engine(config, &trained->model);

  std::vector<SocialElement> elements;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    SocialElement e;
    e.id = static_cast<ElementId>(i + 1);
    e.ts = static_cast<Timestamp>(i + 1);
    e.doc = docs[i];
    e.topics = inferencer.InferSparse(docs[i], i);
    if (i >= 1 && (i % 3) == 0) e.refs.push_back(static_cast<ElementId>(i));
    elements.push_back(std::move(e));
  }
  ASSERT_TRUE(engine.Append(std::move(elements)).ok());

  QueryVectorBuilder builder(&inferencer, &vocab);
  auto x = builder.FromKeywords({"goal", "match"});
  ASSERT_TRUE(x.ok());

  KsirQuery query;
  query.k = 3;
  query.x = *x;
  query.algorithm = Algorithm::kMttd;
  const QueryResult result = *engine.Query(query);
  ASSERT_FALSE(result.element_ids.empty());
  // The majority of returned elements must be sports documents (ids 1..6).
  int sports_hits = 0;
  for (ElementId id : result.element_ids) {
    if (id <= 6) ++sports_hits;
  }
  EXPECT_GE(sports_hits * 2, static_cast<int>(result.element_ids.size()));
}

TEST(IntegrationTest, UpdateThroughputIsReasonable) {
  // The paper reports < 0.3 ms/element maintenance; allow a generous bound
  // here to stay robust on slow CI machines.
  auto setup = MakeEngineOverStream(5000);
  const auto stats = setup.engine->maintenance_stats();
  const double ms_per_element =
      stats.total_update_ms / static_cast<double>(stats.elements_ingested);
  EXPECT_LT(ms_per_element, 5.0);
}

}  // namespace
}  // namespace ksir
