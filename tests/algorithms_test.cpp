// Tests of the query algorithms against the paper's worked examples
// (Example 4.1 for MTTS, Example 4.3 for MTTD) plus cross-algorithm
// consistency and edge cases on the Table 1 fixture.
#include <algorithm>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/celf.h"
#include "core/engine.h"
#include "core/mttd.h"
#include "core/mtts.h"
#include "core/sieve_streaming.h"
#include "core/topk_representative.h"
#include "paper_fixture.h"

namespace ksir {
namespace {

using ::ksir::testing::BalancedQueryVector;
using ::ksir::testing::MakePaperEngineAtT8;
using ::ksir::testing::SkewedQueryVector;

std::vector<ElementId> Sorted(std::vector<ElementId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

class PaperAlgorithmsTest : public ::testing::Test {
 protected:
  void SetUp() override { fixture_ = MakePaperEngineAtT8(); }

  QueryResult Run(Algorithm algorithm, const SparseVector& x, int k = 2,
                  double eps = 0.3) const {
    KsirQuery query;
    query.k = k;
    query.x = x;
    query.algorithm = algorithm;
    query.epsilon = eps;
    auto result = fixture_.engine->Query(query);
    KSIR_CHECK(result.ok());
    return std::move(result).value();
  }

  ksir::testing::PaperEngine fixture_;
};

// ----------------------------------------------------- Example 4.1 (MTTS) --

TEST_F(PaperAlgorithmsTest, Example41MttsResult) {
  const QueryResult result = Run(Algorithm::kMtts, BalancedQueryVector());
  EXPECT_EQ(Sorted(result.element_ids), (std::vector<ElementId>{1, 3}));
  EXPECT_NEAR(result.score, 0.65, 0.005);
}

TEST_F(PaperAlgorithmsTest, Example41MttsEvaluatesOnlyFourElements) {
  // The example evaluates e3, e1, e2, e6 and prunes e5, e7, e8.
  const QueryResult result = Run(Algorithm::kMtts, BalancedQueryVector());
  EXPECT_EQ(result.stats.num_evaluated, 4u);
  EXPECT_EQ(result.stats.num_retrieved, 4u);
}

TEST_F(PaperAlgorithmsTest, Example41MttsMaintainsSixCandidates) {
  // With eps = 0.3 and delta_max = 0.34, OPT in [0.34, 1.36] spans
  // j in [-4, 1]: 6 candidates.
  const QueryResult result = Run(Algorithm::kMtts, BalancedQueryVector());
  EXPECT_EQ(result.stats.num_candidates_or_rounds, 6u);
}

TEST_F(PaperAlgorithmsTest, Example34SkewedQueryViaMtts) {
  const QueryResult result = Run(Algorithm::kMtts, SkewedQueryVector());
  EXPECT_EQ(Sorted(result.element_ids), (std::vector<ElementId>{1, 2}));
  EXPECT_NEAR(result.score, 0.951, 0.005);
}

// ----------------------------------------------------- Example 4.3 (MTTD) --

TEST_F(PaperAlgorithmsTest, Example43MttdResult) {
  const QueryResult result = Run(Algorithm::kMttd, BalancedQueryVector());
  EXPECT_EQ(Sorted(result.element_ids), (std::vector<ElementId>{1, 3}));
  EXPECT_NEAR(result.score, 0.65, 0.005);
}

TEST_F(PaperAlgorithmsTest, Example43MttdThreeRounds) {
  // tau: 0.60 -> 0.42 -> 0.30; the candidate fills in round 3.
  const QueryResult result = Run(Algorithm::kMttd, BalancedQueryVector());
  EXPECT_EQ(result.stats.num_candidates_or_rounds, 3u);
}

TEST_F(PaperAlgorithmsTest, Example43MttdBuffersFourElements) {
  const QueryResult result = Run(Algorithm::kMttd, BalancedQueryVector());
  EXPECT_EQ(result.stats.num_retrieved, 4u);
  EXPECT_EQ(result.stats.num_evaluated, 4u);
}

TEST_F(PaperAlgorithmsTest, Example34SkewedQueryViaMttd) {
  const QueryResult result = Run(Algorithm::kMttd, SkewedQueryVector());
  EXPECT_EQ(Sorted(result.element_ids), (std::vector<ElementId>{1, 2}));
}

// ----------------------------------------------------------- Brute force --

TEST_F(PaperAlgorithmsTest, BruteForceFindsPaperOptima) {
  const QueryResult balanced = Run(Algorithm::kBruteForce,
                                   BalancedQueryVector());
  EXPECT_EQ(Sorted(balanced.element_ids), (std::vector<ElementId>{1, 3}));
  EXPECT_NEAR(balanced.score, 0.65, 0.005);

  const QueryResult skewed = Run(Algorithm::kBruteForce, SkewedQueryVector());
  EXPECT_EQ(Sorted(skewed.element_ids), (std::vector<ElementId>{1, 2}));
  EXPECT_NEAR(skewed.score, 0.951, 0.005);
}

// -------------------------------------------------- CELF / Greedy / Sieve --

TEST_F(PaperAlgorithmsTest, CelfMatchesGreedy) {
  for (const auto& x : {BalancedQueryVector(), SkewedQueryVector()}) {
    for (int k = 1; k <= 4; ++k) {
      const QueryResult celf = Run(Algorithm::kCelf, x, k);
      const QueryResult greedy = Run(Algorithm::kGreedy, x, k);
      EXPECT_EQ(celf.element_ids, greedy.element_ids) << "k=" << k;
      EXPECT_NEAR(celf.score, greedy.score, 1e-12);
    }
  }
}

TEST_F(PaperAlgorithmsTest, CelfEvaluatesEveryActiveElement) {
  const QueryResult result = Run(Algorithm::kCelf, BalancedQueryVector());
  EXPECT_EQ(result.stats.num_evaluated, 7u);  // |A_8| = 7
}

TEST_F(PaperAlgorithmsTest, CelfFindsPaperOptimumHere) {
  // Greedy is optimal on this tiny instance.
  const QueryResult result = Run(Algorithm::kCelf, BalancedQueryVector());
  EXPECT_EQ(Sorted(result.element_ids), (std::vector<ElementId>{1, 3}));
}

TEST_F(PaperAlgorithmsTest, SieveStreamingMeetsItsBound) {
  for (const auto& x : {BalancedQueryVector(), SkewedQueryVector()}) {
    const QueryResult opt = Run(Algorithm::kBruteForce, x);
    const QueryResult sieve = Run(Algorithm::kSieveStreaming, x, 2, 0.1);
    EXPECT_GE(sieve.score, (0.5 - 0.1) * opt.score);
  }
}

// -------------------------------------------------- Top-k Representative --

TEST_F(PaperAlgorithmsTest, TopkRepresentativePicksHighestSingletons) {
  // delta(e,x): e3 0.34, e1 0.31, e6 0.30, e2 0.29, ... -> top-2 {e3, e1}.
  const QueryResult result =
      Run(Algorithm::kTopkRepresentative, BalancedQueryVector());
  EXPECT_EQ(Sorted(result.element_ids), (std::vector<ElementId>{1, 3}));
}

TEST_F(PaperAlgorithmsTest, TopkRepresentativeIgnoresOverlap) {
  // On the skewed query the top singletons are e1 (0.51) and e2 (0.44), but
  // so is the optimum here; verify the top-4, where overlap bites: e7's
  // words are fully covered by e2, yet Top-k still ranks it by singleton
  // score.
  const QueryResult topk =
      Run(Algorithm::kTopkRepresentative, SkewedQueryVector(), 4);
  const QueryResult celf = Run(Algorithm::kCelf, SkewedQueryVector(), 4);
  EXPECT_LE(topk.score, celf.score + 1e-9);
}

TEST_F(PaperAlgorithmsTest, TopkRepresentativeUsesEarlyTermination) {
  const QueryResult result =
      Run(Algorithm::kTopkRepresentative, BalancedQueryVector());
  EXPECT_LE(result.stats.num_evaluated, 7u);
  EXPECT_GE(result.stats.num_evaluated, 2u);
}

// ------------------------------------------------------------ Edge cases --

TEST_F(PaperAlgorithmsTest, KLargerThanActiveSetReturnsPositiveGains) {
  for (const Algorithm algorithm :
       {Algorithm::kMtts, Algorithm::kMttd, Algorithm::kCelf,
        Algorithm::kSieveStreaming}) {
    const QueryResult result = Run(algorithm, BalancedQueryVector(), 20, 0.2);
    EXPECT_LE(result.element_ids.size(), 7u) << AlgorithmName(algorithm);
    EXPECT_GE(result.element_ids.size(), 5u) << AlgorithmName(algorithm);
    // No duplicates.
    auto ids = Sorted(result.element_ids);
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  }
}

TEST_F(PaperAlgorithmsTest, KOneReturnsBestSingleton) {
  for (const Algorithm algorithm :
       {Algorithm::kMtts, Algorithm::kMttd, Algorithm::kCelf,
        Algorithm::kTopkRepresentative, Algorithm::kBruteForce}) {
    const QueryResult result =
        Run(algorithm, BalancedQueryVector(), 1, 0.05);
    ASSERT_EQ(result.element_ids.size(), 1u) << AlgorithmName(algorithm);
    EXPECT_EQ(result.element_ids[0], 3) << AlgorithmName(algorithm);
  }
}

TEST_F(PaperAlgorithmsTest, SingleTopicQuery) {
  const SparseVector x = SparseVector::FromEntries({{0, 1.0}});
  const QueryResult mttd = Run(Algorithm::kMttd, x);
  const QueryResult opt = Run(Algorithm::kBruteForce, x);
  EXPECT_GE(mttd.score, (1.0 - 1.0 / std::numbers::e - 0.3) * opt.score);
  // Best singletons on theta_1 are e3 and e6.
  EXPECT_EQ(Sorted(opt.element_ids), (std::vector<ElementId>{3, 6}));
}

TEST_F(PaperAlgorithmsTest, QueryValidationErrors) {
  KsirQuery query;
  query.k = 0;
  query.x = BalancedQueryVector();
  EXPECT_FALSE(fixture_.engine->Query(query).ok());
  query.k = 2;
  query.x = SparseVector();
  EXPECT_FALSE(fixture_.engine->Query(query).ok());
  query.x = BalancedQueryVector();
  query.epsilon = 0.0;
  query.algorithm = Algorithm::kMtts;
  EXPECT_FALSE(fixture_.engine->Query(query).ok());
  query.epsilon = 1.0;
  EXPECT_FALSE(fixture_.engine->Query(query).ok());
}

TEST_F(PaperAlgorithmsTest, ResultsAreDeterministic) {
  for (const Algorithm algorithm :
       {Algorithm::kMtts, Algorithm::kMttd, Algorithm::kCelf,
        Algorithm::kSieveStreaming, Algorithm::kTopkRepresentative}) {
    const QueryResult a = Run(algorithm, BalancedQueryVector());
    const QueryResult b = Run(algorithm, BalancedQueryVector());
    EXPECT_EQ(a.element_ids, b.element_ids) << AlgorithmName(algorithm);
    EXPECT_DOUBLE_EQ(a.score, b.score) << AlgorithmName(algorithm);
  }
}

TEST_F(PaperAlgorithmsTest, PaperRefreshModeSameResults) {
  // With stale-high bounds (kPaper) the algorithms remain correct.
  auto paper_fixture = MakePaperEngineAtT8(RefreshMode::kPaper);
  KsirQuery query;
  query.k = 2;
  query.x = BalancedQueryVector();
  query.epsilon = 0.3;
  for (const Algorithm algorithm : {Algorithm::kMtts, Algorithm::kMttd}) {
    query.algorithm = algorithm;
    auto result = paper_fixture.engine->Query(query);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Sorted(result->element_ids), (std::vector<ElementId>{1, 3}))
        << AlgorithmName(algorithm);
    EXPECT_NEAR(result->score, 0.65, 0.005);
  }
}

TEST_F(PaperAlgorithmsTest, AlgorithmNamesAreStable) {
  EXPECT_EQ(AlgorithmName(Algorithm::kMtts), "MTTS");
  EXPECT_EQ(AlgorithmName(Algorithm::kMttd), "MTTD");
  EXPECT_EQ(AlgorithmName(Algorithm::kCelf), "CELF");
  EXPECT_EQ(AlgorithmName(Algorithm::kSieveStreaming), "SieveStreaming");
  EXPECT_EQ(AlgorithmName(Algorithm::kTopkRepresentative),
            "Top-k Representative");
  EXPECT_EQ(AlgorithmName(Algorithm::kBruteForce), "BruteForce");
  EXPECT_EQ(AlgorithmName(Algorithm::kGreedy), "Greedy");
}

}  // namespace
}  // namespace ksir
