file(REMOVE_RECURSE
  "CMakeFiles/fig13_time_vs_window.dir/bench/fig13_time_vs_window.cpp.o"
  "CMakeFiles/fig13_time_vs_window.dir/bench/fig13_time_vs_window.cpp.o.d"
  "fig13_time_vs_window"
  "fig13_time_vs_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_time_vs_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
