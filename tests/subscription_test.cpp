// Subscription engine tests: delta semantics, re-entrant registry
// mutation, shared group evaluation, inverted-index activation/skipping,
// and the differential guarantee — the indexed path's delivered views are
// identical to the naive full re-evaluation, over random streams, on both
// a single engine (every maintenance flavor x refresh mode) and the
// sharded service.
#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "service/service.h"
#include "stream_gen.h"
#include "subscribe/standing_query.h"
#include "subscribe/subscription_index.h"
#include "subscribe/subscription_manager.h"
#include "topic/topic_model.h"

namespace ksir {
namespace {

SparseVector UnitVector(TopicId topic) {
  return SparseVector::FromEntries({{topic, 1.0}});
}

KsirQuery MakeQuery(SparseVector x, int k = 3,
                    Algorithm algorithm = Algorithm::kTopkRepresentative) {
  KsirQuery query;
  query.k = k;
  query.x = std::move(x);
  query.algorithm = algorithm;
  query.epsilon = 0.2;
  return query;
}

/// Evaluator returning a scripted result (shared mutable state so tests
/// can change the "current answer" between rounds) and counting calls.
struct ScriptedEvaluator {
  std::vector<ElementId> current;
  int calls = 0;

  SubscriptionManager::Evaluator fn() {
    return [this](const KsirQuery&) -> StatusOr<QueryResult> {
      ++calls;
      QueryResult result;
      result.element_ids = current;
      return result;
    };
  }
};

/// One recorded delivery, flattened for easy comparison.
struct Delivery {
  std::uint64_t epoch;
  bool first;
  bool set_changed;
  std::vector<ElementId> result;
  std::vector<SubscriptionDelta> deltas;
};

SubscriptionCallback Recorder(std::vector<Delivery>* log) {
  return [log](const SubscriptionUpdate& update) {
    Delivery d;
    d.epoch = update.epoch;
    d.first = update.first;
    d.set_changed = update.set_changed;
    d.result = update.result->element_ids;
    d.deltas.assign(update.deltas, update.deltas + update.num_deltas);
    log->push_back(std::move(d));
  };
}

/// Applies one update's deltas to the previously delivered list; the
/// reconstruction must equal the delivered result (the delta stream alone
/// carries the full new view).
std::vector<ElementId> ReplayDeltas(const std::vector<ElementId>& prev,
                                    const Delivery& d) {
  std::set<ElementId> leaving;
  std::map<ElementId, std::int32_t> moved;
  std::size_t num_enters = 0;
  for (const SubscriptionDelta& delta : d.deltas) {
    if (delta.kind == SubscriptionDelta::Kind::kLeave) {
      leaving.insert(delta.id);
    } else if (delta.kind == SubscriptionDelta::Kind::kReorder) {
      moved.emplace(delta.id, delta.new_rank);
    } else {
      ++num_enters;
    }
  }
  std::vector<ElementId> next(prev.size() - leaving.size() + num_enters, -1);
  for (std::size_t i = 0; i < prev.size(); ++i) {
    if (leaving.count(prev[i]) > 0) continue;
    const auto it = moved.find(prev[i]);
    // A surviving element without a reorder delta kept its rank.
    const std::size_t rank =
        it == moved.end() ? i : static_cast<std::size_t>(it->second);
    next[rank] = prev[i];
  }
  for (const SubscriptionDelta& delta : d.deltas) {
    if (delta.kind == SubscriptionDelta::Kind::kEnter) {
      next[static_cast<std::size_t>(delta.new_rank)] = delta.id;
    }
  }
  return next;
}

// ---------------------------------------------------------- delta diff ----

TEST(SubscriptionDeltaTest, FirstEvaluationIsAllEnters) {
  ScriptedEvaluator eval;
  eval.current = {7, 3, 9};
  SubscriptionManager manager(eval.fn());
  std::vector<Delivery> log;
  manager.Subscribe(MakeQuery(UnitVector(0)), Recorder(&log));
  ASSERT_TRUE(manager.EvaluateAll(1).ok());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_TRUE(log[0].first);
  EXPECT_TRUE(log[0].set_changed);
  EXPECT_EQ(log[0].epoch, 1u);
  ASSERT_EQ(log[0].deltas.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(log[0].deltas[i].kind, SubscriptionDelta::Kind::kEnter);
    EXPECT_EQ(log[0].deltas[i].id, log[0].result[i]);
    EXPECT_EQ(log[0].deltas[i].old_rank, -1);
    EXPECT_EQ(log[0].deltas[i].new_rank, static_cast<std::int32_t>(i));
  }
}

TEST(SubscriptionDeltaTest, LeavesEntersReordersInOrder) {
  ScriptedEvaluator eval;
  eval.current = {1, 2, 3};
  SubscriptionManager manager(eval.fn());
  std::vector<Delivery> log;
  manager.Subscribe(MakeQuery(UnitVector(0)), Recorder(&log));
  ASSERT_TRUE(manager.EvaluateAll(1).ok());
  // 1 leaves, 4 enters at rank 0, 2 and 3 shift down.
  eval.current = {4, 3, 2};
  ASSERT_TRUE(manager.EvaluateAll(2).ok());
  ASSERT_EQ(log.size(), 2u);
  const Delivery& d = log[1];
  EXPECT_FALSE(d.first);
  EXPECT_TRUE(d.set_changed);
  ASSERT_EQ(d.deltas.size(), 4u);
  EXPECT_EQ(d.deltas[0].kind, SubscriptionDelta::Kind::kLeave);
  EXPECT_EQ(d.deltas[0].id, 1);
  EXPECT_EQ(d.deltas[0].old_rank, 0);
  EXPECT_EQ(d.deltas[1].kind, SubscriptionDelta::Kind::kEnter);
  EXPECT_EQ(d.deltas[1].id, 4);
  EXPECT_EQ(d.deltas[1].new_rank, 0);
  EXPECT_EQ(d.deltas[2].kind, SubscriptionDelta::Kind::kReorder);
  EXPECT_EQ(d.deltas[2].id, 3);
  EXPECT_EQ(d.deltas[2].old_rank, 2);
  EXPECT_EQ(d.deltas[2].new_rank, 1);
  EXPECT_EQ(d.deltas[3].kind, SubscriptionDelta::Kind::kReorder);
  EXPECT_EQ(d.deltas[3].id, 2);
  EXPECT_EQ(d.deltas[3].old_rank, 1);
  EXPECT_EQ(d.deltas[3].new_rank, 2);
  EXPECT_EQ(ReplayDeltas(log[0].result, d), d.result);
}

TEST(SubscriptionDeltaTest, PureReorderLeavesSetUnchanged) {
  ScriptedEvaluator eval;
  eval.current = {1, 2};
  SubscriptionManager manager(eval.fn());
  std::vector<Delivery> log;
  manager.Subscribe(MakeQuery(UnitVector(0)), Recorder(&log));
  ASSERT_TRUE(manager.EvaluateAll(1).ok());
  eval.current = {2, 1};
  ASSERT_TRUE(manager.EvaluateAll(2).ok());
  ASSERT_EQ(log.size(), 2u);
  EXPECT_FALSE(log[1].set_changed);
  ASSERT_EQ(log[1].deltas.size(), 2u);
  EXPECT_EQ(log[1].deltas[0].kind, SubscriptionDelta::Kind::kReorder);
  EXPECT_EQ(log[1].deltas[1].kind, SubscriptionDelta::Kind::kReorder);
  // Identical result: a delivery still happens (naive round) but carries
  // no deltas.
  ASSERT_TRUE(manager.EvaluateAll(3).ok());
  ASSERT_EQ(log.size(), 3u);
  EXPECT_FALSE(log[2].set_changed);
  EXPECT_EQ(log[2].deltas.size(), 0u);
}

// -------------------------------------------------------- re-entrancy -----

// Regression: with the std::map-based legacy manager, a callback calling
// Unregister invalidated the EvaluateAll iterator (UB / crash). The
// subscription engine defers registry mutation to the end of the round.
TEST(SubscriptionReentrancyTest, CallbackMayMutateRegistryMidRound) {
  ScriptedEvaluator eval;
  eval.current = {1};
  SubscriptionManager manager(eval.fn(), SubscriptionMode::kNaive);
  std::vector<Delivery> first_log, victim_log, late_log;
  std::int64_t victim_id = 0;
  std::int64_t self_id = 0;
  std::int64_t late_id = 0;
  // Distinct queries -> distinct groups, so the mutation happens while the
  // round is still iterating other groups.
  self_id = manager.Subscribe(
      MakeQuery(UnitVector(0)), [&](const SubscriptionUpdate& update) {
        first_log.push_back({update.epoch, update.first, update.set_changed,
                             update.result->element_ids, {}});
        // Mutate everything mid-round: drop a peer, drop ourselves,
        // register a newcomer.
        EXPECT_TRUE(manager.Unsubscribe(victim_id));
        EXPECT_TRUE(manager.Unsubscribe(self_id));
        late_id = manager.Subscribe(MakeQuery(UnitVector(2)),
                                    Recorder(&late_log));
      });
  victim_id = manager.Subscribe(MakeQuery(UnitVector(1)),
                                Recorder(&victim_log));
  ASSERT_TRUE(manager.EvaluateAll(1).ok());
  // The victim was unsubscribed by an earlier callback in the same round:
  // no delivery. The newcomer joins the NEXT round.
  EXPECT_EQ(first_log.size(), 1u);
  EXPECT_EQ(victim_log.size(), 0u);
  EXPECT_EQ(late_log.size(), 0u);
  EXPECT_EQ(manager.size(), 1u);
  ASSERT_TRUE(manager.EvaluateAll(2).ok());
  EXPECT_EQ(first_log.size(), 1u);  // unsubscribed self
  ASSERT_EQ(late_log.size(), 1u);
  EXPECT_EQ(late_log[0].epoch, 2u);
  EXPECT_NE(late_id, 0);
}

TEST(SubscriptionReentrancyTest, SubscribeThenUnsubscribeSameRound) {
  ScriptedEvaluator eval;
  eval.current = {1};
  SubscriptionManager manager(eval.fn());
  std::vector<Delivery> log, ephemeral_log;
  manager.Subscribe(
      MakeQuery(UnitVector(0)), [&](const SubscriptionUpdate& update) {
        log.push_back({update.epoch, update.first, update.set_changed,
                       update.result->element_ids, {}});
        const std::int64_t id = manager.Subscribe(MakeQuery(UnitVector(1)),
                                                  Recorder(&ephemeral_log));
        EXPECT_TRUE(manager.Unsubscribe(id));
      });
  ASSERT_TRUE(manager.EvaluateAll(1).ok());
  ASSERT_TRUE(manager.EvaluateAll(2).ok());
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(ephemeral_log.size(), 0u);
  EXPECT_EQ(manager.size(), 1u);
}

// ------------------------------------------------------ shared groups -----

AdvanceSummary TouchOnly(std::vector<TopicId> topics, std::uint64_t epoch) {
  AdvanceSummary summary;
  summary.epoch = epoch;
  for (const TopicId topic : topics) {
    summary.topics.push_back({topic, 1.0});
  }
  return summary;
}

TEST(SubscriptionGroupTest, IdenticalQueriesShareOneEvaluation) {
  ScriptedEvaluator eval;
  eval.current = {5, 6};
  SubscriptionManager manager(eval.fn(), SubscriptionMode::kIndexed);
  std::vector<Delivery> logs[4];
  const KsirQuery query = MakeQuery(UnitVector(1), /*k=*/2);
  for (auto& log : logs) manager.Subscribe(query, Recorder(&log));
  EXPECT_EQ(manager.num_groups(), 1u);
  ASSERT_TRUE(manager.EvaluateAffected(TouchOnly({1}, 1)).ok());
  EXPECT_EQ(eval.calls, 1);
  for (const auto& log : logs) {
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].result, (std::vector<ElementId>{5, 6}));
  }
  const auto& totals = manager.totals();
  EXPECT_EQ(totals.evaluations, 1);
  EXPECT_EQ(totals.shared_hits, 3);
  EXPECT_EQ(totals.activated, 4);
  // A different epsilon is a different query: new group, second call.
  KsirQuery other = query;
  other.epsilon = 0.3;
  std::vector<Delivery> other_log;
  manager.Subscribe(other, Recorder(&other_log));
  EXPECT_EQ(manager.num_groups(), 2u);
  ASSERT_TRUE(manager.EvaluateAffected(TouchOnly({1}, 2)).ok());
  EXPECT_EQ(eval.calls, 3);
  // The naive reference round shares nothing: one call per subscription.
  ASSERT_TRUE(manager.EvaluateAll(3).ok());
  EXPECT_EQ(eval.calls, 8);
}

// ----------------------------------------------- activation / skipping ----

TEST(SubscriptionIndexTest, OnlyTouchedTopicsActivate) {
  ScriptedEvaluator eval;
  eval.current = {1};
  SubscriptionManager manager(eval.fn(), SubscriptionMode::kIndexed);
  std::vector<Delivery> logs[3];
  manager.Subscribe(MakeQuery(UnitVector(0)), Recorder(&logs[0]));
  manager.Subscribe(MakeQuery(UnitVector(1)), Recorder(&logs[1]));
  manager.Subscribe(MakeQuery(UnitVector(2)), Recorder(&logs[2]));
  // Round 1: nothing touched, but all three are fresh -> first delivery.
  ASSERT_TRUE(manager.EvaluateAffected(TouchOnly({}, 1)).ok());
  EXPECT_EQ(logs[0].size(), 1u);
  EXPECT_EQ(logs[1].size(), 1u);
  EXPECT_EQ(logs[2].size(), 1u);
  // Round 2: only topic 1 touched.
  ASSERT_TRUE(manager.EvaluateAffected(TouchOnly({1}, 2)).ok());
  EXPECT_EQ(logs[0].size(), 1u);
  EXPECT_EQ(logs[1].size(), 2u);
  EXPECT_EQ(logs[2].size(), 1u);
  const auto& totals = manager.totals();
  EXPECT_EQ(totals.activated, 4);
  EXPECT_EQ(totals.skipped, 2);  // round 2 skipped topics 0 and 2
  // Round 3: untouched round wakes nobody.
  ASSERT_TRUE(manager.EvaluateAffected(TouchOnly({}, 3)).ok());
  EXPECT_EQ(manager.totals().skipped, 5);
  EXPECT_EQ(manager.totals().activated, 4);
}

TEST(SubscriptionIndexTest, SieveStreamingIsAlwaysActivated) {
  ScriptedEvaluator eval;
  eval.current = {1};
  SubscriptionManager manager(eval.fn(), SubscriptionMode::kIndexed);
  std::vector<Delivery> log;
  manager.Subscribe(
      MakeQuery(UnitVector(0), /*k=*/2, Algorithm::kSieveStreaming),
      Recorder(&log));
  ASSERT_TRUE(manager.EvaluateAffected(TouchOnly({}, 1)).ok());
  ASSERT_TRUE(manager.EvaluateAffected(TouchOnly({5}, 2)).ok());
  // Never skipped, its topic being untouched notwithstanding.
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(manager.totals().skipped, 0);
}

TEST(SubscriptionIndexTest, UnsubscribeRemovesPostings) {
  ScriptedEvaluator eval;
  eval.current = {1};
  SubscriptionManager manager(eval.fn(), SubscriptionMode::kIndexed);
  std::vector<Delivery> log;
  const std::int64_t id =
      manager.Subscribe(MakeQuery(UnitVector(0)), Recorder(&log));
  ASSERT_TRUE(manager.EvaluateAffected(TouchOnly({0}, 1)).ok());
  EXPECT_EQ(log.size(), 1u);
  EXPECT_TRUE(manager.Unsubscribe(id));
  EXPECT_FALSE(manager.Unsubscribe(id));
  ASSERT_TRUE(manager.EvaluateAffected(TouchOnly({0}, 2)).ok());
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(manager.size(), 0u);
  EXPECT_EQ(manager.num_groups(), 0u);
}

// Toy item type for the index template itself.
struct ToyItem {
  SparseVector x;
  SmallVector<std::uint32_t, 2> slots;
  const SparseVector& support() const { return x; }
  SmallVector<std::uint32_t, 2>& posting_slots() { return slots; }
};

TEST(InvertedTopicIndexTest, AddRemoveBackpatch) {
  InvertedTopicIndex<ToyItem> index;
  ToyItem a{SparseVector::FromEntries({{0, 0.5}, {1, 0.5}}), {}};
  ToyItem b{SparseVector::FromEntries({{1, 1.0}}), {}};
  ToyItem c{SparseVector::FromEntries({{1, 0.2}, {2, 0.8}}), {}};
  index.Add(&a);
  index.Add(&b);
  index.Add(&c);
  EXPECT_EQ(index.num_postings(), 5u);
  auto posted = [&](TopicId topic) {
    std::multiset<const ToyItem*> items;
    index.ForEachPosted(topic, [&](ToyItem* item) { items.insert(item); });
    return items;
  };
  EXPECT_EQ(posted(1), (std::multiset<const ToyItem*>{&a, &b, &c}));
  // Remove the middle posting: c's slot under topic 1 is back-patched.
  index.Remove(&b);
  EXPECT_EQ(index.num_postings(), 4u);
  EXPECT_EQ(posted(1), (std::multiset<const ToyItem*>{&a, &c}));
  index.Remove(&c);
  EXPECT_EQ(posted(1), (std::multiset<const ToyItem*>{&a}));
  EXPECT_EQ(posted(2), (std::multiset<const ToyItem*>{}));
  index.Remove(&a);
  EXPECT_EQ(index.num_postings(), 0u);
}

// ------------------------------------------------ differential streams ----

/// A subscription's delivered view, updated from the delta stream, plus
/// the raw last result for cross-checking.
struct View {
  std::vector<ElementId> replayed;  // reconstructed from deltas only
  std::vector<ElementId> delivered;  // result as delivered
  std::uint64_t last_epoch = 0;
};

SubscriptionCallback ViewTracker(View* view) {
  return [view](const SubscriptionUpdate& update) {
    Delivery d;
    d.deltas.assign(update.deltas, update.deltas + update.num_deltas);
    view->replayed = ReplayDeltas(view->replayed, d);
    view->delivered = update.result->element_ids;
    view->last_epoch = update.epoch;
  };
}

/// Standing queries registered in both managers: sparse 1-2 topic vectors
/// plus a mixed bag of algorithms, including the always-activated sieve.
std::vector<KsirQuery> DifferentialQueries(int num_topics) {
  std::vector<KsirQuery> queries;
  for (TopicId topic = 0; topic < num_topics; topic += 2) {
    queries.push_back(MakeQuery(UnitVector(topic), /*k=*/3,
                                Algorithm::kTopkRepresentative));
  }
  queries.push_back(MakeQuery(
      SparseVector::FromEntries({{1, 0.5}, {3, 0.5}}), /*k=*/3,
      Algorithm::kMttd));
  queries.push_back(MakeQuery(
      SparseVector::FromEntries({{0, 0.3}, {5, 0.7}}), /*k=*/2,
      Algorithm::kCelf));
  queries.push_back(MakeQuery(UnitVector(2), /*k=*/2, Algorithm::kMtts));
  queries.push_back(
      MakeQuery(UnitVector(4), /*k=*/2, Algorithm::kSieveStreaming));
  // Duplicate of the first: exercises group sharing inside the sweep.
  queries.push_back(MakeQuery(UnitVector(0), /*k=*/3,
                              Algorithm::kTopkRepresentative));
  return queries;
}

void RunEngineDifferential(std::uint64_t seed, const EngineConfig& base,
                           const std::string& flavor) {
  testing::StreamGenConfig gen_config;
  gen_config.num_topics = 16;
  testing::StreamGen gen(seed, gen_config);
  TopicModel model = gen.MakeModel();
  KsirEngine engine(base, &model);

  StandingQueryManager naive(&engine, SubscriptionMode::kNaive);
  StandingQueryManager indexed(&engine, SubscriptionMode::kIndexed);
  const std::vector<KsirQuery> queries =
      DifferentialQueries(gen_config.num_topics);
  std::vector<View> naive_views(queries.size());
  std::vector<View> indexed_views(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    naive.Subscribe(queries[i], ViewTracker(&naive_views[i]));
    indexed.Subscribe(queries[i], ViewTracker(&indexed_views[i]));
  }

  for (Timestamp bucket_end = 2; bucket_end <= 60; bucket_end += 2) {
    std::vector<SocialElement> bucket = gen.NextBucket(bucket_end);
    ASSERT_TRUE(engine.AdvanceTo(bucket_end, std::move(bucket)).ok());
    ASSERT_TRUE(naive.EvaluateAll().ok()) << flavor;
    ASSERT_TRUE(indexed.EvaluateAll().ok()) << flavor;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      // The views must agree after every bucket — a skipped subscription
      // whose true result moved would diverge here.
      EXPECT_EQ(indexed_views[i].delivered, naive_views[i].delivered)
          << flavor << " seed=" << seed << " t=" << bucket_end
          << " query=" << i;
      // And each view must be reconstructible from its delta stream.
      EXPECT_EQ(indexed_views[i].replayed, indexed_views[i].delivered)
          << flavor << " t=" << bucket_end << " query=" << i;
      EXPECT_EQ(naive_views[i].replayed, naive_views[i].delivered)
          << flavor << " t=" << bucket_end << " query=" << i;
    }
    // Indexed epochs only move when the subscription was activated;
    // whenever it did fire, it carries the engine's bucket epoch.
    for (const View& view : indexed_views) {
      EXPECT_LE(view.last_epoch, engine.bucket_epoch());
    }
  }
  // The sweep must have exercised the machinery, not just fallen back to
  // full rounds: skips and shared evaluations both happen.
  const auto& totals = indexed.subscriptions().totals();
  EXPECT_GT(totals.skipped, 0) << flavor;
  EXPECT_GT(totals.shared_hits, 0) << flavor;
  EXPECT_LT(totals.evaluations, naive.subscriptions().totals().evaluations)
      << flavor;
}

class SubscriptionDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SubscriptionDifferentialTest, EngineFlavorsExact) {
  EngineConfig base;
  base.scoring.lambda = 0.4;
  base.scoring.eta = 2.0;
  base.window_length = 6;
  base.bucket_length = 2;
  base.archive_retention = 10;
  base.refresh_mode = RefreshMode::kExact;
  base.score_maintenance = ScoreMaintenance::kIncremental;
  base.reposition_batch_min = 1;
  base.carry_handles = true;
  RunEngineDifferential(GetParam(), base, "handle/exact");

  EngineConfig parallel = base;
  parallel.maintenance_threads = 3;
  RunEngineDifferential(GetParam(), parallel, "parallel/exact");

  EngineConfig recompute = base;
  recompute.score_maintenance = ScoreMaintenance::kRecompute;
  RunEngineDifferential(GetParam(), recompute, "recompute/exact");
}

TEST_P(SubscriptionDifferentialTest, EngineFlavorsPaper) {
  EngineConfig base;
  base.scoring.lambda = 0.4;
  base.scoring.eta = 2.0;
  base.window_length = 6;
  base.bucket_length = 2;
  base.archive_retention = 10;
  base.refresh_mode = RefreshMode::kPaper;
  base.score_maintenance = ScoreMaintenance::kIncremental;
  base.reposition_batch_min = 1;
  base.carry_handles = true;
  RunEngineDifferential(GetParam(), base, "handle/paper");

  EngineConfig single = base;
  single.reposition_batch_min = 0;
  RunEngineDifferential(GetParam(), single, "single/paper");

  EngineConfig batched = base;
  batched.carry_handles = false;
  RunEngineDifferential(GetParam(), batched, "batched/paper");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubscriptionDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 5));

// The same differential across the sharded service: two services fed the
// identical stream, one evaluating standing queries naively, one through
// the inverted index; every subscription's delivered view must match.
TEST(SubscriptionServiceDifferentialTest, ShardedMatchesNaive) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    testing::StreamGenConfig gen_config;
    gen_config.num_topics = 16;
    testing::StreamGen gen(seed, gen_config);
    TopicModel model = gen.MakeModel();

    ServiceConfig base;
    base.engine.scoring.lambda = 0.4;
    base.engine.scoring.eta = 2.0;
    base.engine.window_length = 6;
    base.engine.bucket_length = 2;
    base.engine.archive_retention = 10;
    base.num_shards = 2;
    ServiceConfig naive_config = base;
    naive_config.subscription_mode = SubscriptionMode::kNaive;
    ServiceConfig indexed_config = base;
    indexed_config.subscription_mode = SubscriptionMode::kIndexed;

    auto naive_service =
        std::move(KsirService::Create(naive_config, &model)).value();
    auto indexed_service =
        std::move(KsirService::Create(indexed_config, &model)).value();

    const std::vector<KsirQuery> queries =
        DifferentialQueries(gen_config.num_topics);
    std::vector<View> naive_views(queries.size());
    std::vector<View> indexed_views(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      naive_service->standing_queries().Subscribe(
          queries[i], ViewTracker(&naive_views[i]));
      indexed_service->standing_queries().Subscribe(
          queries[i], ViewTracker(&indexed_views[i]));
    }

    for (Timestamp bucket_end = 2; bucket_end <= 40; bucket_end += 2) {
      std::vector<SocialElement> bucket = gen.NextBucket(bucket_end);
      std::vector<SocialElement> copy = bucket;
      ASSERT_TRUE(
          naive_service->AdvanceTo(bucket_end, std::move(copy)).ok());
      ASSERT_TRUE(
          indexed_service->AdvanceTo(bucket_end, std::move(bucket)).ok());
      for (std::size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(indexed_views[i].delivered, naive_views[i].delivered)
            << "seed=" << seed << " t=" << bucket_end << " query=" << i;
        EXPECT_EQ(indexed_views[i].replayed, indexed_views[i].delivered)
            << "seed=" << seed << " t=" << bucket_end << " query=" << i;
      }
    }
    EXPECT_EQ(naive_service->stats().standing_errors, 0);
    EXPECT_EQ(indexed_service->stats().standing_errors, 0);
    const auto& totals =
        indexed_service->standing_queries().subscriptions().totals();
    EXPECT_GT(totals.skipped, 0) << "seed=" << seed;
    EXPECT_LT(totals.evaluations, naive_service->standing_queries()
                                      .subscriptions()
                                      .totals()
                                      .evaluations)
        << "seed=" << seed;
  }
}

// Repeated EvaluateAll with no intervening bucket wakes nothing under
// kIndexed (the epoch guard) while kNaive re-runs everything.
TEST(StandingQueryManagerTest, IndexedSkipsQuietRounds) {
  testing::StreamGen gen(7);
  TopicModel model = gen.MakeModel();
  EngineConfig config;
  config.scoring.eta = 2.0;
  config.window_length = 6;
  config.bucket_length = 2;
  KsirEngine engine(config, &model);
  ASSERT_TRUE(engine.AdvanceTo(2, gen.NextBucket(2)).ok());

  StandingQueryManager manager(&engine, SubscriptionMode::kIndexed);
  std::vector<Delivery> log;
  manager.Subscribe(MakeQuery(UnitVector(0)), Recorder(&log));
  ASSERT_TRUE(manager.EvaluateAll().ok());
  EXPECT_EQ(log.size(), 1u);  // fresh registration fires
  const std::int64_t evals = manager.subscriptions().totals().evaluations;
  ASSERT_TRUE(manager.EvaluateAll().ok());
  ASSERT_TRUE(manager.EvaluateAll().ok());
  EXPECT_EQ(manager.subscriptions().totals().evaluations, evals);
  EXPECT_EQ(log.size(), 1u);
}

}  // namespace
}  // namespace ksir
