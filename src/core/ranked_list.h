// Per-topic ranked lists (paper Section 4.1, Algorithm 1).
//
// RL_i keeps one tuple <delta_i(e), t_e> per active element with p_i(e) > 0,
// sorted by topic-wise representativeness score descending.
//
// Storage is a chunked sorted array (B-tree-leaf style): an ordered vector
// of fixed-capacity chunks, each holding a sorted run of keys. Insert and
// reposition binary-search the chunk directory and memmove within one chunk
// (a few cache lines), full chunks split and sparse neighbors merge, and the
// threshold traversal of Algorithms 2-3 walks contiguous memory instead of
// chasing red-black-tree nodes as the previous std::set backing did. The
// id -> tuple side table is an open-addressing FlatHashMap.
#ifndef KSIR_CORE_RANKED_LIST_H_
#define KSIR_CORE_RANKED_LIST_H_

#include <array>
#include <cstdint>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "common/flat_hash_map.h"
#include "common/small_vector.h"
#include "common/types.h"

namespace ksir {

/// One topic's ranked list.
class RankedList {
 public:
  /// Ordering key: score descending, id ascending for determinism.
  struct Key {
    double score;
    ElementId id;

    bool operator<(const Key& other) const {
      if (score != other.score) return score > other.score;
      return id < other.id;
    }
    bool operator==(const Key& other) const {
      return score == other.score && id == other.id;
    }
  };

  /// Full tuple view <delta_i(e), t_e> plus the element id.
  struct Tuple {
    ElementId id;
    double score;
    Timestamp te;
  };

  /// Keys per chunk: 64 * 16 B = 1 KiB of contiguous keys per chunk; splits
  /// at capacity keep memmoves short while iteration stays sequential.
  static constexpr std::size_t kChunkCapacity = 64;

 private:
  struct Chunk {
    std::uint32_t size = 0;
    std::array<Key, kChunkCapacity> keys;
  };
  using ChunkVector = std::vector<std::unique_ptr<Chunk>>;

 public:
  /// Forward iterator over the chunked storage in descending-score order.
  /// Invalidated by any mutation, like the node iterators it replaced.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Key;
    using difference_type = std::ptrdiff_t;
    using reference = const Key&;
    using pointer = const Key*;

    const_iterator() = default;

    const Key& operator*() const { return (*chunks_)[chunk_]->keys[offset_]; }
    const Key* operator->() const {
      return &(*chunks_)[chunk_]->keys[offset_];
    }

    const_iterator& operator++() {
      if (++offset_ == (*chunks_)[chunk_]->size) {
        ++chunk_;
        offset_ = 0;
      }
      return *this;
    }

    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.chunk_ == b.chunk_ && a.offset_ == b.offset_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return !(a == b);
    }

   private:
    friend class RankedList;
    const_iterator(const ChunkVector* chunks, std::size_t chunk,
                   std::uint32_t offset)
        : chunks_(chunks), chunk_(chunk), offset_(offset) {}

    const ChunkVector* chunks_ = nullptr;
    std::size_t chunk_ = 0;
    std::uint32_t offset_ = 0;
  };

  /// Reusable scratch of ApplyBatch (sorted removal/insertion keys). Owned
  /// by the caller so one buffer serves every list of an index; never
  /// shared across threads.
  struct BatchScratch {
    std::vector<Key> removals;
    std::vector<Key> insertions;
    /// Ops deferred to the per-element path (chunks the batch would
    /// overflow past capacity); almost always empty.
    std::vector<Key> deferred_removals;
    std::vector<Key> deferred_insertions;
  };

  RankedList() = default;

  /// Inserts a new element; it must not be present.
  void Insert(ElementId id, double score, Timestamp te);

  /// Repositions an existing element with a new score / referral time.
  void Update(ElementId id, double score, Timestamp te);

  /// Repositions `n` existing elements (each present, each at most once) in
  /// one pass: the pending keys are sorted and merged into the chunk
  /// sequence in a single sweep of the chunk directory, instead of `n`
  /// independent binary-search + memmove operations. Equivalent to calling
  /// Update once per tuple — the resulting key sequence and side table are
  /// identical; only the (unobservable) chunk boundaries may differ.
  void ApplyBatch(const Tuple* updates, std::size_t n, BatchScratch* scratch);

  /// Removes an element; it must be present.
  void Erase(ElementId id);

  bool Contains(ElementId id) const { return by_id_.contains(id); }

  /// Tuple of a present element.
  Tuple Get(ElementId id) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Ordered traversal (descending score).
  const_iterator begin() const { return const_iterator(&chunks_, 0, 0); }
  const_iterator end() const {
    return const_iterator(&chunks_, chunks_.size(), 0);
  }

  /// t_e of a present element (stored beside the ordering key).
  Timestamp TimeOf(ElementId id) const;

 private:
  /// Index of the chunk that does / should contain `key`. Binary search
  /// over the contiguous last-key directory (no chunk pointer chasing).
  std::size_t FindChunk(const Key& key) const;

  void InsertKey(const Key& key);
  void EraseKey(const Key& key);

  /// Reposition combining erase + insert; stays inside one chunk (single
  /// directory lookup, local memmoves) whenever old and new key land in the
  /// same chunk — the common case for hub elements nudged every bucket.
  void MoveKey(const Key& old_key, const Key& new_key);

  /// Merges chunk `idx` with a neighbor when the pair fits in one chunk.
  void MaybeMerge(std::size_t idx);

  ChunkVector chunks_;
  /// chunk_last_[i] == chunks_[i]->keys[size - 1]; the search directory.
  std::vector<Key> chunk_last_;
  FlatHashMap<ElementId, std::pair<double, Timestamp>> by_id_;
  std::size_t size_ = 0;
};

/// The z ranked lists plus the per-element topic membership needed to erase
/// expired elements without consulting the (already pruned) window.
class RankedListIndex {
 public:
  explicit RankedListIndex(std::size_t num_topics);

  /// Inserts `id` into the list of every (topic, score) pair.
  void Insert(ElementId id,
              const std::vector<std::pair<TopicId, double>>& topic_scores,
              Timestamp te);

  /// Repositions `id` in every list it belongs to. `topic_scores` must cover
  /// exactly the element's topic support (same topics as at insertion).
  void Update(ElementId id,
              const std::vector<std::pair<TopicId, double>>& topic_scores,
              Timestamp te);

  /// Update without the membership probe, for callers whose `topic_scores`
  /// provably mirror the insertion support (the ScoreCache reposition path:
  /// its entry was built from the same topic vector the membership was).
  /// Debug builds still verify.
  void UpdateTrusted(
      ElementId id,
      const std::vector<std::pair<TopicId, double>>& topic_scores,
      Timestamp te);

  /// Applies `n` repositions destined for one topic's list, under the same
  /// trusted contract as UpdateTrusted: every tuple's element must have
  /// `topic` in its insertion support. `merge` selects the one-pass
  /// RankedList::ApplyBatch sweep; false falls back to per-element Updates
  /// (profitable for lists with only a couple of pending repositions).
  void BatchReposition(TopicId topic, const RankedList::Tuple* updates,
                       std::size_t n, bool merge,
                       RankedList::BatchScratch* scratch);

  /// Removes `id` from all its lists.
  void Erase(ElementId id);

  bool Contains(ElementId id) const { return membership_.contains(id); }

  const RankedList& list(TopicId topic) const;

  std::size_t num_topics() const { return lists_.size(); }

  /// Total tuples across all lists.
  std::size_t total_entries() const { return total_entries_; }

  /// Number of distinct indexed elements.
  std::size_t num_elements() const { return membership_.size(); }

 private:
  std::vector<RankedList> lists_;
  FlatHashMap<ElementId, SmallVector<TopicId, 4>> membership_;
  std::size_t total_entries_ = 0;
};

}  // namespace ksir

#endif  // KSIR_CORE_RANKED_LIST_H_
