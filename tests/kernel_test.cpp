// Differential property tests for the vectorized kernel layer: for every
// kernel, the dispatched arm must return the BIT-identical result of the
// portable scalar reference — indices and moves because they are order-
// preserving, FP reductions because every arm implements the one canonical
// lane order. Inputs sweep empty, single-lane tails, unaligned bases,
// +-0.0, and the hybrid search threshold; the suite runs under ASan/UBSan
// in CI to catch overreads in the vector load paths.
#include "common/kernels/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/kernels/kernels_detail.h"

namespace ksir {
namespace kernels {
namespace {

bool BitEqual(double a, double b) {
  std::uint64_t ua;
  std::uint64_t ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

// The sizes that matter: empty, sub-vector, every tail shape around the
// 4-lane groups, the in-chunk maximum, and past the hybrid binary-search
// threshold of the directory probes.
const std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,  15, 16,
                              17, 31, 32, 33, 63, 64, 65, 96, 128, 257, 1024};

std::vector<Key16> RandomSortedKeys(std::mt19937* rng, std::size_t n) {
  // Coarse score grid to force plenty of score ties (id tiebreak paths).
  std::uniform_int_distribution<int> score(0, static_cast<int>(n) / 4 + 2);
  std::uniform_int_distribution<std::int64_t> id(0, 1 << 20);
  std::vector<Key16> keys(n);
  for (auto& k : keys) {
    k.score = 0.25 * score(*rng);
    k.id = id(*rng);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::vector<double> RandomDoubles(std::mt19937* rng, std::size_t n) {
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<double> v(n);
  for (auto& x : v) {
    x = dist(*rng);
    if (std::abs(x) < 0.05) x = (x < 0.0) ? -0.0 : 0.0;  // exercise +-0.0
  }
  return v;
}

TEST(KernelDispatchTest, TablesAreWellFormed) {
  const KernelTable& scalar = ScalarTable();
  EXPECT_STREQ(scalar.isa, "scalar");
  const KernelTable& active = ActiveTable();
  EXPECT_NE(active.isa, nullptr);
  if (!SimdCompiledIn()) {
    EXPECT_STREQ(active.isa, "scalar");
  }
  // The force flag must reroute dispatch and restore cleanly.
  const bool prev = SetForceScalar(true);
  EXPECT_STREQ(ActiveTable().isa, "scalar");
  SetForceScalar(prev);
  EXPECT_STREQ(ActiveTable().isa, active.isa);
  EXPECT_FALSE(CpuFeatureString().empty());
}

TEST(KernelDiffTest, LowerUpperBoundMatchScalar) {
  std::mt19937 rng(20260809);
  const KernelTable& scalar = ScalarTable();
  const KernelTable& active = ActiveTable();
  for (const std::size_t size : kSizes) {
    for (int round = 0; round < 8; ++round) {
      const std::vector<Key16> keys = RandomSortedKeys(&rng, size);
      const std::size_t n = keys.size();
      std::vector<Key16> probes;
      // Every present key (hit), plus perturbed misses on both sides.
      for (std::size_t i = 0; i < n; i += 1 + n / 16) {
        probes.push_back(keys[i]);
        probes.push_back(Key16{keys[i].score, keys[i].id + 1});
        probes.push_back(Key16{keys[i].score, keys[i].id - 1});
        probes.push_back(Key16{keys[i].score + 0.125, keys[i].id});
        probes.push_back(Key16{keys[i].score - 0.125, keys[i].id});
      }
      probes.push_back(Key16{1e18, -5});
      probes.push_back(Key16{-1e18, 1 << 30});
      probes.push_back(Key16{0.0, 0});
      probes.push_back(Key16{-0.0, 0});  // +-0.0 compare equal everywhere
      for (const Key16& probe : probes) {
        EXPECT_EQ(scalar.lower_bound_keys(keys.data(), n, probe),
                  active.lower_bound_keys(keys.data(), n, probe));
        EXPECT_EQ(scalar.upper_bound_keys(keys.data(), n, probe),
                  active.upper_bound_keys(keys.data(), n, probe));
      }
    }
  }
}

TEST(KernelDiffTest, FindId64MatchesScalarOnBothRecordFields) {
  std::mt19937 rng(7);
  const KernelTable& scalar = ScalarTable();
  const KernelTable& active = ActiveTable();
  struct Record {
    std::int64_t first;
    std::int64_t second;
  };
  for (const std::size_t n : kSizes) {
    std::vector<Record> records(n);
    std::uniform_int_distribution<std::int64_t> id(0, 1 << 16);
    for (auto& r : records) {
      r.first = id(rng);
      r.second = id(rng);
    }
    std::vector<std::int64_t> targets;
    for (std::size_t i = 0; i < n; i += 1 + n / 8) {
      targets.push_back(records[i].first);
      targets.push_back(records[i].second);
    }
    targets.push_back(-1);  // guaranteed miss
    for (const std::int64_t t : targets) {
      // Base at the first field (record head) and at the second field
      // (mid-record, the Key16::id case): the vector arm must not overread
      // past the allocation in either layout. (n == 0 passes nullptr: the
      // kernels must not touch the base pointer on an empty scan.)
      const auto* head = records.empty() ? nullptr : &records[0].first;
      const auto* mid = records.empty() ? nullptr : &records[0].second;
      EXPECT_EQ(scalar.find_id64(head, n, 2, t),
                active.find_id64(head, n, 2, t));
      EXPECT_EQ(scalar.find_id64(mid, n, 2, t),
                active.find_id64(mid, n, 2, t));
    }
    // Odd strides take the shared scalar body; still exercise dispatch.
    std::vector<std::int64_t> flat(n * 3, 42);
    if (n > 1) flat[3 * (n / 2)] = -7;
    EXPECT_EQ(scalar.find_id64(flat.data(), n, 3, -7),
              active.find_id64(flat.data(), n, 3, -7));
  }
}

TEST(KernelDiffTest, CopyKeysHandleOverlapLikeStdCopy) {
  std::mt19937 rng(99);
  const KernelTable& active = ActiveTable();
  for (const std::size_t n : kSizes) {
    for (const std::size_t shift : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}, std::size_t{7}}) {
      const std::vector<Key16> base = RandomSortedKeys(&rng, n + shift + 4);
      if (base.size() < n + shift) continue;
      // Left shift: dst = data, src = data + shift (std::copy direction).
      std::vector<Key16> expect = base;
      std::vector<Key16> got = base;
      std::copy(expect.begin() + static_cast<std::ptrdiff_t>(shift),
                expect.begin() + static_cast<std::ptrdiff_t>(shift + n),
                expect.begin());
      active.copy_keys(got.data(), got.data() + shift, n);
      ASSERT_EQ(0, std::memcmp(expect.data(), got.data(),
                               expect.size() * sizeof(Key16)));
      // Right shift: std::copy_backward direction.
      expect = base;
      got = base;
      std::copy_backward(expect.begin(),
                         expect.begin() + static_cast<std::ptrdiff_t>(n),
                         expect.begin() + static_cast<std::ptrdiff_t>(n + shift));
      active.copy_keys_backward(got.data() + shift, got.data(), n);
      ASSERT_EQ(0, std::memcmp(expect.data(), got.data(),
                               expect.size() * sizeof(Key16)));
    }
  }
}

TEST(KernelDiffTest, MergeKeysMatchesScalar) {
  std::mt19937 rng(13);
  const KernelTable& scalar = ScalarTable();
  const KernelTable& active = ActiveTable();
  for (const std::size_t n : kSizes) {
    std::vector<Key16> all = RandomSortedKeys(&rng, n + 8);
    std::vector<Key16> a;
    std::vector<Key16> b;
    std::bernoulli_distribution coin(0.5);
    for (const Key16& k : all) (coin(rng) ? a : b).push_back(k);
    std::vector<Key16> out_scalar(all.size());
    std::vector<Key16> out_active(all.size());
    scalar.merge_keys(out_scalar.data(), a.data(), a.size(), b.data(),
                      b.size());
    active.merge_keys(out_active.data(), a.data(), a.size(), b.data(),
                      b.size());
    ASSERT_EQ(0, std::memcmp(out_scalar.data(), out_active.data(),
                             all.size() * sizeof(Key16)));
    // And the merge must actually be the sorted union.
    ASSERT_EQ(0, std::memcmp(out_scalar.data(), all.data(),
                             all.size() * sizeof(Key16)));
  }
}

TEST(KernelDiffTest, DenseDotBitwiseIncludingUnalignedBases) {
  std::mt19937 rng(2718);
  const KernelTable& scalar = ScalarTable();
  const KernelTable& active = ActiveTable();
  for (const std::size_t n : kSizes) {
    for (const std::size_t offset : {std::size_t{0}, std::size_t{1},
                                     std::size_t{3}}) {
      const std::vector<double> a = RandomDoubles(&rng, n + offset);
      const std::vector<double> b = RandomDoubles(&rng, n + offset);
      const double s = scalar.dense_dot(a.data() + offset, b.data() + offset,
                                        n);
      const double d = active.dense_dot(a.data() + offset, b.data() + offset,
                                        n);
      EXPECT_TRUE(BitEqual(s, d)) << "n=" << n << " off=" << offset
                                  << " scalar=" << s << " dispatched=" << d;
    }
  }
}

TEST(KernelDiffTest, SumSquaresBitwiseAcrossStrides) {
  std::mt19937 rng(31337);
  const KernelTable& scalar = ScalarTable();
  const KernelTable& active = ActiveTable();
  for (const std::size_t n : kSizes) {
    for (const std::size_t stride : {std::size_t{1}, std::size_t{2},
                                     std::size_t{3}}) {
      // Mid-record layout for stride 2: allocate exactly the doubles a
      // (int32, double) entry array would hold past the value pointer.
      const std::size_t len = n == 0 ? 0 : (n - 1) * stride + 1;
      const std::vector<double> v = RandomDoubles(&rng, len);
      const double s = scalar.sum_squares(v.data(), n, stride);
      const double d = active.sum_squares(v.data(), n, stride);
      EXPECT_TRUE(BitEqual(s, d)) << "n=" << n << " stride=" << stride;
    }
  }
}

TEST(KernelDiffTest, WeightedSumArgmaxBitwiseWithTiesAndSentinels) {
  std::mt19937 rng(4242);
  const KernelTable& scalar = ScalarTable();
  const KernelTable& active = ActiveTable();
  for (const std::size_t n : kSizes) {
    for (int round = 0; round < 8; ++round) {
      std::vector<double> sums = RandomDoubles(&rng, n);
      std::vector<double> maxes = RandomDoubles(&rng, n);
      // Deliberate duplicated maxima and the cursor's -1.0 sentinel.
      std::uniform_int_distribution<std::size_t> pick(0, n + 1);
      for (std::size_t i = 0; i < n; ++i) {
        if (pick(rng) == 0) maxes[i] = 1.75;  // forced tie value
        if (pick(rng) == 1) {
          maxes[i] = -1.0;
          sums[i] = 0.0;
        }
      }
      std::size_t arg_s = 777;
      std::size_t arg_d = 888;
      const double s =
          scalar.weighted_sum_argmax(sums.data(), maxes.data(), n, &arg_s);
      const double d =
          active.weighted_sum_argmax(sums.data(), maxes.data(), n, &arg_d);
      EXPECT_TRUE(BitEqual(s, d)) << "n=" << n;
      EXPECT_EQ(arg_s, arg_d) << "n=" << n;
      if (n == 0) {
        EXPECT_EQ(arg_s, n);
      }
    }
  }
}

TEST(KernelDiffTest, ScatterAddEntriesMatchesScalar) {
  std::mt19937 rng(555);
  const KernelTable& scalar = ScalarTable();
  const KernelTable& active = ActiveTable();
  constexpr std::size_t kSlots = 64;
  for (const std::size_t n : kSizes) {
    std::vector<detail::IndexValue> entries(n);
    std::uniform_int_distribution<std::int32_t> slot(0, kSlots - 1);
    std::uniform_real_distribution<double> val(-1.0, 1.0);
    for (auto& e : entries) {
      e.index = slot(rng);
      e.value = val(rng);
    }
    std::vector<double> vs(kSlots, 0.5);
    std::vector<double> vd(kSlots, 0.5);
    std::vector<std::uint64_t> ss(kSlots, 3);  // stale stamps
    std::vector<std::uint64_t> sd(kSlots, 3);
    scalar.scatter_add_entries(entries.data(), n, vs.data(), ss.data(), 9);
    active.scatter_add_entries(entries.data(), n, vd.data(), sd.data(), 9);
    ASSERT_EQ(0, std::memcmp(vs.data(), vd.data(), kSlots * sizeof(double)));
    ASSERT_EQ(ss, sd);
  }
}

// The wrappers must follow the force flag (this is what the parity bench
// and the engine equivalence harness rely on).
TEST(KernelDispatchTest, WrappersFollowForceScalar) {
  std::vector<double> a(37, 1.5);
  std::vector<double> b(37, -2.0);
  const double dispatched = DenseDot(a.data(), b.data(), a.size());
  const bool prev = SetForceScalar(true);
  const double forced = DenseDot(a.data(), b.data(), a.size());
  SetForceScalar(prev);
  EXPECT_TRUE(BitEqual(dispatched, forced));
}

}  // namespace
}  // namespace kernels
}  // namespace ksir
