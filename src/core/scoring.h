// Representativeness scoring (paper Section 3.2):
//
//   sigma_i(w, e) = -gamma(w, e) * p_i(w) p_i(e) * ln(p_i(w) p_i(e))
//   R_i(e)        = sum over distinct words of sigma_i(w, e)
//   I_{i,t}({e})  = sum over in-window referrers r of p_i(e) p_i(r)
//   delta_i(e)    = f_i({e}) = lambda * R_i(e) + (1 - lambda)/eta * I_{i,t}(e)
//   delta(e, x)   = sum_i x_i * delta_i(e)
//
// The context borrows the topic model (for p_i(w)) and the active window
// (for I_t(e)); set-level scores and marginal gains live in CandidateState.
#ifndef KSIR_CORE_SCORING_H_
#define KSIR_CORE_SCORING_H_

#include <utility>
#include <vector>

#include "common/sparse_vector.h"
#include "common/types.h"
#include "stream/element.h"
#include "topic/topic_model.h"
#include "window/active_window.h"

namespace ksir {

/// Trade-off parameters of Eq. (2). The paper uses lambda = 0.5 and
/// eta = 20 (AMiner/Reddit) or 200 (Twitter); eta rescales the influence
/// score to the range of the semantic score.
struct ScoringParams {
  double lambda = 0.5;
  double eta = 20.0;
};

/// Stateless scorer over a fixed model, window and parameters. All methods
/// are const and thread-safe given a quiescent window.
class ScoringContext {
 public:
  /// `model` and `window` must outlive the context.
  ScoringContext(const TopicModel* model, const ActiveWindow* window,
                 ScoringParams params);

  /// sigma_i(w, e) given the word frequency and p_i(e).
  double Sigma(TopicId topic, WordId word, std::int32_t frequency,
               double topic_prob_e) const;

  /// R_i(e): singleton semantic score on `topic`.
  double SemanticScore(TopicId topic, const SocialElement& e) const;

  /// R_i(e) with p_i(e) already in hand (saves the sparse probe; every
  /// caller that iterates e's topic support already holds it).
  double SemanticScore(TopicId topic, const SocialElement& e,
                       double topic_prob_e) const;

  /// I_{i,t}({e}): singleton influence score on `topic` at the window's
  /// current time.
  double InfluenceScore(TopicId topic, const SocialElement& e) const;

  /// I_{i,t}({e}) with p_i(e) already in hand.
  double InfluenceScore(TopicId topic, const SocialElement& e,
                        double topic_prob_e) const;

  /// delta_i(e) = lambda * R_i(e) + (1 - lambda)/eta * I_{i,t}(e).
  double TopicScore(TopicId topic, const SocialElement& e) const;

  /// delta_i(e) with p_i(e) already in hand.
  double TopicScore(TopicId topic, const SocialElement& e,
                    double topic_prob_e) const;

  /// delta(e, x) over the intersection of the query's and the element's
  /// topic supports. Cost O(l * d) per the paper's analysis.
  double ElementScore(const SocialElement& e, const SparseVector& x) const;

  /// (topic, delta_i(e)) for every topic in e's support with p_i(e) > 0.
  std::vector<std::pair<TopicId, double>> AllTopicScores(
      const SocialElement& e) const;

  const TopicModel& model() const { return *model_; }
  const ActiveWindow& window() const { return *window_; }
  const ScoringParams& params() const { return params_; }

  /// (1 - lambda) / eta, the influence multiplier of Eq. (2).
  double influence_factor() const { return influence_factor_; }

 private:
  const TopicModel* model_;
  const ActiveWindow* window_;
  ScoringParams params_;
  double influence_factor_;
};

}  // namespace ksir

#endif  // KSIR_CORE_SCORING_H_
