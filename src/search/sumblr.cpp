#include "search/sumblr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"
#include "search/lexrank.h"

namespace ksir {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

// k-means++ initialization followed by Lloyd iterations; returns the cluster
// assignment of each point.
std::vector<std::size_t> KMeans(const std::vector<std::vector<double>>& points,
                                std::size_t num_clusters,
                                std::int32_t iterations, Rng* rng) {
  const std::size_t n = points.size();
  KSIR_CHECK(num_clusters >= 1 && num_clusters <= n);
  std::vector<std::vector<double>> centers;
  centers.reserve(num_clusters);
  centers.push_back(points[rng->NextUint64(n)]);
  std::vector<double> dist(n, std::numeric_limits<double>::max());
  while (centers.size() < num_clusters) {
    for (std::size_t i = 0; i < n; ++i) {
      dist[i] = std::min(dist[i], SquaredDistance(points[i], centers.back()));
    }
    double total = 0.0;
    for (double d : dist) total += d;
    if (total <= 0.0) {
      centers.push_back(points[rng->NextUint64(n)]);
      continue;
    }
    double target = rng->NextDouble() * total;
    std::size_t pick = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= dist[i];
      if (target < 0.0) {
        pick = i;
        break;
      }
    }
    centers.push_back(points[pick]);
  }

  std::vector<std::size_t> assignment(n, 0);
  const std::size_t dim = points.front().size();
  for (std::int32_t iter = 0; iter < iterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < centers.size(); ++c) {
        const double d = SquaredDistance(points[i], centers[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (assignment[i] != best_c) {
        assignment[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    std::vector<std::vector<double>> sums(centers.size(),
                                          std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(centers.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < dim; ++d) {
        sums[assignment[i]][d] += points[i][d];
      }
      ++counts[assignment[i]];
    }
    for (std::size_t c = 0; c < centers.size(); ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its center
      for (std::size_t d = 0; d < dim; ++d) {
        centers[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }
  return assignment;
}

}  // namespace

std::vector<ElementId> SumblrSummarize(const ActiveWindow& window,
                                       const TfIdfIndex& tfidf,
                                       const std::vector<WordId>& keywords,
                                       std::size_t k, std::size_t num_topics,
                                       SumblrOptions options) {
  if (k == 0) return {};
  // --- Candidate filter: elements containing >= 1 keyword. ---
  const std::unordered_set<WordId> keyword_set(keywords.begin(),
                                               keywords.end());
  std::vector<const SocialElement*> candidates;
  window.ForEachActive([&](const SocialElement& e) {
    for (const auto& [word, count] : e.doc.word_counts()) {
      if (keyword_set.contains(word)) {
        candidates.push_back(&e);
        return;
      }
    }
  });
  if (candidates.empty()) return {};
  // Deterministic order, most recent first; cap the candidate set.
  std::sort(candidates.begin(), candidates.end(),
            [](const SocialElement* a, const SocialElement* b) {
              if (a->ts != b->ts) return a->ts > b->ts;
              return a->id < b->id;
            });
  if (candidates.size() > options.max_candidates) {
    candidates.resize(options.max_candidates);
  }

  // --- Cluster by topic vector. ---
  const std::size_t n = candidates.size();
  const std::size_t num_clusters = std::min(k, n);
  std::vector<std::vector<double>> points;
  points.reserve(n);
  for (const SocialElement* e : candidates) {
    points.push_back(e->topics.ToDense(num_topics));
  }
  Rng rng(options.seed);
  const std::vector<std::size_t> assignment =
      KMeans(points, num_clusters, options.kmeans_iterations, &rng);

  // --- LexRank over the TF-IDF similarity graph of all candidates. ---
  std::vector<std::vector<double>> sim(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double s =
          tfidf.ElementSimilarity(candidates[i]->id, candidates[j]->id);
      sim[i][j] = s;
      sim[j][i] = s;
    }
  }
  const std::vector<double> centrality = LexRank(sim);

  // --- Representative per cluster: centrality x influence weight. ---
  std::vector<double> final_score(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double in_degree =
        static_cast<double>(window.ReferrersOf(candidates[i]->id).size());
    final_score[i] =
        centrality[i] *
        std::pow(1.0 + std::log1p(in_degree), options.influence_boost);
  }
  std::vector<std::size_t> best_of_cluster(num_clusters, n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t& best = best_of_cluster[assignment[i]];
    if (best == n || final_score[i] > final_score[best]) best = i;
  }
  std::vector<ElementId> result;
  std::unordered_set<std::size_t> taken;
  for (std::size_t c = 0; c < num_clusters; ++c) {
    if (best_of_cluster[c] == n) continue;
    result.push_back(candidates[best_of_cluster[c]]->id);
    taken.insert(best_of_cluster[c]);
  }
  // Fill up to k with the next-best remaining candidates.
  if (result.size() < k) {
    std::vector<std::size_t> rest;
    for (std::size_t i = 0; i < n; ++i) {
      if (!taken.contains(i)) rest.push_back(i);
    }
    std::sort(rest.begin(), rest.end(), [&](std::size_t a, std::size_t b) {
      if (final_score[a] != final_score[b]) {
        return final_score[a] > final_score[b];
      }
      return candidates[a]->id < candidates[b]->id;
    });
    for (std::size_t i : rest) {
      if (result.size() >= k) break;
      result.push_back(candidates[i]->id);
    }
  }
  return result;
}

}  // namespace ksir
