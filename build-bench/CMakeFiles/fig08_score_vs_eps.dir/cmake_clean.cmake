file(REMOVE_RECURSE
  "CMakeFiles/fig08_score_vs_eps.dir/bench/fig08_score_vs_eps.cpp.o"
  "CMakeFiles/fig08_score_vs_eps.dir/bench/fig08_score_vs_eps.cpp.o.d"
  "fig08_score_vs_eps"
  "fig08_score_vs_eps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_score_vs_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
