# Empty dependencies file for ksir_topic.
# This may be replaced when dependencies are built.
