file(REMOVE_RECURSE
  "libksir_bench_util.a"
)
