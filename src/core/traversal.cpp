#include "core/traversal.h"

#include "common/check.h"
#include "common/kernels/kernels.h"

namespace ksir {

RankedListCursor::RankedListCursor(const RankedListIndex* index,
                                   const SparseVector* query) {
  KSIR_CHECK(index != nullptr);
  KSIR_CHECK(query != nullptr);
  lists_.reserve(query->nnz());
  for (const auto& [topic, weight] : query->entries()) {
    if (weight <= 0.0) continue;
    if (static_cast<std::size_t>(topic) >= index->num_topics()) continue;
    const RankedList& list = index->list(topic);
    ListPos pos;
    pos.topic = topic;
    pos.weight = weight;
    pos.list = &list;
    pos.next = list.begin();
    lists_.push_back(pos);
  }
  head_ub_.resize(lists_.size(), 0.0);
  head_max_.resize(lists_.size(), -1.0);
  for (ListPos& pos : lists_) AdvanceHead(&pos);
}

void RankedListCursor::AdvanceHead(ListPos* pos) {
  while (true) {
    while (pos->cursor < pos->filled &&
           visited_.contains(pos->buffer[pos->cursor].id)) {
      ++pos->cursor;
    }
    if (pos->cursor < pos->filled) break;
    pos->filled = static_cast<std::uint32_t>(
        pos->list->DrainTop(&pos->next, pos->buffer.data(), kPullBlock));
    pos->cursor = 0;
    if (pos->filled == 0) break;  // list exhausted
  }
  const auto slot = static_cast<std::size_t>(pos - lists_.data());
  if (pos->has_head()) {
    const double value = pos->weight * pos->head().score;
    head_ub_[slot] = value;
    head_max_[slot] = value;
  } else {
    head_ub_[slot] = 0.0;
    head_max_[slot] = -1.0;
  }
}

double RankedListCursor::UpperBound() const {
  if (lists_.empty()) return 0.0;
  std::size_t argmax = 0;
  return kernels::WeightedSumArgmax(head_ub_.data(), head_max_.data(),
                                    lists_.size(), &argmax);
}

bool RankedListCursor::Exhausted() const {
  for (const ListPos& pos : lists_) {
    if (pos.has_head()) return false;
  }
  return true;
}

std::optional<ElementId> RankedListCursor::PopNext() {
  if (lists_.empty()) return std::nullopt;
  std::size_t argmax = 0;
  kernels::WeightedSumArgmax(head_ub_.data(), head_max_.data(), lists_.size(),
                             &argmax);
  // The sentinel -1.0 is below every live head value; when even the argmax
  // sits at (or below) it, no list has a selectable head.
  if (!(head_max_[argmax] > -1.0)) return std::nullopt;
  const ElementId id = lists_[argmax].head().id;
  visited_.insert(id);
  ++num_retrieved_;
  // Keep the invariant: every head position points at an unvisited tuple,
  // so UpperBound() matches the paper's UB over unevaluated elements.
  for (ListPos& pos : lists_) AdvanceHead(&pos);
  return id;
}

std::size_t RankedListCursor::PopWhileAtLeast(double min_value,
                                              std::vector<ElementId>* out) {
  if (lists_.empty()) return 0;
  std::size_t popped = 0;
  while (true) {
    // One kernel scan finds both the upper bound and the best head.
    std::size_t argmax = 0;
    const double ub = kernels::WeightedSumArgmax(
        head_ub_.data(), head_max_.data(), lists_.size(), &argmax);
    if (!(head_max_[argmax] > -1.0) || ub < min_value) break;
    const ElementId id = lists_[argmax].head().id;
    visited_.insert(id);
    ++num_retrieved_;
    out->push_back(id);
    ++popped;
    for (ListPos& pos : lists_) AdvanceHead(&pos);
  }
  return popped;
}

}  // namespace ksir
