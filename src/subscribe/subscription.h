// Subscription engine types: standing-query activation modes and the
// incremental delta event stream.
//
// A standing query is a k-SIR query registered once and re-answered as the
// window slides. Instead of the legacy (result, changed) callback, the
// subscription engine emits SubscriptionUpdate events carrying the diff
// between consecutive results — enter / leave / reorder deltas plus the
// epoch they were computed at — so downstream consumers (and remote-shard
// replication) ship deltas, not full top-k sets.
#ifndef KSIR_SUBSCRIBE_SUBSCRIPTION_H_
#define KSIR_SUBSCRIBE_SUBSCRIPTION_H_

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "core/query.h"

namespace ksir {

/// How standing queries are evaluated after a bucket.
enum class SubscriptionMode {
  /// Re-evaluate every registered subscription on every round — the
  /// reference baseline (the pre-subscription-engine behavior), kept for
  /// equivalence testing and benchmarking, same pattern as kRecompute.
  kNaive,
  /// Inverted-index activation: only subscriptions whose query support
  /// intersects the bucket's touched topics are evaluated, identical
  /// queries share one evaluation, untouched subscriptions are skipped
  /// (with a counter proving it). Results are identical to kNaive.
  kIndexed,
};

/// One element-level change between a subscription's consecutive results.
/// Ranks are 0-based positions in the result's selection order; -1 marks
/// "absent" (old_rank of an enter, new_rank of a leave).
struct SubscriptionDelta {
  enum class Kind : std::uint8_t { kEnter, kLeave, kReorder };

  Kind kind;
  ElementId id;
  std::int32_t old_rank;
  std::int32_t new_rank;
};

/// One evaluation event delivered to a subscription's callback. Deltas are
/// ordered leaves first, then enters, then reorders (each by rank). The
/// result and delta pointers are valid only for the duration of the
/// callback.
struct SubscriptionUpdate {
  std::int64_t subscription_id;
  /// The evaluation round's epoch (engine bucket epoch / service epoch).
  std::uint64_t epoch;
  /// True on the subscription's first evaluation: every result member is
  /// reported as an enter.
  bool first;
  /// True when the result SET changed (some enter or leave emitted) — the
  /// legacy `changed` bit. Reorders alone leave it false.
  bool set_changed;
  /// The full new result (selection order), shared across a group.
  const QueryResult* result;
  const SubscriptionDelta* deltas;
  std::size_t num_deltas;
};

using SubscriptionCallback = std::function<void(const SubscriptionUpdate&)>;

}  // namespace ksir

#endif  // KSIR_SUBSCRIBE_SUBSCRIPTION_H_
