file(REMOVE_RECURSE
  "libksir_window.a"
)
