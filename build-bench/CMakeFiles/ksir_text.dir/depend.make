# Empty dependencies file for ksir_text.
# This may be replaced when dependencies are built.
