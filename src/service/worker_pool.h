// Fixed-size thread pool used by the sharded service to advance shards and
// fan queries out in parallel. Deliberately minimal: tasks are
// std::function<void()>, results travel through captured state, and
// WaitIdle() gives the caller a barrier. The library is exception-free, so
// tasks must not throw.
#ifndef KSIR_SERVICE_WORKER_POOL_H_
#define KSIR_SERVICE_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ksir {

/// Shared worker pool. Thread-safe; Submit may be called from any thread,
/// including from inside a task (tasks must not WaitIdle, though — that
/// would deadlock the barrier they are part of).
class WorkerPool {
 public:
  /// Spawns `num_threads` workers (>= 1; 0 is clamped to 1).
  explicit WorkerPool(std::size_t num_threads);

  /// Drains the queue, then joins all workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void WaitIdle();

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // tasks currently executing
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Completion barrier for one batch of tasks on a shared pool. Unlike
/// WorkerPool::WaitIdle, Wait() only blocks on tasks submitted through THIS
/// group, so concurrent queries and ingestion can share one pool without
/// waiting on each other's work.
class TaskGroup {
 public:
  /// `pool` must outlive the group.
  explicit TaskGroup(WorkerPool* pool) : pool_(pool) {}

  /// A group must be drained (Wait) before destruction.
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task` on the pool and tracks it in this group.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted through this group has finished.
  void Wait();

 private:
  WorkerPool* pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
};

}  // namespace ksir

#endif  // KSIR_SERVICE_WORKER_POOL_H_
