# Empty dependencies file for score_cache_test.
# This may be replaced when dependencies are built.
