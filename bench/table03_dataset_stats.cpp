// Table 3: statistics of the (synthetic) datasets, printed alongside the
// paper's post-preprocessing targets the generators are calibrated to.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ksir;
  using namespace ksir::bench;
  PrintBanner("Table 3 - dataset statistics", "EDBT'19 Table 3");

  std::printf("\n%-12s %12s %12s %14s %14s %14s %14s\n", "dataset",
              "elements", "vocab", "avg length", "target len",
              "avg refs", "target refs");
  std::printf("----------------------------------------------------------------"
              "---------------------------------\n");
  for (int which = 0; which < 3; ++which) {
    const Dataset dataset = MakeDataset(which);
    double total_len = 0.0;
    double total_refs = 0.0;
    for (const SocialElement& e : dataset.stream.elements) {
      total_len += static_cast<double>(e.doc.num_tokens());
      total_refs += static_cast<double>(e.refs.size());
    }
    const double n = static_cast<double>(dataset.stream.elements.size());
    std::printf("%-12s %12zu %12zu %14.2f %14.2f %14.3f %14.3f\n",
                dataset.name.c_str(), dataset.stream.elements.size(),
                dataset.stream.vocab.size(), total_len / n,
                dataset.stream.profile.avg_length, total_refs / n,
                dataset.stream.profile.avg_references);
  }
  std::printf(
      "\nPaper targets (post-preprocessing): AMiner len 49.2 refs 3.68; "
      "Reddit len 8.6 refs 0.85; Twitter len 5.1 refs 0.62.\n"
      "Element counts are scaled down from 1.66M/20.2M/14.8M "
      "(KSIR_BENCH_SCALE=paper raises them ~8x).\n");
  return 0;
}
