// Portable reference arm: exports the shared canonical bodies verbatim.
// Built unconditionally (including under KSIR_SIMD=OFF) and kept as the
// ground truth the differential kernel tests compare every other arm
// against.
#include "common/kernels/kernels_detail.h"

namespace ksir {
namespace kernels {

const KernelTable& ScalarTable() {
  static const KernelTable table = {
      "scalar",
      &detail::LowerBoundKeysScalar,
      &detail::UpperBoundKeysScalar,
      &detail::FindId64Scalar,
      &detail::CopyKeysScalar,
      &detail::CopyKeysBackwardScalar,
      &detail::MergeKeysScalar,
      &detail::DenseDotScalar,
      &detail::SumSquaresScalar,
      &detail::WeightedSumArgmaxScalar,
      &detail::ScatterAddEntriesScalar,
  };
  return table;
}

}  // namespace kernels
}  // namespace ksir
