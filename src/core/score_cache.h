// Per-element decomposition of delta_i(e) into its immutable and mutable
// halves (Eq. 2):
//
//   delta_i(e) = lambda * R_i(e) + ((1 - lambda) / eta) * I_{i,t}(e)
//
// R_i(e) depends only on the element's own words and topic vector, both
// frozen at ingestion, so it is computed exactly once per (element, topic)
// when the element enters A_t (or re-enters it by resurrection). I_{i,t}(e)
// changes only by whole influence edges: when referrer r arrives,
// I_{i,t}(e) += p_i(e) * p_i(r) on every shared topic; when r expires the
// same term is subtracted. The cache therefore turns Algorithm 1's
// reposition step from a full O(|words| * |topics|) rescore plus an
// O(|I_t(e)|) referrer scan into an O(|shared topics|) update.
//
// The cache is an implementation detail of IndexMaintainer; it trusts the
// maintainer to feed it every window change exactly once and in order
// (erase expired, insert inserted/resurrected, then apply edge deltas).
#ifndef KSIR_CORE_SCORE_CACHE_H_
#define KSIR_CORE_SCORE_CACHE_H_

#include <utility>
#include <vector>

#include "common/flat_hash_map.h"
#include "common/small_vector.h"
#include "common/types.h"
#include "core/scoring.h"
#include "stream/element.h"

namespace ksir {

/// Cached score halves of every indexed element.
class ScoreCache {
 public:
  /// One support topic of one element. `semantic` is immutable after
  /// Insert; `influence` tracks I_{i,t}(e) incrementally.
  struct TopicHalves {
    TopicId topic;
    double topic_prob;  // p_i(e), kept to avoid re-probing the element
    double semantic;    // R_i(e)
    double influence;   // I_{i,t}(e)
    /// The composed score currently sitting in this topic's ranked list.
    /// Maintained by Insert and the batched maintainer's queue path, which
    /// uses it to elide repositions whose tuple would not change: an
    /// expired referrer sharing no topics with the element moves nothing.
    double listed;
  };
  using TopicList = SmallVector<TopicHalves, 4>;

  /// `ctx` must outlive the cache.
  explicit ScoreCache(const ScoringContext* ctx);

  /// (Re)computes both halves for every topic in e's support: R_i(e) by the
  /// one-and-only full word scan, I_{i,t}(e) from the window's current
  /// referrer set. Replaces any previous entry (resurrection).
  void Insert(const SocialElement& e);

  /// Drops an expired element. Missing ids are ignored (an element may
  /// expire and be garbage-collected across refresh modes).
  void Erase(ElementId id);

  bool Contains(ElementId id) const { return entries_.contains(id); }

  /// I_{i,t}(target) += p_i(target) * p_i(referrer) over shared topics.
  /// Only the referrer's topic vector is needed; the target's per-topic
  /// probabilities are already cached in its entry.
  void AddEdge(ElementId target, const SparseVector& referrer_topics);

  /// I_{i,t}(target) -= p_i(target) * p_i(referrer) over shared topics.
  void RemoveEdge(ElementId target, const SparseVector& referrer_topics);

  /// Composes delta_i(e) for every topic in the element's support, in topic
  /// order (the layout RankedListIndex expects). Clears `out` first.
  void ComposeScores(ElementId id,
                     std::vector<std::pair<TopicId, double>>* out) const;

  /// The cached halves of a present element, for the batched maintainer:
  /// it composes scores straight into its per-topic pending runs (skipping
  /// the intermediate vector) and refreshes `listed` as it queues.
  TopicList& MutableHalves(ElementId id);

  std::size_t size() const { return entries_.size(); }

 private:
  void ApplyEdge(ElementId target, const SparseVector& referrer_topics,
                 double sign);

  const ScoringContext* ctx_;
  FlatHashMap<ElementId, TopicList> entries_;
};

}  // namespace ksir

#endif  // KSIR_CORE_SCORE_CACHE_H_
