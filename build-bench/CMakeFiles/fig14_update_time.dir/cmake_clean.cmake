file(REMOVE_RECURSE
  "CMakeFiles/fig14_update_time.dir/bench/fig14_update_time.cpp.o"
  "CMakeFiles/fig14_update_time.dir/bench/fig14_update_time.cpp.o.d"
  "fig14_update_time"
  "fig14_update_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_update_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
