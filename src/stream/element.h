// The social element of the paper (Section 3.1): a triple <ts, doc, ref>
// plus the sparse topic vector p(e) attached by inference (or by the
// synthetic generator's ground truth).
#ifndef KSIR_STREAM_ELEMENT_H_
#define KSIR_STREAM_ELEMENT_H_

#include <string>
#include <vector>

#include "common/sparse_vector.h"
#include "common/types.h"
#include "text/document.h"

namespace ksir {

/// One item of a social stream (tweet, submission, paper, ...).
struct SocialElement {
  /// Stream-unique identifier.
  ElementId id = kInvalidElementId;
  /// Posting time. Streams are fed to the engine in non-decreasing ts order.
  Timestamp ts = 0;
  /// Bag-of-words content (already preprocessed).
  Document doc;
  /// Elements this one refers to (retweet/comment/citation targets). Each
  /// target's ts is strictly smaller than `ts`.
  std::vector<ElementId> refs;
  /// Sparse topic distribution p_i(e) (sums to 1 over its support).
  SparseVector topics;
  /// Optional original text, kept only for display in examples.
  std::string raw_text;
};

}  // namespace ksir

#endif  // KSIR_STREAM_ELEMENT_H_
