// ksir_cli: batch command-line front end for user-supplied data.
//
// Modes:
//   ksir_cli --demo
//       generate a synthetic stream, save stream + model to ./demo.*, and
//       answer one example query (shows the file formats end to end).
//   ksir_cli --stream S.tsv --model M.txt --keywords "w12 w87" [options]
//       load a stream (stream/stream_io.h format) and a topic model
//       (TopicModel::Save format), ingest everything, answer the query.
//
// Options: --k N (10), --epsilon E (0.1), --algorithm mtts|mttd|celf|topk
//          (mttd), --window SECONDS (86400), --lambda L (0.5), --eta H (20)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "stream/generator.h"
#include "stream/stream_io.h"
#include "topic/inference.h"

namespace {

using namespace ksir;  // NOLINT(build/namespaces) - example brevity

struct CliOptions {
  std::string stream_path;
  std::string model_path;
  std::string keywords;
  int k = 10;
  double epsilon = 0.1;
  std::string algorithm = "mttd";
  Timestamp window = 24 * 3600;
  double lambda = 0.5;
  double eta = 20.0;
  bool demo = false;
};

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--demo") {
      options->demo = true;
    } else if (arg == "--stream") {
      const char* v = next();
      if (v == nullptr) return false;
      options->stream_path = v;
    } else if (arg == "--model") {
      const char* v = next();
      if (v == nullptr) return false;
      options->model_path = v;
    } else if (arg == "--keywords") {
      const char* v = next();
      if (v == nullptr) return false;
      options->keywords = v;
    } else if (arg == "--k") {
      const char* v = next();
      if (v == nullptr) return false;
      options->k = std::atoi(v);
    } else if (arg == "--epsilon") {
      const char* v = next();
      if (v == nullptr) return false;
      options->epsilon = std::atof(v);
    } else if (arg == "--algorithm") {
      const char* v = next();
      if (v == nullptr) return false;
      options->algorithm = v;
    } else if (arg == "--window") {
      const char* v = next();
      if (v == nullptr) return false;
      options->window = std::atoll(v);
    } else if (arg == "--lambda") {
      const char* v = next();
      if (v == nullptr) return false;
      options->lambda = std::atof(v);
    } else if (arg == "--eta") {
      const char* v = next();
      if (v == nullptr) return false;
      options->eta = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return options->demo ||
         (!options->stream_path.empty() && !options->model_path.empty() &&
          !options->keywords.empty());
}

int RunDemo() {
  std::printf("Generating a demo stream (TwitterSim, 5000 elements)...\n");
  StreamProfile profile = TwitterSimProfile();
  profile.num_elements = 5000;
  auto stream = GenerateStream(profile);
  KSIR_CHECK(stream.ok());

  {
    std::ofstream out("demo.stream.tsv");
    KSIR_CHECK(WriteStreamTsv(stream->elements, &out).ok());
  }
  {
    std::ofstream out("demo.model.txt");
    KSIR_CHECK(stream->model.Save(&out).ok());
  }
  std::printf("Wrote demo.stream.tsv and demo.model.txt\n");
  std::printf("Try:\n  ksir_cli --stream demo.stream.tsv --model "
              "demo.model.txt --keywords \"w10 w250\"\n");
  return 0;
}

Algorithm ParseAlgorithm(const std::string& name) {
  if (name == "mtts") return Algorithm::kMtts;
  if (name == "celf") return Algorithm::kCelf;
  if (name == "topk") return Algorithm::kTopkRepresentative;
  if (name == "sieve") return Algorithm::kSieveStreaming;
  return Algorithm::kMttd;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    std::fprintf(stderr,
                 "usage: ksir_cli --demo | --stream S.tsv --model M.txt "
                 "--keywords \"w1 w2\" [--k N] [--epsilon E] "
                 "[--algorithm mtts|mttd|celf|topk|sieve] [--window SEC] "
                 "[--lambda L] [--eta H]\n");
    return 2;
  }
  if (options.demo) return RunDemo();

  // --- load model ---
  std::ifstream model_in(options.model_path);
  if (!model_in) {
    std::fprintf(stderr, "cannot open %s\n", options.model_path.c_str());
    return 1;
  }
  auto model = TopicModel::Load(&model_in);
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // --- load stream ---
  std::ifstream stream_in(options.stream_path);
  if (!stream_in) {
    std::fprintf(stderr, "cannot open %s\n", options.stream_path.c_str());
    return 1;
  }
  auto elements = ReadStreamTsv(&stream_in);
  if (!elements.ok()) {
    std::fprintf(stderr, "stream: %s\n",
                 elements.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %zu elements.\n", elements->size());

  // Elements without topic vectors are inferred against the model.
  TopicInferencer inferencer(&*model);
  std::size_t inferred = 0;
  for (SocialElement& e : *elements) {
    if (e.topics.empty() && !e.doc.empty()) {
      e.topics = inferencer.InferSparse(e.doc, static_cast<std::uint64_t>(e.id));
      ++inferred;
    }
  }
  if (inferred > 0) {
    std::printf("Inferred topic vectors for %zu elements.\n", inferred);
  }

  // --- engine ---
  EngineConfig config;
  config.scoring.lambda = options.lambda;
  config.scoring.eta = options.eta;
  config.window_length = options.window;
  config.bucket_length = std::max<Timestamp>(1, options.window / 96);
  KsirEngine engine(config, &*model);
  const Status fed = engine.Append(std::move(*elements));
  if (!fed.ok()) {
    std::fprintf(stderr, "ingest: %s\n", fed.ToString().c_str());
    return 1;
  }
  std::printf("Window at t=%lld holds %zu active elements.\n",
              static_cast<long long>(engine.now()),
              engine.window().num_active());

  // --- query: keywords are vocabulary *words*; for the demo's synthetic
  // vocabulary they are the literal tokens "w123". Map via a vocabulary the
  // caller controls; here the synthetic convention wN -> id N is used when
  // the token parses, else the raw integer.
  std::vector<WordId> keyword_ids;
  std::stringstream keyword_stream(options.keywords);
  std::string token;
  while (keyword_stream >> token) {
    if (!token.empty() && (token[0] == 'w' || token[0] == 'W')) {
      token = token.substr(1);
    }
    keyword_ids.push_back(static_cast<WordId>(std::atoi(token.c_str())));
  }
  auto x = inferencer.InferSparse(Document::FromWordIds(keyword_ids));
  x.NormalizeL1();

  KsirQuery query;
  query.k = options.k;
  query.x = x;
  query.epsilon = options.epsilon;
  query.algorithm = ParseAlgorithm(options.algorithm);
  const auto result = engine.Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s  f(S,x) = %.4f  (%.3f ms, %zu of %zu evaluated)\n",
              std::string(AlgorithmName(query.algorithm)).c_str(),
              result->score, result->stats.elapsed_ms,
              result->stats.num_evaluated, engine.window().num_active());
  for (ElementId id : result->element_ids) {
    const SocialElement* e = engine.window().Find(id);
    std::printf("  e%-8lld ts %-10lld refs-in %2zu\n",
                static_cast<long long>(id),
                static_cast<long long>(e->ts),
                engine.window().ReferrersOf(id).size());
  }
  return 0;
}
