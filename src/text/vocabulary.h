// Word <-> dense WordId interning with corpus frequency statistics. The
// vocabulary V of the paper (Section 3.1) indexed {0, ..., m-1}.
#ifndef KSIR_TEXT_VOCABULARY_H_
#define KSIR_TEXT_VOCABULARY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace ksir {

/// Mutable interning dictionary. Thread-compatible (external synchronization
/// required for concurrent mutation, as with standard containers).
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `word`, interning it on first sight.
  WordId GetOrAdd(std::string_view word);

  /// Returns the id of `word` or kInvalidWordId when unknown.
  WordId Lookup(std::string_view word) const;

  /// Returns the word for a valid id.
  const std::string& WordOf(WordId id) const;

  /// Increments the corpus occurrence count of `id` by `delta`.
  void AddOccurrences(WordId id, std::int64_t delta = 1);

  /// Total corpus occurrences recorded for `id`.
  std::int64_t OccurrenceCount(WordId id) const;

  /// Number of distinct words (m = |V|).
  std::size_t size() const { return words_.size(); }

  /// All interned words, indexed by WordId.
  const std::vector<std::string>& words() const { return words_; }

 private:
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view sv) const {
      return std::hash<std::string_view>{}(sv);
    }
  };

  std::vector<std::string> words_;
  std::vector<std::int64_t> counts_;
  std::unordered_map<std::string, WordId, SvHash, std::equal_to<>> index_;
};

}  // namespace ksir

#endif  // KSIR_TEXT_VOCABULARY_H_
