file(REMOVE_RECURSE
  "CMakeFiles/ksir_eval.dir/src/eval/kappa.cpp.o"
  "CMakeFiles/ksir_eval.dir/src/eval/kappa.cpp.o.d"
  "CMakeFiles/ksir_eval.dir/src/eval/metrics.cpp.o"
  "CMakeFiles/ksir_eval.dir/src/eval/metrics.cpp.o.d"
  "CMakeFiles/ksir_eval.dir/src/eval/user_study.cpp.o"
  "CMakeFiles/ksir_eval.dir/src/eval/user_study.cpp.o.d"
  "libksir_eval.a"
  "libksir_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksir_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
