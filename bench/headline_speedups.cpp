// Headline claim (paper abstract / Section 5.3): "MTTS and MTTD achieve up
// to 124x and 390x speedups over the baselines for k-SIR processing with at
// most 5% and 1% losses in quality."
//
// Prints, per dataset, the speedup of MTTS/MTTD over the slower of the two
// baselines (CELF, SieveStreaming) and the quality retained vs CELF, at the
// default parameters. Speedups grow with the active-window size, so the
// paper-scale factors need KSIR_BENCH_SCALE=paper (and were measured by the
// authors on windows holding orders of magnitude more elements).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ksir;
  using namespace ksir::bench;
  PrintBanner("Headline - speedups over baselines and quality retained",
              "EDBT'19 abstract / Section 5.3");

  const std::size_t num_queries = NumQueries(GetScale());
  double best_mtts_speedup = 0.0;
  double best_mttd_speedup = 0.0;
  for (int which = 0; which < 3; ++which) {
    const Dataset dataset = MakeDataset(which);
    const auto engine = BuildAndFeed(dataset, MakeConfig(dataset));
    const auto workload = MakeWorkload(dataset, num_queries);
    std::printf("\n[%s]  active elements: %zu\n", dataset.name.c_str(),
                engine->window().num_active());
    PrintHeaderRow("k", {"MTTS speedup", "MTTD speedup", "MTTS qual%",
                         "MTTD qual%"});
    for (const int k : {10, 25}) {
      const CellStats celf =
          RunWorkload(*engine, workload, Algorithm::kCelf, k, 0.1);
      const CellStats sieve =
          RunWorkload(*engine, workload, Algorithm::kSieveStreaming, k, 0.1);
      const CellStats mtts =
          RunWorkload(*engine, workload, Algorithm::kMtts, k, 0.1);
      const CellStats mttd =
          RunWorkload(*engine, workload, Algorithm::kMttd, k, 0.1);
      const double slow_baseline =
          std::max(celf.mean_time_ms, sieve.mean_time_ms);
      const double mtts_speedup = slow_baseline / mtts.mean_time_ms;
      const double mttd_speedup = slow_baseline / mttd.mean_time_ms;
      best_mtts_speedup = std::max(best_mtts_speedup, mtts_speedup);
      best_mttd_speedup = std::max(best_mttd_speedup, mttd_speedup);
      PrintRow(std::to_string(k),
               {mtts_speedup, mttd_speedup,
                100.0 * mtts.mean_score / celf.mean_score,
                100.0 * mttd.mean_score / celf.mean_score},
               1);
    }
  }
  std::printf("\nBest observed speedup at this scale: MTTS %.0fx, MTTD %.0fx "
              "(paper: up to 124x / 390x on windows holding 10-100x more "
              "elements; the margin grows with n_t).\n",
              best_mtts_speedup, best_mttd_speedup);
  return 0;
}
