// Sharded-service query throughput vs. a single engine.
//
// The serving claim behind src/service/: repeated trending queries between
// bucket boundaries are answered from the epoch-keyed result cache, and
// cache misses fan out to N shards whose per-shard work is a fraction of
// one big engine's. This harness feeds the same RedditSim stream to a
// single engine, a cold-cache sharded service (capacity 1 forces the
// planner path) and a warm-cache service, then replays a rotating workload
// of ad-hoc queries against each.
//
//   $ ./service_throughput
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/engine.h"
#include "service/service.h"

namespace {

using namespace ksir;         // NOLINT(build/namespaces) - bench brevity
using namespace ksir::bench;  // NOLINT(build/namespaces)

/// Replays the workload round-robin `rounds` times; returns queries/sec.
template <typename QueryFn>
double MeasureQps(const std::vector<QuerySpec>& workload, std::size_t rounds,
                  Algorithm algorithm, std::int32_t k, const QueryFn& run) {
  std::size_t answered = 0;
  WallTimer timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const QuerySpec& spec : workload) {
      KsirQuery query;
      query.k = k;
      query.x = spec.x;
      query.epsilon = 0.1;
      query.algorithm = algorithm;
      if (run(query)) ++answered;
    }
  }
  const double seconds = timer.ElapsedMillis() / 1000.0;
  return seconds > 0.0 ? static_cast<double>(answered) / seconds : 0.0;
}

}  // namespace

int main() {
  PrintBanner("Sharded service query throughput",
              "service layer (beyond the paper): fan-out/merge + result cache");

  const Dataset dataset = MakeDataset(1);  // RedditSim
  const EngineConfig config = MakeConfig(dataset);
  const std::size_t num_shards = 4;
  const std::int32_t k = 10;
  const std::size_t rounds = GetScale() == Scale::kSmoke ? 2 : 8;
  const auto workload = MakeWorkload(dataset, 32);

  std::printf("dataset=%s elements=%zu shards=%zu k=%d workload=%zu "
              "rounds=%zu\n\n",
              dataset.name.c_str(), dataset.stream.elements.size(),
              num_shards, k, workload.size(), rounds);

  // Single engine.
  std::unique_ptr<KsirEngine> engine = BuildAndFeed(dataset, config);

  // Sharded service, cold: capacity 1 + 32 rotating queries => every query
  // takes the planner path.
  ServiceConfig cold_config;
  cold_config.engine = config;
  cold_config.num_shards = num_shards;
  cold_config.cache_capacity = 1;
  auto cold = KsirService::Create(cold_config, &dataset.stream.model);
  KSIR_CHECK(cold.ok());
  KSIR_CHECK((*cold)->Append(dataset.stream.elements).ok());

  // Sharded service, warm: default capacity; one priming pass per epoch.
  ServiceConfig warm_config = cold_config;
  warm_config.cache_capacity = 4096;
  auto warm = KsirService::Create(warm_config, &dataset.stream.model);
  KSIR_CHECK(warm.ok());
  KSIR_CHECK((*warm)->Append(dataset.stream.elements).ok());

  PrintHeaderRow("algo", {"engine q/s", "cold q/s", "warm q/s", "warm/engine"});
  for (const Algorithm algorithm : {Algorithm::kMttd, Algorithm::kCelf}) {
    const double engine_qps =
        MeasureQps(workload, rounds, algorithm, k, [&](const KsirQuery& q) {
          return engine->Query(q).ok();
        });
    const double cold_qps =
        MeasureQps(workload, rounds, algorithm, k, [&](const KsirQuery& q) {
          return (*cold)->Query(q).ok();
        });
    // Prime, then measure.
    MeasureQps(workload, 1, algorithm, k, [&](const KsirQuery& q) {
      return (*warm)->Query(q).ok();
    });
    const double warm_qps =
        MeasureQps(workload, rounds, algorithm, k, [&](const KsirQuery& q) {
          return (*warm)->Query(q).ok();
        });
    PrintRow(std::string(AlgorithmName(algorithm)),
             {engine_qps, cold_qps, warm_qps,
              engine_qps > 0.0 ? warm_qps / engine_qps : 0.0});
  }

  const auto stats = (*warm)->stats();
  std::printf("\nwarm service: epoch=%llu cache hits=%lld misses=%lld "
              "plans=%lld merge_wins=%lld cross_shard_refs=%lld\n",
              static_cast<unsigned long long>(stats.epoch),
              static_cast<long long>(stats.cache.hits),
              static_cast<long long>(stats.cache.misses),
              static_cast<long long>(stats.planner.plans),
              static_cast<long long>(stats.planner.merge_wins),
              static_cast<long long>(stats.ingestion.cross_shard_refs));
  return 0;
}
