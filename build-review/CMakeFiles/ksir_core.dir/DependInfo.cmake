
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/brute_force.cpp" "CMakeFiles/ksir_core.dir/src/core/brute_force.cpp.o" "gcc" "CMakeFiles/ksir_core.dir/src/core/brute_force.cpp.o.d"
  "/root/repo/src/core/candidate_state.cpp" "CMakeFiles/ksir_core.dir/src/core/candidate_state.cpp.o" "gcc" "CMakeFiles/ksir_core.dir/src/core/candidate_state.cpp.o.d"
  "/root/repo/src/core/celf.cpp" "CMakeFiles/ksir_core.dir/src/core/celf.cpp.o" "gcc" "CMakeFiles/ksir_core.dir/src/core/celf.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "CMakeFiles/ksir_core.dir/src/core/engine.cpp.o" "gcc" "CMakeFiles/ksir_core.dir/src/core/engine.cpp.o.d"
  "/root/repo/src/core/index_maintainer.cpp" "CMakeFiles/ksir_core.dir/src/core/index_maintainer.cpp.o" "gcc" "CMakeFiles/ksir_core.dir/src/core/index_maintainer.cpp.o.d"
  "/root/repo/src/core/mttd.cpp" "CMakeFiles/ksir_core.dir/src/core/mttd.cpp.o" "gcc" "CMakeFiles/ksir_core.dir/src/core/mttd.cpp.o.d"
  "/root/repo/src/core/mtts.cpp" "CMakeFiles/ksir_core.dir/src/core/mtts.cpp.o" "gcc" "CMakeFiles/ksir_core.dir/src/core/mtts.cpp.o.d"
  "/root/repo/src/core/ranked_list.cpp" "CMakeFiles/ksir_core.dir/src/core/ranked_list.cpp.o" "gcc" "CMakeFiles/ksir_core.dir/src/core/ranked_list.cpp.o.d"
  "/root/repo/src/core/score_cache.cpp" "CMakeFiles/ksir_core.dir/src/core/score_cache.cpp.o" "gcc" "CMakeFiles/ksir_core.dir/src/core/score_cache.cpp.o.d"
  "/root/repo/src/core/scoring.cpp" "CMakeFiles/ksir_core.dir/src/core/scoring.cpp.o" "gcc" "CMakeFiles/ksir_core.dir/src/core/scoring.cpp.o.d"
  "/root/repo/src/core/sieve_streaming.cpp" "CMakeFiles/ksir_core.dir/src/core/sieve_streaming.cpp.o" "gcc" "CMakeFiles/ksir_core.dir/src/core/sieve_streaming.cpp.o.d"
  "/root/repo/src/core/standing_query.cpp" "CMakeFiles/ksir_core.dir/src/core/standing_query.cpp.o" "gcc" "CMakeFiles/ksir_core.dir/src/core/standing_query.cpp.o.d"
  "/root/repo/src/core/topk_representative.cpp" "CMakeFiles/ksir_core.dir/src/core/topk_representative.cpp.o" "gcc" "CMakeFiles/ksir_core.dir/src/core/topk_representative.cpp.o.d"
  "/root/repo/src/core/traversal.cpp" "CMakeFiles/ksir_core.dir/src/core/traversal.cpp.o" "gcc" "CMakeFiles/ksir_core.dir/src/core/traversal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/ksir_window.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/ksir_topic.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/ksir_stream.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/ksir_text.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/ksir_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
