// Figure 9: average query time of all five methods with varying k (5..25).
//
// Expected shape (paper): MTTS and MTTD at least an order of magnitude
// faster than CELF and SieveStreaming; Top-k Representative fastest; times
// of MTTS/MTTD grow with k (more elements pass the thresholds).
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ksir;
  using namespace ksir::bench;
  PrintBanner("Figure 9 - query time vs k (all methods)",
              "EDBT'19 Fig. 9(a)-(c)");

  const std::size_t num_queries = NumQueries(GetScale());
  for (int which = 0; which < 3; ++which) {
    const Dataset dataset = MakeDataset(which);
    const auto engine = BuildAndFeed(dataset, MakeConfig(dataset));
    const auto workload = MakeWorkload(dataset, num_queries);
    std::printf("\n[%s]  active elements at query time: %zu\n",
                dataset.name.c_str(), engine->window().num_active());
    PrintHeaderRow("k", {"CELF (ms)", "Sieve (ms)", "Top-k (ms)", "MTTS (ms)",
                         "MTTD (ms)"});
    for (const int k : {5, 10, 15, 20, 25}) {
      const CellStats celf =
          RunWorkload(*engine, workload, Algorithm::kCelf, k, 0.1);
      const CellStats sieve =
          RunWorkload(*engine, workload, Algorithm::kSieveStreaming, k, 0.1);
      const CellStats topk =
          RunWorkload(*engine, workload, Algorithm::kTopkRepresentative, k,
                      0.1);
      const CellStats mtts =
          RunWorkload(*engine, workload, Algorithm::kMtts, k, 0.1);
      const CellStats mttd =
          RunWorkload(*engine, workload, Algorithm::kMttd, k, 0.1);
      PrintRow(std::to_string(k),
               {celf.mean_time_ms, sieve.mean_time_ms, topk.mean_time_ms,
                mtts.mean_time_ms, mttd.mean_time_ms});
    }
  }
  return 0;
}
