#include "service/worker_pool.h"

#include <algorithm>
#include <utility>

namespace ksir {

WorkerPool::WorkerPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void WorkerPool::WaitIdle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this]() { return queue_.empty() && in_flight_ == 0; });
  if (first_exception_) {
    std::rethrow_exception(std::exchange(first_exception_, nullptr));
  }
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)]() {
    // The pending count must come back down on every exit path, or Wait()
    // deadlocks forever; the group's first exception travels to its waiter.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    std::unique_lock lock(mutex_);
    if (error && !first_exception_) first_exception_ = std::move(error);
    if (--pending_ == 0) done_.notify_all();
  });
}

void TaskGroup::WaitDrained() {
  std::unique_lock lock(mutex_);
  done_.wait(lock, [this]() { return pending_ == 0; });
}

void TaskGroup::Wait() {
  WaitDrained();
  std::unique_lock lock(mutex_);
  if (first_exception_) {
    std::rethrow_exception(std::exchange(first_exception_, nullptr));
  }
}

TaskGroup::~TaskGroup() { WaitDrained(); }

void WorkerPool::WorkerLoop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_available_.wait(lock,
                         [this]() { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    // in_flight_ must come back down whether the task returns or throws;
    // TaskGroup tasks never leak exceptions here (their wrapper captures
    // into the group), so first_exception_ is the direct-Submit channel.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !first_exception_) first_exception_ = std::move(error);
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

}  // namespace ksir
