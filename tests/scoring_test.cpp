// Golden tests of the scoring semantics against the paper's worked examples
// (Examples 3.1, 3.2, 3.4 and the singleton scores of Figure 5), plus
// CandidateState marginal-gain consistency.
#include <gtest/gtest.h>

#include "core/candidate_state.h"
#include "core/scoring.h"
#include "paper_fixture.h"

namespace ksir {
namespace {

using ::ksir::testing::BalancedQueryVector;
using ::ksir::testing::MakePaperEngineAtT8;
using ::ksir::testing::SkewedQueryVector;

class PaperScoringTest : public ::testing::Test {
 protected:
  void SetUp() override { fixture_ = MakePaperEngineAtT8(); }

  const ScoringContext& ctx() const { return fixture_.engine->scoring(); }
  const ActiveWindow& window() const { return fixture_.engine->window(); }
  const SocialElement& e(ElementId id) const {
    const SocialElement* el = window().Find(id);
    KSIR_CHECK(el != nullptr);
    return *el;
  }

  ksir::testing::PaperEngine fixture_;
};

// ------------------------------------------------- Example 3.1 (semantic) --

TEST_F(PaperScoringTest, Example31SemanticScoreOfE2) {
  // R_2(e2) = 0.18 + 0.15 + 0.20 = 0.53.
  EXPECT_NEAR(ctx().SemanticScore(1, e(2)), 0.53, 0.01);
}

TEST_F(PaperScoringTest, Example31WordOverlapCountedOnce) {
  // Adding e7 to {e2} contributes nothing on theta_2: all of e7's words are
  // covered by e2 with larger weights.
  SparseVector x = SparseVector::FromEntries({{1, 1.0}});
  ScoringParams semantic_only{.lambda = 1.0, .eta = 1.0};
  ScoringContext semantic_ctx(&ctx().model(), &window(), semantic_only);
  CandidateState state(&semantic_ctx, &x);
  state.Add(e(2));
  EXPECT_NEAR(state.score(), 0.53, 0.01);
  EXPECT_NEAR(state.MarginalGain(e(7)), 0.0, 1e-9);
  state.Add(e(7));
  EXPECT_NEAR(state.score(), 0.53, 0.01);
}

TEST_F(PaperScoringTest, Example31SigmaWeights) {
  // sigma_2(w4, e2) = 0.18, sigma_2(w9, e2) = 0.15, sigma_2(w11, e2) = 0.20,
  // sigma_2(w4, e7) = 0.17, sigma_2(w11, e7) = 0.19 (w: 1-based in paper).
  EXPECT_NEAR(ctx().Sigma(1, 3, 1, 0.74), 0.18, 0.005);
  EXPECT_NEAR(ctx().Sigma(1, 8, 1, 0.74), 0.15, 0.005);
  EXPECT_NEAR(ctx().Sigma(1, 10, 1, 0.74), 0.20, 0.005);
  EXPECT_NEAR(ctx().Sigma(1, 3, 1, 0.67), 0.17, 0.005);
  EXPECT_NEAR(ctx().Sigma(1, 10, 1, 0.67), 0.19, 0.005);
}

// ------------------------------------------------ Example 3.2 (influence) --

TEST_F(PaperScoringTest, Example32InfluenceScoreOfSet) {
  // I_{2,8}({e2, e3}) = 0.03 + 0.50 + 0.40 = 0.93.
  SparseVector x = SparseVector::FromEntries({{1, 1.0}});
  ScoringParams influence_only{.lambda = 0.0, .eta = 1.0};
  ScoringContext influence_ctx(&ctx().model(), &window(), influence_only);
  CandidateState state(&influence_ctx, &x);
  state.Add(e(2));
  state.Add(e(3));
  EXPECT_NEAR(state.score(), 0.93, 0.01);
}

TEST_F(PaperScoringTest, Example32SingletonInfluences) {
  // p_2(e2 -> e7) = 0.50, p_2(e2 -> e8) = 0.3626 -> I_{2,8}(e2) = 0.858.
  EXPECT_NEAR(ctx().InfluenceScore(1, e(2)), 0.74 * 0.67 + 0.74 * 0.49, 1e-9);
  // e3's referrers on theta_2 are weak: I_{2,8}(e3) = 0.033 + 0.0539.
  EXPECT_NEAR(ctx().InfluenceScore(1, e(3)), 0.11 * 0.3 + 0.11 * 0.49, 1e-9);
}

TEST_F(PaperScoringTest, InfluenceRestrictedToWindow) {
  // e4 (ts 4) expired at t=8; its referral of e3 must not count on theta_1.
  // I_{1,8}(e3) = p_1(e3->e6) + p_1(e3->e8) = 0.89*0.7 + 0.89*0.51.
  EXPECT_NEAR(ctx().InfluenceScore(0, e(3)), 0.89 * 0.7 + 0.89 * 0.51, 1e-9);
}

TEST_F(PaperScoringTest, ProbabilisticCoverageCombinesReferrers) {
  // p_2(S -> e8) = 1 - (1 - 0.3626)(1 - 0.0539) = 0.3970 for S = {e2, e3}.
  SparseVector x = SparseVector::FromEntries({{1, 1.0}});
  ScoringParams influence_only{.lambda = 0.0, .eta = 1.0};
  ScoringContext influence_ctx(&ctx().model(), &window(), influence_only);
  CandidateState state(&influence_ctx, &x);
  state.Add(e(2));
  const double gain_e3 = state.MarginalGain(e(3));
  // e3's gain: p(e3->e6) + p(e3->e8) * (1 - p(e2->e8)).
  const double expected = 0.11 * 0.3 + (0.11 * 0.49) * (1.0 - 0.74 * 0.49);
  EXPECT_NEAR(gain_e3, expected, 1e-9);
}

// ---------------------------------------------- Figure 5 singleton scores --

TEST_F(PaperScoringTest, Figure5TopicScores) {
  const struct {
    ElementId id;
    double delta1;
    double delta2;
  } expected[] = {
      {1, 0.06, 0.56}, {2, 0.10, 0.48}, {3, 0.65, 0.03}, {5, 0.05, 0.27},
      {6, 0.48, 0.13}, {7, 0.06, 0.18}, {8, 0.17, 0.16},
  };
  for (const auto& row : expected) {
    EXPECT_NEAR(ctx().TopicScore(0, e(row.id)), row.delta1, 0.005)
        << "delta_1(e" << row.id << ")";
    EXPECT_NEAR(ctx().TopicScore(1, e(row.id)), row.delta2, 0.005)
        << "delta_2(e" << row.id << ")";
  }
}

TEST_F(PaperScoringTest, ElementScoreIsWeightedTopicSum) {
  const SparseVector x = BalancedQueryVector();
  for (ElementId id : {1, 2, 3, 5, 6, 7, 8}) {
    const double direct = ctx().ElementScore(e(id), x);
    const double composed =
        0.5 * ctx().TopicScore(0, e(id)) + 0.5 * ctx().TopicScore(1, e(id));
    EXPECT_NEAR(direct, composed, 1e-12);
  }
  // delta(e3, x) = 0.34 as in Example 4.1.
  EXPECT_NEAR(ctx().ElementScore(e(3), x), 0.34, 0.005);
}

TEST_F(PaperScoringTest, ZeroTopicProbabilityMeansZeroScore) {
  // e4 is gone, but e3 has p_2 > 0 and p on a nonexistent topic 2 -> 0.
  EXPECT_DOUBLE_EQ(ctx().TopicScore(1, e(3)) > 0.0, true);
  SparseVector x = SparseVector::FromEntries({{0, 1.0}});
  SocialElement only_theta2 = e(1);
  only_theta2.topics = SparseVector::FromEntries({{1, 1.0}});
  EXPECT_DOUBLE_EQ(ctx().ElementScore(only_theta2, x), 0.0);
}

// --------------------------------------------------- Example 3.4 (f(S,x)) --

TEST_F(PaperScoringTest, Example34BalancedQueryOptimum) {
  // f({e1, e3}, (0.5, 0.5)) = 0.65 (the paper's OPT).
  const SparseVector x = BalancedQueryVector();
  CandidateState state(&ctx(), &x);
  state.Add(e(1));
  state.Add(e(3));
  EXPECT_NEAR(state.score(), 0.65, 0.005);
}

TEST_F(PaperScoringTest, Example34SkewedQueryOptimum) {
  // f({e1, e2}, (0.1, 0.9)): the paper rounds to 0.94; exact arithmetic on
  // Table 1's two-decimal probabilities gives ~0.951 (see DESIGN.md §7).
  const SparseVector x = SkewedQueryVector();
  CandidateState state(&ctx(), &x);
  state.Add(e(1));
  state.Add(e(2));
  EXPECT_NEAR(state.score(), 0.951, 0.005);
}

// ------------------------------------------------ CandidateState behavior --

TEST_F(PaperScoringTest, MarginalGainMatchesScoreDelta) {
  const SparseVector x = BalancedQueryVector();
  CandidateState state(&ctx(), &x);
  for (ElementId id : {3, 1, 6, 2, 8}) {
    const double predicted = state.MarginalGain(e(id));
    const double before = state.score();
    const double realized = state.Add(e(id));
    EXPECT_NEAR(predicted, realized, 1e-12) << "element " << id;
    EXPECT_NEAR(state.score(), before + realized, 1e-12);
  }
}

TEST_F(PaperScoringTest, GainOfMemberIsZero) {
  const SparseVector x = BalancedQueryVector();
  CandidateState state(&ctx(), &x);
  state.Add(e(3));
  EXPECT_DOUBLE_EQ(state.MarginalGain(e(3)), 0.0);
  EXPECT_TRUE(state.Contains(3));
  EXPECT_FALSE(state.Contains(1));
}

TEST_F(PaperScoringTest, SingletonGainEqualsElementScore) {
  const SparseVector x = BalancedQueryVector();
  for (ElementId id : {1, 2, 3, 5, 6, 7, 8}) {
    CandidateState state(&ctx(), &x);
    EXPECT_NEAR(state.MarginalGain(e(id)), ctx().ElementScore(e(id), x), 1e-12);
  }
}

TEST_F(PaperScoringTest, AllTopicScoresCoversSupport) {
  const auto scores = ctx().AllTopicScores(e(3));
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_EQ(scores[0].first, 0);
  EXPECT_NEAR(scores[0].second, 0.65, 0.005);
  EXPECT_EQ(scores[1].first, 1);
  EXPECT_NEAR(scores[1].second, 0.03, 0.005);
}

}  // namespace
}  // namespace ksir
