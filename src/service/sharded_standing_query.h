// Standing k-SIR subscriptions over the sharded service: the same
// subscription engine as the single-engine deployment, but every
// evaluation is routed through the service's planner (and hence the result
// cache — after a bucket, the subscriptions re-prime the cache for the
// ad-hoc queries that follow), and activation consumes the UNION of the
// per-shard advance summaries: a topic is touched for the service if any
// shard moved it, with the max movement across shards. The service
// constructs it with an evaluator bound to KsirService::Query and drives
// it through AfterAdvance once per ingested bucket.
#ifndef KSIR_SERVICE_SHARDED_STANDING_QUERY_H_
#define KSIR_SERVICE_SHARDED_STANDING_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/advance_summary.h"
#include "subscribe/subscription_manager.h"

namespace ksir {

class ShardedStandingQueryManager {
 public:
  using Callback = SubscriptionManager::LegacyCallback;
  using Evaluator = SubscriptionManager::Evaluator;

  /// `telemetry` must outlive the manager (the service passes its own).
  explicit ShardedStandingQueryManager(
      Evaluator evaluator, SubscriptionMode mode = SubscriptionMode::kIndexed,
      Telemetry* telemetry = nullptr);

  std::int64_t Register(KsirQuery query, Callback callback) {
    return subscriptions_.Register(std::move(query), std::move(callback));
  }
  std::int64_t Subscribe(KsirQuery query, SubscriptionCallback callback) {
    return subscriptions_.Subscribe(std::move(query), std::move(callback));
  }
  bool Unregister(std::int64_t standing_id) {
    return subscriptions_.Unsubscribe(standing_id);
  }
  bool Unsubscribe(std::int64_t standing_id) {
    return subscriptions_.Unsubscribe(standing_id);
  }

  std::size_t size() const { return subscriptions_.size(); }

  /// Legacy full round: every subscription evaluated, regardless of mode.
  Status EvaluateAll() { return subscriptions_.EvaluateAll(last_epoch_); }

  /// One post-bucket round: merges the per-shard summaries (topic union,
  /// max movement) stamped at the service `epoch`, then activates the
  /// touched subscriptions (or everything, under kNaive).
  Status AfterAdvance(const std::vector<AdvanceSummary>& shard_summaries,
                      std::uint64_t epoch);

  SubscriptionManager& subscriptions() { return subscriptions_; }
  const SubscriptionManager& subscriptions() const { return subscriptions_; }

 private:
  std::uint64_t last_epoch_ = 0;
  AdvanceSummary merged_;  // reused across rounds
  SubscriptionManager subscriptions_;
};

}  // namespace ksir

#endif  // KSIR_SERVICE_SHARDED_STANDING_QUERY_H_
