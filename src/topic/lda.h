// Latent Dirichlet Allocation trained by collapsed Gibbs sampling
// (Griffiths & Steyvers). The single-box equivalent of PLDA, which the paper
// uses for the AMiner and Reddit corpora.
#ifndef KSIR_TOPIC_LDA_H_
#define KSIR_TOPIC_LDA_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "text/corpus.h"
#include "topic/topic_model.h"

namespace ksir {

/// LDA training configuration. The paper sets alpha = 50/z, beta = 0.01.
struct LdaOptions {
  std::int32_t num_topics = 50;
  /// Symmetric document-topic prior; <= 0 means "use 50/z".
  double alpha = -1.0;
  /// Symmetric topic-word prior.
  double beta = 0.01;
  std::int32_t iterations = 100;
  /// Iterations discarded before accumulating the phi estimate.
  std::int32_t burn_in = 50;
  std::uint64_t seed = 7;
};

/// Result of training: the model plus the per-document topic mixtures
/// (theta) estimated from the final sampler state.
struct LdaResult {
  TopicModel model;
  std::vector<std::vector<double>> doc_topic;
};

/// Collapsed Gibbs sampler for LDA.
class LdaTrainer {
 public:
  explicit LdaTrainer(LdaOptions options = {});

  /// Trains on `corpus`; fails on an empty corpus or invalid options.
  StatusOr<LdaResult> Train(const Corpus& corpus) const;

  const LdaOptions& options() const { return options_; }

 private:
  LdaOptions options_;
};

}  // namespace ksir

#endif  // KSIR_TOPIC_LDA_H_
