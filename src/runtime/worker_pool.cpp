#include "runtime/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ksir {

WorkerPool::WorkerPool(std::size_t num_threads, Telemetry* telemetry,
                       PoolOptions options)
    : owned_telemetry_(telemetry == nullptr ? std::make_unique<Telemetry>()
                                            : nullptr),
      telemetry_(telemetry != nullptr ? telemetry : owned_telemetry_.get()) {
  MetricRegistry& reg = telemetry_->registry();
  queue_depth_gauge_ = reg.GetGauge("ksir_pool_queue_depth",
                                    "Tasks waiting across all pool queues");
  tasks_counter_ =
      reg.GetCounter("ksir_pool_tasks_total", "Tasks submitted to the pool");
  steals_counter_ = reg.GetCounter(
      "ksir_pool_steals_total",
      "Tasks a worker popped from another worker's queue");
  pin_failures_counter_ = reg.GetCounter(
      "ksir_pool_pin_failures_total",
      "Worker CPU-pin attempts the platform or kernel refused");
  task_hist_ = reg.GetHistogram("ksir_pool_task_seconds",
                                "Execution time of one pool task");
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  queues_.resize(n);
  worker_depth_gauges_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    worker_depth_gauges_.push_back(reg.GetGauge(
        "ksir_pool_queue_depth_worker_" + std::to_string(i),
        "Tasks waiting in this worker's home queue"));
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i]() { WorkerLoop(i); });
  }
  if (options.pin_threads) PinThreads();
}

void WorkerPool::PinThreads() {
#if defined(__linux__)
  // Pin within the ALLOWED set (cgroup cpusets shrink it below the
  // machine's CPU count in containers); worker i gets the i-th allowed
  // CPU, wrapping when workers outnumber CPUs.
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  std::vector<int> cpus;
  if (sched_getaffinity(0, sizeof(allowed), &allowed) == 0) {
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &allowed)) cpus.push_back(cpu);
    }
  }
  if (cpus.empty()) {
    pin_failures_counter_->Add(static_cast<std::int64_t>(threads_.size()));
    return;
  }
  std::size_t pinned = 0;
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    cpu_set_t one;
    CPU_ZERO(&one);
    CPU_SET(cpus[i % cpus.size()], &one);
    if (pthread_setaffinity_np(threads_[i].native_handle(), sizeof(one),
                               &one) == 0) {
      ++pinned;
    } else {
      pin_failures_counter_->Add(1);
    }
  }
  pinned_threads_ = pinned;
#else
  // No portable pinning; the workers run unpinned and the failure counter
  // makes that visible instead of silently dropping the request.
  pin_failures_counter_->Add(static_cast<std::int64_t>(threads_.size()));
#endif
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

std::unique_ptr<WorkerPool> MakeWorkerPool(std::size_t requested,
                                           std::size_t fallback,
                                           Telemetry* telemetry,
                                           PoolOptions options) {
  return std::make_unique<WorkerPool>(requested > 0 ? requested : fallback,
                                      telemetry, options);
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    const std::size_t worker = next_worker_++ % queues_.size();
    queues_[worker].push_back(std::move(task));
    ++pending_;
    worker_depth_gauges_[worker]->Set(
        static_cast<std::int64_t>(queues_[worker].size()));
    queue_depth_gauge_->Set(static_cast<std::int64_t>(pending_));
  }
  tasks_counter_->Add(1);
  work_available_.notify_one();
}

void WorkerPool::SubmitTo(std::size_t worker, std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    worker %= queues_.size();
    queues_[worker].push_back(std::move(task));
    ++pending_;
    worker_depth_gauges_[worker]->Set(
        static_cast<std::int64_t>(queues_[worker].size()));
    queue_depth_gauge_->Set(static_cast<std::int64_t>(pending_));
  }
  tasks_counter_->Add(1);
  // Any worker can run any task (steal path), so waking one is enough
  // even when the home worker is mid-task.
  work_available_.notify_one();
}

void WorkerPool::WaitIdle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this]() { return pending_ == 0 && in_flight_ == 0; });
  if (first_exception_) {
    std::rethrow_exception(std::exchange(first_exception_, nullptr));
  }
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)]() {
    // The pending count must come back down on every exit path, or Wait()
    // deadlocks forever; the group's first exception travels to its waiter.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    std::unique_lock lock(mutex_);
    if (error && !first_exception_) first_exception_ = std::move(error);
    if (--pending_ == 0) done_.notify_all();
  });
}

void TaskGroup::WaitDrained() {
  std::unique_lock lock(mutex_);
  done_.wait(lock, [this]() { return pending_ == 0; });
}

void TaskGroup::Wait() {
  WaitDrained();
  std::unique_lock lock(mutex_);
  if (first_exception_) {
    std::rethrow_exception(std::exchange(first_exception_, nullptr));
  }
}

TaskGroup::~TaskGroup() { WaitDrained(); }

void ParallelRun(WorkerPool* pool, std::size_t n,
                 std::function<void(std::size_t)> fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Shared by the caller and the helper tasks. Helpers may still be queued
  // when the call returns (every index already claimed elsewhere); they
  // find the cursor exhausted, touch nothing but the state block, and
  // return — hence the shared_ptr and the fn copy inside it.
  struct State {
    std::function<void(std::size_t)> fn;
    std::size_t n;
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable all_done;
    std::size_t finished = 0;
    std::exception_ptr first_exception;
  };
  auto state = std::make_shared<State>();
  state->fn = std::move(fn);
  state->n = n;
  const auto run_claimed = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->n) return;
      std::exception_ptr error;
      try {
        s->fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::unique_lock lock(s->mutex);
      if (error && !s->first_exception) s->first_exception = std::move(error);
      if (++s->finished == s->n) s->all_done.notify_all();
    }
  };
  const std::size_t helpers =
      std::min<std::size_t>(n - 1, pool->num_threads());
  for (std::size_t i = 0; i < helpers; ++i) {
    pool->Submit([state, run_claimed]() { run_claimed(state); });
  }
  run_claimed(state);
  std::unique_lock lock(state->mutex);
  state->all_done.wait(lock, [&]() { return state->finished == state->n; });
  if (state->first_exception) {
    std::rethrow_exception(
        std::exchange(state->first_exception, nullptr));
  }
}

void ParallelRunAffine(WorkerPool* pool, std::size_t participants,
                       std::size_t units,
                       std::function<void(std::size_t, std::size_t)> fn) {
  if (units == 0) return;
  participants = std::max<std::size_t>(
      1, std::min(participants, units));
  if (participants == 1) {
    for (std::size_t u = 0; u < units; ++u) fn(0, u);
    return;
  }
  // Per-unit claim flags replace ParallelRun's shared cursor: participant
  // p claims its strided residue class first (the affinity), then sweeps
  // everything still unclaimed (the steal). A unit is claimed immediately
  // before it runs, so a helper that never gets scheduled never claims
  // anything and the caller's sweep picks its share up — the same
  // caller-completes-all-work property that makes ParallelRun safe on a
  // busy shared pool.
  struct State {
    std::function<void(std::size_t, std::size_t)> fn;
    std::size_t units;
    std::size_t participants;
    std::unique_ptr<std::atomic<std::uint8_t>[]> claimed;
    std::mutex mutex;
    std::condition_variable all_done;
    std::size_t finished = 0;
    std::exception_ptr first_exception;
  };
  auto state = std::make_shared<State>();
  state->fn = std::move(fn);
  state->units = units;
  state->participants = participants;
  state->claimed = std::make_unique<std::atomic<std::uint8_t>[]>(units);
  for (std::size_t u = 0; u < units; ++u) {
    state->claimed[u].store(0, std::memory_order_relaxed);
  }
  const auto run_unit = [](const std::shared_ptr<State>& s, std::size_t p,
                           std::size_t u) {
    std::exception_ptr error;
    try {
      s->fn(p, u);
    } catch (...) {
      error = std::current_exception();
    }
    std::unique_lock lock(s->mutex);
    if (error && !s->first_exception) s->first_exception = std::move(error);
    if (++s->finished == s->units) s->all_done.notify_all();
  };
  const auto run_participant = [run_unit](const std::shared_ptr<State>& s,
                                          std::size_t p) {
    for (std::size_t u = p; u < s->units; u += s->participants) {
      if (s->claimed[u].exchange(1, std::memory_order_acq_rel) == 0) {
        run_unit(s, p, u);
      }
    }
    for (std::size_t u = 0; u < s->units; ++u) {
      if (s->claimed[u].exchange(1, std::memory_order_acq_rel) == 0) {
        run_unit(s, p, u);
      }
    }
  };
  for (std::size_t p = 1; p < participants; ++p) {
    // Helper p homes on worker p - 1 every call, which is what keeps a
    // unit residue on the same OS thread across buckets.
    pool->SubmitTo(p - 1,
                   [state, run_participant, p]() { run_participant(state, p); });
  }
  run_participant(state, 0);
  std::unique_lock lock(state->mutex);
  state->all_done.wait(lock,
                       [&]() { return state->finished == state->units; });
  if (state->first_exception) {
    std::rethrow_exception(std::exchange(state->first_exception, nullptr));
  }
}

void WorkerPool::WorkerLoop(std::size_t worker) {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_available_.wait(lock,
                         [this]() { return shutdown_ || pending_ > 0; });
    if (pending_ == 0) {
      if (shutdown_) return;
      continue;
    }
    // Own queue first (the affinity), then sweep the others from the next
    // neighbor up (the steal) — oldest task first in either case, so
    // starvation is bounded and FIFO fairness survives the split.
    std::size_t source = worker;
    if (queues_[worker].empty()) {
      for (std::size_t step = 1; step < queues_.size(); ++step) {
        const std::size_t candidate = (worker + step) % queues_.size();
        if (!queues_[candidate].empty()) {
          source = candidate;
          break;
        }
      }
    }
    std::function<void()> task = std::move(queues_[source].front());
    queues_[source].pop_front();
    --pending_;
    worker_depth_gauges_[source]->Set(
        static_cast<std::int64_t>(queues_[source].size()));
    queue_depth_gauge_->Set(static_cast<std::int64_t>(pending_));
    ++in_flight_;
    lock.unlock();
    if (source != worker) steals_counter_->Add(1);
    // in_flight_ must come back down whether the task returns or throws;
    // TaskGroup tasks never leak exceptions here (their wrapper captures
    // into the group), so first_exception_ is the direct-Submit channel.
    std::exception_ptr error;
    try {
      StageScope scope(telemetry_, task_hist_, "pool.task");
      task();
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !first_exception_) first_exception_ = std::move(error);
    --in_flight_;
    if (pending_ == 0 && in_flight_ == 0) idle_.notify_all();
  }
}

}  // namespace ksir
