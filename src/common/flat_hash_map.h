// Open-addressing hash map for the ingestion/query hot paths.
//
// std::unordered_map allocates one node per entry and chases a pointer per
// probe; the maintenance loop of Algorithm 1 does several map operations per
// stream edge, so those misses dominate. FlatHashMap stores entries inline in
// a single power-of-two array with linear probing (splitmix64-mixed integer
// keys give well-spread probe starts), tombstone deletion and load-factor-
// bounded rehash, so a lookup is one hash plus a short contiguous scan.
//
// Contract differences from std::unordered_map (acceptable to all call
// sites in this repository):
//   * iterators and references are invalidated by rehash (insertions);
//   * iteration order is unspecified and changes across rehashes;
//   * value_type is std::pair<Key, Value> (non-const Key; do not mutate the
//     key through an iterator).
#ifndef KSIR_COMMON_FLAT_HASH_MAP_H_
#define KSIR_COMMON_FLAT_HASH_MAP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace ksir {

/// Mixes integral keys through the splitmix64 finalizer; sequential ids
/// (dense ElementIds) would otherwise cluster into one probe run.
struct FlatHash {
  static std::uint64_t Mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  template <typename K>
  std::size_t operator()(const K& key) const {
    if constexpr (std::is_integral_v<K>) {
      return static_cast<std::size_t>(
          Mix(static_cast<std::uint64_t>(
              static_cast<std::make_unsigned_t<K>>(key))));
    } else {
      return std::hash<K>{}(key);
    }
  }
};

template <typename Key, typename Value, typename Hash = FlatHash>
class FlatHashMap {
  enum class Ctrl : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

 public:
  using value_type = std::pair<Key, Value>;

  template <bool Const>
  class Iterator {
    using MapPtr = std::conditional_t<Const, const FlatHashMap*, FlatHashMap*>;

   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = FlatHashMap::value_type;
    using difference_type = std::ptrdiff_t;
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;

    Iterator() = default;
    Iterator(MapPtr map, std::size_t index) : map_(map), index_(index) {
      SkipToFull();
    }
    /// const_iterator from iterator.
    template <bool C = Const, typename = std::enable_if_t<C>>
    Iterator(const Iterator<false>& other)  // NOLINT(runtime/explicit)
        : map_(other.map_), index_(other.index_) {}

    reference operator*() const { return map_->slots_[index_]; }
    pointer operator->() const { return &map_->slots_[index_]; }

    Iterator& operator++() {
      ++index_;
      SkipToFull();
      return *this;
    }

    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.index_ == b.index_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.index_ != b.index_;
    }

   private:
    friend class FlatHashMap;
    friend class Iterator<true>;
    void SkipToFull() {
      while (map_ != nullptr && index_ < map_->capacity_ &&
             map_->ctrl_[index_] != Ctrl::kFull) {
        ++index_;
      }
    }
    MapPtr map_ = nullptr;
    std::size_t index_ = 0;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;

  FlatHashMap() = default;

  FlatHashMap(const FlatHashMap& other) { CopyFrom(other); }
  FlatHashMap& operator=(const FlatHashMap& other) {
    if (this != &other) {
      Destroy();
      CopyFrom(other);
    }
    return *this;
  }

  FlatHashMap(FlatHashMap&& other) noexcept { MoveFrom(std::move(other)); }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~FlatHashMap() { Destroy(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, capacity_); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, capacity_); }

  void clear() {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] == Ctrl::kFull) slots_[i].~value_type();
      ctrl_[i] = Ctrl::kEmpty;
    }
    size_ = 0;
    tombstones_ = 0;
  }

  /// Ensures capacity for `n` entries without rehash.
  void reserve(std::size_t n) {
    const std::size_t needed = NormalizeCapacity(n);
    if (needed > capacity_) Rehash(needed);
  }

  iterator find(const Key& key) {
    const std::size_t idx = FindIndex(key);
    return idx == kNotFound ? end() : IteratorAt(idx);
  }
  const_iterator find(const Key& key) const {
    const std::size_t idx = FindIndex(key);
    return idx == kNotFound ? end() : ConstIteratorAt(idx);
  }

  bool contains(const Key& key) const { return FindIndex(key) != kNotFound; }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    // Probe before growing: a lookup-hit must never rehash (it would
    // invalidate other iterators without inserting anything).
    const std::size_t found = FindIndex(key);
    if (found != kNotFound) return {IteratorAt(found), false};
    GrowIfNeeded();
    const auto [idx, inserted] = FindOrPrepareInsert(key);
    if (inserted) {
      new (&slots_[idx]) value_type(
          std::piecewise_construct, std::forward_as_tuple(key),
          std::forward_as_tuple(std::forward<Args>(args)...));
    }
    return {IteratorAt(idx), inserted};
  }

  template <typename V>
  std::pair<iterator, bool> emplace(const Key& key, V&& value) {
    const std::size_t found = FindIndex(key);
    if (found != kNotFound) return {IteratorAt(found), false};
    GrowIfNeeded();
    const auto [idx, inserted] = FindOrPrepareInsert(key);
    if (inserted) {
      new (&slots_[idx]) value_type(key, std::forward<V>(value));
    }
    return {IteratorAt(idx), inserted};
  }

  Value& operator[](const Key& key) { return try_emplace(key).first->second; }

  /// Erases by iterator. Unlike std::unordered_map this does not return the
  /// next iterator; no call site needs it.
  void erase(const_iterator pos) { EraseIndex(pos.index_); }
  void erase(iterator pos) { EraseIndex(pos.index_); }

  std::size_t erase(const Key& key) {
    const std::size_t idx = FindIndex(key);
    if (idx == kNotFound) return 0;
    EraseIndex(idx);
    return 1;
  }

 private:
  static constexpr std::size_t kNotFound = ~std::size_t{0};
  static constexpr std::size_t kMinCapacity = 8;

  static std::size_t NormalizeCapacity(std::size_t n) {
    // Smallest power of two keeping load factor <= 3/4 at n entries.
    std::size_t cap = kMinCapacity;
    while (n * 4 > cap * 3) cap <<= 1;
    return cap;
  }

  iterator IteratorAt(std::size_t idx) {
    iterator it;
    it.map_ = this;
    it.index_ = idx;
    return it;
  }
  const_iterator ConstIteratorAt(std::size_t idx) const {
    const_iterator it;
    it.map_ = this;
    it.index_ = idx;
    return it;
  }

  std::size_t FindIndex(const Key& key) const {
    if (capacity_ == 0) return kNotFound;
    const std::size_t mask = capacity_ - 1;
    std::size_t idx = hash_(key) & mask;
    while (true) {
      const Ctrl c = ctrl_[idx];
      if (c == Ctrl::kEmpty) return kNotFound;
      if (c == Ctrl::kFull && slots_[idx].first == key) return idx;
      idx = (idx + 1) & mask;
    }
  }

  /// Finds `key` or claims a slot for it (reusing the first tombstone on the
  /// probe path). Requires capacity_ > 0 with a free slot available.
  std::pair<std::size_t, bool> FindOrPrepareInsert(const Key& key) {
    const std::size_t mask = capacity_ - 1;
    std::size_t idx = hash_(key) & mask;
    std::size_t first_tombstone = kNotFound;
    while (true) {
      const Ctrl c = ctrl_[idx];
      if (c == Ctrl::kEmpty) {
        std::size_t target = idx;
        if (first_tombstone != kNotFound) {
          target = first_tombstone;
          --tombstones_;
        }
        ctrl_[target] = Ctrl::kFull;
        ++size_;
        return {target, true};
      }
      if (c == Ctrl::kTombstone) {
        if (first_tombstone == kNotFound) first_tombstone = idx;
      } else if (slots_[idx].first == key) {
        return {idx, false};
      }
      idx = (idx + 1) & mask;
    }
  }

  void EraseIndex(std::size_t idx) {
    slots_[idx].~value_type();
    ctrl_[idx] = Ctrl::kTombstone;
    ++tombstones_;
    --size_;
  }

  void GrowIfNeeded() {
    if (capacity_ == 0) {
      Rehash(kMinCapacity);
      return;
    }
    // Keep full + tombstone occupancy under 3/4; grow only when live
    // entries need it, otherwise rehash in place to purge tombstones.
    if ((size_ + tombstones_ + 1) * 4 > capacity_ * 3) {
      Rehash((size_ + 1) * 4 > capacity_ * 3 ? capacity_ * 2 : capacity_);
    }
  }

  void Rehash(std::size_t new_capacity) {
    std::vector<Ctrl> old_ctrl = std::move(ctrl_);
    value_type* old_slots = slots_;
    const std::size_t old_capacity = capacity_;

    ctrl_.assign(new_capacity, Ctrl::kEmpty);
    slots_ = static_cast<value_type*>(
        ::operator new(new_capacity * sizeof(value_type)));
    capacity_ = new_capacity;
    size_ = 0;
    tombstones_ = 0;

    const std::size_t mask = new_capacity - 1;
    for (std::size_t i = 0; i < old_capacity; ++i) {
      if (old_ctrl[i] != Ctrl::kFull) continue;
      std::size_t idx = hash_(old_slots[i].first) & mask;
      while (ctrl_[idx] == Ctrl::kFull) idx = (idx + 1) & mask;
      new (&slots_[idx]) value_type(std::move(old_slots[i]));
      ctrl_[idx] = Ctrl::kFull;
      ++size_;
      old_slots[i].~value_type();
    }
    ::operator delete(old_slots);
  }

  void Destroy() {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] == Ctrl::kFull) slots_[i].~value_type();
    }
    ::operator delete(slots_);
    slots_ = nullptr;
    ctrl_.clear();
    capacity_ = 0;
    size_ = 0;
    tombstones_ = 0;
  }

  void CopyFrom(const FlatHashMap& other) {
    if (other.size_ == 0) return;
    reserve(other.size_);
    for (const value_type& kv : other) emplace(kv.first, kv.second);
  }

  void MoveFrom(FlatHashMap&& other) noexcept {
    ctrl_ = std::move(other.ctrl_);
    slots_ = other.slots_;
    capacity_ = other.capacity_;
    size_ = other.size_;
    tombstones_ = other.tombstones_;
    other.slots_ = nullptr;
    other.ctrl_.clear();
    other.capacity_ = 0;
    other.size_ = 0;
    other.tombstones_ = 0;
  }

  std::vector<Ctrl> ctrl_;
  value_type* slots_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
  [[no_unique_address]] Hash hash_;
};

/// Set adapter over FlatHashMap: same open-addressing storage, iteration
/// yields keys. Covers the membership sets of the ingestion hot path.
template <typename Key, typename Hash = FlatHash>
class FlatHashSet {
  using Map = FlatHashMap<Key, char, Hash>;

 public:
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Key;
    using difference_type = std::ptrdiff_t;
    using reference = const Key&;
    using pointer = const Key*;

    const_iterator() = default;
    explicit const_iterator(typename Map::const_iterator it) : it_(it) {}

    const Key& operator*() const { return it_->first; }

    const_iterator& operator++() {
      ++it_;
      return *this;
    }

    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.it_ == b.it_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.it_ != b.it_;
    }

   private:
    typename Map::const_iterator it_;
  };

  /// Returns true when the key was newly inserted.
  bool insert(const Key& key) { return map_.try_emplace(key, 0).second; }

  bool contains(const Key& key) const { return map_.contains(key); }
  std::size_t erase(const Key& key) { return map_.erase(key); }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  const_iterator begin() const { return const_iterator(map_.begin()); }
  const_iterator end() const { return const_iterator(map_.end()); }

 private:
  Map map_;
};

}  // namespace ksir

#endif  // KSIR_COMMON_FLAT_HASH_MAP_H_
