file(REMOVE_RECURSE
  "CMakeFiles/table03_dataset_stats.dir/bench/table03_dataset_stats.cpp.o"
  "CMakeFiles/table03_dataset_stats.dir/bench/table03_dataset_stats.cpp.o.d"
  "table03_dataset_stats"
  "table03_dataset_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_dataset_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
