#include "core/ranked_list.h"

#include "common/check.h"

namespace ksir {

void RankedList::Insert(ElementId id, double score, Timestamp te) {
  const auto [it, inserted] = by_id_.emplace(id, std::make_pair(score, te));
  KSIR_CHECK(inserted);
  ordered_.insert(Key{score, id});
}

void RankedList::Update(ElementId id, double score, Timestamp te) {
  const auto it = by_id_.find(id);
  KSIR_CHECK(it != by_id_.end());
  const auto erased = ordered_.erase(Key{it->second.first, id});
  KSIR_CHECK(erased == 1);
  it->second = {score, te};
  ordered_.insert(Key{score, id});
}

void RankedList::Erase(ElementId id) {
  const auto it = by_id_.find(id);
  KSIR_CHECK(it != by_id_.end());
  const auto erased = ordered_.erase(Key{it->second.first, id});
  KSIR_CHECK(erased == 1);
  by_id_.erase(it);
}

RankedList::Tuple RankedList::Get(ElementId id) const {
  const auto it = by_id_.find(id);
  KSIR_CHECK(it != by_id_.end());
  return Tuple{id, it->second.first, it->second.second};
}

Timestamp RankedList::TimeOf(ElementId id) const {
  const auto it = by_id_.find(id);
  KSIR_CHECK(it != by_id_.end());
  return it->second.second;
}

RankedListIndex::RankedListIndex(std::size_t num_topics)
    : lists_(num_topics) {
  KSIR_CHECK(num_topics > 0);
}

void RankedListIndex::Insert(
    ElementId id, const std::vector<std::pair<TopicId, double>>& topic_scores,
    Timestamp te) {
  KSIR_CHECK(!membership_.contains(id));
  auto& topics = membership_[id];
  topics.reserve(topic_scores.size());
  for (const auto& [topic, score] : topic_scores) {
    KSIR_CHECK(topic >= 0 && static_cast<std::size_t>(topic) < lists_.size());
    lists_[static_cast<std::size_t>(topic)].Insert(id, score, te);
    topics.push_back(topic);
    ++total_entries_;
  }
}

void RankedListIndex::Update(
    ElementId id, const std::vector<std::pair<TopicId, double>>& topic_scores,
    Timestamp te) {
  const auto it = membership_.find(id);
  KSIR_CHECK(it != membership_.end());
  KSIR_CHECK(it->second.size() == topic_scores.size());
  for (const auto& [topic, score] : topic_scores) {
    lists_[static_cast<std::size_t>(topic)].Update(id, score, te);
  }
}

void RankedListIndex::Erase(ElementId id) {
  const auto it = membership_.find(id);
  KSIR_CHECK(it != membership_.end());
  for (TopicId topic : it->second) {
    lists_[static_cast<std::size_t>(topic)].Erase(id);
    --total_entries_;
  }
  membership_.erase(it);
}

const RankedList& RankedListIndex::list(TopicId topic) const {
  KSIR_CHECK(topic >= 0 && static_cast<std::size_t>(topic) < lists_.size());
  return lists_[static_cast<std::size_t>(topic)];
}

}  // namespace ksir
