#include "text/stopwords.h"

namespace ksir {

namespace {

// Compact SMART-derived English stop word list, lowercased. Social noise
// tokens frequent in tweets ("rt", "via", "amp") are appended at the end.
constexpr std::string_view kEnglishStopWords[] = {
    "a", "about", "above", "after", "again", "against", "all", "also", "am",
    "an", "and", "any", "are", "aren't", "as", "at", "be", "because", "been",
    "before", "being", "below", "between", "both", "but", "by", "can",
    "can't", "cannot", "could", "couldn't", "did", "didn't", "do", "does",
    "doesn't", "doing", "don't", "down", "during", "each", "else", "ever",
    "few", "for", "from", "further", "get", "got", "had", "hadn't", "has",
    "hasn't", "have", "haven't", "having", "he", "he'd", "he'll", "he's",
    "her", "here", "here's", "hers", "herself", "him", "himself", "his",
    "how", "how's", "i", "i'd", "i'll", "i'm", "i've", "if", "in", "into",
    "is", "isn't", "it", "it's", "its", "itself", "just", "let's", "like",
    "me", "more", "most", "mustn't", "my", "myself", "no", "nor", "not",
    "now", "of", "off", "on", "once", "only", "or", "other", "ought", "our",
    "ours", "ourselves", "out", "over", "own", "same", "shan't", "she",
    "she'd", "she'll", "she's", "should", "shouldn't", "so", "some", "such",
    "than", "that", "that's", "the", "their", "theirs", "them", "themselves",
    "then", "there", "there's", "these", "they", "they'd", "they'll",
    "they're", "they've", "this", "those", "through", "to", "too", "under",
    "until", "up", "very", "was", "wasn't", "we", "we'd", "we'll", "we're",
    "we've", "were", "weren't", "what", "what's", "when", "when's", "where",
    "where's", "which", "while", "who", "who's", "whom", "why", "why's",
    "will", "with", "won't", "would", "wouldn't", "you", "you'd", "you'll",
    "you're", "you've", "your", "yours", "yourself", "yourselves",
    // Social-media noise tokens.
    "rt", "via", "amp", "http", "https", "co", "www",
};

}  // namespace

const StopWordSet& StopWordSet::English() {
  static const StopWordSet* const kSet = [] {
    auto* set = new StopWordSet();
    for (std::string_view w : kEnglishStopWords) set->Add(w);
    return set;
  }();
  return *kSet;
}

void StopWordSet::Add(std::string_view word) { words_.emplace(word); }

bool StopWordSet::Contains(std::string_view word) const {
  return words_.find(word) != words_.end();
}

}  // namespace ksir
