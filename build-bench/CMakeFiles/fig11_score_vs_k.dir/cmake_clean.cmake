file(REMOVE_RECURSE
  "CMakeFiles/fig11_score_vs_k.dir/bench/fig11_score_vs_k.cpp.o"
  "CMakeFiles/fig11_score_vs_k.dir/bench/fig11_score_vs_k.cpp.o.d"
  "fig11_score_vs_k"
  "fig11_score_vs_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_score_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
