#include "core/traversal.h"

#include "common/check.h"

namespace ksir {

RankedListCursor::RankedListCursor(const RankedListIndex* index,
                                   const SparseVector* query) {
  KSIR_CHECK(index != nullptr);
  KSIR_CHECK(query != nullptr);
  lists_.reserve(query->nnz());
  for (const auto& [topic, weight] : query->entries()) {
    if (weight <= 0.0) continue;
    if (static_cast<std::size_t>(topic) >= index->num_topics()) continue;
    const RankedList& list = index->list(topic);
    ListPos pos;
    pos.topic = topic;
    pos.weight = weight;
    pos.list = &list;
    pos.next = list.begin();
    lists_.push_back(pos);
  }
  for (ListPos& pos : lists_) AdvanceHead(&pos);
}

void RankedListCursor::AdvanceHead(ListPos* pos) {
  while (true) {
    while (pos->cursor < pos->filled &&
           visited_.contains(pos->buffer[pos->cursor].id)) {
      ++pos->cursor;
    }
    if (pos->cursor < pos->filled) return;
    pos->filled = static_cast<std::uint32_t>(
        pos->list->DrainTop(&pos->next, pos->buffer.data(), kPullBlock));
    pos->cursor = 0;
    if (pos->filled == 0) return;  // list exhausted
  }
}

double RankedListCursor::UpperBound() const {
  double ub = 0.0;
  for (const ListPos& pos : lists_) {
    if (!pos.has_head()) continue;
    ub += pos.weight * pos.head().score;
  }
  return ub;
}

bool RankedListCursor::Exhausted() const {
  for (const ListPos& pos : lists_) {
    if (pos.has_head()) return false;
  }
  return true;
}

std::optional<ElementId> RankedListCursor::PopNext() {
  ListPos* best = nullptr;
  double best_value = -1.0;
  for (ListPos& pos : lists_) {
    if (!pos.has_head()) continue;
    const double value = pos.weight * pos.head().score;
    if (value > best_value) {
      best_value = value;
      best = &pos;
    }
  }
  if (best == nullptr) return std::nullopt;
  const ElementId id = best->head().id;
  visited_.insert(id);
  ++num_retrieved_;
  // Keep the invariant: every head position points at an unvisited tuple,
  // so UpperBound() matches the paper's UB over unevaluated elements.
  for (ListPos& pos : lists_) AdvanceHead(&pos);
  return id;
}

std::size_t RankedListCursor::PopWhileAtLeast(double min_value,
                                              std::vector<ElementId>* out) {
  std::size_t popped = 0;
  while (true) {
    // One pass finds both the upper bound and the best head.
    double ub = 0.0;
    ListPos* best = nullptr;
    double best_value = -1.0;
    for (ListPos& pos : lists_) {
      if (!pos.has_head()) continue;
      const double value = pos.weight * pos.head().score;
      ub += value;
      if (value > best_value) {
        best_value = value;
        best = &pos;
      }
    }
    if (best == nullptr || ub < min_value) break;
    const ElementId id = best->head().id;
    visited_.insert(id);
    ++num_retrieved_;
    out->push_back(id);
    ++popped;
    for (ListPos& pos : lists_) AdvanceHead(&pos);
  }
  return popped;
}

}  // namespace ksir
