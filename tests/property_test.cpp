// Property-based tests on randomized instances: monotonicity and
// submodularity of f(.,x) (Lemmas 3.6/3.7), equivalence of the incremental
// CandidateState with a from-scratch evaluation of Eqs. (1)-(4), the
// theoretical approximation bounds of every algorithm (Theorems 4.2/4.4),
// and MTTS's evaluate-at-most-once guarantee.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/brute_force.h"
#include "core/candidate_state.h"
#include "core/engine.h"
#include "paper_fixture.h"

namespace ksir {
namespace {

constexpr int kNumTopics = 4;
constexpr int kVocabSize = 30;

// A small random engine instance driven by a seed.
struct RandomInstance {
  std::unique_ptr<TopicModel> model;
  std::unique_ptr<KsirEngine> engine;
  SparseVector query;
};

RandomInstance MakeRandomInstance(std::uint64_t seed, int num_elements = 18,
                                  Timestamp window_length = 12) {
  Rng rng(seed);
  // Random topic model.
  std::vector<std::vector<double>> matrix(kNumTopics,
                                          std::vector<double>(kVocabSize));
  for (auto& row : matrix) {
    for (auto& p : row) p = rng.NextDouble() + 0.01;
  }
  RandomInstance out;
  out.model = std::make_unique<TopicModel>(
      std::move(TopicModel::FromMatrix(std::move(matrix))).value());

  EngineConfig config;
  // Cover the reduction extremes of Theorem 3.8: lambda = 1 degenerates to
  // weighted max coverage, lambda = 0 to probabilistic coverage.
  switch (seed % 3) {
    case 0:
      config.scoring.lambda = 1.0;
      break;
    case 1:
      config.scoring.lambda = 0.0;
      break;
    default:
      config.scoring.lambda = 0.3 + 0.4 * rng.NextDouble();
      break;
  }
  config.scoring.eta = 1.0 + 3.0 * rng.NextDouble();
  config.window_length = window_length;
  config.bucket_length = 1;
  out.engine = std::make_unique<KsirEngine>(config, out.model.get());

  // Random elements: 1-2 per time step, random sparse topics, random refs
  // back to the previous few elements.
  std::vector<SocialElement> all;
  Timestamp ts = 0;
  for (int i = 0; i < num_elements; ++i) {
    SocialElement e;
    e.id = i + 1;
    ts += (rng.NextDouble() < 0.5) ? 1 : 0;
    if (i == 0) ts = 1;
    e.ts = ts;
    std::vector<WordId> words;
    const int len = 2 + static_cast<int>(rng.NextUint64(5));
    for (int j = 0; j < len; ++j) {
      words.push_back(static_cast<WordId>(rng.NextUint64(kVocabSize)));
    }
    e.doc = Document::FromWordIds(words);
    const auto theta = rng.NextDirichlet(0.4, kNumTopics);
    e.topics = SparseVector::TruncateAndNormalize(theta, 0.15);
    const int num_refs = static_cast<int>(rng.NextUint64(3));
    std::unordered_set<ElementId> ref_set;
    for (int r = 0; r < num_refs && !all.empty(); ++r) {
      const auto pick =
          all.size() - 1 - rng.NextUint64(std::min<std::size_t>(6, all.size()));
      if (all[pick].ts < e.ts) ref_set.insert(all[pick].id);
    }
    e.refs.assign(ref_set.begin(), ref_set.end());
    std::sort(e.refs.begin(), e.refs.end());
    all.push_back(std::move(e));
  }
  KSIR_CHECK(out.engine->Append(std::move(all)).ok());

  const auto qdense = rng.NextDirichlet(0.5, kNumTopics);
  out.query = SparseVector::TruncateAndNormalize(qdense, 0.1);
  return out;
}

// From-scratch evaluation of f(S, x) straight from Eqs. (1)-(4), with no
// incremental state. The reference oracle for CandidateState.
double NaiveScore(const ScoringContext& ctx, const ActiveWindow& window,
                  const std::vector<ElementId>& members,
                  const SparseVector& x) {
  double total = 0.0;
  for (const auto& [topic, weight] : x.entries()) {
    // Semantic: max sigma per covered word.
    std::map<WordId, double> best_sigma;
    for (ElementId id : members) {
      const SocialElement* e = window.Find(id);
      KSIR_CHECK(e != nullptr);
      const double p_e = e->topics.Get(topic);
      for (const auto& [word, count] : e->doc.word_counts()) {
        const double sigma = ctx.Sigma(topic, word, count, p_e);
        auto [it, inserted] = best_sigma.try_emplace(word, sigma);
        if (!inserted) it->second = std::max(it->second, sigma);
      }
    }
    double semantic = 0.0;
    for (const auto& [word, sigma] : best_sigma) semantic += sigma;

    // Influence: probabilistic coverage per influenced element.
    std::map<ElementId, double> survive;
    for (ElementId id : members) {
      const SocialElement* e = window.Find(id);
      const double p_e = e->topics.Get(topic);
      for (const Referrer& r : window.ReferrersOf(id)) {
        const SocialElement* referrer = window.Find(r.id);
        KSIR_CHECK(referrer != nullptr);
        const double p_edge = p_e * referrer->topics.Get(topic);
        auto [it, inserted] = survive.try_emplace(r.id, 1.0);
        it->second *= (1.0 - p_edge);
      }
    }
    double influence = 0.0;
    for (const auto& [id, s] : survive) influence += 1.0 - s;

    total += weight * (ctx.params().lambda * semantic +
                       ctx.influence_factor() * influence);
  }
  return total;
}

class RandomInstanceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomInstanceTest, IncrementalScoreMatchesNaive) {
  RandomInstance inst = MakeRandomInstance(GetParam());
  const auto& window = inst.engine->window();
  const auto& ctx = inst.engine->scoring();
  Rng rng(GetParam() ^ 0xabcdef);

  std::vector<ElementId> ids = window.ActiveIds();
  std::sort(ids.begin(), ids.end());
  CandidateState state(&ctx, &inst.query);
  std::vector<ElementId> members;
  for (int step = 0; step < 6 && !ids.empty(); ++step) {
    const std::size_t pick = rng.NextUint64(ids.size());
    const SocialElement* e = window.Find(ids[pick]);
    ASSERT_NE(e, nullptr);
    state.Add(*e);
    members.push_back(ids[pick]);
    ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
    EXPECT_NEAR(state.score(), NaiveScore(ctx, window, members, inst.query),
                1e-9)
        << "after " << members.size() << " additions";
  }
}

TEST_P(RandomInstanceTest, MonotonicityOfMarginalGains) {
  RandomInstance inst = MakeRandomInstance(GetParam());
  const auto& window = inst.engine->window();
  const auto& ctx = inst.engine->scoring();
  CandidateState state(&ctx, &inst.query);
  std::vector<ElementId> ids = window.ActiveIds();
  std::sort(ids.begin(), ids.end());
  for (ElementId id : ids) {
    const SocialElement* e = window.Find(id);
    EXPECT_GE(state.MarginalGain(*e), -1e-12) << "element " << id;
  }
}

TEST_P(RandomInstanceTest, SubmodularityDiminishingReturns) {
  // For S subset of T and e outside T: gain(e|S) >= gain(e|T).
  RandomInstance inst = MakeRandomInstance(GetParam());
  const auto& window = inst.engine->window();
  const auto& ctx = inst.engine->scoring();
  Rng rng(GetParam() * 31 + 7);

  std::vector<ElementId> ids = window.ActiveIds();
  std::sort(ids.begin(), ids.end());
  if (ids.size() < 5) GTEST_SKIP() << "instance too small";

  for (int trial = 0; trial < 8; ++trial) {
    // Random S ⊂ T and probe e.
    std::vector<ElementId> shuffled = ids;
    for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
      std::swap(shuffled[i], shuffled[rng.NextUint64(i + 1)]);
    }
    const std::size_t s_size = 1 + rng.NextUint64(2);
    const std::size_t t_size = s_size + 1 + rng.NextUint64(2);
    if (t_size + 1 > shuffled.size()) continue;
    const ElementId probe = shuffled[t_size];

    CandidateState small(&ctx, &inst.query);
    CandidateState large(&ctx, &inst.query);
    for (std::size_t i = 0; i < t_size; ++i) {
      const SocialElement* e = window.Find(shuffled[i]);
      if (i < s_size) small.Add(*e);
      large.Add(*e);
    }
    const SocialElement* e = window.Find(probe);
    EXPECT_GE(small.MarginalGain(*e), large.MarginalGain(*e) - 1e-9)
        << "trial " << trial;
  }
}

TEST_P(RandomInstanceTest, ApproximationBoundsHold) {
  RandomInstance inst = MakeRandomInstance(GetParam());
  KsirQuery query;
  query.k = 3;
  query.x = inst.query;
  query.epsilon = 0.2;

  query.algorithm = Algorithm::kBruteForce;
  const double opt = inst.engine->Query(query)->score;
  if (opt <= 1e-12) GTEST_SKIP() << "degenerate zero-score instance";

  query.algorithm = Algorithm::kMtts;
  EXPECT_GE(inst.engine->Query(query)->score, (0.5 - 0.2) * opt - 1e-9);

  query.algorithm = Algorithm::kMttd;
  EXPECT_GE(inst.engine->Query(query)->score,
            (1.0 - 1.0 / std::numbers::e - 0.2) * opt - 1e-9);

  query.algorithm = Algorithm::kSieveStreaming;
  EXPECT_GE(inst.engine->Query(query)->score, (0.5 - 0.2) * opt - 1e-9);

  query.algorithm = Algorithm::kCelf;
  EXPECT_GE(inst.engine->Query(query)->score,
            (1.0 - 1.0 / std::numbers::e) * opt - 1e-9);

  query.algorithm = Algorithm::kTopkRepresentative;
  EXPECT_GE(inst.engine->Query(query)->score, opt / query.k - 1e-9);
}

TEST_P(RandomInstanceTest, MttdAtLeastAsGoodAsItsBoundVsCelf) {
  // Empirical observation of the paper (Fig. 11): MTTD ~ CELF quality.
  RandomInstance inst = MakeRandomInstance(GetParam());
  KsirQuery query;
  query.k = 4;
  query.x = inst.query;
  query.epsilon = 0.1;
  query.algorithm = Algorithm::kCelf;
  const double celf = inst.engine->Query(query)->score;
  query.algorithm = Algorithm::kMttd;
  const double mttd = inst.engine->Query(query)->score;
  if (celf > 1e-12) {
    EXPECT_GE(mttd, 0.85 * celf);
  }
}

TEST_P(RandomInstanceTest, MttsEvaluatesEachElementAtMostOnce) {
  RandomInstance inst = MakeRandomInstance(GetParam(), /*num_elements=*/30);
  KsirQuery query;
  query.k = 3;
  query.x = inst.query;
  query.epsilon = 0.15;
  query.algorithm = Algorithm::kMtts;
  const QueryResult result = *inst.engine->Query(query);
  EXPECT_LE(result.stats.num_evaluated, inst.engine->window().num_active());
  EXPECT_EQ(result.stats.num_evaluated, result.stats.num_retrieved);
}

TEST_P(RandomInstanceTest, GreedyEqualsCelfEverywhere) {
  RandomInstance inst = MakeRandomInstance(GetParam());
  KsirQuery query;
  query.k = 4;
  query.x = inst.query;
  query.algorithm = Algorithm::kCelf;
  const QueryResult celf = *inst.engine->Query(query);
  query.algorithm = Algorithm::kGreedy;
  const QueryResult greedy = *inst.engine->Query(query);
  EXPECT_EQ(celf.element_ids, greedy.element_ids);
  EXPECT_NEAR(celf.score, greedy.score, 1e-9);
}

TEST_P(RandomInstanceTest, ReportedScoreMatchesNaiveRecomputation) {
  RandomInstance inst = MakeRandomInstance(GetParam());
  KsirQuery query;
  query.k = 3;
  query.x = inst.query;
  query.epsilon = 0.2;
  for (const Algorithm algorithm :
       {Algorithm::kMtts, Algorithm::kMttd, Algorithm::kCelf,
        Algorithm::kSieveStreaming, Algorithm::kTopkRepresentative}) {
    query.algorithm = algorithm;
    const QueryResult result = *inst.engine->Query(query);
    EXPECT_NEAR(result.score,
                NaiveScore(inst.engine->scoring(), inst.engine->window(),
                           result.element_ids, inst.query),
                1e-9)
        << AlgorithmName(algorithm);
  }
}

TEST_P(RandomInstanceTest, RankedListsConsistentWithDirectScores) {
  // Every indexed (element, topic) tuple equals the directly computed
  // delta_i(e) under kExact refresh.
  RandomInstance inst = MakeRandomInstance(GetParam(), /*num_elements=*/24);
  const auto& index = inst.engine->index();
  const auto& window = inst.engine->window();
  const auto& ctx = inst.engine->scoring();
  std::size_t checked = 0;
  for (ElementId id : window.ActiveIds()) {
    const SocialElement* e = window.Find(id);
    for (const auto& [topic, prob] : e->topics.entries()) {
      ASSERT_TRUE(index.list(topic).Contains(id));
      EXPECT_NEAR(index.list(topic).Get(id), ctx.TopicScore(topic, *e),
                  1e-9);
      ++checked;
    }
  }
  EXPECT_EQ(checked, index.total_entries());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// --------------------------------- Sliding-window consistency over time ---

class SlidingConsistencyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SlidingConsistencyTest, IndexMatchesWindowAfterEveryBucket) {
  // Feed a random stream bucket by bucket; after every advance the index
  // must contain exactly the active elements with exact scores.
  Rng rng(GetParam());
  std::vector<std::vector<double>> matrix(3, std::vector<double>(12));
  for (auto& row : matrix) {
    for (auto& p : row) p = rng.NextDouble() + 0.05;
  }
  auto model = std::move(TopicModel::FromMatrix(std::move(matrix))).value();
  EngineConfig config;
  config.scoring.eta = 2.0;
  config.window_length = 6;
  config.bucket_length = 2;
  KsirEngine engine(config, &model);

  ElementId next_id = 1;
  std::vector<SocialElement> history;
  for (Timestamp bucket_end = 2; bucket_end <= 30; bucket_end += 2) {
    std::vector<SocialElement> bucket;
    const int count = static_cast<int>(rng.NextUint64(4));
    for (int i = 0; i < count; ++i) {
      SocialElement e;
      e.id = next_id++;
      e.ts = bucket_end - 1 + static_cast<Timestamp>(rng.NextUint64(2));
      std::vector<WordId> words;
      for (int j = 0; j < 3; ++j) {
        words.push_back(static_cast<WordId>(rng.NextUint64(12)));
      }
      e.doc = Document::FromWordIds(words);
      e.topics = SparseVector::TruncateAndNormalize(
          rng.NextDirichlet(0.4, 3), 0.15);
      if (!history.empty() && rng.NextDouble() < 0.6) {
        const auto& target =
            history[history.size() - 1 -
                    rng.NextUint64(std::min<std::size_t>(4, history.size()))];
        if (target.ts < e.ts) e.refs.push_back(target.id);
      }
      history.push_back(e);
      bucket.push_back(std::move(e));
    }
    std::sort(bucket.begin(), bucket.end(),
              [](const SocialElement& a, const SocialElement& b) {
                return a.ts < b.ts;
              });
    ASSERT_TRUE(engine.AdvanceTo(bucket_end, std::move(bucket)).ok());

    const auto& window = engine.window();
    const auto& index = engine.index();
    EXPECT_EQ(index.num_elements(), window.num_active());
    for (ElementId id : window.ActiveIds()) {
      const SocialElement* e = window.Find(id);
      for (const auto& [topic, prob] : e->topics.entries()) {
        ASSERT_TRUE(index.list(topic).Contains(id))
            << "t=" << bucket_end << " e=" << id;
        EXPECT_NEAR(index.list(topic).Get(id),
                    engine.scoring().TopicScore(topic, *e), 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlidingConsistencyTest,
                         ::testing::Range<std::uint64_t>(100, 106));

}  // namespace
}  // namespace ksir
