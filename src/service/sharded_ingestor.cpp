#include "service/sharded_ingestor.h"

#include <cmath>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/timer.h"

namespace ksir {

ShardedIngestor::ShardedIngestor(std::vector<KsirEngine*> shards,
                                 ShardRouter* router, WorkerPool* pool,
                                 Telemetry* telemetry)
    : shards_(std::move(shards)),
      router_(router),
      pool_(pool),
      owned_telemetry_(telemetry == nullptr ? std::make_unique<Telemetry>()
                                            : nullptr),
      telemetry_(telemetry != nullptr ? telemetry : owned_telemetry_.get()) {
  KSIR_CHECK(!shards_.empty());
  KSIR_CHECK(router_ != nullptr && pool_ != nullptr);
  MetricRegistry& reg = telemetry_->registry();
  elements_counter_ = reg.GetCounter("ksir_ingest_elements_total",
                                     "Elements ingested across all shards");
  buckets_counter_ =
      reg.GetCounter("ksir_ingest_buckets_total", "Buckets ingested");
  cross_refs_counter_ =
      reg.GetCounter("ksir_ingest_cross_shard_refs_total",
                     "Reference edges lost to shard partitioning");
  update_nanos_counter_ = reg.GetCounter(
      "ksir_ingest_update_nanos_total",
      "Wall nanoseconds spent in parallel shard advances");
  bucket_hist_ = reg.GetHistogram(
      "ksir_ingest_bucket_seconds",
      "Parallel shard advance of one bucket (max over shards)");
  KSIR_CHECK(router_->num_shards() == shards_.size());
  const EngineConfig& config = shards_.front()->config();
  bucket_length_ = config.bucket_length;
  const Timestamp retention = config.archive_retention > 0
                                  ? config.archive_retention
                                  : config.window_length;
  prune_horizon_ = config.window_length + retention;
  for (const KsirEngine* shard : shards_) {
    KSIR_CHECK(shard->config().bucket_length == bucket_length_);
    KSIR_CHECK(shard->config().window_length == config.window_length);
  }
}

Status ShardedIngestor::AdvanceTo(Timestamp bucket_end,
                                  std::vector<SocialElement> bucket) {
  const Timestamp previous = now();
  if (bucket_end < previous) {
    return Status::InvalidArgument(
        "out-of-order bucket: bucket_end " + std::to_string(bucket_end) +
        " precedes service time " + std::to_string(previous));
  }
  if (bucket_end == previous && bucket.empty()) {
    return Status::FailedPrecondition(
        "no-op bucket: empty bucket at the current service time " +
        std::to_string(bucket_end));
  }

  // Validate the whole bucket before routing anything, so a rejected call
  // leaves the router untouched. The router tracks every id inside the
  // resurrectability horizon, which also catches cross-bucket duplicates.
  Timestamp prev_ts = previous;
  std::unordered_set<ElementId> bucket_ids;
  bucket_ids.reserve(bucket.size());
  for (const SocialElement& e : bucket) {
    if (e.ts <= previous || e.ts > bucket_end) {
      return Status::InvalidArgument(
          "element ts " + std::to_string(e.ts) + " outside bucket (" +
          std::to_string(previous) + ", " + std::to_string(bucket_end) + "]");
    }
    if (e.ts < prev_ts) {
      return Status::InvalidArgument("bucket must be sorted by ts");
    }
    prev_ts = e.ts;
    if (!bucket_ids.insert(e.id).second || router_->Knows(e.id)) {
      return Status::AlreadyExists("duplicate element id " +
                                   std::to_string(e.id));
    }
  }

  // Route (in ts order, so reference targets are routed before referrers)
  // and partition. Per-shard sub-buckets stay ts-sorted. The routed ids are
  // tracked per shard so a partial failure can roll back exactly the shards
  // that rejected their sub-bucket.
  const std::int64_t cross_before = router_->cross_shard_refs();
  const std::size_t ingested = bucket.size();
  std::vector<std::vector<ElementId>> shard_ids(shards_.size());
  std::vector<std::vector<SocialElement>> parts(shards_.size());
  for (SocialElement& e : bucket) {
    const std::size_t shard = router_->Route(e);
    shard_ids[shard].push_back(e.id);
    parts[shard].push_back(std::move(e));
  }

  // Advance all shards in parallel; empty sub-buckets still advance the
  // shard clock (expiry must happen everywhere).
  WallTimer timer;
  std::vector<Status> statuses(shards_.size());
  TaskGroup group(pool_);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    group.Submit([this, i, bucket_end, &parts, &statuses]() {
      statuses[i] = shards_[i]->AdvanceTo(bucket_end, std::move(parts[i]));
    });
  }
  try {
    group.Wait();
  } catch (...) {
    // A shard task threw (WorkerPool now surfaces that instead of dying):
    // its status slot still reads OK, so no per-shard status can be
    // trusted. Roll the whole bucket out of the routing table before
    // rethrowing — shards may retain elements (the clocks/contents can
    // diverge, as with any partial failure), but the router must never
    // claim ids whose placement is unknown.
    for (const std::vector<ElementId>& ids : shard_ids) {
      router_->Forget(ids);
    }
    throw;
  }
  Status first_error = Status::OK();
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    if (statuses[i].ok()) continue;
    // Roll back only the shards that rejected their sub-bucket: their
    // elements were never ingested anywhere, so their routing entries must
    // go. Shards that accepted keep their elements, and the router must
    // keep reporting Knows() for those ids — otherwise a retried bucket
    // would pass validation and re-ingest duplicates (see header contract).
    router_->Forget(shard_ids[i]);
    if (first_error.ok()) first_error = statuses[i];
  }
  if (!first_error.ok()) return first_error;

  // The per-bucket WallTimer pre-dates telemetry (it feeds the stats
  // view's total_update_ms), so the nanos counter is always exact; only
  // the histogram record is gated on the telemetry level.
  const double elapsed_us = timer.ElapsedMicros();
  update_nanos_counter_->Add(std::llround(elapsed_us * 1e3));
  if (telemetry_->timing_enabled()) bucket_hist_->Record(elapsed_us / 1e6);
  buckets_counter_->Add(1);
  elements_counter_->Add(static_cast<std::int64_t>(ingested));
  const std::int64_t cross = router_->cross_shard_refs() - cross_before;
  if (cross > 0) cross_refs_counter_->Add(cross);
  router_->PruneOlderThan(bucket_end - prune_horizon_);
  return Status::OK();
}

IngestionStats ShardedIngestor::stats() const {
  IngestionStats stats;
  stats.elements_ingested = elements_counter_->Value();
  stats.buckets_processed = buckets_counter_->Value();
  stats.cross_shard_refs = cross_refs_counter_->Value();
  stats.total_update_ms =
      static_cast<double>(update_nanos_counter_->Value()) / 1e6;
  return stats;
}

Timestamp ShardedIngestor::now() const { return shards_.front()->now(); }

}  // namespace ksir
