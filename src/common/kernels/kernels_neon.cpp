// NEON dispatch arm (aarch64). Mirrors the SSE2 arm's coverage: FP
// reductions on two 128-bit accumulators for canonical lanes 0/1 and 2/3,
// plus 16-byte key moves; searches, scans, merge, and scatter stay on the
// shared scalar bodies. vmulq/vaddq are used instead of vfmaq so the
// reductions round exactly like the scalar reference.
#if defined(KSIR_KERNELS_NEON) && defined(__aarch64__)

#include <arm_neon.h>

#include "common/kernels/kernels_detail.h"

namespace ksir {
namespace kernels {
namespace {

void CopyKeysNeon(Key16* dst, const Key16* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    vst1q_f64(&dst[i].score, vld1q_f64(&src[i].score));
  }
}

void CopyKeysBackwardNeon(Key16* dst, const Key16* src, std::size_t n) {
  for (std::size_t i = n; i-- > 0;) {
    vst1q_f64(&dst[i].score, vld1q_f64(&src[i].score));
  }
}

double DenseDotNeon(const double* a, const double* b, std::size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    acc23 = vaddq_f64(acc23,
                      vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2)));
  }
  double lanes[4];
  vst1q_f64(lanes, acc01);
  vst1q_f64(lanes + 2, acc23);
  for (; i < n; ++i) lanes[i & 3] += a[i] * b[i];
  return detail::CombineLanes(lanes);
}

double SumSquaresNeon(const double* v, std::size_t n, std::size_t stride) {
  if (stride != 1) return detail::SumSquaresScalar(v, n, stride);
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t x01 = vld1q_f64(v + i);
    const float64x2_t x23 = vld1q_f64(v + i + 2);
    acc01 = vaddq_f64(acc01, vmulq_f64(x01, x01));
    acc23 = vaddq_f64(acc23, vmulq_f64(x23, x23));
  }
  double lanes[4];
  vst1q_f64(lanes, acc01);
  vst1q_f64(lanes + 2, acc23);
  for (; i < n; ++i) {
    const double x = v[i * stride];
    lanes[i & 3] += x * x;
  }
  return detail::CombineLanes(lanes);
}

}  // namespace

const KernelTable& NeonTable();

const KernelTable& NeonTable() {
  static const KernelTable table = {
      "neon",
      &detail::LowerBoundKeysScalar,
      &detail::UpperBoundKeysScalar,
      &detail::FindId64Scalar,
      &CopyKeysNeon,
      &CopyKeysBackwardNeon,
      &detail::MergeKeysScalar,
      &DenseDotNeon,
      &SumSquaresNeon,
      &detail::WeightedSumArgmaxScalar,
      &detail::ScatterAddEntriesScalar,
  };
  return table;
}

}  // namespace kernels
}  // namespace ksir

#endif  // KSIR_KERNELS_NEON && __aarch64__
