# Empty compiler generated dependencies file for fig14_update_time.
# This may be replaced when dependencies are built.
