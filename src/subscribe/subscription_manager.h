// SubscriptionManager: the standing-query engine.
//
// Registered queries are grouped by exact query equality (k, algorithm,
// epsilon, sparse vector x) and the groups are posted into an inverted
// topic index keyed on the query support. After each bucket the engine's
// AdvanceSummary (the topics whose rankings moved) activates only the
// groups whose support intersects the touched set:
//
//   touched topics --> InvertedTopicIndex --> activated groups
//                                               |  one evaluation per
//                                               |  group (the shared
//                                               v  ranked-list pass)
//                                     per-member delta diff + callback
//
// Untouched subscriptions are skipped — soundly: a subscription's result
// can only change when some element's delta_i(e) moved on a topic its
// query weights, because elements with zero query overlap score 0 and
// every cursor/greedy algorithm here admits only positive-gain elements
// with deterministic id tie-breaks. Two exceptions are always activated
// instead of indexed: kSieveStreaming (its sieve admits zero-gain
// elements once a candidate passes phi/2, so absent topics can still
// change the result) and kBruteForce (subset enumeration ties). Empty-
// support queries are also always activated (they surface their
// validation error every round, matching the naive baseline).
//
// Mutation during evaluation (a callback calling Subscribe/Unsubscribe)
// is safe: mutations are deferred and applied after the round. A
// subscription added mid-round is first evaluated in the next round; one
// removed mid-round stops receiving callbacks immediately.
#ifndef KSIR_SUBSCRIBE_SUBSCRIPTION_MANAGER_H_
#define KSIR_SUBSCRIBE_SUBSCRIPTION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/flat_hash_map.h"
#include "common/small_vector.h"
#include "common/status.h"
#include "core/advance_summary.h"
#include "core/query.h"
#include "subscribe/subscription.h"
#include "subscribe/subscription_index.h"
#include "telemetry/telemetry.h"

namespace ksir {

class SubscriptionManager {
 public:
  /// Answers one standing query against current state.
  using Evaluator = std::function<StatusOr<QueryResult>(const KsirQuery&)>;
  /// The pre-delta callback shape, kept for existing callers: full result
  /// plus a "did the result SET change" bit (true on first evaluation).
  using LegacyCallback =
      std::function<void(std::int64_t, const QueryResult&, bool)>;

  /// Mirror of the telemetry counters, cheap to read in tests/benches.
  struct Counters {
    std::int64_t registered = 0;
    std::int64_t activated = 0;
    std::int64_t skipped = 0;
    std::int64_t evaluations = 0;
    std::int64_t shared_hits = 0;
    std::int64_t deltas = 0;
  };

  /// `telemetry` (optional, must outlive the manager) receives the
  /// ksir_sub_* counters and the evaluation-round histogram; null gives
  /// the manager a private kOff Telemetry.
  explicit SubscriptionManager(
      Evaluator evaluator, SubscriptionMode mode = SubscriptionMode::kIndexed,
      Telemetry* telemetry = nullptr);
  ~SubscriptionManager();

  SubscriptionManager(const SubscriptionManager&) = delete;
  SubscriptionManager& operator=(const SubscriptionManager&) = delete;

  /// Registers a standing query; returns its id. Safe to call from a
  /// subscription callback (the new subscription joins the next round).
  std::int64_t Subscribe(KsirQuery query, SubscriptionCallback callback);

  /// Legacy-shaped registration: adapts `callback` onto the delta stream
  /// (`changed` = first evaluation or some enter/leave delta).
  std::int64_t Register(KsirQuery query, LegacyCallback callback);

  /// Removes a subscription. Returns false for unknown ids. Safe to call
  /// from a subscription callback (no further callbacks are delivered,
  /// storage is reclaimed after the round).
  bool Unsubscribe(std::int64_t id);
  bool Unregister(std::int64_t id) { return Unsubscribe(id); }

  /// Evaluates EVERY live subscription, one evaluator call per
  /// subscription — the naive reference round, regardless of mode.
  /// Returns the first evaluation error (all subscriptions still run).
  Status EvaluateAll(std::uint64_t epoch);

  /// Evaluates the subscriptions affected by one bucket: under kIndexed,
  /// groups posted on the summary's touched topics, always-active groups,
  /// and groups with never-evaluated members; under kNaive, everything
  /// (the knob's baseline). The round's epoch is `summary.epoch`.
  Status EvaluateAffected(const AdvanceSummary& summary);

  std::size_t size() const { return subs_.size(); }
  SubscriptionMode mode() const { return mode_; }
  std::size_t num_groups() const { return groups_.size(); }
  const Counters& totals() const { return totals_; }

 private:
  struct Group;

  struct Subscription {
    std::int64_t id = 0;
    SubscriptionCallback callback;
    Group* group = nullptr;  // null while the attach is deferred
    std::uint32_t member_slot = 0;
    std::uint32_t order_slot = 0;
    std::vector<ElementId> last_result;  // delivered order
    bool evaluated_once = false;
    bool alive = true;
  };

  /// Subscriptions sharing one exact query: one evaluator call per round
  /// serves every member (the shared ranked-list pass). Non-identical
  /// queries fall back to per-group (= per-query) evaluation naturally.
  struct Group {
    KsirQuery query;
    std::vector<Subscription*> members;
    /// Posting back-pointers, owned by the inverted index.
    SmallVector<std::uint32_t, 2> slots;
    /// Round-stamp dedup for multi-topic activation.
    std::uint64_t round_stamp = 0;
    std::int32_t always_slot = -1;  // index in always_active_groups_
    std::uint32_t group_slot = 0;   // index in groups_
    bool always_active = false;
    /// True while some member has never been evaluated (tracked through
    /// fresh_groups_; such groups run next round even if untouched).
    bool has_fresh = false;

    const SparseVector& support() const { return query.x; }
    SmallVector<std::uint32_t, 2>& posting_slots() { return slots; }
  };

  struct PendingAdd {
    Subscription* sub;
    KsirQuery query;
  };

  static bool AlwaysActive(const KsirQuery& query);
  static bool SameQuery(const KsirQuery& a, const KsirQuery& b);
  static std::uint64_t HashQuery(const KsirQuery& query);

  /// Shared round body. `summary == nullptr` runs the naive full pass.
  Status RunRound(const AdvanceSummary* summary, std::uint64_t epoch);

  /// Diffs `result` against the subscription's last result, invokes the
  /// callback with the delta event, stores the new result. Returns the
  /// number of deltas emitted.
  std::size_t EmitUpdate(Subscription* sub, const QueryResult& result,
                         std::uint64_t epoch);

  /// Places a registered subscription into its (possibly new) group and
  /// the evaluation order.
  void Attach(Subscription* sub, KsirQuery query);
  Group* FindOrCreateGroup(KsirQuery query);
  /// Removes an attached (or never-attached pending) subscription and
  /// destroys emptied groups. Must not run mid-round.
  void Detach(Subscription* sub);
  void DestroyGroup(Group* group);
  /// Applies Subscribe/Unsubscribe calls deferred by a running round.
  void ApplyDeferred();

  Evaluator evaluator_;
  SubscriptionMode mode_;
  std::unique_ptr<Telemetry> owned_telemetry_;
  Telemetry* telemetry_;
  Counter* registered_counter_;
  Counter* activated_counter_;
  Counter* skipped_counter_;
  Counter* evaluations_counter_;
  Counter* shared_counter_;
  Counter* deltas_counter_;
  Histogram* evaluate_hist_;
  Counters totals_;

  /// Pool-stable storage (FlatHashMap rehashes move values, so the maps
  /// hold pointers; same convention as ActiveWindow's entry pool).
  ObjectPool<Subscription> sub_pool_;
  ObjectPool<Group> group_pool_;
  FlatHashMap<std::int64_t, Subscription*> subs_;
  /// Live attached subscriptions (slot-backpatched swap-erase); the naive
  /// round's iteration set.
  std::vector<Subscription*> order_;
  /// Exact-equality group lookup: query hash -> colliding groups.
  FlatHashMap<std::uint64_t, std::vector<Group*>> groups_by_hash_;
  std::vector<Group*> groups_;
  InvertedTopicIndex<Group> index_;
  std::vector<Group*> always_active_groups_;
  /// Groups with never-evaluated members (invariant: on this list iff
  /// has_fresh), rebuilt every round.
  std::vector<Group*> fresh_groups_;
  std::uint64_t round_ = 0;
  std::int64_t next_id_ = 1;

  /// ---- round state (re-entrancy) ----
  bool evaluating_ = false;
  std::vector<PendingAdd> pending_adds_;
  std::vector<Subscription*> pending_removes_;

  /// ---- per-round scratch ----
  std::vector<Group*> activated_scratch_;
  std::vector<Group*> fresh_scratch_;
  std::vector<SubscriptionDelta> delta_scratch_;
  std::vector<SubscriptionDelta> reorder_scratch_;
};

}  // namespace ksir

#endif  // KSIR_SUBSCRIBE_SUBSCRIPTION_MANAGER_H_
