// Fan-out/merge query planning over N shard engines.
//
// An ad-hoc k-SIR query is answered in three steps (the two-round scheme of
// distributed submodular maximization, à la GreeDi):
//   1. Fan-out: the query runs on every shard in parallel (each shard sees
//      only its partition, so per-shard work is ~1/N of a single engine's);
//      each shard returns its k-element result plus self-contained
//      snapshots (element + in-window referrer set) of those elements.
//   2. Merge: the <= N*k candidate snapshots are replayed into a small
//      in-memory window that reproduces each candidate's exact influence
//      set, and a lazy greedy (CELF) runs over just those candidates.
//   3. Guard: the merged set is only returned when it beats the best
//      single-shard result; otherwise that shard's result is returned
//      verbatim. This keeps the classic guarantee: the answer is never
//      worse than the best partition's (1 - 1/e)-approximate answer, and
//      with one shard it is exactly the single-engine answer.
//
// Shards keep ingesting while queries run: the per-shard Query + snapshot
// export pair is validated against the shard's bucket epoch and retried
// when a bucket lands in between.
#ifndef KSIR_SERVICE_QUERY_PLANNER_H_
#define KSIR_SERVICE_QUERY_PLANNER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/query.h"
#include "runtime/worker_pool.h"
#include "telemetry/telemetry.h"
#include "topic/topic_model.h"

namespace ksir {

/// Counters of the planning layer — a point-in-time view over the registry
/// counters (`ksir_planner_*_total`).
struct PlannerStats {
  std::int64_t plans = 0;
  /// Query/export pairs re-run because a bucket landed in between.
  std::int64_t epoch_retries = 0;
  /// Plans where the merged set beat every single-shard result.
  std::int64_t merge_wins = 0;
  /// Plans resolved by the best-shard guard (merge did not beat it).
  std::int64_t best_shard_wins = 0;
};

/// Stateless-per-query planner. Thread-safe: any number of threads may call
/// Plan concurrently with each other and with shard ingestion.
class QueryPlanner {
 public:
  /// `shards`, `model` and `pool` must outlive the planner; `shards` must
  /// be non-empty and share the model and scoring parameters. `telemetry`
  /// (optional, must outlive the planner) receives the plan counters, the
  /// whole-plan / merge-window histograms and one fan-out latency
  /// histogram per shard; null gives the planner a private kOff Telemetry.
  QueryPlanner(std::vector<KsirEngine*> shards, const TopicModel* model,
               WorkerPool* pool, Telemetry* telemetry = nullptr);

  /// Answers `query` at the shards' current time.
  StatusOr<QueryResult> Plan(const KsirQuery& query) const;

  PlannerStats stats() const;

  std::size_t num_shards() const { return shards_.size(); }

 private:
  std::vector<KsirEngine*> shards_;
  const TopicModel* model_;
  WorkerPool* pool_;
  /// Fallback Telemetry (kOff) owned when none was passed.
  std::unique_ptr<Telemetry> owned_telemetry_;
  Telemetry* telemetry_;
  Counter* plans_counter_;
  Counter* epoch_retries_counter_;
  Counter* merge_wins_counter_;
  Counter* best_shard_wins_counter_;
  Histogram* plan_hist_;
  Histogram* merge_hist_;
  /// Per-shard fan-out latency (`ksir_planner_shard_fanout_seconds_<i>`):
  /// the one family where per-shard series matter — a straggler shard is
  /// exactly what the fan-out hides in aggregate.
  std::vector<Histogram*> shard_fanout_hists_;
};

}  // namespace ksir

#endif  // KSIR_SERVICE_QUERY_PLANNER_H_
