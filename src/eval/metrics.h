// Quantitative effectiveness metrics of Section 5.2 (Table 6).
#ifndef KSIR_EVAL_METRICS_H_
#define KSIR_EVAL_METRICS_H_

#include <vector>

#include "common/sparse_vector.h"
#include "common/types.h"
#include "window/active_window.h"

namespace ksir {

/// Coverage score of a result set S w.r.t. query x (Lin & Bilmes style, as
/// used by the paper):
///   sum_{e in A_t \ S} max_{e' in S} rel(e, x) * sim(e, e')
/// with rel and sim both topic-vector cosine similarities. Higher is better.
double CoverageScore(const ActiveWindow& window,
                     const std::vector<ElementId>& result_set,
                     const SparseVector& x);

/// Influence score: number of active elements referring to at least one
/// element of S.
std::int64_t InfluenceCount(const ActiveWindow& window,
                            const std::vector<ElementId>& result_set);

/// Influence score of the k most-referred active elements (the paper's
/// normalizer: scores are scaled to [0, 1] by dividing by this).
std::int64_t TopkInfluentialCount(const ActiveWindow& window, std::size_t k);

/// InfluenceCount / TopkInfluentialCount, clamped to [0, 1]; 0 when the
/// normalizer is 0.
double NormalizedInfluence(const ActiveWindow& window,
                           const std::vector<ElementId>& result_set,
                           std::size_t k);

}  // namespace ksir

#endif  // KSIR_EVAL_METRICS_H_
