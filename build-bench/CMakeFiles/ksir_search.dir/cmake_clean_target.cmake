file(REMOVE_RECURSE
  "libksir_search.a"
)
