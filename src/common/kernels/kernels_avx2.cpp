// AVX2 dispatch arm. Compiled with -mavx2 but deliberately WITHOUT -mfma:
// fused multiply-add would change the rounding of the dot/sum reductions
// and break bitwise equality with the scalar reference. Only entered after
// __builtin_cpu_supports("avx2") at dispatch time.
#if defined(KSIR_KERNELS_X86)

#include <immintrin.h>

#include "common/kernels/kernels_detail.h"

namespace ksir {
namespace kernels {
namespace {

// Counts keys[i] < key over [keys, keys + n). A Key16 loads as two doubles
// (score, id-bits); unpacklo/hi on two adjacent 32-byte loads splits four
// records into a score vector and an id vector with IDENTICAL lane
// permutation, so the per-lane predicate
//   (s > key.s) | (s == key.s & id < key.id)
// lines up and the popcount of its movemask is exact. Branchless: no data-
// dependent branches, which is the whole point — the probe keys of the
// chunk directory are effectively random and a binary search mispredicts
// half its branches.
std::size_t CountLess(const Key16* keys, std::size_t n, Key16 key) {
  const __m256d key_score = _mm256_set1_pd(key.score);
  const __m256i key_id = _mm256_set1_epi64x(key.id);
  // The compare masks are all-ones (-1) per matching lane; subtracting
  // them into a vector counter skips the movemask+popcount round trip per
  // iteration, leaving one horizontal fold at the end.
  __m256i vcount = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v0 = _mm256_loadu_pd(&keys[i].score);
    const __m256d v1 = _mm256_loadu_pd(&keys[i + 2].score);
    const __m256d scores = _mm256_unpacklo_pd(v0, v1);
    const __m256d ids = _mm256_unpackhi_pd(v0, v1);
    const __m256d score_gt = _mm256_cmp_pd(scores, key_score, _CMP_GT_OQ);
    const __m256d score_eq = _mm256_cmp_pd(scores, key_score, _CMP_EQ_OQ);
    const __m256i id_lt =
        _mm256_cmpgt_epi64(key_id, _mm256_castpd_si256(ids));
    const __m256d less = _mm256_or_pd(
        score_gt, _mm256_and_pd(score_eq, _mm256_castsi256_pd(id_lt)));
    vcount = _mm256_sub_epi64(vcount, _mm256_castpd_si256(less));
  }
  alignas(32) std::int64_t c[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(c), vcount);
  std::size_t count = static_cast<std::size_t>(c[0] + c[1] + c[2] + c[3]);
  for (; i < n; ++i) count += keys[i] < key ? 1 : 0;
  return count;
}

// Counts key < keys[i] (the strict-suffix count for upper_bound).
std::size_t CountGreater(const Key16* keys, std::size_t n, Key16 key) {
  const __m256d key_score = _mm256_set1_pd(key.score);
  const __m256i key_id = _mm256_set1_epi64x(key.id);
  __m256i vcount = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v0 = _mm256_loadu_pd(&keys[i].score);
    const __m256d v1 = _mm256_loadu_pd(&keys[i + 2].score);
    const __m256d scores = _mm256_unpacklo_pd(v0, v1);
    const __m256d ids = _mm256_unpackhi_pd(v0, v1);
    const __m256d score_lt = _mm256_cmp_pd(scores, key_score, _CMP_LT_OQ);
    const __m256d score_eq = _mm256_cmp_pd(scores, key_score, _CMP_EQ_OQ);
    const __m256i id_gt =
        _mm256_cmpgt_epi64(_mm256_castpd_si256(ids), key_id);
    const __m256d greater = _mm256_or_pd(
        score_lt, _mm256_and_pd(score_eq, _mm256_castsi256_pd(id_gt)));
    vcount = _mm256_sub_epi64(vcount, _mm256_castpd_si256(greater));
  }
  alignas(32) std::int64_t c[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(c), vcount);
  std::size_t count = static_cast<std::size_t>(c[0] + c[1] + c[2] + c[3]);
  for (; i < n; ++i) count += key < keys[i] ? 1 : 0;
  return count;
}

// Span length at which the hybrid bound searches stop binary-narrowing and
// let the branchless count finish. Swept at 2 / 4 / 8 / 16 / 32 / 64 on an
// AVX2 Xeon against BOTH kernel_bench rows. The two disagree: on the
// standalone random-probe row the vector tail loses slightly (0.85-0.91x
// at 4-16; pure binary at 2 is parity) because a tight probe loop keeps
// the binary search's branches cheap — but in the chunk_merge composite,
// whose bound calls are interleaved with merge/copy work exactly like the
// MergeBatch list-apply inner loop, the tail is what carries the kernel:
// 1.33-1.39x at 8-16 versus 1.08x at 2. The composite is the shape the
// hot path actually runs, so 16 is the default and the standalone row is
// gated only against catastrophic regression (see
// tools/check_bench_regression.py). Overridable so new silicon can be
// re-swept without touching code.
#ifndef KSIR_AVX2_BOUND_CUTOVER
#define KSIR_AVX2_BOUND_CUTOVER 16
#endif
constexpr std::size_t kBoundCutover = KSIR_AVX2_BOUND_CUTOVER;

// On a sorted array, lower_bound index == count of elements < key. For
// long arrays (the chunk directory) a few branchy binary-search steps
// narrow to a kBoundCutover-element span first, then the branchless count
// finishes.
std::size_t LowerBoundKeysAvx2(const Key16* keys, std::size_t n, Key16 key) {
  std::size_t lo = 0;
  std::size_t hi = n;
  while (hi - lo > kBoundCutover) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (keys[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + CountLess(keys + lo, hi - lo, key);
}

std::size_t UpperBoundKeysAvx2(const Key16* keys, std::size_t n, Key16 key) {
  std::size_t lo = 0;
  std::size_t hi = n;
  while (hi - lo > kBoundCutover) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (key < keys[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi - CountGreater(keys + lo, hi - lo, key);
}

std::size_t FindId64Avx2(const std::int64_t* base, std::size_t n,
                         std::size_t stride, std::int64_t id) {
  if (stride != 2) return detail::FindId64Scalar(base, n, stride, id);
  const __m256i key = _mm256_set1_epi64x(id);
  std::size_t i = 0;
  // Strict i + 4 < n: the second load touches base[2i + 7], which only
  // exists for the final group when `base` is the FIRST field of the
  // 16-byte records; callers may hand the second field, so the last full
  // group goes to the scalar tail instead of risking a one-word overread.
  while (i + 4 < n) {
    const __m256i v0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(base + 2 * i));
    const __m256i v1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(base + 2 * i + 4));
    // The ids sit in lanes 0 and 2 of each vector (lanes 1 and 3 hold the
    // interleaved other field); mask with 0x5 before trusting a hit.
    const int m0 = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(v0, key)));
    const int m1 = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(v1, key)));
    if (((m0 | m1) & 0x5) != 0) {
      if ((m0 & 0x1) != 0) return i;
      if ((m0 & 0x4) != 0) return i + 1;
      if ((m1 & 0x1) != 0) return i + 2;
      return i + 3;
    }
    i += 4;
  }
  for (; i < n; ++i) {
    if (base[i * stride] == id) return i;
  }
  return n;
}

void CopyKeysAvx2(Key16* dst, const Key16* src, std::size_t n) {
  // Forward 32-byte moves; with dst <= src every store lands at or below
  // the next load, so overlapping left shifts stay safe.
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm256_storeu_pd(&dst[i].score, _mm256_loadu_pd(&src[i].score));
  }
  if (i < n) dst[i] = src[i];
}

void CopyKeysBackwardAvx2(Key16* dst, const Key16* src, std::size_t n) {
  // Descending 32-byte moves; with dst >= src every store lands at or
  // above the next (lower) load, so overlapping right shifts stay safe.
  std::size_t i = n;
  if ((i & 1) != 0) {
    --i;
    dst[i] = src[i];
  }
  while (i >= 2) {
    i -= 2;
    _mm256_storeu_pd(&dst[i].score, _mm256_loadu_pd(&src[i].score));
  }
}

double DenseDotAvx2(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  for (; i < n; ++i) lanes[i & 3] += a[i] * b[i];
  return detail::CombineLanes(lanes);
}

double SumSquaresAvx2(const double* v, std::size_t n, std::size_t stride) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  if (stride == 1) {
    for (; i + 4 <= n; i += 4) {
      const __m256d x = _mm256_loadu_pd(v + i);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(x, x));
    }
  } else if (stride == 2) {
    // Gather touches exactly the four strided addresses (no overread on a
    // mid-record base) and lands element i + k in lane k, preserving the
    // canonical lane mapping.
    const __m256i offsets = _mm256_set_epi64x(6, 4, 2, 0);
    for (; i + 4 <= n; i += 4) {
      const __m256d x = _mm256_i64gather_pd(v + 2 * i, offsets, 8);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(x, x));
    }
  } else {
    return detail::SumSquaresScalar(v, n, stride);
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  for (; i < n; ++i) {
    const double x = v[i * stride];
    lanes[i & 3] += x * x;
  }
  return detail::CombineLanes(lanes);
}

double WeightedSumArgmaxAvx2(const double* sum_vals, const double* max_vals,
                             std::size_t n, std::size_t* argmax) {
  if (n < 8) return detail::WeightedSumArgmaxScalar(sum_vals, max_vals, n,
                                                    argmax);
  // Group 0 is peeled: it seeds the running per-lane maxima (so -inf
  // inputs need no sentinel) while the sum still goes through 0.0 + x to
  // keep -0.0 handling bitwise with the scalar reference.
  __m256d sum = _mm256_add_pd(_mm256_setzero_pd(), _mm256_loadu_pd(sum_vals));
  __m256d best = _mm256_loadu_pd(max_vals);
  __m256i best_idx = _mm256_set_epi64x(3, 2, 1, 0);
  __m256i idx = _mm256_set_epi64x(7, 6, 5, 4);
  const __m256i step = _mm256_set1_epi64x(4);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    sum = _mm256_add_pd(sum, _mm256_loadu_pd(sum_vals + i));
    const __m256d m = _mm256_loadu_pd(max_vals + i);
    // Strict > keeps the earliest index within each lane.
    const __m256d gt = _mm256_cmp_pd(m, best, _CMP_GT_OQ);
    best = _mm256_blendv_pd(best, m, gt);
    best_idx = _mm256_castpd_si256(_mm256_blendv_pd(
        _mm256_castsi256_pd(best_idx), _mm256_castsi256_pd(idx), gt));
    idx = _mm256_add_epi64(idx, step);
  }
  double lanes[4];
  double lane_max[4];
  std::int64_t lane_idx[4];
  _mm256_storeu_pd(lanes, sum);
  _mm256_storeu_pd(lane_max, best);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lane_idx), best_idx);
  for (; i < n; ++i) {
    const std::size_t lane = i & 3;
    lanes[lane] += sum_vals[i];
    if (max_vals[i] > lane_max[lane]) {
      lane_max[lane] = max_vals[i];
      lane_idx[lane] = static_cast<std::int64_t>(i);
    }
  }
  // Combine lanes: max value first, smallest index on ties — exactly the
  // scalar reference's sequential strict-> scan.
  double best_val = lane_max[0];
  std::size_t best_i = static_cast<std::size_t>(lane_idx[0]);
  for (int lane = 1; lane < 4; ++lane) {
    const std::size_t cand = static_cast<std::size_t>(lane_idx[lane]);
    if (lane_max[lane] > best_val ||
        (lane_max[lane] == best_val && cand < best_i)) {
      best_val = lane_max[lane];
      best_i = cand;
    }
  }
  *argmax = best_i;
  return detail::CombineLanes(lanes);
}

}  // namespace

const KernelTable& Avx2Table();

const KernelTable& Avx2Table() {
  static const KernelTable table = {
      "avx2",
      &LowerBoundKeysAvx2,
      &UpperBoundKeysAvx2,
      &FindId64Avx2,
      &CopyKeysAvx2,
      &CopyKeysBackwardAvx2,
      &detail::MergeKeysScalar,
      &DenseDotAvx2,
      &SumSquaresAvx2,
      &WeightedSumArgmaxAvx2,
      &detail::ScatterAddEntriesScalar,
  };
  return table;
}

}  // namespace kernels
}  // namespace ksir

#endif  // KSIR_KERNELS_X86
