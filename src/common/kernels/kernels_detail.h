// Shared canonical kernel bodies. Every dispatch arm includes this header:
// the scalar arm exports these functions directly, and the vector arms use
// them for loop tails, for strides they do not accelerate, and for the
// kernels that are inherently sequential (merge, scatter-add). Keeping the
// one definition here is what makes "scalar == dispatched, bitwise" hold by
// construction on every path a vector arm does not fully cover.
#ifndef KSIR_COMMON_KERNELS_KERNELS_DETAIL_H_
#define KSIR_COMMON_KERNELS_KERNELS_DETAIL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "common/kernels/kernels.h"

namespace ksir {
namespace kernels {
namespace detail {

/// Canonical combine of the four reduction lanes. Matches the cheapest
/// AVX2 horizontal add (low128 + high128, then pairwise), so the vector
/// arms get it for free and the scalar arm pays two extra adds.
static inline double CombineLanes(const double lanes[4]) {
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

static inline std::size_t LowerBoundKeysScalar(const Key16* keys, std::size_t n,
                                        Key16 key) {
  return static_cast<std::size_t>(std::lower_bound(keys, keys + n, key) -
                                  keys);
}

static inline std::size_t UpperBoundKeysScalar(const Key16* keys, std::size_t n,
                                        Key16 key) {
  return static_cast<std::size_t>(std::upper_bound(keys, keys + n, key) -
                                  keys);
}

static inline std::size_t FindId64Scalar(const std::int64_t* base, std::size_t n,
                                  std::size_t stride, std::int64_t id) {
  for (std::size_t i = 0; i < n; ++i) {
    if (base[i * stride] == id) return i;
  }
  return n;
}

static inline void CopyKeysScalar(Key16* dst, const Key16* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
}

static inline void CopyKeysBackwardScalar(Key16* dst, const Key16* src,
                                   std::size_t n) {
  for (std::size_t i = n; i-- > 0;) dst[i] = src[i];
}

static inline void MergeKeysScalar(Key16* dst, const Key16* a, std::size_t na,
                            const Key16* b, std::size_t nb) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  while (i < na && j < nb) {
    dst[k++] = b[j] < a[i] ? b[j++] : a[i++];
  }
  while (i < na) dst[k++] = a[i++];
  while (j < nb) dst[k++] = b[j++];
}

static inline double DenseDotScalar(const double* a, const double* b,
                             std::size_t n) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) lanes[i & 3] += a[i] * b[i];
  return CombineLanes(lanes);
}

static inline double SumSquaresScalar(const double* v, std::size_t n,
                               std::size_t stride) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    const double x = v[i * stride];
    lanes[i & 3] += x * x;
  }
  return CombineLanes(lanes);
}

static inline double WeightedSumArgmaxScalar(const double* sum_vals,
                                      const double* max_vals, std::size_t n,
                                      std::size_t* argmax) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t best = n;
  for (std::size_t i = 0; i < n; ++i) {
    lanes[i & 3] += sum_vals[i];
    // Strict > keeps the smallest index among equal maxima; NaN-free by
    // the kernel contract. The selection is integral, so it is exact no
    // matter how the vector arms regroup it.
    if (best == n || max_vals[i] > max_vals[best]) best = i;
  }
  *argmax = best;
  return CombineLanes(lanes);
}

/// Layout twin of SparseVector::Entry (= std::pair<int32_t, double> under
/// this ABI: 16 bytes, value at offset 8). The kernel takes void* so the
/// header does not depend on common/sparse_vector.h; callers static_assert
/// the layout at the call site.
struct IndexValue {
  std::int32_t index;
  double value;
};
static_assert(sizeof(IndexValue) == 16);

static inline void ScatterAddEntriesScalar(const void* entries, std::size_t n,
                                    double* values, std::uint64_t* stamps,
                                    std::uint64_t epoch) {
  const IndexValue* e = static_cast<const IndexValue*>(entries);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = static_cast<std::size_t>(e[i].index);
    if (stamps[slot] != epoch) {
      stamps[slot] = epoch;
      values[slot] = e[i].value;
    } else {
      values[slot] += e[i].value;
    }
  }
}

}  // namespace detail
}  // namespace kernels
}  // namespace ksir

#endif  // KSIR_COMMON_KERNELS_KERNELS_DETAIL_H_
