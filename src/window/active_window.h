// Sliding-window store of active elements (paper Section 3.1).
//
// Given window length T and current time t:
//   W_t = { e : e.ts in (t - T, t] }                      (integer timestamps,
//                                                          i.e. [t-T+1, t])
//   A_t = W_t  ∪  { e' : e in W_t and e' in e.ref }
//
// An element becomes INACTIVE when it is outside W_t AND no in-window
// element refers to it anymore ("never referred to by any element after time
// t - T + 1", Algorithm 1 lines 12-13). A_t is defined declaratively over
// the whole stream, so a *future* element may reference a currently inactive
// one and pull it back into A_t (in Table 1, e2 is unreferenced and outside
// the window at t = 6 yet belongs to A_8 via e7/e8). To honor that, inactive
// elements are retained in an archive for `archive_retention` time units and
// are resurrected when referenced again; references to elements older than
// the retention horizon are counted as dangling and ignored (DESIGN.md §3).
//
// For each active element e the store keeps I_t(e): the in-window elements
// referring to e, which is exactly the influenced set of the influence score
// (Eq. 4). Advance() additionally reports the individual influence edges
// gained and lost, which is what lets the ranked-list maintainer update
// I_{i,t}(e) incrementally instead of rescanning referrer sets.
#ifndef KSIR_WINDOW_ACTIVE_WINDOW_H_
#define KSIR_WINDOW_ACTIVE_WINDOW_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/arena.h"
#include "common/flat_hash_map.h"
#include "common/small_vector.h"
#include "common/status.h"
#include "common/types.h"
#include "stream/element.h"

namespace ksir {

/// One in-window referrer of an element: (referrer id, referral time).
struct Referrer {
  ElementId id;
  Timestamp ts;

  bool operator==(const Referrer&) const = default;
};

/// Referrer set I_t(e), in referral-time order. Inline storage covers the
/// typical in-degree; hubs spill to the heap.
using ReferrerList = SmallVector<Referrer, 4>;

/// Mutable sliding-window element store. Thread-compatible; the engine
/// serializes Advance() against queries with a shared_mutex.
class ActiveWindow {
 public:
  /// One influence edge changed by an Advance() call.
  struct EdgeDelta {
    /// The referenced element whose I_t shrank or grew.
    ElementId target;
    /// The in-window element referring to it.
    ElementId referrer;

    bool operator==(const EdgeDelta&) const = default;
  };

  /// Changes produced by one Advance() call, consumed by the ranked-list
  /// maintainer (Algorithm 1). The element-id vectors are disjoint: an id
  /// appears in at most one of them per call.
  struct UpdateResult {
    /// Newly inserted elements (in arrival order).
    std::vector<ElementId> inserted;
    /// Archived elements pulled back into A_t by a new reference. Index
    /// maintenance treats them like insertions.
    std::vector<ElementId> resurrected;
    /// Active elements that gained at least one referrer.
    std::vector<ElementId> gained_referrer;
    /// Active elements that lost at least one referrer to expiry but remain
    /// active (their influence score shrank).
    std::vector<ElementId> lost_referrer;
    /// Elements that left A_t (deactivated; removed from the ranked lists).
    std::vector<ElementId> expired;
    /// Influence edges gained / lost by elements that stay active across
    /// this call and were neither inserted nor resurrected by it (those are
    /// re-scored from scratch, so their edges are intentionally omitted).
    /// Targets of gained_edges appear in gained_referrer; targets of
    /// lost_edges appear in lost_referrer or gained_referrer (an element
    /// with both changes is classified as gained).
    std::vector<EdgeDelta> gained_edges;
    std::vector<EdgeDelta> lost_edges;
    /// References whose target was neither active nor archived.
    std::int64_t dangling_refs = 0;
  };

  /// `window_length` is T (> 0). `archive_retention` is how long inactive
  /// elements stay resurrectable; <= 0 means "same as T".
  explicit ActiveWindow(Timestamp window_length,
                        Timestamp archive_retention = 0);

  /// Entries are pool-allocated; live ones are destroyed here.
  ~ActiveWindow();

  ActiveWindow(const ActiveWindow&) = delete;
  ActiveWindow& operator=(const ActiveWindow&) = delete;

  /// Advances time to `now` and ingests `bucket` (elements with
  /// ts in (previous now, now], sorted by ts, unique ids). Insertions are
  /// processed before expiry, so an element referred to by this bucket
  /// survives even if its own timestamp just left the window.
  StatusOr<UpdateResult> Advance(Timestamp now,
                                 std::vector<SocialElement> bucket);

  /// Active-element lookup; nullptr when the id is inactive or unknown.
  const SocialElement* Find(ElementId id) const;

  /// Lookup that also reaches archived (inactive but retained) elements.
  /// Lost-edge consumers need the expired referrer's topic vector after the
  /// referrer itself left A_t; within the Advance() that reported the loss
  /// the referrer is always still archived.
  const SocialElement* FindIncludingArchived(ElementId id) const;

  /// True when the element belongs to A_t.
  bool IsActive(ElementId id) const;

  /// True when the element is active AND inside W_t (not merely referenced).
  bool IsInWindow(ElementId id) const;

  /// True when the element is retained in the archive (inactive but
  /// resurrectable). Exposed for tests.
  bool IsArchived(ElementId id) const;

  /// I_t(e): in-window referrers of `id` in referral-time order.
  /// Empty for unknown or inactive ids.
  const ReferrerList& ReferrersOf(ElementId id) const;

  /// Last time `id` was referred to, or its own ts when never referred
  /// (the t_e of the paper's ranked-list tuples). `id` must be active.
  Timestamp LastReferredAt(ElementId id) const;

  /// Invokes `fn` for every active element (A_t), unspecified order.
  void ForEachActive(
      const std::function<void(const SocialElement&)>& fn) const;

  /// Snapshot of active element ids, unspecified order.
  std::vector<ElementId> ActiveIds() const;

  /// n_t = |A_t|.
  std::size_t num_active() const { return num_active_; }

  /// Number of elements currently in W_t.
  std::size_t num_in_window() const { return window_order_.size(); }

  Timestamp now() const { return now_; }
  Timestamp window_length() const { return window_length_; }
  Timestamp archive_retention() const { return archive_retention_; }

 private:
  struct Entry {
    SocialElement element;
    ReferrerList referrers;   // in-window, sorted by ts
    Timestamp last_ref_time;  // max referral ts ever seen (or own ts)
    bool active = true;
    /// Time of the most recent deactivation (archive GC key).
    Timestamp deactivated_at = kMinTimestamp;
    /// Advance-epoch stamps deduplicating the gained/lost report lists
    /// without per-edge hash-set inserts (the entry is already in hand when
    /// an edge is registered).
    std::uint64_t gained_stamp = 0;
    std::uint64_t lost_stamp = 0;
  };

  /// Marks `id` inactive if it no longer satisfies the A_t predicate.
  void MaybeDeactivate(ElementId id, UpdateResult* result);

  Timestamp window_length_;
  Timestamp archive_retention_;
  Timestamp now_ = 0;
  /// Monotone Advance() counter backing the Entry dedup stamps.
  std::uint64_t advance_epoch_ = 0;
  /// Entries live in a free-list pool: an insert after a GC reuses a warm
  /// slot instead of hitting the allocator, the id table rehashes 8-byte
  /// pointers instead of whole entries, and entry addresses are stable
  /// across insertions (references survive rehash).
  ObjectPool<Entry> pool_;
  FlatHashMap<ElementId, Entry*> entries_;
  std::size_t num_active_ = 0;
  /// Ids of elements in W_t, ordered by ts (front = oldest).
  std::deque<ElementId> window_order_;
  /// Inactive elements by deactivation time (front = oldest) for GC.
  std::deque<std::pair<ElementId, Timestamp>> archive_queue_;

  /// ---- per-Advance scratch, cleared at the top of every call ----
  /// Retained across buckets so the steady-state hot path allocates
  /// nothing: the vectors keep their capacity, the sets their slot arrays.
  std::vector<ElementId> gained_scratch_;
  std::vector<ElementId> lost_scratch_;
  std::vector<ElementId> leavers_;
  std::vector<EdgeDelta> gained_edges_scratch_;
  std::vector<EdgeDelta> lost_edges_scratch_;
  FlatHashSet<ElementId> resurrected_scratch_;
  FlatHashSet<ElementId> inserted_set_;
  FlatHashSet<ElementId> expired_set_;
  FlatHashSet<ElementId> drop_from_expired_;

  static const ReferrerList kNoReferrers;
};

}  // namespace ksir

#endif  // KSIR_WINDOW_ACTIVE_WINDOW_H_
