// Unit tests for the effectiveness baselines: TF-IDF, DIV, REL, LexRank,
// and the Sumblr-style summarizer.
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "paper_fixture.h"
#include "search/div.h"
#include "search/lexrank.h"
#include "search/pagerank.h"
#include "search/rel.h"
#include "search/sumblr.h"
#include "search/tfidf.h"

namespace ksir {
namespace {

using ::ksir::testing::MakePaperEngineAtT8;

class SearchBaselineTest : public ::testing::Test {
 protected:
  void SetUp() override { fixture_ = MakePaperEngineAtT8(); }
  const ActiveWindow& window() const { return fixture_.engine->window(); }
  ksir::testing::PaperEngine fixture_;
};

// ----------------------------------------------------------------- TF-IDF --

TEST_F(SearchBaselineTest, TfIdfIndexCountsActiveElements) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  EXPECT_EQ(index.num_elements(), 7u);  // A_8 \ {e4}
}

TEST_F(SearchBaselineTest, TfIdfExactKeywordMatchRanksFirst) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  // w9 ("manutd", id 8) appears only in e2.
  const auto top = index.TopK({8}, 3);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0], 2);
  EXPECT_EQ(top.size(), 1u);  // nobody else contains the term
}

TEST_F(SearchBaselineTest, TfIdfMultiKeywordPrefersBothTerms) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  // "champion" (id 3) + "pl" (id 10): e2 and e7 contain both; e8 only pl.
  const auto top = index.TopK({3, 10}, 3);
  ASSERT_GE(top.size(), 2u);
  EXPECT_TRUE(top[0] == 2 || top[0] == 7);
  EXPECT_TRUE(std::find(top.begin(), top.end(), 8) == top.end() ||
              top.back() == 8);
}

TEST_F(SearchBaselineTest, TfIdfSimilarityZeroForUnknownKeyword) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  EXPECT_DOUBLE_EQ(index.Similarity(2, {999}), 0.0);
  EXPECT_TRUE(index.TopK({999}, 5).empty());
}

TEST_F(SearchBaselineTest, TfIdfElementSimilaritySymmetricAndBounded) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  for (ElementId a : {1, 2, 3, 5}) {
    for (ElementId b : {6, 7, 8}) {
      const double ab = index.ElementSimilarity(a, b);
      EXPECT_NEAR(ab, index.ElementSimilarity(b, a), 1e-12);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0 + 1e-12);
    }
  }
  // e2 and e7 share 2 of 2/3 words -> clearly similar.
  EXPECT_GT(index.ElementSimilarity(2, 7), 0.3);
}

TEST_F(SearchBaselineTest, TfIdfIdfDampensCommonWords) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  // w10 ("nbaplayoffs", id 9) appears in e3, e6, e8; w9 only in e2.
  EXPECT_GT(index.Idf(8), index.Idf(9));
}

// -------------------------------------------------------------------- DIV --

TEST_F(SearchBaselineTest, DivReturnsRequestedSize) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  const auto result = DivTopK(index, {9, 10}, 3);  // nbaplayoffs, pl
  EXPECT_EQ(result.size(), 3u);
  auto sorted = result;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST_F(SearchBaselineTest, DivPrefersDiverseResults) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  // Query for "champion pl": candidates e2, e7 (near-duplicates), e8.
  DivOptions options;
  options.lambda = 0.1;  // diversity-heavy
  const auto result = DivTopK(index, {3, 10}, 2, options);
  ASSERT_EQ(result.size(), 2u);
  // With strong diversity weighting the near-duplicate pair (e2, e7) should
  // not be chosen together.
  EXPECT_FALSE((result[0] == 2 && result[1] == 7) ||
               (result[0] == 7 && result[1] == 2));
}

TEST_F(SearchBaselineTest, DivEmptyWhenNoCandidates) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  EXPECT_TRUE(DivTopK(index, {999}, 3).empty());
  EXPECT_TRUE(DivTopK(index, {9}, 0).empty());
}

// -------------------------------------------------------------------- REL --

TEST_F(SearchBaselineTest, RelevanceTopKRanksByCosine) {
  // Query fully on theta_1: e4 is gone; e3 (0.89, 0.11) has the highest
  // cosine to (1, 0) among actives... e6 is (0.7, 0.3).
  const SparseVector x = SparseVector::FromEntries({{0, 1.0}});
  const auto result = RelevanceTopK(window(), x, 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], 3);
  EXPECT_EQ(result[1], 6);
}

TEST_F(SearchBaselineTest, RelevanceTopKHandlesOversizedK) {
  const SparseVector x = SparseVector::FromEntries({{0, 0.5}, {1, 0.5}});
  const auto result = RelevanceTopK(window(), x, 50);
  EXPECT_EQ(result.size(), 7u);
}

TEST_F(SearchBaselineTest, RelevanceIgnoresInfluenceEntirely) {
  // e6 has a referrer and e3's topic vector is extreme; REL only sees the
  // cosine, so a pure theta_2 query ranks e1 (0.2, 0.8) first.
  const SparseVector x = SparseVector::FromEntries({{1, 1.0}});
  const auto result = RelevanceTopK(window(), x, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], 1);
}

// ---------------------------------------------------------------- LexRank --

TEST(LexRankTest, UniformGraphGivesUniformRanks) {
  const std::vector<std::vector<double>> sim = {
      {0.0, 0.5, 0.5}, {0.5, 0.0, 0.5}, {0.5, 0.5, 0.0}};
  const auto ranks = LexRank(sim);
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_NEAR(ranks[0], 1.0 / 3, 1e-9);
  EXPECT_NEAR(ranks[1], 1.0 / 3, 1e-9);
  EXPECT_NEAR(std::accumulate(ranks.begin(), ranks.end(), 0.0), 1.0, 1e-9);
}

TEST(LexRankTest, CentralNodeWins) {
  // Star: node 0 connected to all, leaves only to 0.
  const std::vector<std::vector<double>> sim = {
      {0.0, 0.9, 0.9, 0.9},
      {0.9, 0.0, 0.0, 0.0},
      {0.9, 0.0, 0.0, 0.0},
      {0.9, 0.0, 0.0, 0.0}};
  const auto ranks = LexRank(sim);
  EXPECT_GT(ranks[0], ranks[1]);
  EXPECT_GT(ranks[0], ranks[2]);
  EXPECT_GT(ranks[0], ranks[3]);
}

TEST(LexRankTest, ThresholdDropsWeakEdges) {
  LexRankOptions options;
  options.threshold = 0.5;
  const std::vector<std::vector<double>> sim = {
      {0.0, 0.4}, {0.4, 0.0}};  // below threshold: isolated nodes
  const auto ranks = LexRank(sim, options);
  EXPECT_NEAR(ranks[0], 0.5, 1e-9);
  EXPECT_NEAR(ranks[1], 0.5, 1e-9);
}

TEST(LexRankTest, EmptyInput) { EXPECT_TRUE(LexRank({}).empty()); }

TEST(LexRankTest, RanksSumToOne) {
  const std::vector<std::vector<double>> sim = {
      {0.0, 0.8, 0.1}, {0.8, 0.0, 0.7}, {0.1, 0.7, 0.0}};
  const auto ranks = LexRank(sim);
  EXPECT_NEAR(std::accumulate(ranks.begin(), ranks.end(), 0.0), 1.0, 1e-9);
}

// ------------------------------------------------------------------- BM25 --

TEST_F(SearchBaselineTest, Bm25ScoresExactMatches) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  // w9 ("manutd", id 8) only occurs in e2.
  EXPECT_GT(index.Bm25Score(2, {8}), 0.0);
  EXPECT_DOUBLE_EQ(index.Bm25Score(1, {8}), 0.0);
  EXPECT_DOUBLE_EQ(index.Bm25Score(2, {999}), 0.0);
  EXPECT_DOUBLE_EQ(index.Bm25Score(999, {8}), 0.0);
}

TEST_F(SearchBaselineTest, Bm25RareTermsOutweighCommonOnes) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  // "manutd" (df 1) must contribute more than "nbaplayoffs" (df 3) when
  // both appear in documents of comparable length.
  const double rare = index.Bm25Score(2, {8});       // e2 contains manutd
  const double common = index.Bm25Score(8, {9});     // e8 contains w10
  EXPECT_GT(rare, common);
}

TEST_F(SearchBaselineTest, Bm25TopKMatchesManualRanking) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  const std::vector<WordId> query = {3, 10};  // champion, pl
  const auto top = index.TopKBm25(query, 5);
  ASSERT_GE(top.size(), 2u);
  // Every returned element scores at least the next one.
  for (std::size_t i = 0; i + 1 < top.size(); ++i) {
    EXPECT_GE(index.Bm25Score(top[i], query),
              index.Bm25Score(top[i + 1], query) - 1e-12);
  }
  EXPECT_TRUE(index.TopKBm25({999}, 5).empty());
}

TEST_F(SearchBaselineTest, Bm25LengthNormalizationPenalizesLongDocs) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  // w10 ("nbaplayoffs", id 9) appears once in e3 (4 words), e6 (4 words),
  // e8 (3 words): the shortest document scores highest at b = 0.75.
  const double score_e8 = index.Bm25Score(8, {9});
  const double score_e3 = index.Bm25Score(3, {9});
  EXPECT_GT(score_e8, score_e3);
  // With b = 0 the length penalty disappears and the scores tie.
  EXPECT_NEAR(index.Bm25Score(8, {9}, 1.2, 0.0),
              index.Bm25Score(3, {9}, 1.2, 0.0), 1e-12);
}

TEST_F(SearchBaselineTest, AverageLengthReflectsWindow) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  // Lengths of e1,e2,e3,e5,e6,e7,e8: 5+3+4+3+4+2+3 = 24 over 7 docs.
  EXPECT_NEAR(index.average_length(), 24.0 / 7.0, 1e-12);
}

// --------------------------------------------------------------- PageRank --

TEST_F(SearchBaselineTest, PageRankSumsToOne) {
  const auto ranks = ComputePageRank(window());
  ASSERT_EQ(ranks.size(), 7u);
  double total = 0.0;
  for (const auto& [id, rank] : ranks) total += rank;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(SearchBaselineTest, PageRankFavorsCitedElements) {
  // e2 and e3 each have two in-window referrers; e5/e7 have none.
  const auto ranks = ComputePageRank(window());
  EXPECT_GT(ranks.at(2), ranks.at(5));
  EXPECT_GT(ranks.at(3), ranks.at(7));
}

TEST_F(SearchBaselineTest, PageRankChainAccumulates) {
  // e8 -> e6 -> e3: rank must flow down the chain, so e3 outranks e6.
  const auto ranks = ComputePageRank(window());
  EXPECT_GT(ranks.at(3), ranks.at(6));
}

TEST(PageRankTest, EmptyWindow) {
  ActiveWindow window(10);
  EXPECT_TRUE(ComputePageRank(window).empty());
}

// ----------------------------------------------------------------- Sumblr --

TEST_F(SearchBaselineTest, SumblrFiltersByKeyword) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  // Keyword w10 ("nbaplayoffs" id 9) matches e3, e6, e8 only.
  const auto result = SumblrSummarize(window(), index, {9}, 2, 2);
  ASSERT_LE(result.size(), 2u);
  for (ElementId id : result) {
    EXPECT_TRUE(id == 3 || id == 6 || id == 8) << id;
  }
}

TEST_F(SearchBaselineTest, SumblrEmptyWithoutMatches) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  EXPECT_TRUE(SumblrSummarize(window(), index, {999}, 3, 2).empty());
  EXPECT_TRUE(SumblrSummarize(window(), index, {9}, 0, 2).empty());
}

TEST_F(SearchBaselineTest, SumblrFillsUpToKWhenFewerClusters) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  const auto result = SumblrSummarize(window(), index, {9}, 3, 2);
  EXPECT_EQ(result.size(), 3u);  // all three matching candidates returned
}

TEST_F(SearchBaselineTest, SumblrDeterministicForSeed) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  const auto a = SumblrSummarize(window(), index, {9, 10}, 3, 2);
  const auto b = SumblrSummarize(window(), index, {9, 10}, 3, 2);
  EXPECT_EQ(a, b);
}

TEST_F(SearchBaselineTest, SumblrInfluenceBoostPrefersReferencedElements) {
  const TfIdfIndex index = TfIdfIndex::Build(window());
  // Candidates for w10 ("pl", id 10): e2, e7, e8. e2 has two in-window
  // referrers; with a strong influence boost it must be selected.
  SumblrOptions options;
  options.influence_boost = 3.0;
  const auto result = SumblrSummarize(window(), index, {10}, 1, 2, options);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], 2);
}

}  // namespace
}  // namespace ksir
