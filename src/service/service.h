// KsirService: the sharded k-SIR query service.
//
//                      +-----------------------------+
//      stream buckets  |       ShardedIngestor       |
//     ---------------> |  ShardRouter -> WorkerPool  |
//                      +--+--------+--------+--------+
//                         |        |        |
//                      +--v--+  +--v--+  +--v--+
//                      |shard|  |shard|  |shard|   KsirEngine x N
//                      +--+--+  +--+--+  +--+--+
//                         |        |        |
//                      +--v--------v--------v--------+
//      ad-hoc queries  |        QueryPlanner         |
//     ---------------> |   fan-out / CELF merge      |
//          ^           +--------------+--------------+
//          |                          |
//   +------+-------+        +--------v---------+
//   | ResultCache  | <----- | standing queries |
//   | (epoch keyed)|        | (re-primed per   |
//   +--------------+        |  bucket)         |
//                           +------------------+
//
// One writer thread ingests buckets; any number of reader threads query.
// This façade is the seam every scaling direction plugs into: more shards,
// asynchronous ingestion, replicated shards, or remote shard backends all
// stay behind AdvanceTo/Query.
#ifndef KSIR_SERVICE_SERVICE_H_
#define KSIR_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "telemetry/telemetry.h"
#include "service/query_planner.h"
#include "service/result_cache.h"
#include "service/shard_router.h"
#include "service/sharded_ingestor.h"
#include "service/sharded_standing_query.h"
#include "runtime/worker_pool.h"
#include "topic/topic_model.h"

namespace ksir {

/// Service configuration on top of the per-shard engine config.
struct ServiceConfig {
  /// Per-shard engine configuration (window/bucket lengths, scoring).
  EngineConfig engine;
  /// Number of shard engines (>= 1).
  std::size_t num_shards = 4;
  /// Worker threads shared by ingestion, query fan-out AND the shards'
  /// parallel maintenance stages (when engine.maintenance_threads >= 2 the
  /// shard engines fan their staged bucket apply out on this same pool —
  /// one process-wide pool instead of a pool per shard; caller
  /// participation keeps nested fan-out deadlock-free). 0 = num_shards,
  /// raised to engine.maintenance_threads when that is larger; size it
  /// near num_shards * maintenance_threads to run both levels fully
  /// parallel.
  std::size_t num_workers = 0;
  /// Pin the service-owned pool's workers to CPUs (PoolOptions::
  /// pin_threads): with the maintainer's shard-affine stages, the same
  /// topic shard then lands on the same core bucket after bucket.
  /// Best-effort — refused pins are counted, never fatal. Ignored when
  /// `shared_pool` is passed (the pool's owner decided its pinning).
  bool pin_workers = false;
  /// Optional externally owned pool (must outlive the service): lets
  /// several services / engines in one process share one pool. nullptr =
  /// the service builds its own through the runtime factory.
  WorkerPool* shared_pool = nullptr;
  /// Result-cache entries kept across one epoch (>= 1).
  std::size_t cache_capacity = 4096;
  /// Query-vector quantization step of the cache key.
  double cache_quantum = 1e-4;
  /// Re-evaluate standing queries right after every ingested bucket.
  bool evaluate_standing_after_advance = true;
  /// How the post-bucket standing-query round is driven: kIndexed wakes
  /// only subscriptions whose query support intersects the topics touched
  /// by the bucket (union over shards), kNaive re-evaluates everything —
  /// the reference baseline, kept for equivalence testing.
  SubscriptionMode subscription_mode = SubscriptionMode::kIndexed;
  /// Telemetry level and tracing knobs of the service-wide Telemetry (one
  /// registry + tracer shared by every shard engine, the pool, the
  /// ingestor, the planner and the cache — N shards aggregate into one
  /// series set). Overrides engine.telemetry, which is ignored here.
  TelemetryConfig telemetry;
};

/// Validates a ServiceConfig (including the nested engine config).
Status ValidateServiceConfig(const ServiceConfig& config);

/// Point-in-time service counters.
struct ServiceStats {
  std::uint64_t epoch = 0;
  IngestionStats ingestion;
  ResultCacheStats cache;
  PlannerStats planner;
  /// Standing-query evaluation rounds that surfaced an error.
  std::int64_t standing_errors = 0;
  /// Sum of |A_t| over all shards.
  std::size_t num_active_total = 0;
};

/// Sharded k-SIR query service. Thread model: one ingestion thread calls
/// AdvanceTo/Append; any number of threads call Query concurrently.
class KsirService {
 public:
  /// `model` must outlive the service.
  static StatusOr<std::unique_ptr<KsirService>> Create(
      ServiceConfig config, const TopicModel* model);

  /// Ingests one bucket: partitions it across the shards, advances them in
  /// parallel, bumps the service epoch (invalidating cached results) and —
  /// when configured — re-evaluates the standing queries.
  Status AdvanceTo(Timestamp bucket_end, std::vector<SocialElement> bucket);

  /// Splits `elements` (sorted by ts) into buckets and ingests them all.
  Status Append(std::vector<SocialElement> elements);

  /// Answers an ad-hoc k-SIR query: epoch-keyed cache first, then the
  /// fan-out/merge planner. Thread-safe.
  StatusOr<QueryResult> Query(const KsirQuery& query) const;

  /// Standing subscriptions (evaluated through the cached planner path).
  ShardedStandingQueryManager& standing_queries() { return *standing_; }

  /// Current stream clock (shared by all shards).
  Timestamp now() const { return ingestor_->now(); }

  /// Monotone count of ingested buckets (the cache key epoch).
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  std::size_t num_shards() const { return shards_.size(); }

  /// Shard access for tests/benches (not thread-safe against AdvanceTo).
  const KsirEngine& shard(std::size_t i) const { return *shards_[i]; }

  /// Router access for tests/benches (balance-cap observability; not
  /// thread-safe against AdvanceTo).
  const ShardRouter& router() const { return *router_; }

  /// Point-in-time counters, safe to call from any thread concurrently
  /// with ingestion and queries: every field is assembled from atomic
  /// storage (registry counters; active-set sizes under each shard's query
  /// lock). The snapshot is per-field consistent, not cross-field.
  ServiceStats stats() const;

  /// The service-wide telemetry (registry + tracer).
  Telemetry& telemetry() const { return *telemetry_; }

  /// Prometheus text exposition of every service metric (see
  /// telemetry/exposition.h). Safe any time.
  std::string MetricsText() const;

  /// JSON snapshot of every service metric.
  std::string MetricsJsonDump() const;

  /// chrome://tracing JSON of the sampled spans (empty event list unless
  /// config.telemetry.level == kTracing).
  std::string TraceJson() const;

 private:
  KsirService(ServiceConfig config, const TopicModel* model);

  ServiceConfig config_;
  /// Service-wide telemetry; declared before every component that records
  /// into it (pool, shards, ingestor, planner, cache).
  std::unique_ptr<Telemetry> telemetry_;
  /// Service-owned pool (absent when config.shared_pool was passed);
  /// declared before the shards, which hold the raw pointer through their
  /// maintainers.
  std::unique_ptr<WorkerPool> owned_pool_;
  WorkerPool* pool_ = nullptr;
  std::vector<std::unique_ptr<KsirEngine>> shards_;
  std::unique_ptr<ShardRouter> router_;
  std::unique_ptr<ShardedIngestor> ingestor_;
  std::unique_ptr<QueryPlanner> planner_;
  mutable ResultCache cache_;
  /// Query-path metrics (the cache-lookup span runs before the planner's).
  Counter* queries_counter_ = nullptr;
  Histogram* query_hist_ = nullptr;
  Histogram* cache_lookup_hist_ = nullptr;
  std::unique_ptr<ShardedStandingQueryManager> standing_;
  /// Per-shard advance summaries collected after each bucket (reused).
  std::vector<AdvanceSummary> summaries_scratch_;
  std::atomic<std::uint64_t> epoch_{0};
  /// Seqlock-style ingestion generation: odd while a bucket is being
  /// applied to the shards, even when quiescent. A query whose fan-out
  /// overlaps an odd or changed generation may have mixed pre-/post-bucket
  /// shard states and must not be cached.
  std::atomic<std::uint64_t> write_generation_{0};
  std::atomic<std::int64_t> standing_errors_{0};
};

}  // namespace ksir

#endif  // KSIR_SERVICE_SERVICE_H_
