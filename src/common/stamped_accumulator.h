// Dense accumulator with lazy stamp-based clearing: one array of values
// plus a parallel array of epoch stamps. Begin() bumps the epoch, which
// invalidates every slot in O(1); Add() initializes a slot on its first
// touch of the epoch and accumulates afterwards. The scatter/gather idiom
// of the maintenance hot paths (fold many sparse vectors into one dense
// row, then read back a sparse support) without ever memsetting the dense
// arrays.
#ifndef KSIR_COMMON_STAMPED_ACCUMULATOR_H_
#define KSIR_COMMON_STAMPED_ACCUMULATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/kernels/kernels.h"

namespace ksir {

/// Thread-compatible; one accumulator per owner, sized once.
class StampedAccumulator {
 public:
  StampedAccumulator() = default;

  /// (Re)sizes the dense range to [0, n). Keeps stamps valid.
  void Resize(std::size_t n) {
    values_.resize(n, 0.0);
    stamps_.resize(n, 0);
  }

  bool empty() const { return values_.empty(); }

  /// Starts a new accumulation epoch; all slots read as absent.
  void Begin() { ++epoch_; }

  /// values[slot] += delta (first touch of the epoch initializes to delta).
  void Add(std::size_t slot, double delta) {
    if (stamps_[slot] != epoch_) {
      stamps_[slot] = epoch_;
      values_[slot] = delta;
    } else {
      values_[slot] += delta;
    }
  }

  /// Add() over a sorted (index, value) entry span (SparseVector layout),
  /// routed through the kernel layer's dispatch-invariant scatter: the
  /// fold of many sparse topic vectors into the dense row is the scoring
  /// stage's per-referrer hot loop. Indices must be within the resized
  /// range.
  void AddEntries(const std::pair<std::int32_t, double>* entries,
                  std::size_t n) {
    static_assert(sizeof(*entries) == 16,
                  "entry must be a 16-byte (int32, double) record");
    kernels::ScatterAddEntries(entries, n, values_.data(), stamps_.data(),
                               epoch_);
  }

  /// True when `slot` was touched since the last Begin().
  bool Touched(std::size_t slot) const { return stamps_[slot] == epoch_; }

  /// Value of a touched slot (undefined for untouched slots).
  double Get(std::size_t slot) const { return values_[slot]; }

 private:
  std::vector<double> values_;
  std::vector<std::uint64_t> stamps_;
  std::uint64_t epoch_ = 0;
};

}  // namespace ksir

#endif  // KSIR_COMMON_STAMPED_ACCUMULATOR_H_
