// SSE2 dispatch arm: the x86-64 baseline, selected when AVX2 is absent.
// SSE2 lacks 64-bit integer compares, so the key searches and id scans
// stay on the shared scalar bodies; the FP reductions and the 16-byte key
// moves are vectorized with two 128-bit accumulators standing in for the
// canonical lanes 0/1 and 2/3. No FMA exists pre-AVX2, so bitwise equality
// with the scalar reference needs no flag care here.
#if defined(KSIR_KERNELS_X86)

#include <emmintrin.h>

#include "common/kernels/kernels_detail.h"

namespace ksir {
namespace kernels {
namespace {

// Branchless select: (mask & a) | (~mask & b), mask all-ones per lane.
inline __m128d Select(__m128d mask, __m128d a, __m128d b) {
  return _mm_or_pd(_mm_and_pd(mask, a), _mm_andnot_pd(mask, b));
}

void CopyKeysSse2(Key16* dst, const Key16* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    _mm_storeu_pd(&dst[i].score, _mm_loadu_pd(&src[i].score));
  }
}

void CopyKeysBackwardSse2(Key16* dst, const Key16* src, std::size_t n) {
  for (std::size_t i = n; i-- > 0;) {
    _mm_storeu_pd(&dst[i].score, _mm_loadu_pd(&src[i].score));
  }
}

double DenseDotSse2(const double* a, const double* b, std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = _mm_add_pd(
        acc01, _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    acc23 = _mm_add_pd(
        acc23, _mm_mul_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
  }
  double lanes[4];
  _mm_storeu_pd(lanes, acc01);
  _mm_storeu_pd(lanes + 2, acc23);
  for (; i < n; ++i) lanes[i & 3] += a[i] * b[i];
  return detail::CombineLanes(lanes);
}

double SumSquaresSse2(const double* v, std::size_t n, std::size_t stride) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  if (stride == 1) {
    for (; i + 4 <= n; i += 4) {
      const __m128d x01 = _mm_loadu_pd(v + i);
      const __m128d x23 = _mm_loadu_pd(v + i + 2);
      acc01 = _mm_add_pd(acc01, _mm_mul_pd(x01, x01));
      acc23 = _mm_add_pd(acc23, _mm_mul_pd(x23, x23));
    }
  } else if (stride == 2) {
    // Strict i + 4 < n: the last pair load would touch v[2i + 7], one
    // word past the final element when `v` is the second field of the
    // 16-byte records, so the final full group goes to the scalar tail.
    while (i + 4 < n) {
      const __m128d p0 = _mm_loadu_pd(v + 2 * i);       // v[2i],   gap
      const __m128d p1 = _mm_loadu_pd(v + 2 * i + 2);   // v[2i+2], gap
      const __m128d p2 = _mm_loadu_pd(v + 2 * i + 4);
      const __m128d p3 = _mm_loadu_pd(v + 2 * i + 6);
      const __m128d x01 = _mm_shuffle_pd(p0, p1, 0x0);  // lanes 0, 1
      const __m128d x23 = _mm_shuffle_pd(p2, p3, 0x0);  // lanes 2, 3
      acc01 = _mm_add_pd(acc01, _mm_mul_pd(x01, x01));
      acc23 = _mm_add_pd(acc23, _mm_mul_pd(x23, x23));
      i += 4;
    }
  } else {
    return detail::SumSquaresScalar(v, n, stride);
  }
  double lanes[4];
  _mm_storeu_pd(lanes, acc01);
  _mm_storeu_pd(lanes + 2, acc23);
  for (; i < n; ++i) {
    const double x = v[i * stride];
    lanes[i & 3] += x * x;
  }
  return detail::CombineLanes(lanes);
}

double WeightedSumArgmaxSse2(const double* sum_vals, const double* max_vals,
                             std::size_t n, std::size_t* argmax) {
  if (n < 8) return detail::WeightedSumArgmaxScalar(sum_vals, max_vals, n,
                                                    argmax);
  __m128d sum01 = _mm_add_pd(_mm_setzero_pd(), _mm_loadu_pd(sum_vals));
  __m128d sum23 = _mm_add_pd(_mm_setzero_pd(), _mm_loadu_pd(sum_vals + 2));
  __m128d best01 = _mm_loadu_pd(max_vals);
  __m128d best23 = _mm_loadu_pd(max_vals + 2);
  // Indices tracked as double-bit patterns of small integers would lose
  // exactness past 2^53 — keep them as epi64 moved through FP blends,
  // which only shuffle bits.
  __m128i idx01 = _mm_set_epi64x(1, 0);
  __m128i idx23 = _mm_set_epi64x(3, 2);
  __m128i cur01 = _mm_set_epi64x(5, 4);
  __m128i cur23 = _mm_set_epi64x(7, 6);
  const __m128i step = _mm_set1_epi64x(4);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    sum01 = _mm_add_pd(sum01, _mm_loadu_pd(sum_vals + i));
    sum23 = _mm_add_pd(sum23, _mm_loadu_pd(sum_vals + i + 2));
    const __m128d m01 = _mm_loadu_pd(max_vals + i);
    const __m128d m23 = _mm_loadu_pd(max_vals + i + 2);
    const __m128d gt01 = _mm_cmpgt_pd(m01, best01);
    const __m128d gt23 = _mm_cmpgt_pd(m23, best23);
    best01 = Select(gt01, m01, best01);
    best23 = Select(gt23, m23, best23);
    idx01 = _mm_castpd_si128(Select(gt01, _mm_castsi128_pd(cur01),
                                    _mm_castsi128_pd(idx01)));
    idx23 = _mm_castpd_si128(Select(gt23, _mm_castsi128_pd(cur23),
                                    _mm_castsi128_pd(idx23)));
    cur01 = _mm_add_epi64(cur01, step);
    cur23 = _mm_add_epi64(cur23, step);
  }
  double lanes[4];
  double lane_max[4];
  std::int64_t lane_idx[4];
  _mm_storeu_pd(lanes, sum01);
  _mm_storeu_pd(lanes + 2, sum23);
  _mm_storeu_pd(lane_max, best01);
  _mm_storeu_pd(lane_max + 2, best23);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lane_idx), idx01);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lane_idx + 2), idx23);
  for (; i < n; ++i) {
    const std::size_t lane = i & 3;
    lanes[lane] += sum_vals[i];
    if (max_vals[i] > lane_max[lane]) {
      lane_max[lane] = max_vals[i];
      lane_idx[lane] = static_cast<std::int64_t>(i);
    }
  }
  double best_val = lane_max[0];
  std::size_t best_i = static_cast<std::size_t>(lane_idx[0]);
  for (int lane = 1; lane < 4; ++lane) {
    const std::size_t cand = static_cast<std::size_t>(lane_idx[lane]);
    if (lane_max[lane] > best_val ||
        (lane_max[lane] == best_val && cand < best_i)) {
      best_val = lane_max[lane];
      best_i = cand;
    }
  }
  *argmax = best_i;
  return detail::CombineLanes(lanes);
}

}  // namespace

const KernelTable& Sse2Table();

const KernelTable& Sse2Table() {
  static const KernelTable table = {
      "sse2",
      &detail::LowerBoundKeysScalar,
      &detail::UpperBoundKeysScalar,
      &detail::FindId64Scalar,
      &CopyKeysSse2,
      &CopyKeysBackwardSse2,
      &detail::MergeKeysScalar,
      &DenseDotSse2,
      &SumSquaresSse2,
      &WeightedSumArgmaxSse2,
      &detail::ScatterAddEntriesScalar,
  };
  return table;
}

}  // namespace kernels
}  // namespace ksir

#endif  // KSIR_KERNELS_X86
