#include "core/engine.h"

#include <algorithm>
#include <mutex>
#include <string>

#include "common/timer.h"
#include "core/brute_force.h"
#include "core/celf.h"
#include "core/mttd.h"
#include "core/mtts.h"
#include "core/sieve_streaming.h"
#include "core/topk_representative.h"

namespace ksir {

std::string_view AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMtts:
      return "MTTS";
    case Algorithm::kMttd:
      return "MTTD";
    case Algorithm::kCelf:
      return "CELF";
    case Algorithm::kGreedy:
      return "Greedy";
    case Algorithm::kSieveStreaming:
      return "SieveStreaming";
    case Algorithm::kTopkRepresentative:
      return "Top-k Representative";
    case Algorithm::kBruteForce:
      return "BruteForce";
  }
  return "Unknown";
}

KsirEngine::KsirEngine(EngineConfig config, const TopicModel* model)
    : config_(config),
      window_(config.window_length, config.archive_retention),
      index_(model != nullptr ? model->num_topics() : 1),
      scoring_(model, &window_, config.scoring),
      maintainer_(&scoring_, &index_, config.refresh_mode) {
  KSIR_CHECK(config.bucket_length > 0);
  KSIR_CHECK(config.window_length >= config.bucket_length);
}

Status KsirEngine::AdvanceTo(Timestamp bucket_end,
                             std::vector<SocialElement> bucket) {
  std::unique_lock lock(mutex_);
  WallTimer timer;
  const std::size_t n = bucket.size();
  KSIR_ASSIGN_OR_RETURN(ActiveWindow::UpdateResult update,
                        window_.Advance(bucket_end, std::move(bucket)));
  maintainer_.Apply(update);
  stats_.elements_ingested += static_cast<std::int64_t>(n);
  ++stats_.buckets_processed;
  stats_.elements_expired += static_cast<std::int64_t>(update.expired.size());
  stats_.dangling_refs += update.dangling_refs;
  stats_.total_update_ms += timer.ElapsedMillis();
  return Status::OK();
}

Status KsirEngine::Append(std::vector<SocialElement> elements) {
  if (elements.empty()) return Status::OK();
  const Timestamp l = config_.bucket_length;
  std::size_t begin = 0;
  while (begin < elements.size()) {
    // Bucket end: the smallest multiple of L at/after the first element
    // (strictly after the current clock).
    const Timestamp first_ts = elements[begin].ts;
    if (first_ts <= now()) {
      return Status::InvalidArgument(
          "element ts " + std::to_string(first_ts) +
          " not newer than engine time " + std::to_string(now()));
    }
    Timestamp bucket_end = ((first_ts + l - 1) / l) * l;
    if (bucket_end <= now()) bucket_end += l;
    std::size_t end = begin;
    while (end < elements.size() && elements[end].ts <= bucket_end) ++end;
    // Final chunk: advance only to the last element's timestamp so that a
    // subsequent Append may deliver elements of the same (open) bucket.
    if (end == elements.size()) bucket_end = elements[end - 1].ts;
    std::vector<SocialElement> bucket(
        std::make_move_iterator(elements.begin() +
                                static_cast<std::ptrdiff_t>(begin)),
        std::make_move_iterator(elements.begin() +
                                static_cast<std::ptrdiff_t>(end)));
    KSIR_RETURN_NOT_OK(AdvanceTo(bucket_end, std::move(bucket)));
    begin = end;
  }
  return Status::OK();
}

StatusOr<QueryResult> KsirEngine::Query(const KsirQuery& query) const {
  if (query.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (query.x.empty()) {
    return Status::InvalidArgument("query vector is empty");
  }
  const bool needs_epsilon = query.algorithm == Algorithm::kMtts ||
                             query.algorithm == Algorithm::kMttd ||
                             query.algorithm == Algorithm::kSieveStreaming;
  if (needs_epsilon && (query.epsilon <= 0.0 || query.epsilon >= 1.0)) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  std::shared_lock lock(mutex_);
  switch (query.algorithm) {
    case Algorithm::kMtts:
      return RunMtts(scoring_, index_, query);
    case Algorithm::kMttd:
      return RunMttd(scoring_, index_, query);
    case Algorithm::kCelf:
      return RunCelf(scoring_, window_, query);
    case Algorithm::kGreedy:
      return RunGreedy(scoring_, window_, query);
    case Algorithm::kSieveStreaming:
      return RunSieveStreaming(scoring_, window_, query);
    case Algorithm::kTopkRepresentative:
      return RunTopkRepresentative(scoring_, index_, query);
    case Algorithm::kBruteForce:
      return RunBruteForce(scoring_, window_, query);
  }
  return Status::InvalidArgument("unknown algorithm");
}

Timestamp KsirEngine::now() const {
  std::shared_lock lock(mutex_);
  return window_.now();
}

MaintenanceStats KsirEngine::maintenance_stats() const {
  std::shared_lock lock(mutex_);
  return stats_;
}

}  // namespace ksir
