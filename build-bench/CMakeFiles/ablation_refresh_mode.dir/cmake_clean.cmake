file(REMOVE_RECURSE
  "CMakeFiles/ablation_refresh_mode.dir/bench/ablation_refresh_mode.cpp.o"
  "CMakeFiles/ablation_refresh_mode.dir/bench/ablation_refresh_mode.cpp.o.d"
  "ablation_refresh_mode"
  "ablation_refresh_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_refresh_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
