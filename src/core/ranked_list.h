// Per-topic ranked lists (paper Section 4.1, Algorithm 1).
//
// RL_i keeps one tuple <delta_i(e), t_e> per active element with p_i(e) > 0,
// sorted by topic-wise representativeness score descending.
//
// Storage is a chunked sorted array (B-tree-leaf style): an ordered vector
// of fixed-capacity chunks, each holding a sorted run of keys. Insert and
// reposition binary-search the chunk directory and memmove within one chunk
// (a few cache lines), full chunks split and sparse neighbors merge, and the
// threshold traversal of Algorithms 2-3 walks contiguous memory. The t_e
// half of the paper's tuple is NOT stored here: it is identical across all
// of an element's lists, so RankedListIndex keeps it once per element and
// the maintenance pipeline updates it once per reposition — which lets a
// reposition that changes no score on a topic skip that topic's list
// entirely.
//
// Position state is carried through the maintenance pipeline as opaque
// Handles (stable chunk slot + generation) minted by Insert and refreshed
// by every mutation. A valid handle resolves an element's chunk with two
// array reads and one in-chunk binary search — no hashing. Because every
// pipeline operation also carries the element's exact listed score, a
// stale handle falls back to the self-locating key: FindChunk(old key) is
// one binary search of the contiguous chunk directory, still no hashing.
// The id side table (id -> chunk slot) therefore only serves id-keyed
// entry points (Update/Erase by id, Get, Contains — the reference paths
// and diagnostics); a handle-carrying engine constructs its lists with
// `track_ids = false`, dropping the table and ALL of its maintenance
// (insert/erase/split/merge rewrites). A probe counter proves the
// reposition paths perform zero id-table hash probes.
#ifndef KSIR_CORE_RANKED_LIST_H_
#define KSIR_CORE_RANKED_LIST_H_

#include <array>
#include <cstdint>
#include <iterator>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/flat_hash_map.h"
#include "common/kernels/kernels.h"
#include "common/small_vector.h"
#include "common/types.h"

namespace ksir {

/// One topic's ranked list.
class RankedList {
 public:
  /// Ordering key: score descending, id ascending for determinism. Aliases
  /// the kernel layer's 16-byte key so the directory probes, in-chunk
  /// searches, and span moves run on the dispatched SIMD kernels without
  /// any type-punning at the call sites.
  using Key = kernels::Key16;
  static_assert(std::is_same_v<decltype(Key::id), ElementId>,
                "kernels::Key16 must carry the engine's element id type");

  /// One pending id-keyed reposition (the t_e half of the paper's tuple
  /// lives in RankedListIndex, once per element).
  struct Tuple {
    ElementId id;
    double score;
  };

  /// Opaque position hint: the stable slot id of the chunk holding the
  /// element plus that chunk's incarnation generation. A handle is a HINT,
  /// never authority: resolution verifies the exact key is present in the
  /// hinted chunk and falls back to the id side table otherwise, so a stale
  /// handle (its chunk split, merged, or died) costs one extra probe, not
  /// correctness. The default-constructed handle always misses.
  struct Handle {
    static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;
    std::uint32_t slot = kInvalidSlot;
    std::uint32_t gen = 0;

    bool operator==(const Handle&) const = default;
  };

  /// One reposition carried through the pipeline: the exact key currently
  /// listed (`old_score` — the ScoreCache's `listed` half), the new score,
  /// and the in/out handle slot the list reads the position hint from and
  /// writes the new position into (it points into the ScoreCache entry, so
  /// the refreshed hint is immediately durable).
  struct HandleUpdate {
    ElementId id;
    double old_score;
    double score;
    Handle* handle;
  };

  /// Everything the handle-based erase path needs to drop one list entry
  /// without re-deriving it: which list, the listed key, the position hint.
  struct ErasureHint {
    TopicId topic;
    double score;
    Handle handle;
  };

  /// Keys per chunk: 64 * 16 B = 1 KiB of contiguous keys per chunk; splits
  /// at capacity keep memmoves short while iteration stays sequential.
  static constexpr std::size_t kChunkCapacity = 64;

 private:
  struct Chunk {
    std::uint32_t size = 0;
    /// Stable index into slots_ (survives directory shifts).
    std::uint32_t slot = 0;
    /// Incarnation of this slot; handles minted against an earlier
    /// incarnation miss without touching the keys.
    std::uint32_t gen = 0;
    /// Current index in chunks_ / chunk_last_ (renumbered on split/merge).
    std::uint32_t pos = 0;
    std::array<Key, kChunkCapacity> keys;
  };
  using ChunkVector = std::vector<std::unique_ptr<Chunk>>;

 public:
  /// Forward iterator over the chunked storage in descending-score order.
  /// Invalidated by any mutation, like the node iterators it replaced.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Key;
    using difference_type = std::ptrdiff_t;
    using reference = const Key&;
    using pointer = const Key*;

    const_iterator() = default;

    const Key& operator*() const { return (*chunks_)[chunk_]->keys[offset_]; }
    const Key* operator->() const {
      return &(*chunks_)[chunk_]->keys[offset_];
    }

    const_iterator& operator++() {
      if (++offset_ == (*chunks_)[chunk_]->size) {
        ++chunk_;
        offset_ = 0;
      }
      return *this;
    }

    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.chunk_ == b.chunk_ && a.offset_ == b.offset_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return !(a == b);
    }

   private:
    friend class RankedList;
    const_iterator(const ChunkVector* chunks, std::size_t chunk,
                   std::uint32_t offset)
        : chunks_(chunks), chunk_(chunk), offset_(offset) {}

    const ChunkVector* chunks_ = nullptr;
    std::size_t chunk_ = 0;
    std::uint32_t offset_ = 0;
  };

  /// Reusable scratch of the batched reposition paths (sorted removal and
  /// insertion runs). Owned by the caller so one buffer serves every list
  /// of an index; never shared across threads.
  struct BatchScratch {
    /// One pending insertion: the new key, the handle slot to refresh
    /// (nullable on the id path) and the slot the element currently
    /// occupies (so cross-chunk landings update the side table, same-chunk
    /// landings touch nothing).
    struct PendingInsert {
      Key key;
      Handle* handle;
      std::uint32_t old_slot;
    };
    std::vector<Key> removals;
    std::vector<PendingInsert> insertions;
    /// Ops deferred to the per-element path (chunks the batch would
    /// overflow past capacity); almost always empty.
    std::vector<Key> deferred_removals;
    std::vector<PendingInsert> deferred_insertions;
  };

  /// `track_ids` maintains the id -> chunk side table behind the id-keyed
  /// entry points. Handle-carrying engines pass false: every operation
  /// carries its exact key, so the table (and its split/merge upkeep) is
  /// dead weight; Get/Contains then fall back to a full scan (diagnostic
  /// and test use only) and the id-keyed mutators are forbidden.
  explicit RankedList(bool track_ids = true) : track_ids_(track_ids) {}

  /// Inserts a new element; it must not be present. Returns the minted
  /// position handle.
  Handle Insert(ElementId id, double score);

  /// Repositions an existing element with a new score, resolving the
  /// position by id (side-table probe). The reference path; the pipeline
  /// uses UpdateHandle / the batch entry points. Requires track_ids.
  void Update(ElementId id, double score);

  /// Repositions one element through its carried handle and listed score;
  /// writes the refreshed handle back into *u.handle. The no-split
  /// common case (new key stays in the hinted chunk) performs zero
  /// id-table probes and zero directory searches.
  void UpdateHandle(const HandleUpdate& u);

  /// Repositions `n` existing elements (each present, each at most once) in
  /// one pass: the pending keys are sorted and merged into the chunk
  /// sequence in a single sweep of the chunk directory, instead of `n`
  /// independent binary-search + memmove operations. Equivalent to calling
  /// Update once per tuple — the resulting key sequence and side table are
  /// identical; only the (unobservable) chunk boundaries may differ.
  /// Resolves every tuple by id (the PR 3 baseline path).
  void ApplyBatch(const Tuple* updates, std::size_t n, BatchScratch* scratch);

  /// ApplyBatch over handle-carrying updates: old keys come from the
  /// carried listed scores, positions from the handles, and every moved
  /// element's refreshed handle is written back through its HandleUpdate.
  void ApplyBatchHandles(const HandleUpdate* updates, std::size_t n,
                         BatchScratch* scratch);

  /// Removes an element; it must be present. Id-keyed reference path;
  /// requires track_ids.
  void Erase(ElementId id);

  /// Removes an element through its carried handle + listed score.
  void EraseHandle(ElementId id, double score, Handle handle);

  bool Contains(ElementId id) const;

  /// Current score of a present element.
  double Get(ElementId id) const;

  bool tracks_ids() const { return track_ids_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Ordered traversal (descending score).
  const_iterator begin() const { return const_iterator(&chunks_, 0, 0); }
  const_iterator end() const {
    return const_iterator(&chunks_, chunks_.size(), 0);
  }

  /// Bulk read for cursor pulls: copies up to `n` keys starting at *pos
  /// into `out` (chunk-sized contiguous spans, no per-key iterator
  /// bookkeeping), advances *pos past them and returns how many were
  /// copied. 0 iff *pos is end().
  std::size_t DrainTop(const_iterator* pos, Key* out, std::size_t n) const;

  /// Cumulative id-side-table hash operations (find/insert/erase). The
  /// no-split handle reposition fast path performs none; asserting this
  /// counter flat across such a batch is the zero-probe contract's test.
  std::uint64_t id_table_probes() const { return probes_; }

  /// Diagnostic handle resolution (tests): kValid when the hinted chunk is
  /// alive, same incarnation, and contains exactly Key{score, id}.
  enum class HandleState { kValid, kStale };
  HandleState ProbeHandle(Handle handle, ElementId id, double score) const;

 private:
  /// Index of the chunk that does / should contain `key`. Binary search
  /// over the contiguous last-key directory (no chunk pointer chasing).
  std::size_t FindChunk(const Key& key) const;

  std::unique_ptr<Chunk> NewChunk();
  void FreeChunk(Chunk* chunk);
  /// Reassigns Chunk::pos for chunks_[from..] after a directory shift.
  void Renumber(std::size_t from);

  /// slots_[h.slot] when alive and same incarnation, else nullptr.
  Chunk* ResolveHandle(Handle h) const;
  /// Chunk currently holding `id`, via the side table (counts one probe).
  Chunk* ChunkForId(ElementId id) const;
  /// In-chunk offset of `id` (linear scan over <= 64 contiguous keys).
  static std::uint32_t OffsetOfId(const Chunk* chunk, ElementId id);

  /// Locates the current key of one reposition: through the handle when it
  /// resolves, else through the side table. Returns the chunk and writes
  /// the offset of the element's key.
  Chunk* Locate(ElementId id, double old_score, const Handle* handle,
                std::uint32_t* offset) const;

  /// Inserts `key`, splitting if needed; returns the chunk that received
  /// the key. Does NOT touch the side table (callers decide).
  Chunk* InsertKey(const Key& key);
  /// Erases the key at `offset` of `chunk`, merging / dropping the chunk
  /// when it runs dry. Does NOT touch the side table for the erased id.
  void EraseKeyAt(Chunk* chunk, std::uint32_t offset);
  /// Erase by key value (directory search + EraseKeyAt).
  void EraseKey(const Key& key);

  /// Repositions the key at `offset` of `chunk` to `new_key`; stays inside
  /// the chunk (local memmoves, no directory search) whenever the new key
  /// lands in the same chunk — the common case for hub elements nudged
  /// every bucket. Returns the chunk that holds the key afterwards.
  Chunk* MoveAt(Chunk* chunk, std::uint32_t offset, const Key& new_key);

  /// Shared one-sweep merge of the sorted removal/insertion runs built by
  /// the two ApplyBatch flavors.
  void MergeBatch(BatchScratch* scratch);

  /// Merges chunk `idx` with a neighbor when the pair fits in one chunk.
  void MaybeMerge(std::size_t idx);

  const Chunk* FindChunkOfId(ElementId id) const;

  ChunkVector chunks_;
  /// chunk_last_[i] == chunks_[i]->keys[size - 1]; the search directory.
  std::vector<Key> chunk_last_;
  /// Stable chunk registry: slot id -> live chunk (nullptr when free).
  std::vector<Chunk*> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t next_gen_ = 0;
  /// Id side table: element -> chunk slot. Only the chunk is tracked — the
  /// in-chunk position is implied by the sorted keys — so in-chunk
  /// repositions never touch it; it changes only when an element changes
  /// chunks (insert, erase, cross-chunk move, split, merge).
  FlatHashMap<ElementId, std::uint32_t> chunk_of_;
  bool track_ids_ = true;
  std::size_t size_ = 0;
  mutable std::uint64_t probes_ = 0;
};

/// The z ranked lists plus the per-element membership record: the topic
/// support needed to erase expired elements without consulting the
/// (already pruned) window, and the element's t_e — stored ONCE here
/// instead of once per (element, topic) list entry, so a reposition
/// updates it with one write instead of z.
class RankedListIndex {
 public:
  /// `track_ids` is forwarded to every list (see RankedList): false for
  /// handle-carrying engines, true for the id-keyed reference paths.
  explicit RankedListIndex(std::size_t num_topics, bool track_ids = true);

  /// Inserts `id` into the list of every (topic, score) pair. When
  /// `handles_out` is non-null it receives the minted handle of each list
  /// entry, in `topic_scores` order.
  void Insert(ElementId id,
              const std::vector<std::pair<TopicId, double>>& topic_scores,
              Timestamp te, RankedList::Handle* handles_out = nullptr);

  /// Serial half of the parallel fresh-insert path: records the membership
  /// row (`topics` must be the element's exact support, in its topic-vector
  /// order) and the entry count WITHOUT touching any list. The per-topic
  /// InsertListEntry calls supply the list halves; Insert == membership +
  /// one InsertListEntry per support topic, in the same order.
  void InsertMembership(ElementId id, const TopicId* topics, std::size_t n,
                        Timestamp te);

  /// Inserts one (id, score) into one topic's list and returns the minted
  /// handle. Touches ONLY that list, so topic-disjoint callers (the
  /// maintainer's parallel list stage) run concurrently without locks; the
  /// membership row must already exist (InsertMembership).
  RankedList::Handle InsertListEntry(TopicId topic, ElementId id,
                                     double score);

  /// Repositions `id` in every list it belongs to. `topic_scores` must cover
  /// exactly the element's topic support (same topics as at insertion).
  void Update(ElementId id,
              const std::vector<std::pair<TopicId, double>>& topic_scores,
              Timestamp te);

  /// Update without the membership probe, for callers whose `topic_scores`
  /// provably mirror the insertion support (the ScoreCache reposition path:
  /// its entry was built from the same topic vector the membership was).
  /// Debug builds still verify.
  void UpdateTrusted(
      ElementId id,
      const std::vector<std::pair<TopicId, double>>& topic_scores,
      Timestamp te);

  /// Applies `n` repositions destined for one topic's list, under the same
  /// trusted contract as UpdateTrusted: every tuple's element must have
  /// `topic` in its insertion support. `merge` selects the one-pass
  /// RankedList::ApplyBatch sweep; false falls back to per-element Updates
  /// (profitable for lists with only a couple of pending repositions).
  void BatchReposition(TopicId topic, const RankedList::Tuple* updates,
                       std::size_t n, bool merge,
                       RankedList::BatchScratch* scratch);

  /// Handle-carrying flavor of BatchReposition: positions resolve through
  /// the carried handles and refreshed handles are written back.
  void BatchRepositionHandles(TopicId topic,
                              const RankedList::HandleUpdate* updates,
                              std::size_t n, bool merge,
                              RankedList::BatchScratch* scratch);

  /// Updates the element's t_e (one membership write; the lists are not
  /// touched). Used by the batched paths, whose per-topic runs carry only
  /// score changes.
  void TouchTime(ElementId id, Timestamp te);

  /// t_e of an indexed element.
  Timestamp TimeOf(ElementId id) const;

  /// Removes `id` from all its lists (id-keyed reference path).
  void Erase(ElementId id);

  /// Removes `id` using carried per-topic hints; `hints` must cover exactly
  /// the element's insertion support (debug-verified). Equivalent to
  /// EraseMembership + one EraseListEntry per hint, in hint order.
  void EraseWithHints(ElementId id, const RankedList::ErasureHint* hints,
                      std::size_t n);

  /// Serial half of the topic-sharded expiry path: drops `id`'s membership
  /// row and entry count WITHOUT touching any list (the mirror of
  /// InsertMembership). `topics` must be the element's exact insertion
  /// support in membership order (debug-verified). The per-topic
  /// EraseListEntry calls remove the list halves.
  void EraseMembership(ElementId id, const TopicId* topics, std::size_t n);

  /// Removes one carried (score, handle) entry from one topic's list.
  /// Touches ONLY that list, so topic-disjoint callers (the maintainer's
  /// parallel expiry stage) run concurrently without locks; the membership
  /// row is dropped separately (EraseMembership).
  void EraseListEntry(TopicId topic, ElementId id, double score,
                      RankedList::Handle handle);

  bool Contains(ElementId id) const { return membership_.contains(id); }

  const RankedList& list(TopicId topic) const;

  std::size_t num_topics() const { return lists_.size(); }

  /// Total tuples across all lists.
  std::size_t total_entries() const { return total_entries_; }

  /// Number of distinct indexed elements.
  std::size_t num_elements() const { return membership_.size(); }

  /// Sum of id_table_probes() over all lists (zero-probe contract checks).
  std::uint64_t id_table_probes() const;

 private:
  struct Membership {
    SmallVector<TopicId, 4> topics;
    Timestamp te = 0;
  };

  std::vector<RankedList> lists_;
  FlatHashMap<ElementId, Membership> membership_;
  std::size_t total_entries_ = 0;
};

}  // namespace ksir

#endif  // KSIR_CORE_RANKED_LIST_H_
