// Per-bucket touched-topic summary exported by IndexMaintainer::Apply.
//
// The maintainer already knows exactly which topics' rankings a bucket
// moved — every reposition run, fresh insert and expiry erase is keyed by
// topic. Instead of discarding that knowledge after the list apply, the
// maintainer surfaces it as an AdvanceSummary so downstream consumers
// (the subscription engine's inverted topic index, see src/subscribe/)
// can activate only standing queries whose support intersects the touched
// set.
//
// Soundness contract: a topic appears in `topics` whenever ANY element's
// delta_i(e) changed on that topic this bucket — including kPaper-mode
// referrer losses, whose list tuples stay stale-high by design but whose
// true scores still moved. A topic ABSENT from the summary therefore
// guarantees that every element's score on that topic is unchanged, which
// is what makes skipping subscriptions keyed on absent topics exact (see
// SubscriptionManager for the per-algorithm caveats).
//
// `max_movement` is observational: exact (max |new - old listed|, with
// inserts/erases contributing |listed|) on the incremental maintenance
// paths, best-effort on the kRecompute reference baseline (score
// magnitudes; 0 for erases). Activation decisions use topic membership
// only.
#ifndef KSIR_CORE_ADVANCE_SUMMARY_H_
#define KSIR_CORE_ADVANCE_SUMMARY_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ksir {

/// Touched-topic summary of one applied bucket.
struct AdvanceSummary {
  struct TopicTouch {
    TopicId topic;
    /// Max absolute listed-score movement seen on this topic this bucket.
    double max_movement;
  };

  /// Touched topics, sorted by topic id, deduplicated.
  std::vector<TopicTouch> topics;
  /// The engine's bucket epoch after this bucket was applied (0 straight
  /// out of the maintainer; KsirEngine stamps it).
  std::uint64_t epoch = 0;
};

}  // namespace ksir

#endif  // KSIR_CORE_ADVANCE_SUMMARY_H_
