#include "topic/btm.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace ksir {

std::vector<std::pair<WordId, WordId>> ExtractBiterms(
    const std::vector<WordId>& tokens, std::int32_t window) {
  KSIR_CHECK(window >= 1);
  std::vector<std::pair<WordId, WordId>> biterms;
  const std::size_t n = tokens.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t limit =
        std::min(n, i + 1 + static_cast<std::size_t>(window));
    for (std::size_t j = i + 1; j < limit; ++j) {
      WordId a = tokens[i];
      WordId b = tokens[j];
      if (a == b) continue;  // self-pairs carry no co-occurrence signal
      if (a > b) std::swap(a, b);
      biterms.emplace_back(a, b);
    }
  }
  return biterms;
}

BtmTrainer::BtmTrainer(BtmOptions options) : options_(options) {}

StatusOr<TopicModel> BtmTrainer::Train(const Corpus& corpus) const {
  const auto z = static_cast<std::size_t>(options_.num_topics);
  if (options_.num_topics <= 0) {
    return Status::InvalidArgument("num_topics must be positive");
  }
  if (corpus.size() == 0) {
    return Status::InvalidArgument("cannot train BTM on an empty corpus");
  }
  if (options_.iterations <= 0 || options_.burn_in < 0 ||
      options_.burn_in >= options_.iterations) {
    return Status::InvalidArgument("need 0 <= burn_in < iterations");
  }
  if (options_.beta <= 0.0) {
    return Status::InvalidArgument("beta must be positive");
  }
  const std::size_t m = corpus.vocabulary().size();
  if (m == 0) return Status::InvalidArgument("empty vocabulary");

  const double alpha = options_.alpha > 0.0
                           ? options_.alpha
                           : 50.0 / static_cast<double>(z);
  const double beta = options_.beta;

  // Collect the corpus biterm multiset.
  std::vector<std::pair<WordId, WordId>> biterms;
  for (const Document& doc : corpus.documents()) {
    const auto doc_biterms =
        ExtractBiterms(doc.ToTokenList(), options_.biterm_window);
    biterms.insert(biterms.end(), doc_biterms.begin(), doc_biterms.end());
  }
  if (biterms.empty()) {
    return Status::InvalidArgument(
        "corpus yields no biterms (documents too short?)");
  }

  std::vector<std::int64_t> topic_biterm_count(z, 0);
  std::vector<std::int64_t> topic_word_count(z * m, 0);
  std::vector<std::int32_t> assignment(biterms.size());

  Rng rng(options_.seed);
  for (std::size_t b = 0; b < biterms.size(); ++b) {
    const auto topic = static_cast<std::size_t>(rng.NextUint64(z));
    assignment[b] = static_cast<std::int32_t>(topic);
    ++topic_biterm_count[topic];
    ++topic_word_count[topic * m + static_cast<std::size_t>(biterms[b].first)];
    ++topic_word_count[topic * m +
                       static_cast<std::size_t>(biterms[b].second)];
  }

  std::vector<double> phi_sum(z * m, 0.0);
  std::vector<double> prior_sum(z, 0.0);
  std::int32_t samples = 0;

  std::vector<double> weights(z);
  const double v_beta = static_cast<double>(m) * beta;
  for (std::int32_t iter = 0; iter < options_.iterations; ++iter) {
    for (std::size_t b = 0; b < biterms.size(); ++b) {
      const auto w1 = static_cast<std::size_t>(biterms[b].first);
      const auto w2 = static_cast<std::size_t>(biterms[b].second);
      const auto old_topic = static_cast<std::size_t>(assignment[b]);
      --topic_biterm_count[old_topic];
      --topic_word_count[old_topic * m + w1];
      --topic_word_count[old_topic * m + w2];

      for (std::size_t i = 0; i < z; ++i) {
        const double nb = static_cast<double>(topic_biterm_count[i]);
        const double nw = static_cast<double>(topic_biterm_count[i]) * 2.0;
        weights[i] =
            (nb + alpha) *
            (static_cast<double>(topic_word_count[i * m + w1]) + beta) /
            (nw + v_beta) *
            (static_cast<double>(topic_word_count[i * m + w2]) + beta) /
            (nw + v_beta + 1.0);
      }
      const std::size_t new_topic = rng.NextCategorical(weights);
      assignment[b] = static_cast<std::int32_t>(new_topic);
      ++topic_biterm_count[new_topic];
      ++topic_word_count[new_topic * m + w1];
      ++topic_word_count[new_topic * m + w2];
    }
    if (iter >= options_.burn_in) {
      ++samples;
      for (std::size_t i = 0; i < z; ++i) {
        const double denom =
            static_cast<double>(topic_biterm_count[i]) * 2.0 + v_beta;
        for (std::size_t w = 0; w < m; ++w) {
          phi_sum[i * m + w] +=
              (static_cast<double>(topic_word_count[i * m + w]) + beta) /
              denom;
        }
        prior_sum[i] +=
            (static_cast<double>(topic_biterm_count[i]) + alpha) /
            (static_cast<double>(biterms.size()) +
             static_cast<double>(z) * alpha);
      }
    }
  }
  KSIR_CHECK(samples > 0);

  std::vector<std::vector<double>> phi(z, std::vector<double>(m));
  std::vector<double> prior(z);
  for (std::size_t i = 0; i < z; ++i) {
    for (std::size_t w = 0; w < m; ++w) {
      phi[i][w] = phi_sum[i * m + w] / static_cast<double>(samples);
    }
    prior[i] = prior_sum[i] / static_cast<double>(samples);
  }
  return TopicModel::FromMatrix(std::move(phi), std::move(prior));
}

}  // namespace ksir
