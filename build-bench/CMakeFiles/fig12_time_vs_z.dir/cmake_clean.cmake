file(REMOVE_RECURSE
  "CMakeFiles/fig12_time_vs_z.dir/bench/fig12_time_vs_z.cpp.o"
  "CMakeFiles/fig12_time_vs_z.dir/bench/fig12_time_vs_z.cpp.o.d"
  "fig12_time_vs_z"
  "fig12_time_vs_z.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_time_vs_z.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
