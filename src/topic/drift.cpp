#include "topic/drift.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ksir {

ConceptDriftMonitor::ConceptDriftMonitor(const TopicModel* model,
                                         Options options)
    : model_(model), options_(options) {
  KSIR_CHECK(model != nullptr);
  KSIR_CHECK(options_.window_size > 0);
  KSIR_CHECK(options_.drift_threshold >= 0.0 &&
             options_.drift_threshold <= 1.0);
  mass_.assign(model->num_topics(), 0.0);
}

void ConceptDriftMonitor::Observe(const SparseVector& topics) {
  for (const auto& [topic, prob] : topics.entries()) {
    if (topic >= 0 && static_cast<std::size_t>(topic) < mass_.size()) {
      mass_[static_cast<std::size_t>(topic)] += prob;
    }
  }
  recent_.push_back(topics);
  ++total_observed_;
  if (recent_.size() > options_.window_size) {
    for (const auto& [topic, prob] : recent_.front().entries()) {
      if (topic >= 0 && static_cast<std::size_t>(topic) < mass_.size()) {
        mass_[static_cast<std::size_t>(topic)] -= prob;
      }
    }
    recent_.pop_front();
  }
}

double ConceptDriftMonitor::CurrentDrift() const {
  if (recent_.empty()) return 0.0;
  double total = 0.0;
  for (double m : mass_) total += std::max(0.0, m);
  if (total <= 0.0) return 0.0;

  // Hellinger distance H(p, q) = sqrt(1 - sum_i sqrt(p_i q_i)).
  const std::vector<double>& prior = model_->topic_prior();
  double bc = 0.0;  // Bhattacharyya coefficient
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    const double q = std::max(0.0, mass_[i]) / total;
    bc += std::sqrt(prior[i] * q);
  }
  return std::sqrt(std::max(0.0, 1.0 - bc));
}

bool ConceptDriftMonitor::RetrainRecommended() const {
  if (total_observed_ < options_.min_observations) return false;
  return CurrentDrift() > options_.drift_threshold;
}

}  // namespace ksir
