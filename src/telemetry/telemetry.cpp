#include "telemetry/telemetry.h"

namespace ksir {

Status ValidateTelemetryConfig(const TelemetryConfig& config) {
  if (config.trace_sample_period < 1) {
    return Status::InvalidArgument("trace_sample_period must be >= 1");
  }
  if (config.trace_capacity < 1) {
    return Status::InvalidArgument("trace_capacity must be >= 1");
  }
  return Status::OK();
}

Telemetry::Telemetry(TelemetryConfig config)
    : config_(config),
      timing_enabled_(config.level != TelemetryLevel::kOff),
      tracer_(config.level == TelemetryLevel::kTracing,
              config.trace_sample_period < 1 ? 1 : config.trace_sample_period,
              config.trace_capacity) {}

}  // namespace ksir
