file(REMOVE_RECURSE
  "libksir_core.a"
)
