# Empty dependencies file for ksir_stream.
# This may be replaced when dependencies are built.
