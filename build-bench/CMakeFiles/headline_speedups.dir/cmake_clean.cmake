file(REMOVE_RECURSE
  "CMakeFiles/headline_speedups.dir/bench/headline_speedups.cpp.o"
  "CMakeFiles/headline_speedups.dir/bench/headline_speedups.cpp.o.d"
  "headline_speedups"
  "headline_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
