// Best-first merged traversal of the ranked lists for one query
// (the RL_i.first / RL_i.next operations of Section 4.1).
//
// The cursor walks the lists of the query's support topics in decreasing
// x_i * delta_i(e) order, maintains the upper bound
//   UB(x) = sum_i x_i * delta_i(e(i))
// over all unevaluated elements, and marks elements visited across lists so
// that each element is popped at most once per query (Section 4.1:
// "once a tuple for element e has been accessed in one ranked list, the
// remaining tuples for e in the other lists are marked as visited").
// Visited marking is query-local, so concurrent queries share the index.
//
// Keys are pulled from each list in blocks via RankedList::DrainTop — one
// contiguous copy per block instead of a chunk-iterator dereference per
// pop — and the per-pop merge then runs over the small per-list buffers.
// PopWhileAtLeast drains whole threshold rounds (the MTTD retrieval loop)
// in one call.
#ifndef KSIR_CORE_TRAVERSAL_H_
#define KSIR_CORE_TRAVERSAL_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_hash_map.h"
#include "common/sparse_vector.h"
#include "common/types.h"
#include "core/ranked_list.h"

namespace ksir {

/// Single-query read-only cursor over a RankedListIndex.
class RankedListCursor {
 public:
  /// `index` and `query` must outlive the cursor; the index must stay
  /// unmodified while the cursor lives.
  RankedListCursor(const RankedListIndex* index, const SparseVector* query);

  /// Upper bound on delta(e, x) of any element not yet popped. 0 when all
  /// lists are exhausted.
  double UpperBound() const;

  /// True when every list of the query support is exhausted.
  bool Exhausted() const;

  /// Pops the element at the head position with maximum x_i * delta_i and
  /// marks it visited everywhere. nullopt when exhausted.
  std::optional<ElementId> PopNext();

  /// Pops elements (appending to `out`, in pop order) for as long as the
  /// cursor is not exhausted and UpperBound() >= `min_value` — one bulk
  /// call per MTTD threshold round instead of a pop-and-recheck loop.
  /// Returns how many were popped.
  std::size_t PopWhileAtLeast(double min_value, std::vector<ElementId>* out);

  /// Elements popped so far.
  std::size_t num_retrieved() const { return num_retrieved_; }

 private:
  /// Keys buffered per DrainTop pull: two cache lines of keys amortize the
  /// chunk walk across pops without holding a stale view for long.
  static constexpr std::size_t kPullBlock = 32;

  struct ListPos {
    TopicId topic;
    double weight;  // x_i
    const RankedList* list;
    RankedList::const_iterator next;  // drain position (beyond the buffer)
    std::array<RankedList::Key, kPullBlock> buffer;
    std::uint32_t cursor = 0;
    std::uint32_t filled = 0;

    bool has_head() const { return cursor < filled; }
    const RankedList::Key& head() const { return buffer[cursor]; }
  };

  /// Advances `pos` past visited entries, refilling the buffer as needed;
  /// afterwards the head (if any) is unvisited and the head shadow arrays
  /// reflect the new head value.
  void AdvanceHead(ListPos* pos);

  std::vector<ListPos> lists_;
  /// Contiguous shadows of the per-list head values x_i * delta_i(head),
  /// kept in lockstep with lists_ by AdvanceHead so the per-pop scans run
  /// on the vectorized sum/argmax kernel instead of a pointer-chasing
  /// loop over ListPos records. head_ub_ holds 0.0 for exhausted lists
  /// (identity for the UB sum); head_max_ holds -1.0 (the scalar scan's
  /// "nothing selected" sentinel, below any real head value).
  std::vector<double> head_ub_;
  std::vector<double> head_max_;
  FlatHashSet<ElementId> visited_;
  std::size_t num_retrieved_ = 0;
};

}  // namespace ksir

#endif  // KSIR_CORE_TRAVERSAL_H_
