// Random social-stream generation shared by the equivalence tests
// (score_cache_test, subscription_test): a seeded topic model, random
// elements whose references reach far enough back to exercise archived
// (resurrection) and garbage-collected (dangling) targets, and a stateful
// bucket generator that owns the id counter and reference history.
#ifndef KSIR_TESTS_STREAM_GEN_H_
#define KSIR_TESTS_STREAM_GEN_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "stream/element.h"
#include "topic/topic_model.h"

namespace ksir {
namespace testing {

struct StreamGenConfig {
  int num_topics = 4;
  int vocab_size = 24;
  /// How far back a reference may reach into the id history (past the
  /// window, to hit archived and garbage-collected targets).
  std::size_t ref_reach = 12;
  /// Elements per bucket: uniform in [0, max_bucket_elements).
  std::size_t max_bucket_elements = 4;
};

inline TopicModel MakeModel(Rng* rng, const StreamGenConfig& config = {}) {
  std::vector<std::vector<double>> matrix(
      static_cast<std::size_t>(config.num_topics),
      std::vector<double>(static_cast<std::size_t>(config.vocab_size)));
  for (auto& row : matrix) {
    for (auto& p : row) p = rng->NextDouble() + 0.02;
  }
  return std::move(TopicModel::FromMatrix(std::move(matrix))).value();
}

inline SocialElement RandomElement(Rng* rng, ElementId id, Timestamp ts,
                                   const std::vector<ElementId>& history,
                                   const StreamGenConfig& config = {}) {
  SocialElement e;
  e.id = id;
  e.ts = ts;
  std::vector<WordId> words;
  const int len = 2 + static_cast<int>(rng->NextUint64(5));
  for (int j = 0; j < len; ++j) {
    words.push_back(static_cast<WordId>(
        rng->NextUint64(static_cast<std::uint64_t>(config.vocab_size))));
  }
  e.doc = Document::FromWordIds(words);
  e.topics = SparseVector::TruncateAndNormalize(
      rng->NextDirichlet(0.4, config.num_topics), 0.15);
  const int num_refs = static_cast<int>(rng->NextUint64(3));
  for (int r = 0; r < num_refs && !history.empty(); ++r) {
    const std::size_t back =
        rng->NextUint64(std::min(config.ref_reach, history.size()));
    const ElementId target = history[history.size() - 1 - back];
    if (!std::count(e.refs.begin(), e.refs.end(), target)) {
      e.refs.push_back(target);
    }
  }
  std::sort(e.refs.begin(), e.refs.end());
  return e;
}

/// Stateful generator: one rng + id counter + reference history, dealt out
/// bucket by bucket. Two engines fed the SAME StreamGen output see the
/// identical stream (copy the bucket before moving it into an engine).
class StreamGen {
 public:
  explicit StreamGen(std::uint64_t seed, StreamGenConfig config = {})
      : rng_(seed), config_(config) {}

  TopicModel MakeModel() { return testing::MakeModel(&rng_, config_); }

  /// Elements of the bucket ending at `bucket_end` (timestamps inside
  /// (bucket_end - 2, bucket_end]), sorted by ts.
  std::vector<SocialElement> NextBucket(Timestamp bucket_end) {
    std::vector<SocialElement> bucket;
    const auto count = rng_.NextUint64(config_.max_bucket_elements);
    for (std::uint64_t i = 0; i < count; ++i) {
      const Timestamp ts =
          bucket_end - 1 + static_cast<Timestamp>(rng_.NextUint64(2));
      bucket.push_back(
          RandomElement(&rng_, next_id_++, ts, history_, config_));
      history_.push_back(bucket.back().id);
    }
    std::sort(bucket.begin(), bucket.end(),
              [](const SocialElement& a, const SocialElement& b) {
                return a.ts < b.ts;
              });
    return bucket;
  }

  /// A random truncated-Dirichlet query vector over the model's topics.
  SparseVector RandomQueryVector(double alpha = 0.5, double cutoff = 0.1) {
    return SparseVector::TruncateAndNormalize(
        rng_.NextDirichlet(alpha, config_.num_topics), cutoff);
  }

  Rng& rng() { return rng_; }
  const StreamGenConfig& config() const { return config_; }

 private:
  Rng rng_;
  StreamGenConfig config_;
  ElementId next_id_ = 1;
  std::vector<ElementId> history_;
};

}  // namespace testing
}  // namespace ksir

#endif  // KSIR_TESTS_STREAM_GEN_H_
