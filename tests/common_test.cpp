// Unit tests for the common substrate: Status/StatusOr, RNG and samplers,
// math helpers, SparseVector.
#include <cmath>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/flat_hash_map.h"
#include "common/math.h"
#include "common/rng.h"
#include "common/small_vector.h"
#include "common/sparse_vector.h"
#include "common/status.h"
#include "common/timer.h"

namespace ksir {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BoundedUintRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(13), 13u);
  }
}

TEST(RngTest, BoundedUintCoversAllResidues) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.NextUint64(8)];
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(19);
  for (const double shape : {0.3, 1.0, 2.5, 10.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.NextGamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.05) << "shape " << shape;
  }
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(23);
  for (const double mean : {0.5, 3.0, 50.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.NextPoisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.05)) << mean;
  }
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(29);
  EXPECT_EQ(rng.NextPoisson(0.0), 0);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextCategorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalIgnoresZeroWeights) {
  Rng rng(37);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextCategorical(weights), 1u);
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(41);
  for (int i = 0; i < 50; ++i) {
    const auto v = rng.NextDirichlet(0.1, 10);
    EXPECT_NEAR(std::accumulate(v.begin(), v.end(), 0.0), 1.0, 1e-9);
    for (double p : v) EXPECT_GE(p, 0.0);
  }
}

TEST(RngTest, SparseDirichletConcentratesMass) {
  // Small total concentration puts most mass on very few coordinates.
  Rng rng(43);
  double top_mass = 0.0;
  double significant = 0.0;  // coordinates carrying >= 5% mass
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    auto v = rng.NextDirichlet(0.01, 50);  // total concentration 0.5
    top_mass += *std::max_element(v.begin(), v.end());
    for (double p : v) {
      if (p >= 0.05) significant += 1.0;
    }
  }
  EXPECT_GT(top_mass / trials, 0.7);
  EXPECT_LT(significant / trials, 2.5);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(47);
  Rng fork = a.Fork();
  // Forked stream differs from parent continuation.
  EXPECT_NE(a.NextUint64(), fork.NextUint64());
}

TEST(ZipfSamplerTest, RanksWithinDomain) {
  Rng rng(53);
  ZipfSampler zipf(100, 1.1);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t r = zipf.Sample(&rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
  }
}

TEST(ZipfSamplerTest, LowRanksDominate) {
  Rng rng(59);
  ZipfSampler zipf(1000, 1.2);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(&rng) <= 10) ++low;
  }
  // With s=1.2 the top-10 ranks carry well over a third of the mass.
  EXPECT_GT(low, n / 3);
}

TEST(ZipfSamplerTest, SingleElementDomain) {
  Rng rng(61);
  ZipfSampler zipf(1, 1.0);
  EXPECT_EQ(zipf.Sample(&rng), 1u);
}

TEST(ZipfSamplerTest, ExponentOneIsHandled) {
  Rng rng(67);
  ZipfSampler zipf(50, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t r = zipf.Sample(&rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 50u);
  }
}

TEST(AliasTableTest, MatchesWeights) {
  Rng rng(71);
  const std::vector<double> weights = {5.0, 1.0, 0.0, 4.0};
  AliasTable table(weights);
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(&rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.4, 0.02);
}

TEST(AliasTableTest, UniformWeights) {
  Rng rng(73);
  AliasTable table(std::vector<double>(7, 1.0));
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 14000; ++i) ++counts[table.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

// ------------------------------------------------------------------ Math --

TEST(MathTest, EntropyWeightZeroAtBounds) {
  EXPECT_DOUBLE_EQ(EntropyWeight(0.0), 0.0);
  EXPECT_NEAR(EntropyWeight(1.0), 0.0, 1e-12);
}

TEST(MathTest, EntropyWeightMatchesPaperExample31) {
  // sigma_2(w4, e2): p = p_2(w4) * p_2(e2) = 0.09 * 0.74 -> 0.18 (paper).
  EXPECT_NEAR(EntropyWeight(0.09 * 0.74), 0.18, 0.005);
  // sigma_2(w9, e2): 0.07 * 0.74 -> 0.15.
  EXPECT_NEAR(EntropyWeight(0.07 * 0.74), 0.15, 0.005);
  // sigma_2(w11, e2): 0.11 * 0.74 -> 0.20.
  EXPECT_NEAR(EntropyWeight(0.11 * 0.74), 0.20, 0.005);
  // sigma_2(w4, e7): 0.09 * 0.67 -> 0.17 and sigma_2(w11, e7) -> 0.19.
  EXPECT_NEAR(EntropyWeight(0.09 * 0.67), 0.17, 0.005);
  EXPECT_NEAR(EntropyWeight(0.11 * 0.67), 0.19, 0.005);
}

TEST(MathTest, EntropyWeightPeaksAtInverseE) {
  const double peak = EntropyWeight(1.0 / std::numbers::e);
  EXPECT_GT(peak, EntropyWeight(0.2));
  EXPECT_GT(peak, EntropyWeight(0.5));
  EXPECT_NEAR(peak, 1.0 / std::numbers::e, 1e-12);
}

TEST(MathTest, NormalizeInPlaceSumsToOne) {
  std::vector<double> v = {1.0, 2.0, 7.0};
  NormalizeInPlace(&v);
  EXPECT_NEAR(v[0], 0.1, 1e-12);
  EXPECT_NEAR(v[1], 0.2, 1e-12);
  EXPECT_NEAR(v[2], 0.7, 1e-12);
}

TEST(MathTest, NormalizeZeroVectorBecomesUniform) {
  std::vector<double> v = {0.0, 0.0};
  NormalizeInPlace(&v);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  EXPECT_DOUBLE_EQ(v[1], 0.5);
}

TEST(MathTest, CosineSimilarityBasics) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 1}, {2, 2}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);
}

// ---------------------------------------------------------- SparseVector --

TEST(SparseVectorTest, FromEntriesSortsAndMerges) {
  const auto v = SparseVector::FromEntries({{3, 0.2}, {1, 0.5}, {3, 0.1}});
  ASSERT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.entries()[0].first, 1);
  EXPECT_NEAR(v.entries()[0].second, 0.5, 1e-12);
  EXPECT_EQ(v.entries()[1].first, 3);
  EXPECT_NEAR(v.entries()[1].second, 0.3, 1e-12);
}

TEST(SparseVectorTest, FromEntriesDropsNonPositive) {
  const auto v = SparseVector::FromEntries({{0, 0.0}, {1, -0.5}, {2, 0.7}});
  ASSERT_EQ(v.nnz(), 1u);
  EXPECT_EQ(v.entries()[0].first, 2);
}

TEST(SparseVectorTest, GetReturnsZeroForMissing) {
  const auto v = SparseVector::FromEntries({{2, 0.4}});
  EXPECT_DOUBLE_EQ(v.Get(2), 0.4);
  EXPECT_DOUBLE_EQ(v.Get(0), 0.0);
  EXPECT_DOUBLE_EQ(v.Get(5), 0.0);
}

TEST(SparseVectorTest, FromDenseRespectsThreshold) {
  const auto v = SparseVector::FromDense({0.0, 0.3, 0.05, 0.65}, 0.1);
  ASSERT_EQ(v.nnz(), 2u);
  EXPECT_DOUBLE_EQ(v.Get(1), 0.3);
  EXPECT_DOUBLE_EQ(v.Get(3), 0.65);
}

TEST(SparseVectorTest, TruncateAndNormalizeRenormalizes) {
  const auto v = SparseVector::TruncateAndNormalize({0.6, 0.36, 0.04}, 0.05);
  ASSERT_EQ(v.nnz(), 2u);
  EXPECT_NEAR(v.Get(0), 0.625, 1e-12);
  EXPECT_NEAR(v.Get(1), 0.375, 1e-12);
  EXPECT_NEAR(v.Sum(), 1.0, 1e-12);
}

TEST(SparseVectorTest, TruncateKeepsArgmaxWhenAllBelowThreshold) {
  const auto v = SparseVector::TruncateAndNormalize({0.02, 0.03, 0.01}, 0.05);
  ASSERT_EQ(v.nnz(), 1u);
  EXPECT_NEAR(v.Get(1), 1.0, 1e-12);
}

TEST(SparseVectorTest, DotAndCosine) {
  const auto a = SparseVector::FromEntries({{0, 1.0}, {2, 2.0}});
  const auto b = SparseVector::FromEntries({{2, 3.0}, {5, 1.0}});
  EXPECT_NEAR(SparseVector::Dot(a, b), 6.0, 1e-12);
  const double expected =
      6.0 / (std::sqrt(5.0) * std::sqrt(10.0));
  EXPECT_NEAR(SparseVector::Cosine(a, b), expected, 1e-12);
}

TEST(SparseVectorTest, CosineOfDisjointSupportsIsZero) {
  const auto a = SparseVector::FromEntries({{0, 1.0}});
  const auto b = SparseVector::FromEntries({{1, 1.0}});
  EXPECT_DOUBLE_EQ(SparseVector::Cosine(a, b), 0.0);
  EXPECT_DOUBLE_EQ(SparseVector::Cosine(a, SparseVector()), 0.0);
}

TEST(SparseVectorTest, ToDenseRoundTrips) {
  const auto v = SparseVector::FromEntries({{1, 0.25}, {3, 0.75}});
  const auto dense = v.ToDense(5);
  ASSERT_EQ(dense.size(), 5u);
  EXPECT_DOUBLE_EQ(dense[1], 0.25);
  EXPECT_DOUBLE_EQ(dense[3], 0.75);
  EXPECT_DOUBLE_EQ(dense[0] + dense[2] + dense[4], 0.0);
}

TEST(SparseVectorTest, NormalizeL1) {
  auto v = SparseVector::FromEntries({{0, 2.0}, {1, 6.0}});
  v.NormalizeL1();
  EXPECT_NEAR(v.Get(0), 0.25, 1e-12);
  EXPECT_NEAR(v.Get(1), 0.75, 1e-12);
}

TEST(SparseVectorTest, DimensionBound) {
  EXPECT_EQ(SparseVector().DimensionBound(), 0);
  EXPECT_EQ(SparseVector::FromEntries({{4, 1.0}}).DimensionBound(), 5);
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
  EXPECT_GE(timer.ElapsedMicros(), timer.ElapsedMillis());
}

// ----------------------------------------------------------- FlatHashMap --

TEST(FlatHashMapTest, EmplaceFindContains) {
  FlatHashMap<std::int64_t, double> map;
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(1));
  EXPECT_EQ(map.find(1), map.end());

  auto [it, inserted] = map.emplace(1, 0.5);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->first, 1);
  EXPECT_DOUBLE_EQ(it->second, 0.5);
  EXPECT_TRUE(map.contains(1));
  EXPECT_EQ(map.size(), 1u);

  auto [it2, inserted2] = map.emplace(1, 9.0);
  EXPECT_FALSE(inserted2);
  EXPECT_DOUBLE_EQ(it2->second, 0.5);  // existing value untouched
}

TEST(FlatHashMapTest, TryEmplaceAndSubscript) {
  FlatHashMap<std::int32_t, std::vector<int>> map;
  map.try_emplace(3).first->second.push_back(7);
  map[3].push_back(8);
  map[4];  // default-constructs
  EXPECT_EQ(map[3], (std::vector<int>{7, 8}));
  EXPECT_TRUE(map[4].empty());
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatHashMapTest, EraseByKeyAndIterator) {
  FlatHashMap<std::int64_t, int> map;
  for (int i = 0; i < 10; ++i) map.emplace(i, i * i);
  EXPECT_EQ(map.erase(3), 1u);
  EXPECT_EQ(map.erase(3), 0u);
  map.erase(map.find(5));
  EXPECT_EQ(map.size(), 8u);
  EXPECT_FALSE(map.contains(3));
  EXPECT_FALSE(map.contains(5));
  EXPECT_TRUE(map.contains(9));
}

TEST(FlatHashMapTest, SurvivesRehashChurn) {
  FlatHashMap<std::int64_t, std::int64_t> map;
  std::unordered_map<std::int64_t, std::int64_t> reference;
  Rng rng(7);
  for (int round = 0; round < 5000; ++round) {
    const std::int64_t key = static_cast<std::int64_t>(rng.NextUint64(800));
    if (rng.NextDouble() < 0.6) {
      map[key] = round;
      reference[key] = round;
    } else {
      EXPECT_EQ(map.erase(key), reference.erase(key)) << "round " << round;
    }
  }
  EXPECT_EQ(map.size(), reference.size());
  std::size_t seen = 0;
  for (const auto& [key, value] : map) {
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end()) << "key " << key;
    EXPECT_EQ(value, it->second);
    ++seen;
  }
  EXPECT_EQ(seen, reference.size());
}

TEST(FlatHashMapTest, ReserveAvoidsRehashInvalidation) {
  FlatHashMap<std::int64_t, int> map;
  map.reserve(100);
  map.emplace(1, 10);
  const auto it = map.find(1);
  for (std::int64_t i = 2; i <= 100; ++i) map.emplace(i, 0);
  EXPECT_EQ(it->second, 10);  // no rehash below the reserved size
  EXPECT_EQ(map.size(), 100u);
}

TEST(FlatHashMapTest, MoveTransfersContents) {
  FlatHashMap<std::int64_t, std::string> map;
  map.emplace(1, std::string("one"));
  map.emplace(2, std::string("two"));
  FlatHashMap<std::int64_t, std::string> moved = std::move(map);
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved.find(1)->second, "one");
  EXPECT_TRUE(map.empty());  // NOLINT(bugprone-use-after-move)
}

// ----------------------------------------------------------- SmallVector --

TEST(SmallVectorTest, StaysInlineUpToN) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  v.push_back(4);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, EraseShiftsTail) {
  SmallVector<int, 2> v{1, 2, 3, 4, 5};
  v.erase(v.begin(), v.begin() + 2);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.front(), 3);
  v.erase(v.begin() + 1);
  EXPECT_EQ(v, (SmallVector<int, 2>{3, 5}));
}

TEST(SmallVectorTest, MoveStealsHeapKeepsInline) {
  SmallVector<std::string, 2> inline_v{"a", "b"};
  SmallVector<std::string, 2> from_inline = std::move(inline_v);
  EXPECT_EQ(from_inline.size(), 2u);
  EXPECT_EQ(from_inline[0], "a");

  SmallVector<std::string, 2> heap_v{"a", "b", "c", "d"};
  const std::string* data = heap_v.begin();
  SmallVector<std::string, 2> from_heap = std::move(heap_v);
  EXPECT_EQ(from_heap.begin(), data);  // buffer stolen, not copied
  EXPECT_EQ(from_heap.size(), 4u);
  EXPECT_TRUE(heap_v.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(SmallVectorTest, CopyAndClearReuse) {
  SmallVector<int, 2> v{1, 2, 3};
  SmallVector<int, 2> copy = v;
  EXPECT_EQ(copy, v);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(copy.size(), 3u);
  v.push_back(9);
  EXPECT_EQ(v[0], 9);
}

// ----------------------------------------------------------------- Arena --

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(64);
  auto* a = arena.AllocateArray<std::uint64_t>(4);
  auto* b = arena.AllocateArray<std::uint32_t>(3);
  auto* c = arena.AllocateArray<double>(8);  // spills into a second block
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(std::uint64_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(std::uint32_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(double), 0u);
  for (int i = 0; i < 4; ++i) a[i] = 11;
  for (int i = 0; i < 3; ++i) b[i] = 22;
  for (int i = 0; i < 8; ++i) c[i] = 3.5;
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a[i], 11u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(b[i], 22u);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(c[i], 3.5);
}

TEST(ArenaTest, ResetReusesRetainedBlocks) {
  Arena arena(128);
  void* first = arena.Allocate(100, 8);
  arena.Allocate(100, 8);  // forces a second block
  const std::size_t reserved = arena.bytes_reserved();
  arena.Reset();
  // Steady state: the same storage is handed out again, nothing new grows.
  EXPECT_EQ(arena.Allocate(100, 8), first);
  arena.Allocate(100, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedBlock) {
  Arena arena(32);
  auto* big = arena.AllocateArray<unsigned char>(1000);
  big[0] = 1;
  big[999] = 2;
  EXPECT_EQ(big[0], 1);
  EXPECT_EQ(big[999], 2);
  EXPECT_GE(arena.bytes_reserved(), 1000u);
}

TEST(ObjectPoolTest, DestroyedSlotsAreRecycled) {
  struct Tracked {
    explicit Tracked(int* counter) : counter(counter) { ++*counter; }
    ~Tracked() { --*counter; }
    int* counter;
    int payload[4] = {0, 0, 0, 0};
  };
  int live = 0;
  ObjectPool<Tracked> pool;
  Tracked* a = pool.Create(&live);
  EXPECT_EQ(live, 1);
  EXPECT_EQ(pool.live(), 1u);
  pool.Destroy(a);
  EXPECT_EQ(live, 0);
  // The freed slot is reused for the next Create.
  Tracked* b = pool.Create(&live);
  EXPECT_EQ(static_cast<void*>(b), static_cast<void*>(a));
  Tracked* c = pool.Create(&live);
  EXPECT_EQ(live, 2);
  EXPECT_EQ(pool.live(), 2u);
  pool.Destroy(b);
  pool.Destroy(c);
  EXPECT_EQ(live, 0);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(ObjectPoolTest, ManyObjectsWithNonTrivialState) {
  ObjectPool<std::vector<int>> pool;
  std::vector<std::vector<int>*> objects;
  for (int i = 0; i < 300; ++i) {
    objects.push_back(pool.Create(std::vector<int>(7, i)));
  }
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(objects[static_cast<std::size_t>(i)]->size(), 7u);
    EXPECT_EQ((*objects[static_cast<std::size_t>(i)])[0], i);
  }
  for (int i = 0; i < 300; i += 2) {
    pool.Destroy(objects[static_cast<std::size_t>(i)]);
  }
  // Recycled slots interleave with fresh arena slots.
  for (int i = 0; i < 200; ++i) {
    auto* v = pool.Create(std::vector<int>(3, -i));
    ASSERT_EQ(v->size(), 3u);
    objects.push_back(v);
  }
  for (int i = 1; i < 300; i += 2) {
    pool.Destroy(objects[static_cast<std::size_t>(i)]);
  }
  for (std::size_t i = 300; i < objects.size(); ++i) {
    pool.Destroy(objects[i]);
  }
  EXPECT_EQ(pool.live(), 0u);
}

}  // namespace
}  // namespace ksir
