// Unit tests for the evaluation substrate: coverage / influence metrics,
// Cohen's weighted kappa, and the proxy user study protocol.
#include <gtest/gtest.h>

#include "eval/kappa.h"
#include "eval/metrics.h"
#include "eval/user_study.h"
#include "paper_fixture.h"

namespace ksir {
namespace {

using ::ksir::testing::BalancedQueryVector;
using ::ksir::testing::MakePaperEngineAtT8;

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { fixture_ = MakePaperEngineAtT8(); }
  const ActiveWindow& window() const { return fixture_.engine->window(); }
  ksir::testing::PaperEngine fixture_;
};

// ---------------------------------------------------------------- Coverage --

TEST_F(MetricsTest, CoverageZeroForEmptySet) {
  EXPECT_DOUBLE_EQ(CoverageScore(window(), {}, BalancedQueryVector()), 0.0);
}

TEST_F(MetricsTest, CoverageGrowsWithBroaderSets) {
  const SparseVector x = BalancedQueryVector();
  const double one = CoverageScore(window(), {3}, x);
  const double two = CoverageScore(window(), {3, 1}, x);
  EXPECT_GT(one, 0.0);
  EXPECT_GT(two, one);  // adding a theta_2 element covers the other side
}

TEST_F(MetricsTest, CoverageIgnoresUnknownIds) {
  const SparseVector x = BalancedQueryVector();
  EXPECT_DOUBLE_EQ(CoverageScore(window(), {999}, x), 0.0);
  EXPECT_NEAR(CoverageScore(window(), {3, 999}, x),
              CoverageScore(window(), {3}, x), 1e-12);
}

TEST_F(MetricsTest, CoverageOfFullActiveSetCountsNothingTwice) {
  // When S = A_t, the sum over A_t \ S is empty.
  const SparseVector x = BalancedQueryVector();
  EXPECT_DOUBLE_EQ(
      CoverageScore(window(), {1, 2, 3, 5, 6, 7, 8}, x), 0.0);
}

// --------------------------------------------------------------- Influence --

TEST_F(MetricsTest, InfluenceCountsDistinctReferrers) {
  // I_8(e2) = {e7, e8}, I_8(e3) = {e6, e8}: union of referrers = 3 distinct.
  EXPECT_EQ(InfluenceCount(window(), {2}), 2);
  EXPECT_EQ(InfluenceCount(window(), {3}), 2);
  EXPECT_EQ(InfluenceCount(window(), {2, 3}), 3);
}

TEST_F(MetricsTest, InfluenceZeroForUnreferencedSet) {
  EXPECT_EQ(InfluenceCount(window(), {5, 7, 8}), 0);
}

TEST_F(MetricsTest, TopkInfluentialNormalizer) {
  // Referrer counts at t=8: e1:1, e2:2, e3:2, e6:1, others 0.
  EXPECT_EQ(TopkInfluentialCount(window(), 1), 2);
  EXPECT_EQ(TopkInfluentialCount(window(), 2), 4);
  EXPECT_EQ(TopkInfluentialCount(window(), 3), 5);
  EXPECT_EQ(TopkInfluentialCount(window(), 100), 6);
}

TEST_F(MetricsTest, NormalizedInfluenceInUnitRange) {
  const double norm = NormalizedInfluence(window(), {2, 3}, 2);
  EXPECT_NEAR(norm, 3.0 / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(NormalizedInfluence(window(), {}, 2), 0.0);
}

// ------------------------------------------------------------------- Kappa --

TEST(KappaTest, PerfectAgreementIsOne) {
  const std::vector<std::int32_t> a = {1, 2, 3, 4, 5, 3};
  auto kappa = CohenLinearWeightedKappa(a, a, 5);
  ASSERT_TRUE(kappa.ok());
  EXPECT_NEAR(*kappa, 1.0, 1e-12);
}

TEST(KappaTest, IndependentRatingsNearZero) {
  // A large synthetic sample of independent uniform ratings.
  std::vector<std::int32_t> a;
  std::vector<std::int32_t> b;
  std::uint64_t state = 1234;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::int32_t>((state >> 33) % 5) + 1;
  };
  for (int i = 0; i < 20000; ++i) {
    a.push_back(next());
    b.push_back(next());
  }
  auto kappa = CohenLinearWeightedKappa(a, b, 5);
  ASSERT_TRUE(kappa.ok());
  EXPECT_NEAR(*kappa, 0.0, 0.03);
}

TEST(KappaTest, LinearWeightsPenalizeNearMissesLess) {
  // Rater B is always one category off vs. two categories off.
  const std::vector<std::int32_t> truth = {1, 2, 3, 4, 1, 2, 3, 4};
  std::vector<std::int32_t> near = truth;
  std::vector<std::int32_t> far = truth;
  for (auto& v : near) v = std::min(5, v + 1);
  for (auto& v : far) v = std::min(5, v + 2);
  auto kappa_near = CohenLinearWeightedKappa(truth, near, 5);
  auto kappa_far = CohenLinearWeightedKappa(truth, far, 5);
  ASSERT_TRUE(kappa_near.ok());
  ASSERT_TRUE(kappa_far.ok());
  EXPECT_GT(*kappa_near, *kappa_far);
}

TEST(KappaTest, ValidatesInput) {
  EXPECT_FALSE(CohenLinearWeightedKappa({}, {}, 5).ok());
  EXPECT_FALSE(CohenLinearWeightedKappa({1, 2}, {1}, 5).ok());
  EXPECT_FALSE(CohenLinearWeightedKappa({0}, {1}, 5).ok());
  EXPECT_FALSE(CohenLinearWeightedKappa({6}, {1}, 5).ok());
  EXPECT_FALSE(CohenLinearWeightedKappa({1}, {1}, 1).ok());
}

TEST(KappaTest, ConstantIdenticalRatersPerfect) {
  const std::vector<std::int32_t> a = {3, 3, 3};
  auto kappa = CohenLinearWeightedKappa(a, a, 5);
  ASSERT_TRUE(kappa.ok());
  EXPECT_DOUBLE_EQ(*kappa, 1.0);
}

// -------------------------------------------------------------- User study --

TEST_F(MetricsTest, ProxyStudyRanksBetterSetsHigher) {
  // Pure theta_1 query. Method A: the theta_1 optimum {e3, e6} (relevant,
  // covering, referenced); Method B: theta_2-heavy {e1, e5} (irrelevant to
  // the query and weakly referenced).
  const SparseVector x = SparseVector::FromEntries({{0, 1.0}});
  std::vector<std::vector<StudyEntry>> queries;
  std::vector<SparseVector> vectors;
  for (int q = 0; q < 8; ++q) {
    queries.push_back({StudyEntry{"ksir", {3, 6}},
                       StudyEntry{"weak", {1, 5}}});
    vectors.push_back(x);
  }
  UserStudyOptions options;
  options.rater_noise = 0.1;
  auto study = RunProxyUserStudy(window(), queries, vectors, options);
  ASSERT_TRUE(study.ok());
  ASSERT_EQ(study->ratings.size(), 2u);
  EXPECT_GT(study->ratings[0].representativeness,
            study->ratings[1].representativeness);
  EXPECT_GT(study->ratings[0].impact, study->ratings[1].impact);
}

TEST_F(MetricsTest, ProxyStudyZeroNoiseGivesPerfectKappa) {
  std::vector<std::vector<StudyEntry>> queries = {
      {StudyEntry{"a", {1, 3}}, StudyEntry{"b", {5, 7}},
       StudyEntry{"c", {2, 6}}}};
  std::vector<SparseVector> vectors = {BalancedQueryVector()};
  UserStudyOptions options;
  options.rater_noise = 0.0;
  auto study = RunProxyUserStudy(window(), queries, vectors, options);
  ASSERT_TRUE(study.ok());
  EXPECT_DOUBLE_EQ(study->kappa_representativeness, 1.0);
  EXPECT_DOUBLE_EQ(study->kappa_impact, 1.0);
}

TEST_F(MetricsTest, ProxyStudyNoiseReducesAgreement) {
  std::vector<std::vector<StudyEntry>> queries;
  std::vector<SparseVector> vectors;
  for (int q = 0; q < 12; ++q) {
    queries.push_back({StudyEntry{"a", {1, 3}}, StudyEntry{"b", {5, 7}},
                       StudyEntry{"c", {2, 6}}, StudyEntry{"d", {8}}});
    vectors.push_back(BalancedQueryVector());
  }
  UserStudyOptions low;
  low.rater_noise = 0.05;
  UserStudyOptions high;
  high.rater_noise = 2.0;
  auto study_low = RunProxyUserStudy(window(), queries, vectors, low);
  auto study_high = RunProxyUserStudy(window(), queries, vectors, high);
  ASSERT_TRUE(study_low.ok());
  ASSERT_TRUE(study_high.ok());
  EXPECT_GT(study_low->kappa_representativeness,
            study_high->kappa_representativeness);
}

TEST_F(MetricsTest, ProxyStudyValidatesShape) {
  std::vector<SparseVector> vectors = {BalancedQueryVector()};
  EXPECT_FALSE(RunProxyUserStudy(window(), {}, {}, {}).ok());
  // Mismatched method lists across queries.
  std::vector<std::vector<StudyEntry>> bad = {
      {StudyEntry{"a", {1}}, StudyEntry{"b", {2}}},
      {StudyEntry{"a", {1}}, StudyEntry{"c", {2}}}};
  std::vector<SparseVector> two = {BalancedQueryVector(),
                                   BalancedQueryVector()};
  EXPECT_FALSE(RunProxyUserStudy(window(), bad, two, {}).ok());
  // Single method.
  std::vector<std::vector<StudyEntry>> single = {{StudyEntry{"a", {1}}}};
  EXPECT_FALSE(RunProxyUserStudy(window(), single, vectors, {}).ok());
  // Too few raters.
  std::vector<std::vector<StudyEntry>> ok_queries = {
      {StudyEntry{"a", {1}}, StudyEntry{"b", {2}}}};
  UserStudyOptions options;
  options.raters_per_query = 1;
  EXPECT_FALSE(RunProxyUserStudy(window(), ok_queries, vectors, options).ok());
}

TEST_F(MetricsTest, ProxyStudyRatingsWithinScale) {
  std::vector<std::vector<StudyEntry>> queries = {
      {StudyEntry{"a", {1, 3}}, StudyEntry{"b", {5, 7}},
       StudyEntry{"c", {2, 6}}, StudyEntry{"d", {8}},
       StudyEntry{"e", {5}}}};
  std::vector<SparseVector> vectors = {BalancedQueryVector()};
  auto study = RunProxyUserStudy(window(), queries, vectors, {});
  ASSERT_TRUE(study.ok());
  for (const MethodRating& rating : study->ratings) {
    EXPECT_GE(rating.representativeness, 1.0);
    EXPECT_LE(rating.representativeness, 5.0);
    EXPECT_GE(rating.impact, 1.0);
    EXPECT_LE(rating.impact, 5.0);
  }
}

}  // namespace
}  // namespace ksir
