// Runtime dispatch: pick the best compiled-in arm the CPU actually
// supports, once, at first use. The force-scalar flag is re-read on every
// ActiveTable() call so tests and parity benchmarks can flip arms
// mid-process.
#include "common/kernels/kernels.h"

#include <atomic>

namespace ksir {
namespace kernels {

#if defined(KSIR_KERNELS_X86)
const KernelTable& Sse2Table();
const KernelTable& Avx2Table();
#endif
#if defined(KSIR_KERNELS_NEON) && defined(__aarch64__)
const KernelTable& NeonTable();
#endif

namespace {

std::atomic<bool> g_force_scalar{false};

const KernelTable* SelectBest() {
#if defined(KSIR_KERNELS_X86)
  if (__builtin_cpu_supports("avx2")) return &Avx2Table();
  return &Sse2Table();  // SSE2 is the x86-64 baseline, always safe.
#elif defined(KSIR_KERNELS_NEON) && defined(__aarch64__)
  return &NeonTable();
#else
  return &ScalarTable();
#endif
}

}  // namespace

const KernelTable& ActiveTable() {
  static const KernelTable* const best = SelectBest();
  if (g_force_scalar.load(std::memory_order_relaxed)) return ScalarTable();
  return *best;
}

bool SetForceScalar(bool force) {
  return g_force_scalar.exchange(force, std::memory_order_relaxed);
}

bool SimdCompiledIn() {
#if defined(KSIR_KERNELS_X86) || \
    (defined(KSIR_KERNELS_NEON) && defined(__aarch64__))
  return true;
#else
  return false;
#endif
}

std::string CpuFeatureString() {
#if defined(__x86_64__) || defined(_M_X64)
  std::string features = "sse2";
  if (__builtin_cpu_supports("sse4.2")) features += " sse4.2";
  if (__builtin_cpu_supports("avx")) features += " avx";
  if (__builtin_cpu_supports("avx2")) features += " avx2";
  if (__builtin_cpu_supports("avx512f")) features += " avx512f";
  return features;
#elif defined(__aarch64__)
  return "neon";
#else
  return "none";
#endif
}

}  // namespace kernels
}  // namespace ksir
