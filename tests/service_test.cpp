// Tests of the sharded query service: worker pool, routing, fan-out/merge
// planning invariants (property-style, à la the EK-KOR2 suite), the
// epoch-keyed result cache, and the service façade.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "paper_fixture.h"
#include "service/result_cache.h"
#include "service/service.h"
#include "service/shard_router.h"
#include "service/sharded_ingestor.h"
#include "runtime/worker_pool.h"
#include "stream/generator.h"

namespace ksir {
namespace {

using ::ksir::testing::BalancedQueryVector;
using ::ksir::testing::PaperElements;
using ::ksir::testing::PaperEngineConfig;
using ::ksir::testing::PaperTopicModel;

// ---- worker pool -----------------------------------------------------------

TEST(WorkerPoolTest, RunsEverySubmittedTask) {
  WorkerPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count]() { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(WorkerPoolTest, TaskGroupWaitsOnlyOnOwnTasks) {
  WorkerPool pool(2);
  std::atomic<int> group_count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 16; ++i) {
    group.Submit([&group_count]() { group_count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(group_count.load(), 16);
}

TEST(WorkerPoolTest, ThrowingTaskDoesNotDeadlockWaitIdle) {
  // Regression: a throwing task used to skip the in_flight_ decrement,
  // leaving WaitIdle blocked forever.
  WorkerPool pool(2);
  pool.Submit([]() { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  // The pool stays usable and the exception slot is cleared.
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&count]() { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 8);
}

TEST(WorkerPoolTest, ThrowingGroupTaskPropagatesToGroupWaiter) {
  // Regression: a throwing group task used to skip the pending_ decrement,
  // leaving Wait blocked forever.
  WorkerPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  group.Submit([]() { throw std::runtime_error("group boom"); });
  for (int i = 0; i < 4; ++i) {
    group.Submit([&ran]() { ran.fetch_add(1); });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 4);
  // The group's exception belongs to the group: the pool-level barrier
  // must not see it, and a second Wait returns cleanly.
  pool.WaitIdle();
  group.Wait();
}

TEST(WorkerPoolTest, StealKeepsAffineSubmissionWorkConserving) {
  // SubmitTo homes tasks on one worker's queue; an idle neighbor must
  // steal them rather than sit out (affinity is a preference, never a
  // stall), and the steal counter must see the migration.
  Telemetry telemetry;
  WorkerPool pool(2, &telemetry);
  Counter* steals = telemetry.registry().GetCounter("ksir_pool_steals_total");
  const std::int64_t steals_before = steals->Value();
  std::atomic<int> count{0};
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  // Occupy one worker until the whole batch has run: whichever worker
  // holds the blocker, the other must cross queues for some of the work.
  pool.SubmitTo(0, [&] {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  });
  for (int i = 0; i < 8; ++i) {
    pool.SubmitTo(0, [&] {
      if (count.fetch_add(1) + 1 == 8) {
        std::lock_guard<std::mutex> lock(m);
        release = true;
        cv.notify_all();
      }
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 8);
  EXPECT_GE(steals->Value() - steals_before, 1);
  // Drained pool: every per-worker depth gauge (and the aggregate) is 0.
  EXPECT_EQ(
      telemetry.registry().GetGauge("ksir_pool_queue_depth")->Value(), 0);
  EXPECT_EQ(
      telemetry.registry().GetGauge("ksir_pool_queue_depth_worker_0")->Value(),
      0);
  EXPECT_EQ(
      telemetry.registry().GetGauge("ksir_pool_queue_depth_worker_1")->Value(),
      0);
}

TEST(WorkerPoolTest, PinningIsBestEffortAndAccounted) {
  // Every worker either got its CPU or was counted as a refused pin —
  // never a construction failure, and the pool works either way.
  Telemetry telemetry;
  WorkerPool pool(3, &telemetry, PoolOptions{/*pin_threads=*/true});
  const auto failures = static_cast<std::size_t>(
      telemetry.registry()
          .GetCounter("ksir_pool_pin_failures_total")
          ->Value());
  EXPECT_EQ(pool.pinned_threads() + failures, 3u);
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 32);
}

TEST(WorkerPoolTest, ParallelRunAffineExecutesEveryUnitExactlyOnce) {
  WorkerPool pool(3);
  constexpr std::size_t kUnits = 257;  // not a multiple of any stride
  const auto runs = std::make_unique<std::atomic<int>[]>(kUnits);
  ParallelRunAffine(&pool, 4, kUnits, [&](std::size_t p, std::size_t u) {
    EXPECT_LT(p, 4u);
    runs[u].fetch_add(1);
  });
  for (std::size_t u = 0; u < kUnits; ++u) {
    ASSERT_EQ(runs[u].load(), 1) << "unit " << u;
  }
  // More participants than units degrades to one participant per unit.
  std::atomic<int> count{0};
  ParallelRunAffine(&pool, 8, 3,
                    [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
  // A unit's exception reaches the caller and the pool stays usable.
  EXPECT_THROW(
      ParallelRunAffine(&pool, 4, 8,
                        [](std::size_t, std::size_t u) {
                          if (u == 5) throw std::runtime_error("affine boom");
                        }),
      std::runtime_error);
  pool.WaitIdle();
  ParallelRunAffine(&pool, 4, 4,
                    [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 7);
}

// ---- shard router ----------------------------------------------------------

TEST(ShardRouterTest, ReferenceChainsStayIntraShard) {
  ShardRouter router(4);
  // A root and a comment cascade hanging off it must share a shard.
  SocialElement root;
  root.id = 100;
  root.ts = 1;
  const std::size_t root_shard = router.Route(root);
  for (ElementId id = 101; id <= 120; ++id) {
    SocialElement reply;
    reply.id = id;
    reply.ts = id - 99;
    reply.refs = {id - 1};  // chain: each element refers to the previous
    EXPECT_EQ(router.Route(reply), root_shard) << id;
  }
  EXPECT_EQ(router.cross_shard_refs(), 0);
  EXPECT_EQ(router.tracked(), 21u);
}

TEST(ShardRouterTest, PruneDropsOldAssignments) {
  ShardRouter router(2);
  for (ElementId id = 0; id < 10; ++id) {
    SocialElement e;
    e.id = id;
    e.ts = id + 1;
    router.Route(e);
  }
  router.PruneOlderThan(5);  // drops ts 1..5
  EXPECT_EQ(router.tracked(), 5u);
  EXPECT_FALSE(router.Knows(2));
  EXPECT_TRUE(router.Knows(7));
}

TEST(ShardRouterTest, ReferralsExtendRoutingLifetime) {
  ShardRouter router(4);
  SocialElement root;
  root.id = 1;
  root.ts = 1;
  const std::size_t shard = router.Route(root);
  SocialElement reply;
  reply.id = 2;
  reply.ts = 100;
  reply.refs = {1};
  EXPECT_EQ(router.Route(reply), shard);
  // The root's own ts is long past the horizon, but the referral at t=100
  // keeps it routable — mirroring the window, where referrals keep an
  // element active.
  router.PruneOlderThan(50);
  EXPECT_TRUE(router.Knows(1));
  SocialElement late;
  late.id = 3;
  late.ts = 120;
  late.refs = {1};
  EXPECT_EQ(router.Route(late), shard);
  router.PruneOlderThan(130);  // nothing has touched the root since t=120
  EXPECT_FALSE(router.Knows(1));
}

TEST(ShardRouterTest, ForgetRollsBackAssignments) {
  ShardRouter router(2);
  SocialElement e;
  e.id = 5;
  e.ts = 10;
  router.Route(e);
  ASSERT_TRUE(router.Knows(5));
  router.Forget({5});
  EXPECT_FALSE(router.Knows(5));
  router.PruneOlderThan(100);  // stale queue entry must be skipped cleanly
  EXPECT_EQ(router.tracked(), 0u);
}

TEST(ShardRouterTest, BalanceCapSpreadsSingleComponentCascade) {
  // One root with every later element chaining to its predecessor: pure
  // chain affinity degenerates to one shard; the balance cap bounds the
  // tracked-load skew while keeping most chain hops intra-shard.
  constexpr std::size_t kShards = 4;
  constexpr double kCap = 2.0;
  ShardRouter uncapped(kShards);
  ShardRouter capped(kShards, kCap);
  for (ElementId id = 0; id < 400; ++id) {
    SocialElement e;
    e.id = id;
    e.ts = id + 1;
    if (id > 0) e.refs = {id - 1};
    uncapped.Route(e);
    capped.Route(e);
  }
  // Uncapped: the whole cascade collapses onto the root's shard.
  std::size_t uncapped_nonempty = 0;
  for (const std::size_t load : uncapped.shard_loads()) {
    if (load > 0) ++uncapped_nonempty;
  }
  EXPECT_EQ(uncapped_nonempty, 1u);
  EXPECT_EQ(uncapped.rebalanced(), 0);
  // Capped: every shard carries load and the skew respects the cap.
  const auto& loads = capped.shard_loads();
  const std::size_t max_load = *std::max_element(loads.begin(), loads.end());
  const std::size_t min_load = *std::min_element(loads.begin(), loads.end());
  EXPECT_GT(min_load, 0u);
  EXPECT_LE(static_cast<double>(max_load),
            kCap * (static_cast<double>(min_load) + 1.0));
  EXPECT_GT(capped.rebalanced(), 0);
  // The rebalanced placements cost exactly their chain edges.
  EXPECT_EQ(capped.cross_shard_refs(), capped.rebalanced());
}

TEST(ShardRouterTest, BalanceCapOffPreservesChainAffinity) {
  // max_imbalance = 0 must reproduce the pure chain-following behavior.
  ShardRouter router(4, 0.0);
  SocialElement root;
  root.id = 1;
  root.ts = 1;
  const std::size_t shard = router.Route(root);
  for (ElementId id = 2; id <= 200; ++id) {
    SocialElement reply;
    reply.id = id;
    reply.ts = id;
    reply.refs = {id - 1};
    EXPECT_EQ(router.Route(reply), shard);
  }
  EXPECT_EQ(router.cross_shard_refs(), 0);
}

TEST(ShardRouterTest, RootsSpreadAcrossShards) {
  ShardRouter router(4);
  std::vector<int> per_shard(4, 0);
  for (ElementId id = 0; id < 400; ++id) {
    SocialElement e;
    e.id = id;
    e.ts = id + 1;
    ++per_shard[router.Route(e)];
  }
  for (int count : per_shard) EXPECT_GT(count, 40);  // roughly balanced
}

// ---- sharded ingestor partial failure --------------------------------------

TEST(ShardedIngestorTest, PartialFailureRollsBackOnlyFailedShards) {
  // Regression: the rollback used to Forget the WHOLE bucket's routing
  // entries even though shards that accepted their sub-bucket keep the
  // elements — so the router reported Knows() == false for resident ids
  // and a retried bucket would re-ingest duplicates.
  auto model = PaperTopicModel();
  const EngineConfig config = PaperEngineConfig();
  KsirEngine shard0(config, &model);
  KsirEngine shard1(config, &model);
  ShardRouter router(2);
  WorkerPool pool(2);
  ShardedIngestor ingestor({&shard0, &shard1}, &router, &pool);

  // Find root ids that hash-route to shard 0 and to shard 1 (probe with a
  // throwaway router so the real one stays clean).
  ElementId id0 = -1;
  ElementId id1 = -1;
  {
    ShardRouter probe(2);
    for (ElementId id = 1; id < 64 && (id0 < 0 || id1 < 0); ++id) {
      SocialElement e;
      e.id = id;
      e.ts = 1;
      const std::size_t shard = probe.Route(e);
      if (shard == 0 && id0 < 0) id0 = id;
      if (shard == 1 && id1 < 0) id1 = id;
    }
    ASSERT_GE(id0, 0);
    ASSERT_GE(id1, 0);
  }
  const auto mk = [](ElementId id, Timestamp ts) {
    SocialElement e;
    e.id = id;
    e.ts = ts;
    e.doc = Document::FromWordIds({0});
    e.topics = SparseVector::FromEntries({{0, 1.0}});
    return e;
  };

  // Put shard 1 ahead of the shared clock: its next sub-bucket advance is
  // out of order and fails while shard 0 accepts its half.
  ASSERT_TRUE(shard1.AdvanceTo(100, {}).ok());
  const Status status = ingestor.AdvanceTo(6, {mk(id0, 5), mk(id1, 6)});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  // id0 landed on shard 0 and must still be routed (it IS resident there);
  // id1 was rejected with its shard and must be forgotten.
  EXPECT_TRUE(router.Knows(id0));  // fails on the pre-fix code
  EXPECT_FALSE(router.Knows(id1));
  EXPECT_TRUE(shard0.window().IsActive(id0));
  EXPECT_FALSE(shard1.window().IsActive(id1));

  // Re-sending the accepted element is rejected up front as a duplicate
  // (before anything is routed or any shard clock moves)...
  const Status duplicate = ingestor.AdvanceTo(200, {mk(id0, 199)});
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);

  // ...while a corrected bucket carrying only the failed shard's element
  // goes through once bucket_end clears every shard clock.
  ASSERT_TRUE(ingestor.AdvanceTo(200, {mk(id1, 199)}).ok());
  EXPECT_TRUE(router.Knows(id1));
  EXPECT_TRUE(shard1.window().IsActive(id1));
  EXPECT_EQ(ingestor.now(), 200);
}

// ---- engine additions used by the service ---------------------------------

TEST(EngineEpochTest, BucketEpochIsMonotone) {
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  EXPECT_EQ(engine.bucket_epoch(), 0u);
  ASSERT_TRUE(engine.Append(PaperElements()).ok());
  const std::uint64_t after = engine.bucket_epoch();
  EXPECT_GE(after, 8u);  // L = 1, eight buckets
  // A failed advance must not bump the epoch.
  EXPECT_FALSE(engine.AdvanceTo(1, {}).ok());
  EXPECT_EQ(engine.bucket_epoch(), after);
}

TEST(EngineEpochTest, OutOfOrderAndNoopBucketsReturnStatus) {
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  ASSERT_TRUE(engine.Append(PaperElements()).ok());
  const Status out_of_order = engine.AdvanceTo(3, {});
  EXPECT_EQ(out_of_order.code(), StatusCode::kInvalidArgument);
  const Status noop = engine.AdvanceTo(engine.now(), {});
  EXPECT_EQ(noop.code(), StatusCode::kFailedPrecondition);
}

TEST(EngineEpochTest, CreateValidatesConfig) {
  auto model = PaperTopicModel();
  EngineConfig bad = PaperEngineConfig();
  bad.bucket_length = 0;
  EXPECT_FALSE(KsirEngine::Create(bad, &model).ok());
  bad = PaperEngineConfig();
  bad.window_length = 0;
  EXPECT_FALSE(KsirEngine::Create(bad, &model).ok());
  // An absurd thread count must fail validation, not exhaust the process
  // spawning a pool inside the constructor.
  bad = PaperEngineConfig();
  bad.maintenance_threads = static_cast<std::size_t>(-1);
  EXPECT_FALSE(KsirEngine::Create(bad, &model).ok());
  EXPECT_FALSE(KsirEngine::Create(PaperEngineConfig(), nullptr).ok());
  auto engine = KsirEngine::Create(PaperEngineConfig(), &model);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE((*engine)->Append(PaperElements()).ok());
}

TEST(EngineEpochTest, ExportSnapshotsCarriesInfluenceSets) {
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  ASSERT_TRUE(engine.Append(PaperElements()).ok());
  // At t = 8: e3 is referenced by e8 (e4/e6's referrals expired with them).
  const auto snapshots = engine.ExportSnapshots({3, 9999});
  ASSERT_EQ(snapshots.size(), 1u);  // unknown ids are skipped
  EXPECT_EQ(snapshots[0].element.id, 3);
  ASSERT_EQ(snapshots[0].referrers.size(),
            engine.window().ReferrersOf(3).size());
}

// ---- service façade --------------------------------------------------------

ServiceConfig PaperServiceConfig(std::size_t num_shards) {
  ServiceConfig config;
  config.engine = PaperEngineConfig();
  config.num_shards = num_shards;
  return config;
}

TEST(ServiceTest, CreateRejectsBadConfig) {
  auto model = PaperTopicModel();
  ServiceConfig config = PaperServiceConfig(0);
  EXPECT_FALSE(KsirService::Create(config, &model).ok());
  config = PaperServiceConfig(2);
  config.cache_quantum = 0.0;
  EXPECT_FALSE(KsirService::Create(config, &model).ok());
  config = PaperServiceConfig(2);
  config.engine.bucket_length = -5;
  EXPECT_FALSE(KsirService::Create(config, &model).ok());
  config = PaperServiceConfig(2);
  config.engine.max_shard_imbalance = 0.5;  // must be 0 (off) or >= 1
  EXPECT_FALSE(KsirService::Create(config, &model).ok());
  EXPECT_FALSE(KsirService::Create(PaperServiceConfig(2), nullptr).ok());
}

TEST(ServiceTest, SingleShardMatchesPlainEngine) {
  auto model = PaperTopicModel();
  KsirEngine engine(PaperEngineConfig(), &model);
  ASSERT_TRUE(engine.Append(PaperElements()).ok());
  auto service = KsirService::Create(PaperServiceConfig(1), &model);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->Append(PaperElements()).ok());

  for (const Algorithm algorithm :
       {Algorithm::kMtts, Algorithm::kMttd, Algorithm::kCelf,
        Algorithm::kGreedy, Algorithm::kTopkRepresentative}) {
    for (const std::int32_t k : {1, 2, 4}) {
      KsirQuery query;
      query.k = k;
      query.x = BalancedQueryVector();
      query.epsilon = 0.2;
      query.algorithm = algorithm;
      const auto expected = engine.Query(query);
      const auto actual = (*service)->Query(query);
      ASSERT_TRUE(expected.ok() && actual.ok()) << AlgorithmName(algorithm);
      EXPECT_EQ(actual->element_ids, expected->element_ids)
          << AlgorithmName(algorithm) << " k=" << k;
      EXPECT_NEAR(actual->score, expected->score, 1e-9)
          << AlgorithmName(algorithm) << " k=" << k;
    }
  }
}

TEST(ServiceTest, OutOfOrderBucketRejectedWithoutDying) {
  auto model = PaperTopicModel();
  auto service = KsirService::Create(PaperServiceConfig(2), &model);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->Append(PaperElements()).ok());
  EXPECT_FALSE((*service)->AdvanceTo(2, {}).ok());
  EXPECT_FALSE((*service)->AdvanceTo((*service)->now(), {}).ok());
  // A re-ingested id is rejected before anything is routed.
  SocialElement duplicate = PaperElements()[0];
  duplicate.ts = (*service)->now() + 1;
  const Status status =
      (*service)->AdvanceTo(duplicate.ts, {std::move(duplicate)});
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
  // The service keeps serving afterwards.
  KsirQuery query;
  query.k = 2;
  query.x = BalancedQueryVector();
  EXPECT_TRUE((*service)->Query(query).ok());
}

// Shared fixture for the generator-workload properties: one synthetic
// stream fed identically to a single engine and a 4-shard service.
class PlannerPropertyTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNumShards = 4;
  static constexpr std::int32_t kK = 10;

  void SetUp() override {
    StreamProfile profile = RedditSimProfile();
    profile.num_elements = 3000;
    profile.num_topics = 8;
    profile.vocab_size = 600;
    auto generated = GenerateStream(profile);
    ASSERT_TRUE(generated.ok());
    stream_ = std::make_unique<GeneratedStream>(std::move(generated).value());

    config_.scoring.eta = 20.0;
    config_.window_length = 24 * 3600;
    config_.bucket_length = 15 * 60;

    engine_ = std::make_unique<KsirEngine>(config_, &stream_->model);
    ASSERT_TRUE(engine_->Append(stream_->elements).ok());

    ServiceConfig service_config;
    service_config.engine = config_;
    service_config.num_shards = kNumShards;
    auto service = KsirService::Create(service_config, &stream_->model);
    ASSERT_TRUE(service.ok());
    service_ = std::move(service).value();
    ASSERT_TRUE(service_->Append(stream_->elements).ok());
  }

  /// A deterministic pool of sparse query vectors over the topic space.
  std::vector<SparseVector> QueryPool(std::size_t count) const {
    std::vector<SparseVector> pool;
    const auto z = static_cast<std::int32_t>(stream_->model.num_topics());
    for (std::size_t i = 0; i < count; ++i) {
      const auto a = static_cast<std::int32_t>(i) % z;
      const auto b = static_cast<std::int32_t>(3 * i + 1) % z;
      if (a == b) {
        pool.push_back(SparseVector::FromEntries({{a, 1.0}}));
      } else {
        pool.push_back(SparseVector::FromEntries({{a, 0.6}, {b, 0.4}}));
      }
    }
    return pool;
  }

  EngineConfig config_;
  std::unique_ptr<GeneratedStream> stream_;
  std::unique_ptr<KsirEngine> engine_;
  std::unique_ptr<KsirService> service_;
};

TEST_F(PlannerPropertyTest, MergeInvariantsHoldOnGeneratorWorkload) {
  const auto pool = QueryPool(15);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    KsirQuery query;
    query.k = kK;
    query.x = pool[i];
    query.algorithm = Algorithm::kCelf;

    const auto service_result = service_->Query(query);
    ASSERT_TRUE(service_result.ok()) << "query " << i;

    // |S| <= k, no duplicates.
    EXPECT_LE(service_result->element_ids.size(),
              static_cast<std::size_t>(kK));
    auto ids = service_result->element_ids;
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());

    // Merged score is never below any single shard's score.
    for (std::size_t s = 0; s < service_->num_shards(); ++s) {
      const auto shard_result = service_->shard(s).Query(query);
      ASSERT_TRUE(shard_result.ok());
      EXPECT_GE(service_result->score, shard_result->score - 1e-9)
          << "query " << i << " shard " << s;
    }

    // Acceptance bar: >= 0.95x the single-engine CELF score.
    const auto engine_result = engine_->Query(query);
    ASSERT_TRUE(engine_result.ok());
    EXPECT_GE(service_result->score, 0.95 * engine_result->score)
        << "query " << i << ": sharded " << service_result->score
        << " vs single " << engine_result->score;
  }
}

TEST_F(PlannerPropertyTest, ShardsPartitionTheActiveStream) {
  // Every ingested element landed on exactly one shard, and the shard
  // active sets are disjoint by id.
  std::vector<ElementId> all_ids;
  for (std::size_t s = 0; s < service_->num_shards(); ++s) {
    const auto ids = service_->shard(s).window().ActiveIds();
    all_ids.insert(all_ids.end(), ids.begin(), ids.end());
  }
  std::sort(all_ids.begin(), all_ids.end());
  EXPECT_EQ(std::adjacent_find(all_ids.begin(), all_ids.end()),
            all_ids.end());
  const auto stats = service_->stats();
  EXPECT_EQ(stats.ingestion.elements_ingested,
            static_cast<std::int64_t>(stream_->elements.size()));
  EXPECT_GT(stats.epoch, 0u);
}

TEST_F(PlannerPropertyTest, CacheHitEqualsCacheMissWithinEpoch) {
  KsirQuery query;
  query.k = kK;
  query.x = QueryPool(1)[0];
  query.algorithm = Algorithm::kCelf;

  const auto before = service_->stats().cache;
  const auto miss = service_->Query(query);   // computes and fills
  const auto hit = service_->Query(query);    // must be served by the cache
  ASSERT_TRUE(miss.ok() && hit.ok());
  const auto after = service_->stats().cache;
  EXPECT_GE(after.misses, before.misses + 1);
  EXPECT_GE(after.hits, before.hits + 1);
  EXPECT_EQ(hit->element_ids, miss->element_ids);
  EXPECT_DOUBLE_EQ(hit->score, miss->score);
}

TEST_F(PlannerPropertyTest, AdvanceInvalidatesCachedResults) {
  KsirQuery query;
  query.k = kK;
  query.x = QueryPool(2)[1];
  query.algorithm = Algorithm::kCelf;
  ASSERT_TRUE(service_->Query(query).ok());

  const std::uint64_t epoch_before = service_->epoch();
  const Timestamp next_bucket = service_->now() + config_.bucket_length;
  ASSERT_TRUE(service_->AdvanceTo(next_bucket, {}).ok());
  EXPECT_EQ(service_->epoch(), epoch_before + 1);
  const auto stats = service_->stats();
  EXPECT_GT(stats.cache.invalidated, 0);

  // The re-computed answer reflects the slid window (and is re-cached).
  const auto hits_before = service_->stats().cache.hits;
  ASSERT_TRUE(service_->Query(query).ok());
  ASSERT_TRUE(service_->Query(query).ok());
  EXPECT_GE(service_->stats().cache.hits, hits_before + 1);
}

TEST_F(PlannerPropertyTest, StandingQueriesRunAfterEachBucket) {
  KsirQuery query;
  query.k = 5;
  query.x = QueryPool(3)[2];
  query.algorithm = Algorithm::kCelf;
  std::vector<bool> changes;
  service_->standing_queries().Register(
      query, [&](std::int64_t, const QueryResult&, bool changed) {
        changes.push_back(changed);
      });

  Timestamp next = service_->now() + config_.bucket_length;
  ASSERT_TRUE(service_->AdvanceTo(next, {}).ok());
  next += config_.bucket_length;
  ASSERT_TRUE(service_->AdvanceTo(next, {}).ok());
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_TRUE(changes[0]);  // first evaluation always reports a change
}

// ---- balance-aware routing at the service seam -----------------------------

TEST(ServiceBalanceTest, CappedRoutingBoundsSkewAndKeepsMergeQualityBar) {
  // A single-component cascade stream (every element references recent
  // predecessors) collapses onto one shard under pure chain affinity. With
  // the cap enabled the per-shard load spread must respect the bound AND
  // the fan-out/merge CELF answer must stay within the 0.95x acceptance
  // bar of a single engine — the trade the cap makes is a few cross-shard
  // edges, not merge quality.
  constexpr std::size_t kShards = 4;
  constexpr double kCap = 2.0;
  constexpr int kTopics = 4;
  constexpr int kVocab = 32;
  Rng rng(99);
  std::vector<std::vector<double>> matrix(kTopics,
                                          std::vector<double>(kVocab));
  for (auto& row : matrix) {
    for (auto& p : row) p = rng.NextDouble() + 0.05;
  }
  TopicModel model = std::move(TopicModel::FromMatrix(std::move(matrix))).value();

  std::vector<SocialElement> elements;
  for (ElementId id = 0; id < 1200; ++id) {
    SocialElement e;
    e.id = id;
    e.ts = id + 1;
    std::vector<WordId> words;
    for (int w = 0; w < 6; ++w) {
      words.push_back(static_cast<WordId>(rng.NextUint64(kVocab)));
    }
    e.doc = Document::FromWordIds(words);
    e.topics = SparseVector::TruncateAndNormalize(
        rng.NextDirichlet(0.5, kTopics), 0.1);
    const int num_refs = 1 + static_cast<int>(rng.NextUint64(3));
    for (int r = 0; r < num_refs && id > 0; ++r) {
      const ElementId target =
          id - 1 - static_cast<ElementId>(rng.NextUint64(
                       std::min<std::uint64_t>(8, id)));
      if (!std::count(e.refs.begin(), e.refs.end(), target)) {
        e.refs.push_back(target);
      }
    }
    std::sort(e.refs.begin(), e.refs.end());
    elements.push_back(std::move(e));
  }

  EngineConfig engine_config;
  engine_config.scoring.eta = 4.0;
  engine_config.window_length = 600;
  engine_config.bucket_length = 60;
  KsirEngine single(engine_config, &model);
  ASSERT_TRUE(single.Append(elements).ok());

  ServiceConfig capped_config;
  capped_config.engine = engine_config;
  capped_config.engine.max_shard_imbalance = kCap;
  capped_config.num_shards = kShards;
  auto capped = KsirService::Create(capped_config, &model);
  ASSERT_TRUE(capped.ok());
  ASSERT_TRUE((*capped)->Append(elements).ok());

  // Routing actually exercised the cap, and every shard carries recent
  // load. A roaming cascade is the cap's worst case — the chain re-anchors
  // on whatever shard it was pushed to, so placements come in runs and old
  // runs decay unevenly. The cap bounds every admission AND (decay-aware
  // pressure) tightens once the observed spread exceeds the bound, so the
  // end-of-stream skew must now hold the configured bound itself (10%
  // measurement slack), not the former 30% drift allowance.
  const ShardRouter& router = (*capped)->router();
  EXPECT_GT(router.rebalanced(), 0);
  const auto& loads = router.recent_loads();
  EXPECT_GT(*std::min_element(loads.begin(), loads.end()), 0u);
  std::size_t max_active = 0;
  std::size_t min_active = static_cast<std::size_t>(-1);
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::size_t active = (*capped)->shard(s).window().num_active();
    max_active = std::max(max_active, active);
    min_active = std::min(min_active, active);
  }
  ASSERT_GT(min_active, 0u);
  EXPECT_LE(static_cast<double>(max_active) /
                static_cast<double>(min_active),
            kCap * 1.1);

  // Merge-quality acceptance bar against the single engine.
  for (int q = 0; q < 6; ++q) {
    KsirQuery query;
    query.k = 8;
    query.algorithm = Algorithm::kCelf;
    const auto a = static_cast<TopicId>(q % kTopics);
    const auto b = static_cast<TopicId>((q + 1) % kTopics);
    query.x = a == b ? SparseVector::FromEntries({{a, 1.0}})
                     : SparseVector::FromEntries({{a, 0.6}, {b, 0.4}});
    const auto expected = single.Query(query);
    const auto actual = (*capped)->Query(query);
    ASSERT_TRUE(expected.ok() && actual.ok()) << "query " << q;
    EXPECT_GE(actual->score, 0.95 * expected->score)
        << "query " << q << ": capped sharded " << actual->score
        << " vs single " << expected->score;
  }
}

// ---- parallel bucket maintenance at the service/runtime seam ---------------

/// A churny single-cascade stream: references reach far enough back to
/// drive expiry, referrer loss, resurrection and dangling references
/// through the maintainer every few buckets.
std::vector<SocialElement> ChurnStream(int count, int num_topics,
                                       int vocab, Rng* rng) {
  std::vector<SocialElement> elements;
  for (ElementId id = 0; id < count; ++id) {
    SocialElement e;
    e.id = id;
    e.ts = id + 1;
    std::vector<WordId> words;
    for (int w = 0; w < 5; ++w) {
      words.push_back(static_cast<WordId>(rng->NextUint64(vocab)));
    }
    e.doc = Document::FromWordIds(words);
    e.topics = SparseVector::TruncateAndNormalize(
        rng->NextDirichlet(0.5, num_topics), 0.1);
    const int num_refs = static_cast<int>(rng->NextUint64(4));
    for (int r = 0; r < num_refs && id > 0; ++r) {
      const ElementId target =
          id - 1 - static_cast<ElementId>(rng->NextUint64(
                       std::min<std::uint64_t>(240, id)));
      if (!std::count(e.refs.begin(), e.refs.end(), target)) {
        e.refs.push_back(target);
      }
    }
    std::sort(e.refs.begin(), e.refs.end());
    elements.push_back(std::move(e));
  }
  return elements;
}

TEST(ParallelMaintenanceTest, ChurnStreamMatchesSerialUnderConcurrentQueries) {
  // TSan-covered churn test of the staged parallel apply: a parallel
  // engine ingests an expiry/resurrection-heavy stream while a reader
  // thread hammers queries (shared lock vs. the exclusive advance that
  // fans out on the pool). The final index and query results must be
  // bitwise identical to a serial handle engine fed the same stream.
  constexpr int kTopics = 6;
  Rng rng(1234);
  std::vector<std::vector<double>> matrix(kTopics, std::vector<double>(48));
  for (auto& row : matrix) {
    for (auto& p : row) p = rng.NextDouble() + 0.05;
  }
  TopicModel model =
      std::move(TopicModel::FromMatrix(std::move(matrix))).value();
  const std::vector<SocialElement> elements =
      ChurnStream(1500, kTopics, 48, &rng);

  EngineConfig serial_config;
  serial_config.scoring.eta = 4.0;
  serial_config.window_length = 100;
  serial_config.bucket_length = 10;
  serial_config.archive_retention = 200;  // > T: resurrection territory
  EngineConfig parallel_config = serial_config;
  parallel_config.maintenance_threads = 4;

  KsirEngine serial(serial_config, &model);
  ASSERT_TRUE(serial.Append(elements).ok());

  KsirEngine parallel(parallel_config, &model);
  ASSERT_TRUE(parallel.maintenance_stats().buckets_processed == 0);
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    KsirQuery query;
    query.k = 3;
    query.epsilon = 0.2;
    query.algorithm = Algorithm::kMttd;
    query.x = SparseVector::FromEntries({{0, 0.5}, {1, 0.5}});
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(parallel.Query(query).ok());
    }
  });
  ASSERT_TRUE(parallel.Append(elements).ok());
  stop.store(true, std::memory_order_release);
  reader.join();

  ASSERT_EQ(parallel.index().num_elements(), serial.index().num_elements());
  ASSERT_EQ(parallel.index().total_entries(),
            serial.index().total_entries());
  for (TopicId topic = 0; topic < kTopics; ++topic) {
    const auto& plist = parallel.index().list(topic);
    const auto& slist = serial.index().list(topic);
    ASSERT_EQ(plist.size(), slist.size()) << "topic " << topic;
    auto sit = slist.begin();
    for (const auto& key : plist) {
      ASSERT_EQ(key.id, sit->id) << "topic " << topic;
      ASSERT_EQ(key.score, sit->score) << "topic " << topic;
      ++sit;
    }
  }
  for (const Algorithm algorithm :
       {Algorithm::kMtts, Algorithm::kMttd, Algorithm::kCelf}) {
    KsirQuery query;
    query.k = 5;
    query.epsilon = 0.2;
    query.algorithm = algorithm;
    query.x = SparseVector::FromEntries({{1, 0.6}, {2, 0.4}});
    const auto expected = serial.Query(query);
    const auto actual = parallel.Query(query);
    ASSERT_TRUE(expected.ok() && actual.ok());
    EXPECT_EQ(actual->element_ids, expected->element_ids)
        << AlgorithmName(algorithm);
    EXPECT_EQ(actual->score, expected->score) << AlgorithmName(algorithm);
  }
}

TEST(ParallelMaintenanceTest, EngineAndServiceShareOneProcessPool) {
  // The runtime factory's pool is the process-wide seam: a standalone
  // parallel engine and a sharded service (its shard engines running
  // parallel maintenance too) share ONE pool, no per-shard or per-engine
  // pools are spawned, and nested fan-out (shard advance tasks fanning
  // their maintenance stages out on the same pool) completes without
  // deadlock thanks to ParallelRun's caller participation.
  constexpr int kTopics = 4;
  Rng rng(77);
  std::vector<std::vector<double>> matrix(kTopics, std::vector<double>(32));
  for (auto& row : matrix) {
    for (auto& p : row) p = rng.NextDouble() + 0.05;
  }
  TopicModel model =
      std::move(TopicModel::FromMatrix(std::move(matrix))).value();
  const std::vector<SocialElement> elements =
      ChurnStream(600, kTopics, 32, &rng);

  const std::unique_ptr<WorkerPool> pool = MakeWorkerPool(3);
  ASSERT_EQ(pool->num_threads(), 3u);

  EngineConfig engine_config;
  engine_config.scoring.eta = 4.0;
  engine_config.window_length = 100;
  engine_config.bucket_length = 10;
  engine_config.maintenance_threads = 4;
  ASSERT_TRUE(UsesParallelMaintenance(engine_config));

  KsirEngine serial_reference(
      [&] {
        EngineConfig config = engine_config;
        config.maintenance_threads = 0;
        return config;
      }(),
      &model);
  ASSERT_TRUE(serial_reference.Append(elements).ok());

  KsirEngine shared_engine(engine_config, &model, pool.get());
  ASSERT_TRUE(shared_engine.Append(elements).ok());

  ServiceConfig service_config;
  service_config.engine = engine_config;
  service_config.num_shards = 2;
  service_config.shared_pool = pool.get();
  auto service = KsirService::Create(service_config, &model);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->Append(elements).ok());

  // The pool was never grown or replaced: both consumers ran on the same
  // three threads (plus their callers).
  EXPECT_EQ(pool->num_threads(), 3u);

  // The pool-sharing engine is still bitwise the serial engine, and the
  // service answers sanely off the same pool.
  KsirQuery query;
  query.k = 4;
  query.epsilon = 0.2;
  query.algorithm = Algorithm::kCelf;
  query.x = SparseVector::FromEntries({{0, 0.7}, {3, 0.3}});
  const auto expected = serial_reference.Query(query);
  const auto actual = shared_engine.Query(query);
  ASSERT_TRUE(expected.ok() && actual.ok());
  EXPECT_EQ(actual->element_ids, expected->element_ids);
  EXPECT_EQ(actual->score, expected->score);
  const auto service_result = (*service)->Query(query);
  ASSERT_TRUE(service_result.ok());
  EXPECT_GE(service_result->score, 0.0);
}

TEST(ParallelMaintenanceTest, PinnedServiceChurnWithRebalancingMatchesSerial) {
  // TSan-covered end-to-end churn of the shard-affine runtime: a sharded
  // service with CPU-pinned workers, four-way parallel maintenance (the
  // topic-sharded expiry / gather / list-apply stages) and router
  // rebalancing ingests an expiry + resurrection heavy stream while a
  // reader hammers queries. Routing depends only on the element stream,
  // so the shard engines — and therefore every query — must land exactly
  // where a serial-maintenance service with the same config lands.
  constexpr int kTopics = 6;
  Rng rng(4321);
  std::vector<std::vector<double>> matrix(kTopics, std::vector<double>(48));
  for (auto& row : matrix) {
    for (auto& p : row) p = rng.NextDouble() + 0.05;
  }
  TopicModel model =
      std::move(TopicModel::FromMatrix(std::move(matrix))).value();
  const std::vector<SocialElement> elements =
      ChurnStream(1200, kTopics, 48, &rng);

  ServiceConfig base;
  base.engine.scoring.eta = 4.0;
  base.engine.window_length = 100;
  base.engine.bucket_length = 10;
  base.engine.archive_retention = 200;  // > T: resurrection territory
  base.engine.max_shard_imbalance = 1.2;
  base.num_shards = 2;

  ServiceConfig pinned_config = base;
  pinned_config.engine.maintenance_threads = 4;
  pinned_config.pin_workers = true;

  auto serial = KsirService::Create(base, &model);
  auto pinned = KsirService::Create(pinned_config, &model);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE((*serial)->Append(elements).ok());

  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    KsirQuery query;
    query.k = 3;
    query.epsilon = 0.2;
    query.algorithm = Algorithm::kMttd;
    query.x = SparseVector::FromEntries({{0, 0.5}, {2, 0.5}});
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE((*pinned)->Query(query).ok());
    }
  });
  ASSERT_TRUE((*pinned)->Append(elements).ok());
  stop.store(true, std::memory_order_release);
  reader.join();

  for (const Algorithm algorithm :
       {Algorithm::kMtts, Algorithm::kMttd, Algorithm::kCelf}) {
    KsirQuery query;
    query.k = 5;
    query.epsilon = 0.2;
    query.algorithm = algorithm;
    query.x = SparseVector::FromEntries({{1, 0.6}, {4, 0.4}});
    const auto expected = (*serial)->Query(query);
    const auto actual = (*pinned)->Query(query);
    ASSERT_TRUE(expected.ok() && actual.ok());
    EXPECT_EQ(actual->element_ids, expected->element_ids)
        << AlgorithmName(algorithm);
    EXPECT_EQ(actual->score, expected->score) << AlgorithmName(algorithm);
  }

  // Pool observability of the pinned run: tasks flowed, and every worker
  // either got its CPU or was counted as a refused pin (never both silent).
  MetricRegistry& reg = (*pinned)->telemetry().registry();
  EXPECT_GT(reg.GetCounter("ksir_pool_tasks_total")->Value(), 0);
  const std::int64_t pin_failures =
      reg.GetCounter("ksir_pool_pin_failures_total")->Value();
  EXPECT_GE(pin_failures, 0);
  EXPECT_LE(pin_failures, 4);
}

// ---- result cache unit behavior -------------------------------------------

TEST(ResultCacheTest, StatsAndFloorReadableDuringConcurrentSweeps) {
  // Regression (TSan-covered): the stats counters and the invalidation
  // floor are read by monitoring threads while queries insert and bucket
  // advances sweep. The counters are atomics now; under the old plain
  // fields this read raced InvalidateBefore/Insert.
  ResultCache cache(64);
  KsirQuery query;
  query.x = SparseVector::FromEntries({{0, 1.0}});
  QueryResult result;
  result.score = 1.0;
  constexpr std::uint64_t kEpochs = 2000;

  std::atomic<bool> stop{false};
  std::atomic<bool> floor_monotone{true};
  std::thread monitor([&] {
    std::uint64_t prev = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t floor = cache.invalidation_floor();
      if (floor < prev) floor_monotone.store(false);
      prev = floor;
      const ResultCacheStats stats = cache.stats();
      if (stats.hits < 0 || stats.misses < 0) floor_monotone.store(false);
    }
  });
  std::thread sweeper([&] {
    for (std::uint64_t epoch = 1; epoch <= kEpochs; ++epoch) {
      cache.InvalidateBefore(epoch);
    }
  });
  for (std::uint64_t epoch = 1; epoch <= kEpochs; ++epoch) {
    cache.Insert(cache.MakeKey(query, epoch), result);
    (void)cache.Lookup(cache.MakeKey(query, epoch));
  }
  sweeper.join();
  stop.store(true, std::memory_order_release);
  monitor.join();

  EXPECT_TRUE(floor_monotone.load());
  EXPECT_EQ(cache.invalidation_floor(), kEpochs);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::int64_t>(kEpochs));
}

TEST(ResultCacheTest, QuantizesNearbyQueryVectors) {
  ResultCache cache(8, 1e-3);
  KsirQuery a;
  a.k = 5;
  a.x = SparseVector::FromEntries({{0, 0.5}, {1, 0.5}});
  KsirQuery b = a;
  b.x = SparseVector::FromEntries({{0, 0.5000001}, {1, 0.4999999}});
  EXPECT_EQ(cache.MakeKey(a, 7), cache.MakeKey(b, 7));
  KsirQuery c = a;
  c.x = SparseVector::FromEntries({{0, 0.6}, {1, 0.4}});
  EXPECT_FALSE(cache.MakeKey(a, 7) == cache.MakeKey(c, 7));
  // Same query at another epoch is another key.
  EXPECT_FALSE(cache.MakeKey(a, 7) == cache.MakeKey(a, 8));
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  KsirQuery query;
  query.x = SparseVector::FromEntries({{0, 1.0}});
  QueryResult result;
  result.score = 1.0;
  const auto k1 = cache.MakeKey(query, 1);
  const auto k2 = cache.MakeKey(query, 2);
  const auto k3 = cache.MakeKey(query, 3);
  cache.Insert(k1, result);
  cache.Insert(k2, result);
  ASSERT_TRUE(cache.Lookup(k1).has_value());  // refresh k1; k2 becomes LRU
  cache.Insert(k3, result);                   // evicts k2
  EXPECT_TRUE(cache.Lookup(k1).has_value());
  EXPECT_FALSE(cache.Lookup(k2).has_value());
  EXPECT_TRUE(cache.Lookup(k3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(ResultCacheTest, InvalidateBeforeDropsOldEpochs) {
  ResultCache cache(16);
  KsirQuery query;
  query.x = SparseVector::FromEntries({{0, 1.0}});
  QueryResult result;
  for (std::uint64_t epoch = 1; epoch <= 5; ++epoch) {
    cache.Insert(cache.MakeKey(query, epoch), result);
  }
  cache.InvalidateBefore(4);
  EXPECT_EQ(cache.size(), 2u);  // epochs 4 and 5 survive
  EXPECT_EQ(cache.stats().invalidated, 3);
}

TEST(ResultCacheTest, InsertBelowInvalidationFloorIsDropped) {
  // Regression: a query that computed its result before a bucket advance
  // but inserted after the sweep used to park a dead entry in the LRU.
  ResultCache cache(16);
  KsirQuery query;
  query.x = SparseVector::FromEntries({{0, 1.0}});
  QueryResult result;
  cache.InvalidateBefore(5);
  cache.Insert(cache.MakeKey(query, 3), result);  // raced the sweep
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(cache.MakeKey(query, 3)).has_value());
  EXPECT_EQ(cache.stats().stale_inserts, 1);
  cache.Insert(cache.MakeKey(query, 5), result);  // at the floor: admitted
  EXPECT_EQ(cache.size(), 1u);
  // The floor is monotone: an older InvalidateBefore cannot lower it.
  cache.InvalidateBefore(2);
  cache.Insert(cache.MakeKey(query, 4), result);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().stale_inserts, 2);
}

TEST(ServiceTest, StatsReadableDuringConcurrentIngestion) {
  // TSan regression: IngestionStats used to live in plain int64 fields
  // written by AdvanceTo, so reading service stats() while a bucket was
  // ingesting was a documented data race. The counters are registry-backed
  // atomics now and the active-set sizes are read under each shard's query
  // lock — stats() must be callable from a monitor thread at any time.
  constexpr int kTopics = 4;
  Rng rng(4242);
  std::vector<std::vector<double>> matrix(kTopics, std::vector<double>(32));
  for (auto& row : matrix) {
    for (auto& p : row) p = rng.NextDouble() + 0.05;
  }
  TopicModel model =
      std::move(TopicModel::FromMatrix(std::move(matrix))).value();
  ServiceConfig config;
  config.engine.scoring.eta = 4.0;
  config.engine.window_length = 60;
  config.engine.bucket_length = 5;
  config.num_shards = 2;
  auto service = KsirService::Create(config, &model);
  ASSERT_TRUE(service.ok());

  std::atomic<bool> stop{false};
  std::thread monitor([&]() {
    std::int64_t last_elements = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const ServiceStats stats = (*service)->stats();
      // Counters are monotone even mid-bucket.
      ASSERT_GE(stats.ingestion.elements_ingested, last_elements);
      last_elements = stats.ingestion.elements_ingested;
      ASSERT_GE(stats.ingestion.buckets_processed, 0);
      ASSERT_GE(stats.ingestion.total_update_ms, 0.0);
    }
  });
  ASSERT_TRUE((*service)->Append(ChurnStream(1200, kTopics, 32, &rng)).ok());
  stop.store(true, std::memory_order_release);
  monitor.join();

  const ServiceStats stats = (*service)->stats();
  EXPECT_EQ(stats.ingestion.elements_ingested, 1200);
  EXPECT_GT(stats.num_active_total, 0u);
}

}  // namespace
}  // namespace ksir
