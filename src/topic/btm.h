// Biterm Topic Model (Yan et al., WWW 2013) trained by collapsed Gibbs
// sampling. BTM models word co-occurrence pairs (biterms) drawn from a
// corpus-level topic mixture, which sidesteps the data sparsity of per-
// document mixtures on very short texts — the paper uses it for Twitter.
#ifndef KSIR_TOPIC_BTM_H_
#define KSIR_TOPIC_BTM_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "text/corpus.h"
#include "topic/topic_model.h"

namespace ksir {

/// BTM training configuration. The paper sets alpha = 50/z, beta = 0.01.
struct BtmOptions {
  std::int32_t num_topics = 50;
  /// Symmetric corpus-topic prior; <= 0 means "use 50/z".
  double alpha = -1.0;
  /// Symmetric topic-word prior.
  double beta = 0.01;
  std::int32_t iterations = 100;
  std::int32_t burn_in = 50;
  /// Max distance between the two words of a biterm inside a document's
  /// token list; short texts typically use "all pairs" (a large window).
  std::int32_t biterm_window = 15;
  std::uint64_t seed = 7;
};

/// Extracts the biterms of a token list under a co-occurrence window.
/// Exposed for testing; order within a pair is normalized (first <= second).
std::vector<std::pair<WordId, WordId>> ExtractBiterms(
    const std::vector<WordId>& tokens, std::int32_t window);

/// Collapsed Gibbs sampler for BTM. Produces a TopicModel whose topic prior
/// is the learned corpus-level biterm-topic mixture (required by the biterm
/// inference rule p(z|d) = sum_b p(z|b) p(b|d)).
class BtmTrainer {
 public:
  explicit BtmTrainer(BtmOptions options = {});

  StatusOr<TopicModel> Train(const Corpus& corpus) const;

  const BtmOptions& options() const { return options_; }

 private:
  BtmOptions options_;
};

}  // namespace ksir

#endif  // KSIR_TOPIC_BTM_H_
