// Ingestion/query hot-path benchmark: parallel staged maintenance (4
// workers) vs. serial handle-carrying batched maintenance vs. the id-keyed
// batched path (the PR 3 baseline) vs. the single-reposition incremental
// path (the PR 2 baseline) vs. the full-recompute baseline, on a
// reposition-heavy stream — plus a reposition-batch-size sweep, a
// maintenance-thread sweep (1/2/4 workers) and sharded-ingestion scenarios
// with the balance-aware routing cap off and on. The JSON records
// available_cores: the parallel path is bitwise-identical to the serial
// one by contract, so on a single-core container it can only show its
// overhead — wall-clock speedup needs cores.
//
// The workload is deliberately hub-heavy (high mean out-references, strong
// preferential attachment, flat recency decay) so that most of Algorithm 1's
// work is repositioning already-indexed elements whose referrer sets
// changed — exactly the case the score decomposition, the per-list batch
// sweeps and the carried position handles accelerate. All engines ingest
// the identical generated stream bucket by bucket; per-bucket wall times
// and end-of-stream MTTS/MTTD/CELF query latencies are measured, and every
// engine's query results are required to match (same ids, scores within
// 1e-9).
//
// Emits machine-readable JSON (default ./BENCH_hotpath.json, override with
// argv[1]) so CI can archive the trajectory and gate on regressions.
// KSIR_BENCH_SCALE = smoke | small | paper scales the stream.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/kernels/kernels.h"
#include "common/rng.h"
#include "common/timer.h"
#include "kernel_microbench.h"
#include "core/engine.h"
#include "subscribe/standing_query.h"
#include "service/shard_router.h"
#include "service/sharded_ingestor.h"
#include "runtime/worker_pool.h"
#include "stream/generator.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace ksir::bench {
namespace {

struct BucketStats {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
  double total_ms = 0.0;
  double elements_per_sec = 0.0;
  std::size_t num_buckets = 0;
};

double Percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

BucketStats Summarize(std::vector<double> bucket_ms, std::size_t n) {
  BucketStats stats;
  stats.num_buckets = bucket_ms.size();
  for (const double ms : bucket_ms) {
    stats.total_ms += ms;
    stats.max_ms = std::max(stats.max_ms, ms);
  }
  std::sort(bucket_ms.begin(), bucket_ms.end());
  stats.p50_ms = Percentile(bucket_ms, 0.50);
  stats.p95_ms = Percentile(bucket_ms, 0.95);
  stats.elements_per_sec =
      stats.total_ms > 0.0
          ? static_cast<double>(n) / (stats.total_ms / 1000.0)
          : 0.0;
  return stats;
}

/// Feeds `elements` in engine-config buckets, timing every AdvanceTo.
BucketStats Feed(KsirEngine* engine, std::vector<SocialElement> elements) {
  std::vector<double> bucket_ms;
  const std::size_t n = elements.size();
  const Status status = AppendInBuckets(
      std::move(elements), engine->config().bucket_length,
      [engine]() { return engine->now(); },
      [engine, &bucket_ms](Timestamp bucket_end,
                           std::vector<SocialElement> bucket) {
        WallTimer timer;
        const Status s = engine->AdvanceTo(bucket_end, std::move(bucket));
        bucket_ms.push_back(timer.ElapsedMillis());
        return s;
      });
  KSIR_CHECK(status.ok());
  return Summarize(std::move(bucket_ms), n);
}

struct QueryLatencies {
  double mtts_mean_ms = 0.0;
  double mttd_mean_ms = 0.0;
  double celf_mean_ms = 0.0;
};

/// One sharded-ingestion run: N shard engines fed through the router/pool.
struct ShardedRun {
  BucketStats feed;
  std::int64_t cross_shard_refs = 0;
  std::int64_t rebalanced = 0;
  std::size_t active_total = 0;
  /// |A_t| per shard at end of stream: exposes routing imbalance (the
  /// chain-following router keeps reference cascades on one shard, so a
  /// single-component stream degenerates to one loaded shard unless the
  /// balance cap is on).
  std::vector<std::size_t> active_per_shard;
};

ShardedRun FeedSharded(const EngineConfig& config, const TopicModel* model,
                       std::size_t num_shards,
                       std::vector<SocialElement> elements) {
  std::vector<std::unique_ptr<KsirEngine>> shards;
  std::vector<KsirEngine*> shard_ptrs;
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards.push_back(std::make_unique<KsirEngine>(config, model));
    shard_ptrs.push_back(shards.back().get());
  }
  ShardRouter router(num_shards, config.max_shard_imbalance,
                     config.window_length);
  const auto pool = MakeWorkerPool(num_shards);
  ShardedIngestor ingestor(shard_ptrs, &router, pool.get());

  std::vector<double> bucket_ms;
  const std::size_t n = elements.size();
  const Status status = AppendInBuckets(
      std::move(elements), config.bucket_length,
      [&ingestor]() { return ingestor.now(); },
      [&ingestor, &bucket_ms](Timestamp bucket_end,
                              std::vector<SocialElement> bucket) {
        WallTimer timer;
        const Status s = ingestor.AdvanceTo(bucket_end, std::move(bucket));
        bucket_ms.push_back(timer.ElapsedMillis());
        return s;
      });
  KSIR_CHECK(status.ok());
  ShardedRun run;
  run.feed = Summarize(std::move(bucket_ms), n);
  run.cross_shard_refs = ingestor.stats().cross_shard_refs;
  run.rebalanced = router.rebalanced();
  for (const auto& shard : shards) {
    run.active_per_shard.push_back(shard->window().num_active());
    run.active_total += shard->window().num_active();
  }
  return run;
}

void EmitShardedJson(std::FILE* out, const char* key, const ShardedRun& run,
                     double max_shard_imbalance, double single_total_ms,
                     bool comma) {
  std::size_t max_active = 0;
  std::size_t min_active = run.active_per_shard.empty()
                               ? 0
                               : run.active_per_shard.front();
  for (const std::size_t active : run.active_per_shard) {
    max_active = std::max(max_active, active);
    min_active = std::min(min_active, active);
  }
  std::fprintf(out,
               "  \"%s\": {\"num_shards\": %zu, \"max_shard_imbalance\": "
               "%.2f, \"total_ms\": %.3f, \"p50_ms\": %.6f, "
               "\"elements_per_sec\": %.1f, \"speedup_vs_single\": %.3f, "
               "\"cross_shard_refs\": %lld, \"rebalanced\": %lld, "
               "\"active_total\": %zu, \"active_spread_max_over_min\": %.3f, "
               "\"active_per_shard\": [",
               key, run.active_per_shard.size(), max_shard_imbalance,
               run.feed.total_ms, run.feed.p50_ms,
               run.feed.elements_per_sec,
               run.feed.total_ms > 0.0 ? single_total_ms / run.feed.total_ms
                                       : 0.0,
               static_cast<long long>(run.cross_shard_refs),
               static_cast<long long>(run.rebalanced), run.active_total,
               min_active > 0 ? static_cast<double>(max_active) /
                                    static_cast<double>(min_active)
                              : 0.0);
  for (std::size_t i = 0; i < run.active_per_shard.size(); ++i) {
    std::fprintf(out, "%s%zu", i == 0 ? "" : ", ",
                 run.active_per_shard[i]);
  }
  std::fprintf(out, "]}%s\n", comma ? "," : "");
}

int Run(const char* out_path) {
  const Scale scale = GetScale();
  const double factor = ElementFactor(scale);

  // Kernel microbenchmarks first, while the process is quiet: running them
  // after the feed phases (thread pools, cache pressure, post-AVX license
  // shifts) adds noise that the 1.2x regression gate would trip on.
  // check_bench_regression.py gates the chunk-merge and dense-dot speedups
  // whenever a SIMD arm is active.
  const KernelBenchReport kernel_report = RunKernelMicrobench();
  std::printf("kernel dispatch: isa=%s cpu=[%s]\n",
              kernel_report.isa.c_str(),
              ksir::kernels::CpuFeatureString().c_str());
  for (const KernelBenchResult& k : kernel_report.kernels) {
    std::printf("    %-22s scalar %8.1f ns  dispatched %8.1f ns  %5.2fx\n",
                k.name.c_str(), k.scalar_ns, k.dispatched_ns, k.speedup);
  }

  // Reposition-heavy profile: every arrival references ~6 earlier elements
  // picked mostly by popularity, so hubs accumulate large in-degrees and
  // are repositioned over and over.
  StreamProfile profile;
  profile.name = "reposition-heavy";
  profile.num_elements =
      std::max<std::size_t>(2000, static_cast<std::size_t>(12000 * factor));
  profile.vocab_size = 8000;
  profile.num_topics = 50;
  profile.avg_length = 16.0;
  profile.avg_references = 20.0;
  profile.max_references = 128;
  profile.duration = 4 * 24 * 3600;
  profile.ref_horizon = 48 * 3600;
  profile.ref_recency_tau = 48 * 3600;
  profile.ref_popularity_weight = 0.9;
  profile.ref_candidate_pool = 2048;
  profile.seed = 42;

  PrintBanner(
      "Hot-path bench: parallel vs handle vs batched vs single vs recompute "
      "maintenance",
      "Algorithm 1 + Algorithms 2-3 hot paths");

  auto generated = GenerateStream(profile);
  KSIR_CHECK(generated.ok());
  Dataset dataset{profile.name, std::move(generated).value(), 1.0};
  dataset.eta = CalibrateEta(dataset.stream);

  EngineConfig base = MakeConfig(dataset, /*window_length=*/48 * 3600);
  // The serial production default: per-list merge sweeps above the
  // threshold, positions carried as handles through window -> cache ->
  // lists.
  EngineConfig handle_config = base;
  handle_config.score_maintenance = ScoreMaintenance::kIncremental;
  handle_config.carry_handles = true;
  // The staged parallel apply over the same pipeline, 4 participants
  // (bitwise-identical results by contract).
  constexpr std::size_t kParallelWorkers = 4;
  EngineConfig parallel_config = handle_config;
  parallel_config.maintenance_threads = kParallelWorkers;
  // The PR 3 baseline: same batching, every tuple re-resolved by id.
  EngineConfig batched_config = handle_config;
  batched_config.carry_handles = false;
  // The PR 2 baseline: no batching at all.
  EngineConfig unbatched_config = batched_config;
  unbatched_config.reposition_batch_min = 0;
  EngineConfig recompute_config = base;
  recompute_config.score_maintenance = ScoreMaintenance::kRecompute;

  {
    // Untimed warmup feed: faults in the allocator arenas and page tables
    // so the first measured engine is not penalized by a cold heap (the
    // engines run back to back in one process; without this, measurement
    // order systematically flatters later engines).
    KsirEngine warmup(handle_config, &dataset.stream.model);
    Feed(&warmup, std::vector<SocialElement>(dataset.stream.elements));
  }

  // Identical element copies for every engine, TWO interleaved passes with
  // fresh engines per pass, keeping each engine's better pass: the shared
  // bench machine drifts by tens of percent within one process, far above
  // the effects measured here, and best-of-2 over interleaved passes
  // cancels most of it. Within a pass the parallel engine is measured
  // BEFORE the serial handle engine (and that before the batched and
  // unbatched baselines): residual drift favors later feeds, so the
  // ordering can only understate each speedup. The last pass's engines are
  // kept for the query workload and the equivalence checks.
  BucketStats recompute_feed;
  BucketStats parallel_feed;
  BucketStats handle_feed;
  BucketStats batched_feed;
  BucketStats unbatched_feed;
  std::unique_ptr<KsirEngine> parallel;
  std::unique_ptr<KsirEngine> handle;
  std::unique_ptr<KsirEngine> batched;
  std::unique_ptr<KsirEngine> unbatched;
  std::unique_ptr<KsirEngine> recompute;
  const auto better = [](const BucketStats& a, const BucketStats& b) {
    return a.num_buckets == 0 || b.total_ms < a.total_ms ? b : a;
  };
  for (int pass = 0; pass < 2; ++pass) {
    recompute =
        std::make_unique<KsirEngine>(recompute_config, &dataset.stream.model);
    parallel =
        std::make_unique<KsirEngine>(parallel_config, &dataset.stream.model);
    handle =
        std::make_unique<KsirEngine>(handle_config, &dataset.stream.model);
    batched =
        std::make_unique<KsirEngine>(batched_config, &dataset.stream.model);
    unbatched =
        std::make_unique<KsirEngine>(unbatched_config, &dataset.stream.model);
    recompute_feed = better(
        recompute_feed,
        Feed(recompute.get(),
             std::vector<SocialElement>(dataset.stream.elements)));
    parallel_feed = better(
        parallel_feed,
        Feed(parallel.get(),
             std::vector<SocialElement>(dataset.stream.elements)));
    handle_feed = better(
        handle_feed,
        Feed(handle.get(),
             std::vector<SocialElement>(dataset.stream.elements)));
    batched_feed = better(
        batched_feed,
        Feed(batched.get(),
             std::vector<SocialElement>(dataset.stream.elements)));
    unbatched_feed = better(
        unbatched_feed,
        Feed(unbatched.get(),
             std::vector<SocialElement>(dataset.stream.elements)));
  }

  // Reposition-batch-size sweep: fresh engines, same stream, varying the
  // per-list threshold (1 = always merge-sweep; larger values keep sparser
  // lists on the single-reposition fast path), handles carried throughout.
  const std::size_t kSweep[] = {1, 2, 4, 8, 16};
  struct SweepPoint {
    std::size_t batch_min;
    double total_ms;
    double p50_ms;
  };
  std::vector<SweepPoint> sweep;
  for (const std::size_t batch_min : kSweep) {
    EngineConfig config = handle_config;
    config.reposition_batch_min = batch_min;
    KsirEngine engine(config, &dataset.stream.model);
    const BucketStats feed =
        Feed(&engine, std::vector<SocialElement>(dataset.stream.elements));
    sweep.push_back({batch_min, feed.total_ms, feed.p50_ms});
  }

  // Maintenance-thread sweep: fresh engines, same stream, varying the
  // staged apply's participant count (1 = the serial reference path).
  // Scaling needs cores — see available_cores in the JSON; the 1-vs-4 row
  // pair feeds check_bench_regression's --require-scaling floor, and the
  // 8-thread row shows where the per-bucket work runs out of shards.
  const std::size_t kThreadSweep[] = {1, 2, 4, 8};
  struct ThreadSweepPoint {
    std::size_t threads;
    double total_ms;
    double p50_ms;
  };
  std::vector<ThreadSweepPoint> thread_sweep;
  for (const std::size_t threads : kThreadSweep) {
    EngineConfig config = handle_config;
    config.maintenance_threads = threads;
    KsirEngine engine(config, &dataset.stream.model);
    const BucketStats feed =
        Feed(&engine, std::vector<SocialElement>(dataset.stream.elements));
    thread_sweep.push_back({threads, feed.total_ms, feed.p50_ms});
  }

  // Telemetry-overhead measurement: the serial handle engine with
  // telemetry off (the default) vs. kCounters (stage timers + histograms
  // live), FOUR interleaved best-of passes — the claimed bound is <= 2%
  // p50 overhead, well under single-pass drift on a shared machine
  // (single-pass ratios swing 0.88-1.8x on a noisy single-core box), so
  // this pair gets two more passes than the engine comparison above. The
  // last counters engine is kept for the per-stage breakdown below.
  BucketStats telemetry_off_feed;
  BucketStats telemetry_on_feed;
  EngineConfig telemetry_on_config = handle_config;
  telemetry_on_config.telemetry.level = TelemetryLevel::kCounters;
  std::unique_ptr<KsirEngine> telemetry_on_engine;
  for (int pass = 0; pass < 4; ++pass) {
    KsirEngine off_engine(handle_config, &dataset.stream.model);
    telemetry_off_feed = better(
        telemetry_off_feed,
        Feed(&off_engine,
             std::vector<SocialElement>(dataset.stream.elements)));
    telemetry_on_engine = std::make_unique<KsirEngine>(
        telemetry_on_config, &dataset.stream.model);
    telemetry_on_feed = better(
        telemetry_on_feed,
        Feed(telemetry_on_engine.get(),
             std::vector<SocialElement>(dataset.stream.elements)));
  }
  const double overhead_p50_ratio =
      telemetry_off_feed.p50_ms > 0.0
          ? telemetry_on_feed.p50_ms / telemetry_off_feed.p50_ms
          : 0.0;
  const double overhead_total_ratio =
      telemetry_off_feed.total_ms > 0.0
          ? telemetry_on_feed.total_ms / telemetry_off_feed.total_ms
          : 0.0;

  // Per-stage maintenance breakdown from the counters engine's registry:
  // where the bucket-apply wall time actually goes.
  const RegistrySnapshot telemetry_snapshot =
      telemetry_on_engine->telemetry().registry().Snapshot();
  const auto hist_sum_ms = [&telemetry_snapshot](const char* name) {
    const MetricSnapshot* m = telemetry_snapshot.Find(name);
    return m != nullptr ? m->histogram.sum * 1e3 : 0.0;
  };
  const auto counter_value = [&telemetry_snapshot](const char* name) {
    const MetricSnapshot* m = telemetry_snapshot.Find(name);
    return m != nullptr ? m->value : 0;
  };
  const double stage_expiry_ms = hist_sum_ms("ksir_maintainer_stage_expiry_seconds");
  const double stage_score_ms = hist_sum_ms("ksir_maintainer_stage_score_seconds");
  const double stage_gather_ms = hist_sum_ms("ksir_maintainer_stage_gather_seconds");
  const double stage_list_apply_ms =
      hist_sum_ms("ksir_maintainer_stage_list_apply_seconds");
  const double bucket_apply_ms =
      hist_sum_ms("ksir_maintainer_bucket_apply_seconds");
  const double stage_sum_ms = stage_expiry_ms + stage_score_ms +
                              stage_gather_ms + stage_list_apply_ms;

  // Sharded-ingestion scenarios: the same stream partitioned over 4 shard
  // engines (each running the handle maintainer with its own per-shard
  // batch buffers) advanced in parallel — once with pure chain-affinity
  // routing (the cascade stream collapses onto one shard) and once with
  // the balance cap on (bounded active_per_shard spread).
  constexpr std::size_t kNumShards = 4;
  constexpr double kBalanceCap = 2.0;
  const ShardedRun sharded =
      FeedSharded(handle_config, &dataset.stream.model, kNumShards,
                  std::vector<SocialElement>(dataset.stream.elements));
  EngineConfig balanced_config = handle_config;
  balanced_config.max_shard_imbalance = kBalanceCap;
  const ShardedRun sharded_balanced =
      FeedSharded(balanced_config, &dataset.stream.model, kNumShards,
                  std::vector<SocialElement>(dataset.stream.elements));

  // ---- Subscription-engine sweep: standing queries, 1k -> 100k ---------
  // A much sparser topic space than the reposition-heavy stream: with 512
  // topics each bucket touches only a fraction of the space, which is the
  // regime the inverted subscription index exploits. Subscriptions are
  // single- and two-topic interests with 8 users per distinct interest
  // (identical queries share one evaluation per group per round), so the
  // measured reduction decomposes into topic skipping x group sharing.
  // The naive evaluation count needs no measurement — by construction it
  // is registered x rounds — but the smallest point is also RUN naively
  // to validate that identity and record its wall time.
  StreamProfile sub_profile = profile;
  sub_profile.name = "sparse-topic";
  sub_profile.num_topics = 512;
  sub_profile.seed = 43;
  auto sub_generated = GenerateStream(sub_profile);
  KSIR_CHECK(sub_generated.ok());
  Dataset sub_dataset{sub_profile.name, std::move(sub_generated).value(),
                      1.0};
  sub_dataset.eta = CalibrateEta(sub_dataset.stream);
  EngineConfig sub_config =
      MakeConfig(sub_dataset, /*window_length=*/48 * 3600);
  sub_config.score_maintenance = ScoreMaintenance::kIncremental;
  sub_config.carry_handles = true;

  struct SubPoint {
    std::size_t registered = 0;
    std::size_t distinct = 0;
    std::uint64_t rounds = 0;
    SubscriptionManager::Counters totals;
    std::int64_t naive_evaluations = 0;
    double total_ms = 0.0;
    double reduction = 0.0;
  };
  const auto run_subscriptions = [&](std::size_t registered,
                                     SubscriptionMode mode) {
    KsirEngine engine(sub_config, &sub_dataset.stream.model);
    StandingQueryManager manager(&engine, mode);
    Rng sub_rng(1234);
    const auto num_topics =
        static_cast<std::uint64_t>(sub_profile.num_topics);
    const std::size_t distinct = std::max<std::size_t>(1, registered / 8);
    std::vector<KsirQuery> pool;
    pool.reserve(distinct);
    for (std::size_t d = 0; d < distinct; ++d) {
      KsirQuery query;
      query.k = 5;
      query.algorithm = Algorithm::kTopkRepresentative;
      const auto t1 = static_cast<TopicId>(sub_rng.NextUint64(num_topics));
      if (d % 4 == 3) {
        auto t2 = static_cast<TopicId>(sub_rng.NextUint64(num_topics));
        if (t2 == t1) t2 = static_cast<TopicId>((t1 + 1) % num_topics);
        query.x = SparseVector::FromEntries(
            {{std::min(t1, t2), 0.5}, {std::max(t1, t2), 0.5}});
      } else {
        query.x = SparseVector::FromEntries({{t1, 1.0}});
      }
      pool.push_back(std::move(query));
    }
    for (std::size_t i = 0; i < registered; ++i) {
      manager.Subscribe(pool[i % distinct],
                        [](const SubscriptionUpdate&) {});
    }
    SubPoint point;
    WallTimer timer;
    const Status status = AppendInBuckets(
        std::vector<SocialElement>(sub_dataset.stream.elements),
        sub_config.bucket_length, [&engine]() { return engine.now(); },
        [&](Timestamp bucket_end, std::vector<SocialElement> bucket) {
          KSIR_RETURN_NOT_OK(engine.AdvanceTo(bucket_end,
                                              std::move(bucket)));
          KSIR_RETURN_NOT_OK(manager.EvaluateAll());
          ++point.rounds;
          return Status::OK();
        });
    KSIR_CHECK(status.ok());
    point.total_ms = timer.ElapsedMillis();
    point.registered = registered;
    point.distinct = distinct;
    point.totals = manager.subscriptions().totals();
    point.naive_evaluations = static_cast<std::int64_t>(registered) *
                              static_cast<std::int64_t>(point.rounds);
    point.reduction =
        point.totals.evaluations > 0
            ? static_cast<double>(point.naive_evaluations) /
                  static_cast<double>(point.totals.evaluations)
            : 0.0;
    return point;
  };

  std::vector<std::size_t> sub_counts;
  switch (scale) {
    case Scale::kPaper:
      sub_counts = {1000, 10000, 100000};
      break;
    case Scale::kSmall:
      sub_counts = {1000, 10000};
      break;
    case Scale::kSmoke:
      sub_counts = {200, 1000};
      break;
  }
  std::vector<SubPoint> sub_sweep;
  for (const std::size_t count : sub_counts) {
    sub_sweep.push_back(
        run_subscriptions(count, SubscriptionMode::kIndexed));
  }
  const SubPoint sub_naive =
      run_subscriptions(sub_counts.front(), SubscriptionMode::kNaive);
  KSIR_CHECK(sub_naive.totals.evaluations == sub_naive.naive_evaluations);

  // Query workload at end-of-stream state.
  const std::vector<QuerySpec> workload =
      MakeWorkload(dataset, NumQueries(scale));
  QueryLatencies handle_lat;
  QueryLatencies recompute_lat;
  bool results_identical = true;
  double max_abs_score_diff = 0.0;
  const struct {
    Algorithm algorithm;
    double QueryLatencies::*slot;
  } kAlgos[] = {
      {Algorithm::kMtts, &QueryLatencies::mtts_mean_ms},
      {Algorithm::kMttd, &QueryLatencies::mttd_mean_ms},
      {Algorithm::kCelf, &QueryLatencies::celf_mean_ms},
  };
  for (const auto& algo : kAlgos) {
    double han_total = 0.0;
    double rec_total = 0.0;
    for (const QuerySpec& spec : workload) {
      KsirQuery query;
      query.k = 10;
      query.epsilon = 0.1;
      query.x = spec.x;
      query.algorithm = algo.algorithm;
      const auto han = handle->Query(query);
      const auto par = parallel->Query(query);
      const auto bat = batched->Query(query);
      const auto unb = unbatched->Query(query);
      const auto rec = recompute->Query(query);
      KSIR_CHECK(han.ok());
      KSIR_CHECK(par.ok());
      KSIR_CHECK(bat.ok());
      KSIR_CHECK(unb.ok());
      KSIR_CHECK(rec.ok());
      han_total += han->stats.elapsed_ms;
      rec_total += rec->stats.elapsed_ms;
      // Handle vs parallel vs id-batched vs single-reposition must agree
      // EXACTLY (bit-identical list states; the parallel apply's
      // determinism contract); recompute within the floating-point
      // tolerance.
      if (han->element_ids != par->element_ids || han->score != par->score) {
        results_identical = false;
      }
      if (han->element_ids != bat->element_ids || han->score != bat->score) {
        results_identical = false;
      }
      if (han->element_ids != unb->element_ids || han->score != unb->score) {
        results_identical = false;
      }
      if (han->element_ids != rec->element_ids) results_identical = false;
      max_abs_score_diff =
          std::max(max_abs_score_diff, std::fabs(han->score - rec->score));
      if (max_abs_score_diff > 1e-9) results_identical = false;
    }
    handle_lat.*algo.slot = han_total / workload.size();
    recompute_lat.*algo.slot = rec_total / workload.size();
  }

  const auto ratio = [](double num, double den) {
    return den > 0.0 ? num / den : 0.0;
  };
  const double speedup_total = ratio(recompute_feed.total_ms,
                                     handle_feed.total_ms);
  const double speedup_p50 = ratio(recompute_feed.p50_ms,
                                   handle_feed.p50_ms);
  const double handle_speedup_total = ratio(batched_feed.total_ms,
                                            handle_feed.total_ms);
  const double handle_speedup_p50 = ratio(batched_feed.p50_ms,
                                          handle_feed.p50_ms);
  const double batch_speedup_total = ratio(unbatched_feed.total_ms,
                                           batched_feed.total_ms);
  const double batch_speedup_p50 = ratio(unbatched_feed.p50_ms,
                                         batched_feed.p50_ms);
  const double parallel_speedup_total = ratio(handle_feed.total_ms,
                                              parallel_feed.total_ms);
  const double parallel_speedup_p50 = ratio(handle_feed.p50_ms,
                                            parallel_feed.p50_ms);
  const unsigned available_cores = std::thread::hardware_concurrency();

  std::printf("  stream: %zu elements, %zu buckets, eta=%.4f (%u cores)\n",
              dataset.stream.elements.size(), handle_feed.num_buckets,
              dataset.eta, available_cores);
  std::printf("  bucket update total: recompute %.1f ms | unbatched %.1f ms "
              "| batched %.1f ms | handle %.1f ms | parallel x%zu %.1f ms\n",
              recompute_feed.total_ms, unbatched_feed.total_ms,
              batched_feed.total_ms, handle_feed.total_ms, kParallelWorkers,
              parallel_feed.total_ms);
  std::printf("  speedups: handle vs recompute %.2fx | handle vs batched "
              "(PR 3 baseline) %.2fx total, %.2fx p50 | batched vs "
              "unbatched %.2fx total | parallel vs handle %.2fx total, "
              "%.2fx p50\n",
              speedup_total, handle_speedup_total, handle_speedup_p50,
              batch_speedup_total, parallel_speedup_total,
              parallel_speedup_p50);
  std::printf("  bucket update p50/p95: batched %.3f/%.3f ms | handle "
              "%.3f/%.3f ms | parallel %.3f/%.3f ms\n",
              batched_feed.p50_ms, batched_feed.p95_ms,
              handle_feed.p50_ms, handle_feed.p95_ms,
              parallel_feed.p50_ms, parallel_feed.p95_ms);
  std::printf("  throughput: recompute %.0f el/s | unbatched %.0f el/s | "
              "batched %.0f el/s | handle %.0f el/s | parallel %.0f el/s\n",
              recompute_feed.elements_per_sec,
              unbatched_feed.elements_per_sec,
              batched_feed.elements_per_sec, handle_feed.elements_per_sec,
              parallel_feed.elements_per_sec);
  std::printf("  batch-size sweep (total ms):");
  for (const SweepPoint& point : sweep) {
    std::printf(" min=%zu: %.1f", point.batch_min, point.total_ms);
  }
  std::printf("\n");
  std::printf("  thread sweep (total ms):");
  for (const ThreadSweepPoint& point : thread_sweep) {
    std::printf(" w=%zu: %.1f", point.threads, point.total_ms);
  }
  std::printf("\n");
  const auto print_sharded = [&](const char* name, const ShardedRun& run) {
    std::printf("  %s x%zu: total %.1f ms (%.0f el/s, %.2fx vs single "
                "handle), %lld cross-shard refs, %lld rebalanced, active [",
                name, kNumShards, run.feed.total_ms,
                run.feed.elements_per_sec,
                ratio(handle_feed.total_ms, run.feed.total_ms),
                static_cast<long long>(run.cross_shard_refs),
                static_cast<long long>(run.rebalanced));
    for (std::size_t i = 0; i < run.active_per_shard.size(); ++i) {
      std::printf("%s%zu", i == 0 ? "" : ", ", run.active_per_shard[i]);
    }
    std::printf("]\n");
  };
  print_sharded("sharded", sharded);
  print_sharded("sharded+cap", sharded_balanced);
  std::printf("  telemetry overhead (counters on vs off): p50 %.3f vs "
              "%.3f ms (ratio %.4f), total %.1f vs %.1f ms (ratio %.4f)\n",
              telemetry_on_feed.p50_ms, telemetry_off_feed.p50_ms,
              overhead_p50_ratio, telemetry_on_feed.total_ms,
              telemetry_off_feed.total_ms, overhead_total_ratio);
  std::printf("  stage breakdown: expiry %.1f ms | score %.1f ms | gather "
              "%.1f ms | list-apply %.1f ms (sum %.1f of %.1f ms "
              "bucket-apply = %.0f%%)\n",
              stage_expiry_ms, stage_score_ms, stage_gather_ms,
              stage_list_apply_ms, stage_sum_ms, bucket_apply_ms,
              bucket_apply_ms > 0.0 ? 100.0 * stage_sum_ms / bucket_apply_ms
                                    : 0.0);
  std::printf("  MTTS %.3f ms | MTTD %.3f ms | CELF %.3f ms (handle "
              "engine means)\n",
              handle_lat.mtts_mean_ms, handle_lat.mttd_mean_ms,
              handle_lat.celf_mean_ms);
  std::printf("  results identical: %s (max |score diff| = %.3g)\n",
              results_identical ? "yes" : "NO",
              max_abs_score_diff);

  std::printf("  subscriptions (sparse-topic stream, %d topics, %llu "
              "rounds):\n",
              sub_profile.num_topics,
              static_cast<unsigned long long>(
                  sub_sweep.front().rounds));
  for (const SubPoint& point : sub_sweep) {
    std::printf("    %6zu subs (%zu distinct): %lld evals vs %lld naive "
                "(%.1fx fewer), activated %lld / skipped %lld, %lld "
                "shared, %lld deltas, %.1f ms\n",
                point.registered, point.distinct,
                static_cast<long long>(point.totals.evaluations),
                static_cast<long long>(point.naive_evaluations),
                point.reduction,
                static_cast<long long>(point.totals.activated),
                static_cast<long long>(point.totals.skipped),
                static_cast<long long>(point.totals.shared_hits),
                static_cast<long long>(point.totals.deltas),
                point.total_ms);
  }
  std::printf("    naive reference at %zu subs: %lld evaluations "
              "(= registered x rounds), %.1f ms\n",
              sub_naive.registered,
              static_cast<long long>(sub_naive.totals.evaluations),
              sub_naive.total_ms);

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  const char* scale_name = scale == Scale::kSmoke   ? "smoke"
                           : scale == Scale::kSmall ? "small"
                                                    : "paper";
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"hotpath\",\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n", scale_name);
  // The parallel path is bitwise-identical to the serial one; wall-clock
  // scaling needs cores, so record what this run actually had.
  std::fprintf(out, "  \"available_cores\": %u,\n", available_cores);
  std::fprintf(out, "  \"cpu_features\": \"%s\",\n",
               ksir::kernels::CpuFeatureString().c_str());
  std::fprintf(out, "  \"kernels\": {\"isa\": \"%s\", \"results\": {",
               kernel_report.isa.c_str());
  for (std::size_t i = 0; i < kernel_report.kernels.size(); ++i) {
    const KernelBenchResult& k = kernel_report.kernels[i];
    std::fprintf(out,
                 "%s\"%s\": {\"scalar_ns\": %.1f, \"dispatched_ns\": %.1f, "
                 "\"speedup\": %.3f}",
                 i == 0 ? "" : ", ", k.name.c_str(), k.scalar_ns,
                 k.dispatched_ns, k.speedup);
  }
  std::fprintf(out, "}},\n");
  std::fprintf(out,
               "  \"workload\": {\"profile\": \"%s\", \"num_elements\": %zu, "
               "\"avg_references\": %.1f, \"ref_popularity_weight\": %.2f, "
               "\"num_topics\": %d, \"num_buckets\": %zu, "
               "\"window_length\": %lld, \"bucket_length\": %lld, "
               "\"eta\": %.6f},\n",
               profile.name.c_str(), dataset.stream.elements.size(),
               profile.avg_references, profile.ref_popularity_weight,
               profile.num_topics, handle_feed.num_buckets,
               static_cast<long long>(base.window_length),
               static_cast<long long>(base.bucket_length), dataset.eta);
  const auto emit_engine = [out](const char* name, const BucketStats& feed,
                                 const QueryLatencies* lat, bool comma) {
    std::fprintf(
        out,
        "    \"%s\": {\"bucket_update\": {\"p50_ms\": %.6f, \"p95_ms\": "
        "%.6f, \"max_ms\": %.6f, \"total_ms\": %.3f, \"elements_per_sec\": "
        "%.1f}",
        name, feed.p50_ms, feed.p95_ms, feed.max_ms, feed.total_ms,
        feed.elements_per_sec);
    if (lat != nullptr) {
      std::fprintf(out,
                   ", \"queries\": {\"mtts_mean_ms\": %.6f, "
                   "\"mttd_mean_ms\": %.6f, \"celf_mean_ms\": %.6f}",
                   lat->mtts_mean_ms, lat->mttd_mean_ms, lat->celf_mean_ms);
    }
    std::fprintf(out, "}%s\n", comma ? "," : "");
  };
  std::fprintf(out, "  \"engines\": {\n");
  emit_engine("handle", handle_feed, &handle_lat, true);
  emit_engine("parallel", parallel_feed, nullptr, true);
  emit_engine("batched", batched_feed, nullptr, true);
  emit_engine("incremental_unbatched", unbatched_feed, nullptr, true);
  emit_engine("recompute", recompute_feed, &recompute_lat, false);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"maintenance_threads\": %zu,\n", kParallelWorkers);
  std::fprintf(out,
               "  \"speedup\": {\"bucket_update_total\": %.3f, "
               "\"bucket_update_p50\": %.3f, "
               "\"handle_vs_pr3_batched_total\": %.3f, "
               "\"handle_vs_pr3_batched_p50\": %.3f, "
               "\"batched_vs_pr2_incremental_total\": %.3f, "
               "\"batched_vs_pr2_incremental_p50\": %.3f, "
               "\"parallel_vs_handle_total\": %.3f, "
               "\"parallel_vs_handle_p50\": %.3f},\n",
               speedup_total, speedup_p50, handle_speedup_total,
               handle_speedup_p50, batch_speedup_total, batch_speedup_p50,
               parallel_speedup_total, parallel_speedup_p50);
  std::fprintf(out, "  \"batch_sweep\": [");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(out,
                 "%s{\"reposition_batch_min\": %zu, \"total_ms\": %.3f, "
                 "\"p50_ms\": %.6f}",
                 i == 0 ? "" : ", ", sweep[i].batch_min, sweep[i].total_ms,
                 sweep[i].p50_ms);
  }
  std::fprintf(out, "],\n");
  std::fprintf(out, "  \"thread_sweep\": [");
  for (std::size_t i = 0; i < thread_sweep.size(); ++i) {
    std::fprintf(out,
                 "%s{\"maintenance_threads\": %zu, \"total_ms\": %.3f, "
                 "\"p50_ms\": %.6f}",
                 i == 0 ? "" : ", ", thread_sweep[i].threads,
                 thread_sweep[i].total_ms, thread_sweep[i].p50_ms);
  }
  std::fprintf(out, "],\n");
  std::fprintf(
      out,
      "  \"telemetry\": {\"off\": {\"p50_ms\": %.6f, \"total_ms\": %.3f}, "
      "\"counters_on\": {\"p50_ms\": %.6f, \"total_ms\": %.3f}, "
      "\"overhead_p50_ratio\": %.4f, \"overhead_total_ratio\": %.4f, "
      "\"stage_breakdown_ms\": {\"expiry\": %.3f, \"score\": %.3f, "
      "\"gather\": %.3f, \"list_apply\": %.3f, \"bucket_apply\": %.3f, "
      "\"stage_sum_fraction\": %.4f}, "
      "\"counts\": {\"expired\": %lld, \"fresh\": %lld, \"touched\": %lld, "
      "\"repositions\": %lld, \"elisions\": %lld}},\n",
      telemetry_off_feed.p50_ms, telemetry_off_feed.total_ms,
      telemetry_on_feed.p50_ms, telemetry_on_feed.total_ms,
      overhead_p50_ratio, overhead_total_ratio, stage_expiry_ms,
      stage_score_ms, stage_gather_ms, stage_list_apply_ms, bucket_apply_ms,
      bucket_apply_ms > 0.0 ? stage_sum_ms / bucket_apply_ms : 0.0,
      static_cast<long long>(counter_value("ksir_maintainer_expired_total")),
      static_cast<long long>(counter_value("ksir_maintainer_fresh_total")),
      static_cast<long long>(
          counter_value("ksir_maintainer_elements_touched_total")),
      static_cast<long long>(
          counter_value("ksir_maintainer_repositions_total")),
      static_cast<long long>(
          counter_value("ksir_maintainer_elisions_total")));
  EmitShardedJson(out, "sharded", sharded, 0.0, handle_feed.total_ms, true);
  EmitShardedJson(out, "sharded_balanced", sharded_balanced, kBalanceCap,
                  handle_feed.total_ms, true);
  // Optional external reference: total feed time of the PRE-PR-2 engine
  // (std::set ranked lists, full-recompute maintenance, node-based hash
  // maps) on this same generated workload, measured at the seed commit via
  // a git worktree (see README "Performance"). The in-tree recompute
  // baseline above already shares the faster containers, so it understates
  // the real speedup; this field records the honest one.
  if (const char* prepr = std::getenv("KSIR_PREPR_TOTAL_MS")) {
    const double prepr_ms = std::atof(prepr);
    if (prepr_ms > 0.0 && handle_feed.total_ms > 0.0) {
      std::fprintf(out,
                   "  \"pre_pr_reference\": {\"total_ms\": %.1f, "
                   "\"speedup_vs_handle\": %.3f, \"methodology\": "
                   "\"seed-commit engine, identical generator workload, "
                   "measured via git worktree\"},\n",
                   prepr_ms, prepr_ms / handle_feed.total_ms);
    }
  }
  std::fprintf(out,
               "  \"subscriptions\": {\n"
               "    \"workload\": {\"profile\": \"%s\", \"num_topics\": "
               "%d, \"num_elements\": %zu, \"rounds\": %llu, "
               "\"users_per_interest\": 8},\n",
               sub_profile.name.c_str(), sub_profile.num_topics,
               sub_dataset.stream.elements.size(),
               static_cast<unsigned long long>(sub_sweep.front().rounds));
  std::fprintf(out,
               "    \"naive_reference\": {\"registered\": %zu, "
               "\"evaluations\": %lld, \"expected_evaluations\": %lld, "
               "\"total_ms\": %.3f},\n",
               sub_naive.registered,
               static_cast<long long>(sub_naive.totals.evaluations),
               static_cast<long long>(sub_naive.naive_evaluations),
               sub_naive.total_ms);
  std::fprintf(out, "    \"sweep\": [");
  for (std::size_t i = 0; i < sub_sweep.size(); ++i) {
    const SubPoint& point = sub_sweep[i];
    std::fprintf(
        out,
        "%s{\"registered\": %zu, \"distinct_queries\": %zu, "
        "\"evaluations\": %lld, \"naive_evaluations\": %lld, "
        "\"eval_reduction\": %.3f, \"activated\": %lld, "
        "\"skipped\": %lld, \"shared_hits\": %lld, "
        "\"delta_events\": %lld, \"activated_per_registered\": %.4f, "
        "\"total_ms\": %.3f}",
        i == 0 ? "" : ", ", point.registered, point.distinct,
        static_cast<long long>(point.totals.evaluations),
        static_cast<long long>(point.naive_evaluations),
        point.reduction, static_cast<long long>(point.totals.activated),
        static_cast<long long>(point.totals.skipped),
        static_cast<long long>(point.totals.shared_hits),
        static_cast<long long>(point.totals.deltas),
        point.naive_evaluations > 0
            ? static_cast<double>(point.totals.activated) /
                  static_cast<double>(point.naive_evaluations)
            : 0.0,
        point.total_ms);
  }
  std::fprintf(out, "]\n  },\n");
  std::fprintf(out, "  \"num_queries\": %zu,\n", workload.size());
  std::fprintf(out, "  \"results_identical\": %s,\n",
               results_identical ? "true" : "false");
  std::fprintf(out, "  \"max_abs_score_diff\": %.3g\n", max_abs_score_diff);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("  wrote %s\n", out_path);

  // Smoke-check contract for CI: results must match across the paths.
  return results_identical ? 0 : 1;
}

}  // namespace
}  // namespace ksir::bench

int main(int argc, char** argv) {
  return ksir::bench::Run(argc > 1 ? argv[1] : "BENCH_hotpath.json");
}
